// Package probpred is a Go implementation of probabilistic predicates (PPs)
// for accelerating machine-learning inference queries, reproducing
// "Accelerating Machine Learning Inference with Probabilistic Predicates"
// (Lu, Chowdhery, Kandula, Chaudhuri — SIGMOD 2018).
//
// Inference queries apply expensive UDFs (detectors, feature extractors,
// classifiers) to raw blobs before a relational predicate can run, so
// classic predicate pushdown cannot help. A probabilistic predicate is a
// cheap binary classifier trained per simple predicate clause that runs
// directly on the raw input and discards blobs that will not satisfy the
// query predicate, parametrized by a target accuracy a: the fraction of true
// results the query must retain. PPs never add false positives — the
// original predicate still runs downstream.
//
// The workflow:
//
//	// 1. Label blobs for a simple clause and train a PP.
//	pp, err := probpred.TrainPP("vehType=SUV", trainSet, valSet, probpred.TrainConfig{})
//
//	// 2. Register PPs in a corpus and build an optimizer.
//	corpus := probpred.NewCorpus()
//	corpus.Add(pp)
//	opt := probpred.NewOptimizer(corpus)
//
//	// 3. For each query, let the optimizer pick a PP combination that is a
//	// necessary condition of the (possibly complex, possibly unseen)
//	// predicate and meets the accuracy target.
//	pred, _ := probpred.ParsePredicate("vehType=SUV & vehColor=red")
//	dec, _ := opt.Optimize(pred, probpred.OptimizeOptions{Accuracy: 0.95, UDFCost: u})
//
//	// 4. Run the query with the PP filter injected ahead of the UDFs.
//	plan := probpred.BuildPlan(blobs, dec, procs, pred)
//	res, _ := probpred.RunPlan(plan, probpred.ExecConfig{})
//
// The subpackages under internal implement every substrate: the classifier
// families (linear SVM, KDE over a k-d tree, a feed-forward DNN), dimension
// reduction (PCA, feature hashing), model selection, the predicate language,
// the cost-based optimizer extension, a relational mini-engine with a
// deterministic virtual cost model, synthetic datasets standing in for the
// paper's (LSHTC, COCO, ImageNet, SUNAttribute, UCF101, DETRAC traffic,
// NoScope coral), the comparison baselines, and the experiment harness that
// regenerates every table and figure of the evaluation (see DESIGN.md and
// EXPERIMENTS.md).
package probpred

import (
	"io"
	"net/http"

	"probpred/internal/adapt"
	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/dimred"
	"probpred/internal/engine"
	"probpred/internal/fault"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/optimizer"
	"probpred/internal/query"
	"probpred/internal/serve"
	"probpred/internal/stream"
	"probpred/internal/udf"
)

// Core data types.
type (
	// Blob is one unstructured input item (image, frame, document).
	Blob = blob.Blob
	// Set is a collection of blobs with binary labels for one clause.
	Set = blob.Set
	// Vec is a dense feature vector.
	Vec = mathx.Vec
	// Sparse is a sparse feature vector.
	Sparse = mathx.Sparse
	// RNG is the deterministic random number generator used throughout.
	RNG = mathx.RNG
)

// PP construction and evaluation.
type (
	// PP is a trained probabilistic predicate.
	PP = core.PP
	// TrainConfig controls PP construction and model selection.
	TrainConfig = core.TrainConfig
	// Metrics summarizes a PP's accuracy/reduction behaviour on a test set.
	Metrics = core.Metrics
	// Scorer is the pluggable classifier interface (any real-valued
	// function with a threshold can be a PP classifier, §5.3).
	Scorer = core.Scorer
	// Curve is a PP's accuracy-versus-reduction profile.
	Curve = core.Curve
)

// Predicates.
type (
	// Pred is a parsed predicate tree.
	Pred = query.Pred
	// Clause is a simple clause (column op value).
	Clause = query.Clause
	// Value is a column value (number or string).
	Value = query.Value
	// Lookup resolves a column name to a value during predicate evaluation.
	Lookup = query.Lookup
)

// Optimizer.
type (
	// Corpus indexes trained PPs by clause.
	Corpus = optimizer.Corpus
	// Optimizer chooses PP combinations for queries.
	Optimizer = optimizer.Optimizer
	// OptimizeOptions configures one optimization call.
	OptimizeOptions = optimizer.Options
	// Decision is the optimizer's plan choice.
	Decision = optimizer.Decision
)

// Execution engine.
type (
	// Plan is a physical operator chain.
	Plan = engine.Plan
	// ExecConfig models the cluster (parallelism, stage overhead).
	ExecConfig = engine.Config
	// ExecResult carries rows plus virtual cluster time and latency.
	ExecResult = engine.Result
	// Processor is the per-row UDF template of §4.
	Processor = engine.Processor
	// GroupReducer is the grouped UDF template of §4 (object tracking and
	// other context-based operations over related rows).
	GroupReducer = engine.Reducer
	// Combiner is the custom-join UDF template of §4.
	Combiner = engine.Combiner
	// Row is one engine tuple: a blob plus materialized columns.
	Row = engine.Row
)

// Fault tolerance: production UDFs hit transient errors and stragglers; the
// engine retries them in virtual time and the fault package injects them
// deterministically for experiments.
type (
	// RetryPolicy configures the engine's transient-failure handling
	// (ExecConfig.Retry): attempt budget, exponential backoff charged in
	// virtual ms, and the per-row timeout that turns stragglers into
	// retries.
	RetryPolicy = engine.RetryPolicy
	// OpError attributes a plan failure to its operator and pipeline stage.
	OpError = engine.OpError
	// FaultInjector decides per-attempt fault outcomes deterministically
	// from a seed.
	FaultInjector = fault.Injector
	// FaultSpec configures one operator's transient and straggler rates.
	FaultSpec = fault.Spec
)

// Observability: the engine, optimizer, and online loop emit spans, events,
// and metrics to a pluggable sink. A nil *Tracer (the default) disables
// everything at near-zero cost; attach one via ExecConfig.Obs or
// OptimizeOptions.Obs.
type (
	// Tracer records spans/events/metrics into a Sink; nil disables tracing.
	Tracer = obs.Tracer
	// TraceSink receives completed trace records.
	TraceSink = obs.Sink
	// Span is one timed unit of work (an engine run, an operator, a chunk,
	// an optimizer search, a training call).
	Span = obs.Span
	// TraceEvent is a point-in-time occurrence (watchdog trips, retrains).
	TraceEvent = obs.Event
	// TraceMetric is one named numeric observation.
	TraceMetric = obs.Metric
	// TraceCollector is an in-memory Sink that aggregates into a TraceSummary.
	TraceCollector = obs.Collector
	// TraceSummary aggregates collected spans per (kind, name).
	TraceSummary = obs.Summary
)

// NewTracer returns a tracer writing to sink; a nil sink yields a nil
// (disabled) tracer.
func NewTracer(sink TraceSink) *Tracer { return obs.New(sink) }

// NewTextTraceSink returns a sink that renders each record as one human-
// readable line (what ppquery --trace uses).
func NewTextTraceSink(w io.Writer) TraceSink { return obs.NewTextSink(w) }

// NewJSONTraceSink returns a sink that writes each record as one JSON line.
func NewJSONTraceSink(w io.Writer) TraceSink { return obs.NewJSONSink(w) }

// NewTraceCollector returns an in-memory collecting sink.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// MultiTraceSink fans every trace record out to all the given sinks (nils
// are skipped) — e.g. a live text stream plus a flight recorder.
func MultiTraceSink(sinks ...TraceSink) TraceSink { return obs.Multi(sinks...) }

// FlightRecorder is a fixed-size ring-buffer TraceSink that keeps the most
// recent records and dumps them automatically when a failure trigger fires
// (by default: a run span carrying an error, or a watchdog trip event).
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder returns a flight recorder buffering the most recent
// capacity records (0 selects 256) and auto-dumping to w on trigger.
func NewFlightRecorder(capacity int, w io.Writer) *FlightRecorder {
	return obs.NewFlightRecorder(capacity, w)
}

// Numeric metrics: a concurrency-safe registry of labeled counters, gauges
// and streaming histograms, attachable to the engine (ExecConfig.Metrics),
// the optimizer (Optimizer.SetMetrics), training (TrainConfig.Metrics), and
// the fault injector (FaultInjector.SetMetrics). A nil registry disables
// every instrument at one pointer check — the same contract as the nil
// Tracer.
type (
	// MetricsRegistry holds all registered instruments.
	MetricsRegistry = metrics.Registry
	// MetricLabel is one name=value instrument label.
	MetricLabel = metrics.Label
	// MetricsSnapshot is one instrument family in a point-in-time snapshot.
	MetricsSnapshot = metrics.SnapshotFamily
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// MetricsHandler serves a registry as Prometheus text exposition format.
func MetricsHandler(r *MetricsRegistry) http.Handler { return metrics.Handler(r) }

// NewMetricsMux returns an http.ServeMux wiring /metrics, /healthz and the
// /debug/pprof/ endpoints — the shared diagnostics mux the CLIs serve.
func NewMetricsMux(r *MetricsRegistry) *http.ServeMux { return metrics.NewMux(r) }

// AnalyzeOptions shapes EXPLAIN ANALYZE rendering (ExecResult.Analyze):
// per-operator estimated cardinalities and the misestimation tolerance.
type AnalyzeOptions = engine.AnalyzeOptions

// NewFaultInjector returns an injector with no faults configured.
func NewFaultInjector(seed uint64) *FaultInjector { return fault.NewInjector(seed) }

// MakeFaulty wraps a Processor with injector-driven transient failures and
// stragglers, leaving the wrapped UDF's logic untouched.
func MakeFaulty(p Processor, inj *FaultInjector) Processor { return udf.Faulty(p, inj) }

// IsTransientError reports whether an error from RunPlan is retryable (an
// injected transient fault or an engine row timeout).
func IsTransientError(err error) bool { return engine.IsTransient(err) }

// NewRNG returns a deterministic generator for the seed.
func NewRNG(seed uint64) *RNG { return mathx.NewRNG(seed) }

// FromDense wraps a dense feature vector as a Blob.
func FromDense(id int, v Vec) Blob { return blob.FromDense(id, v) }

// FromSparse wraps a sparse feature vector as a Blob.
func FromSparse(id int, s Sparse) Blob { return blob.FromSparse(id, s) }

// TrainPP constructs a probabilistic predicate for a simple clause from a
// labeled training set and a disjoint validation set. Leave
// TrainConfig.Approach empty for automatic model selection (§5.5).
func TrainPP(clause string, train, val Set, cfg TrainConfig) (*PP, error) {
	return core.Train(clause, train, val, cfg)
}

// Reducer is the pluggable dimension-reduction interface ψ(·) (§5.4).
type Reducer = dimred.Reducer

// NewPP assembles a PP from a custom pre-trained Scorer over raw (dense)
// blob features; see also NewPPWithReducer.
func NewPP(clause, approach string, scorer Scorer, val Set) (*PP, error) {
	return core.NewPP(clause, approach, dimred.Identity{Dim: val.Dim()}, scorer, val)
}

// NewPPWithReducer assembles a PP from custom pre-trained components.
func NewPPWithReducer(clause, approach string, r Reducer, scorer Scorer, val Set) (*PP, error) {
	return core.NewPP(clause, approach, r, scorer, val)
}

// EvaluatePP measures a PP on a labeled test set at target accuracy a.
func EvaluatePP(pp *PP, test Set, a float64) Metrics { return core.Evaluate(pp, test, a) }

// ParsePredicate parses a predicate such as
// "t=SUV & c!=white & (s>60 | s<20)".
func ParsePredicate(s string) (Pred, error) { return query.Parse(s) }

// NewCorpus returns an empty PP corpus.
func NewCorpus() *Corpus { return optimizer.NewCorpus() }

// NewOptimizer returns a query optimizer over the corpus.
func NewOptimizer(c *Corpus) *Optimizer { return optimizer.New(c) }

// BuildPlan assembles the standard inference-query plan: scan the blobs,
// apply the optimizer's PP filter (when dec injects one), run the UDF
// processors, then the original predicate (Figure 2). A nil dec or a
// non-injecting decision yields the unmodified NoP plan (Figure 1).
func BuildPlan(blobs []Blob, dec *Decision, procs []Processor, pred Pred) Plan {
	ops := []engine.Operator{&engine.Scan{Blobs: blobs}}
	if dec != nil && dec.Inject {
		ops = append(ops, &engine.PPFilter{F: dec.Filter})
	}
	for _, p := range procs {
		ops = append(ops, &engine.Process{P: p})
	}
	ops = append(ops, &engine.Select{Pred: pred})
	return Plan{Ops: ops}
}

// RunPlan executes a plan under the virtual cluster model.
func RunPlan(p Plan, cfg ExecConfig) (*ExecResult, error) { return engine.Run(p, cfg) }

// ExplainPlan renders a plan's operators with stage boundaries marked.
func ExplainPlan(p Plan) string { return engine.Explain(p) }

// LoadPP reads a PP previously written with (*PP).Save. Custom Scorer or
// Reducer implementations must be gob.Register-ed by the caller; the
// built-in families are registered automatically.
func LoadPP(r io.Reader) (*PP, error) { return core.LoadPP(r) }

// LoadCorpus reads a corpus previously written with (*Corpus).Save.
func LoadCorpus(r io.Reader) (*Corpus, error) { return optimizer.LoadCorpus(r) }

// Concurrent serving: many query sessions over one shared corpus, with a
// canonical-key plan cache (skip repeat optimizer searches; invalidated on
// corpus change) and a sharded LRU memoizing per-(PP, blob) scores across
// sessions. Both caches are transparent — results and virtual costs are
// byte-identical to cache-free execution (see DESIGN.md, "Serving &
// caching").
type (
	// Server admits concurrent query sessions; safe for concurrent Serve.
	Server = serve.Server
	// ServeConfig configures a Server (optimizer, plan builder, accuracy
	// target, admission bound, cache sizes).
	ServeConfig = serve.Config
	// ServeRequest is one query session's input.
	ServeRequest = serve.Request
	// ServeResponse is one completed session: result, decision, plan key.
	ServeResponse = serve.Response
	// ServeStats snapshots a server's session and cache counters.
	ServeStats = serve.Stats
	// QueryBuilder describes the application's UDF pipeline to the server:
	// the per-blob UDF cost a PP can short-circuit, and plan assembly with
	// the server-chosen PP filter injected.
	QueryBuilder = serve.QueryBuilder
	// WorkloadQuery is one query of a replayed workload.
	WorkloadQuery = serve.WorkloadQuery
)

// Plan assembly pieces for QueryBuilder implementations (BuildPlan covers
// the standard scan → PP → UDFs → σ shape; a builder that needs joins,
// grouping or projections assembles operators directly).
type (
	// PlanOperator is one physical operator in a Plan.
	PlanOperator = engine.Operator
	// BlobFilter is the raw-blob filter interface a PP expression compiles
	// to (Decision.Filter implements it).
	BlobFilter = engine.BlobFilter
	// ScanOp sources blobs into the plan.
	ScanOp = engine.Scan
	// PPFilterOp applies a BlobFilter ahead of the UDFs.
	PPFilterOp = engine.PPFilter
	// ProcessOp runs a Processor UDF per row.
	ProcessOp = engine.Process
	// SelectOp applies the original predicate to materialized columns.
	SelectOp = engine.Select
)

// NewServer validates the config and returns a ready server.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// Sharded scatter-gather serving: the corpus split into contiguous shards,
// each owning replica servers with private plan/score caches; every session
// fans out to all shards, a pluggable router picks the replica per shard,
// and legs merge deterministically in shard order — outputs byte-identical
// to an unsharded server (see DESIGN.md, "Sharded serving & routing").
type (
	// Coordinator scatter-gathers sessions across shards; safe for
	// concurrent Do.
	Coordinator = serve.Coordinator
	// ShardedConfig configures a Coordinator: the per-replica base config,
	// shard/replica counts, the corpus to split, and the routing policy.
	ShardedConfig = serve.ShardedConfig
	// CorpusBuilder is the engine/corpus split of QueryBuilder: plan
	// assembly over an injected blob slice, so shards can share one builder
	// over disjoint slices.
	CorpusBuilder = serve.CorpusBuilder
	// ShardRoutingPolicy names a built-in replica router.
	ShardRoutingPolicy = serve.RoutingPolicy
)

// Built-in routing policies for ShardedConfig / ServeConfig Routing.
const (
	RouteRoundRobin   = serve.RouteRoundRobin
	RouteLeastLoaded  = serve.RouteLeastLoaded
	RoutePlanAffinity = serve.RoutePlanAffinity
)

// NewShardedServer validates the config, splits the corpus, and returns a
// ready coordinator.
func NewShardedServer(cfg ShardedConfig) (*Coordinator, error) { return serve.NewSharded(cfg) }

// BindShardCorpus fixes a CorpusBuilder to one blob slice, yielding the
// legacy single-corpus QueryBuilder.
func BindShardCorpus(b CorpusBuilder, blobs []Blob) QueryBuilder {
	return serve.BindCorpus(b, blobs)
}

// Adaptive mid-query re-optimization: a controller that watches observed vs
// planned per-leaf PP reductions at chunk boundaries and hot-swaps to a
// cheaper sibling order when they diverge, preserving byte-identical
// outputs; failures degrade gracefully behind a per-plan circuit breaker
// (see DESIGN.md, "Adaptive re-optimization"). Attach one via
// ServeConfig.Adapt, or drive a single plan with (*AdaptController).Run.
type (
	// AdaptController re-optimizes running queries; safe for concurrent use.
	AdaptController = adapt.Controller
	// AdaptConfig tunes chunking, the divergence trigger, hysteresis,
	// re-planning budget and breaker thresholds. Zero value = defaults.
	AdaptConfig = adapt.Config
	// AdaptReport summarizes one adaptive run: replans, swaps, failures,
	// pinning and the final evaluation order.
	AdaptReport = adapt.Report
)

// NewAdaptController validates the config and returns a ready controller.
func NewAdaptController(cfg AdaptConfig) *AdaptController { return adapt.New(cfg) }

// Training-set planning (the batch "outer loop" of §4 Figure 3b, with the
// budgeted PP-selection problem of Appendix A.1).
type (
	// TrainingCandidate is one PP the planner may decide to train.
	TrainingCandidate = optimizer.TrainingCandidate
	// TrainingPlan is the planner's chosen set under the budget.
	TrainingPlan = optimizer.TrainingPlan
)

// InferClauses extracts the simple clauses of a historical workload with
// frequencies, including the forms the wrangler can serve (A.2).
func InferClauses(preds []Pred, domains map[string][]Value) map[string]int {
	return optimizer.InferClauses(preds, domains)
}

// SelectTrainingSet greedily approximates A.1's NP-hard budgeted PP
// selection: maximize summed per-query benefit under a training budget.
func SelectTrainingSet(candidates []TrainingCandidate, budget float64) (*TrainingPlan, error) {
	return optimizer.SelectTrainingSet(candidates, budget)
}

// Streaming ingestion: an append-only, segment-versioned corpus plus
// standing queries that PP-filter each segment as it lands, with optional
// per-segment incremental (warm-started) PP retraining through the online
// watchdog. Concatenated deltas are byte-identical to a batch query over
// the same corpus and PP state (see DESIGN.md, "Streaming ingestion").
type (
	// SegmentedCorpus is the append-only blob log segments land in.
	SegmentedCorpus = stream.SegmentedCorpus
	// StreamSegment records one landed segment's index, version and range.
	StreamSegment = stream.Segment
	// StreamIngestor runs standing queries over a segmented corpus.
	StreamIngestor = stream.Ingestor
	// StreamConfig wires a Server (Corpus builder required), the segmented
	// corpus, and optionally an online system + ground-truth lookup.
	StreamConfig = stream.Config
	// StandingQuery declares one continuously evaluated predicate.
	StandingQuery = stream.Query
	// StreamDelta is one standing query's incremental result over one
	// segment, rows in blob-ID order.
	StreamDelta = stream.Delta
)

// NewSegmentedCorpus returns an empty append-only segmented corpus.
func NewSegmentedCorpus() *SegmentedCorpus { return stream.NewSegmentedCorpus() }

// NewStreamIngestor validates the config and returns an ingestor with no
// standing queries.
func NewStreamIngestor(cfg StreamConfig) (*StreamIngestor, error) { return stream.New(cfg) }
