package serve

import (
	"hash/fnv"
	"sync/atomic"
)

// Routing decides which replica of each shard serves one scatter leg.
// Because PP scores are pure and both caches are transparent, every replica
// of a shard returns byte-identical results — routing never affects outputs,
// only wall-clock latency and cache warmth. That is what makes the policy
// pluggable: it is a pure performance knob.

// RoutingPolicy names a built-in Router.
type RoutingPolicy string

const (
	// RouteRoundRobin rotates legs through a shard's replicas in arrival
	// order — the oblivious baseline.
	RouteRoundRobin RoutingPolicy = "round-robin"
	// RouteLeastLoaded sends each leg to the replica with the fewest queued
	// plus active sessions (live Server.Load counters), ties to the lowest
	// index.
	RouteLeastLoaded RoutingPolicy = "least-loaded"
	// RoutePlanAffinity hashes the session's canonical plan key, so repeat
	// predicates land on the replica whose plan and score caches are already
	// warm for them.
	RoutePlanAffinity RoutingPolicy = "plan-affinity"
)

func (p RoutingPolicy) valid() bool {
	switch p {
	case RouteRoundRobin, RouteLeastLoaded, RoutePlanAffinity:
		return true
	}
	return false
}

// Router picks the replica of one shard that serves one scatter leg. Pick is
// called concurrently by coordinator legs and must be safe for concurrent
// use. key is the session's canonical plan key (optimizer.PlanKey), replicas
// the shard's replica set in index order; the returned index must be in
// [0, len(replicas)).
type Router interface {
	// Name identifies the policy in metrics and reports.
	Name() string
	// Pick selects the serving replica for one leg of shard.
	Pick(shard int, key string, replicas []*Server) int
}

// newRouter builds the built-in router for a policy over shards shards.
// policy must be valid (Config.fill checked it).
func newRouter(policy RoutingPolicy, shards int) Router {
	switch policy {
	case RouteLeastLoaded:
		return leastLoadedRouter{}
	case RoutePlanAffinity:
		return planAffinityRouter{}
	default:
		return &roundRobinRouter{next: make([]atomic.Uint64, shards)}
	}
}

// roundRobinRouter keeps one rotation counter per shard, so each shard's
// replicas are cycled independently of how other shards route.
type roundRobinRouter struct{ next []atomic.Uint64 }

func (r *roundRobinRouter) Name() string { return string(RouteRoundRobin) }

func (r *roundRobinRouter) Pick(shard int, _ string, replicas []*Server) int {
	return int((r.next[shard].Add(1) - 1) % uint64(len(replicas)))
}

// leastLoadedRouter reads each replica's live queued+active counters at pick
// time. The snapshot is racy by design (load moves while we read), which is
// fine: a slightly stale pick only costs wall-clock, never correctness.
type leastLoadedRouter struct{}

func (leastLoadedRouter) Name() string { return string(RouteLeastLoaded) }

func (leastLoadedRouter) Pick(_ int, _ string, replicas []*Server) int {
	best, bestLoad := 0, int64(1<<62)
	for i, s := range replicas {
		q, a := s.Load()
		if load := q + a; load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// planAffinityRouter consistently hashes the canonical plan key, so the
// sessions that repeat a predicate all hit the one replica that has planned
// it (warm plan cache) and scored its blobs (warm score cache), instead of
// spreading — and re-paying — that work across every replica.
type planAffinityRouter struct{}

func (planAffinityRouter) Name() string { return string(RoutePlanAffinity) }

func (planAffinityRouter) Pick(_ int, key string, replicas []*Server) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(len(replicas)))
}
