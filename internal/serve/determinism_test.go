package serve

import (
	"testing"
)

// Determinism golden test: the same workload must produce byte-identical
// rendered outputs — row sets, row order and virtual costs — across every
// combination of engine worker count and score-cache mode. Workers only
// change how the simulator uses real cores; the score cache only changes
// real CPU spent. Neither may leak into results or accounting. CI runs this
// under -race, so the cross-worker and cross-session sharing is also checked
// for data races.
func TestServeDeterminismAcrossWorkersAndCache(t *testing.T) {
	type variant struct {
		name     string
		workers  int
		disabled bool
	}
	variants := []variant{
		{"w1-cache", 1, false},
		{"w4-cache", 4, false},
		{"w1-nocache", 1, true},
		{"w4-nocache", 4, true},
	}
	outputs := make(map[string]string, len(variants))
	for _, v := range variants {
		st := newMiniStack(t, 2000, func(c *Config) {
			c.Exec.Workers = v.workers
			c.DisableScoreCache = v.disabled
			c.MaxConcurrent = 4
		})
		resps, err := st.srv.Replay(miniWorkload, 4)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		outputs[v.name] = renderResponses(resps)
	}
	golden := outputs[variants[0].name]
	for _, v := range variants[1:] {
		if outputs[v.name] != golden {
			t.Errorf("variant %s diverged from %s:\n%s\nvs\n%s",
				v.name, variants[0].name, outputs[v.name], golden)
		}
	}
}

// TestReplayOrderIndependence: responses come back in workload order with
// per-query results independent of dispatch concurrency.
func TestReplayOrderIndependence(t *testing.T) {
	for _, conc := range []int{1, 3, 8} {
		st := newMiniStack(t, 1500, func(c *Config) { c.MaxConcurrent = 4 })
		resps, err := st.srv.Replay(miniWorkload, conc)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		for i, r := range resps {
			if r == nil {
				t.Fatalf("concurrency %d: response %d is nil", conc, i)
			}
			if r.ID != miniWorkload[i].ID {
				t.Fatalf("concurrency %d: response %d is %s, want %s", conc, i, r.ID, miniWorkload[i].ID)
			}
		}
		if conc == 1 {
			continue
		}
		// Rendered outputs must match the sequential replay exactly.
		seq := newMiniStack(t, 1500, nil)
		want, err := seq.srv.Replay(miniWorkload, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got, exp := renderResponses(resps), renderResponses(want); got != exp {
			t.Errorf("concurrency %d diverged from sequential replay:\n%s\nvs\n%s", conc, got, exp)
		}
	}
}

// TestScoreCacheEvictionKeepsResults: a score cache far too small for the
// stream (constant eviction pressure) still serves identical results.
func TestScoreCacheEvictionKeepsResults(t *testing.T) {
	full := newMiniStack(t, 1500, nil)
	tiny := newMiniStack(t, 1500, func(c *Config) {
		c.ScoreCacheSize = 64
		c.ScoreCacheShards = 4
	})
	rf, err := full.srv.Replay(miniWorkload, 2)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tiny.srv.Replay(miniWorkload, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderResponses(rf), renderResponses(rt); a != b {
		t.Fatalf("tiny score cache diverged:\n%s\nvs\n%s", a, b)
	}
	if n := tiny.srv.Stats().ScoreEntries; n > 64 {
		t.Fatalf("tiny cache holds %d entries, bound is 64", n)
	}
}
