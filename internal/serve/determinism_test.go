package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"probpred/internal/adapt"
	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// Determinism golden test: the same workload must produce byte-identical
// rendered outputs — row sets, row order and virtual costs — across every
// combination of engine worker count and score-cache mode. Workers only
// change how the simulator uses real cores; the score cache only changes
// real CPU spent. Neither may leak into results or accounting. CI runs this
// under -race, so the cross-worker and cross-session sharing is also checked
// for data races.
func TestServeDeterminismAcrossWorkersAndCache(t *testing.T) {
	type variant struct {
		name     string
		workers  int
		disabled bool
	}
	variants := []variant{
		{"w1-cache", 1, false},
		{"w4-cache", 4, false},
		{"w1-nocache", 1, true},
		{"w4-nocache", 4, true},
	}
	outputs := make(map[string]string, len(variants))
	for _, v := range variants {
		st := newMiniStack(t, 2000, func(c *Config) {
			c.Exec.Workers = v.workers
			c.DisableScoreCache = v.disabled
			c.MaxConcurrent = 4
		})
		resps, err := st.srv.Replay(miniWorkload, 4)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		outputs[v.name] = renderResponses(resps)
	}
	golden := outputs[variants[0].name]
	for _, v := range variants[1:] {
		if outputs[v.name] != golden {
			t.Errorf("variant %s diverged from %s:\n%s\nvs\n%s",
				v.name, variants[0].name, outputs[v.name], golden)
		}
	}
}

// TestReplayOrderIndependence: responses come back in workload order with
// per-query results independent of dispatch concurrency.
func TestReplayOrderIndependence(t *testing.T) {
	for _, conc := range []int{1, 3, 8} {
		st := newMiniStack(t, 1500, func(c *Config) { c.MaxConcurrent = 4 })
		resps, err := st.srv.Replay(miniWorkload, conc)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		for i, r := range resps {
			if r == nil {
				t.Fatalf("concurrency %d: response %d is nil", conc, i)
			}
			if r.ID != miniWorkload[i].ID {
				t.Fatalf("concurrency %d: response %d is %s, want %s", conc, i, r.ID, miniWorkload[i].ID)
			}
		}
		if conc == 1 {
			continue
		}
		// Rendered outputs must match the sequential replay exactly.
		seq := newMiniStack(t, 1500, nil)
		want, err := seq.srv.Replay(miniWorkload, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got, exp := renderResponses(resps), renderResponses(want); got != exp {
			t.Errorf("concurrency %d diverged from sequential replay:\n%s\nvs\n%s", conc, got, exp)
		}
	}
}

// driftStream inverts the validation statistics the mini corpus was labeled
// under: nearly everything is red (the rare color) and only every tenth blob
// is an SUV, so cached plans for SUV&red carry a stale short-circuit order.
func driftStream(n int) []blob.Blob {
	out := make([]blob.Blob, n)
	for i := range out {
		typ := 0.0 // sedan
		if i%10 == 0 {
			typ = 1 // SUV
		}
		out[i] = blob.FromDense(i, mathx.Vec{typ, 3 /* red */, 40, 0})
	}
	return out
}

// renderRowIDs renders responses as query ID plus output blob IDs only.
// Adaptive serving keeps rows byte-identical but may lower a session's
// virtual cost mid-run (that is its purpose), and under concurrent replay
// which sessions start on the promoted plan is schedule-dependent — so the
// adaptive goldens compare results, not per-session cost.
func renderRowIDs(resps []*Response) string {
	var sb strings.Builder
	for _, r := range resps {
		if r == nil {
			sb.WriteString("<nil>\n")
			continue
		}
		fmt.Fprintf(&sb, "%s ids=", r.ID)
		for i, row := range r.Result.Rows {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", row.Blob.ID)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Adaptive serving under drift: concurrent sessions share one cached plan
// while the adapt controller demotes it mid-run and promotes the re-ordered
// filter, and every served row set stays byte-identical to the non-adaptive
// server's. CI runs this under -race, so the demotion/promotion traffic
// against concurrent cache readers is also checked for data races.
func TestServeAdaptiveDeterminismUnderConcurrentDemotion(t *testing.T) {
	// Q4/Q5 share a canonical key; repeating them keeps several sessions on
	// the same entry while swaps demote and promote it.
	workload := []WorkloadQuery{
		{ID: "Q1", Pred: "t=SUV & c=red"},
		{ID: "Q2", Pred: "c=red & t=SUV"},
		{ID: "Q3", Pred: "t=SUV & c=red"},
		{ID: "Q4", Pred: "c=red & t=SUV"},
		{ID: "Q5", Pred: "t=SUV & c=red"},
		{ID: "Q6", Pred: "c=red & t=SUV"},
	}
	stream := driftStream(2000)
	baseline := newMiniStack(t, 100, func(c *Config) {
		c.Builder = &miniBuilder{blobs: stream, udf: miniUDF{cost: 40}}
	})
	want, err := baseline.srv.Replay(workload, 1)
	if err != nil {
		t.Fatal(err)
	}
	golden := renderRowIDs(want)

	for _, conc := range []int{1, 4} {
		st := newMiniStack(t, 100, func(c *Config) {
			c.Builder = &miniBuilder{blobs: stream, udf: miniUDF{cost: 40}}
			c.Adapt = adapt.New(adapt.Config{ChunkRows: 256})
			c.MaxConcurrent = 4
		})
		resps, err := st.srv.Replay(workload, conc)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		if got := renderRowIDs(resps); got != golden {
			t.Errorf("concurrency %d: adaptive results diverged:\n%s\nvs\n%s", conc, got, golden)
		}
		var swaps int
		for _, r := range resps {
			if r.Adapt == nil {
				t.Fatalf("concurrency %d: %s missing adapt report", conc, r.ID)
			}
			swaps += len(r.Adapt.Swaps)
		}
		if swaps == 0 {
			t.Errorf("concurrency %d: drift produced no swap", conc)
		}
		stats := st.srv.Stats()
		if stats.PlanDemotions == 0 || stats.PlanPromotions == 0 {
			t.Errorf("concurrency %d: cache not maintained: demotions=%d promotions=%d",
				conc, stats.PlanDemotions, stats.PlanPromotions)
		}
		// Promoted plans still resolve: the key serves from cache afterwards.
		if _, ok := st.srv.plans.get(want[0].PlanKey, st.corpus.Version()); !ok {
			t.Errorf("concurrency %d: promoted plan missing from cache", conc)
		}
	}
}

// The plan cache itself survives demote/promote/get storms: entries stay
// immutable (readers never observe a half-written entry) and the population
// stays bounded. Run under -race this is the cache's concurrency contract.
func TestPlanCacheConcurrentDemotePromote(t *testing.T) {
	st := newMiniStack(t, 200, nil)
	if _, err := st.srv.Replay(miniWorkload[:4], 2); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, 4)
	for _, q := range miniWorkload[:4] {
		resp, err := st.srv.Replay([]WorkloadQuery{q}, 1)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, resp[0].PlanKey)
	}
	version := st.corpus.Version()
	donors := make(map[string]*planEntry, len(keys))
	for _, k := range keys {
		e, ok := st.srv.plans.get(k, version)
		if !ok {
			t.Fatalf("key %q not cached", k)
		}
		donors[k] = e
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g+i)%len(keys)]
				switch g % 3 {
				case 0:
					st.srv.plans.demote(k)
				case 1:
					st.srv.plans.promote(donors[k], donors[k].filter)
				default:
					if e, ok := st.srv.plans.get(k, version); ok {
						if e.key != k || e.dec == nil {
							t.Errorf("torn entry for %q", k)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := st.srv.plans.len(); n > len(miniWorkload) {
		t.Fatalf("cache population %d exceeds workload plans", n)
	}
	if st.srv.plans.demotions.Load() == 0 || st.srv.plans.promotions.Load() == 0 {
		t.Fatal("counters did not move")
	}
}

// TestScoreCacheEvictionKeepsResults: a score cache far too small for the
// stream (constant eviction pressure) still serves identical results.
func TestScoreCacheEvictionKeepsResults(t *testing.T) {
	full := newMiniStack(t, 1500, nil)
	tiny := newMiniStack(t, 1500, func(c *Config) {
		c.ScoreCacheSize = 64
		c.ScoreCacheShards = 4
	})
	rf, err := full.srv.Replay(miniWorkload, 2)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tiny.srv.Replay(miniWorkload, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderResponses(rf), renderResponses(rt); a != b {
		t.Fatalf("tiny score cache diverged:\n%s\nvs\n%s", a, b)
	}
	if n := tiny.srv.Stats().ScoreEntries; n > 64 {
		t.Fatalf("tiny cache holds %d entries, bound is 64", n)
	}
}
