package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"probpred/internal/engine"
	"probpred/internal/metrics"
	"probpred/internal/query"
)

// TestPlanCacheSharesSemanticallyEqualQueries: queries that differ only in
// spelling (clause order, double negation) resolve to one plan-cache entry,
// and the cached plan serves identical rows.
func TestPlanCacheSharesSemanticallyEqualQueries(t *testing.T) {
	st := newMiniStack(t, 1500, nil)
	spellings := []string{
		"t=SUV & c=red",
		"c=red & t=SUV",
		"!(!(t=SUV)) & c=red",
	}
	var first *Response
	for i, s := range spellings {
		resp, err := st.srv.Do(Request{ID: s, Pred: query.MustParse(s)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if resp.PlanCached {
				t.Fatalf("first session unexpectedly hit the plan cache")
			}
			first = resp
			continue
		}
		if !resp.PlanCached {
			t.Errorf("spelling %q missed the plan cache", s)
		}
		if resp.PlanKey != first.PlanKey {
			t.Errorf("spelling %q got key %q, want %q", s, resp.PlanKey, first.PlanKey)
		}
		if got, want := len(resp.Result.Rows), len(first.Result.Rows); got != want {
			t.Fatalf("spelling %q returned %d rows, want %d", s, got, want)
		}
		for j := range resp.Result.Rows {
			if resp.Result.Rows[j].Blob.ID != first.Result.Rows[j].Blob.ID {
				t.Fatalf("spelling %q row %d diverged", s, j)
			}
		}
	}
	stats := st.srv.Stats()
	if stats.PlanMisses != 1 || stats.PlanHits != 2 {
		t.Errorf("plan cache hits/misses = %d/%d, want 2/1", stats.PlanHits, stats.PlanMisses)
	}
	if stats.PlanEntries != 1 {
		t.Errorf("plan cache holds %d entries, want 1", stats.PlanEntries)
	}
}

// TestPlanCacheInvalidatesOnCorpusChange: a corpus mutation (the watchdog's
// Remove, online training's Add) makes cached plans stale; the next session
// re-searches instead of serving a plan compiled against the old corpus.
func TestPlanCacheInvalidatesOnCorpusChange(t *testing.T) {
	st := newMiniStack(t, 1200, nil)
	pred := "t=SUV & c=red"
	if _, err := st.srv.Do(Request{ID: "warm", Pred: query.MustParse(pred)}); err != nil {
		t.Fatal(err)
	}
	// Watchdog trips the t=SUV PP: the cached plan uses a retired PP.
	if !st.corpus.Remove("t=SUV") {
		t.Fatal("corpus had no t=SUV PP to remove")
	}
	resp, err := st.srv.Do(Request{ID: "after", Pred: query.MustParse(pred)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PlanCached {
		t.Fatal("session served a stale cached plan after a corpus change")
	}
	for _, leaf := range resp.Decision.LeafClauses() {
		if leaf == "t=SUV" {
			t.Fatal("re-planned decision still uses the removed t=SUV PP")
		}
	}
	if inv := st.srv.Stats().PlanInvalidations; inv < 1 {
		t.Errorf("PlanInvalidations = %d, want >= 1", inv)
	}
}

// TestManualInvalidate: Invalidate flushes every entry.
func TestManualInvalidate(t *testing.T) {
	st := newMiniStack(t, 1000, nil)
	if _, err := st.srv.Do(Request{ID: "warm", Pred: query.MustParse("t=SUV")}); err != nil {
		t.Fatal(err)
	}
	st.srv.Invalidate()
	if n := st.srv.Stats().PlanEntries; n != 0 {
		t.Fatalf("plan cache holds %d entries after Invalidate, want 0", n)
	}
	resp, err := st.srv.Do(Request{ID: "again", Pred: query.MustParse("t=SUV")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PlanCached {
		t.Fatal("session hit the plan cache after Invalidate")
	}
}

// TestScoreCacheTransparent: the same workload served with the score cache
// enabled and disabled produces byte-identical outputs and virtual costs,
// while the enabled cache serves a large share of lookups from memory.
func TestScoreCacheTransparent(t *testing.T) {
	cached := newMiniStack(t, 1500, nil)
	uncached := newMiniStack(t, 1500, func(c *Config) { c.DisableScoreCache = true })
	rc, err := cached.srv.Replay(miniWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := uncached.srv.Replay(miniWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderResponses(rc), renderResponses(ru); a != b {
		t.Fatalf("cached and uncached outputs diverged:\ncached:\n%s\nuncached:\n%s", a, b)
	}
	cs, us := cached.srv.Stats(), uncached.srv.Stats()
	if cs.ScoreHits == 0 {
		t.Error("enabled score cache recorded no hits on an overlapping workload")
	}
	if us.ScoreHits != 0 {
		t.Errorf("disabled score cache recorded %d hits, want 0", us.ScoreHits)
	}
	if us.ScoreEntries != 0 {
		t.Errorf("disabled score cache stored %d entries, want 0", us.ScoreEntries)
	}
	// Same sessions, same predicates: lookup totals match, and the enabled
	// cache's misses (= fresh evaluations) are strictly fewer.
	if cs.ScoreHits+cs.ScoreMisses != us.ScoreMisses {
		t.Errorf("lookup totals diverged: cached %d+%d vs uncached %d",
			cs.ScoreHits, cs.ScoreMisses, us.ScoreMisses)
	}
	if cs.ScoreMisses >= us.ScoreMisses {
		t.Errorf("caching did not reduce evaluations: %d vs %d", cs.ScoreMisses, us.ScoreMisses)
	}
}

// TestPerRunCacheCountersUnderConcurrency: concurrent sessions hitting the
// same cached plan object each report exactly their own score-cache lookups
// in PerOp (the shared-plan accounting fix, end to end through serve).
func TestPerRunCacheCountersUnderConcurrency(t *testing.T) {
	st := newMiniStack(t, 1500, func(c *Config) {
		c.MaxConcurrent = 4
		c.Exec.Workers = 4
	})
	pred := query.MustParse("t=SUV & c=red")
	// Warm plan and score caches.
	warm, err := st.srv.Do(Request{ID: "warm", Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Decision.Inject {
		t.Skip("optimizer declined to inject; no PP op to check")
	}
	ppLookups := func(r *Response) (hits, misses uint64) {
		for _, op := range r.Result.PerOp {
			if op.PPFilter {
				return op.CacheHits, op.CacheMisses
			}
		}
		t.Fatal("no PPFilter op in result")
		return 0, 0
	}
	wh, wm := ppLookups(warm)
	if wh+wm == 0 {
		t.Fatal("warm run recorded no score-cache lookups")
	}
	const sessions = 8
	resps := make([]*Response, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = st.srv.Do(Request{ID: "c", Pred: pred})
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		h, m := ppLookups(resps[i])
		// After warmup every lookup hits, and each session sees exactly the
		// warm run's lookup count — interleaved accounting would smear
		// counts across sessions.
		if h != wh+wm || m != 0 {
			t.Errorf("session %d: hits=%d misses=%d, want %d/0", i, h, m, wh+wm)
		}
	}
}

// TestAdmissionControl: MaxConcurrent bounds simultaneously executing
// sessions even when Replay dispatches more workers.
func TestAdmissionControl(t *testing.T) {
	var active, maxActive atomic.Int64
	st := newMiniStack(t, 1200, func(c *Config) {
		c.MaxConcurrent = 1
		c.Builder = &gateBuilder{inner: c.Builder.(*miniBuilder), active: &active, maxActive: &maxActive}
	})
	if _, err := st.srv.Replay(miniWorkload, 4); err != nil {
		t.Fatal(err)
	}
	if got := maxActive.Load(); got > 1 {
		t.Fatalf("observed %d concurrently executing sessions, admission cap is 1", got)
	}
}

// gateBuilder wraps the mini builder with a processor that tracks how many
// sessions are executing rows at once.
type gateBuilder struct {
	inner     *miniBuilder
	active    *atomic.Int64
	maxActive *atomic.Int64
}

func (g *gateBuilder) UDFCost(p query.Pred) (float64, error) { return g.inner.UDFCost(p) }

func (g *gateBuilder) Build(pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	plan, err := g.inner.Build(pred, filter)
	if err != nil {
		return plan, err
	}
	for i, op := range plan.Ops {
		if p, ok := op.(*engine.Process); ok {
			plan.Ops[i] = &engine.Process{P: gateUDF{inner: p.P, g: g}}
		}
	}
	return plan, nil
}

type gateUDF struct {
	inner engine.Processor
	g     *gateBuilder
}

func (u gateUDF) Name() string  { return u.inner.Name() }
func (u gateUDF) Cost() float64 { return u.inner.Cost() }
func (u gateUDF) Apply(r engine.Row) ([]engine.Row, error) {
	n := u.g.active.Add(1)
	for {
		m := u.g.maxActive.Load()
		if n <= m || u.g.maxActive.CompareAndSwap(m, n) {
			break
		}
	}
	defer u.g.active.Add(-1)
	return u.inner.Apply(r)
}

// TestServeMetrics: the serving counters and gauges land in the registry.
func TestServeMetrics(t *testing.T) {
	reg := metrics.New()
	st := newMiniStack(t, 1000, func(c *Config) { c.Metrics = reg })
	if _, err := st.srv.Replay(miniWorkload[:5], 2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("serve_sessions_total", "").Value(); got != 5 {
		t.Errorf("serve_sessions_total = %v, want 5", got)
	}
	hits := reg.Counter("serve_plan_cache_hits_total", "").Value()
	misses := reg.Counter("serve_plan_cache_misses_total", "").Value()
	if hits+misses != 5 {
		t.Errorf("plan cache hits+misses = %v+%v, want 5 total", hits, misses)
	}
	if misses == 0 {
		t.Error("expected at least one plan-cache miss on a cold server")
	}
	if reg.Gauge("serve_active_sessions", "").Value() != 0 {
		t.Error("active-session gauge nonzero after all sessions completed")
	}
	if reg.Gauge("serve_admission_queue_depth", "").Value() != 0 {
		t.Error("admission-queue gauge nonzero after all sessions completed")
	}
}
