package serve

// Sharded scatter-gather serving: the step from "one process, one corpus" to
// horizontally scaled inference. The blob corpus is partitioned into N
// contiguous shards; each shard owns one or more replicas — a replica is a
// full Server with its own worker pool (admission semaphore), plan cache and
// PP-score cache over the shard's slice. A Coordinator fans each session out
// to every shard (scatter), a pluggable Router picks the serving replica per
// shard, legs PP-filter their slices in parallel, and the gather merges
// per-shard results deterministically: rows concatenate in shard-index order
// (the contiguous split makes that exactly global blob-ID order), virtual
// cluster cost sums, and per-operator accounting sums positionally. Because
// every engine cost in these plans is charged strictly per row, the merged
// rows, row order and ClusterTime are byte-identical to unsharded execution
// — sharding, like the caches, is a pure wall-clock optimization.

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"probpred/internal/blob"
	"probpred/internal/engine"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/optimizer"
	"probpred/internal/pplog"
)

// ShardedConfig configures a Coordinator.
type ShardedConfig struct {
	// Base is the per-replica server template: optimizer, accuracy target,
	// domains, per-replica MaxConcurrent (the shard's worker-pool width),
	// exec environment, cache sizes and Routing policy. Base.Builder is
	// ignored — plans are assembled by Builder below, bound to each shard's
	// corpus slice.
	Base Config
	// Shards is the number of corpus partitions. Zero selects 1.
	Shards int
	// Replicas is the number of worker sets (full Servers) per shard — the
	// replica fan-out hook that lets a hot shard be served by more than one
	// worker set. Zero selects 1.
	Replicas int
	// Corpus is the full blob stream, partitioned contiguously across
	// shards. Required.
	Corpus []blob.Blob
	// Builder assembles per-shard plans over injected corpus slices.
	// Required.
	Builder CorpusBuilder
}

// SplitBlobs partitions blobs into n contiguous slices (the first
// len(blobs)%n slices are one longer). Contiguity is what makes the
// shard-index-order gather reproduce the unsharded scan order exactly.
func SplitBlobs(blobs []blob.Blob, n int) [][]blob.Blob {
	if n < 1 {
		n = 1
	}
	out := make([][]blob.Blob, n)
	base, rem := len(blobs)/n, len(blobs)%n
	at := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = blobs[at : at+size]
		at += size
	}
	return out
}

// shard is one corpus partition and its replica set.
type shard struct {
	index    int
	blobs    []blob.Blob
	replicas []*Server
}

// Coordinator serves sessions scatter-gather over sharded replicas. Safe for
// concurrent Do calls.
type Coordinator struct {
	cfg      ShardedConfig
	shards   []*shard
	router   Router
	accuracy float64 // resolved default accuracy (Base.Accuracy, 0 → 1)

	sessions, failures atomic.Uint64
}

// NewSharded validates the config, partitions the corpus and builds
// Shards × Replicas replica servers. All replicas share the coordinator's
// optimizer (Base.Optimizer) behind one plan-search lock, and each gets its
// own plan cache, score cache and admission semaphore over its shard's
// corpus slice.
func NewSharded(cfg ShardedConfig) (*Coordinator, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Builder == nil {
		return nil, fmt.Errorf("serve: ShardedConfig.Builder is required")
	}
	if len(cfg.Corpus) < cfg.Shards {
		return nil, fmt.Errorf("serve: corpus of %d blobs cannot fill %d shards", len(cfg.Corpus), cfg.Shards)
	}
	c := &Coordinator{cfg: cfg, accuracy: cfg.Base.Accuracy}
	if c.accuracy == 0 {
		c.accuracy = 1
	}
	// One lock for every replica: they share Base.Optimizer, whose search
	// state is not safe for concurrent use across servers either.
	sharedOptMu := &sync.Mutex{}
	slices := SplitBlobs(cfg.Corpus, cfg.Shards)
	for i, slice := range slices {
		sh := &shard{index: i, blobs: slice}
		for r := 0; r < cfg.Replicas; r++ {
			rcfg := cfg.Base
			rcfg.Builder = BindCorpus(cfg.Builder, slice)
			srv, err := New(rcfg)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d replica %d: %w", i, r, err)
			}
			srv.optMu = sharedOptMu
			sh.replicas = append(sh.replicas, srv)
		}
		c.shards = append(c.shards, sh)
	}
	// fill() validated Routing on the first replica; read the defaulted
	// value back off it so an empty policy resolves to round-robin here too.
	c.router = newRouter(c.shards[0].replicas[0].cfg.Routing, cfg.Shards)
	return c, nil
}

// Routing reports the coordinator's effective routing policy.
func (c *Coordinator) Routing() RoutingPolicy {
	return c.shards[0].replicas[0].cfg.Routing
}

// leg is one shard's portion of a scattered session.
type leg struct {
	shard   int
	replica int
	resp    *Response
	err     error
}

// Do serves one session scatter-gather: route a leg per shard, run the legs
// in parallel, and merge. The merged Response carries the concatenated rows
// (global blob order), summed cluster cost and positionally summed PerOp
// stats; QueueWait is the slowest leg's admission wait and Service the
// scatter-to-merge wall time. Adapt reports are per-leg and are not merged
// (nil on the merged response when Shards > 1). When any shard fails the
// session fails: every failing shard's error is aggregated with its shard
// index attributed, a shard.fail event is emitted per failure (tripping
// FlightRecorder auto-dump), and completed legs are discarded — graceful
// degradation is "the query errors out attributed", never a hang.
func (c *Coordinator) Do(req Request) (*Response, error) {
	if req.Pred == nil {
		return nil, fmt.Errorf("serve: request %q has no predicate", req.ID)
	}
	accuracy := req.Accuracy
	if accuracy < 0 || accuracy > 1 {
		return nil, fmt.Errorf("serve: request %q accuracy %v outside [0,1] (zero selects the server default)", req.ID, accuracy)
	}
	if accuracy == 0 {
		accuracy = c.accuracy
	}
	key := optimizer.PlanKey(req.Pred, accuracy)
	c.sessions.Add(1)

	// One trace for the whole scatter: the coordinator mints it (or adopts
	// the caller's), every leg serves under it, and the coordinator span is
	// the parent every leg session span hangs off.
	tr := c.cfg.Base.Obs
	trace := req.Trace
	if trace == "" {
		trace = obs.NewTraceID()
	}
	name := req.ID
	if name == "" {
		name = req.Pred.String()
	}
	policy := c.router.Name()
	span := tr.BeginCtx(obs.TraceContext{TraceID: trace}, obs.KindSession, name)
	span.SetAttr("scatter", strconv.Itoa(len(c.shards)))
	span.SetAttr("policy", policy)
	span.SetAttr("plan_key", key)
	ctx := obs.TraceContext{TraceID: trace, SpanID: span.ID}
	start := time.Now()

	legs := make([]leg, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		pick := c.router.Pick(sh.index, key, sh.replicas)
		if pick < 0 || pick >= len(sh.replicas) {
			pick = 0
		}
		legs[i] = leg{shard: i, replica: pick}
		c.recordRoute(sh, pick)
		wg.Add(1)
		go func(l *leg, srv *Server) {
			defer wg.Done()
			lreq := req
			lreq.Trace = trace
			lreq.leg = &legInfo{shard: l.shard, replica: l.replica, policy: policy, parent: ctx}
			l.resp, l.err = srv.Do(lreq)
		}(&legs[i], sh.replicas[pick])
	}
	wg.Wait()
	for i := range c.shards {
		c.publishShardLoad(i)
	}

	var failed []error
	for i := range legs {
		if legs[i].err != nil {
			failed = append(failed, fmt.Errorf("shard %d (replica %d): %w", legs[i].shard, legs[i].replica, legs[i].err))
			c.recordShardFailure(ctx, legs[i].shard, legs[i].err)
		}
	}
	if len(failed) > 0 {
		c.failures.Add(1)
		err := fmt.Errorf("serve: scatter %q: %w", req.ID, errors.Join(failed...))
		span.SetAttr("error", err.Error())
		tr.End(&span)
		c.logScatter(req, nil, legs, trace, key, time.Since(start), err)
		return nil, err
	}
	resp := mergeLegs(legs)
	resp.Service = time.Since(start)
	resp.TraceID = trace
	span.RowsOut = len(resp.Result.Rows)
	span.CostVMS = resp.Result.ClusterTime
	tr.End(&span)
	c.logScatter(req, resp, legs, trace, key, resp.Service, nil)
	return resp, nil
}

// logScatter writes the coordinator's merged query-log record: the session
// view (Leg nil) with per-leg timings attached. Each leg's replica server has
// already written its own leg record under the same TraceID.
func (c *Coordinator) logScatter(req Request, resp *Response, legs []leg, trace, key string, service time.Duration, err error) {
	qlog := c.cfg.Base.QueryLog
	if qlog == nil {
		return
	}
	acc := req.Accuracy
	if acc == 0 {
		acc = c.accuracy
	}
	rec := pplog.Record{
		TimeUnixNS: time.Now().UnixNano(),
		TraceID:    trace,
		Session:    req.ID,
		PlanKey:    key,
		Accuracy:   acc,
		ServiceNS:  service.Nanoseconds(),
		Policy:     c.router.Name(),
	}
	for i := range legs {
		l := pplog.Leg{Shard: legs[i].shard, Replica: legs[i].replica}
		if r := legs[i].resp; r != nil {
			l.QueueWaitNS = r.QueueWait.Nanoseconds()
			l.ServiceNS = r.Service.Nanoseconds()
			if r.Result != nil {
				l.Rows = len(r.Result.Rows)
			}
		}
		if legs[i].err != nil {
			l.Error = legs[i].err.Error()
		}
		rec.Legs = append(rec.Legs, l)
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if resp != nil {
		rec.PlanCached = resp.PlanCached
		rec.QueueWaitNS = resp.QueueWait.Nanoseconds()
		if resp.Result != nil {
			rec.Rows = len(resp.Result.Rows)
			rec.ClusterVMS = resp.Result.ClusterTime
			for _, op := range resp.Result.PerOp {
				if op.PPFilter {
					rec.PPTested += op.RowsIn
					rec.PPPassed += op.RowsOut
				}
			}
			if rec.PPTested > 0 {
				rec.ObsReduction = 1 - float64(rec.PPPassed)/float64(rec.PPTested)
			}
		}
		if resp.Decision.Inject {
			rec.EstReduction = resp.Decision.Reduction
		}
	}
	qlog.Log(rec)
}

// mergeLegs gathers successful legs (shard-index order) into one response.
func mergeLegs(legs []leg) *Response {
	first := legs[0].resp
	if len(legs) == 1 {
		return first
	}
	merged := &Response{
		ID:         first.ID,
		Decision:   first.Decision,
		PlanKey:    first.PlanKey,
		PlanCached: true,
	}
	res := &engine.Result{
		Stats: &engine.Stats{
			OpCost:  map[string]float64{},
			RowsIn:  map[string]int{},
			RowsOut: map[string]int{},
		},
	}
	total := 0
	for i := range legs {
		total += len(legs[i].resp.Result.Rows)
	}
	res.Rows = make([]engine.Row, 0, total)
	samePlanShape := true
	for i := range legs {
		l := legs[i].resp
		r := l.Result
		// Shard-index order; each slice is already in blob order, and the
		// contiguous split makes the concatenation globally blob-ordered.
		res.Rows = append(res.Rows, r.Rows...)
		res.ClusterTime += r.ClusterTime
		// Legs execute in parallel: modeled end-to-end latency is the
		// slowest shard, not the sum.
		if r.Latency > res.Latency {
			res.Latency = r.Latency
		}
		if r.Stages > res.Stages {
			res.Stages = r.Stages
		}
		res.Chunks += r.Chunks
		res.SwapErrors += r.SwapErrors
		res.Swaps = append(res.Swaps, r.Swaps...)
		res.Stats.Cluster += r.Stats.Cluster
		for k, v := range r.Stats.OpCost {
			res.Stats.OpCost[k] += v
		}
		for k, v := range r.Stats.RowsIn {
			res.Stats.RowsIn[k] += v
		}
		for k, v := range r.Stats.RowsOut {
			res.Stats.RowsOut[k] += v
		}
		if len(r.PerOp) != len(legs[0].resp.Result.PerOp) {
			samePlanShape = false
		}
		if !l.PlanCached {
			merged.PlanCached = false
		}
		if l.QueueWait > merged.QueueWait {
			merged.QueueWait = l.QueueWait
		}
	}
	if samePlanShape {
		res.PerOp = make([]engine.OpStats, len(first.Result.PerOp))
		for i := range legs {
			for j, op := range legs[i].resp.Result.PerOp {
				m := &res.PerOp[j]
				m.Name, m.StageBoundary, m.PPFilter = op.Name, op.StageBoundary, op.PPFilter
				m.RowsIn += op.RowsIn
				m.RowsOut += op.RowsOut
				m.Cost += op.Cost
				m.WallNS += op.WallNS
				m.Retries += op.Retries
				m.Timeouts += op.Timeouts
				m.CacheHits += op.CacheHits
				m.CacheMisses += op.CacheMisses
			}
		}
	}
	merged.Result = res
	return merged
}

// recordRoute counts one routing decision and refreshes the shard's load
// gauges at pick time.
func (c *Coordinator) recordRoute(sh *shard, replica int) {
	if reg := c.cfg.Base.Metrics; reg != nil {
		reg.Counter("serve_route_decisions_total", "Scatter legs routed, by policy, shard and replica.",
			routeLabels(c.router.Name(), sh.index, replica)...).Inc()
	}
	c.publishShardLoad(sh.index)
}

// publishShardLoad republishes one shard's live queue-depth and active
// session counts (summed over its replicas) as shard-labeled gauges.
func (c *Coordinator) publishShardLoad(shardIdx int) {
	reg := c.cfg.Base.Metrics
	if reg == nil {
		return
	}
	var queued, active int64
	for _, r := range c.shards[shardIdx].replicas {
		q, a := r.Load()
		queued += q
		active += a
	}
	lbl := shardLabel(shardIdx)
	reg.Gauge("serve_shard_queue_depth", "Sessions waiting for a slot on this shard (all replicas).", lbl).Set(float64(queued))
	reg.Gauge("serve_shard_active", "Sessions executing on this shard (all replicas).", lbl).Set(float64(active))
}

// recordShardFailure counts a failed leg and emits the shard.fail event that
// trips FlightRecorder auto-dump, so the trace ring around the failure is
// preserved. The event carries the session's trace context.
func (c *Coordinator) recordShardFailure(ctx obs.TraceContext, shardIdx int, err error) {
	if reg := c.cfg.Base.Metrics; reg != nil {
		reg.Counter("serve_shard_failures_total", "Scatter legs that failed, by shard.", shardLabel(shardIdx)).Inc()
	}
	c.cfg.Base.Obs.EventCtx(ctx, "shard.fail",
		obs.Attr{Key: "shard", Value: strconv.Itoa(shardIdx)},
		obs.Attr{Key: "error", Value: err.Error()})
}

// Stats sums session and cache counters across every replica and adds the
// coordinator's own scatter counters. ScatterSessions counts merged sessions
// (each fans out to Shards legs, so Sessions ≈ ScatterSessions × Shards).
func (c *Coordinator) Stats() Stats {
	var out Stats
	for _, sh := range c.shards {
		for _, r := range sh.replicas {
			st := r.Stats()
			out.Sessions += st.Sessions
			out.PlanHits += st.PlanHits
			out.PlanMisses += st.PlanMisses
			out.PlanInvalidations += st.PlanInvalidations
			out.PlanEntries += st.PlanEntries
			out.ScoreHits += st.ScoreHits
			out.ScoreMisses += st.ScoreMisses
			out.ScoreEntries += st.ScoreEntries
			out.PlanDemotions += st.PlanDemotions
			out.PlanPromotions += st.PlanPromotions
		}
	}
	out.ScatterSessions = c.sessions.Load()
	out.ScatterFailures = c.failures.Load()
	return out
}

// ReplicaStats snapshots every replica's counters, indexed [shard][replica]
// — the per-shard view behind cache-warmth assertions and reports.
func (c *Coordinator) ReplicaStats() [][]Stats {
	out := make([][]Stats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = make([]Stats, len(sh.replicas))
		for j, r := range sh.replicas {
			out[i][j] = r.Stats()
		}
	}
	return out
}

// Shards reports the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Invalidate drops every replica's cached plans.
func (c *Coordinator) Invalidate() {
	for _, sh := range c.shards {
		for _, r := range sh.replicas {
			r.Invalidate()
		}
	}
}

func shardLabel(i int) metrics.Label { return metrics.L("shard", strconv.Itoa(i)) }

func routeLabels(policy string, shard, replica int) []metrics.Label {
	return []metrics.Label{
		metrics.L("policy", policy),
		shardLabel(shard),
		metrics.L("replica", strconv.Itoa(replica)),
	}
}

// Replay mirrors Server.Replay over the coordinator: it parses and serves a
// workload at the given concurrency, responses in workload order, failures
// aggregated per query (errors.Join), never aborting the rest.
func (c *Coordinator) Replay(workload []WorkloadQuery, concurrency int) ([]*Response, error) {
	return replay(c, workload, concurrency)
}
