package serve

// Test harness: a miniature serving stack over "mini traffic" blobs whose
// dense features directly encode ground-truth attributes (the same scheme as
// the optimizer's test harness), plus a QueryBuilder modeling a one-UDF
// pipeline. Everything is seeded and deterministic.

import (
	"fmt"
	"strings"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/dimred"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// Feature layout of a mini traffic blob.
const (
	fType  = 0 // vehicle type index 0..3
	fColor = 1 // color index 0..4
	fSpeed = 2 // speed 0..80
	fNoise = 3 // per-blob noise making speed PPs imperfect
)

var (
	miniTypes  = []string{"sedan", "SUV", "truck", "van"}
	miniColors = []string{"white", "black", "silver", "red", "other"}
)

func miniBlobs(n int, seed uint64) []blob.Blob {
	rng := mathx.NewRNG(seed)
	out := make([]blob.Blob, n)
	for i := range out {
		t := rng.Choice([]float64{0.45, 0.25, 0.14, 0.16})
		c := rng.Choice([]float64{0.33, 0.25, 0.20, 0.12, 0.10})
		s := mathx.Clamp(40+rng.NormFloat64()*15, 0, 80)
		out[i] = blob.FromDense(i, mathx.Vec{float64(t), float64(c), s, rng.NormFloat64()})
	}
	return out
}

func miniLookup(b blob.Blob) query.Lookup {
	return func(col string) (query.Value, bool) {
		switch col {
		case "t":
			return query.Str(miniTypes[int(b.Dense[fType])]), true
		case "c":
			return query.Str(miniColors[int(b.Dense[fColor])]), true
		case "s":
			return query.Number(b.Dense[fSpeed]), true
		}
		return query.Value{}, false
	}
}

func miniSet(t *testing.T, blobs []blob.Blob, pred string) blob.Set {
	t.Helper()
	p := query.MustParse(pred)
	var s blob.Set
	for _, b := range blobs {
		ok, err := p.Eval(miniLookup(b))
		if err != nil {
			t.Fatalf("labeling %q: %v", pred, err)
		}
		s.Append(b, ok)
	}
	return s
}

type exactScorer struct {
	dim  int
	want float64
	cost float64
}

func (s exactScorer) Score(x mathx.Vec) float64 {
	if x[s.dim] == s.want {
		return 1
	}
	return -1
}
func (s exactScorer) Name() string  { return "exact" }
func (s exactScorer) Cost() float64 { return s.cost }

type speedScorer struct {
	sign  float64
	noise float64
	cost  float64
}

func (s speedScorer) Score(x mathx.Vec) float64 {
	return s.sign * (x[fSpeed] + x[fNoise]*s.noise)
}
func (s speedScorer) Name() string  { return "speed" }
func (s speedScorer) Cost() float64 { return s.cost }

func miniCorpus(t *testing.T, val []blob.Blob) *optimizer.Corpus {
	t.Helper()
	c := optimizer.NewCorpus()
	id := dimred.Identity{Dim: 4}
	addExact := func(clause string, dim int, want float64, cost float64) {
		set := miniSet(t, val, clause)
		pp, err := core.NewPP(clause, "test", id, exactScorer{dim: dim, want: want, cost: cost}, set)
		if err != nil {
			t.Fatalf("building %q: %v", clause, err)
		}
		c.Add(pp)
	}
	for i, typ := range miniTypes {
		addExact("t="+typ, fType, float64(i), 1.0)
	}
	for i, col := range miniColors {
		addExact("c="+col, fColor, float64(i), 1.0)
	}
	addSpeed := func(clause string, sign float64) {
		set := miniSet(t, val, clause)
		pp, err := core.NewPP(clause, "test", id, speedScorer{sign: sign, noise: 4, cost: 1.2}, set)
		if err != nil {
			t.Fatalf("building %q: %v", clause, err)
		}
		c.Add(pp)
	}
	for _, v := range []string{"40", "50", "60"} {
		addSpeed("s>"+v, 1)
	}
	for _, v := range []string{"65", "70"} {
		addSpeed("s<"+v, -1)
	}
	return c
}

func miniDomains() map[string][]query.Value {
	d := map[string][]query.Value{}
	for _, t := range miniTypes {
		d["t"] = append(d["t"], query.Str(t))
	}
	for _, c := range miniColors {
		d["c"] = append(d["c"], query.Str(c))
	}
	for s := 0.0; s <= 80; s += 10 {
		d["s"] = append(d["s"], query.Number(s))
	}
	return d
}

// miniUDF materializes t/c/s columns from the encoded features, standing in
// for the detector+attribute pipeline the PP short-circuits.
type miniUDF struct{ cost float64 }

func (u miniUDF) Name() string  { return "miniUDF" }
func (u miniUDF) Cost() float64 { return u.cost }
func (u miniUDF) Apply(r engine.Row) ([]engine.Row, error) {
	lk := miniLookup(r.Blob)
	out := r
	for _, col := range []string{"t", "c", "s"} {
		v, _ := lk(col)
		out = out.With(col, v)
	}
	return []engine.Row{out}, nil
}

// miniBuilder implements QueryBuilder: scan → [PP filter] → UDF → σ.
type miniBuilder struct {
	blobs []blob.Blob
	udf   engine.Processor
}

func (b *miniBuilder) UDFCost(query.Pred) (float64, error) { return b.udf.Cost(), nil }

func (b *miniBuilder) Build(pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	ops := []engine.Operator{&engine.Scan{Blobs: b.blobs}}
	if filter != nil {
		ops = append(ops, &engine.PPFilter{F: filter})
	}
	ops = append(ops, &engine.Process{P: b.udf}, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}, nil
}

// miniStack is one fully wired serving fixture.
type miniStack struct {
	blobs  []blob.Blob
	corpus *optimizer.Corpus
	srv    *Server
}

// newMiniStack builds a seeded corpus + server. mutate adjusts the config
// before New (nil for defaults).
func newMiniStack(t *testing.T, nBlobs int, mutate func(*Config)) *miniStack {
	t.Helper()
	blobs := miniBlobs(nBlobs, 7)
	val := miniBlobs(400, 8)
	corpus := miniCorpus(t, val)
	cfg := Config{
		Optimizer: optimizer.New(corpus),
		Builder:   &miniBuilder{blobs: blobs, udf: miniUDF{cost: 40}},
		Accuracy:  0.95,
		Domains:   miniDomains(),
		Exec:      engine.Config{NoStageOverhead: true},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &miniStack{blobs: blobs, corpus: corpus, srv: srv}
}

// renderResponses flattens responses into one canonical string: query ID,
// result cardinality and cluster time, and every output blob ID in order.
// Byte-equal renderings mean byte-equal served results.
func renderResponses(resps []*Response) string {
	var sb strings.Builder
	for _, r := range resps {
		if r == nil {
			sb.WriteString("<nil>\n")
			continue
		}
		fmt.Fprintf(&sb, "%s rows=%d cluster=%.6f ids=", r.ID, len(r.Result.Rows), r.Result.ClusterTime)
		for i, row := range r.Result.Rows {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", row.Blob.ID)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// miniWorkload is an overlapping-predicate workload in the TRAF20 spirit:
// the same clauses recur across queries in different combinations and
// spellings, which is what makes both caches earn their keep.
var miniWorkload = []WorkloadQuery{
	{ID: "Q1", Pred: "t=SUV"},
	{ID: "Q2", Pred: "c=red"},
	{ID: "Q3", Pred: "s>60"},
	{ID: "Q4", Pred: "t=SUV & c=red"},
	{ID: "Q5", Pred: "c=red & t=SUV"}, // Q4 respelled: same canonical plan
	{ID: "Q6", Pred: "t=SUV & s>60"},
	{ID: "Q7", Pred: "t=truck | t=van"},
	{ID: "Q8", Pred: "c=red & s>60"},
	{ID: "Q9", Pred: "t=SUV & c=red & s>60"},
	{ID: "Q10", Pred: "s>60 & t=SUV"}, // Q6 respelled
}
