package serve

// Regression tests for the PR 7 serving-path fixes (per-request accuracy
// validation, Config.fill's accuracy contract, Replay error aggregation) and
// for the enqueue→admit / admit→done timing split behind the
// serve_admission_wait_ns / serve_service_ns histograms.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"probpred/internal/engine"
	"probpred/internal/metrics"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// TestRequestAccuracyValidation: an out-of-range per-request accuracy is
// rejected before it reaches the optimizer — pre-fix it flowed into
// optimizer.Optimize and was baked into the plan-cache key, permanently
// polluting the cache for every later request with the same spelling.
func TestRequestAccuracyValidation(t *testing.T) {
	st := newMiniStack(t, 400, nil)
	for _, acc := range []float64{-0.5, -0.0001, 1.0001, 42} {
		resp, err := st.srv.Do(Request{ID: "bad", Pred: query.MustParse("t=SUV"), Accuracy: acc})
		if err == nil {
			t.Fatalf("accuracy %v was accepted", acc)
		}
		if !strings.Contains(err.Error(), "[0,1]") {
			t.Errorf("accuracy %v rejection does not state the accepted range: %v", acc, err)
		}
		if resp != nil {
			t.Errorf("accuracy %v returned a response alongside the error", acc)
		}
	}
	stats := st.srv.Stats()
	if stats.PlanEntries != 0 || stats.PlanMisses != 0 {
		t.Fatalf("rejected requests reached the plan cache: entries=%d misses=%d",
			stats.PlanEntries, stats.PlanMisses)
	}
	// The boundaries of the accepted range still serve: 0 selects the server
	// default, 1 is the strictest target.
	for _, acc := range []float64{0, 1} {
		if _, err := st.srv.Do(Request{ID: "ok", Pred: query.MustParse("t=SUV"), Accuracy: acc}); err != nil {
			t.Fatalf("accuracy %v rejected: %v", acc, err)
		}
	}
}

// TestConfigAccuracyValidation: Config.fill accepts [0,1] with zero meaning
// "default to 1", and says so — pre-fix the error text claimed the accepted
// range was (0,1] while zero was silently remapped before the check.
func TestConfigAccuracyValidation(t *testing.T) {
	blobs := miniBlobs(100, 7)
	corpus := miniCorpus(t, miniBlobs(100, 8))
	mk := func(acc float64) error {
		_, err := New(Config{
			Optimizer: optimizer.New(corpus),
			Builder:   &miniBuilder{blobs: blobs, udf: miniUDF{cost: 40}},
			Accuracy:  acc,
		})
		return err
	}
	for _, acc := range []float64{0, 0.5, 1} {
		if err := mk(acc); err != nil {
			t.Errorf("accuracy %v rejected: %v", acc, err)
		}
	}
	for _, acc := range []float64{-0.1, 1.5} {
		err := mk(acc)
		if err == nil {
			t.Fatalf("accuracy %v was accepted", acc)
		}
		if !strings.Contains(err.Error(), "[0,1]") {
			t.Errorf("accuracy %v rejection does not match the accepted range: %v", acc, err)
		}
	}
}

// TestReplayAggregatesAllErrors: Replay runs the whole workload and reports
// every failure — pre-fix the doc promised abort-on-first-error while the
// code continued, and only the first error was returned.
func TestReplayAggregatesAllErrors(t *testing.T) {
	st := newMiniStack(t, 300, nil)
	wl := []WorkloadQuery{
		{ID: "good1", Pred: "t=SUV"},
		{ID: "bad-parse", Pred: "t=%%"},
		{ID: "bad-accuracy", Pred: "c=red", Accuracy: 7},
		{ID: "good2", Pred: "c=red"},
	}
	// One worker: with the old abort-on-first-error contract nothing after
	// bad-parse would have run.
	resps, err := st.srv.Replay(wl, 1)
	if err == nil {
		t.Fatal("Replay returned no error for a workload with two failing queries")
	}
	for _, want := range []string{"query bad-parse", "query bad-accuracy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error is missing %q: %v", want, err)
		}
	}
	if resps[0] == nil || resps[3] == nil {
		t.Fatal("queries around the failures did not run to completion")
	}
	if resps[1] != nil || resps[2] != nil {
		t.Fatal("failed queries returned responses")
	}
}

// blockingBuilder wraps the mini builder so every session's UDF signals
// entry and then parks until released — the instrument for pinning a session
// inside its admission slot.
type blockingBuilder struct {
	inner   *miniBuilder
	entered chan struct{}
	release chan struct{}
}

func (b *blockingBuilder) UDFCost(p query.Pred) (float64, error) { return b.inner.UDFCost(p) }

func (b *blockingBuilder) Build(pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	plan, err := b.inner.Build(pred, filter)
	if err != nil {
		return plan, err
	}
	for i, op := range plan.Ops {
		if p, ok := op.(*engine.Process); ok {
			plan.Ops[i] = &engine.Process{P: blockUDF{inner: p.P, b: b}}
		}
	}
	return plan, nil
}

type blockUDF struct {
	inner engine.Processor
	b     *blockingBuilder
}

func (u blockUDF) Name() string  { return u.inner.Name() }
func (u blockUDF) Cost() float64 { return u.inner.Cost() }
func (u blockUDF) Apply(r engine.Row) ([]engine.Row, error) {
	select {
	case u.b.entered <- struct{}{}:
	default:
	}
	<-u.b.release
	return u.inner.Apply(r)
}

// TestAdmissionWaitHistogram: under a saturated server the queue wait
// observed by serve_admission_wait_ns (and Response.QueueWait) is the
// semaphore blocking time, and the service histogram counts every session.
func TestAdmissionWaitHistogram(t *testing.T) {
	reg := metrics.New()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	st := newMiniStack(t, 40, func(c *Config) {
		c.MaxConcurrent = 1
		c.Metrics = reg
		c.Builder = &blockingBuilder{inner: c.Builder.(*miniBuilder), entered: entered, release: release}
	})
	pred := query.MustParse("t=SUV")
	var wg sync.WaitGroup
	resps := make([]*Response, 3)
	do := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := st.srv.Do(Request{ID: "s", Pred: pred})
			if err != nil {
				t.Error(err)
				return
			}
			resps[i] = resp
		}()
	}
	// Session 0 takes the only slot and parks inside its UDF.
	do(0)
	<-entered
	// Sessions 1 and 2 enqueue behind the full semaphore.
	do(1)
	do(2)
	waitDeadline := time.Now().Add(10 * time.Second)
	for reg.Gauge("serve_admission_queue_depth", "").Value() != 2 {
		if time.Now().After(waitDeadline) {
			t.Fatal("sessions never queued behind the admission semaphore")
		}
		time.Sleep(time.Millisecond)
	}
	const hold = 100 * time.Millisecond
	time.Sleep(hold)
	close(release)
	wg.Wait()

	// The queued sessions waited at least the hold (they were verifiably in
	// the semaphore before it started); the slot holder barely waited.
	for _, i := range []int{1, 2} {
		if resps[i].QueueWait < hold/2 {
			t.Errorf("session %d QueueWait = %v, want >= %v of semaphore blocking", i, resps[i].QueueWait, hold/2)
		}
	}
	if resps[0].Service < hold/2 {
		t.Errorf("slot holder Service = %v, want >= %v (it was parked while serving)", resps[0].Service, hold/2)
	}
	qh := reg.Histogram("serve_admission_wait_ns", "")
	if qh.Count() != 3 {
		t.Fatalf("serve_admission_wait_ns observed %d sessions, want 3", qh.Count())
	}
	if got := time.Duration(qh.Quantile(0.99)); got < hold/2 {
		t.Errorf("serve_admission_wait_ns p99 = %v, want >= %v", got, hold/2)
	}
	sh := reg.Histogram("serve_service_ns", "")
	if sh.Count() != 3 {
		t.Fatalf("serve_service_ns observed %d sessions, want 3", sh.Count())
	}
}

// TestUncontendedQueueWait: with free slots the admission wait is noise —
// sequential sessions never queue.
func TestUncontendedQueueWait(t *testing.T) {
	reg := metrics.New()
	st := newMiniStack(t, 400, func(c *Config) {
		c.MaxConcurrent = 4
		c.Metrics = reg
	})
	for i, q := range miniWorkload[:4] {
		resp, err := st.srv.Do(Request{ID: q.ID, Pred: query.MustParse(q.Pred)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.QueueWait > 10*time.Millisecond {
			t.Errorf("session %d QueueWait = %v on an idle server", i, resp.QueueWait)
		}
		if resp.Service <= 0 {
			t.Errorf("session %d Service = %v, want > 0", i, resp.Service)
		}
	}
	if got := reg.Histogram("serve_admission_wait_ns", "").Count(); got != 4 {
		t.Errorf("serve_admission_wait_ns observed %d sessions, want 4", got)
	}
}
