package serve

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/engine"
	"probpred/internal/obs"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// miniCorpusBuilder is miniBuilder's engine/corpus split: the same
// scan → [PP filter] → UDF → σ plan, but over an injected blob slice — what
// the sharded coordinator binds to each shard.
type miniCorpusBuilder struct{ udf engine.Processor }

func (b miniCorpusBuilder) UDFCost(query.Pred) (float64, error) { return b.udf.Cost(), nil }

func (b miniCorpusBuilder) BuildOver(blobs []blob.Blob, pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	ops := []engine.Operator{&engine.Scan{Blobs: blobs}}
	if filter != nil {
		ops = append(ops, &engine.PPFilter{F: filter})
	}
	ops = append(ops, &engine.Process{P: b.udf}, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}, nil
}

// newMiniCoordinator wires a Coordinator over the miniStack fixtures. mutate
// adjusts the sharded config before NewSharded (nil for defaults).
func newMiniCoordinator(t *testing.T, nBlobs, shards, replicas int, routing RoutingPolicy, mutate func(*ShardedConfig)) *Coordinator {
	t.Helper()
	blobs := miniBlobs(nBlobs, 7)
	val := miniBlobs(400, 8)
	cfg := ShardedConfig{
		Base: Config{
			Optimizer: optimizer.New(miniCorpus(t, val)),
			Accuracy:  0.95,
			Domains:   miniDomains(),
			Exec:      engine.Config{NoStageOverhead: true},
			Routing:   routing,
		},
		Shards:   shards,
		Replicas: replicas,
		Corpus:   blobs,
		Builder:  miniCorpusBuilder{udf: miniUDF{cost: 40}},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSplitBlobs(t *testing.T) {
	blobs := miniBlobs(10, 1)
	for _, tc := range []struct {
		n    int
		want []int // slice lengths
	}{
		{1, []int{10}},
		{2, []int{5, 5}},
		{3, []int{4, 3, 3}},
		{4, []int{3, 3, 2, 2}},
		{0, []int{10}}, // n<1 selects 1
	} {
		got := SplitBlobs(blobs, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("SplitBlobs(n=%d): %d slices, want %d", tc.n, len(got), len(tc.want))
		}
		id := 0
		for i, slice := range got {
			if len(slice) != tc.want[i] {
				t.Errorf("SplitBlobs(n=%d)[%d]: len %d, want %d", tc.n, i, len(slice), tc.want[i])
			}
			// Contiguity: concatenating slices in order must walk blob IDs in
			// the original order — the property the gather's determinism
			// argument rests on.
			for _, b := range slice {
				if b.ID != id {
					t.Fatalf("SplitBlobs(n=%d): blob ID %d at global position %d", tc.n, b.ID, id)
				}
				id++
			}
		}
	}
}

// TestShardedDeterminism is the golden gate: every shard count × routing
// policy × engine worker count must serve byte-identical results to the
// unsharded server — rows, row order and virtual cluster cost. Run under
// -race this also exercises the scatter paths for data races.
func TestShardedDeterminism(t *testing.T) {
	const nBlobs = 60
	st := newMiniStack(t, nBlobs, nil)
	baseResps, err := st.srv.Replay(miniWorkload, 1)
	if err != nil {
		t.Fatal(err)
	}
	baseline := renderResponses(baseResps)
	if !strings.Contains(baseline, "rows=") {
		t.Fatalf("degenerate baseline render: %q", baseline)
	}

	for _, shards := range []int{1, 2, 4} {
		for _, routing := range []RoutingPolicy{RouteRoundRobin, RouteLeastLoaded, RoutePlanAffinity} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("shards=%d/%s/workers=%d", shards, routing, workers)
				t.Run(name, func(t *testing.T) {
					c := newMiniCoordinator(t, nBlobs, shards, 2, routing, func(cfg *ShardedConfig) {
						cfg.Base.Exec.Workers = workers
					})
					resps, err := c.Replay(miniWorkload, 4)
					if err != nil {
						t.Fatal(err)
					}
					if got := renderResponses(resps); got != baseline {
						t.Errorf("sharded render diverged from unsharded baseline\n got: %s\nwant: %s", got, baseline)
					}
					st := c.Stats()
					if st.ScatterSessions != uint64(len(miniWorkload)) {
						t.Errorf("ScatterSessions = %d, want %d", st.ScatterSessions, len(miniWorkload))
					}
					if st.ScatterFailures != 0 {
						t.Errorf("ScatterFailures = %d, want 0", st.ScatterFailures)
					}
					// Every leg ran: Sessions counts per-shard legs.
					if want := uint64(len(miniWorkload) * shards); st.Sessions != want {
						t.Errorf("Sessions = %d, want %d (legs)", st.Sessions, want)
					}
				})
			}
		}
	}
}

// TestShardedMergeAccounting checks the merge invariants beyond the render:
// per-operator stats sum positionally, latency is the max over parallel legs,
// and PlanCached ANDs across legs.
func TestShardedMergeAccounting(t *testing.T) {
	st := newMiniStack(t, 60, nil)
	pred := query.MustParse("t=SUV & s>60")
	base, err := st.srv.Do(Request{ID: "Q", Pred: pred})
	if err != nil {
		t.Fatal(err)
	}

	c := newMiniCoordinator(t, 60, 4, 1, RouteRoundRobin, nil)
	first, err := c.Do(Request{ID: "Q", Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanCached {
		t.Error("first scatter session reported PlanCached; every replica planned fresh")
	}
	again, err := c.Do(Request{ID: "Q", Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if !again.PlanCached {
		t.Error("repeat scatter session not PlanCached; all legs should hit their plan caches")
	}

	if got, want := len(first.Result.PerOp), len(base.Result.PerOp); got != want {
		t.Fatalf("merged PerOp has %d ops, want %d (same plan shape)", got, want)
	}
	// Virtual costs are per-row, so shard totals sum to the unsharded total;
	// the summation is regrouped (per-shard subtotals), so allow ulp-level
	// float noise. The byte-identical contract is the %.6f render, checked in
	// TestShardedDeterminism.
	closeTo := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	for i, op := range first.Result.PerOp {
		b := base.Result.PerOp[i]
		if op.Name != b.Name || op.RowsIn != b.RowsIn || op.RowsOut != b.RowsOut || !closeTo(op.Cost, b.Cost) {
			t.Errorf("PerOp[%d] merged %q rows %d→%d cost %v, unsharded %q rows %d→%d cost %v",
				i, op.Name, op.RowsIn, op.RowsOut, op.Cost, b.Name, b.RowsIn, b.RowsOut, b.Cost)
		}
	}
	if !closeTo(first.Result.ClusterTime, base.Result.ClusterTime) {
		t.Errorf("merged ClusterTime %v != unsharded %v", first.Result.ClusterTime, base.Result.ClusterTime)
	}
	// Legs run in parallel: merged modeled latency is the slowest shard's,
	// which over a partitioned corpus cannot exceed the unsharded latency.
	if first.Result.Latency > base.Result.Latency {
		t.Errorf("merged Latency %.4f exceeds unsharded %.4f", first.Result.Latency, base.Result.Latency)
	}
}

// TestShardedPlanAffinityWarmth asserts the point of plan-affinity routing:
// repeats of one predicate hit a single warm replica per shard (one plan
// search each), while round-robin spreads them over every replica and
// re-pays the search per replica.
func TestShardedPlanAffinityWarmth(t *testing.T) {
	const repeats = 4
	run := func(routing RoutingPolicy) (misses uint64, warmReplicas int) {
		c := newMiniCoordinator(t, 60, 2, 2, routing, nil)
		pred := query.MustParse("t=SUV & c=red")
		for i := 0; i < repeats; i++ {
			if _, err := c.Do(Request{ID: fmt.Sprintf("Q%d", i), Pred: pred}); err != nil {
				t.Fatal(err)
			}
		}
		for _, perShard := range c.ReplicaStats() {
			for _, st := range perShard {
				misses += st.PlanMisses
				if st.PlanHits > 0 {
					warmReplicas++
				}
			}
		}
		return misses, warmReplicas
	}

	affMisses, affWarm := run(RoutePlanAffinity)
	rrMisses, _ := run(RouteRoundRobin)

	// Affinity: the repeat predicate sticks to one replica per shard — one
	// search per shard, and that replica alone accumulates hits.
	if affMisses != 2 {
		t.Errorf("plan-affinity plan misses = %d, want 2 (one per shard)", affMisses)
	}
	if affWarm != 2 {
		t.Errorf("plan-affinity warm replicas = %d, want 2 (one per shard)", affWarm)
	}
	// Round-robin alternates replicas, so every replica of every shard pays
	// its own search: 2 shards × 2 replicas.
	if rrMisses != 4 {
		t.Errorf("round-robin plan misses = %d, want 4 (every replica)", rrMisses)
	}
	if affMisses >= rrMisses {
		t.Errorf("affinity (%d misses) should plan strictly less than round-robin (%d)", affMisses, rrMisses)
	}
}

// failingCorpusBuilder fails plan assembly for any slice containing the
// poisoned blob ID — exactly one shard of a contiguous split.
type failingCorpusBuilder struct {
	inner    CorpusBuilder
	poisoned int
}

func (b failingCorpusBuilder) UDFCost(pred query.Pred) (float64, error) {
	return b.inner.UDFCost(pred)
}

func (b failingCorpusBuilder) BuildOver(blobs []blob.Blob, pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	for _, bb := range blobs {
		if bb.ID == b.poisoned {
			return engine.Plan{}, fmt.Errorf("injected shard fault (blob %d)", b.poisoned)
		}
	}
	return b.inner.BuildOver(blobs, pred, filter)
}

// TestShardedFailureAttribution: when one shard fails, the session errors out
// promptly with the failing shard attributed — never a hang, never a partial
// result — the failure is counted, and the flight recorder auto-dumps on the
// shard.fail event.
func TestShardedFailureAttribution(t *testing.T) {
	var dump bytes.Buffer
	fr := obs.NewFlightRecorder(64, &dump)
	// Blob 0 lives in shard 0 of any contiguous split.
	c := newMiniCoordinator(t, 60, 3, 1, RouteRoundRobin, func(cfg *ShardedConfig) {
		cfg.Builder = failingCorpusBuilder{inner: cfg.Builder, poisoned: 0}
		cfg.Base.Obs = obs.New(fr)
	})

	resp, err := c.Do(Request{ID: "QF", Pred: query.MustParse("t=SUV")})
	if err == nil {
		t.Fatal("scatter over a failing shard returned no error")
	}
	if resp != nil {
		t.Errorf("failed scatter returned a partial response: %+v", resp)
	}
	msg := err.Error()
	if !strings.Contains(msg, "shard 0") {
		t.Errorf("error does not attribute the failing shard: %v", err)
	}
	if !strings.Contains(msg, "injected shard fault") {
		t.Errorf("error lost the underlying cause: %v", err)
	}
	if strings.Contains(msg, "shard 1") || strings.Contains(msg, "shard 2") {
		t.Errorf("healthy shards blamed in error: %v", err)
	}

	st := c.Stats()
	if st.ScatterFailures != 1 {
		t.Errorf("ScatterFailures = %d, want 1", st.ScatterFailures)
	}
	if st.ScatterSessions != 1 {
		t.Errorf("ScatterSessions = %d, want 1", st.ScatterSessions)
	}
	if fr.Dumps() < 1 {
		t.Error("flight recorder did not auto-dump on shard.fail")
	}
	if !strings.Contains(dump.String(), "shard.fail") {
		t.Errorf("flight dump missing the shard.fail event:\n%s", dump.String())
	}

	// The coordinator stays serviceable: a healthy predicate still fails (the
	// poisoned shard fails every plan), but a second coordinator without the
	// fault serves fine — degradation is per-session, not sticky.
	if _, err := c.Do(Request{ID: "QF2", Pred: query.MustParse("c=red")}); err == nil {
		t.Error("poisoned shard unexpectedly recovered")
	}
}

// TestShardedValidation covers NewSharded's config errors.
func TestShardedValidation(t *testing.T) {
	blobs := miniBlobs(8, 7)
	val := miniBlobs(400, 8)
	base := Config{
		Optimizer: optimizer.New(miniCorpus(t, val)),
		Accuracy:  0.95,
		Domains:   miniDomains(),
		Exec:      engine.Config{NoStageOverhead: true},
	}

	if _, err := NewSharded(ShardedConfig{Base: base, Corpus: blobs}); err == nil {
		t.Error("nil Builder accepted")
	}
	if _, err := NewSharded(ShardedConfig{
		Base: base, Shards: 16, Corpus: blobs, Builder: miniCorpusBuilder{udf: miniUDF{cost: 40}},
	}); err == nil {
		t.Error("more shards than corpus blobs accepted")
	}
	badRouting := base
	badRouting.Routing = RoutingPolicy("random")
	if _, err := NewSharded(ShardedConfig{
		Base: badRouting, Corpus: blobs, Builder: miniCorpusBuilder{udf: miniUDF{cost: 40}},
	}); err == nil {
		t.Error("unknown routing policy accepted")
	}

	// Defaults: zero shards/replicas select 1, empty routing round-robin.
	c, err := NewSharded(ShardedConfig{
		Base: base, Corpus: blobs, Builder: miniCorpusBuilder{udf: miniUDF{cost: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 1 {
		t.Errorf("defaulted Shards() = %d, want 1", c.Shards())
	}
	if c.Routing() != RouteRoundRobin {
		t.Errorf("defaulted Routing() = %q, want %q", c.Routing(), RouteRoundRobin)
	}
}

func TestRouters(t *testing.T) {
	// Replica Load state is directly settable in-package.
	mkReplicas := func(loads ...int64) []*Server {
		out := make([]*Server, len(loads))
		for i, l := range loads {
			out[i] = &Server{}
			out[i].active.Store(l)
		}
		return out
	}

	t.Run("round-robin cycles per shard", func(t *testing.T) {
		r := newRouter(RouteRoundRobin, 2)
		reps := mkReplicas(0, 0, 0)
		for shard := 0; shard < 2; shard++ {
			for want := 0; want < 6; want++ {
				if got := r.Pick(shard, "k", reps); got != want%3 {
					t.Fatalf("shard %d pick %d = %d, want %d", shard, want, got, want%3)
				}
			}
		}
	})

	t.Run("least-loaded picks min, ties low", func(t *testing.T) {
		r := newRouter(RouteLeastLoaded, 1)
		if got := r.Pick(0, "k", mkReplicas(3, 1, 2)); got != 1 {
			t.Errorf("pick = %d, want 1 (lowest load)", got)
		}
		if got := r.Pick(0, "k", mkReplicas(2, 1, 1)); got != 1 {
			t.Errorf("tie pick = %d, want 1 (lowest index among ties)", got)
		}
		reps := mkReplicas(5, 0)
		reps[1].queued.Store(7) // queued counts toward load too
		if got := r.Pick(0, "k", reps); got != 0 {
			t.Errorf("queued-aware pick = %d, want 0", got)
		}
	})

	t.Run("plan-affinity is sticky per key and in range", func(t *testing.T) {
		r := newRouter(RoutePlanAffinity, 1)
		reps := mkReplicas(0, 0, 0)
		seen := map[int]bool{}
		for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
			first := r.Pick(0, key, reps)
			if first < 0 || first >= len(reps) {
				t.Fatalf("key %q picked out-of-range replica %d", key, first)
			}
			for i := 0; i < 3; i++ {
				if got := r.Pick(0, key, reps); got != first {
					t.Fatalf("key %q not sticky: %d then %d", key, first, got)
				}
			}
			seen[first] = true
		}
		if len(seen) < 2 {
			t.Error("eight distinct keys all hashed to one replica; expected spread")
		}
	})
}

// TestScoreCacheCostGate exercises ScoreCacheMinCost end-to-end: a threshold
// above every PP's cost bypasses the cache entirely (zero lookups), a mixed
// threshold caches only the expensive leaves, and outputs stay identical in
// all modes.
func TestScoreCacheCostGate(t *testing.T) {
	run := func(minCost float64) (string, Stats) {
		st := newMiniStack(t, 60, func(cfg *Config) { cfg.ScoreCacheMinCost = minCost })
		resps, err := st.srv.Replay(miniWorkload, 2)
		if err != nil {
			t.Fatal(err)
		}
		return renderResponses(resps), st.srv.Stats()
	}

	baseline, allStats := run(0)
	lookups := func(s Stats) uint64 { return s.ScoreHits + s.ScoreMisses }
	if lookups(allStats) == 0 {
		t.Fatal("workload drove no score-cache lookups; the gate test is vacuous")
	}

	// Threshold above every mini PP (exact 1.0, speed 1.2): all leaves bypass.
	renderAll, bypassStats := run(10)
	if renderAll != baseline {
		t.Error("full-bypass render diverged from cached baseline")
	}
	if n := lookups(bypassStats); n != 0 {
		t.Errorf("full bypass still drove %d cache lookups", n)
	}

	// Threshold between the two PP costs: only speed PPs (1.2) stay cached.
	renderMixed, mixedStats := run(1.1)
	if renderMixed != baseline {
		t.Error("mixed-gate render diverged from cached baseline")
	}
	if n := lookups(mixedStats); n == 0 || n >= lookups(allStats) {
		t.Errorf("mixed gate lookups = %d, want in (0, %d)", n, lookups(allStats))
	}
}
