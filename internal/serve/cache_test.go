package serve

import (
	"fmt"
	"sync"
	"testing"

	"probpred/internal/core"
	"probpred/internal/optimizer"
)

func entryFor(key string, version uint64) *planEntry {
	return &planEntry{key: key, version: version, dec: &optimizer.Decision{}}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2, nil)
	c.put(entryFor("a", 0))
	c.put(entryFor("b", 0))
	if _, ok := c.get("a", 0); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.put(entryFor("c", 0))
	if _, ok := c.get("b", 0); ok {
		t.Error("b survived eviction; LRU order not respected")
	}
	if _, ok := c.get("a", 0); !ok {
		t.Error("recently used a was evicted")
	}
	if _, ok := c.get("c", 0); !ok {
		t.Error("newest entry c missing")
	}
	if c.len() != 2 {
		t.Errorf("cache holds %d entries, cap is 2", c.len())
	}
}

func TestPlanCacheStaleVersion(t *testing.T) {
	c := newPlanCache(4, nil)
	c.put(entryFor("a", 1))
	if _, ok := c.get("a", 2); ok {
		t.Fatal("stale entry served")
	}
	if c.invalidations.Load() != 1 {
		t.Errorf("invalidations = %d, want 1", c.invalidations.Load())
	}
	if c.len() != 0 {
		t.Errorf("stale entry still cached")
	}
}

func TestPlanCacheReplaceSameKey(t *testing.T) {
	c := newPlanCache(2, nil)
	c.put(entryFor("a", 1))
	c.put(entryFor("a", 2))
	if c.len() != 1 {
		t.Fatalf("duplicate key grew the cache to %d entries", c.len())
	}
	e, ok := c.get("a", 2)
	if !ok || e.version != 2 {
		t.Fatal("replacement entry not served")
	}
}

func TestScoreCacheBoundsAndEviction(t *testing.T) {
	pp := &core.PP{}
	c := newScoreCache(8, 2, false)
	for i := 0; i < 100; i++ {
		c.Put(pp, i, float64(i))
	}
	if n := c.Len(); n > 8 {
		t.Fatalf("cache holds %d entries, bound is 8", n)
	}
	// Recently inserted keys on each shard should still be resident.
	hot := 0
	for i := 0; i < 100; i++ {
		if v, ok := c.Get(pp, i); ok {
			if v != float64(i) {
				t.Fatalf("key %d returned %v, want %v", i, v, float64(i))
			}
			hot++
		}
	}
	if hot == 0 {
		t.Fatal("nothing resident after inserts")
	}
}

func TestScoreCacheKeysByPPIdentity(t *testing.T) {
	a, b := &core.PP{}, &core.PP{}
	c := newScoreCache(16, 2, false)
	c.Put(a, 1, 0.5)
	c.Put(b, 1, -0.5) // same blob, different PP (e.g. negation-derived)
	if v, ok := c.Get(a, 1); !ok || v != 0.5 {
		t.Fatalf("PP a: got %v,%v want 0.5,true", v, ok)
	}
	if v, ok := c.Get(b, 1); !ok || v != -0.5 {
		t.Fatalf("PP b: got %v,%v want -0.5,true", v, ok)
	}
}

func TestScoreCacheDisabledCountsMisses(t *testing.T) {
	pp := &core.PP{}
	c := newScoreCache(16, 2, true)
	c.Put(pp, 1, 0.5)
	if _, ok := c.Get(pp, 1); ok {
		t.Fatal("disabled cache returned a value")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache stored entries")
	}
	if c.misses.Load() != 1 || c.hits.Load() != 0 {
		t.Fatalf("disabled cache counted %d hits / %d misses, want 0/1", c.hits.Load(), c.misses.Load())
	}
}

// TestScoreCacheConcurrent hammers one cache from many goroutines; run with
// -race this checks the shard locking.
func TestScoreCacheConcurrent(t *testing.T) {
	pp := &core.PP{}
	c := newScoreCache(256, 8, false)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := (w*131 + i) % 512
				if v, ok := c.Get(pp, id); ok && v != float64(id) {
					panic(fmt.Sprintf("key %d returned %v", id, v))
				}
				c.Put(pp, id, float64(id))
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 256 {
		t.Fatalf("cache holds %d entries, bound is 256", n)
	}
}
