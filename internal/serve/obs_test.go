package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/pplog"
	"probpred/internal/query"
)

// TestTraceJoinEndToEnd is the observability acceptance gate: replay the mini
// workload through a 2×2 sharded coordinator with metrics, span collection and
// the query log all attached, then join the serve_service_ns p99 exemplar's
// TraceID back to (a) a complete query-log record and (b) a span tree whose
// coordinator session, shard-leg sessions, run, operator and chunk spans all
// share that TraceID.
func TestTraceJoinEndToEnd(t *testing.T) {
	const nBlobs, shards, replicas = 60, 2, 2
	reg := metrics.New()
	col := obs.NewCollector()
	var logBuf bytes.Buffer
	qlog := pplog.NewWriter(&logBuf, 256, reg)

	c := newMiniCoordinator(t, nBlobs, shards, replicas, RouteRoundRobin, func(cfg *ShardedConfig) {
		cfg.Base.Exec.Workers = 4 // rows >= 2*workers per shard → chunk spans
		cfg.Base.Metrics = reg
		cfg.Base.Obs = obs.New(col)
		cfg.Base.QueryLog = qlog
	})
	resps, err := c.Replay(miniWorkload, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Every session response carries a distinct trace ID.
	seen := map[string]bool{}
	for _, r := range resps {
		if r.TraceID == "" {
			t.Fatalf("response %s has no trace id", r.ID)
		}
		if seen[r.TraceID] {
			t.Fatalf("trace id %s reused across sessions", r.TraceID)
		}
		seen[r.TraceID] = true
	}

	if err := qlog.Close(); err != nil {
		t.Fatal(err)
	}
	if qlog.Drops() != 0 {
		t.Fatalf("query log dropped %d records", qlog.Drops())
	}
	records, err := pplog.Read(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	// One coordinator session record per query plus one leg record per shard.
	var sessions, legs int
	byTrace := map[string][]pplog.Record{}
	for _, rec := range records {
		if rec.TraceID == "" {
			t.Fatalf("untraced query-log record: %+v", rec)
		}
		byTrace[rec.TraceID] = append(byTrace[rec.TraceID], rec)
		if rec.IsSession() {
			sessions++
			if len(rec.Legs) != shards {
				t.Fatalf("session record %s has %d legs, want %d", rec.Session, len(rec.Legs), shards)
			}
			if rec.Policy != string(RouteRoundRobin) {
				t.Fatalf("session record policy %q, want %q", rec.Policy, RouteRoundRobin)
			}
		} else {
			legs++
			if rec.Leg.Shard < 0 || rec.Leg.Shard >= shards {
				t.Fatalf("leg record shard %d out of range", rec.Leg.Shard)
			}
		}
	}
	if sessions != len(miniWorkload) || legs != len(miniWorkload)*shards {
		t.Fatalf("query log has %d sessions / %d legs, want %d / %d",
			sessions, legs, len(miniWorkload), len(miniWorkload)*shards)
	}
	for trace := range seen {
		if len(byTrace[trace]) != 1+shards {
			t.Fatalf("trace %s has %d log records, want %d", trace, len(byTrace[trace]), 1+shards)
		}
	}

	// The p99 service-time exemplar must join back to a logged session.
	ex := reg.Histogram("serve_service_ns", "").QuantileExemplar(0.99)
	if ex == nil {
		t.Fatal("no p99 exemplar on serve_service_ns")
	}
	var joined *pplog.Record
	for i := range records {
		if records[i].TraceID == ex.TraceID && records[i].IsSession() {
			joined = &records[i]
			break
		}
	}
	if joined == nil {
		t.Fatalf("p99 exemplar trace %s has no session record in the query log", ex.TraceID)
	}
	if joined.PlanKey == "" || joined.ServiceNS <= 0 {
		t.Fatalf("joined record incomplete: %+v", joined)
	}

	// And to a complete span tree: coordinator session → shard-leg sessions →
	// run → operator → chunk, all on the exemplar's trace.
	spansByID := map[int64]obs.Span{}
	var coord *obs.Span
	legSessions := map[int64]obs.Span{}
	kinds := map[string]int{}
	for _, sp := range col.Spans() {
		if sp.Trace != ex.TraceID {
			continue
		}
		spansByID[sp.ID] = sp
		kinds[sp.Kind]++
		if sp.Kind == obs.KindSession {
			if hasAttr(sp, "scatter") {
				cp := sp
				coord = &cp
			} else if hasAttr(sp, "shard") {
				legSessions[sp.ID] = sp
			}
		}
	}
	if coord == nil {
		t.Fatalf("trace %s has no coordinator session span", ex.TraceID)
	}
	if len(legSessions) != shards {
		t.Fatalf("trace %s has %d shard-leg session spans, want %d", ex.TraceID, len(legSessions), shards)
	}
	for _, sp := range legSessions {
		if sp.Parent != coord.ID {
			t.Fatalf("leg session %q parented under %d, want coordinator %d", sp.Name, sp.Parent, coord.ID)
		}
	}
	for _, kind := range []string{obs.KindRun, obs.KindOperator, obs.KindChunk} {
		if kinds[kind] == 0 {
			t.Fatalf("trace %s has no %s span (kinds: %v)", ex.TraceID, kind, kinds)
		}
	}
	// Walking parents from any chunk span reaches the coordinator session.
	for _, sp := range spansByID {
		if sp.Kind != obs.KindChunk {
			continue
		}
		cur := sp
		for cur.Parent != 0 {
			next, ok := spansByID[cur.Parent]
			if !ok {
				t.Fatalf("chunk %q has dangling ancestor %d", sp.Name, cur.Parent)
			}
			cur = next
		}
		if cur.ID != coord.ID {
			t.Fatalf("chunk %q roots at span %d, want coordinator %d", sp.Name, cur.ID, coord.ID)
		}
		break
	}
}

func hasAttr(sp obs.Span, key string) bool {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return true
		}
	}
	return false
}

// TestObservabilityDoesNotChangeResults: served outputs must be byte-identical
// with tracing + query log + metrics on versus everything off, at Workers 1
// and 4, for both the unsharded server and the sharded coordinator. Run under
// -race this also exercises the instrumented paths for data races.
func TestObservabilityDoesNotChangeResults(t *testing.T) {
	const nBlobs = 60
	observe := func(cfg *Config) {
		cfg.Metrics = metrics.New()
		cfg.Obs = obs.New(obs.NewCollector())
		cfg.QueryLog = pplog.NewWriter(&bytes.Buffer{}, 256, cfg.Metrics)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			plain := newMiniStack(t, nBlobs, func(cfg *Config) {
				cfg.Exec.Workers = workers
			})
			baseResps, err := plain.srv.Replay(miniWorkload, 4)
			if err != nil {
				t.Fatal(err)
			}
			baseline := renderResponses(baseResps)
			if !strings.Contains(baseline, "rows=") {
				t.Fatalf("degenerate baseline: %q", baseline)
			}

			traced := newMiniStack(t, nBlobs, func(cfg *Config) {
				cfg.Exec.Workers = workers
				observe(cfg)
			})
			tracedResps, err := traced.srv.Replay(miniWorkload, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderResponses(tracedResps); got != baseline {
				t.Errorf("observability changed unsharded results\n got: %s\nwant: %s", got, baseline)
			}

			sharded := newMiniCoordinator(t, nBlobs, 2, 2, RouteRoundRobin, func(cfg *ShardedConfig) {
				cfg.Base.Exec.Workers = workers
				observe(&cfg.Base)
			})
			shardResps, err := sharded.Replay(miniWorkload, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderResponses(shardResps); got != baseline {
				t.Errorf("observability changed sharded results\n got: %s\nwant: %s", got, baseline)
			}
		})
	}
}

// TestErrorSessionsAreLogged: a failing session still produces a traced
// query-log record carrying the error.
func TestErrorSessionsAreLogged(t *testing.T) {
	var logBuf bytes.Buffer
	qlog := pplog.NewWriter(&logBuf, 8, nil)
	st := newMiniStack(t, 20, func(cfg *Config) {
		cfg.QueryLog = qlog
	})
	// An unknown column fails at execution time, after admission.
	_, err := st.srv.Do(Request{ID: "bad", Pred: query.MustParse("zz=1")})
	if err == nil {
		t.Fatal("expected the bad query to fail")
	}
	if err := qlog.Close(); err != nil {
		t.Fatal(err)
	}
	records, rerr := pplog.Read(&logBuf)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(records) != 1 {
		t.Fatalf("%d records logged, want 1", len(records))
	}
	rec := records[0]
	if rec.TraceID == "" || rec.Error == "" || rec.Session != "bad" {
		t.Fatalf("error record incomplete: %+v", rec)
	}
}
