package serve

// Partial plan-cache invalidation: a corpus mutation (per-segment PP
// retraining in a stream, a watchdog trip) must evict exactly the cached
// plans that consulted the mutated clause — every other plan survives via
// revalidation, keeping the hit rate streams depend on.

import (
	"fmt"
	"sync"
	"testing"

	"probpred/internal/core"
	"probpred/internal/dimred"
	"probpred/internal/query"
)

// retrainSpeedPP builds a replacement PP for a speed clause, standing in for
// one round of incremental retraining.
func retrainSpeedPP(t *testing.T, clause string, sign float64) *core.PP {
	t.Helper()
	val := miniBlobs(400, 8)
	set := miniSet(t, val, clause)
	pp, err := core.NewPP(clause, "retrained", dimred.Identity{Dim: 4}, speedScorer{sign: sign, noise: 4, cost: 1.1}, set)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestPartialInvalidationSurvivesUnrelatedRetraining(t *testing.T) {
	st := newMiniStack(t, 200, nil)
	do := func(pred string) {
		t.Helper()
		if _, err := st.srv.Do(Request{ID: pred, Pred: query.MustParse(pred)}); err != nil {
			t.Fatal(err)
		}
	}
	// Prime plans on disjoint columns.
	do("c=red")
	do("t=SUV")
	do("s>60")
	base := st.srv.Stats()
	if base.PlanMisses != 3 || base.PlanHits != 0 {
		t.Fatalf("priming: %d misses / %d hits, want 3 / 0", base.PlanMisses, base.PlanHits)
	}

	// Retrain the s>60 PP. Only the plan that consulted column s may go.
	st.corpus.Add(retrainSpeedPP(t, "s>60", 1))

	do("c=red")
	do("t=SUV")
	s := st.srv.Stats()
	if s.PlanMisses != base.PlanMisses {
		t.Errorf("unrelated plans re-searched after s-column retraining: %d misses, want %d", s.PlanMisses, base.PlanMisses)
	}
	if s.PlanHits != base.PlanHits+2 {
		t.Errorf("PlanHits = %d, want %d (both unrelated plans must hit)", s.PlanHits, base.PlanHits+2)
	}
	if s.PlanRevalidations == 0 {
		t.Error("PlanRevalidations = 0, want > 0 (stale-version entries kept)")
	}
	if s.PlanInvalidations != 0 {
		t.Errorf("PlanInvalidations = %d, want 0 so far", s.PlanInvalidations)
	}

	// Revalidation refreshes the stored version: the next hit must not
	// revalidate again.
	reval := s.PlanRevalidations
	do("c=red")
	s = st.srv.Stats()
	if s.PlanRevalidations != reval {
		t.Errorf("second hit revalidated again (%d → %d); version not refreshed in place", reval, s.PlanRevalidations)
	}

	// The plan that did consult s>60 is stale: evicted once, searched once.
	do("s>60")
	s = st.srv.Stats()
	if s.PlanInvalidations != 1 {
		t.Errorf("PlanInvalidations = %d, want 1", s.PlanInvalidations)
	}
	if s.PlanMisses != base.PlanMisses+1 {
		t.Errorf("PlanMisses = %d, want %d", s.PlanMisses, base.PlanMisses+1)
	}
}

// TestWatchdogRemoveInvalidatesDependents: Remove (a watchdog trip) follows
// the same dependency rules as Add.
func TestWatchdogRemoveInvalidatesDependents(t *testing.T) {
	st := newMiniStack(t, 200, nil)
	do := func(pred string) {
		t.Helper()
		if _, err := st.srv.Do(Request{ID: pred, Pred: query.MustParse(pred)}); err != nil {
			t.Fatal(err)
		}
	}
	do("c=red")
	do("s>60")
	if !st.corpus.Remove("s>60") {
		t.Fatal("corpus had no s>60 PP")
	}
	do("c=red")
	do("s>60")
	s := st.srv.Stats()
	if s.PlanInvalidations != 1 {
		t.Errorf("PlanInvalidations = %d, want 1 (only the s>60 plan consulted the removed clause)", s.PlanInvalidations)
	}
	if s.PlanHits != 1 {
		t.Errorf("PlanHits = %d, want 1 (c=red survives the trip)", s.PlanHits)
	}
}

// TestStaleEvictionExactlyOnce: N sessions racing into a stale entry evict
// it once — one invalidation, one re-search — and everyone else hits the
// refreshed plan.
func TestStaleEvictionExactlyOnce(t *testing.T) {
	st := newMiniStack(t, 200, nil)
	pred := query.MustParse("s>60")
	if _, err := st.srv.Do(Request{ID: "prime", Pred: pred}); err != nil {
		t.Fatal(err)
	}
	st.corpus.Add(retrainSpeedPP(t, "s>60", 1))

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := st.srv.Do(Request{ID: fmt.Sprintf("racer-%d", g), Pred: pred}); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := st.srv.Stats()
	if s.PlanInvalidations != 1 {
		t.Errorf("PlanInvalidations = %d, want exactly 1", s.PlanInvalidations)
	}
	if s.PlanMisses != 2 {
		t.Errorf("PlanMisses = %d, want 2 (priming search + one post-retraining search)", s.PlanMisses)
	}
	if want := uint64(goroutines - 1); s.PlanHits != want {
		t.Errorf("PlanHits = %d, want %d", s.PlanHits, want)
	}
}
