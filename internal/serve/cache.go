package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"probpred/internal/core"
	"probpred/internal/optimizer"
)

// The two caches that make concurrent serving cheap:
//
//   - planCache memoizes optimizer decisions per (canonical predicate,
//     accuracy target), so sessions asking semantically equal questions skip
//     the plan search entirely. Entries record the corpus version they were
//     searched under and are dropped as stale once the corpus mutates (a
//     watchdog Remove or an online-training Add), because a plan compiled
//     against retired or retrained PPs must not keep serving.
//   - scoreCache memoizes per-(PP, blob) classifier scores across sessions in
//     a sharded bounded LRU. Scores are pure functions of PP and blob, so a
//     cached score is bit-identical to a fresh one — the cache changes real
//     CPU spent, never results or virtual costs.

// planEntry is one cached optimization outcome.
type planEntry struct {
	key string
	// version is the corpus version the plan search ran under, refreshed in
	// place (under the cache mutex) when a revalidation proves the entry
	// survived a corpus mutation untouched.
	version uint64
	// deps is the dependency-key set the plan search consulted
	// (Decision.Consulted): what the cache checks against the corpus's
	// per-clause mutation versions before evicting.
	deps []string
	dec  *optimizer.Decision
	// filter is the score-cache-attached compiled filter shared by every
	// session that hits this entry (nil when dec.Inject is false). Sharing
	// one object is deliberate: it is what makes cross-session score reuse
	// work, and the engine's per-run tallies keep the accounting separate.
	filter *optimizer.Compiled
}

// planCache is a bounded LRU over plan entries. Lookup counters live on the
// server (which knows about double-checked lookups); the cache itself only
// counts stale-entry invalidations and revalidations, which happen inside
// get.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *planEntry
	items map[string]*list.Element
	// corpus answers UnchangedSince for entries from older corpus versions:
	// a mutation (online retraining, watchdog trip) that left every key a
	// plan consulted untouched revalidates the entry instead of evicting it,
	// so segment-by-segment training of one clause does not strand every
	// other query's plan. Nil falls back to evict-on-any-version-change.
	corpus *optimizer.Corpus

	invalidations atomic.Uint64
	// revalidations counts stale-version entries kept because none of their
	// consulted clauses changed.
	revalidations atomic.Uint64
	// demotions / promotions count adapt-driven cache maintenance: stale
	// entries dropped mid-query and re-ordered filters installed in their
	// place.
	demotions, promotions atomic.Uint64
}

func newPlanCache(capacity int, corpus *optimizer.Corpus) *planCache {
	return &planCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}, corpus: corpus}
}

// get returns the entry under key if present AND still valid at the current
// corpus version. An entry searched under an older version is revalidated
// against the corpus's per-clause mutation versions: if none of the keys the
// plan consulted changed, the search outcome could not have either, so the
// entry's version is refreshed and it keeps serving (counted as a
// revalidation). Otherwise it is removed and counted as an invalidation —
// exactly once, since the removal is under the cache mutex — and the caller
// sees a plain miss and re-plans against the new corpus.
func (c *planCache) get(key string, version uint64) (*planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.version != version {
		if c.corpus == nil || !c.corpus.UnchangedSince(e.deps, e.version) {
			c.ll.Remove(el)
			delete(c.items, key)
			c.invalidations.Add(1)
			return nil, false
		}
		e.version = version
		c.revalidations.Add(1)
	}
	c.ll.MoveToFront(el)
	return e, true
}

func (c *planCache) put(e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*planEntry).key)
	}
}

// demote drops the entry under key (if present), counting the demotion. The
// adapt controller calls this when mid-query observation shows the cached
// plan's statistics are stale; in-flight sessions keep their entry pointer
// (entries are immutable), later sessions re-resolve.
func (c *planCache) demote(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	c.demotions.Add(1)
	return true
}

// promote installs a re-ordered filter under key as a fresh entry (immutable
// swap: a new planEntry, never mutation of one other sessions may hold),
// counting the promotion. Decision and corpus version are inherited from the
// entry being replaced; when the key is absent (demoted moments ago, or
// evicted) the promotion needs a donor entry to inherit from, so the caller
// passes the one its session ran under.
func (c *planCache) promote(donor *planEntry, filter *optimizer.Compiled) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fresh := &planEntry{key: donor.key, version: donor.version, deps: donor.deps, dec: donor.dec, filter: filter}
	if el, ok := c.items[donor.key]; ok {
		el.Value = fresh
		c.ll.MoveToFront(el)
	} else {
		c.items[donor.key] = c.ll.PushFront(fresh)
		for c.ll.Len() > c.cap {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.items, last.Value.(*planEntry).key)
		}
	}
	c.promotions.Add(1)
}

// flush drops every entry (manual invalidation), counting them.
func (c *planCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidations.Add(uint64(len(c.items)))
	c.ll.Init()
	c.items = map[string]*list.Element{}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// scoreKey identifies one memoized score: PP identity (pointer — negation-
// derived PPs cache independently of their base) plus the blob's corpus-
// unique ID.
type scoreKey struct {
	pp *core.PP
	id int
}

type scoreEntry struct {
	key   scoreKey
	score float64
}

type scoreShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *scoreEntry
	items map[scoreKey]*list.Element
}

// scoreCache implements optimizer.ScoreCache as a sharded bounded LRU.
// Sharding is by blob ID so concurrent sessions scanning the same stream
// spread their lookups across locks. In disabled mode every Get is counted
// as a miss and Put stores nothing — that is how the benchmark measures the
// uncached evaluation count through identical code paths.
type scoreCache struct {
	shards   []*scoreShard
	disabled bool

	hits, misses atomic.Uint64
}

func newScoreCache(size, shards int, disabled bool) *scoreCache {
	if shards < 1 {
		shards = 1
	}
	if shards > size {
		shards = size
	}
	perShard := (size + shards - 1) / shards
	c := &scoreCache{shards: make([]*scoreShard, shards), disabled: disabled}
	for i := range c.shards {
		c.shards[i] = &scoreShard{cap: perShard, ll: list.New(), items: map[scoreKey]*list.Element{}}
	}
	return c
}

func (c *scoreCache) shard(blobID int) *scoreShard {
	// Fibonacci hashing spreads the (often sequential) blob IDs.
	h := uint64(blobID) * 0x9E3779B97F4A7C15
	return c.shards[(h>>32)%uint64(len(c.shards))]
}

// Get implements optimizer.ScoreCache.
func (c *scoreCache) Get(pp *core.PP, blobID int) (float64, bool) {
	if c.disabled {
		c.misses.Add(1)
		return 0, false
	}
	sh := c.shard(blobID)
	k := scoreKey{pp: pp, id: blobID}
	sh.mu.Lock()
	el, ok := sh.items[k]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return 0, false
	}
	sh.ll.MoveToFront(el)
	v := el.Value.(*scoreEntry).score
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put implements optimizer.ScoreCache.
func (c *scoreCache) Put(pp *core.PP, blobID int, score float64) {
	if c.disabled {
		return
	}
	sh := c.shard(blobID)
	k := scoreKey{pp: pp, id: blobID}
	sh.mu.Lock()
	if el, ok := sh.items[k]; ok {
		el.Value.(*scoreEntry).score = score
		sh.ll.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	sh.items[k] = sh.ll.PushFront(&scoreEntry{key: k, score: score})
	for sh.ll.Len() > sh.cap {
		last := sh.ll.Back()
		sh.ll.Remove(last)
		delete(sh.items, last.Value.(*scoreEntry).key)
	}
	sh.mu.Unlock()
}

// Len returns the number of cached scores across all shards.
func (c *scoreCache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}
