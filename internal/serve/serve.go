// Package serve runs many query sessions concurrently over one shared PP
// corpus and blob stream, amortizing planning and scoring work across
// sessions (the reuse economy of §2: PPs are per-clause assets shared by
// every query that implies the clause).
//
// Two caches carry the amortization. The plan cache memoizes optimizer
// decisions under a canonical predicate key, so semantically equal queries —
// however they are written — skip the plan search; entries are invalidated
// when the PP corpus changes (watchdog trip, online retraining). The score
// cache memoizes per-(PP, blob) classifier scores in a sharded bounded LRU
// shared by all sessions, so overlapping predicates score each blob once.
// Both caches are transparent: served results, row order and virtual-cost
// accounting are bit-identical to cache-free execution, because PP scores
// are pure functions and cache hits still charge the modeled virtual cost
// (the cache saves real CPU, not modeled cluster work).
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"probpred/internal/adapt"
	"probpred/internal/blob"
	"probpred/internal/engine"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/optimizer"
	"probpred/internal/pplog"
	"probpred/internal/query"
)

// QueryBuilder turns a predicate into an executable plan. Implementations
// describe the application's UDF pipeline (e.g. the traffic benchmark's
// detector + per-column UDFs); the server supplies the PP filter to inject.
type QueryBuilder interface {
	// UDFCost returns u, the per-blob virtual cost of the plan downstream of
	// a PP for this predicate — the work a PP can short-circuit (§3).
	UDFCost(pred query.Pred) (float64, error)
	// Build assembles the executable plan for the predicate, injecting filter
	// right after the scan. filter is nil when the optimizer declined to
	// inject (the plan must then run unmodified).
	Build(pred query.Pred, filter engine.BlobFilter) (engine.Plan, error)
}

// CorpusBuilder is the engine/corpus split of QueryBuilder: plan assembly
// with the blob corpus injected per call instead of baked into the builder.
// It is what sharded serving composes on — the coordinator binds one builder
// to N disjoint corpus slices, one per shard — and what later distribution
// work (remote shards, segment-versioned corpora) reuses.
type CorpusBuilder interface {
	// UDFCost returns u, the per-blob virtual cost of the plan downstream of
	// a PP for this predicate (corpus-independent).
	UDFCost(pred query.Pred) (float64, error)
	// BuildOver assembles the executable plan whose scan covers exactly
	// blobs, injecting filter right after the scan (nil filter = run
	// unmodified). Implementations must produce structurally identical plans
	// for any slice of the same corpus — sharded results are merged
	// positionally.
	BuildOver(blobs []blob.Blob, pred query.Pred, filter engine.BlobFilter) (engine.Plan, error)
}

// BindCorpus fixes a CorpusBuilder to one blob slice, yielding the
// per-server QueryBuilder a shard replica plans with.
func BindCorpus(b CorpusBuilder, blobs []blob.Blob) QueryBuilder {
	return boundBuilder{b: b, blobs: blobs}
}

type boundBuilder struct {
	b     CorpusBuilder
	blobs []blob.Blob
}

func (b boundBuilder) UDFCost(pred query.Pred) (float64, error) { return b.b.UDFCost(pred) }
func (b boundBuilder) Build(pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	return b.b.BuildOver(b.blobs, pred, filter)
}

// Config configures a Server.
type Config struct {
	// Optimizer plans predicates over the shared corpus. Required. The
	// server serializes Optimize calls internally (the optimizer's search
	// state is not safe for concurrent use); cached plans are served without
	// touching it.
	Optimizer *optimizer.Optimizer
	// Builder assembles executable plans. Required unless Corpus is set.
	Builder QueryBuilder
	// Corpus optionally provides per-request plan assembly for streaming
	// ingestion: a Request carrying an explicit Blobs slice is built with
	// Corpus.BuildOver over exactly that slice (a segment delta), sharing the
	// server's plan and score caches with every other request. When Builder
	// is nil, Corpus also serves Builder's role bound to an empty corpus, so
	// blob-less requests plan normally but scan nothing.
	Corpus CorpusBuilder
	// Accuracy is the default query-wide accuracy target for requests that
	// do not set their own. The accepted range is [0,1]: zero is explicitly
	// the "unset" value and selects 1 (no false negatives); anything
	// negative or above 1 is rejected by New.
	Accuracy float64
	// Domains maps columns to finite value domains for the optimizer's
	// wrangler rewrites. Optional.
	Domains map[string][]query.Value
	// MaxConcurrent bounds simultaneously executing sessions; excess
	// sessions queue (admission control). Zero selects GOMAXPROCS.
	MaxConcurrent int
	// Exec is the execution environment for every session's engine.Run.
	// Its Obs/Metrics default to the server's when unset.
	Exec engine.Config
	// PlanCacheSize bounds cached plans (LRU). Zero selects 128.
	PlanCacheSize int
	// ScoreCacheSize bounds memoized (PP, blob) scores across all shards
	// (LRU per shard). Zero selects 1<<20 entries (~48 MB upper bound at 48
	// bytes/entry of key+score+list overhead).
	ScoreCacheSize int
	// ScoreCacheShards is the score cache's lock-striping factor. Zero
	// selects 16.
	ScoreCacheShards int
	// DisableScoreCache keeps the score-cache plumbing (and its miss
	// counters) but stores nothing, so every lookup misses — the knob the
	// benchmark uses to measure uncached evaluation counts through identical
	// code paths.
	DisableScoreCache bool
	// ScoreCacheMinCost gates score-cache use per PP: leaves whose estimated
	// per-blob score cost (reducer + scorer virtual ms) is below the
	// threshold bypass the cache entirely and recompute. The latency harness
	// showed the cache's lock+map traffic is wall-clock slower than
	// recomputing cheap SVM scores, while expensive KDE/DNN PPs still win by
	// caching — this is the cost-aware cutover. Zero caches every leaf
	// (previous behavior). Bypassed leaves move neither hit nor miss
	// counters, so Stats.ScoreMisses keeps counting only cached-leaf
	// evaluations.
	ScoreCacheMinCost float64
	// Routing selects how a sharded Coordinator picks the replica that
	// serves each scatter leg (see NewSharded): RouteRoundRobin,
	// RouteLeastLoaded or RoutePlanAffinity. Empty selects round-robin.
	// Single servers ignore it.
	Routing RoutingPolicy
	// Adapt enables mid-query re-optimization: sessions whose plans inject a
	// compiled PP expression execute under the controller, which watches
	// observed selectivities against the plan's estimates, hot-swaps to a
	// re-ordered (outcome-identical) filter when they diverge, and demotes/
	// promotes this server's plan-cache entry so later sessions start on the
	// corrected order. Nil disables adaptation. Controllers may be shared
	// across servers; breaker state is per plan key.
	Adapt *adapt.Controller
	// Metrics receives serving telemetry: session and plan-cache counters,
	// admission-queue and active-session gauges, score-cache totals. Nil
	// disables.
	Metrics *metrics.Registry
	// Obs receives one KindSession span per request plus the optimizer's
	// KindOptimize spans for cache-miss searches. Nil disables.
	Obs *obs.Tracer
	// QueryLog receives one structured record per completed session (and,
	// under a sharded Coordinator, one per shard leg), keyed by the
	// session's TraceID. The writer is bounded and non-blocking: the serve
	// path never stalls on it. Nil disables.
	QueryLog *pplog.Writer
}

func (c *Config) fill() error {
	if c.Optimizer == nil {
		return fmt.Errorf("serve: Config.Optimizer is required")
	}
	if c.Builder == nil {
		if c.Corpus == nil {
			return fmt.Errorf("serve: Config.Builder is required")
		}
		c.Builder = BindCorpus(c.Corpus, nil)
	}
	if c.Accuracy < 0 || c.Accuracy > 1 {
		return fmt.Errorf("serve: accuracy target %v outside [0,1] (zero selects 1: no false negatives)", c.Accuracy)
	}
	if c.Accuracy == 0 {
		c.Accuracy = 1
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 128
	}
	if c.ScoreCacheSize <= 0 {
		c.ScoreCacheSize = 1 << 20
	}
	if c.ScoreCacheShards <= 0 {
		c.ScoreCacheShards = 16
	}
	if c.ScoreCacheMinCost < 0 {
		return fmt.Errorf("serve: ScoreCacheMinCost %v is negative", c.ScoreCacheMinCost)
	}
	if c.Routing == "" {
		c.Routing = RouteRoundRobin
	}
	if !c.Routing.valid() {
		return fmt.Errorf("serve: unknown routing policy %q (want %q, %q or %q)",
			c.Routing, RouteRoundRobin, RouteLeastLoaded, RoutePlanAffinity)
	}
	if c.Exec.Obs == nil {
		c.Exec.Obs = c.Obs
	}
	if c.Exec.Metrics == nil {
		c.Exec.Metrics = c.Metrics
	}
	return nil
}

// Request is one query session's input.
type Request struct {
	// ID labels the session in spans and responses. Optional.
	ID string
	// Pred is the query predicate.
	Pred query.Pred
	// Accuracy overrides the server's default accuracy target when non-zero.
	// Values outside [0,1] are rejected (zero means "use the server
	// default").
	Accuracy float64
	// Blobs, when non-nil, overrides the session's scan: the plan is built
	// with Config.Corpus.BuildOver over exactly this slice instead of the
	// bound Builder corpus. Streaming ingestion uses it to run a standing
	// query over one appended segment while sharing the plan and score
	// caches across segments. Requires Config.Corpus.
	Blobs []blob.Blob
	// Segment, when non-nil, tags the session's query-log record with the
	// stream segment the request covers. Informational only.
	Segment *pplog.SegInfo
	// Trace is the session trace ID to serve under. Empty (the normal case)
	// makes the server mint one; a sharded Coordinator sets it so every leg
	// of one scatter-gather session shares the coordinator's TraceID.
	Trace string
	// leg identifies the scatter-gather leg this request is (set by the
	// Coordinator; nil on direct requests).
	leg *legInfo
}

// legInfo tags a shard leg: which shard and replica serve it, under which
// routing policy, and the coordinator span to parent the leg's session span
// under.
type legInfo struct {
	shard, replica int
	policy         string
	parent         obs.TraceContext
}

// Response is one completed session.
type Response struct {
	// ID echoes the request label.
	ID string
	// TraceID is the session's trace ID: the key every span, event,
	// histogram exemplar and query-log record of this session shares.
	TraceID string
	// Result is the execution outcome (rows + cost accounting).
	Result *engine.Result
	// Decision is the optimizer decision the session executed under.
	Decision *optimizer.Decision
	// PlanKey is the canonical plan-cache key the session resolved to.
	PlanKey string
	// PlanCached reports whether the decision came from the plan cache
	// (true) or a fresh plan search (false).
	PlanCached bool
	// Adapt reports what mid-query re-optimization did during the session.
	// Nil when the server has no adapt controller configured.
	Adapt *adapt.Report
	// QueueWait is the enqueue→admit wall time: how long the session waited
	// for an execution slot behind the admission semaphore.
	QueueWait time.Duration
	// Service is the admit→done wall time: planning (or plan-cache lookup)
	// plus execution.
	Service time.Duration
}

// Stats is a point-in-time snapshot of the server's cache and session
// counters.
type Stats struct {
	// Sessions is how many requests completed (including failures).
	Sessions uint64
	// PlanHits / PlanMisses count plan-cache outcomes per session; hits
	// skipped the optimizer search entirely.
	PlanHits, PlanMisses uint64
	// PlanInvalidations counts cached plans dropped as stale (a corpus
	// change touched a clause the plan consulted) or flushed manually.
	PlanInvalidations uint64
	// PlanRevalidations counts cached plans from older corpus versions kept
	// because the mutation left every clause they consulted untouched
	// (partial invalidation: only plans whose PP set actually changed
	// re-search).
	PlanRevalidations uint64
	// PlanEntries is the current plan-cache population.
	PlanEntries int
	// ScoreHits / ScoreMisses count score-cache lookups across all sessions.
	// With the score cache disabled every lookup is a miss, so ScoreMisses
	// equals the number of PP score evaluations performed.
	ScoreHits, ScoreMisses uint64
	// ScoreEntries is the current score-cache population.
	ScoreEntries int
	// PlanDemotions / PlanPromotions count adapt-driven plan-cache
	// maintenance: stale entries dropped mid-query and re-ordered filters
	// installed in their place.
	PlanDemotions, PlanPromotions uint64
	// ScatterSessions / ScatterFailures count merged scatter-gather sessions
	// and sessions failed by at least one shard. Zero on standalone servers;
	// on a Coordinator, Sessions counts per-shard legs (≈ ScatterSessions ×
	// Shards).
	ScatterSessions, ScatterFailures uint64
}

// Server admits concurrent query sessions over a shared optimizer, plan
// cache and score cache. Safe for concurrent Do calls.
type Server struct {
	cfg    Config
	plans  *planCache
	scores *scoreCache
	// sem is the admission semaphore bounding concurrently executing
	// sessions.
	sem chan struct{}
	// optMu serializes plan searches: optimizer.Optimize mutates shared
	// search state (negation cache, dependence map) and is not safe for
	// concurrent use. Cached plans bypass this lock. It is a pointer so a
	// sharded Coordinator can point every replica sharing one optimizer at
	// one lock; standalone servers own theirs.
	optMu *sync.Mutex

	// queued / active mirror the admission gauges as plain atomics, always
	// maintained (metrics registry or not): they are the live load signal
	// the least-loaded router reads.
	queued, active atomic.Int64

	sessions             atomic.Uint64
	planHits, planMisses atomic.Uint64
}

// New validates the config and returns a ready server.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		plans:  newPlanCache(cfg.PlanCacheSize, cfg.Optimizer.Corpus()),
		scores: newScoreCache(cfg.ScoreCacheSize, cfg.ScoreCacheShards, cfg.DisableScoreCache),
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		optMu:  &sync.Mutex{},
	}, nil
}

// Load reports the server's live admission state: sessions waiting for a
// slot and sessions currently executing. It is the signal load-aware routers
// balance on.
func (s *Server) Load() (queued, active int64) {
	return s.queued.Load(), s.active.Load()
}

// Do runs one query session: admission, plan-cache resolution (searching on
// miss), execution. Blocks while the server is at MaxConcurrent. The
// enqueue→admit (semaphore wait) and admit→done (execution) wall times land
// in the serve_admission_wait_ns / serve_service_ns histograms and on the
// Response, so callers and /metrics see the same queue-wait vs service-time
// split.
func (s *Server) Do(req Request) (*Response, error) {
	reg := s.cfg.Metrics
	// The trace ID is minted before admission so the queue-wait exemplar can
	// carry it. It exists independently of the tracer: exemplars, the query
	// log and Response.TraceID key on it even when span collection is off.
	trace := req.Trace
	if trace == "" {
		trace = obs.NewTraceID()
	}
	enqueued := time.Now()
	s.queued.Add(1)
	if reg != nil {
		reg.Gauge("serve_admission_queue_depth", "Sessions waiting for an execution slot.").Add(1)
	}
	s.sem <- struct{}{}
	admitted := time.Now()
	s.queued.Add(-1)
	s.active.Add(1)
	if reg != nil {
		reg.Gauge("serve_admission_queue_depth", "Sessions waiting for an execution slot.").Add(-1)
		reg.Gauge("serve_active_sessions", "Sessions currently executing.").Add(1)
		reg.Histogram("serve_admission_wait_ns", "Wall nanoseconds a session waited for an execution slot (enqueue to admit).").
			ObserveExemplar(float64(admitted.Sub(enqueued)), trace)
	}
	defer func() {
		<-s.sem
		s.active.Add(-1)
		if reg != nil {
			reg.Gauge("serve_active_sessions", "Sessions currently executing.").Add(-1)
		}
	}()
	s.sessions.Add(1)

	name := req.ID
	if name == "" {
		name = req.Pred.String()
	}
	// A shard leg's session span parents under the coordinator's span;
	// direct sessions root a fresh trace.
	parent := obs.TraceContext{TraceID: trace}
	if req.leg != nil {
		parent = req.leg.parent
	}
	span := s.cfg.Obs.BeginCtx(parent, obs.KindSession, name)
	if req.leg != nil {
		span.SetAttr("shard", strconv.Itoa(req.leg.shard))
		span.SetAttr("replica", strconv.Itoa(req.leg.replica))
		span.SetAttr("policy", req.leg.policy)
	}
	ctx := obs.TraceContext{TraceID: trace, SpanID: span.ID}
	resp, err := s.serve(req, &span, ctx)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	s.cfg.Obs.End(&span)
	service := time.Since(admitted)
	if reg != nil {
		reg.Histogram("serve_service_ns", "Wall nanoseconds a session spent executing (admit to done).").
			ObserveExemplar(float64(service), trace)
	}
	if resp != nil {
		resp.TraceID = trace
		resp.QueueWait = admitted.Sub(enqueued)
		resp.Service = service
	}
	s.emitSessionMetrics(resp, err)
	s.logSession(req, resp, trace, admitted.Sub(enqueued), service, err)
	return resp, err
}

// logSession writes the session's structured query-log record. The write is
// non-blocking: a full buffer drops the record and bumps the writer's drop
// counter rather than stalling the serve path.
func (s *Server) logSession(req Request, resp *Response, trace string, wait, service time.Duration, err error) {
	if s.cfg.QueryLog == nil {
		return
	}
	acc := req.Accuracy
	if acc == 0 {
		acc = s.cfg.Accuracy
	}
	rec := pplog.Record{
		TimeUnixNS:  time.Now().UnixNano(),
		TraceID:     trace,
		Session:     req.ID,
		Accuracy:    acc,
		QueueWaitNS: wait.Nanoseconds(),
		ServiceNS:   service.Nanoseconds(),
	}
	if req.leg != nil {
		rec.Leg = &pplog.LegInfo{Shard: req.leg.shard, Replica: req.leg.replica, Policy: req.leg.policy}
	}
	rec.Seg = req.Segment
	if err != nil {
		rec.Error = err.Error()
	}
	if resp != nil {
		rec.PlanKey = resp.PlanKey
		rec.PlanCached = resp.PlanCached
		if resp.Decision.Inject {
			rec.EstReduction = resp.Decision.Reduction
		}
		if resp.Adapt != nil {
			rec.AdaptSwaps = len(resp.Adapt.Swaps)
		}
		if resp.Result != nil {
			rec.Rows = len(resp.Result.Rows)
			rec.ClusterVMS = resp.Result.ClusterTime
			for _, op := range resp.Result.PerOp {
				if op.PPFilter {
					rec.PPTested += op.RowsIn
					rec.PPPassed += op.RowsOut
				}
			}
			if rec.PPTested > 0 {
				rec.ObsReduction = 1 - float64(rec.PPPassed)/float64(rec.PPTested)
			}
		}
	}
	s.cfg.QueryLog.Log(rec)
}

func (s *Server) serve(req Request, span *obs.Span, ctx obs.TraceContext) (*Response, error) {
	if req.Pred == nil {
		return nil, fmt.Errorf("serve: request %q has no predicate", req.ID)
	}
	accuracy := req.Accuracy
	if accuracy < 0 || accuracy > 1 {
		// Reject before the value reaches the optimizer or the plan-cache
		// key: a bad accuracy would otherwise be baked into a cached plan and
		// served to every later request with the same spelling.
		return nil, fmt.Errorf("serve: request %q accuracy %v outside [0,1] (zero selects the server default)", req.ID, accuracy)
	}
	if accuracy == 0 {
		accuracy = s.cfg.Accuracy
	}
	key := optimizer.PlanKey(req.Pred, accuracy)
	entry, cached, err := s.resolvePlan(req.Pred, accuracy, key, ctx)
	if err != nil {
		return nil, err
	}
	span.SetAttr("plan_key", key)
	span.SetAttr("plan_cached", strconv.FormatBool(cached))

	var filter engine.BlobFilter
	if entry.dec.Inject {
		filter = entry.filter
	}
	var plan engine.Plan
	if req.Blobs != nil {
		if s.cfg.Corpus == nil {
			return nil, fmt.Errorf("serve: request %q carries explicit blobs but Config.Corpus is not set", req.ID)
		}
		plan, err = s.cfg.Corpus.BuildOver(req.Blobs, req.Pred, filter)
	} else {
		plan, err = s.cfg.Builder.Build(req.Pred, filter)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: build plan for %q: %w", req.Pred.String(), err)
	}
	// Every operator and chunk span of this run inherits the session's
	// trace through the engine config.
	ecfg := s.cfg.Exec
	ecfg.Trace = ctx
	var res *engine.Result
	var arep *adapt.Report
	if s.cfg.Adapt != nil && filter != nil {
		res, arep, err = s.cfg.Adapt.Run(plan, ecfg, adapt.RunSpec{
			Key: key,
			Reopt: func(f *optimizer.Compiled, minRows uint64) (*optimizer.Reoptimized, error) {
				return s.reoptimize(f, minRows, ctx)
			},
			Cache: sessionCache{s: s, entry: entry},
		})
	} else {
		res, err = engine.Run(plan, ecfg)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: run %q: %w", req.Pred.String(), err)
	}
	if arep != nil && len(arep.Swaps) > 0 {
		span.SetAttr("adapt_swaps", strconv.Itoa(len(arep.Swaps)))
	}
	span.RowsOut = len(res.Rows)
	span.CostVMS = res.ClusterTime
	return &Response{
		ID:         req.ID,
		Result:     res,
		Decision:   entry.dec,
		PlanKey:    key,
		PlanCached: cached,
		Adapt:      arep,
	}, nil
}

// reoptimize is the adapt controller's optimizer re-entry. It takes the same
// lock as plan searches: Reoptimize reads optimizer state that Optimize
// mutates, and neither is safe for concurrent use. The session's trace
// context keys the re-optimization event to the session that triggered it.
func (s *Server) reoptimize(f *optimizer.Compiled, minRows uint64, ctx obs.TraceContext) (*optimizer.Reoptimized, error) {
	s.optMu.Lock()
	defer s.optMu.Unlock()
	return s.cfg.Optimizer.ReoptimizeCtx(f, minRows, s.cfg.Obs, ctx)
}

// sessionCache adapts the server's plan cache to adapt.PlanCache for one
// session. The session's own entry is the donor a promotion inherits its
// decision and corpus version from — the key may have been demoted (or
// evicted) by the time the promotion lands, and the cache must still be able
// to build a complete fresh entry.
type sessionCache struct {
	s     *Server
	entry *planEntry
}

// DemotePlan implements adapt.PlanCache.
func (c sessionCache) DemotePlan(key string) { c.s.plans.demote(key) }

// PromotePlan implements adapt.PlanCache. The promoted filter is the
// re-ordered compiled expression; it shares the entry filter's leaves, so the
// score-cache attachment (and cross-session score reuse) carries over.
func (c sessionCache) PromotePlan(key string, re *optimizer.Reoptimized) {
	c.s.plans.promote(c.entry, re.Filter)
}

// resolvePlan returns the cached plan entry for (pred, accuracy), or runs a
// plan search under the optimizer lock. The lookup is double-checked: while
// a session waits on optMu another session may have completed the identical
// search, and the second lookup turns that into a hit instead of a duplicate
// search.
func (s *Server) resolvePlan(pred query.Pred, accuracy float64, key string, ctx obs.TraceContext) (*planEntry, bool, error) {
	corpus := s.cfg.Optimizer.Corpus()
	if e, ok := s.plans.get(key, corpus.Version()); ok {
		s.planHits.Add(1)
		return e, true, nil
	}
	s.optMu.Lock()
	defer s.optMu.Unlock()
	version := corpus.Version()
	if e, ok := s.plans.get(key, version); ok {
		s.planHits.Add(1)
		return e, true, nil
	}
	u, err := s.cfg.Builder.UDFCost(pred)
	if err != nil {
		return nil, false, fmt.Errorf("serve: UDF cost for %q: %w", pred.String(), err)
	}
	dec, err := s.cfg.Optimizer.Optimize(pred, optimizer.Options{
		Accuracy: accuracy,
		UDFCost:  u,
		Domains:  s.cfg.Domains,
		Obs:      s.cfg.Obs,
		Trace:    ctx,
	})
	if err != nil {
		return nil, false, fmt.Errorf("serve: optimize %q: %w", pred.String(), err)
	}
	e := &planEntry{key: key, version: version, deps: dec.Consulted(), dec: dec}
	if dec.Inject {
		// One score-cache-attached filter per entry, shared by every session
		// that hits it — sharing is what makes cross-session score reuse
		// work; the engine keeps per-run accounting separate. Leaves cheaper
		// than ScoreCacheMinCost skip the cache (recomputing beats the
		// cache's lock+map traffic for cheap scorers).
		e.filter = dec.Filter.WithScoreCacheMin(s.scores, s.cfg.ScoreCacheMinCost)
	}
	s.plans.put(e)
	s.planMisses.Add(1)
	return e, false, nil
}

// Invalidate drops every cached plan, forcing fresh searches. Corpus changes
// invalidate automatically (entries are version-checked); this is the manual
// override for out-of-band invalidation.
func (s *Server) Invalidate() { s.plans.flush() }

// SyncCorpus runs fn under the server's optimizer lock, serializing corpus
// mutations with plan searches. Streaming ingestion routes online training
// and watchdog reports (which Add/Remove corpus PPs and read shared
// optimizer state) through it so they never race an in-flight plan search;
// cached-plan sessions are unaffected — they bypass the lock and see the
// mutation through the corpus version.
func (s *Server) SyncCorpus(fn func()) {
	s.optMu.Lock()
	defer s.optMu.Unlock()
	fn()
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Sessions:          s.sessions.Load(),
		PlanHits:          s.planHits.Load(),
		PlanMisses:        s.planMisses.Load(),
		PlanInvalidations: s.plans.invalidations.Load(),
		PlanRevalidations: s.plans.revalidations.Load(),
		PlanEntries:       s.plans.len(),
		ScoreHits:         s.scores.hits.Load(),
		ScoreMisses:       s.scores.misses.Load(),
		ScoreEntries:      s.scores.Len(),
		PlanDemotions:     s.plans.demotions.Load(),
		PlanPromotions:    s.plans.promotions.Load(),
	}
}

// emitSessionMetrics records one completed session. Cache totals are
// republished as gauges so /metrics always reflects the latest snapshot.
func (s *Server) emitSessionMetrics(resp *Response, err error) {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Counter("serve_sessions_total", "Query sessions served.").Inc()
	if err != nil {
		reg.Counter("serve_session_errors_total", "Query sessions that failed.").Inc()
		return
	}
	if resp.PlanCached {
		reg.Counter("serve_plan_cache_hits_total", "Sessions served from the plan cache.").Inc()
	} else {
		reg.Counter("serve_plan_cache_misses_total", "Sessions that ran a fresh plan search.").Inc()
	}
	reg.Gauge("serve_plan_cache_entries", "Plans currently cached.").Set(float64(s.plans.len()))
	reg.Gauge("serve_plan_cache_invalidations", "Cached plans dropped as stale or flushed.").Set(float64(s.plans.invalidations.Load()))
	reg.Gauge("serve_plan_cache_revalidations", "Stale-version cached plans kept because no consulted clause changed.").Set(float64(s.plans.revalidations.Load()))
	reg.Gauge("serve_plan_cache_demotions", "Cached plans demoted by mid-query adaptation.").Set(float64(s.plans.demotions.Load()))
	reg.Gauge("serve_plan_cache_promotions", "Re-ordered plans promoted into the cache by mid-query adaptation.").Set(float64(s.plans.promotions.Load()))
	reg.Gauge("serve_score_cache_entries", "PP scores currently cached.").Set(float64(s.scores.Len()))
	reg.Gauge("serve_score_cache_hits", "Cumulative score-cache hits across sessions.").Set(float64(s.scores.hits.Load()))
	reg.Gauge("serve_score_cache_misses", "Cumulative score-cache misses across sessions.").Set(float64(s.scores.misses.Load()))
}

// WorkloadQuery is one query of a replayed workload.
type WorkloadQuery struct {
	ID   string
	Pred string
	// Accuracy overrides the server default when non-zero.
	Accuracy float64
}

// Replay parses and serves a workload at the given concurrency, returning
// responses in workload order regardless of completion order. Replay runs to
// completion: a failed query (parse error or Do error) never aborts the
// remaining queries, its response slot stays nil, and every failure is
// aggregated — per-query-labeled — into the returned error (errors.Join).
func (s *Server) Replay(workload []WorkloadQuery, concurrency int) ([]*Response, error) {
	return replay(s, workload, concurrency)
}

// doer is the serving surface Replay drives: a Server or a Coordinator.
type doer interface {
	Do(Request) (*Response, error)
}

func replay(d doer, workload []WorkloadQuery, concurrency int) ([]*Response, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	out := make([]*Response, len(workload))
	errs := make([]error, len(workload))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(workload) {
					return
				}
				q := workload[i]
				pred, err := query.Parse(q.Pred)
				if err != nil {
					errs[i] = fmt.Errorf("serve: parse %s (%q): %w", q.ID, q.Pred, err)
					continue
				}
				out[i], errs[i] = d.Do(Request{ID: q.ID, Pred: pred, Accuracy: q.Accuracy})
			}
		}()
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("query %s: %w", workload[i].ID, err))
		}
	}
	return out, errors.Join(failed...)
}
