package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Vec is a dense float64 vector. Functions in this file treat Vec values as
// plain slices; callers own allocation.
type Vec = []float64

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y Vec) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x Vec) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x Vec) float64 {
	return math.Sqrt(Dot(x, x))
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// CloneVec returns a copy of x.
func CloneVec(x Vec) Vec {
	c := make(Vec, len(x))
	copy(c, x)
	return c
}

// Sparse is a sparse vector in coordinate form. Idx is sorted ascending and
// holds the indices of the non-zero entries; Val holds the matching values.
// Dim is the logical dimensionality.
type Sparse struct {
	Dim int
	Idx []int
	Val []float64
}

// NewSparse builds a sparse vector from parallel index/value slices. The
// input need not be sorted; the result is. Duplicate indices are summed.
func NewSparse(dim int, idx []int, val []float64) Sparse {
	if len(idx) != len(val) {
		panic("mathx: NewSparse index/value length mismatch")
	}
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return idx[order[a]] < idx[order[b]] })
	s := Sparse{Dim: dim}
	for _, o := range order {
		i, v := idx[o], val[o]
		if i < 0 || i >= dim {
			panic(fmt.Sprintf("mathx: sparse index %d out of range [0,%d)", i, dim))
		}
		if n := len(s.Idx); n > 0 && s.Idx[n-1] == i {
			s.Val[n-1] += v
			continue
		}
		s.Idx = append(s.Idx, i)
		s.Val = append(s.Val, v)
	}
	return s
}

// NNZ returns the number of stored non-zeros.
func (s Sparse) NNZ() int { return len(s.Idx) }

// Dense materializes the sparse vector as a dense one.
func (s Sparse) Dense() Vec {
	d := make(Vec, s.Dim)
	for k, i := range s.Idx {
		d[i] = s.Val[k]
	}
	return d
}

// DotDense returns the inner product of s with a dense vector w of the same
// dimensionality.
func (s Sparse) DotDense(w Vec) float64 {
	if len(w) != s.Dim {
		panic(fmt.Sprintf("mathx: Sparse.DotDense dim mismatch %d vs %d", s.Dim, len(w)))
	}
	sum := 0.0
	for k, i := range s.Idx {
		sum += s.Val[k] * w[i]
	}
	return sum
}

// AxpyDense computes w += alpha*s for a dense w.
func (s Sparse) AxpyDense(alpha float64, w Vec) {
	if len(w) != s.Dim {
		panic(fmt.Sprintf("mathx: Sparse.AxpyDense dim mismatch %d vs %d", s.Dim, len(w)))
	}
	for k, i := range s.Idx {
		w[i] += alpha * s.Val[k]
	}
}
