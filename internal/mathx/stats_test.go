package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should yield 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 || s.Mean != 3 || s.N != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Fatalf("quartiles = %v %v", s.P25, s.P75)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v", s)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 || len(raw) > 100 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		s := make([]float64, len(raw))
		copy(s, raw)
		sort.Float64s(s)
		v1 := QuantileSorted(s, q1)
		v2 := QuantileSorted(s, q2)
		return v1 <= v2 && v1 >= s[0] && v2 <= s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
