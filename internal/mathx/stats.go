package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted is Quantile over an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary holds the five-number summary plus the mean of a sample, matching
// the whisker plots in Figure 9 of the paper.
type Summary struct {
	Min, P25, P50, P75, Max, Mean float64
	N                             int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return Summary{
		Min:  s[0],
		P25:  quantileSorted(s, 0.25),
		P50:  quantileSorted(s, 0.50),
		P75:  quantileSorted(s, 0.75),
		Max:  s[len(s)-1],
		Mean: Mean(xs),
		N:    len(xs),
	}
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
