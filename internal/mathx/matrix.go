package mathx

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMat allocates a zeroed rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec computes y = M·x.
func (m *Mat) MulVec(x Vec) Vec {
	y := make(Vec, m.Rows)
	m.MulVecInto(x, y)
	return y
}

// MulVecInto computes y = M·x into the caller's buffer (len Rows), the
// allocation-free form hot paths use. Each output accumulates in column
// order, so results are bit-identical to MulVec.
func (m *Mat) MulVecInto(x, y Vec) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mathx: MulVecInto dim mismatch %d vs %d", m.Cols, len(x)))
	}
	if len(y) != m.Rows {
		panic(fmt.Sprintf("mathx: MulVecInto output length %d, want %d", len(y), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
}

// MulVecT computes y = Mᵀ·x.
func (m *Mat) MulVecT(x Vec) Vec {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mathx: MulVecT dim mismatch %d vs %d", m.Rows, len(x)))
	}
	y := make(Vec, m.Cols)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), y)
	}
	return y
}

// orthonormalize applies modified Gram-Schmidt to the rows of m in place,
// returning the number of rows that remained linearly independent.
func orthonormalize(rows []Vec) int {
	kept := 0
	for _, r := range rows {
		for j := 0; j < kept; j++ {
			Axpy(-Dot(rows[j], r), rows[j], r)
		}
		n := Norm2(r)
		if n < 1e-12 {
			continue
		}
		Scale(1/n, r)
		rows[kept] = r
		kept++
	}
	return kept
}

// TopEigen computes the top-k eigenpairs of the symmetric positive
// semi-definite matrix represented by the callback apply (which must compute
// A·x) of dimension dim, using simultaneous (block) power iteration with
// periodic re-orthonormalization. It returns the eigenvectors as rows of a
// k×dim matrix and the corresponding eigenvalue estimates, sorted descending.
//
// iters controls the number of power steps; 50-100 is ample for the spectra
// that appear in PCA over the synthetic datasets in this repository.
func TopEigen(dim, k, iters int, rng *RNG, apply func(x Vec) Vec) (*Mat, Vec) {
	if k > dim {
		k = dim
	}
	basis := make([]Vec, k)
	for i := range basis {
		v := make(Vec, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		basis[i] = v
	}
	orthonormalize(basis)
	for it := 0; it < iters; it++ {
		for i := range basis {
			basis[i] = apply(basis[i])
		}
		orthonormalize(basis)
	}
	// Rayleigh quotients as eigenvalue estimates.
	vals := make(Vec, k)
	for i, v := range basis {
		vals[i] = Dot(v, apply(v))
	}
	// Sort by descending eigenvalue (selection sort; k is tiny).
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < k; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		vals[i], vals[best] = vals[best], vals[i]
		basis[i], basis[best] = basis[best], basis[i]
	}
	out := NewMat(k, dim)
	for i, v := range basis {
		copy(out.Row(i), v)
	}
	return out, vals
}

// Sigmoid returns 1/(1+e^-x) guarding against overflow.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
