// Package mathx provides the small numeric substrate shared by every other
// package in this repository: deterministic random number generation, dense
// and sparse vectors, dense matrices, and summary statistics.
//
// All randomness in the repository flows through RNG so that experiments are
// reproducible bit-for-bit from a seed.
package mathx

import "math"

// RNG is a deterministic pseudo-random number generator based on splitmix64.
// The zero value is a valid generator seeded with 0; use NewRNG to seed.
//
// RNG intentionally does not wrap math/rand: a self-contained generator
// guarantees the stream is stable across Go releases, which keeps the
// experiment tables in EXPERIMENTS.md reproducible.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from the Box-Muller pair.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is independent of r's. It is
// used to hand child components their own reproducible streams.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place with the Fisher-Yates algorithm.
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Choice returns a uniformly chosen index weighted by w (w need not sum to
// one but must be non-negative with a positive total).
func (r *RNG) Choice(w []float64) int {
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		panic("mathx: Choice requires positive total weight")
	}
	t := r.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if t < acc {
			return i
		}
	}
	return len(w) - 1
}
