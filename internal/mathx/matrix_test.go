package mathx

import (
	"math"
	"testing"
)

func TestMatAtSet(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.At(0, 0) != 0 {
		t.Fatal("At/Set mismatch")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMat(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	y := m.MulVec(Vec{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulVecT(t *testing.T) {
	m := NewMat(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	y := m.MulVecT(Vec{1, 1})
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("MulVecT = %v", y)
	}
}

func TestOrthonormalize(t *testing.T) {
	rows := []Vec{{1, 1, 0}, {1, 0, 0}, {2, 2, 0}} // third is dependent on first
	kept := orthonormalize(rows)
	if kept != 2 {
		t.Fatalf("kept = %d, want 2", kept)
	}
	if !almostEq(Norm2(rows[0]), 1, 1e-12) || !almostEq(Norm2(rows[1]), 1, 1e-12) {
		t.Fatal("rows not unit length")
	}
	if !almostEq(Dot(rows[0], rows[1]), 0, 1e-12) {
		t.Fatal("rows not orthogonal")
	}
}

// TestTopEigenDiagonal checks that power iteration recovers the dominant
// eigenpairs of a known diagonal matrix.
func TestTopEigenDiagonal(t *testing.T) {
	diag := Vec{10, 5, 1, 0.1}
	apply := func(x Vec) Vec {
		y := make(Vec, len(x))
		for i := range x {
			y[i] = diag[i] * x[i]
		}
		return y
	}
	vecs, vals := TopEigen(4, 2, 200, NewRNG(1), apply)
	if !almostEq(vals[0], 10, 1e-6) || !almostEq(vals[1], 5, 1e-6) {
		t.Fatalf("eigenvalues = %v, want [10 5]", vals)
	}
	if !almostEq(math.Abs(vecs.At(0, 0)), 1, 1e-4) {
		t.Fatalf("first eigenvector = %v, want e0", vecs.Row(0))
	}
	if !almostEq(math.Abs(vecs.At(1, 1)), 1, 1e-4) {
		t.Fatalf("second eigenvector = %v, want e1", vecs.Row(1))
	}
}

func TestTopEigenKClamped(t *testing.T) {
	apply := func(x Vec) Vec { return CloneVec(x) }
	vecs, vals := TopEigen(3, 10, 10, NewRNG(2), apply)
	if vecs.Rows != 3 || len(vals) != 3 {
		t.Fatalf("k not clamped: rows=%d vals=%d", vecs.Rows, len(vals))
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEq(Sigmoid(0), 0.5, 1e-12) {
		t.Fatal("Sigmoid(0) != 0.5")
	}
	if Sigmoid(100) <= 0.999 || Sigmoid(-100) >= 0.001 {
		t.Fatal("Sigmoid saturation wrong")
	}
	// No overflow at extremes.
	if math.IsNaN(Sigmoid(1e9)) || math.IsNaN(Sigmoid(-1e9)) {
		t.Fatal("Sigmoid overflow")
	}
}
