package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d has fraction %.4f, want ~0.1", i, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(9)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first draws")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestChoiceWeights(t *testing.T) {
	r := NewRNG(19)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight option chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero total weight")
		}
	}()
	NewRNG(1).Choice([]float64{0, 0})
}
