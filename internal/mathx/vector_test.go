package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot(Vec{1, 2, 3}, Vec{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestAxpy(t *testing.T) {
	y := Vec{1, 1, 1}
	Axpy(2, Vec{1, 2, 3}, y)
	want := Vec{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2(Vec{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist(Vec{0, 0}, Vec{3, 4}); got != 25 {
		t.Fatalf("SqDist = %v", got)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(raw []float64, alpha float64) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e3 {
			return true
		}
		a := CloneVec(raw)
		b := make(Vec, len(raw))
		for i := range b {
			b[i] = raw[len(raw)-1-i]
		}
		// Symmetry.
		if !almostEq(Dot(a, b), Dot(b, a), 1e-6*(1+math.Abs(Dot(a, b)))) {
			return false
		}
		// Homogeneity: (alpha a)·b == alpha (a·b).
		sa := CloneVec(a)
		Scale(alpha, sa)
		return almostEq(Dot(sa, b), alpha*Dot(a, b), 1e-5*(1+math.Abs(alpha*Dot(a, b))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy-Schwarz |a·b| <= |a||b|.
func TestCauchySchwarzQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 || len(raw)%2 != 0 || len(raw) > 64 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		h := len(raw) / 2
		a, b := raw[:h], raw[h:]
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewSparseSortsAndMerges(t *testing.T) {
	s := NewSparse(10, []int{5, 2, 5}, []float64{1, 2, 3})
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
	if s.Idx[0] != 2 || s.Idx[1] != 5 {
		t.Fatalf("indices not sorted: %v", s.Idx)
	}
	if s.Val[1] != 4 {
		t.Fatalf("duplicate not merged: %v", s.Val)
	}
}

func TestSparseDense(t *testing.T) {
	s := NewSparse(4, []int{1, 3}, []float64{2, -1})
	d := s.Dense()
	want := Vec{0, 2, 0, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Dense = %v", d)
		}
	}
}

func TestSparseDotDenseMatchesDense(t *testing.T) {
	s := NewSparse(5, []int{0, 2, 4}, []float64{1, 2, 3})
	w := Vec{1, 1, 1, 1, 1}
	if got, want := s.DotDense(w), Dot(s.Dense(), w); got != want {
		t.Fatalf("DotDense = %v, want %v", got, want)
	}
}

func TestSparseAxpyDense(t *testing.T) {
	s := NewSparse(3, []int{1}, []float64{4})
	w := Vec{1, 1, 1}
	s.AxpyDense(0.5, w)
	if w[1] != 3 || w[0] != 1 || w[2] != 1 {
		t.Fatalf("AxpyDense = %v", w)
	}
}

func TestNewSparseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparse(3, []int{3}, []float64{1})
}

// Property: for random sparse vectors, DotDense agrees with dense Dot.
func TestSparseDotQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		dim := 1 + r.Intn(50)
		nnz := r.Intn(dim + 1)
		idx := make([]int, nnz)
		val := make([]float64, nnz)
		for i := range idx {
			idx[i] = r.Intn(dim)
			val[i] = r.NormFloat64()
		}
		s := NewSparse(dim, idx, val)
		w := make(Vec, dim)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		return almostEq(s.DotDense(w), Dot(s.Dense(), w), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
