package dimred

import (
	"testing"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

func denseBlobs(n, dim int, seed uint64) []blob.Blob {
	rng := mathx.NewRNG(seed)
	out := make([]blob.Blob, n)
	for i := range out {
		v := make(mathx.Vec, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = blob.FromDense(i, v)
	}
	return out
}

func sparseBlobs(n, dim int, seed uint64) []blob.Blob {
	rng := mathx.NewRNG(seed)
	out := make([]blob.Blob, n)
	for i := range out {
		var idx []int
		var val []float64
		for k := 0; k < 15; k++ {
			idx = append(idx, rng.Intn(dim))
			val = append(val, rng.NormFloat64())
		}
		out[i] = blob.FromSparse(i, mathx.NewSparse(dim, idx, val))
	}
	return out
}

// TestReduceBatchMatchesReduce is the BatchReducer contract: the flat buffer
// must hold exactly what per-row Reduce returns, bit for bit, for every
// built-in reducer on both blob representations it accepts.
func TestReduceBatchMatchesReduce(t *testing.T) {
	const dim = 40
	dense := denseBlobs(64, dim, 1)
	sparse := sparseBlobs(64, dim, 2)
	mixed := append(append([]blob.Blob{}, dense[:16]...), sparse[:16]...)

	pca, err := FitPCA(dense, 6, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		r       Reducer
		batches [][]blob.Blob
	}{
		{"Identity", Identity{Dim: dim}, [][]blob.Blob{dense, sparse, mixed}},
		{"PCA", pca, [][]blob.Blob{dense}},
		{"FH", NewFeatureHash(16, 99), [][]blob.Blob{dense, sparse, mixed}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br, ok := tc.r.(BatchReducer)
			if !ok {
				t.Fatalf("%s does not implement BatchReducer", tc.name)
			}
			k := tc.r.OutDim()
			for _, blobs := range tc.batches {
				// Run twice so the second pass hits recycled pool buffers.
				for pass := 0; pass < 2; pass++ {
					flat := make([]float64, len(blobs)*k)
					br.ReduceBatch(blobs, flat)
					for i, b := range blobs {
						want := tc.r.Reduce(b)
						got := flat[i*k : (i+1)*k]
						for j := range want {
							if got[j] != want[j] {
								t.Fatalf("%s row %d dim %d: batch %v scalar %v",
									tc.name, i, j, got[j], want[j])
							}
						}
					}
				}
			}
		})
	}
}
