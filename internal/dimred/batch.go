package dimred

import (
	"sync"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// BatchReducer is the optional batch fast path of Reducer. Implementations
// write the reductions of many blobs into one caller-provided row-major flat
// buffer, which lets them run as blocked kernels (amortizing basis/table
// traversals over the batch) and lets callers recycle the buffer instead of
// allocating one vector per blob.
//
// The contract is strict so that the batch path can replace the scalar one
// anywhere: blob i's reduced vector must land in dst[i*OutDim():(i+1)*OutDim()]
// and must be bit-identical to Reduce(blobs[i]) — same per-entry accumulation
// order, not merely numerically close. Reducers that cannot guarantee this
// must simply not implement the interface; core.PP falls back to a per-blob
// loop for them.
type BatchReducer interface {
	Reducer
	// ReduceBatch reduces blobs into dst, which must have length
	// len(blobs)*OutDim(). Blobs are assumed homogeneous in dimensionality
	// (every generator in this repository produces such sets).
	ReduceBatch(blobs []blob.Blob, dst []float64)
}

// reduceBlock is how many blobs are centered/projected together by the PCA
// batch kernel: large enough to amortize the basis traversal, small enough
// that a block of centered inputs stays cache-resident.
const reduceBlock = 64

// centerPool recycles the PCA kernel's centered-input blocks.
var centerPool sync.Pool

func getCenterBlock(n int) []float64 {
	if p, ok := centerPool.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putCenterBlock(buf []float64) { centerPool.Put(&buf) }

// ReduceBatch implements BatchReducer: blobs are copied (sparse ones
// scattered) row-major into dst. Bit-identical to per-blob Reduce by
// construction — the values are moved, never transformed.
func (id Identity) ReduceBatch(blobs []blob.Blob, dst []float64) {
	d := id.Dim
	for i, b := range blobs {
		row := dst[i*d : (i+1)*d]
		if b.Sparse != nil {
			clear(row)
			for k, j := range b.Sparse.Idx {
				row[j] = b.Sparse.Val[k]
			}
			continue
		}
		copy(row, b.Dense)
	}
}

// ReduceBatch implements BatchReducer as a blocked projection kernel: a block
// of inputs is centered into a recycled scratch buffer, then each basis row
// sweeps the whole block while it is hot in cache. Per blob, each output
// component is Dot(basisRow, x−mean)·scale with the same accumulation order
// as Reduce, so batch and scalar projections are bit-identical.
func (p *PCA) ReduceBatch(blobs []blob.Blob, dst []float64) {
	k := p.basis.Rows
	d := p.basis.Cols
	cent := getCenterBlock(reduceBlock * d)
	defer putCenterBlock(cent)
	for start := 0; start < len(blobs); start += reduceBlock {
		nb := min(reduceBlock, len(blobs)-start)
		for r := 0; r < nb; r++ {
			row := cent[r*d : (r+1)*d]
			src := blobs[start+r].DenseVec()
			for j, v := range src {
				row[j] = v - p.mean[j]
			}
		}
		for i := 0; i < k; i++ {
			brow := p.basis.Row(i)
			sc := p.scale[i]
			for r := 0; r < nb; r++ {
				dst[(start+r)*k+i] = mathx.Dot(brow, cent[r*d:(r+1)*d]) * sc
			}
		}
	}
}

// fhTable caches bucket/sign lookups for one (seed, outDims) hasher over
// dense inputs of some dimensionality: the batch kernel hashes each feature
// index once per batch instead of once per blob. Entries are exactly
// bucketSign's outputs, so table-driven accumulation is bit-identical to the
// scalar path.
type fhTable struct {
	seed    uint64
	outDims int
	dims    int
	bucket  []int32
	sign    []float64
}

var fhTablePool sync.Pool

// table returns a bucket/sign table covering dims indices, reusing a pooled
// one when it matches this hasher and is large enough.
func (f FeatureHash) table(dims int) *fhTable {
	t, ok := fhTablePool.Get().(*fhTable)
	if !ok {
		t = &fhTable{}
	}
	if t.seed == f.Seed && t.outDims == f.OutDims && t.dims >= dims {
		return t
	}
	if cap(t.bucket) < dims {
		t.bucket = make([]int32, dims)
		t.sign = make([]float64, dims)
	}
	t.bucket, t.sign = t.bucket[:dims], t.sign[:dims]
	t.seed, t.outDims, t.dims = f.Seed, f.OutDims, dims
	for j := 0; j < dims; j++ {
		b, s := f.bucketSign(j)
		t.bucket[j] = int32(b)
		t.sign[j] = s
	}
	return t
}

// ReduceBatch implements BatchReducer. Dense blobs accumulate through a
// cached bucket/sign table (one splitmix64 hash + modulo per feature index
// per batch, instead of per blob); sparse blobs hash their non-zeros exactly
// like the scalar path. Accumulation visits features in index order either
// way, so batch and scalar outputs are bit-identical.
func (f FeatureHash) ReduceBatch(blobs []blob.Blob, dst []float64) {
	m := f.OutDims
	clear(dst[:len(blobs)*m])
	var t *fhTable
	for i, b := range blobs {
		row := dst[i*m : (i+1)*m]
		if b.Sparse != nil {
			for k, j := range b.Sparse.Idx {
				bucket, sign := f.bucketSign(j)
				row[bucket] += sign * b.Sparse.Val[k]
			}
			continue
		}
		if t == nil || t.dims < len(b.Dense) {
			t = f.table(len(b.Dense))
		}
		// Reslicing to the row's length lets the compiler drop the
		// bucket/sign bounds checks inside the accumulation loop.
		bucket, sign := t.bucket[:len(b.Dense)], t.sign[:len(b.Dense)]
		for j, v := range b.Dense {
			if v == 0 {
				continue
			}
			row[bucket[j]] += sign[j] * v
		}
	}
	if t != nil {
		fhTablePool.Put(t)
	}
}
