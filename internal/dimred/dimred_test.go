package dimred

import (
	"math"
	"testing"
	"testing/quick"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

func TestIdentity(t *testing.T) {
	id := Identity{Dim: 3}
	b := blob.FromDense(0, mathx.Vec{1, 2, 3})
	out := id.Reduce(b)
	if len(out) != 3 || out[1] != 2 {
		t.Fatalf("Identity.Reduce = %v", out)
	}
	if id.OutDim() != 3 || id.Name() != "Raw" {
		t.Fatal("Identity metadata wrong")
	}
}

func TestIdentitySparse(t *testing.T) {
	id := Identity{Dim: 4}
	b := blob.FromSparse(0, mathx.NewSparse(4, []int{2}, []float64{5}))
	out := id.Reduce(b)
	if out[2] != 5 || out[0] != 0 {
		t.Fatalf("Identity sparse = %v", out)
	}
}

// TestPCARecoversDominantDirection: data varying along (1,1)/√2 with tiny
// noise must yield a first component aligned with that direction.
func TestPCARecoversDominantDirection(t *testing.T) {
	rng := mathx.NewRNG(1)
	var sample []blob.Blob
	for i := 0; i < 200; i++ {
		tt := rng.NormFloat64() * 10
		noise := rng.NormFloat64() * 0.01
		sample = append(sample, blob.FromDense(i, mathx.Vec{tt + noise, tt - noise}))
	}
	p, err := FitPCA(sample, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	dir := p.basis.Row(0)
	// Expect |dir| ≈ (±1/√2, ±1/√2).
	if math.Abs(math.Abs(dir[0])-1/math.Sqrt2) > 0.01 || math.Abs(math.Abs(dir[1])-1/math.Sqrt2) > 0.01 {
		t.Fatalf("first PC = %v, want ±(0.707, 0.707)", dir)
	}
}

func TestPCACentersData(t *testing.T) {
	rng := mathx.NewRNG(2)
	var sample []blob.Blob
	for i := 0; i < 100; i++ {
		sample = append(sample, blob.FromDense(i, mathx.Vec{100 + rng.NormFloat64(), 50 + rng.NormFloat64()}))
	}
	p, err := FitPCA(sample, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The mean blob should project near the origin.
	mean := blob.FromDense(0, mathx.CloneVec(p.mean))
	proj := p.Reduce(mean)
	for _, v := range proj {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("mean projects to %v, want 0", proj)
		}
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 1, mathx.NewRNG(1)); err == nil {
		t.Fatal("expected error for empty sample")
	}
	s := []blob.Blob{blob.FromDense(0, mathx.Vec{1})}
	if _, err := FitPCA(s, 0, mathx.NewRNG(1)); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestPCAOutDimAndCost(t *testing.T) {
	rng := mathx.NewRNG(3)
	var sample []blob.Blob
	for i := 0; i < 20; i++ {
		sample = append(sample, blob.FromDense(i, mathx.Vec{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}))
	}
	p, err := FitPCA(sample, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.OutDim() != 2 || p.Name() != "PCA" || p.Cost() <= 0 {
		t.Fatalf("PCA metadata wrong: dim=%d name=%s cost=%v", p.OutDim(), p.Name(), p.Cost())
	}
}

func TestFeatureHashDeterministic(t *testing.T) {
	f := NewFeatureHash(8, 42)
	b := blob.FromSparse(0, mathx.NewSparse(100, []int{3, 50, 99}, []float64{1, 2, 3}))
	a1 := f.Reduce(b)
	a2 := f.Reduce(b)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("FeatureHash not deterministic")
		}
	}
}

func TestFeatureHashPreservesMass(t *testing.T) {
	// Sum of |output| can only shrink via collisions; with a single non-zero
	// there are none, so magnitude is preserved exactly.
	f := NewFeatureHash(16, 7)
	b := blob.FromSparse(0, mathx.NewSparse(1000, []int{123}, []float64{2.5}))
	out := f.Reduce(b)
	sum := 0.0
	for _, v := range out {
		sum += math.Abs(v)
	}
	if sum != 2.5 {
		t.Fatalf("mass = %v, want 2.5", sum)
	}
}

func TestFeatureHashDenseSkipsZeros(t *testing.T) {
	f := NewFeatureHash(4, 1)
	dense := f.Reduce(blob.FromDense(0, mathx.Vec{0, 0, 3, 0}))
	sparse := f.Reduce(blob.FromSparse(0, mathx.NewSparse(4, []int{2}, []float64{3})))
	for i := range dense {
		if dense[i] != sparse[i] {
			t.Fatalf("dense %v != sparse %v", dense, sparse)
		}
	}
}

func TestFeatureHashPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFeatureHash(0, 1)
}

// Property: hashing is linear — Reduce(a+b) == Reduce(a)+Reduce(b) for
// sparse vectors over disjoint support unions (it is linear in general too).
func TestFeatureHashLinearQuick(t *testing.T) {
	f := NewFeatureHash(32, 99)
	prop := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		dim := 200
		mk := func() mathx.Vec {
			v := make(mathx.Vec, dim)
			for i := 0; i < 10; i++ {
				v[r.Intn(dim)] = r.NormFloat64()
			}
			return v
		}
		a, b := mk(), mk()
		sum := mathx.CloneVec(a)
		mathx.Axpy(1, b, sum)
		ra := f.Reduce(blob.FromDense(0, a))
		rb := f.Reduce(blob.FromDense(0, b))
		rsum := f.Reduce(blob.FromDense(0, sum))
		for i := range rsum {
			if math.Abs(rsum[i]-(ra[i]+rb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property from Weinberger et al.: the hashed inner product is an unbiased
// estimator of the original inner product. We check it is at least strongly
// correlated for random sparse vectors.
func TestFeatureHashInnerProductApprox(t *testing.T) {
	f := NewFeatureHash(512, 5)
	r := mathx.NewRNG(8)
	dim := 5000
	var errSum, magSum float64
	for trial := 0; trial < 50; trial++ {
		mk := func() mathx.Sparse {
			idx := make([]int, 20)
			val := make([]float64, 20)
			for i := range idx {
				idx[i] = r.Intn(dim)
				val[i] = r.NormFloat64()
			}
			return mathx.NewSparse(dim, idx, val)
		}
		a, b := mk(), mk()
		trueDot := mathx.Dot(a.Dense(), b.Dense())
		hashDot := mathx.Dot(f.Reduce(blob.FromSparse(0, a)), f.Reduce(blob.FromSparse(0, b)))
		errSum += math.Abs(trueDot - hashDot)
		magSum += math.Abs(trueDot) + 1
	}
	if errSum/magSum > 0.5 {
		t.Fatalf("hashed inner products too far off: rel err %v", errSum/magSum)
	}
}
