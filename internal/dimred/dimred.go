// Package dimred implements the dimension-reduction techniques ψ(·) from §5.4
// of the paper: identity (ψ(x)=x), principal component analysis, and feature
// hashing (Eq. 7). Reducers map raw blobs to the dense vectors consumed by
// the PP classifiers.
package dimred

import (
	"fmt"
	"math"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// Reducer maps a blob's raw features to a (usually lower-dimensional) dense
// vector.
type Reducer interface {
	// Reduce projects one blob.
	Reduce(b blob.Blob) mathx.Vec
	// OutDim is the dimensionality of Reduce's output.
	OutDim() int
	// Name is a short identifier used in approach labels ("PCA", "FH", ...).
	Name() string
	// Cost is the virtual per-blob cost of applying the reducer, in the
	// repository-wide cost units (see internal/engine).
	Cost() float64
}

// Virtual cost constants, in the repository-wide unit of one virtual
// millisecond (see internal/engine). They are calibrated so that typical PP
// reducer+classifier costs land near the per-row test latencies the paper
// measures in Table 5 (FH+SVM ≈ 1 ms, PCA+KDE ≈ 3 ms, DNN ≈ 10 ms).
const (
	pcaCostPerEntry = 5e-4 // per basis entry touched during projection
	fhCostPerBucket = 2e-4 // per output bucket
)

// Identity is the ψ(x)=x reducer for dense blobs of dimension Dim. Sparse
// blobs are materialized, so Identity should only be used when Dim is modest.
type Identity struct{ Dim int }

// Reduce implements Reducer.
func (id Identity) Reduce(b blob.Blob) mathx.Vec { return b.DenseVec() }

// OutDim implements Reducer.
func (id Identity) OutDim() int { return id.Dim }

// Name implements Reducer.
func (id Identity) Name() string { return "Raw" }

// Cost implements Reducer.
func (id Identity) Cost() float64 { return 0 }

// PCA projects blobs onto the top principal components of a training
// sample, whitened so each retained component has unit variance. Whitening
// keeps any single high-variance nuisance direction (e.g. global
// illumination) from dominating the Euclidean distances the KDE classifier
// relies on.
type PCA struct {
	mean  mathx.Vec
	basis *mathx.Mat // k×d, rows are principal directions
	scale mathx.Vec  // per-component 1/σ whitening factors
}

// FitPCA computes a k-component PCA basis from the dense representations of
// the blobs in sample. Computing the basis over a small sampled subset is the
// speed/quality trade-off the paper describes in §5.4; callers pass the
// sample they want. It returns an error if the sample is empty or k < 1.
func FitPCA(sample []blob.Blob, k int, rng *mathx.RNG) (*PCA, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("dimred: FitPCA requires a non-empty sample")
	}
	if k < 1 {
		return nil, fmt.Errorf("dimred: FitPCA requires k >= 1, got %d", k)
	}
	d := sample[0].Dim()
	mean := make(mathx.Vec, d)
	rows := make([]mathx.Vec, len(sample))
	for i, b := range sample {
		rows[i] = b.DenseVec()
		mathx.Axpy(1, rows[i], mean)
	}
	mathx.Scale(1/float64(len(sample)), mean)
	centered := make([]mathx.Vec, len(rows))
	for i, r := range rows {
		c := mathx.CloneVec(r)
		mathx.Axpy(-1, mean, c)
		centered[i] = c
	}
	// apply computes (1/n) Σ cᵢ (cᵢ·x): the covariance matrix applied to x
	// without materializing the d×d matrix.
	n := float64(len(centered))
	apply := func(x mathx.Vec) mathx.Vec {
		y := make(mathx.Vec, d)
		for _, c := range centered {
			mathx.Axpy(mathx.Dot(c, x)/n, c, y)
		}
		return y
	}
	basis, eig := mathx.TopEigen(d, k, 60, rng, apply)
	scale := make(mathx.Vec, basis.Rows)
	// Whiten with a relative eigenvalue floor: components are scaled to at
	// most unit variance, but near-noise components (σ far below the top
	// component's) are NOT amplified to unit scale — doing so would hand
	// pure noise the same weight as signal in the KDE's distances.
	sigmaMax := math.Sqrt(math.Max(eig[0], 1e-12))
	floor := 0.1 * sigmaMax
	for i := range scale {
		sigma := math.Sqrt(math.Max(eig[i], 1e-12))
		scale[i] = 1 / math.Max(sigma, floor)
	}
	return &PCA{mean: mean, basis: basis, scale: scale}, nil
}

// Reduce implements Reducer.
func (p *PCA) Reduce(b blob.Blob) mathx.Vec {
	x := mathx.CloneVec(b.DenseVec())
	mathx.Axpy(-1, p.mean, x)
	out := p.basis.MulVec(x)
	for i := range out {
		out[i] *= p.scale[i]
	}
	return out
}

// OutDim implements Reducer.
func (p *PCA) OutDim() int { return p.basis.Rows }

// Name implements Reducer.
func (p *PCA) Name() string { return "PCA" }

// Cost implements Reducer. Projection touches d·k entries.
func (p *PCA) Cost() float64 {
	return pcaCostPerEntry * float64(p.basis.Rows*p.basis.Cols)
}

// FeatureHash implements the two-hash feature hashing of Weinberger et al.
// (Eq. 7): h(j) maps each original index into one of OutDims buckets and
// η(j) ∈ {−1,+1} picks a sign. It requires no training and is well suited to
// sparse inputs; collisions degrade dense inputs (§5.4 usage note).
type FeatureHash struct {
	OutDims int
	Seed    uint64
}

// NewFeatureHash returns a hasher into outDims buckets. It panics if
// outDims < 1 because a hasher is a value type with no error channel.
func NewFeatureHash(outDims int, seed uint64) FeatureHash {
	if outDims < 1 {
		panic("dimred: FeatureHash requires outDims >= 1")
	}
	return FeatureHash{OutDims: outDims, Seed: seed}
}

// hash mixes the index with the seed (splitmix64 finalizer).
func (f FeatureHash) hash(j int) uint64 {
	z := uint64(j)*0x9e3779b97f4a7c15 + f.Seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// bucketSign returns h(j) and η(j).
func (f FeatureHash) bucketSign(j int) (int, float64) {
	h := f.hash(j)
	bucket := int(h % uint64(f.OutDims))
	sign := 1.0
	if (h>>32)&1 == 1 {
		sign = -1.0
	}
	return bucket, sign
}

// Reduce implements Reducer.
func (f FeatureHash) Reduce(b blob.Blob) mathx.Vec {
	out := make(mathx.Vec, f.OutDims)
	if b.Sparse != nil {
		for k, j := range b.Sparse.Idx {
			bucket, sign := f.bucketSign(j)
			out[bucket] += sign * b.Sparse.Val[k]
		}
		return out
	}
	for j, v := range b.Dense {
		if v == 0 {
			continue
		}
		bucket, sign := f.bucketSign(j)
		out[bucket] += sign * v
	}
	return out
}

// OutDim implements Reducer.
func (f FeatureHash) OutDim() int { return f.OutDims }

// Name implements Reducer.
func (f FeatureHash) Name() string { return "FH" }

// Cost implements Reducer. Hashing touches each non-zero once; we charge for
// the output width as a conservative proxy.
func (f FeatureHash) Cost() float64 { return fhCostPerBucket * float64(f.OutDims) }
