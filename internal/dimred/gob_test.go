package dimred

import (
	"bytes"
	"encoding/gob"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

func TestPCAGobRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(30)
	var sample []blob.Blob
	for i := 0; i < 100; i++ {
		sample = append(sample, blob.FromDense(i, mathx.Vec{
			rng.NormFloat64() * 3, rng.NormFloat64(), rng.NormFloat64() * 0.1,
		}))
	}
	p, err := FitPCA(sample, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	var loaded PCA
	if err := gob.NewDecoder(&buf).Decode(&loaded); err != nil {
		t.Fatal(err)
	}
	for _, b := range sample[:20] {
		want := p.Reduce(b)
		got := loaded.Reduce(b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("projection mismatch after round trip")
			}
		}
	}
	if loaded.OutDim() != p.OutDim() || loaded.Cost() != p.Cost() {
		t.Fatal("metadata mismatch")
	}
}

func TestPCAGobDecodeGarbage(t *testing.T) {
	var p PCA
	if err := p.GobDecode([]byte("nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestWhiteningFloorSuppressesNoiseComponents(t *testing.T) {
	// Data with one dominant direction and one near-noise direction: the
	// whitened projection must NOT amplify the noise component to the same
	// scale as the signal.
	rng := mathx.NewRNG(31)
	var sample []blob.Blob
	for i := 0; i < 400; i++ {
		sample = append(sample, blob.FromDense(i, mathx.Vec{
			rng.NormFloat64() * 10, rng.NormFloat64() * 0.01,
		}))
	}
	p, err := FitPCA(sample, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sig, noise float64
	for _, b := range sample {
		v := p.Reduce(b)
		sig += v[0] * v[0]
		noise += v[1] * v[1]
	}
	// Without the floor both variances would be ~1; with it the noise
	// component stays far smaller.
	if noise >= sig/10 {
		t.Fatalf("noise component not suppressed: sig=%v noise=%v", sig, noise)
	}
}
