package dimred

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"probpred/internal/mathx"
)

// pcaGob is the serialized form of a fitted PCA reducer.
type pcaGob struct {
	Mean  mathx.Vec
	Rows  int
	Cols  int
	Data  []float64
	Scale mathx.Vec
}

// GobEncode implements gob.GobEncoder.
func (p *PCA) GobEncode() ([]byte, error) {
	g := pcaGob{Mean: p.mean, Rows: p.basis.Rows, Cols: p.basis.Cols,
		Data: p.basis.Data, Scale: p.scale}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return nil, fmt.Errorf("dimred: encoding PCA: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (p *PCA) GobDecode(data []byte) error {
	var g pcaGob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return fmt.Errorf("dimred: decoding PCA: %w", err)
	}
	p.mean = g.Mean
	p.basis = &mathx.Mat{Rows: g.Rows, Cols: g.Cols, Data: g.Data}
	p.scale = g.Scale
	return nil
}
