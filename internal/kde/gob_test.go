package kde

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	xs, ys := ringData(200, 20)
	m, err := Train(xs, ys, Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	var loaded Model
	if err := gob.NewDecoder(&buf).Decode(&loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.Bandwidth() != m.Bandwidth() {
		t.Fatalf("bandwidth mismatch: %v vs %v", loaded.Bandwidth(), m.Bandwidth())
	}
	for _, x := range xs[:50] {
		if loaded.Score(x) != m.Score(x) {
			t.Fatal("score mismatch after gob round trip")
		}
	}
	if loaded.Cost() != m.Cost() {
		t.Fatal("cost mismatch")
	}
}

func TestGobDecodeGarbage(t *testing.T) {
	var m Model
	if err := m.GobDecode([]byte("garbage")); err == nil {
		t.Fatal("expected error")
	}
}

func TestSilvermanDegenerateData(t *testing.T) {
	// All-identical points: σ=0 must fall back to a usable bandwidth.
	xs := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	ys := []bool{true, true, true, false}
	m, err := Train(xs, ys, Config{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bandwidth() <= 0 {
		t.Fatalf("bandwidth = %v", m.Bandwidth())
	}
}
