package kde

import (
	"math"
	"testing"

	"probpred/internal/mathx"
)

// twoMoonsIsh generates non-linearly separable data: positives live on a
// ring of radius ~3, negatives in a blob at the origin. A linear classifier
// cannot separate them; density ratio can.
func ringData(n int, seed uint64) ([]mathx.Vec, []bool) {
	rng := mathx.NewRNG(seed)
	var xs []mathx.Vec
	var ys []bool
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			theta := rng.Float64() * 2 * math.Pi
			r := 3 + rng.NormFloat64()*0.2
			xs = append(xs, mathx.Vec{r * math.Cos(theta), r * math.Sin(theta)})
			ys = append(ys, true)
		} else {
			xs = append(xs, mathx.Vec{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
			ys = append(ys, false)
		}
	}
	return xs, ys
}

func TestTrainRingAccuracy(t *testing.T) {
	xs, ys := ringData(400, 1)
	m, err := Train(xs, ys, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	txs, tys := ringData(200, 3)
	correct := 0
	for i, x := range txs {
		if (m.Score(x) > 0) == tys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(txs)); acc < 0.95 {
		t.Fatalf("ring accuracy = %v, want >= 0.95 (KDE must handle non-linear data)", acc)
	}
}

func TestScoreSeparation(t *testing.T) {
	xs, ys := ringData(400, 4)
	m, err := Train(xs, ys, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	onRing := m.Score(mathx.Vec{3, 0})
	atCenter := m.Score(mathx.Vec{0, 0})
	if onRing <= atCenter {
		t.Fatalf("Score(ring)=%v <= Score(center)=%v", onRing, atCenter)
	}
}

func TestFixedBandwidth(t *testing.T) {
	xs, ys := ringData(100, 6)
	m, err := Train(xs, ys, Config{Bandwidth: 0.7, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bandwidth() != 0.7 {
		t.Fatalf("Bandwidth = %v, want 0.7", m.Bandwidth())
	}
}

func TestAutoBandwidthPositive(t *testing.T) {
	xs, ys := ringData(200, 8)
	m, err := Train(xs, ys, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bandwidth() <= 0 {
		t.Fatalf("auto bandwidth = %v", m.Bandwidth())
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("expected error for empty set")
	}
	if _, err := Train([]mathx.Vec{{1}}, []bool{true, false}, Config{}); err == nil {
		t.Fatal("expected error for mismatch")
	}
	if _, err := Train([]mathx.Vec{{1}, {2}}, []bool{false, false}, Config{}); err == nil {
		t.Fatal("expected error for single class")
	}
}

func TestClassImbalanceNormalization(t *testing.T) {
	// 10 positives at (5,5), 1000 negatives at (0,0): a point at (5,5) must
	// still score positive despite the heavy imbalance, because densities
	// are normalized per class.
	rng := mathx.NewRNG(10)
	var xs []mathx.Vec
	var ys []bool
	for i := 0; i < 10; i++ {
		xs = append(xs, mathx.Vec{5 + rng.NormFloat64()*0.1, 5 + rng.NormFloat64()*0.1})
		ys = append(ys, true)
	}
	for i := 0; i < 1000; i++ {
		xs = append(xs, mathx.Vec{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
		ys = append(ys, false)
	}
	m, err := Train(xs, ys, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score(mathx.Vec{5, 5}) <= 0 {
		t.Fatalf("Score at positive cluster = %v, want > 0", m.Score(mathx.Vec{5, 5}))
	}
	if m.Score(mathx.Vec{0, 0}) >= 0 {
		t.Fatalf("Score at negative cluster = %v, want < 0", m.Score(mathx.Vec{0, 0}))
	}
}

func TestDeterministicTraining(t *testing.T) {
	xs, ys := ringData(100, 12)
	m1, err := Train(xs, ys, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(xs, ys, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	probe := mathx.Vec{1.5, 1.5}
	if m1.Score(probe) != m2.Score(probe) {
		t.Fatal("KDE training not deterministic")
	}
}

func TestCostGrowsWithNeighbors(t *testing.T) {
	xs, ys := ringData(100, 14)
	small, err := Train(xs, ys, Config{Neighbors: 5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Train(xs, ys, Config{Neighbors: 50, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if big.Cost() <= small.Cost() {
		t.Fatal("cost should grow with n′")
	}
	if small.Name() != "KDE" {
		t.Fatal("bad name")
	}
}
