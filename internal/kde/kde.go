// Package kde implements the kernel-density-estimation PP classifier of
// §5.2: two class-conditional densities d+ and d− are estimated with a
// Gaussian kernel (Eq. 6) and the classifier scores f(ψ(x)) = d+/d− (Eq. 5).
//
// As the paper's usage note prescribes, test-time density evaluation is
// approximated by retrieving a neighbourhood of the query from a k-d tree
// instead of summing over the entire training set, giving O(n′ log d) cost
// per input (Table 2).
package kde

import (
	"fmt"
	"math"
	"sync"

	"probpred/internal/kdtree"
	"probpred/internal/mathx"
)

// Config controls training.
type Config struct {
	// Bandwidth fixes the kernel bandwidth h. Zero selects it automatically:
	// Silverman's rule of thumb [45] provides the initial value and a small
	// cross-validation sweep around it picks the final one (§5.2).
	Bandwidth float64
	// Neighbors is n′, the number of nearest neighbours per class used to
	// approximate each density at test time. Zero selects a default (25).
	Neighbors int
	// Seed seeds the internal cross-validation split.
	Seed uint64
}

func (c *Config) fill() {
	if c.Neighbors == 0 {
		c.Neighbors = 25
	}
}

// Model is a trained KDE classifier.
type Model struct {
	pos, neg  *kdtree.Tree
	h         float64
	neighbors int
	dim       int
	// scratch recycles KNN query buffers across Score calls. Scoring must be
	// safe for concurrent use (parallel engine chunks share one Model), so
	// buffers are pooled rather than owned outright. The zero pool is valid,
	// which keeps gob-decoded models working without a constructor.
	scratch sync.Pool
}

// getScratch returns a reusable KNN scratch, allocating only on pool misses.
func (m *Model) getScratch() *kdtree.Scratch {
	if s, ok := m.scratch.Get().(*kdtree.Scratch); ok {
		return s
	}
	return &kdtree.Scratch{}
}

// Train builds class-conditional density estimators from feature vectors xs
// and labels ys.
func Train(xs []mathx.Vec, ys []bool, cfg Config) (*Model, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("kde: %d examples but %d labels", len(xs), len(ys))
	}
	cfg.fill()
	var posPts, negPts []mathx.Vec
	for i, x := range xs {
		if ys[i] {
			posPts = append(posPts, x)
		} else {
			negPts = append(negPts, x)
		}
	}
	if len(posPts) == 0 || len(negPts) == 0 {
		return nil, fmt.Errorf("kde: training set has a single class (%d/%d positive)", len(posPts), len(xs))
	}
	dim := len(xs[0])
	m := &Model{neighbors: cfg.Neighbors, dim: dim}
	if cfg.Bandwidth > 0 {
		m.h = cfg.Bandwidth
		m.pos = kdtree.Build(posPts, nil)
		m.neg = kdtree.Build(negPts, nil)
		return m, nil
	}
	h0 := silverman(xs)
	// Cross-validate h over a small multiplicative grid: hold out 20% of
	// each class, fit on the rest, pick the h with best held-out accuracy.
	rng := mathx.NewRNG(cfg.Seed)
	trPos, vaPos := holdout(posPts, rng)
	trNeg, vaNeg := holdout(negPts, rng)
	bestH, bestAcc := h0, -1.0
	for _, mult := range []float64{0.5, 1, 2, 4} {
		h := h0 * mult
		cand := &Model{
			pos: kdtree.Build(trPos, nil), neg: kdtree.Build(trNeg, nil),
			h: h, neighbors: cfg.Neighbors, dim: dim,
		}
		correct := 0
		for _, x := range vaPos {
			if cand.Score(x) > 0 {
				correct++
			}
		}
		for _, x := range vaNeg {
			if cand.Score(x) <= 0 {
				correct++
			}
		}
		acc := float64(correct) / float64(len(vaPos)+len(vaNeg))
		if acc > bestAcc {
			bestAcc, bestH = acc, h
		}
	}
	m.h = bestH
	m.pos = kdtree.Build(posPts, nil)
	m.neg = kdtree.Build(negPts, nil)
	return m, nil
}

// holdout splits pts 80/20; it guarantees at least one point on each side
// when there are at least two points.
func holdout(pts []mathx.Vec, rng *mathx.RNG) (train, val []mathx.Vec) {
	if len(pts) < 2 {
		return pts, pts
	}
	perm := rng.Perm(len(pts))
	nVal := len(pts) / 5
	if nVal == 0 {
		nVal = 1
	}
	for i, p := range perm {
		if i < nVal {
			val = append(val, pts[p])
		} else {
			train = append(train, pts[p])
		}
	}
	return train, val
}

// silverman computes Silverman's rule-of-thumb bandwidth averaged across
// dimensions: h = 1.06 σ n^{-1/5}. One column buffer is reused across all d
// per-dimension deviation sweeps, so the whole estimate costs a single
// scratch allocation regardless of dimensionality.
func silverman(xs []mathx.Vec) float64 {
	n := len(xs)
	dim := len(xs[0])
	col := make([]float64, n)
	sigma := 0.0
	for j := 0; j < dim; j++ {
		for i, x := range xs {
			col[i] = x[j]
		}
		sigma += mathx.StdDev(col)
	}
	sigma /= float64(dim)
	if sigma == 0 {
		sigma = 1
	}
	return 1.06 * sigma * math.Pow(float64(n), -0.2)
}

// density estimates the class-conditional density of x from tree, using the
// n′ nearest neighbours and a Gaussian kernel of bandwidth h, normalized by
// the class size so that the d+/d− ratio accounts for class imbalance. The
// KNN query runs through the caller's scratch so steady-state scoring does
// not allocate.
func (m *Model) density(tree *kdtree.Tree, x mathx.Vec, s *kdtree.Scratch) float64 {
	k := m.neighbors
	if k > tree.Len() {
		k = tree.Len()
	}
	sum := 0.0
	for _, r := range tree.KNNInto(x, k, s) {
		sum += math.Exp(-r.SqDist / (2 * m.h * m.h))
	}
	return sum / float64(tree.Len())
}

// Score returns log(d+(x)/d−(x)) with additive smoothing; larger values mean
// the blob is more likely to satisfy the predicate. The log keeps scores on
// an additive scale so that threshold sweeps (Eq. 3) are well conditioned.
func (m *Model) Score(x mathx.Vec) float64 {
	s := m.getScratch()
	v := m.score(x, s)
	m.scratch.Put(s)
	return v
}

// score is Score over explicit scratch buffers.
func (m *Model) score(x mathx.Vec, s *kdtree.Scratch) float64 {
	const eps = 1e-12
	dp := m.density(m.pos, x, s)
	dn := m.density(m.neg, x, s)
	return math.Log(dp+eps) - math.Log(dn+eps)
}

// ScoreBatch scores the len(out) vectors stored row-major in xs (row i is
// xs[i*d:(i+1)*d]) into out, holding one KNN scratch across the whole batch
// instead of hitting the pool per row. Per-row arithmetic — neighbour
// retrieval order, kernel summation, smoothing — is exactly Score's, so the
// batch path is bit-identical to the scalar one (the invariant core.PP's
// batch fast path relies on). It implements core.BatchScorer.
func (m *Model) ScoreBatch(xs []float64, d int, out []float64) {
	s := m.getScratch()
	for i := range out {
		out[i] = m.score(xs[i*d:(i+1)*d], s)
	}
	m.scratch.Put(s)
}

// Name identifies the classifier family.
func (m *Model) Name() string { return "KDE" }

// Bandwidth exposes the selected kernel bandwidth (for tests and reports).
func (m *Model) Bandwidth() float64 { return m.h }

// Cost returns the virtual per-blob scoring cost in virtual milliseconds:
// two k-NN searches of n′ neighbours each, O(n′ log n) retrieval plus O(n′ d)
// kernel evaluation (Table 2). The constants put a PCA+KDE PP near the
// ~3 ms/row the paper measures (Table 5).
func (m *Model) Cost() float64 {
	n := float64(m.pos.Len() + m.neg.Len())
	logN := math.Log2(n + 2)
	return 1.0 + 1e-3*float64(m.neighbors)*(logN+float64(m.dim))
}
