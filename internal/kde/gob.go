package kde

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"probpred/internal/kdtree"
	"probpred/internal/mathx"
)

// kdeGob is the serialized form of a Model: the class-conditional point
// sets plus hyperparameters. The k-d trees are rebuilt on decode.
type kdeGob struct {
	Pos, Neg  []mathx.Vec
	H         float64
	Neighbors int
	Dim       int
}

// GobEncode implements gob.GobEncoder.
func (m *Model) GobEncode() ([]byte, error) {
	g := kdeGob{H: m.h, Neighbors: m.neighbors, Dim: m.dim}
	for i := 0; i < m.pos.Len(); i++ {
		g.Pos = append(g.Pos, m.pos.Point(i))
	}
	for i := 0; i < m.neg.Len(); i++ {
		g.Neg = append(g.Neg, m.neg.Point(i))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return nil, fmt.Errorf("kde: encoding model: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Model) GobDecode(data []byte) error {
	var g kdeGob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return fmt.Errorf("kde: decoding model: %w", err)
	}
	m.h = g.H
	m.neighbors = g.Neighbors
	m.dim = g.Dim
	m.pos = kdtree.Build(g.Pos, nil)
	m.neg = kdtree.Build(g.Neg, nil)
	return nil
}
