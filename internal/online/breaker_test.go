package online

import "testing"

// The shared breaker's full lifecycle: breaches accumulate while closed, the
// K-th consecutive failure trips, probation decides between closing and
// re-tripping with doubled backoff.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{K: 3, Backoff: 4, MaxBackoff: 16})
	if b.State() != BreakerClosed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}

	// Two failures breach; a pass resets the streak.
	if tr := b.Report(false, 0); tr != TransitionBreach {
		t.Fatalf("1st fail = %v, want breach", tr)
	}
	if tr := b.Report(false, 1); tr != TransitionBreach {
		t.Fatalf("2nd fail = %v, want breach", tr)
	}
	if tr := b.Report(true, 2); tr != TransitionNone {
		t.Fatalf("pass = %v, want none", tr)
	}
	if b.Fails() != 0 {
		t.Fatalf("fails after pass = %d, want 0", b.Fails())
	}

	// Three consecutive failures trip.
	b.Report(false, 3)
	b.Report(false, 4)
	if tr := b.Report(false, 5); tr != TransitionTrip {
		t.Fatalf("3rd consecutive fail = %v, want trip", tr)
	}
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state = %v trips = %d, want open/1", b.State(), b.Trips())
	}

	// Reports while open are ignored.
	if tr := b.Report(false, 6); tr != TransitionNone {
		t.Fatalf("report while open = %v, want none", tr)
	}
	if tr := b.Report(true, 6); tr != TransitionNone {
		t.Fatalf("pass while open = %v, want none", tr)
	}

	// Probation miss re-trips and doubles the backoff.
	b.Probation()
	if b.State() != BreakerProbation {
		t.Fatalf("state after Probation = %v", b.State())
	}
	if tr := b.Report(false, 7); tr != TransitionTrip {
		t.Fatalf("probation fail = %v, want trip", tr)
	}
	if b.backoff != 8 {
		t.Fatalf("backoff after probation re-trip = %d, want 8", b.backoff)
	}

	// Probation pass closes and resets backoff.
	b.Probation()
	if tr := b.Report(true, 8); tr != TransitionClose {
		t.Fatalf("probation pass = %v, want close", tr)
	}
	if b.State() != BreakerClosed || b.backoff != 4 {
		t.Fatalf("state = %v backoff = %d, want closed/4", b.State(), b.backoff)
	}
}

// Backoff doubles on each probation re-trip but never exceeds MaxBackoff.
func TestBreakerBackoffCap(t *testing.T) {
	b := NewBreaker(BreakerConfig{K: 1, Backoff: 4, MaxBackoff: 16})
	b.Report(false, 0) // trip
	for i := 0; i < 5; i++ {
		b.Probation()
		b.Report(false, 10*i)
	}
	if b.backoff != 16 {
		t.Fatalf("backoff = %d, want capped at 16", b.backoff)
	}
}

// Ready holds an open breaker for at least the backoff window, with a
// deterministic jitter of at most half the window; closed breakers are
// always ready.
func TestBreakerReadyWindow(t *testing.T) {
	b := NewBreaker(BreakerConfig{K: 1, Backoff: 8, JitterSeed: 42})
	if !b.Ready(0) {
		t.Fatal("closed breaker must be ready")
	}
	b.Report(false, 100) // trip at tick 100
	if b.Ready(100 + 7) {
		t.Fatal("ready before the base backoff elapsed")
	}
	if !b.Ready(100 + 8 + 4) {
		t.Fatal("not ready after backoff plus maximum jitter")
	}
	// Jitter is a pure function of seed and trip count: two breakers with the
	// same seed open at the same tick become ready at the same tick.
	c := NewBreaker(BreakerConfig{K: 1, Backoff: 8, JitterSeed: 42})
	c.Report(false, 100)
	for tick := 100; tick <= 113; tick++ {
		if b.Ready(tick) != c.Ready(tick) {
			t.Fatalf("same-seed breakers diverged at tick %d", tick)
		}
	}
}

// Probation is a no-op unless the breaker is open.
func TestBreakerProbationOnlyFromOpen(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	b.Probation()
	if b.State() != BreakerClosed {
		t.Fatalf("Probation on closed breaker moved state to %v", b.State())
	}
}

// Defaults fill in so a zero config is usable.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 2; i++ {
		if tr := b.Report(false, i); tr != TransitionBreach {
			t.Fatalf("fail %d = %v, want breach (default K=3)", i+1, tr)
		}
	}
	if tr := b.Report(false, 2); tr != TransitionTrip {
		t.Fatalf("3rd fail = %v, want trip with default K", tr)
	}
	if b.backoff != 4 {
		t.Fatalf("default backoff = %d, want 4", b.backoff)
	}
}

// Transition strings are stable — events and Analyze output embed them.
func TestTransitionString(t *testing.T) {
	want := map[Transition]string{
		TransitionNone:   "none",
		TransitionBreach: "breach",
		TransitionTrip:   "trip",
		TransitionClose:  "close",
	}
	for tr, s := range want {
		if tr.String() != s {
			t.Fatalf("Transition(%d).String() = %q, want %q", tr, tr.String(), s)
		}
	}
}
