package online

import (
	"testing"

	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/obs"
	"probpred/internal/query"
)

func eventNames(col *obs.Collector) map[string]int {
	out := map[string]int{}
	for _, ev := range col.Events() {
		out[ev.Name]++
	}
	return out
}

// TestOnlineEmitsTrainingAndWatchdogRecords: the whole circuit-breaker
// lifecycle — train, breach, trip, retrain, probation, close — must be
// visible through the tracer.
func TestOnlineEmitsTrainingAndWatchdogRecords(t *testing.T) {
	col := obs.NewCollector()
	cfg := Config{
		Clauses:   []string{"t=SUV"},
		MinLabels: 300,
		Train:     core.TrainConfig{Approach: "Raw+SVM"},
		Domains:   data.TrafficDomains(),
		Seed:      30,
		Watchdog:  WatchdogConfig{K: 3, FreshLabels: 200},
		Obs:       obs.New(col),
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := data.Traffic(data.TrafficConfig{Rows: 900, Seed: 31})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	// Initial training emitted a span and an event.
	trainSpans := 0
	for _, sp := range col.Spans() {
		if sp.Kind == obs.KindTrain && sp.Name == "t=SUV" {
			trainSpans++
			if sp.RowsIn == 0 {
				t.Fatal("train span carries no training-set size")
			}
		}
	}
	if trainSpans == 0 {
		t.Fatal("no train span after initial training")
	}
	if eventNames(col)["online.train"] == 0 {
		t.Fatal("no online.train event")
	}

	dec, err := s.Decide(query.MustParse("t=SUV"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("warm system should inject")
	}
	// Decide threads the tracer into the optimizer: an optimize span exists.
	optSpans := 0
	for _, sp := range col.Spans() {
		if sp.Kind == obs.KindOptimize {
			optSpans++
		}
	}
	if optSpans == 0 {
		t.Fatal("Decide emitted no optimize span")
	}

	// Three consecutive breaches trip the breaker.
	for i := 0; i < 3; i++ {
		s.ReportAccuracy(dec, 0.5, 0.95)
	}
	evs := eventNames(col)
	if evs["watchdog.breach"] != 3 {
		t.Fatalf("breach events = %d, want 3", evs["watchdog.breach"])
	}
	if evs["watchdog.trip"] != 1 {
		t.Fatalf("trip events = %d, want 1", evs["watchdog.trip"])
	}
	if col.Summary().Metrics["watchdog.trips"] != 1 {
		t.Fatalf("trips metric = %v", col.Summary().Metrics["watchdog.trips"])
	}

	// Fresh labels retrain the clause onto probation...
	fresh := data.Traffic(data.TrafficConfig{Rows: 400, Seed: 33})
	for _, b := range fresh {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Breaker("t=SUV") != BreakerProbation {
		t.Fatalf("breaker = %v after retraining", s.Breaker("t=SUV"))
	}
	if eventNames(col)["watchdog.probation"] != 1 {
		t.Fatalf("probation events = %d, want 1", eventNames(col)["watchdog.probation"])
	}

	// ...and a passing probation run closes it.
	dec2, err := s.Decide(query.MustParse("t=SUV"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	s.ReportAccuracy(dec2, 0.97, 0.95)
	if s.Breaker("t=SUV") != BreakerClosed {
		t.Fatalf("breaker = %v after passing probation", s.Breaker("t=SUV"))
	}
	if eventNames(col)["watchdog.close"] != 1 {
		t.Fatalf("close events = %d, want 1", eventNames(col)["watchdog.close"])
	}
}
