package online

// The consecutive-failure circuit breaker extracted from the accuracy
// watchdog, reusable by any component that must stop trusting a flaky
// dependency after repeated misses and retry it cautiously later. Two
// clients share it today: the watchdog (per-clause PP accuracy; probation is
// entered when a retrained PP comes back) and the adapt controller's replan
// guard (per-predicate; probation is entered after a jittered backoff
// measured in adaptive runs).
//
// The state machine is the watchdog's:
//
//	Closed --(K consecutive failures)--> Open
//	Open --(Probation(): retrained / backoff elapsed)--> Probation
//	Probation --(success)--> Closed
//	Probation --(failure)--> Open (backoff doubles, capped)
//
// Reports while Open are ignored (nothing is being risked). The breaker is
// not safe for concurrent use; callers hold their own locks (the watchdog is
// single-goroutine, the adapt controller serializes per-key access).

// BreakerConfig shapes one circuit breaker.
type BreakerConfig struct {
	// K is how many consecutive failures trip the breaker. Zero selects 3.
	K int
	// Backoff is the initial hold-open duration in caller-defined ticks
	// (adaptive runs, label counts, ...). Zero selects 4. Each re-trip from
	// probation doubles it up to MaxBackoff.
	Backoff int
	// MaxBackoff caps the exponential backoff. Zero selects 64.
	MaxBackoff int
	// JitterSeed seeds the deterministic jitter added to each backoff window
	// (up to half the window), de-synchronizing retries across breakers that
	// trip together. The jitter is a pure function of seed and trip count, so
	// runs are reproducible.
	JitterSeed uint64
}

func (c *BreakerConfig) fill() {
	if c.K == 0 {
		c.K = 3
	}
	if c.Backoff == 0 {
		c.Backoff = 4
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 64
	}
}

// Transition is what one Report did to the breaker's state.
type Transition int

const (
	// TransitionNone: nothing changed (a pass while closed, or any report
	// while open).
	TransitionNone Transition = iota
	// TransitionBreach: a failure counted toward K while closed.
	TransitionBreach
	// TransitionTrip: the breaker opened (K-th consecutive failure while
	// closed, or any failure during probation).
	TransitionTrip
	// TransitionClose: a probation success closed the breaker.
	TransitionClose
)

// String renders the transition for events and tests.
func (t Transition) String() string {
	switch t {
	case TransitionBreach:
		return "breach"
	case TransitionTrip:
		return "trip"
	case TransitionClose:
		return "close"
	default:
		return "none"
	}
}

// Breaker is one circuit: see the package-level state diagram.
type Breaker struct {
	cfg   BreakerConfig
	state BreakerState
	// fails counts consecutive failures while closed.
	fails int
	// trips counts lifetime trips (drives backoff doubling and jitter).
	trips int
	// trippedAt is the caller-supplied tick of the last trip.
	trippedAt int
	// backoff is the current hold-open window in ticks.
	backoff int
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fill()
	return &Breaker{cfg: cfg, backoff: cfg.Backoff}
}

// State returns the current circuit state.
func (b *Breaker) State() BreakerState { return b.state }

// Fails returns the consecutive-failure count while closed.
func (b *Breaker) Fails() int { return b.fails }

// Trips returns how many times the breaker has tripped.
func (b *Breaker) Trips() int { return b.trips }

// Report feeds one success/failure observation and returns the transition it
// caused. tick is the caller's monotonic clock (used to stamp trips for
// Ready); callers without a clock pass 0 and drive probation explicitly.
func (b *Breaker) Report(ok bool, tick int) Transition {
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
			return TransitionNone
		}
		b.fails++
		if b.fails >= b.cfg.K {
			b.trip(tick)
			return TransitionTrip
		}
		return TransitionBreach
	case BreakerProbation:
		if ok {
			b.state = BreakerClosed
			b.fails = 0
			b.backoff = b.cfg.Backoff
			return TransitionClose
		}
		b.trip(tick)
		// Re-tripping from probation doubles the backoff: the retry was
		// premature, so the next one waits longer.
		b.backoff *= 2
		if b.backoff > b.cfg.MaxBackoff {
			b.backoff = b.cfg.MaxBackoff
		}
		return TransitionTrip
	default: // BreakerOpen: nothing is being risked, reports carry no signal.
		return TransitionNone
	}
}

func (b *Breaker) trip(tick int) {
	b.state = BreakerOpen
	b.fails = 0
	b.trips++
	b.trippedAt = tick
}

// Ready reports whether an open breaker's jittered backoff window has
// elapsed at the given tick — i.e. whether the caller may move it to
// probation and risk one retry. Closed and probation breakers are always
// "ready" (there is nothing to wait for).
func (b *Breaker) Ready(tick int) bool {
	if b.state != BreakerOpen {
		return true
	}
	return tick >= b.trippedAt+b.backoff+b.jitter()
}

// jitter derives a deterministic 0..backoff/2 offset from the seed and trip
// count (splitmix64 finalizer), so concurrent breakers de-synchronize while
// individual runs stay reproducible.
func (b *Breaker) jitter() int {
	half := b.backoff / 2
	if half <= 0 {
		return 0
	}
	z := b.cfg.JitterSeed ^ (uint64(b.trips) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(half+1))
}

// Probation moves an open breaker to probation: the guarded operation may be
// risked once, and the next Report decides between closing and re-tripping.
// The watchdog calls this when a retrained PP re-enters; the adapt controller
// calls it when Ready reports the backoff elapsed. No-op unless open.
func (b *Breaker) Probation() {
	if b.state == BreakerOpen {
		b.state = BreakerProbation
	}
}
