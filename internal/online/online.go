// Package online implements the paper's online context (§4, Figure 3b): at
// cold start no PP is available, so query plans run unmodified but their UDF
// outputs label the raw blobs for the relevant simple clauses; periodically,
// once enough labeled input accumulates, PPs are (re)trained and subsequent
// runs of the queries use plans containing them. Runtime observations feed
// the A.5 dependence fix.
package online

import (
	"fmt"
	"sort"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/mathx"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// Config shapes the online system.
type Config struct {
	// Clauses lists the simple clauses to maintain PPs for (inferred from
	// historical queries in a batch system; declared here).
	Clauses []string
	// MinLabels is how many labeled blobs a clause needs before its first
	// training. Zero selects 500.
	MinLabels int
	// RetrainEvery retrains a clause's PP after this many new labels
	// beyond the last training. Zero selects 2000.
	RetrainEvery int
	// BufferCap bounds the per-clause label buffer (oldest labels are
	// evicted first, so retraining follows the stream). Zero selects 4000.
	BufferCap int
	// Train passes through PP construction settings.
	Train core.TrainConfig
	// Domains feeds the optimizer's wrangler.
	Domains map[string][]query.Value
	// Seed drives splits.
	Seed uint64
}

func (c *Config) fill() {
	if c.MinLabels == 0 {
		c.MinLabels = 500
	}
	if c.RetrainEvery == 0 {
		c.RetrainEvery = 2000
	}
	if c.BufferCap == 0 {
		c.BufferCap = 4000
	}
}

// clauseState tracks one clause's label buffer and training status.
type clauseState struct {
	pred           query.Pred
	blobs          []blob.Blob
	labels         []bool
	sinceLastTrain int
	trained        bool
}

// System is the online PP manager.
type System struct {
	cfg     Config
	corpus  *optimizer.Corpus
	opt     *optimizer.Optimizer
	clauses map[string]*clauseState
	order   []string
	rng     *mathx.RNG
	// Trainings counts PP (re)trainings performed, for tests and reports.
	Trainings int
}

// New builds the system; it validates that every clause parses as a simple
// clause.
func New(cfg Config) (*System, error) {
	cfg.fill()
	if len(cfg.Clauses) == 0 {
		return nil, fmt.Errorf("online: no clauses configured")
	}
	corpus := optimizer.NewCorpus()
	s := &System{
		cfg:     cfg,
		corpus:  corpus,
		opt:     optimizer.New(corpus),
		clauses: map[string]*clauseState{},
		rng:     mathx.NewRNG(cfg.Seed ^ 0x0a11e),
	}
	for _, c := range cfg.Clauses {
		p, err := query.Parse(c)
		if err != nil {
			return nil, fmt.Errorf("online: clause %q: %w", c, err)
		}
		if _, ok := p.(*query.Clause); !ok {
			return nil, fmt.Errorf("online: %q is not a simple clause", c)
		}
		s.clauses[c] = &clauseState{pred: p}
		s.order = append(s.order, c)
	}
	sort.Strings(s.order)
	return s, nil
}

// Observe records one blob whose relevant columns were materialized by the
// unmodified query plan (the "query plans output labeled inputs for relevant
// clauses" arrow of Figure 3b). Clauses whose columns are absent from the
// lookup are skipped — a query only labels the clauses it computes.
func (s *System) Observe(b blob.Blob, l query.Lookup) error {
	for _, key := range s.order {
		st := s.clauses[key]
		ok, err := st.pred.Eval(l)
		if err != nil {
			continue // this query did not materialize the clause's column
		}
		if len(st.blobs) >= s.cfg.BufferCap {
			st.blobs = st.blobs[1:]
			st.labels = st.labels[1:]
		}
		st.blobs = append(st.blobs, b)
		st.labels = append(st.labels, ok)
		st.sinceLastTrain++
		if err := s.maybeTrain(key, st); err != nil {
			return err
		}
	}
	return nil
}

// maybeTrain (re)trains a clause's PP when enough labels accumulated.
func (s *System) maybeTrain(key string, st *clauseState) error {
	ready := (!st.trained && len(st.blobs) >= s.cfg.MinLabels) ||
		(st.trained && st.sinceLastTrain >= s.cfg.RetrainEvery)
	if !ready {
		return nil
	}
	set := blob.Set{Blobs: st.blobs, Labels: st.labels}
	// Both classes must be present; otherwise wait for more data.
	if p := set.Positives(); p == 0 || p == set.Len() {
		return nil
	}
	train, val, _ := set.Split(s.rng.Split(), 0.8, 0.2)
	if val.Positives() == 0 {
		return nil // validation must see positives to calibrate thresholds
	}
	cfg := s.cfg.Train
	cfg.Seed ^= uint64(s.Trainings+1) * 0x9e37
	pp, err := core.Train(key, train, val, cfg)
	if err != nil {
		return fmt.Errorf("online: training %q: %w", key, err)
	}
	s.corpus.Add(pp)
	st.trained = true
	st.sinceLastTrain = 0
	s.Trainings++
	return nil
}

// TrainedClauses returns the clauses with a live PP.
func (s *System) TrainedClauses() []string {
	var out []string
	for _, key := range s.order {
		if s.clauses[key].trained {
			out = append(out, key)
		}
	}
	return out
}

// Decide optimizes a query predicate against the current corpus. During
// cold start the decision simply does not inject.
func (s *System) Decide(pred query.Pred, accuracy, udfCost float64) (*optimizer.Decision, error) {
	return s.opt.Optimize(pred, optimizer.Options{
		Accuracy: accuracy,
		UDFCost:  udfCost,
		Domains:  s.cfg.Domains,
	})
}

// ReportRun feeds the observed reduction of an executed decision back into
// the optimizer's dependence tracking (A.5).
func (s *System) ReportRun(dec *optimizer.Decision, observedReduction float64) {
	s.opt.ObserveRuntime(dec, observedReduction)
}

// Corpus exposes the live corpus (e.g. for persistence).
func (s *System) Corpus() *optimizer.Corpus { return s.corpus }
