// Package online implements the paper's online context (§4, Figure 3b): at
// cold start no PP is available, so query plans run unmodified but their UDF
// outputs label the raw blobs for the relevant simple clauses; periodically,
// once enough labeled input accumulates, PPs are (re)trained and subsequent
// runs of the queries use plans containing them. Runtime observations feed
// the A.5 dependence fix.
//
// # Accuracy watchdog
//
// The same observed-vs-estimated feedback channel drives a per-clause
// accuracy watchdog: after executing an injected plan, callers report the
// realized accuracy (the fraction of the reference output the PP retained)
// against the target they asked for. K consecutive below-target reports trip
// a circuit breaker for every PP in that decision — the PP leaves the corpus,
// so subsequent Decide calls fall back to the unmodified NoP plan (which is
// always correct: PPs only ever remove work, never results), and the clause
// is queued for retraining on fresh labels. Once retrained, the PP re-enters
// on probation: the next report either closes the breaker or trips it again.
//
//	dec, _ := sys.Decide(pred, 0.95, udfCost)
//	// ... execute; measure observed accuracy vs the reference output ...
//	sys.ReportAccuracy(dec, observed, 0.95)
//	if sys.Breaker("t=SUV") == online.BreakerOpen {
//	    // the system is running this clause's queries unmodified and
//	    // collecting fresh labels until a retrained PP passes probation
//	}
package online

import (
	"fmt"
	"sort"
	"strconv"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// Config shapes the online system.
type Config struct {
	// Clauses lists the simple clauses to maintain PPs for (inferred from
	// historical queries in a batch system; declared here).
	Clauses []string
	// MinLabels is how many labeled blobs a clause needs before its first
	// training. Zero selects 500.
	MinLabels int
	// RetrainEvery retrains a clause's PP after this many new labels
	// beyond the last training. Zero selects 2000.
	RetrainEvery int
	// BufferCap bounds the per-clause label buffer (oldest labels are
	// evicted first, so retraining follows the stream). Zero selects 4000.
	BufferCap int
	// Train passes through PP construction settings.
	Train core.TrainConfig
	// WarmStart makes every scheduled retraining start from the clause's
	// previous PP (core.TrainConfig.Warm): the feature space is frozen and
	// SVM weights carry over, so per-segment incremental training fine-tunes
	// instead of relearning. Watchdog-triggered retrainings always start
	// cold — the carried-over model is the one that just breached.
	WarmStart bool
	// Domains feeds the optimizer's wrangler.
	Domains map[string][]query.Value
	// Seed drives splits.
	Seed uint64
	// Watchdog shapes the accuracy circuit breaker.
	Watchdog WatchdogConfig
	// Obs receives KindTrain spans for every (re)training plus watchdog
	// state-transition events (online.train, watchdog.trip,
	// watchdog.probation, watchdog.close, watchdog.breach). Nil disables
	// tracing.
	Obs *obs.Tracer
	// Metrics receives numeric telemetry: per-clause training and watchdog
	// state-transition counters, plus the optimizer's search/drift metrics
	// (the registry is forwarded to the embedded optimizer). Nil disables.
	Metrics *metrics.Registry
}

// WatchdogConfig shapes the per-clause accuracy circuit breaker.
type WatchdogConfig struct {
	// K is how many consecutive below-target accuracy reports trip a
	// clause's breaker. Zero selects 3.
	K int
	// Margin is the absolute accuracy slack tolerated below the target
	// before a report counts as a breach (observed >= target-Margin
	// passes). Zero means the target is enforced exactly.
	Margin float64
	// FreshLabels is how many labels a tripped clause must collect before
	// its retraining runs — retraining on the very buffer that produced the
	// bad PP would reproduce it. Zero selects MinLabels/4 (at least 1).
	FreshLabels int
}

func (c *Config) fill() {
	if c.MinLabels == 0 {
		c.MinLabels = 500
	}
	if c.RetrainEvery == 0 {
		c.RetrainEvery = 2000
	}
	if c.BufferCap == 0 {
		c.BufferCap = 4000
	}
	if c.Watchdog.K == 0 {
		c.Watchdog.K = 3
	}
	if c.Watchdog.FreshLabels == 0 {
		c.Watchdog.FreshLabels = c.MinLabels / 4
		if c.Watchdog.FreshLabels < 1 {
			c.Watchdog.FreshLabels = 1
		}
	}
}

// BreakerState is the accuracy watchdog's per-clause circuit state.
type BreakerState int

const (
	// BreakerClosed: the clause's PP (if trained) serves decisions normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the watchdog tripped; the PP is out of the corpus,
	// queries fall back to the unmodified NoP plan, and the clause is
	// collecting fresh labels for retraining.
	BreakerOpen
	// BreakerProbation: a retrained PP is live again; the next accuracy
	// report either closes the breaker or trips it again.
	BreakerProbation
)

// String renders the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerProbation:
		return "probation"
	default:
		return "closed"
	}
}

// clauseState tracks one clause's label buffer, training status and
// watchdog circuit.
type clauseState struct {
	pred           query.Pred
	blobs          []blob.Blob
	labels         []bool
	sinceLastTrain int
	trained        bool
	// lastPP is the most recent PP trained for the clause, kept as the warm
	// start of the next scheduled retraining (nil after a watchdog trip:
	// retraining must not fine-tune the model that breached).
	lastPP *core.PP
	// cb is the clause's accuracy circuit (the shared Breaker state machine);
	// the watchdog maps its transitions to corpus side effects.
	cb *Breaker
}

// System is the online PP manager.
type System struct {
	cfg     Config
	corpus  *optimizer.Corpus
	opt     *optimizer.Optimizer
	clauses map[string]*clauseState
	order   []string
	rng     *mathx.RNG
	// Trainings counts PP (re)trainings performed, for tests and reports.
	Trainings int
	// Trips counts watchdog circuit-breaker trips.
	Trips int
}

// New builds the system; it validates that every clause parses as a simple
// clause.
func New(cfg Config) (*System, error) {
	cfg.fill()
	if len(cfg.Clauses) == 0 {
		return nil, fmt.Errorf("online: no clauses configured")
	}
	corpus := optimizer.NewCorpus()
	s := &System{
		cfg:     cfg,
		corpus:  corpus,
		opt:     optimizer.New(corpus),
		clauses: map[string]*clauseState{},
		rng:     mathx.NewRNG(cfg.Seed ^ 0x0a11e),
	}
	s.opt.SetMetrics(cfg.Metrics)
	s.opt.SetObs(cfg.Obs)
	for _, c := range cfg.Clauses {
		p, err := query.Parse(c)
		if err != nil {
			return nil, fmt.Errorf("online: clause %q: %w", c, err)
		}
		if _, ok := p.(*query.Clause); !ok {
			return nil, fmt.Errorf("online: %q is not a simple clause", c)
		}
		s.clauses[c] = &clauseState{pred: p, cb: NewBreaker(BreakerConfig{
			K:          cfg.Watchdog.K,
			JitterSeed: cfg.Seed ^ hashClause(c),
		})}
		s.order = append(s.order, c)
	}
	sort.Strings(s.order)
	return s, nil
}

// Observe records one blob whose relevant columns were materialized by the
// unmodified query plan (the "query plans output labeled inputs for relevant
// clauses" arrow of Figure 3b). Clauses whose columns are absent from the
// lookup are skipped — a query only labels the clauses it computes.
func (s *System) Observe(b blob.Blob, l query.Lookup) error {
	for _, key := range s.order {
		st := s.clauses[key]
		ok, err := st.pred.Eval(l)
		if err != nil {
			continue // this query did not materialize the clause's column
		}
		if len(st.blobs) >= s.cfg.BufferCap {
			st.blobs = st.blobs[1:]
			st.labels = st.labels[1:]
		}
		st.blobs = append(st.blobs, b)
		st.labels = append(st.labels, ok)
		st.sinceLastTrain++
		if err := s.maybeTrain(key, st); err != nil {
			return err
		}
	}
	return nil
}

// hashClause derives a per-clause jitter seed (FNV-1a).
func hashClause(c string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(c); i++ {
		h ^= uint64(c[i])
		h *= 1099511628211
	}
	return h
}

// maybeTrain (re)trains a clause's PP when enough labels accumulated. A
// clause whose breaker tripped retrains as soon as it has collected enough
// fresh labels, then re-enters on probation.
func (s *System) maybeTrain(key string, st *clauseState) error {
	var ready bool
	switch {
	case st.cb.State() == BreakerOpen:
		ready = st.sinceLastTrain >= s.cfg.Watchdog.FreshLabels
	case !st.trained:
		ready = len(st.blobs) >= s.cfg.MinLabels
	default:
		ready = st.sinceLastTrain >= s.cfg.RetrainEvery
	}
	if !ready {
		return nil
	}
	set := blob.Set{Blobs: st.blobs, Labels: st.labels}
	// Both classes must be present; otherwise wait for more data.
	if p := set.Positives(); p == 0 || p == set.Len() {
		return nil
	}
	train, val, _ := set.Split(s.rng.Split(), 0.8, 0.2)
	if val.Positives() == 0 {
		return nil // validation must see positives to calibrate thresholds
	}
	cfg := s.cfg.Train
	cfg.Seed ^= uint64(s.Trainings+1) * 0x9e37
	if s.cfg.WarmStart {
		cfg.Warm = st.lastPP
	}
	// Trainings are label-stream-driven, not session-driven, so each gets
	// its own root trace: the train span and its follow-up events self-join.
	var tctx obs.TraceContext
	if s.cfg.Obs.Enabled() {
		tctx = obs.TraceContext{TraceID: obs.NewTraceID()}
	}
	sp := s.cfg.Obs.BeginCtx(tctx, obs.KindTrain, key)
	pp, err := core.Train(key, train, val, cfg)
	if err != nil {
		sp.SetAttr("error", err.Error())
		s.cfg.Obs.End(&sp)
		return fmt.Errorf("online: training %q: %w", key, err)
	}
	sp.RowsIn = train.Len()
	sp.SetAttr("approach", pp.Approach)
	sp.SetAttr("retrain", strconv.FormatBool(st.cb.State() == BreakerOpen))
	s.cfg.Obs.End(&sp)
	s.cfg.Obs.EventCtx(tctx, "online.train", obs.Attr{Key: "clause", Value: key},
		obs.Attr{Key: "labels", Value: strconv.Itoa(len(st.labels))})
	s.corpus.Add(pp)
	st.trained = true
	st.lastPP = pp
	st.sinceLastTrain = 0
	s.Trainings++
	if reg := s.cfg.Metrics; reg != nil {
		reg.Counter("online_trainings_total", "PP (re)trainings performed by the online loop.",
			metrics.L("clause", key)).Inc()
	}
	if st.cb.State() == BreakerOpen {
		st.cb.Probation()
		s.cfg.Obs.EventCtx(tctx, "watchdog.probation", obs.Attr{Key: "clause", Value: key})
		if reg := s.cfg.Metrics; reg != nil {
			reg.Counter("watchdog_probations_total", "Retrained PPs re-entering service on probation.",
				metrics.L("clause", key)).Inc()
		}
	}
	return nil
}

// TrainedClauses returns the clauses with a live PP.
func (s *System) TrainedClauses() []string {
	var out []string
	for _, key := range s.order {
		if s.clauses[key].trained {
			out = append(out, key)
		}
	}
	return out
}

// Decide optimizes a query predicate against the current corpus. During
// cold start the decision simply does not inject.
func (s *System) Decide(pred query.Pred, accuracy, udfCost float64) (*optimizer.Decision, error) {
	return s.DecideCtx(pred, accuracy, udfCost, obs.TraceContext{})
}

// DecideCtx is Decide carrying the deciding session's trace context, so the
// plan-search span joins the session's trace.
func (s *System) DecideCtx(pred query.Pred, accuracy, udfCost float64, ctx obs.TraceContext) (*optimizer.Decision, error) {
	return s.opt.Optimize(pred, optimizer.Options{
		Accuracy: accuracy,
		UDFCost:  udfCost,
		Domains:  s.cfg.Domains,
		Obs:      s.cfg.Obs,
		Trace:    ctx,
	})
}

// ReportRun feeds the observed reduction of an executed decision back into
// the optimizer's dependence tracking (A.5).
func (s *System) ReportRun(dec *optimizer.Decision, observedReduction float64) {
	s.opt.ObserveRuntime(dec, observedReduction)
}

// ReportRunCtx is ReportRun with the observing session's trace context
// (misestimation events carry the session's TraceID).
func (s *System) ReportRunCtx(dec *optimizer.Decision, observedReduction float64, ctx obs.TraceContext) {
	s.opt.ObserveRuntimeCtx(dec, observedReduction, ctx)
}

// ReportAccuracy feeds the realized accuracy of an executed injected
// decision (the fraction of the reference output retained) to the watchdog.
// Decision-level accuracy cannot be attributed to a single PP, so — like
// A.5's dependence flagging — every PP leaf of the decision is charged
// conservatively. K consecutive breaches trip a clause's breaker: its PP
// leaves the corpus (queries fall back to the unmodified, always-correct NoP
// plan) and the clause retrains on fresh labels before re-entering on
// probation.
func (s *System) ReportAccuracy(dec *optimizer.Decision, observed, target float64) {
	s.ReportAccuracyCtx(dec, observed, target, obs.TraceContext{})
}

// ReportAccuracyCtx is ReportAccuracy with the reporting session's trace
// context: watchdog breach/trip/close events carry the session's TraceID, so
// the query that pushed a clause over the edge is identifiable.
func (s *System) ReportAccuracyCtx(dec *optimizer.Decision, observed, target float64, ctx obs.TraceContext) {
	if dec == nil || !dec.Inject {
		return
	}
	pass := observed >= target-s.cfg.Watchdog.Margin
	for _, leaf := range dec.LeafClauses() {
		key, st := s.resolveClause(leaf)
		if st == nil {
			continue // a PP this system does not manage (e.g. preloaded corpus)
		}
		s.reportClause(ctx, key, st, pass)
	}
}

// resolveClause maps a decision leaf to the managed clause it trains under:
// a direct match, or the base clause of a negation-derived PP (§5.6: the
// classifier is shared, so the base clause is what retrains).
func (s *System) resolveClause(leaf string) (string, *clauseState) {
	if st, ok := s.clauses[leaf]; ok {
		return leaf, st
	}
	p, err := query.Parse(leaf)
	if err != nil {
		return "", nil
	}
	cl, ok := p.(*query.Clause)
	if !ok {
		return "", nil
	}
	base := cl.Negate().String()
	if st, ok := s.clauses[base]; ok {
		return base, st
	}
	return "", nil
}

// reportClause advances one clause's breaker state machine, mapping the
// shared Breaker's transitions to the watchdog's side effects.
func (s *System) reportClause(ctx obs.TraceContext, key string, st *clauseState, pass bool) {
	wasClosed, prevFails := st.cb.State() == BreakerClosed, st.cb.Fails()
	breach := func() {
		s.cfg.Obs.EventCtx(ctx, "watchdog.breach", obs.Attr{Key: "clause", Value: key},
			obs.Attr{Key: "consecutive", Value: strconv.Itoa(prevFails + 1)})
		if reg := s.cfg.Metrics; reg != nil {
			reg.Counter("watchdog_breaches_total", "Below-target accuracy reports while the breaker was closed.",
				metrics.L("clause", key)).Inc()
		}
	}
	switch st.cb.Report(pass, 0) {
	case TransitionBreach:
		breach()
	case TransitionTrip:
		// The K-th consecutive miss while closed is both the final breach and
		// the trip; keep the consecutive-miss telemetry complete. A probation
		// miss trips directly without breaching.
		if wasClosed {
			breach()
		}
		s.trip(ctx, key, st)
	case TransitionClose:
		s.cfg.Obs.EventCtx(ctx, "watchdog.close", obs.Attr{Key: "clause", Value: key})
		if reg := s.cfg.Metrics; reg != nil {
			reg.Counter("watchdog_closes_total", "Breakers closed after a passing probation report.",
				metrics.L("clause", key)).Inc()
		}
	}
}

// trip reacts to a clause's breaker opening: the PP leaves the corpus so
// decisions fall back to the NoP plan, and the clause queues for retraining
// on fresh labels. (The K-th breach also emits a breach event first so the
// consecutive-miss telemetry stays complete.)
func (s *System) trip(ctx obs.TraceContext, key string, st *clauseState) {
	st.trained = false
	st.lastPP = nil // the breaching model must not seed the retraining
	st.sinceLastTrain = 0
	s.corpus.Remove(key)
	s.Trips++
	s.cfg.Obs.EventCtx(ctx, "watchdog.trip", obs.Attr{Key: "clause", Value: key},
		obs.Attr{Key: "trips_total", Value: strconv.Itoa(s.Trips)})
	s.cfg.Obs.Metric("watchdog.trips", 1)
	if reg := s.cfg.Metrics; reg != nil {
		reg.Counter("watchdog_trips_total", "Accuracy circuit-breaker trips.",
			metrics.L("clause", key)).Inc()
	}
}

// Breaker returns a clause's watchdog state (BreakerClosed for clauses this
// system does not manage).
func (s *System) Breaker(clause string) BreakerState {
	if st, ok := s.clauses[clause]; ok {
		return st.cb.State()
	}
	return BreakerClosed
}

// TrippedClauses returns the clauses whose breaker is currently open.
func (s *System) TrippedClauses() []string {
	var out []string
	for _, key := range s.order {
		if s.clauses[key].cb.State() == BreakerOpen {
			out = append(out, key)
		}
	}
	return out
}

// Corpus exposes the live corpus (e.g. for persistence).
func (s *System) Corpus() *optimizer.Corpus { return s.corpus }
