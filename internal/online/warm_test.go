package online

// Warm-start plumbing: scheduled retrainings carry the previous PP forward
// as the next training's warm start; a watchdog trip severs the chain (the
// breaching model must never seed its own replacement).

import (
	"testing"

	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/query"
)

func newWarmSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(Config{
		Clauses:      []string{"s>60"},
		MinLabels:    300,
		RetrainEvery: 300,
		BufferCap:    600,
		Train:        core.TrainConfig{Approach: "Raw+SVM"},
		WarmStart:    true,
		Domains:      data.TrafficDomains(),
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWarmStartCarriesLastPP(t *testing.T) {
	s := newWarmSystem(t)
	stream := data.Traffic(data.TrafficConfig{Rows: 1000, Seed: 3})
	for _, b := range stream[:400] {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.clauses["s>60"]
	if s.Trainings != 1 || st.lastPP == nil {
		t.Fatalf("after first training: Trainings=%d lastPP=%v", s.Trainings, st.lastPP)
	}
	first := st.lastPP
	for _, b := range stream[400:800] {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Trainings < 2 {
		t.Fatalf("Trainings = %d, want a scheduled retraining", s.Trainings)
	}
	if st.lastPP == nil || st.lastPP == first {
		t.Fatal("scheduled retraining did not refresh lastPP")
	}
	// The retrained PP fine-tuned the same approach (warm pinning).
	if st.lastPP.Approach != first.Approach {
		t.Fatalf("approach changed across warm retraining: %s → %s", first.Approach, st.lastPP.Approach)
	}
}

func TestTripClearsWarmStart(t *testing.T) {
	s := newWarmSystem(t)
	stream := data.Traffic(data.TrafficConfig{Rows: 600, Seed: 4})
	for _, b := range stream[:400] {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.clauses["s>60"]
	if st.lastPP == nil {
		t.Fatal("no trained PP to trip")
	}
	dec, err := s.Decide(query.MustParse("s>60"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("trained system should inject")
	}
	// K consecutive breaches trip the clause.
	for i := 0; i < s.cfg.Watchdog.K; i++ {
		s.ReportAccuracy(dec, 0.10, 0.95)
	}
	if s.Trips != 1 {
		t.Fatalf("Trips = %d, want 1", s.Trips)
	}
	if st.lastPP != nil {
		t.Fatal("trip left lastPP set; retraining would warm-start from the breaching model")
	}
	if _, ok := s.corpus.Get("s>60"); ok {
		t.Fatal("tripped PP still in corpus")
	}
}
