package online

import (
	"testing"

	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/query"
)

func newTrafficSystem(t *testing.T, minLabels int) *System {
	t.Helper()
	s, err := New(Config{
		Clauses:   []string{"t=SUV", "t=van", "c=red", "s>60"},
		MinLabels: minLabels,
		Train:     core.TrainConfig{Approach: "Raw+SVM"},
		Domains:   data.TrafficDomains(),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for no clauses")
	}
	if _, err := New(Config{Clauses: []string{"t="}}); err == nil {
		t.Fatal("expected error for unparsable clause")
	}
	if _, err := New(Config{Clauses: []string{"t=SUV & c=red"}}); err == nil {
		t.Fatal("expected error for composite clause")
	}
}

func TestColdStartNoInjection(t *testing.T) {
	s := newTrafficSystem(t, 500)
	dec, err := s.Decide(query.MustParse("t=SUV"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Inject {
		t.Fatal("cold-start system must not inject")
	}
	if len(s.TrainedClauses()) != 0 {
		t.Fatal("no PP should exist yet")
	}
}

func TestTrainsAfterEnoughLabels(t *testing.T) {
	s := newTrafficSystem(t, 400)
	// One continuous stream from one camera deployment: the system observes
	// the prefix; the suffix is the "fresh" data PPs later filter.
	stream := data.Traffic(data.TrafficConfig{Rows: 3200, Seed: 2})
	for _, b := range stream[:1200] {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	trained := s.TrainedClauses()
	if len(trained) != 4 {
		t.Fatalf("trained = %v, want all 4 clauses", trained)
	}
	// Decisions now inject.
	dec, err := s.Decide(query.MustParse("t=SUV & c=red"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("warm system should inject")
	}
	// And the injected filter is sound on fresh data at a=1.
	dec1, err := s.Decide(query.MustParse("t=SUV"), 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec1.Inject {
		fresh := stream[1200:]
		set, err := data.TrafficSet(fresh, query.MustParse("t=SUV"))
		if err != nil {
			t.Fatal(err)
		}
		dropped := 0
		for i, b := range set.Blobs {
			if !set.Labels[i] {
				continue
			}
			if pass, _ := dec1.Filter.Test(b); !pass {
				dropped++
			}
		}
		if frac := float64(dropped) / float64(set.Positives()); frac > 0.05 {
			t.Fatalf("online PP dropped %v of positives at a=1", frac)
		}
	}
}

func TestRetrainingCadence(t *testing.T) {
	s, err := New(Config{
		Clauses:      []string{"t=SUV"},
		MinLabels:    300,
		RetrainEvery: 500,
		BufferCap:    1000,
		Train:        core.TrainConfig{Approach: "Raw+SVM"},
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := data.Traffic(data.TrafficConfig{Rows: 2400, Seed: 5})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	// First training at ~300 labels, retraining every 500 thereafter:
	// 300 + k*500 <= 2400 → k = 4 retrainings, 5 total.
	if s.Trainings < 4 || s.Trainings > 6 {
		t.Fatalf("trainings = %d, want ~5", s.Trainings)
	}
}

func TestObserveSkipsUnmaterializedClauses(t *testing.T) {
	s := newTrafficSystem(t, 100)
	stream := data.Traffic(data.TrafficConfig{Rows: 400, Seed: 6})
	// A lookup that only materializes the type column: color and speed
	// clauses get no labels.
	typeOnly := func(b interface{ TruthVal(string) (float64, bool) }) query.Lookup {
		return func(col string) (query.Value, bool) {
			if col != "t" {
				return query.Value{}, false
			}
			v, _ := b.TruthVal("t")
			return query.Str(data.VehicleTypes[int(v)]), true
		}
	}
	for _, b := range stream {
		if err := s.Observe(b, typeOnly(b)); err != nil {
			t.Fatal(err)
		}
	}
	trained := s.TrainedClauses()
	for _, c := range trained {
		if c == "c=red" || c == "s>60" {
			t.Fatalf("clause %q trained without labels", c)
		}
	}
	if len(trained) == 0 {
		t.Fatal("type clauses should have trained")
	}
}

func TestBufferCapEvicts(t *testing.T) {
	s, err := New(Config{
		Clauses:   []string{"t=SUV"},
		MinLabels: 100,
		BufferCap: 150,
		Train:     core.TrainConfig{Approach: "Raw+SVM"},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := data.Traffic(data.TrafficConfig{Rows: 500, Seed: 8})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.clauses["t=SUV"].blobs); n > 150 {
		t.Fatalf("buffer grew to %d, cap 150", n)
	}
}

func TestReportRunFeedsDependence(t *testing.T) {
	s := newTrafficSystem(t, 300)
	stream := data.Traffic(data.TrafficConfig{Rows: 1000, Seed: 9})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := s.Decide(query.MustParse("t=SUV & c=red"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.NumPPs < 2 {
		t.Skip("need multi-PP decision")
	}
	s.ReportRun(dec, 0) // wildly off the estimate
	dec2, err := s.Decide(query.MustParse("t=SUV & c=red"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Inject && dec2.NumPPs > 1 {
		t.Fatal("dependence feedback ignored")
	}
}

func TestDecideValidation(t *testing.T) {
	s := newTrafficSystem(t, 100)
	if _, err := s.Decide(query.MustParse("t=SUV"), 2.0, 100); err == nil {
		t.Fatal("expected error for accuracy > 1")
	}
	if _, err := s.Decide(query.MustParse("t=SUV"), 0.9, -1); err == nil {
		t.Fatal("expected error for negative UDF cost")
	}
}
