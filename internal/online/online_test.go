package online

import (
	"testing"

	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

func newTrafficSystem(t *testing.T, minLabels int) *System {
	t.Helper()
	s, err := New(Config{
		Clauses:   []string{"t=SUV", "t=van", "c=red", "s>60"},
		MinLabels: minLabels,
		Train:     core.TrainConfig{Approach: "Raw+SVM"},
		Domains:   data.TrafficDomains(),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error for no clauses")
	}
	if _, err := New(Config{Clauses: []string{"t="}}); err == nil {
		t.Fatal("expected error for unparsable clause")
	}
	if _, err := New(Config{Clauses: []string{"t=SUV & c=red"}}); err == nil {
		t.Fatal("expected error for composite clause")
	}
}

func TestColdStartNoInjection(t *testing.T) {
	s := newTrafficSystem(t, 500)
	dec, err := s.Decide(query.MustParse("t=SUV"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Inject {
		t.Fatal("cold-start system must not inject")
	}
	if len(s.TrainedClauses()) != 0 {
		t.Fatal("no PP should exist yet")
	}
}

func TestTrainsAfterEnoughLabels(t *testing.T) {
	s := newTrafficSystem(t, 400)
	// One continuous stream from one camera deployment: the system observes
	// the prefix; the suffix is the "fresh" data PPs later filter.
	stream := data.Traffic(data.TrafficConfig{Rows: 3200, Seed: 2})
	for _, b := range stream[:1200] {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	trained := s.TrainedClauses()
	if len(trained) != 4 {
		t.Fatalf("trained = %v, want all 4 clauses", trained)
	}
	// Decisions now inject.
	dec, err := s.Decide(query.MustParse("t=SUV & c=red"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("warm system should inject")
	}
	// And the injected filter is sound on fresh data at a=1.
	dec1, err := s.Decide(query.MustParse("t=SUV"), 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec1.Inject {
		fresh := stream[1200:]
		set, err := data.TrafficSet(fresh, query.MustParse("t=SUV"))
		if err != nil {
			t.Fatal(err)
		}
		dropped := 0
		for i, b := range set.Blobs {
			if !set.Labels[i] {
				continue
			}
			if pass, _ := dec1.Filter.Test(b); !pass {
				dropped++
			}
		}
		if frac := float64(dropped) / float64(set.Positives()); frac > 0.05 {
			t.Fatalf("online PP dropped %v of positives at a=1", frac)
		}
	}
}

func TestRetrainingCadence(t *testing.T) {
	s, err := New(Config{
		Clauses:      []string{"t=SUV"},
		MinLabels:    300,
		RetrainEvery: 500,
		BufferCap:    1000,
		Train:        core.TrainConfig{Approach: "Raw+SVM"},
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := data.Traffic(data.TrafficConfig{Rows: 2400, Seed: 5})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	// First training at ~300 labels, retraining every 500 thereafter:
	// 300 + k*500 <= 2400 → k = 4 retrainings, 5 total.
	if s.Trainings < 4 || s.Trainings > 6 {
		t.Fatalf("trainings = %d, want ~5", s.Trainings)
	}
}

func TestObserveSkipsUnmaterializedClauses(t *testing.T) {
	s := newTrafficSystem(t, 100)
	stream := data.Traffic(data.TrafficConfig{Rows: 400, Seed: 6})
	// A lookup that only materializes the type column: color and speed
	// clauses get no labels.
	typeOnly := func(b interface{ TruthVal(string) (float64, bool) }) query.Lookup {
		return func(col string) (query.Value, bool) {
			if col != "t" {
				return query.Value{}, false
			}
			v, _ := b.TruthVal("t")
			return query.Str(data.VehicleTypes[int(v)]), true
		}
	}
	for _, b := range stream {
		if err := s.Observe(b, typeOnly(b)); err != nil {
			t.Fatal(err)
		}
	}
	trained := s.TrainedClauses()
	for _, c := range trained {
		if c == "c=red" || c == "s>60" {
			t.Fatalf("clause %q trained without labels", c)
		}
	}
	if len(trained) == 0 {
		t.Fatal("type clauses should have trained")
	}
}

func TestBufferCapEvicts(t *testing.T) {
	s, err := New(Config{
		Clauses:   []string{"t=SUV"},
		MinLabels: 100,
		BufferCap: 150,
		Train:     core.TrainConfig{Approach: "Raw+SVM"},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := data.Traffic(data.TrafficConfig{Rows: 500, Seed: 8})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.clauses["t=SUV"].blobs); n > 150 {
		t.Fatalf("buffer grew to %d, cap 150", n)
	}
}

func TestReportRunFeedsDependence(t *testing.T) {
	s := newTrafficSystem(t, 300)
	stream := data.Traffic(data.TrafficConfig{Rows: 1000, Seed: 9})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := s.Decide(query.MustParse("t=SUV & c=red"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.NumPPs < 2 {
		t.Skip("need multi-PP decision")
	}
	s.ReportRun(dec, 0) // wildly off the estimate
	dec2, err := s.Decide(query.MustParse("t=SUV & c=red"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Inject && dec2.NumPPs > 1 {
		t.Fatal("dependence feedback ignored")
	}
}

// warmSystem trains a one-clause system on a stream prefix and returns the
// system, the stream, and an injecting decision.
func warmSystem(t *testing.T, cfg Config, clause, pred string, rows int) (*System, *optimizer.Decision) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := data.Traffic(data.TrafficConfig{Rows: rows, Seed: 31})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := s.Decide(query.MustParse(pred), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatalf("warm system should inject for %s", pred)
	}
	if got := s.Breaker(clause); got != BreakerClosed {
		t.Fatalf("breaker = %v before any report", got)
	}
	return s, dec
}

func watchdogConfig() Config {
	return Config{
		Clauses:   []string{"t=SUV"},
		MinLabels: 300,
		Train:     core.TrainConfig{Approach: "Raw+SVM"},
		Domains:   data.TrafficDomains(),
		Seed:      30,
		Watchdog:  WatchdogConfig{K: 3, FreshLabels: 200},
	}
}

// TestWatchdogTripsWithinKAndFallsBack: K consecutive below-target reports
// open the breaker; decisions then fall back to the NoP plan (no injection,
// hence zero lost true positives by construction).
func TestWatchdogTripsWithinKAndFallsBack(t *testing.T) {
	s, dec := warmSystem(t, watchdogConfig(), "t=SUV", "t=SUV", 900)
	// Two breaches do not trip; accuracy recovering resets the count.
	s.ReportAccuracy(dec, 0.80, 0.95)
	s.ReportAccuracy(dec, 0.82, 0.95)
	if s.Breaker("t=SUV") != BreakerClosed {
		t.Fatal("tripped before K breaches")
	}
	s.ReportAccuracy(dec, 0.96, 0.95) // pass resets the streak
	s.ReportAccuracy(dec, 0.80, 0.95)
	s.ReportAccuracy(dec, 0.80, 0.95)
	if s.Breaker("t=SUV") != BreakerClosed {
		t.Fatal("breach streak must reset on a passing report")
	}
	s.ReportAccuracy(dec, 0.80, 0.95) // third consecutive breach: trip
	if s.Breaker("t=SUV") != BreakerOpen {
		t.Fatalf("breaker = %v after K consecutive breaches", s.Breaker("t=SUV"))
	}
	if s.Trips != 1 {
		t.Fatalf("trips = %d", s.Trips)
	}
	if got := s.TrippedClauses(); len(got) != 1 || got[0] != "t=SUV" {
		t.Fatalf("tripped = %v", got)
	}
	// Fallback: the PP left the corpus, so the query runs unmodified.
	dec2, err := s.Decide(query.MustParse("t=SUV"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Inject {
		t.Fatal("open breaker must force the NoP fallback")
	}
}

// TestWatchdogRetrainsAndReenables: a tripped clause retrains once enough
// fresh labels arrive, serves on probation, and closes after a passing run.
func TestWatchdogRetrainsAndReenables(t *testing.T) {
	s, dec := warmSystem(t, watchdogConfig(), "t=SUV", "t=SUV", 900)
	for i := 0; i < 3; i++ {
		s.ReportAccuracy(dec, 0.5, 0.95)
	}
	if s.Breaker("t=SUV") != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	trainingsAtTrip := s.Trainings
	// Fresh labels stream in while queries run unmodified; fewer than
	// FreshLabels must not retrain yet.
	fresh := data.Traffic(data.TrafficConfig{Rows: 400, Seed: 33})
	for _, b := range fresh[:150] {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Breaker("t=SUV") != BreakerOpen {
		t.Fatal("retrained before FreshLabels fresh labels")
	}
	for _, b := range fresh[150:] {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Breaker("t=SUV") != BreakerProbation {
		t.Fatalf("breaker = %v after retraining", s.Breaker("t=SUV"))
	}
	if s.Trainings != trainingsAtTrip+1 {
		t.Fatalf("trainings = %d, want %d", s.Trainings, trainingsAtTrip+1)
	}
	// Probation PP serves decisions again.
	dec2, err := s.Decide(query.MustParse("t=SUV"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec2.Inject {
		t.Fatal("probation PP should serve decisions")
	}
	s.ReportAccuracy(dec2, 0.97, 0.95)
	if s.Breaker("t=SUV") != BreakerClosed {
		t.Fatalf("breaker = %v after passing probation", s.Breaker("t=SUV"))
	}
}

// TestWatchdogProbationFailureTripsAgain: a retrained PP that still misses
// its target goes straight back to open.
func TestWatchdogProbationFailureTripsAgain(t *testing.T) {
	s, dec := warmSystem(t, watchdogConfig(), "t=SUV", "t=SUV", 900)
	for i := 0; i < 3; i++ {
		s.ReportAccuracy(dec, 0.5, 0.95)
	}
	fresh := data.Traffic(data.TrafficConfig{Rows: 300, Seed: 34})
	for _, b := range fresh {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Breaker("t=SUV") != BreakerProbation {
		t.Fatalf("breaker = %v, want probation", s.Breaker("t=SUV"))
	}
	dec2, err := s.Decide(query.MustParse("t=SUV"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	s.ReportAccuracy(dec2, 0.5, 0.95) // probation run fails
	if s.Breaker("t=SUV") != BreakerOpen {
		t.Fatalf("breaker = %v after failed probation", s.Breaker("t=SUV"))
	}
	if s.Trips != 2 {
		t.Fatalf("trips = %d, want 2", s.Trips)
	}
}

// TestWatchdogMargin: reports within the configured slack are not breaches.
func TestWatchdogMargin(t *testing.T) {
	cfg := watchdogConfig()
	cfg.Watchdog.Margin = 0.05
	s, dec := warmSystem(t, cfg, "t=SUV", "t=SUV", 900)
	for i := 0; i < 10; i++ {
		s.ReportAccuracy(dec, 0.91, 0.95) // within the 0.05 margin
	}
	if s.Breaker("t=SUV") != BreakerClosed {
		t.Fatal("in-margin reports must not breach")
	}
}

// TestWatchdogResolvesNegationDerivedLeaves: a decision injecting a
// negation-derived PP (e.g. PP[c!=white] from the c=white classifier) charges
// the base clause the system actually manages.
func TestWatchdogResolvesNegationDerivedLeaves(t *testing.T) {
	cfg := watchdogConfig()
	cfg.Clauses = []string{"c=white"}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := data.Traffic(data.TrafficConfig{Rows: 900, Seed: 35})
	for _, b := range stream {
		if err := s.Observe(b, data.TrafficLookup(b)); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := s.Decide(query.MustParse("c!=white"), 0.95, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Skip("negated clause did not inject on this seed")
	}
	for i := 0; i < 3; i++ {
		s.ReportAccuracy(dec, 0.5, 0.95)
	}
	if s.Breaker("c=white") != BreakerOpen {
		t.Fatalf("base clause breaker = %v, want open", s.Breaker("c=white"))
	}
}

func TestDecideValidation(t *testing.T) {
	s := newTrafficSystem(t, 100)
	if _, err := s.Decide(query.MustParse("t=SUV"), 2.0, 100); err == nil {
		t.Fatal("expected error for accuracy > 1")
	}
	if _, err := s.Decide(query.MustParse("t=SUV"), 0.9, -1); err == nil {
		t.Fatal("expected error for negative UDF cost")
	}
}
