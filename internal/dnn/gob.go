package dnn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// layerGob is the serialized form of one fully connected layer (momentum
// buffers are training state and are not persisted).
type layerGob struct {
	In, Out int
	W, B    []float64
}

// GobEncode implements gob.GobEncoder.
func (m *Model) GobEncode() ([]byte, error) {
	layers := make([]layerGob, len(m.layers))
	for i, l := range m.layers {
		layers[i] = layerGob{In: l.in, Out: l.out, W: l.w, B: l.b}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(layers); err != nil {
		return nil, fmt.Errorf("dnn: encoding model: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Model) GobDecode(data []byte) error {
	var layers []layerGob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&layers); err != nil {
		return fmt.Errorf("dnn: decoding model: %w", err)
	}
	m.layers = m.layers[:0]
	m.params = 0
	for _, g := range layers {
		l := &layer{
			in: g.In, out: g.Out, w: g.W, b: g.B,
			vw: make([]float64, len(g.W)),
			vb: make([]float64, len(g.B)),
		}
		m.layers = append(m.layers, l)
		m.params += len(l.w) + len(l.b)
	}
	return nil
}
