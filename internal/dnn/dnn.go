// Package dnn implements the deep-neural-network PP classifier of §5.3: a
// fully connected feed-forward network f_fcn with ReLU activations between
// layers and a single logit output, trained with mini-batch stochastic
// gradient descent with momentum on the logistic loss.
//
// Compared to the reference DNNs the paper bypasses, PP networks are
// deliberately light-weight (the paper's is 8 conv layers + 1 FC; ours is a
// small MLP because the synthetic blobs are already vectors).
package dnn

import (
	"fmt"
	"math"
	"sync"

	"probpred/internal/mathx"
)

// Config controls network shape and training.
type Config struct {
	// Hidden lists hidden-layer widths, e.g. {32, 16}. Empty selects {32}.
	Hidden []int
	// Epochs is the number of passes over the data. Zero selects 30.
	Epochs int
	// BatchSize is the mini-batch size. Zero selects 16.
	BatchSize int
	// LearningRate is the SGD step size. Zero selects 0.05.
	LearningRate float64
	// Momentum is the classical momentum coefficient. Zero selects 0.9.
	Momentum float64
	// L2 is the weight-decay coefficient. Zero selects 1e-4.
	L2 float64
	// ClassWeightPos up-weights positive examples in the loss. Zero selects
	// the inverse class frequency ratio, capped at 10.
	ClassWeightPos float64
	// Seed seeds initialization and batch shuffling.
	Seed uint64
}

func (c *Config) fill(posFrac float64) {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{32}
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.ClassWeightPos == 0 {
		w := 1.0
		if posFrac > 0 && posFrac < 1 {
			w = (1 - posFrac) / posFrac
		}
		c.ClassWeightPos = mathx.Clamp(w, 1, 10)
	}
}

// layer holds the weights of one fully connected layer: out = W·in + b.
type layer struct {
	in, out int
	w       []float64 // out×in row-major
	b       []float64 // out
	// momentum buffers
	vw []float64
	vb []float64
}

func newLayer(in, out int, rng *mathx.RNG) *layer {
	l := &layer{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		vw: make([]float64, in*out),
		vb: make([]float64, out),
	}
	// He initialization, appropriate for ReLU.
	scale := math.Sqrt(2 / float64(in))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * scale
	}
	return l
}

func (l *layer) forward(in mathx.Vec) mathx.Vec {
	out := make(mathx.Vec, l.out)
	l.forwardInto(in, out)
	return out
}

// forwardInto computes out = W·in + b into the caller's buffer.
func (l *layer) forwardInto(in, out mathx.Vec) {
	for o := 0; o < l.out; o++ {
		row := l.w[o*l.in : (o+1)*l.in]
		out[o] = mathx.Dot(row, in) + l.b[o]
	}
}

// forwardBlock applies the layer to nb inputs held row-major in `in` (row r
// at in[r*inStride:...+l.in]) writing row-major outputs at stride l.out.
// Rows go outermost: the input row stays register/L1-hot across every neuron,
// output writes are contiguous, and PP-sized weight matrices are small enough
// to stay cache-resident across rows (an o-outer ordering that re-streams the
// whole input block per neuron measures slower here). Each (row, neuron) dot
// product accumulates in the same index order as forwardInto, so blocked and
// scalar outputs are bit-identical.
func (l *layer) forwardBlock(nb int, in []float64, inStride int, out []float64) {
	for r := 0; r < nb; r++ {
		inRow := in[r*inStride : r*inStride+l.in]
		outRow := out[r*l.out : (r+1)*l.out]
		for o := 0; o < l.out; o++ {
			outRow[o] = mathx.Dot(l.w[o*l.in:(o+1)*l.in], inRow) + l.b[o]
		}
	}
}

// Model is a trained network. Layers alternate affine transform and ReLU;
// the final layer has a single linear (logit) output.
type Model struct {
	layers []*layer
	params int
	// scratch recycles forward-pass activation buffers across Score and
	// ScoreBatch calls. Scoring must be safe for concurrent use (parallel
	// engine chunks share one Model), so buffers are pooled; the zero pool is
	// valid, which keeps gob-decoded models working without a constructor.
	scratch sync.Pool
}

// scoreBlock is how many batch rows flow through the layers together in
// ScoreBatch: large enough to amortize each layer-weight traversal over many
// rows, small enough that a block of activations stays cache-resident.
const scoreBlock = 64

// fwdScratch holds two ping-pong activation blocks of scoreBlock×maxWidth.
type fwdScratch struct{ a, b []float64 }

// getScratch returns reusable activation buffers, allocating only on pool
// misses.
func (m *Model) getScratch() *fwdScratch {
	if s, ok := m.scratch.Get().(*fwdScratch); ok {
		return s
	}
	w := 0
	for _, l := range m.layers {
		if l.out > w {
			w = l.out
		}
	}
	return &fwdScratch{a: make([]float64, scoreBlock*w), b: make([]float64, scoreBlock*w)}
}

// Train fits a network to feature vectors xs and binary labels ys.
func Train(xs []mathx.Vec, ys []bool, cfg Config) (*Model, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("dnn: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("dnn: %d examples but %d labels", len(xs), len(ys))
	}
	pos := 0
	for _, y := range ys {
		if y {
			pos++
		}
	}
	if pos == 0 || pos == len(ys) {
		return nil, fmt.Errorf("dnn: training set has a single class (%d/%d positive)", pos, len(ys))
	}
	cfg.fill(float64(pos) / float64(len(ys)))

	rng := mathx.NewRNG(cfg.Seed)
	dims := append([]int{len(xs[0])}, cfg.Hidden...)
	dims = append(dims, 1)
	m := &Model{}
	for i := 0; i+1 < len(dims); i++ {
		l := newLayer(dims[i], dims[i+1], rng)
		m.layers = append(m.layers, l)
		m.params += len(l.w) + len(l.b)
	}

	n := len(xs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.ShuffleInts(order)
		lr := cfg.LearningRate / (1 + 0.05*float64(epoch))
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			m.step(xs, ys, order[start:end], lr, cfg)
		}
	}
	return m, nil
}

// step performs one mini-batch SGD update with momentum.
func (m *Model) step(xs []mathx.Vec, ys []bool, batch []int, lr float64, cfg Config) {
	type grads struct {
		w []float64
		b []float64
	}
	gs := make([]grads, len(m.layers))
	for i, l := range m.layers {
		gs[i] = grads{w: make([]float64, len(l.w)), b: make([]float64, len(l.b))}
	}
	for _, idx := range batch {
		x := xs[idx]
		target, weight := 0.0, 1.0
		if ys[idx] {
			target = 1.0
			weight = cfg.ClassWeightPos
		}
		// Forward pass, caching pre- and post-activation vectors.
		acts := make([]mathx.Vec, len(m.layers)+1) // post-activation inputs
		pre := make([]mathx.Vec, len(m.layers))    // pre-activation outputs
		acts[0] = x
		for i, l := range m.layers {
			z := l.forward(acts[i])
			pre[i] = z
			if i == len(m.layers)-1 {
				acts[i+1] = z // linear output
				continue
			}
			a := make(mathx.Vec, len(z))
			for j, v := range z {
				if v > 0 {
					a[j] = v
				}
			}
			acts[i+1] = a
		}
		logit := acts[len(m.layers)][0]
		p := mathx.Sigmoid(logit)
		// dL/dlogit for the logistic loss.
		delta := mathx.Vec{weight * (p - target)}
		// Backward pass.
		for i := len(m.layers) - 1; i >= 0; i-- {
			l := m.layers[i]
			in := acts[i]
			g := gs[i]
			for o := 0; o < l.out; o++ {
				d := delta[o]
				g.b[o] += d
				row := g.w[o*l.in : (o+1)*l.in]
				mathx.Axpy(d, in, row)
			}
			if i == 0 {
				break
			}
			prev := make(mathx.Vec, l.in)
			for o := 0; o < l.out; o++ {
				d := delta[o]
				row := l.w[o*l.in : (o+1)*l.in]
				mathx.Axpy(d, row, prev)
			}
			// ReLU derivative of the previous layer's pre-activation.
			for j := range prev {
				if pre[i-1][j] <= 0 {
					prev[j] = 0
				}
			}
			delta = prev
		}
	}
	scale := 1 / float64(len(batch))
	for i, l := range m.layers {
		g := gs[i]
		for j := range l.w {
			grad := g.w[j]*scale + cfg.L2*l.w[j]
			l.vw[j] = cfg.Momentum*l.vw[j] - lr*grad
			l.w[j] += l.vw[j]
		}
		for j := range l.b {
			l.vb[j] = cfg.Momentum*l.vb[j] - lr*g.b[j]*scale
			l.b[j] += l.vb[j]
		}
	}
}

// Score returns the output logit; larger means more likely +1.
func (m *Model) Score(x mathx.Vec) float64 {
	s := m.getScratch()
	v := m.score(x, s)
	m.scratch.Put(s)
	return v
}

// score runs one forward pass through pooled ping-pong activation buffers;
// the arithmetic (per-neuron dot products, ReLU clamping) is unchanged from
// the historical allocate-per-layer pass.
func (m *Model) score(x mathx.Vec, s *fwdScratch) float64 {
	in := x
	cur, alt := s.a, s.b
	for i, l := range m.layers {
		z := cur[:l.out]
		l.forwardInto(in, z)
		if i == len(m.layers)-1 {
			return z[0]
		}
		for j, v := range z {
			if v < 0 {
				z[j] = 0
			}
		}
		in = z
		cur, alt = alt, cur
	}
	return 0 // unreachable for a well-formed model
}

// ScoreBatch scores the len(out) vectors stored row-major in xs (row i is
// xs[i*d:(i+1)*d]) into out. Rows flow through the network in blocks of
// scoreBlock with the layer loop outermost, so each layer's weights are
// traversed once per block rather than once per row, over reused activation
// buffers. Per-row arithmetic is exactly Score's, so batch and scalar logits
// are bit-identical (the invariant core.PP's batch fast path relies on). It
// implements core.BatchScorer.
func (m *Model) ScoreBatch(xs []float64, d int, out []float64) {
	s := m.getScratch()
	n := len(out)
	last := len(m.layers) - 1
	for start := 0; start < n; start += scoreBlock {
		nb := min(scoreBlock, n-start)
		in, inStride := xs[start*d:], d
		cur, alt := s.a, s.b
		for li, l := range m.layers {
			l.forwardBlock(nb, in, inStride, cur)
			if li == last {
				// The output layer is a single logit: row r sits at cur[r].
				copy(out[start:start+nb], cur[:nb])
				break
			}
			z := cur[:nb*l.out]
			for j, v := range z {
				if v < 0 {
					z[j] = 0
				}
			}
			in, inStride = cur, l.out
			cur, alt = alt, cur
		}
	}
	m.scratch.Put(s)
}

// Name identifies the classifier family.
func (m *Model) Name() string { return "DNN" }

// Params returns the number of trainable parameters (d_m in Table 2).
func (m *Model) Params() int { return m.params }

// Cost returns the virtual per-blob scoring cost in virtual milliseconds:
// one forward pass touches every parameter once (c_f in Table 2). The
// constants put a typical PP network near the ~10 ms/row the paper measures
// for DNN PPs (Table 5).
func (m *Model) Cost() float64 { return 2.0 + 5e-4*float64(m.params) }
