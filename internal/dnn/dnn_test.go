package dnn

import (
	"math"
	"testing"

	"probpred/internal/mathx"
)

// xorData is the canonical non-linearly-separable problem.
func xorData(n int, seed uint64) ([]mathx.Vec, []bool) {
	rng := mathx.NewRNG(seed)
	var xs []mathx.Vec
	var ys []bool
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		xs = append(xs, mathx.Vec{a, b})
		ys = append(ys, a*b > 0)
	}
	return xs, ys
}

func accuracy(m *Model, xs []mathx.Vec, ys []bool) float64 {
	correct := 0
	for i, x := range xs {
		if (m.Score(x) > 0) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

func TestTrainXOR(t *testing.T) {
	xs, ys := xorData(600, 1)
	m, err := Train(xs, ys, Config{Hidden: []int{16, 16}, Epochs: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	txs, tys := xorData(300, 3)
	if acc := accuracy(m, txs, tys); acc < 0.9 {
		t.Fatalf("XOR test accuracy = %v, want >= 0.9 (must beat any linear model)", acc)
	}
}

func TestTrainLinear(t *testing.T) {
	rng := mathx.NewRNG(4)
	var xs []mathx.Vec
	var ys []bool
	for i := 0; i < 300; i++ {
		x := mathx.Vec{rng.NormFloat64(), rng.NormFloat64()}
		xs = append(xs, x)
		ys = append(ys, x[0]+x[1] > 0)
	}
	m, err := Train(xs, ys, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, xs, ys); acc < 0.95 {
		t.Fatalf("linear accuracy = %v", acc)
	}
}

func TestDeterministic(t *testing.T) {
	xs, ys := xorData(100, 6)
	m1, err := Train(xs, ys, Config{Epochs: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(xs, ys, Config{Epochs: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	probe := mathx.Vec{0.3, -0.4}
	if m1.Score(probe) != m2.Score(probe) {
		t.Fatal("DNN training not deterministic")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	xs, ys := xorData(100, 8)
	m1, _ := Train(xs, ys, Config{Epochs: 2, Seed: 1})
	m2, _ := Train(xs, ys, Config{Epochs: 2, Seed: 2})
	probe := mathx.Vec{0.3, -0.4}
	if m1.Score(probe) == m2.Score(probe) {
		t.Fatal("different seeds produced identical models")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("expected error for empty set")
	}
	if _, err := Train([]mathx.Vec{{1}}, []bool{true, false}, Config{}); err == nil {
		t.Fatal("expected error for mismatch")
	}
	if _, err := Train([]mathx.Vec{{1}, {2}}, []bool{true, true}, Config{}); err == nil {
		t.Fatal("expected error for single class")
	}
}

func TestParamsCount(t *testing.T) {
	xs, ys := xorData(50, 9)
	m, err := Train(xs, ys, Config{Hidden: []int{8}, Epochs: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Layers: 2->8 (2*8 + 8) and 8->1 (8 + 1) = 24 + 9 = 33.
	if m.Params() != 33 {
		t.Fatalf("Params = %d, want 33", m.Params())
	}
	if m.Cost() <= 0 || m.Name() != "DNN" {
		t.Fatal("bad metadata")
	}
}

func TestScoreFinite(t *testing.T) {
	xs, ys := xorData(200, 11)
	m, err := Train(xs, ys, Config{Epochs: 10, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if s := m.Score(x); math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("non-finite score %v", s)
		}
	}
}

func TestClassWeightDefaultsFromImbalance(t *testing.T) {
	// 5% positive: positives should still be scored higher on average than
	// the base rate would suggest, thanks to automatic class weighting.
	rng := mathx.NewRNG(13)
	var xs []mathx.Vec
	var ys []bool
	for i := 0; i < 800; i++ {
		x := mathx.Vec{rng.NormFloat64(), rng.NormFloat64()}
		xs = append(xs, x)
		ys = append(ys, x[0] > 1.6)
	}
	m, err := Train(xs, ys, Config{Epochs: 20, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	tp, p := 0, 0
	for i, x := range xs {
		if ys[i] {
			p++
			if m.Score(x) > 0 {
				tp++
			}
		}
	}
	if p == 0 {
		t.Skip("degenerate draw")
	}
	if recall := float64(tp) / float64(p); recall < 0.6 {
		t.Fatalf("recall on imbalanced data = %v, want >= 0.6", recall)
	}
}
