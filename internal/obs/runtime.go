package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// RuntimeSnapshot captures the Go runtime's state at one instant — the
// bench runner embeds before/after snapshots in BENCH_pp.json so perf
// numbers carry their environment.
type RuntimeSnapshot struct {
	GoVersion    string `json:"go_version"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	NumCPU       int    `json:"num_cpu"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumGoroutine int    `json:"num_goroutine"`
	// HeapAllocBytes is live heap memory at snapshot time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// TotalAllocBytes is cumulative allocation since process start.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	GCPauseTotalNS  uint64 `json:"gc_pause_total_ns"`
	// SchedLatencyP50NS / P99NS come from the runtime/metrics goroutine
	// scheduling latency histogram (zero when the runtime doesn't publish it).
	SchedLatencyP50NS float64 `json:"sched_latency_p50_ns,omitempty"`
	SchedLatencyP99NS float64 `json:"sched_latency_p99_ns,omitempty"`
}

// TakeRuntimeSnapshot reads the runtime counters.
func TakeRuntimeSnapshot() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := RuntimeSnapshot{
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumGoroutine:    runtime.NumGoroutine(),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		GCPauseTotalNS:  ms.PauseTotalNs,
	}
	snap.SchedLatencyP50NS, snap.SchedLatencyP99NS = schedLatencyQuantiles()
	return snap
}

// schedLatencyQuantiles reads the scheduler latency histogram from
// runtime/metrics and returns approximate p50/p99 in nanoseconds.
func schedLatencyQuantiles() (p50, p99 float64) {
	const name = "/sched/latencies:seconds"
	sample := []metrics.Sample{{Name: name}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0, 0
	}
	h := sample[0].Value.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	// bound returns bucket i's finite lower bound in ns (the histogram's
	// first/last buckets are unbounded: ±Inf).
	bound := func(i int) float64 {
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
		b := h.Buckets[i]
		if math.IsInf(b, 0) {
			return 0
		}
		return b * 1e9
	}
	quantile := func(q float64) float64 {
		target := uint64(q * float64(total))
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			if cum >= target {
				return bound(i)
			}
		}
		return bound(len(h.Buckets) - 1)
	}
	return quantile(0.50), quantile(0.99)
}
