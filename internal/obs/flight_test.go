package obs

import (
	"strings"
	"testing"
)

// emitN pushes n innocuous operator spans through the tracer.
func emitN(tr *Tracer, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Begin(KindOperator, "op")
		tr.End(&sp)
	}
}

func TestFlightRecorderBuffersWithoutTrigger(t *testing.T) {
	var out strings.Builder
	fr := NewFlightRecorder(8, &out)
	tr := New(fr)
	emitN(tr, 20)
	if out.Len() != 0 {
		t.Fatalf("recorder dumped without a trigger: %q", out.String())
	}
	recs := fr.Records()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want capacity 8", len(recs))
	}
	for _, r := range recs {
		if r.Span == nil || r.Span.Name != "op" {
			t.Fatalf("unexpected record %+v", r)
		}
	}
}

func TestFlightRecorderOldestFirst(t *testing.T) {
	fr := NewFlightRecorder(4, nil)
	tr := New(fr)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		sp := tr.Begin(KindOperator, n)
		tr.End(&sp)
	}
	recs := fr.Records()
	var got []string
	for _, r := range recs {
		got = append(got, r.Span.Name)
	}
	want := []string{"c", "d", "e", "f"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ring order = %v, want %v", got, want)
		}
	}
}

func TestFlightRecorderDumpsOnRunError(t *testing.T) {
	var out strings.Builder
	fr := NewFlightRecorder(16, &out)
	tr := New(fr)
	emitN(tr, 3)
	sp := tr.Begin(KindRun, "plan")
	sp.SetAttr("error", "boom")
	tr.End(&sp)
	if fr.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1", fr.Dumps())
	}
	text := out.String()
	if !strings.Contains(text, "flight recorder") {
		t.Fatalf("dump missing header: %q", text)
	}
	if !strings.Contains(text, "boom") {
		t.Fatalf("dump missing failing span: %q", text)
	}
	if len(fr.Records()) != 0 {
		t.Fatal("ring must be cleared after a dump")
	}
	// A healthy run afterwards must not dump again.
	ok := tr.Begin(KindRun, "plan")
	tr.End(&ok)
	if fr.Dumps() != 1 {
		t.Fatalf("healthy run dumped: %d", fr.Dumps())
	}
}

func TestFlightRecorderDumpsOnWatchdogTrip(t *testing.T) {
	var out strings.Builder
	fr := NewFlightRecorder(16, &out)
	tr := New(fr)
	tr.Event("watchdog.trip", Attr{Key: "clause", Value: "t=SUV"})
	if fr.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1", fr.Dumps())
	}
	if !strings.Contains(out.String(), "t=SUV") {
		t.Fatalf("dump missing trip event: %q", out.String())
	}
}

func TestFlightRecorderCustomTrigger(t *testing.T) {
	var out strings.Builder
	fr := NewFlightRecorder(16, &out)
	fr.SetTrigger(func(r Record) bool {
		return r.Metric != nil && r.Metric.Value > 100
	})
	tr := New(fr)
	tr.Metric("small", 5)
	if fr.Dumps() != 0 {
		t.Fatal("small metric tripped the custom trigger")
	}
	tr.Metric("big", 500)
	if fr.Dumps() != 1 {
		t.Fatal("big metric did not trip the custom trigger")
	}
}

func TestFlightRecorderManualDump(t *testing.T) {
	fr := NewFlightRecorder(16, nil)
	tr := New(fr)
	emitN(tr, 2)
	var out strings.Builder
	fr.Dump(&out)
	if !strings.Contains(out.String(), "op") {
		t.Fatalf("manual dump missing records: %q", out.String())
	}
	if len(fr.Records()) != 0 {
		t.Fatal("manual dump must clear the ring")
	}
}

func TestMultiSink(t *testing.T) {
	a := NewCollector()
	b := NewCollector()
	tr := New(Multi(nil, a, nil, b))
	emitN(tr, 3)
	tr.Metric("m", 2)
	for i, c := range []*Collector{a, b} {
		if n := len(c.Spans()); n != 3 {
			t.Fatalf("sink %d saw %d spans, want 3", i, n)
		}
	}
	if s := Multi(); s == nil {
		t.Fatal("empty Multi must still be a usable sink")
	}
	one := NewCollector()
	if got := Multi(one, nil); got != Sink(one) {
		t.Fatal("single-sink Multi should return the sink itself")
	}
}

func TestFlightRecorderDumpsOnPlanSwap(t *testing.T) {
	var out strings.Builder
	fr := NewFlightRecorder(16, &out)
	tr := New(fr)
	tr.Event("adapt.replan_failed", Attr{Key: "key", Value: "q1"})
	if fr.Dumps() != 0 {
		t.Fatal("non-swap adapt event tripped the auto-dump")
	}
	tr.Event("adapt.swap",
		Attr{Key: "old", Value: "PP[a] & PP[b]"},
		Attr{Key: "new", Value: "PP[b] & PP[a]"})
	if fr.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1 after adapt.swap", fr.Dumps())
	}
	if !strings.Contains(out.String(), "adapt.swap") || !strings.Contains(out.String(), "adapt.replan_failed") {
		t.Fatalf("dump missing swap window: %q", out.String())
	}
}
