package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewTraceIDUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q has length %d, want 16", id, len(id))
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("trace id %q not lowercase hex", id)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestTraceContextPropagation(t *testing.T) {
	c := NewCollector()
	tr := New(c)

	ctx := TraceContext{TraceID: NewTraceID(), SpanID: 0}
	if !ctx.Valid() {
		t.Fatal("context with trace id reported invalid")
	}
	if (TraceContext{}).Valid() {
		t.Fatal("zero context reported valid")
	}

	root := tr.BeginCtx(ctx, KindSession, "q1")
	if root.Trace != ctx.TraceID || root.Parent != 0 {
		t.Fatalf("root span trace=%q parent=%d, want %q/0", root.Trace, root.Parent, ctx.TraceID)
	}
	child := tr.BeginChild(&root, KindRun, "plan")
	if child.Trace != ctx.TraceID || child.Parent != root.ID {
		t.Fatalf("child span trace=%q parent=%d, want %q/%d", child.Trace, child.Parent, ctx.TraceID, root.ID)
	}
	grand := tr.BeginChild(&child, KindOperator, "Scan")
	if grand.Trace != ctx.TraceID {
		t.Fatalf("grandchild lost the trace: %q", grand.Trace)
	}

	// Span.Context() hands the trace on to downstream BeginCtx callers.
	cctx := child.Context()
	if cctx.TraceID != ctx.TraceID || cctx.SpanID != child.ID {
		t.Fatalf("child.Context() = %+v", cctx)
	}

	tr.End(&grand)
	tr.End(&child)
	tr.End(&root)
	tr.EventCtx(cctx, "adapt.swap", Attr{Key: "k", Value: "v"})

	sum := c.Summary()
	_ = sum
	spans, events := c.Spans(), c.Events()
	if len(spans) != 3 {
		t.Fatalf("%d spans collected, want 3", len(spans))
	}
	for _, sp := range spans {
		if sp.Trace != ctx.TraceID {
			t.Fatalf("span %s lost trace: %q", sp.Name, sp.Trace)
		}
	}
	if len(events) != 1 || events[0].Trace != ctx.TraceID {
		t.Fatalf("event trace not propagated: %+v", events)
	}
}

func TestBeginCtxOnDisabledTracer(t *testing.T) {
	var tr *Tracer
	ctx := TraceContext{TraceID: "abc"}
	sp := tr.BeginCtx(ctx, KindSession, "q")
	if sp.ID != 0 || sp.Trace != "" {
		t.Fatalf("disabled tracer produced live span: %+v", sp)
	}
	// Context() of a dead span is zero — callers keep their own ctx instead.
	if sp.Context().Valid() {
		t.Fatal("dead span produced a valid context")
	}
	tr.EventCtx(ctx, "x") // must not panic
}

func TestTextSinkTraceSuffix(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewTextSink(&buf))
	sp := tr.BeginCtx(TraceContext{TraceID: "feedc0de00000001"}, KindRun, "plan")
	tr.End(&sp)
	tr.Event("plain")
	out := buf.String()
	if !strings.Contains(out, "trace=feedc0de00000001") {
		t.Fatalf("text line missing trace suffix:\n%s", out)
	}
	// Untraced records keep the legacy format (no dangling trace=).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "plain") && strings.Contains(line, "trace=") {
			t.Fatalf("untraced event grew a trace suffix: %q", line)
		}
	}
}

func TestTriggerSpecCompile(t *testing.T) {
	spec := TriggerSpec{Events: []string{"my.event"}}
	fire := spec.Trigger()
	if !fire(Record{Event: &Event{Name: "my.event"}}) {
		t.Fatal("named event did not fire")
	}
	if fire(Record{Event: &Event{Name: "other"}}) {
		t.Fatal("unnamed event fired")
	}
	failed := Record{Span: &Span{Kind: KindRun, Attrs: []Attr{{Key: "error", Value: "x"}}}}
	if fire(failed) {
		t.Fatal("failed run fired with FailedRunSpans unset")
	}
	spec.FailedRunSpans = true
	if !spec.Trigger()(failed) {
		t.Fatal("failed run did not fire with FailedRunSpans set")
	}
	// The zero spec never fires; the default spec matches the documented set.
	if (TriggerSpec{}).Trigger()(failed) {
		t.Fatal("zero spec fired")
	}
	def := DefaultTriggerSpec().Trigger()
	for _, ev := range []string{"watchdog.trip", "adapt.swap", "shard.fail"} {
		if !def(Record{Event: &Event{Name: ev}}) {
			t.Fatalf("default spec ignores %s", ev)
		}
	}
	if !def(failed) {
		t.Fatal("default spec ignores failed runs")
	}
}

func TestFlightRecorderDumpJSON(t *testing.T) {
	f := NewFlightRecorder(8, nil)
	tr := New(f)
	sp := tr.BeginCtx(TraceContext{TraceID: "t1"}, KindRun, "plan")
	tr.End(&sp)
	tr.EventCtx(TraceContext{TraceID: "t1"}, "watchdog.trip")

	var buf bytes.Buffer
	f.DumpJSON(&buf)
	out := buf.String()
	if !strings.Contains(out, `"type":"span"`) || !strings.Contains(out, `"type":"event"`) {
		t.Fatalf("DumpJSON output missing records:\n%s", out)
	}
	if !strings.Contains(out, `"trace":"t1"`) {
		t.Fatalf("DumpJSON lost trace ids:\n%s", out)
	}
	// DumpJSON must not clear the ring (unlike Dump).
	if len(f.Records()) != 2 {
		t.Fatalf("DumpJSON cleared the ring: %d records left", len(f.Records()))
	}
}
