package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilTracerIsSafe: a nil *Tracer is the documented default; every method
// must be a no-op rather than a panic, and Begin must not assemble a span.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin(KindRun, "plan")
	if sp.ID != 0 || !sp.Start.IsZero() {
		t.Fatalf("disabled Begin assembled a span: %+v", sp)
	}
	sp.SetAttr("k", "v") // zero span: must not record
	if len(sp.Attrs) != 0 {
		t.Fatal("SetAttr recorded on a zero span")
	}
	child := tr.BeginChild(&sp, KindOperator, "op")
	if child.ID != 0 {
		t.Fatal("disabled BeginChild assembled a span")
	}
	tr.End(&sp)
	tr.EmitSpan(sp)
	tr.Event("watchdog.trip")
	tr.Metric("m", 1)
}

// TestNewNilSink: a nil sink yields a nil tracer, so New(nil) call sites get
// the no-op path without a special case.
func TestNewNilSink(t *testing.T) {
	if tr := New(nil); tr != nil {
		t.Fatal("New(nil) should return a nil tracer")
	}
	if tr := New(NopSink{}); !tr.Enabled() {
		t.Fatal("New(NopSink{}) should be enabled")
	}
}

func TestSpanParentage(t *testing.T) {
	col := NewCollector()
	tr := New(col)
	root := tr.Begin(KindRun, "plan")
	child := tr.BeginChild(&root, KindOperator, "Scan")
	tr.End(&child)
	tr.End(&root)
	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Parent != root.ID {
		t.Fatalf("child parent = %d, want %d", spans[0].Parent, root.ID)
	}
	if spans[0].ID == spans[1].ID {
		t.Fatal("span IDs must be unique")
	}
	if spans[1].WallNS < 0 {
		t.Fatalf("negative wall time %d", spans[1].WallNS)
	}
}

func TestCollectorSummary(t *testing.T) {
	col := NewCollector()
	tr := New(col)
	for i := 0; i < 3; i++ {
		sp := tr.Begin(KindOperator, "Cheap")
		sp.CostVMS = 1
		sp.RowsIn = 10
		sp.RowsOut = 5
		tr.End(&sp)
	}
	sp := tr.Begin(KindOperator, "Expensive")
	sp.CostVMS = 100
	tr.End(&sp)
	tr.Event("watchdog.trip")
	tr.Metric("optimizer.memo_hits", 2)
	tr.Metric("optimizer.memo_hits", 3)

	sum := col.Summary()
	if sum.Spans != 4 || sum.Events != 1 {
		t.Fatalf("spans=%d events=%d, want 4/1", sum.Spans, sum.Events)
	}
	if len(sum.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(sum.Ops))
	}
	// Sorted by descending virtual cost.
	if sum.Ops[0].Name != "Expensive" || sum.Ops[1].Name != "Cheap" {
		t.Fatalf("op order = %s, %s", sum.Ops[0].Name, sum.Ops[1].Name)
	}
	cheap := sum.Ops[1]
	if cheap.Count != 3 || cheap.CostVMS != 3 || cheap.RowsIn != 30 || cheap.RowsOut != 15 {
		t.Fatalf("Cheap aggregate wrong: %+v", cheap)
	}
	// Metric observations with the same name are summed.
	if sum.Metrics["optimizer.memo_hits"] != 5 {
		t.Fatalf("memo_hits = %v, want 5", sum.Metrics["optimizer.memo_hits"])
	}

	col.Reset()
	if s := col.Summary(); s.Spans != 0 || s.Events != 0 || len(s.Metrics) != 0 {
		t.Fatalf("Reset left records: %+v", s)
	}
}

func TestRowsPerSec(t *testing.T) {
	sp := Span{RowsIn: 500, WallNS: int64(time.Second)}
	if got := sp.RowsPerSec(); got != 500 {
		t.Fatalf("RowsPerSec = %v, want 500", got)
	}
	for _, zero := range []Span{{RowsIn: 0, WallNS: 1}, {RowsIn: 10, WallNS: 0}} {
		if got := zero.RowsPerSec(); got != 0 {
			t.Fatalf("RowsPerSec on %+v = %v, want 0", zero, got)
		}
	}

	// The summary aggregates throughput over the group's total rows and wall
	// time, and the text sink surfaces it on spans that carry rows.
	col := NewCollector()
	tr := New(col)
	for i := 0; i < 2; i++ {
		sp := tr.Begin(KindOperator, "PP[f]")
		sp.RowsIn = 1000
		sp.WallNS = int64(time.Millisecond)
		tr.EmitSpan(sp)
	}
	sum := col.Summary()
	if len(sum.Ops) != 1 {
		t.Fatalf("ops = %d, want 1", len(sum.Ops))
	}
	if got := sum.Ops[0].RowsPerSec; got != 1e6 {
		t.Fatalf("summary RowsPerSec = %v, want 1e6", got)
	}

	var buf bytes.Buffer
	NewTextSink(&buf).Span(Span{Kind: KindOperator, Name: "PP[f]",
		RowsIn: 1000, WallNS: int64(time.Millisecond)})
	if !strings.Contains(buf.String(), "thru=1000000rows/s") {
		t.Fatalf("text sink missing throughput:\n%s", buf.String())
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewTextSink(&buf))
	sp := tr.Begin(KindOperator, "Scan")
	sp.CostVMS = 12.5
	sp.RowsIn = 0
	sp.RowsOut = 100
	tr.End(&sp)
	chunk := tr.BeginChild(&sp, KindChunk, "U[0:50]")
	tr.End(&chunk)
	tr.Event("watchdog.trip", Attr{Key: "clause", Value: "t=SUV"})
	tr.Metric("optimizer.searches", 1)

	out := buf.String()
	for _, want := range []string{
		"[operator] Scan", "cost=12.5vms", "rows=0→100",
		"\n  [chunk] U[0:50]", // chunk spans indent under their operator
		"[event] watchdog.trip clause=t=SUV",
		"[metric] optimizer.searches=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestJSONSink: every line is a standalone JSON object with a "type"
// discriminator.
func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONSink(&buf))
	sp := tr.Begin(KindRun, "plan")
	sp.CostVMS = 7
	tr.End(&sp)
	tr.Event("online.train")
	tr.Metric("optimizer.injected", 1)

	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		typ, _ := rec["type"].(string)
		types = append(types, typ)
		switch typ {
		case "span":
			if rec["kind"] != KindRun || rec["cost_vms"] != 7.0 {
				t.Fatalf("span record wrong: %v", rec)
			}
		case "event":
			if rec["name"] != "online.train" {
				t.Fatalf("event record wrong: %v", rec)
			}
		case "metric":
			if rec["name"] != "optimizer.injected" || rec["value"] != 1.0 {
				t.Fatalf("metric record wrong: %v", rec)
			}
		default:
			t.Fatalf("unknown record type %q", typ)
		}
	}
	if len(types) != 3 {
		t.Fatalf("records = %v, want span/event/metric", types)
	}
}

func TestRuntimeSnapshot(t *testing.T) {
	snap := TakeRuntimeSnapshot()
	if snap.GoVersion == "" || snap.GOOS == "" || snap.GOARCH == "" {
		t.Fatalf("missing version metadata: %+v", snap)
	}
	if snap.NumCPU < 1 || snap.GOMAXPROCS < 1 || snap.NumGoroutine < 1 {
		t.Fatalf("implausible CPU/goroutine counts: %+v", snap)
	}
	if snap.TotalAllocBytes == 0 {
		t.Fatal("total allocation cannot be zero in a running test")
	}
	if snap.SchedLatencyP50NS < 0 || snap.SchedLatencyP99NS < 0 ||
		snap.SchedLatencyP50NS > snap.SchedLatencyP99NS {
		t.Fatalf("scheduler latency quantiles out of order: p50=%v p99=%v",
			snap.SchedLatencyP50NS, snap.SchedLatencyP99NS)
	}
	// The snapshot must be JSON-encodable (it is embedded in BENCH_pp.json);
	// ±Inf histogram bounds would make Marshal fail here.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not encode: %v", err)
	}
}
