package obs

import (
	"fmt"
	"io"
	"sync"
)

// Multi fans records out to several sinks — e.g. a text sink for -trace plus
// a flight recorder. Nil sinks are skipped; zero sinks yields a NopSink.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return NopSink{}
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

// Span implements Sink.
func (m multiSink) Span(sp Span) {
	for _, s := range m {
		s.Span(sp)
	}
}

// Event implements Sink.
func (m multiSink) Event(ev Event) {
	for _, s := range m {
		s.Event(ev)
	}
}

// Metric implements Sink.
func (m multiSink) Metric(mt Metric) {
	for _, s := range m {
		s.Metric(mt)
	}
}

// Record is one entry of the flight recorder's ring: exactly one of Span,
// Event or Metric is set.
type Record struct {
	Span   *Span
	Event  *Event
	Metric *Metric
}

// writeTo renders the record as one trace line (the TextSink format).
func (r Record) writeTo(w io.Writer) {
	switch {
	case r.Span != nil:
		writeSpanLine(w, *r.Span)
	case r.Event != nil:
		writeEventLine(w, *r.Event)
	case r.Metric != nil:
		writeMetricLine(w, *r.Metric)
	}
}

// FlightRecorder is a Sink that keeps the last N records in a fixed-size ring
// buffer and dumps them when something goes wrong — so post-mortems do not
// require a streaming sink to have been attached in advance. The trigger set
// is configurable via TriggerSpec/SetTrigger; the default
// (DefaultTriggerSpec) fires on a failed run span (kind "run" carrying an
// "error" attr), on a watchdog trip event, on a mid-query plan swap
// ("adapt.swap": the window leading up to a replan is exactly what a drift
// post-mortem needs), and on a failed shard leg ("shard.fail"); each trigger
// dumps the ring once to the configured writer, newest record last, then
// clears it so consecutive failures produce disjoint dumps.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []Record
	next    int
	full    bool
	w       io.Writer
	trigger func(Record) bool
	dumps   int
}

// TriggerSpec declares which records auto-dump the flight recorder's ring,
// replacing the previously hard-wired predicate. The zero spec never fires;
// DefaultTriggerSpec reproduces the historical default.
type TriggerSpec struct {
	// FailedRunSpans fires on a failed query run: a span of kind "run"
	// carrying an "error" attribute.
	FailedRunSpans bool
	// Events lists event names that fire a dump (e.g. "watchdog.trip").
	Events []string
}

// DefaultTriggerSpec is the default trigger set wired into
// NewFlightRecorder: a failed query run, a tripped accuracy watchdog, a
// mid-query plan swap, and a failed scatter-gather shard leg.
func DefaultTriggerSpec() TriggerSpec {
	return TriggerSpec{
		FailedRunSpans: true,
		Events:         []string{"watchdog.trip", "adapt.swap", "shard.fail"},
	}
}

// Trigger compiles the spec into an auto-dump predicate for SetTrigger.
func (ts TriggerSpec) Trigger() func(Record) bool {
	events := make(map[string]bool, len(ts.Events))
	for _, name := range ts.Events {
		events[name] = true
	}
	failedRuns := ts.FailedRunSpans
	return func(r Record) bool {
		if failedRuns && r.Span != nil && r.Span.Kind == KindRun {
			for _, a := range r.Span.Attrs {
				if a.Key == "error" {
					return true
				}
			}
		}
		return r.Event != nil && events[r.Event.Name]
	}
}

// DefaultTrigger is the auto-dump predicate wired into NewFlightRecorder —
// DefaultTriggerSpec compiled.
func DefaultTrigger(r Record) bool { return defaultTrigger(r) }

var defaultTrigger = DefaultTriggerSpec().Trigger()

// NewFlightRecorder returns a recorder holding the last capacity records
// (zero or negative selects 256) that auto-dumps to w on DefaultTrigger. A
// nil w disables auto-dumping; the ring still records for manual Dump calls.
func NewFlightRecorder(capacity int, w io.Writer) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{ring: make([]Record, capacity), w: w, trigger: DefaultTrigger}
}

// SetTrigger replaces the auto-dump predicate. A nil predicate disables
// auto-dumping.
func (f *FlightRecorder) SetTrigger(fn func(Record) bool) {
	f.mu.Lock()
	f.trigger = fn
	f.mu.Unlock()
}

// Span implements Sink.
func (f *FlightRecorder) Span(sp Span) { f.record(Record{Span: &sp}) }

// Event implements Sink.
func (f *FlightRecorder) Event(ev Event) { f.record(Record{Event: &ev}) }

// Metric implements Sink.
func (f *FlightRecorder) Metric(m Metric) { f.record(Record{Metric: &m}) }

func (f *FlightRecorder) record(r Record) {
	f.mu.Lock()
	f.ring[f.next] = r
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
	fire := f.trigger != nil && f.w != nil && f.trigger(r)
	if fire {
		f.dumpLocked(f.w, describeTriggerLocked(r))
	}
	f.mu.Unlock()
}

// describeTriggerLocked renders what fired the auto-dump.
func describeTriggerLocked(r Record) string {
	switch {
	case r.Span != nil:
		return fmt.Sprintf("failed %s span %q", r.Span.Kind, r.Span.Name)
	case r.Event != nil:
		return fmt.Sprintf("event %s", r.Event.Name)
	}
	return "manual"
}

// Records returns the buffered records, oldest first.
func (f *FlightRecorder) Records() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recordsLocked()
}

func (f *FlightRecorder) recordsLocked() []Record {
	var out []Record
	if f.full {
		out = append(out, f.ring[f.next:]...)
	}
	out = append(out, f.ring[:f.next]...)
	return out
}

// Dumps reports how many times the recorder auto-dumped.
func (f *FlightRecorder) Dumps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// Dump writes the buffered records to w (oldest first) and clears the ring.
func (f *FlightRecorder) Dump(w io.Writer) {
	f.mu.Lock()
	f.dumpLocked(w, "manual")
	f.mu.Unlock()
}

// DumpJSON writes the buffered records to w as JSON Lines in the JSONSink
// format (one {"type": "span"|"event"|"metric", ...} object per record,
// oldest first) without clearing the ring — the machine-readable dump the
// pplog analyzer joins with the query log.
func (f *FlightRecorder) DumpJSON(w io.Writer) {
	sink := NewJSONSink(w)
	for _, r := range f.Records() {
		switch {
		case r.Span != nil:
			sink.Span(*r.Span)
		case r.Event != nil:
			sink.Event(*r.Event)
		case r.Metric != nil:
			sink.Metric(*r.Metric)
		}
	}
}

func (f *FlightRecorder) dumpLocked(w io.Writer, why string) {
	recs := f.recordsLocked()
	fmt.Fprintf(w, "--- flight recorder: %d buffered record(s), trigger: %s ---\n", len(recs), why)
	for _, r := range recs {
		r.writeTo(w)
	}
	fmt.Fprintf(w, "--- end flight recorder dump ---\n")
	// Clear so back-to-back failures dump disjoint windows.
	clear(f.ring)
	f.next = 0
	f.full = false
	f.dumps++
}
