package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// NopSink discards every record. A nil *Tracer is cheaper (no records are
// even assembled); NopSink exists for call sites that require a non-nil Sink.
type NopSink struct{}

// Span implements Sink.
func (NopSink) Span(Span) {}

// Event implements Sink.
func (NopSink) Event(Event) {}

// Metric implements Sink.
func (NopSink) Metric(Metric) {}

// TextSink renders records as human-readable lines — the sink behind
// `ppquery -trace`. Chunk spans are indented under their operator.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a text sink over w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Span implements Sink.
func (s *TextSink) Span(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeSpanLine(s.w, sp)
}

// Event implements Sink.
func (s *TextSink) Event(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeEventLine(s.w, ev)
}

// Metric implements Sink.
func (s *TextSink) Metric(m Metric) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeMetricLine(s.w, m)
}

// writeSpanLine renders one span as a trace line (shared by TextSink and the
// flight recorder's dumps). Chunk spans are indented under their operator.
func writeSpanLine(w io.Writer, sp Span) {
	indent := ""
	if sp.Kind == KindChunk {
		indent = "  "
	}
	thru := ""
	if rps := sp.RowsPerSec(); rps > 0 {
		thru = fmt.Sprintf(" thru=%.0frows/s", rps)
	}
	trace := ""
	if sp.Trace != "" {
		trace = " trace=" + sp.Trace
	}
	fmt.Fprintf(w, "%s[%s] %-40s wall=%.3fms cost=%.1fvms rows=%d→%d%s%s%s\n",
		indent, sp.Kind, sp.Name, float64(sp.WallNS)/1e6, sp.CostVMS,
		sp.RowsIn, sp.RowsOut, thru, renderAttrs(sp.Attrs), trace)
}

func writeEventLine(w io.Writer, ev Event) {
	trace := ""
	if ev.Trace != "" {
		trace = " trace=" + ev.Trace
	}
	fmt.Fprintf(w, "[event] %s%s%s\n", ev.Name, renderAttrs(ev.Attrs), trace)
}

func writeMetricLine(w io.Writer, m Metric) {
	fmt.Fprintf(w, "[metric] %s=%g\n", m.Name, m.Value)
}

func renderAttrs(attrs []Attr) string {
	out := ""
	for _, a := range attrs {
		out += fmt.Sprintf(" %s=%s", a.Key, a.Value)
	}
	return out
}

// JSONSink streams records as JSON Lines: one object per record with a
// "type" discriminator ("span", "event", "metric").
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink returns a JSON-lines sink over w.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{enc: json.NewEncoder(w)} }

// Span implements Sink.
func (s *JSONSink) Span(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc.Encode(struct {
		Type string `json:"type"`
		Span
	}{Type: "span", Span: sp})
}

// Event implements Sink.
func (s *JSONSink) Event(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc.Encode(struct {
		Type string `json:"type"`
		Event
	}{Type: "event", Event: ev})
}

// Metric implements Sink.
func (s *JSONSink) Metric(m Metric) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enc.Encode(struct {
		Type string `json:"type"`
		Metric
	}{Type: "metric", Metric: m})
}

// Collector accumulates records in memory for tests, reports and the bench
// runner's per-experiment trace summaries.
type Collector struct {
	mu      sync.Mutex
	spans   []Span
	events  []Event
	metrics map[string]float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{metrics: map[string]float64{}} }

// Span implements Sink.
func (c *Collector) Span(sp Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, sp)
}

// Event implements Sink.
func (c *Collector) Event(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

// Metric implements Sink; observations with the same name are summed.
func (c *Collector) Metric(m Metric) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics[m.Name] += m.Value
}

// Spans returns a copy of the collected spans.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// Events returns a copy of the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Reset discards everything collected so far (the bench runner reuses one
// collector across experiments).
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = nil
	c.events = nil
	c.metrics = map[string]float64{}
}

// OpSummary aggregates the spans sharing a (kind, name) pair.
type OpSummary struct {
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	WallNS  int64   `json:"wall_ns"`
	CostVMS float64 `json:"cost_vms"`
	RowsIn  int     `json:"rows_in"`
	RowsOut int     `json:"rows_out"`
	// RowsPerSec is the aggregate wall-clock input throughput (total RowsIn
	// over total WallNS) — how fast the simulator itself chewed through this
	// operator's rows, across every span in the group.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
}

// Summary is the aggregate view of a collector — what BENCH_pp.json embeds
// per experiment.
type Summary struct {
	Spans   int                `json:"spans"`
	Events  int                `json:"events"`
	Ops     []OpSummary        `json:"ops,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Summary aggregates the collected records: spans grouped by (kind, name)
// sorted by descending virtual cost, metric sums, and record counts.
func (c *Collector) Summary() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	byKey := map[[2]string]*OpSummary{}
	var order [][2]string
	for _, sp := range c.spans {
		key := [2]string{sp.Kind, sp.Name}
		agg, ok := byKey[key]
		if !ok {
			agg = &OpSummary{Kind: sp.Kind, Name: sp.Name}
			byKey[key] = agg
			order = append(order, key)
		}
		agg.Count++
		agg.WallNS += sp.WallNS
		agg.CostVMS += sp.CostVMS
		agg.RowsIn += sp.RowsIn
		agg.RowsOut += sp.RowsOut
	}
	sum := Summary{Spans: len(c.spans), Events: len(c.events)}
	for _, key := range order {
		agg := byKey[key]
		if agg.RowsIn > 0 && agg.WallNS > 0 {
			agg.RowsPerSec = float64(agg.RowsIn) / (float64(agg.WallNS) / 1e9)
		}
		sum.Ops = append(sum.Ops, *agg)
	}
	sort.SliceStable(sum.Ops, func(a, b int) bool {
		if sum.Ops[a].CostVMS != sum.Ops[b].CostVMS {
			return sum.Ops[a].CostVMS > sum.Ops[b].CostVMS
		}
		return sum.Ops[a].Name < sum.Ops[b].Name
	})
	if len(c.metrics) > 0 {
		sum.Metrics = make(map[string]float64, len(c.metrics))
		for k, v := range c.metrics {
			sum.Metrics[k] = v
		}
	}
	return sum
}
