// Package obs is the engine-wide observability layer: a zero-dependency
// tracing and metrics substrate threaded through the execution engine, the
// query optimizer and the online loop. The paper's claims are measurements —
// speedup ratios, per-operator costs, accuracy under a budget — so the
// runtime that reproduces them must be able to report, machine-readably,
// where every virtual millisecond went.
//
// Three record types cover the system:
//
//   - Span: a completed unit of work (a plan run, one operator, one parallel
//     chunk, an optimizer search, a PP training) carrying both real
//     wall-clock duration and virtual cost.
//   - Event: a point-in-time state transition (watchdog trips, retrains,
//     probation verdicts).
//   - Metric: a named numeric observation (plan-search counters, memo hits,
//     chosen plan cost).
//
// Records flow into a pluggable Sink. The default is no sink at all: a nil
// *Tracer is valid, and every method on it is a nil-check away from free, so
// instrumented code pays near-zero overhead unless a sink is attached.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Span kinds emitted by the instrumented subsystems.
const (
	// KindRun is one engine.Run invocation (the root span of a plan).
	KindRun = "run"
	// KindOperator is one operator's execution within a run.
	KindOperator = "operator"
	// KindChunk is one worker chunk of a row-parallel operator.
	KindChunk = "chunk"
	// KindOptimize is one optimizer plan search.
	KindOptimize = "optimize"
	// KindTrain is one PP (re)training.
	KindTrain = "train"
	// KindAdapt is one mid-query re-optimization attempt (adapt controller):
	// divergence check, optimizer re-entry and the resulting swap decision.
	KindAdapt = "adapt"
	// KindSession is one served query session (serve.Server.Do): plan-cache
	// resolution plus execution, with the run span parented under it.
	KindSession = "session"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// TraceContext identifies the session a unit of work belongs to: the
// session-wide TraceID plus the SpanID to parent new spans under. It is
// passed by value through engine/optimizer/adapt configs; the zero value
// means "no session" and degrades every consumer to its pre-tracing
// behaviour.
type TraceContext struct {
	// TraceID is shared by every span and event of one served session,
	// across coordinator, shard legs, replicas, optimizer and engine.
	TraceID string
	// SpanID is the span to parent the next child span under (0 = root).
	SpanID int64
}

// Valid reports whether the context carries a session identity.
func (c TraceContext) Valid() bool { return c.TraceID != "" }

// traceHi is a per-process random prefix so trace IDs from concurrently
// written logs (replicas, reruns) do not collide; traceSeq makes IDs unique
// within the process. Both are independent of any Tracer so trace IDs exist
// even when tracing is disabled (exemplars and the query log still need
// them).
var (
	traceHi  = func() uint32 { var b [4]byte; _, _ = rand.Read(b[:]); return binary.LittleEndian.Uint32(b[:]) }()
	traceSeq atomic.Uint32
)

// NewTraceID returns a fresh 16-hex-char session trace ID. It never reads
// the clock and is safe for concurrent use.
func NewTraceID() string {
	return fmt.Sprintf("%08x%08x", traceHi, traceSeq.Add(1))
}

// Span is a completed unit of work. IDs are unique per tracer; Parent links
// chunk spans to their operator span and operator spans to their run span.
type Span struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"`
	// Trace is the session TraceID this span belongs to ("" = untraced).
	// BeginCtx sets it from a TraceContext and BeginChild inherits it, so
	// every span under one session root shares the ID.
	Trace string `json:"trace,omitempty"`
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// WallNS is the real elapsed time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// CostVMS is the virtual cost charged to this unit, in virtual ms.
	CostVMS float64 `json:"cost_vms,omitempty"`
	// RowsIn / RowsOut record cardinalities where they apply.
	RowsIn  int    `json:"rows_in,omitempty"`
	RowsOut int    `json:"rows_out,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// RowsPerSec returns the span's wall-clock input throughput (RowsIn over
// WallNS), or 0 when either is unknown. It measures the simulator's real
// speed — the batch scoring fast path's target — not the virtual cost model.
func (sp *Span) RowsPerSec() float64 {
	if sp.RowsIn == 0 || sp.WallNS <= 0 {
		return 0
	}
	return float64(sp.RowsIn) / (float64(sp.WallNS) / 1e9)
}

// SetAttr appends an annotation. It is a no-op on the zero Span (the value
// Begin returns when tracing is disabled), keeping disabled paths cheap.
func (sp *Span) SetAttr(key, value string) {
	if sp.ID == 0 {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
}

// Event is a point-in-time occurrence (e.g. a watchdog trip).
type Event struct {
	Time time.Time `json:"time"`
	// Trace is the session TraceID the event belongs to ("" = untraced).
	Trace string `json:"trace,omitempty"`
	Name  string `json:"name"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Metric is one numeric observation. Collector sums observations per name;
// streaming sinks emit each one.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Sink receives completed records. Implementations must be safe for
// concurrent use: parallel operators emit chunk spans from the merge point,
// but independent plan runs may share a sink across goroutines.
type Sink interface {
	Span(sp Span)
	Event(ev Event)
	Metric(m Metric)
}

// Tracer hands out span IDs and forwards records to its sink. A nil *Tracer
// is the no-op default: every method short-circuits, so instrumentation
// costs one pointer check when disabled.
type Tracer struct {
	sink Sink
	ids  atomic.Int64
}

// New returns a tracer over the sink; a nil sink yields a nil (disabled)
// tracer.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether records will reach a sink.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Begin opens a span. On a disabled tracer it returns the zero Span without
// reading the clock; End on that zero value is a no-op.
func (t *Tracer) Begin(kind, name string) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{ID: t.ids.Add(1), Kind: kind, Name: name, Start: time.Now()}
}

// BeginCtx opens a span inside a session: it carries the context's TraceID
// and is parented under the context's SpanID. A zero context makes it
// equivalent to Begin.
func (t *Tracer) BeginCtx(ctx TraceContext, kind, name string) Span {
	sp := t.Begin(kind, name)
	if sp.ID != 0 {
		sp.Trace = ctx.TraceID
		sp.Parent = ctx.SpanID
	}
	return sp
}

// BeginChild opens a span parented under another, inheriting its TraceID.
func (t *Tracer) BeginChild(parent *Span, kind, name string) Span {
	sp := t.Begin(kind, name)
	if sp.ID != 0 && parent != nil {
		sp.Parent = parent.ID
		sp.Trace = parent.Trace
	}
	return sp
}

// Context returns the TraceContext for parenting children under the span.
// On the zero Span (disabled tracing) it is the zero context; callers that
// must keep trace identity alive without a sink build the context from
// their own TraceID instead.
func (sp *Span) Context() TraceContext {
	return TraceContext{TraceID: sp.Trace, SpanID: sp.ID}
}

// End stamps the span's wall-clock duration and emits it. Spans opened while
// the tracer was disabled (zero ID) are dropped.
func (t *Tracer) End(sp *Span) {
	if !t.Enabled() || sp.ID == 0 {
		return
	}
	sp.WallNS = time.Since(sp.Start).Nanoseconds()
	t.sink.Span(*sp)
}

// EmitSpan forwards a caller-assembled span (used when the duration was
// measured elsewhere, e.g. parallel chunks that finished before the merge).
func (t *Tracer) EmitSpan(sp Span) {
	if !t.Enabled() || sp.ID == 0 {
		return
	}
	t.sink.Span(sp)
}

// Event emits a point-in-time record.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	t.sink.Event(Event{Time: time.Now(), Name: name, Attrs: attrs})
}

// EventCtx emits a point-in-time record tagged with the session's TraceID.
func (t *Tracer) EventCtx(ctx TraceContext, name string, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	t.sink.Event(Event{Time: time.Now(), Trace: ctx.TraceID, Name: name, Attrs: attrs})
}

// Metric emits one numeric observation.
func (t *Tracer) Metric(name string, v float64) {
	if !t.Enabled() {
		return
	}
	t.sink.Metric(Metric{Name: name, Value: v})
}
