package kdtree

import (
	"sort"
	"testing"
	"testing/quick"

	"probpred/internal/mathx"
)

func randomPoints(n, dim int, seed uint64) []mathx.Vec {
	rng := mathx.NewRNG(seed)
	pts := make([]mathx.Vec, n)
	for i := range pts {
		p := make(mathx.Vec, dim)
		for j := range p {
			p[j] = rng.Float64() * 10
		}
		pts[i] = p
	}
	return pts
}

// bruteKNN is the reference implementation.
func bruteKNN(pts []mathx.Vec, q mathx.Vec, k int) []Result {
	out := make([]Result, 0, len(pts))
	for i, p := range pts {
		out = append(out, Result{Index: i, SqDist: mathx.SqDist(q, p)})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SqDist < out[b].SqDist })
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	pts := randomPoints(300, 3, 1)
	tree := Build(pts, nil)
	rng := mathx.NewRNG(2)
	for trial := 0; trial < 50; trial++ {
		q := mathx.Vec{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		k := 1 + rng.Intn(10)
		got := tree.KNN(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("KNN returned %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].SqDist != want[i].SqDist {
				t.Fatalf("trial %d pos %d: dist %v want %v", trial, i, got[i].SqDist, want[i].SqDist)
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	pts := randomPoints(300, 2, 3)
	tree := Build(pts, nil)
	rng := mathx.NewRNG(4)
	for trial := 0; trial < 50; trial++ {
		q := mathx.Vec{rng.Float64() * 10, rng.Float64() * 10}
		radius := rng.Float64() * 3
		got := tree.Range(q, radius)
		want := 0
		for _, p := range pts {
			if mathx.SqDist(q, p) <= radius*radius {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Range found %d, want %d", len(got), want)
		}
		for _, r := range got {
			if r.SqDist > radius*radius {
				t.Fatalf("Range returned point outside radius: %v > %v", r.SqDist, radius*radius)
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tree := Build(nil, nil)
	if tree.Len() != 0 {
		t.Fatal("empty tree has nonzero length")
	}
	if tree.KNN(mathx.Vec{0}, 3) != nil {
		t.Fatal("KNN on empty tree should be nil")
	}
	if tree.Range(mathx.Vec{0}, 1) != nil {
		t.Fatal("Range on empty tree should be nil")
	}
}

func TestKNNFewerPointsThanK(t *testing.T) {
	pts := randomPoints(5, 2, 5)
	tree := Build(pts, nil)
	got := tree.KNN(mathx.Vec{0, 0}, 10)
	if len(got) != 5 {
		t.Fatalf("KNN = %d results, want all 5", len(got))
	}
}

func TestKNNZeroK(t *testing.T) {
	tree := Build(randomPoints(10, 2, 6), nil)
	if got := tree.KNN(mathx.Vec{0, 0}, 0); got != nil {
		t.Fatalf("KNN(k=0) = %v, want nil", got)
	}
}

func TestPayload(t *testing.T) {
	pts := []mathx.Vec{{0, 0}, {1, 1}, {2, 2}}
	tree := Build(pts, []int{10, 20, 30})
	res := tree.KNN(mathx.Vec{1.1, 1.1}, 1)
	if tree.Payload(res[0].Index) != 20 {
		t.Fatalf("payload = %d, want 20", tree.Payload(res[0].Index))
	}
	noPayload := Build(pts, nil)
	if noPayload.Payload(0) != 0 {
		t.Fatal("nil payload should return 0")
	}
}

func TestPointAccess(t *testing.T) {
	pts := []mathx.Vec{{5, 6}}
	tree := Build(pts, nil)
	if p := tree.Point(0); p[0] != 5 || p[1] != 6 {
		t.Fatalf("Point(0) = %v", p)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []mathx.Vec{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tree := Build(pts, nil)
	got := tree.KNN(mathx.Vec{1, 1}, 3)
	if len(got) != 3 {
		t.Fatalf("KNN over duplicates = %d results", len(got))
	}
	for _, r := range got {
		if r.SqDist != 0 {
			t.Fatalf("expected all-zero distances, got %v", r.SqDist)
		}
	}
}

// Property: k-d tree KNN always agrees with brute force on distances.
func TestKNNQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 + rng.Intn(100)
		dim := 1 + rng.Intn(5)
		pts := randomPoints(n, dim, seed^0xabc)
		tree := Build(pts, nil)
		q := make(mathx.Vec, dim)
		for j := range q {
			q[j] = rng.Float64() * 10
		}
		k := 1 + rng.Intn(n)
		got := tree.KNN(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].SqDist != want[i].SqDist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
