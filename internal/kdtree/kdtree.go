// Package kdtree implements a k-dimensional tree [8] used by the KDE PP
// classifier (§5.2 usage note) to retrieve a test point's neighbourhood in
// (average) logarithmic time instead of scanning the full training set.
package kdtree

import (
	"sort"

	"probpred/internal/mathx"
)

// Tree is an immutable k-d tree over dense points.
type Tree struct {
	points []mathx.Vec
	// payload carries an arbitrary integer per point (e.g. a label or index).
	payload []int
	root    *node
	dim     int
}

type node struct {
	idx         int // index into points
	axis        int
	left, right *node
}

// Build constructs a balanced k-d tree over points. payload[i] is carried
// alongside points[i]; pass nil for no payloads. Build copies the slices'
// headers but not the vectors.
func Build(points []mathx.Vec, payload []int) *Tree {
	t := &Tree{points: points, payload: payload}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	t.root = t.build(order, 0)
	return t
}

// build recursively splits order on the median along the cycling axis.
func (t *Tree) build(order []int, depth int) *node {
	if len(order) == 0 {
		return nil
	}
	axis := depth % t.dim
	sort.Slice(order, func(a, b int) bool {
		return t.points[order[a]][axis] < t.points[order[b]][axis]
	})
	mid := len(order) / 2
	n := &node{idx: order[mid], axis: axis}
	// Copy halves: sort.Slice above re-sorts shared backing arrays otherwise.
	left := append([]int(nil), order[:mid]...)
	right := append([]int(nil), order[mid+1:]...)
	n.left = t.build(left, depth+1)
	n.right = t.build(right, depth+1)
	return n
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.points) }

// Point returns the i-th indexed point.
func (t *Tree) Point(i int) mathx.Vec { return t.points[i] }

// Payload returns the payload attached to point i (0 when none was given).
func (t *Tree) Payload(i int) int {
	if t.payload == nil {
		return 0
	}
	return t.payload[i]
}

// Result is one neighbour returned by a query.
type Result struct {
	Index  int     // index into the tree's point set
	SqDist float64 // squared Euclidean distance to the query
}

// Range returns the indices of all points within Euclidean distance radius
// of q, in arbitrary order.
func (t *Tree) Range(q mathx.Vec, radius float64) []Result {
	if t.root == nil {
		return nil
	}
	var out []Result
	r2 := radius * radius
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		p := t.points[n.idx]
		if d2 := mathx.SqDist(q, p); d2 <= r2 {
			out = append(out, Result{Index: n.idx, SqDist: d2})
		}
		delta := q[n.axis] - p[n.axis]
		if delta <= radius {
			walk(n.left)
		}
		if delta >= -radius {
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// Scratch holds the reusable buffers of a KNN query: the candidate heap and
// the result slice. A zero Scratch is ready to use; callers that issue many
// queries (the KDE scorer's hot path) keep one per worker and pass it to
// KNNInto so steady-state queries allocate nothing.
type Scratch struct {
	heap maxHeap
	out  []Result
}

// KNN returns the k nearest neighbours of q sorted by ascending distance.
// If the tree holds fewer than k points, all are returned.
func (t *Tree) KNN(q mathx.Vec, k int) []Result {
	var s Scratch
	return t.KNNInto(q, k, &s)
}

// KNNInto is KNN reusing the caller's scratch buffers. The returned slice
// aliases s and is valid until the next KNNInto call with the same scratch.
func (t *Tree) KNNInto(q mathx.Vec, k int, s *Scratch) []Result {
	if t.root == nil || k <= 0 {
		return nil
	}
	h := &s.heap
	h.items = h.items[:0]
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		p := t.points[n.idx]
		d2 := mathx.SqDist(q, p)
		if h.Len() < k {
			h.push(Result{Index: n.idx, SqDist: d2})
		} else if d2 < h.top().SqDist {
			h.popTop()
			h.push(Result{Index: n.idx, SqDist: d2})
		}
		delta := q[n.axis] - p[n.axis]
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		walk(near)
		// Visit the far side only if the splitting plane is closer than the
		// current k-th best.
		if h.Len() < k || delta*delta < h.top().SqDist {
			walk(far)
		}
	}
	walk(t.root)
	if cap(s.out) < h.Len() {
		s.out = make([]Result, h.Len())
	}
	out := s.out[:h.Len()]
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.popTop()
	}
	return out
}

// maxHeap is a binary max-heap on SqDist, used to track the current k best.
type maxHeap struct{ items []Result }

func (h *maxHeap) Len() int    { return len(h.items) }
func (h *maxHeap) top() Result { return h.items[0] }
func (h *maxHeap) push(r Result) {
	h.items = append(h.items, r)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].SqDist >= h.items[i].SqDist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *maxHeap) popTop() Result {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.items) && h.items[l].SqDist > h.items[largest].SqDist {
			largest = l
		}
		if r < len(h.items) && h.items[r].SqDist > h.items[largest].SqDist {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}
