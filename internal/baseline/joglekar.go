package baseline

import (
	"fmt"
	"math"
	"sort"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/dimred"
	"probpred/internal/mathx"
)

// CorrelationScorer implements the mechanism of Joglekar et al. [27]: it
// identifies input columns whose values correlate with the user-defined
// predicate's outcome and estimates P(pass | column bucket) per column,
// accepting or rejecting inputs from those statistics without evaluating the
// predicate. Following §8.1's comparison, each dimension of the raw blob is
// treated as an input column.
//
// The scorer satisfies core.Scorer, so its accuracy/reduction trade-off is
// evaluated with exactly the same curve machinery as a PP — making the
// Table 6 comparison apples-to-apples.
type CorrelationScorer struct {
	dims    []int       // selected (most-informative) dimensions
	edges   [][]float64 // bucket edges per selected dim
	rates   [][]float64 // log P(pass|bucket)/P(pass) per selected dim
	perItem float64     // virtual cost
}

// CorrelationConfig controls training.
type CorrelationConfig struct {
	// Buckets is the number of quantile buckets per column. Zero selects 16.
	Buckets int
	// TopColumns is how many correlated columns to combine. Zero selects 3.
	TopColumns int
}

func (c *CorrelationConfig) fill() {
	if c.Buckets == 0 {
		c.Buckets = 16
	}
	if c.TopColumns == 0 {
		c.TopColumns = 3
	}
}

// TrainCorrelation fits per-column bucket statistics and keeps the most
// informative columns.
func TrainCorrelation(xs []mathx.Vec, ys []bool, cfg CorrelationConfig) (*CorrelationScorer, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("baseline: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("baseline: %d examples but %d labels", len(xs), len(ys))
	}
	cfg.fill()
	n := len(xs)
	d := len(xs[0])
	pos := 0
	for _, y := range ys {
		if y {
			pos++
		}
	}
	if pos == 0 || pos == n {
		return nil, fmt.Errorf("baseline: single-class training set")
	}
	prior := float64(pos) / float64(n)

	type colStat struct {
		dim   int
		info  float64
		edges []float64
		rates []float64
	}
	stats := make([]colStat, 0, d)
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i, x := range xs {
			col[i] = x[j]
		}
		edges := quantileEdges(col, cfg.Buckets)
		counts := make([]int, cfg.Buckets)
		posCounts := make([]int, cfg.Buckets)
		for i, v := range col {
			b := bucketOf(edges, v)
			counts[b]++
			if ys[i] {
				posCounts[b]++
			}
		}
		rates := make([]float64, cfg.Buckets)
		info := 0.0
		for b := range rates {
			// Laplace-smoothed conditional pass rate.
			p := (float64(posCounts[b]) + prior) / (float64(counts[b]) + 1)
			rates[b] = math.Log(p / prior)
			// Information proxy: weighted squared deviation from the prior.
			w := float64(counts[b]) / float64(n)
			info += w * (p - prior) * (p - prior)
		}
		stats = append(stats, colStat{dim: j, info: info, edges: edges, rates: rates})
	}
	sort.SliceStable(stats, func(a, b int) bool { return stats[a].info > stats[b].info })
	k := cfg.TopColumns
	if k > len(stats) {
		k = len(stats)
	}
	s := &CorrelationScorer{perItem: 0.3 + 0.02*float64(k)}
	for _, st := range stats[:k] {
		s.dims = append(s.dims, st.dim)
		s.edges = append(s.edges, st.edges)
		s.rates = append(s.rates, st.rates)
	}
	return s, nil
}

// quantileEdges returns bucket upper edges at uniform quantiles.
func quantileEdges(col []float64, buckets int) []float64 {
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	edges := make([]float64, buckets-1)
	for b := 1; b < buckets; b++ {
		edges[b-1] = mathx.QuantileSorted(sorted, float64(b)/float64(buckets))
	}
	return edges
}

// bucketOf returns the bucket index for value v.
func bucketOf(edges []float64, v float64) int {
	return sort.SearchFloat64s(edges, v)
}

// Score implements core.Scorer: the summed log-likelihood-ratio over the
// selected columns.
func (s *CorrelationScorer) Score(x mathx.Vec) float64 {
	total := 0.0
	for i, dim := range s.dims {
		total += s.rates[i][bucketOf(s.edges[i], x[dim])]
	}
	return total
}

// Name implements core.Scorer.
func (s *CorrelationScorer) Name() string { return "Joglekar" }

// Cost implements core.Scorer.
func (s *CorrelationScorer) Cost() float64 { return s.perItem }

// JoglekarFilter trains the [27]-style filter for a clause and wraps it in
// the PP curve machinery so it can be evaluated at a target accuracy.
// reducer is Identity for the raw-input variant or a fitted PCA for the
// "PCA + Joglekar" variant of Table 6.
func JoglekarFilter(clause string, reducer dimred.Reducer, train, val blob.Set, cfg CorrelationConfig) (*core.PP, error) {
	xs := make([]mathx.Vec, train.Len())
	for i, b := range train.Blobs {
		xs[i] = reducer.Reduce(b)
	}
	scorer, err := TrainCorrelation(xs, train.Labels, cfg)
	if err != nil {
		return nil, fmt.Errorf("baseline: joglekar for %q: %w", clause, err)
	}
	return core.NewPP(clause, reducer.Name()+"+Joglekar", reducer, scorer, val)
}
