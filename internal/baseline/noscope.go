package baseline

import (
	"fmt"
	"math"
	"sort"

	"probpred/internal/data"
	"probpred/internal/mathx"
	"probpred/internal/svm"
)

// The Appendix-B video object-detection pipelines. The PP variant
// (Figure 13) runs, per frame:
//
//  1. masked sampling — pixels outside the area of interest are ignored;
//  2. absolute background subtraction against empty footage — frames whose
//     relevant area barely deviates are declared empty;
//  3. relative background subtraction against the previous frame — static
//     frames reuse the previous frame's decision (frame redundancy);
//  4. a two-threshold SVM on the masked difference image — confident
//     accepts/rejects shortcut the reference DNN, the uncertain middle goes
//     to the (very expensive) reference detector.
//
// A NoScope-like variant (Figure 12) disables the mask and the two-stage
// subtraction and uses a costlier shallow-DNN-priced early filter.

// CascadeConfig tunes the pipeline.
type CascadeConfig struct {
	// TrainFrames is the prefix of the stream used to train the early
	// filter (the paper trains on the initial 10K frames). Zero selects
	// min(5000, half the stream).
	TrainFrames int
	// AbsThreshold is the drift-compensated mean absolute background
	// deviation below which a frame is declared empty. Zero selects 0.03.
	AbsThreshold float64
	// RelThreshold is the drift-compensated mean frame-to-frame deviation
	// below which the previous decision is reused. Zero selects 0.03.
	RelThreshold float64
	// AcceptQuantile bounds the false positives of the confident-accept
	// bar: the accept threshold sits at the (1−AcceptQuantile) quantile of
	// the training negatives' scores. RejectQuantile bounds the false
	// negatives of the confident-reject bar: the reject threshold sits at
	// the RejectQuantile quantile of the training positives' scores.
	// Frames scoring between the bars go to the reference DNN. Zeros
	// select 0.005 each.
	AcceptQuantile, RejectQuantile float64
	// UseMask enables the area-of-interest mask (on for the PP pipeline,
	// off for the NoScope-like variant).
	UseMask bool
	// UseRelativeBS enables the frame-redundancy stage.
	UseRelativeBS bool
	// FilterCost is the virtual per-frame cost of the early filter (SVM ≈ 1
	// for the PP pipeline; a shallow DNN ≈ 10 for NoScope).
	FilterCost float64
	// RawFeatures feeds the filter unsorted per-pixel differences (the
	// NoScope-like variant: its shallow DNN sees the frame layout and can
	// learn to ignore fixed nuisance regions). The default sorted order
	// statistics are the PP pipeline's translation-invariant features.
	RawFeatures bool
	// DNNCost is the virtual per-frame cost of the reference detector.
	// Zero selects 500.
	DNNCost float64
	// Seed drives training.
	Seed uint64
}

func (c *CascadeConfig) fill(streamLen int) {
	if c.TrainFrames == 0 {
		c.TrainFrames = 5000
		if half := streamLen / 2; c.TrainFrames > half {
			c.TrainFrames = half
		}
	}
	if c.AbsThreshold == 0 {
		c.AbsThreshold = 0.03
	}
	if c.RelThreshold == 0 {
		c.RelThreshold = 0.03
	}
	if c.AcceptQuantile == 0 {
		c.AcceptQuantile = 0.005
	}
	if c.RejectQuantile == 0 {
		c.RejectQuantile = 0.005
	}
	if c.FilterCost == 0 {
		c.FilterCost = 1
	}
	if c.DNNCost == 0 {
		c.DNNCost = 500
	}
}

// CascadeResult reports the Table 12 metrics for one run over the frames
// after the training prefix.
type CascadeResult struct {
	// Frames is the number of evaluated (post-training) frames.
	Frames int
	// PreProcReduction is the fraction of frames resolved by the mask +
	// background-subtraction stages.
	PreProcReduction float64
	// EarlyDrop is the fraction of the remaining frames resolved by the
	// two-threshold early filter.
	EarlyDrop float64
	// DNNFrames is how many frames reached the reference detector.
	DNNFrames int
	// Speedup is (frames × DNN cost) / total pipeline cost.
	Speedup float64
	// Accuracy is agreement with ground truth over all evaluated frames.
	Accuracy float64
	// Recall is the fraction of true object frames classified positive.
	Recall float64
}

// RunCascade trains the early filter on the stream prefix and runs the
// cascade over the remainder.
func RunCascade(v *data.VideoStream, cfg CascadeConfig) (*CascadeResult, error) {
	cfg.fill(len(v.Frames))
	if cfg.TrainFrames < 10 || cfg.TrainFrames >= len(v.Frames) {
		return nil, fmt.Errorf("baseline: cascade needs a training prefix, have %d frames", len(v.Frames))
	}
	feats := func(frame mathx.Vec) mathx.Vec {
		ds := diffs(v, frame, v.Background, cfg.UseMask)
		if cfg.RawFeatures {
			return ds
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ds)))
		if len(ds) > featureDims {
			ds = ds[:featureDims]
		}
		return ds
	}

	// Train the early filter on the prefix.
	var xs []mathx.Vec
	var ys []bool
	trainPos := 0
	for i := 0; i < cfg.TrainFrames; i++ {
		xs = append(xs, feats(v.Frames[i].Dense))
		ys = append(ys, v.HasObject[i])
		if v.HasObject[i] {
			trainPos++
		}
	}
	if trainPos == 0 || trainPos == cfg.TrainFrames {
		return nil, fmt.Errorf("baseline: training prefix has a single class (%d/%d object frames)",
			trainPos, cfg.TrainFrames)
	}
	model, err := svm.Train(xs, ys, svm.Config{Seed: cfg.Seed, ClassWeightPos: 4})
	if err != nil {
		return nil, fmt.Errorf("baseline: cascade filter: %w", err)
	}
	// Two thresholds from the training-score distributions.
	var posScores, negScores []float64
	for i, x := range xs {
		s := model.Score(x)
		if ys[i] {
			posScores = append(posScores, s)
		} else {
			negScores = append(negScores, s)
		}
	}
	acceptTh := mathx.Quantile(negScores, 1-cfg.AcceptQuantile) // few negatives above
	rejectTh := mathx.Quantile(posScores, cfg.RejectQuantile)   // few positives below
	// A frame is confidently accepted only when it clears BOTH bars from
	// above, confidently rejected only when it clears both from below;
	// anything between goes to the reference DNN. This holds whether the
	// bars overlap (noisy classes) or cross (clean separation: the gap
	// between the distributions is the uncertain band).
	hiTh := math.Max(acceptTh, rejectTh)
	loTh := math.Min(acceptTh, rejectTh)

	res := &CascadeResult{}
	totalCost := 0.0
	prevDecision := false
	havePrev := false
	var prevFrame mathx.Vec
	correct, truePos, posSeen := 0, 0, 0
	bsCost := 0.5 // mask + subtraction per stage
	preResolved, filterResolved := 0, 0

	for i := cfg.TrainFrames; i < len(v.Frames); i++ {
		frame := v.Frames[i].Dense
		truth := v.HasObject[i]
		res.Frames++
		if truth {
			posSeen++
		}
		var decision bool
		resolved := false

		// Stage 1: absolute background subtraction in the relevant area.
		totalCost += bsCost
		absDev := meanAbsDev(v, frame, v.Background, cfg.UseMask)
		if absDev < cfg.AbsThreshold {
			decision, resolved = false, true
			preResolved++
		}
		// Stage 2: relative subtraction — reuse the previous decision for
		// static frames.
		if !resolved && cfg.UseRelativeBS && havePrev {
			totalCost += bsCost
			if meanAbsDev(v, frame, prevFrame, cfg.UseMask) < cfg.RelThreshold {
				decision, resolved = prevDecision, true
				preResolved++
			}
		}
		// Stage 3: two-threshold early filter.
		if !resolved {
			totalCost += cfg.FilterCost
			s := model.Score(feats(frame))
			switch {
			case s >= hiTh:
				decision, resolved = true, true
				filterResolved++
			case s <= loTh:
				decision, resolved = false, true
				filterResolved++
			}
		}
		// Stage 4: reference DNN.
		if !resolved {
			totalCost += cfg.DNNCost
			decision = truth // the reference detector is ground truth here
			res.DNNFrames++
		}
		if decision == truth {
			correct++
		}
		if decision && truth {
			truePos++
		}
		prevDecision, prevFrame, havePrev = decision, frame, true
	}
	res.PreProcReduction = float64(preResolved) / float64(res.Frames)
	if rem := res.Frames - preResolved; rem > 0 {
		res.EarlyDrop = float64(filterResolved) / float64(rem)
	}
	res.Accuracy = float64(correct) / float64(res.Frames)
	if posSeen > 0 {
		res.Recall = float64(truePos) / float64(posSeen)
	} else {
		res.Recall = 1
	}
	res.Speedup = float64(res.Frames) * cfg.DNNCost / totalCost
	return res, nil
}

// diffs collects per-pixel deviations between two frames over the relevant
// area, compensated for global illumination drift by subtracting the median
// deviation (fixed-camera background subtraction standard practice).
func diffs(v *data.VideoStream, a, b mathx.Vec, useMask bool) mathx.Vec {
	w := v.Width
	relevantW := w
	if useMask {
		relevantW = w - v.MaskCols
	}
	out := make(mathx.Vec, 0, relevantW*v.Height)
	for y := 0; y < v.Height; y++ {
		for x := 0; x < relevantW; x++ {
			i := y*w + x
			out = append(out, a[i]-b[i])
		}
	}
	med := mathx.Quantile(out, 0.5)
	for i := range out {
		out[i] -= med
	}
	return out
}

// featureDims is the width of the early filter's input: the largest
// drift-compensated deviations, sorted descending — order statistics are
// translation-invariant, so the filter generalizes to object positions it
// never saw in training.
const featureDims = 32

// meanAbsDev is the drift-compensated mean absolute pixel deviation between
// two frames over the relevant area.
func meanAbsDev(v *data.VideoStream, a, b mathx.Vec, useMask bool) float64 {
	ds := diffs(v, a, b, useMask)
	sum := 0.0
	for _, d := range ds {
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(ds))
}
