// Package baseline implements the comparison systems of §8: SortP (optimal
// predicate/UDF ordering, Deshpande et al. [17] over Babu et al. [7]), the
// correlated-input-column filter of Joglekar et al. [27], and the
// NoScope-style video cascade of Appendix B. NoP — running the query as-is —
// is simply an engine plan with no PP filter.
package baseline

import (
	"sort"

	"probpred/internal/blob"
	"probpred/internal/engine"
	"probpred/internal/query"
)

// SortPClause is one orderable unit of a SortP plan: a predicate clause (or
// group), the not-yet-materialized UDFs it needs, and its estimated pass
// rate.
type SortPClause struct {
	Pred     query.Pred
	UDFs     []engine.Processor
	PassRate float64
}

// cost returns the clause's incremental per-row cost.
func (c SortPClause) cost() float64 {
	total := 0.01 // the σ itself
	for _, u := range c.UDFs {
		total += u.Cost()
	}
	return total
}

// rank is the classic ordering metric cost/(1−passRate): cheap, highly
// reductive clauses first.
func (c SortPClause) rank() float64 {
	drop := 1 - c.PassRate
	if drop <= 0 {
		return 1e18
	}
	return c.cost() / drop
}

// Order sorts clauses by ascending rank (the optimal ordering for
// independent predicates).
func Order(clauses []SortPClause) []SortPClause {
	out := append([]SortPClause(nil), clauses...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].rank() < out[b].rank() })
	return out
}

// Plan builds the SortP physical plan: the prelude UDFs run first, then each
// clause group executes as its own serialized stage — evaluating a predicate
// before deciding whether to run the next group's UDFs is what saves
// resources but lengthens the critical path (§8.2: SortP "substantially
// increases the job latency because serializing the predicates and UDFs
// leads to longer critical paths").
func Plan(blobs []blob.Blob, prelude []engine.Processor, clauses []SortPClause) engine.Plan {
	ops := []engine.Operator{&engine.Scan{Blobs: blobs}}
	emitted := map[string]bool{}
	for _, p := range prelude {
		ops = append(ops, &engine.Process{P: p})
		emitted[p.Name()] = true
	}
	for i, c := range Order(clauses) {
		if i > 0 {
			ops = append(ops, &engine.Barrier{Label: "sortp"})
		}
		// Each clause lists every UDF its columns need; a UDF already
		// materialized by an earlier stage is not re-run.
		for _, u := range c.UDFs {
			if emitted[u.Name()] {
				continue
			}
			emitted[u.Name()] = true
			ops = append(ops, &engine.Process{P: u})
		}
		ops = append(ops, &engine.Select{Pred: c.Pred})
	}
	return engine.Plan{Ops: ops}
}
