package baseline

import (
	"testing"

	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/dimred"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/query"
	"probpred/internal/udf"
)

// fakeProc is a zero-work processor with a declared cost.
type fakeProc struct {
	name string
	cost float64
}

func (f fakeProc) Name() string                             { return f.name }
func (f fakeProc) Cost() float64                            { return f.cost }
func (f fakeProc) Apply(r engine.Row) ([]engine.Row, error) { return []engine.Row{r}, nil }

func TestOrderByRank(t *testing.T) {
	cheapReductive := SortPClause{Pred: query.MustParse("a=1"),
		UDFs: []engine.Processor{fakeProc{"u1", 1}}, PassRate: 0.1}
	expensiveLoose := SortPClause{Pred: query.MustParse("b=1"),
		UDFs: []engine.Processor{fakeProc{"u2", 50}}, PassRate: 0.9}
	ordered := Order([]SortPClause{expensiveLoose, cheapReductive})
	if ordered[0].Pred.String() != "a=1" {
		t.Fatalf("cheap reductive clause should run first, got %s", ordered[0].Pred)
	}
}

func TestOrderDegeneratePassRate(t *testing.T) {
	neverDrops := SortPClause{Pred: query.MustParse("a=1"), PassRate: 1}
	drops := SortPClause{Pred: query.MustParse("b=1"), PassRate: 0.5}
	ordered := Order([]SortPClause{neverDrops, drops})
	if ordered[0].Pred.String() != "b=1" {
		t.Fatal("non-reductive clause must rank last")
	}
}

func TestSortPPlanSavesResourcesButAddsLatency(t *testing.T) {
	blobs := data.Traffic(data.TrafficConfig{Rows: 2000, Seed: 1})
	pred := query.MustParse("s>60 & c=red")
	// NoP plan: all UDFs then the full predicate.
	procs, err := udf.TrafficPipeline(pred, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	nopOps := []engine.Operator{&engine.Scan{Blobs: blobs}}
	for _, p := range procs {
		nopOps = append(nopOps, &engine.Process{P: p})
	}
	nopOps = append(nopOps, &engine.Select{Pred: pred})
	nop, err := engine.Run(engine.Plan{Ops: nopOps}, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// SortP: speed clause (pass ~0.13, cheap UDF) before color clause.
	speedUDF, _ := udf.TrafficUDFFor("s", 0, 3)
	colorUDF, _ := udf.TrafficUDFFor("c", 0, 4)
	plan := Plan(blobs, []engine.Processor{udf.VehDetector{}}, []SortPClause{
		{Pred: query.MustParse("c=red"), UDFs: []engine.Processor{colorUDF}, PassRate: 0.12},
		{Pred: query.MustParse("s>60"), UDFs: []engine.Processor{speedUDF}, PassRate: 0.13},
	})
	sortp, err := engine.Run(plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sortp.Rows) != len(nop.Rows) {
		t.Fatalf("SortP changed results: %d vs %d", len(sortp.Rows), len(nop.Rows))
	}
	if sortp.ClusterTime >= nop.ClusterTime {
		t.Fatalf("SortP should save resources: %v vs %v", sortp.ClusterTime, nop.ClusterTime)
	}
	if sortp.Latency <= nop.Latency {
		t.Fatalf("SortP should increase latency (serialized stages): %v vs %v",
			sortp.Latency, nop.Latency)
	}
}

func TestTrainCorrelationErrors(t *testing.T) {
	if _, err := TrainCorrelation(nil, nil, CorrelationConfig{}); err == nil {
		t.Fatal("expected error for empty set")
	}
	if _, err := TrainCorrelation([]mathx.Vec{{1}}, []bool{true, false}, CorrelationConfig{}); err == nil {
		t.Fatal("expected error for mismatch")
	}
	if _, err := TrainCorrelation([]mathx.Vec{{1}, {2}}, []bool{true, true}, CorrelationConfig{}); err == nil {
		t.Fatal("expected error for single class")
	}
}

func TestCorrelationScorerLearnsCorrelatedColumn(t *testing.T) {
	// Column 2 fully determines the label; columns 0, 1 are noise. The
	// scorer must separate the classes.
	rng := mathx.NewRNG(5)
	var xs []mathx.Vec
	var ys []bool
	for i := 0; i < 2000; i++ {
		label := rng.Bernoulli(0.3)
		v := mathx.Vec{rng.NormFloat64(), rng.NormFloat64(), 0}
		if label {
			v[2] = 1 + rng.Float64()
		} else {
			v[2] = -1 - rng.Float64()
		}
		xs = append(xs, v)
		ys = append(ys, label)
	}
	s, err := TrainCorrelation(xs, ys, CorrelationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range xs {
		if (s.Score(x) > 0) == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Fatalf("correlated column not learned: accuracy %v", acc)
	}
	if s.Name() != "Joglekar" || s.Cost() <= 0 {
		t.Fatal("bad metadata")
	}
}

func TestJoglekarWeakOnDenseImageBlobs(t *testing.T) {
	// The paper's key comparison result (Table 6): on dense ML blobs where
	// labels depend on non-linear combinations of dimensions, per-column
	// statistics filter poorly while PPs filter well.
	d := data.UCF101(data.UCFConfig{Clips: 2400, Seed: 6})
	a := 0.95
	var ppSum, jogSum float64
	for cat := 0; cat < 4; cat++ {
		set := d.SetFor(cat)
		rng := mathx.NewRNG(uint64(7 + cat))
		train, val, test := set.Split(rng, 0.6, 0.2)
		jog, err := JoglekarFilter("act", dimred.Identity{Dim: set.Dim()}, train, val,
			CorrelationConfig{})
		if err != nil {
			t.Fatal(err)
		}
		pp, err := core.Train("act", train, val, core.TrainConfig{Approach: "PCA+KDE",
			Seed: uint64(8 + cat)})
		if err != nil {
			t.Fatal(err)
		}
		jogSum += core.Evaluate(jog, test, a).Reduction
		ppSum += core.Evaluate(pp, test, a).Reduction
	}
	if ppSum <= jogSum {
		t.Fatalf("PP (avg r=%v) should beat Joglekar (avg r=%v) on dense video blobs",
			ppSum/4, jogSum/4)
	}
}

func TestJoglekarFilterIsWellFormedPP(t *testing.T) {
	d := data.LSHTC(data.LSHTCConfig{Docs: 1000, Seed: 9})
	set := d.SetFor(1)
	rng := mathx.NewRNG(10)
	train, val, _ := set.Split(rng, 0.6, 0.2)
	jog, err := JoglekarFilter("cat=1", dimred.Identity{Dim: set.Dim()}, train, val,
		CorrelationConfig{TopColumns: 5})
	if err != nil {
		t.Fatal(err)
	}
	if jog.Approach != "Raw+Joglekar" {
		t.Fatalf("approach = %q", jog.Approach)
	}
	if r := jog.Reduction(0.9); r < 0 || r > 1 {
		t.Fatalf("reduction out of range: %v", r)
	}
}

func TestCascadePPPipeline(t *testing.T) {
	v := data.Coral(data.CoralConfig{Frames: 12000, Seed: 11})
	res, err := RunCascade(v, CascadeConfig{
		UseMask: true, UseRelativeBS: true, FilterCost: 1, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 {
		t.Fatal("no frames evaluated")
	}
	// The stream is >99% empty background; pre-processing must resolve the
	// overwhelming majority of frames (paper: 0.993-0.9997).
	if res.PreProcReduction < 0.9 {
		t.Fatalf("pre-proc reduction = %v, want >= 0.9", res.PreProcReduction)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("accuracy = %v, want >= 0.95", res.Accuracy)
	}
	// Orders of magnitude speedup over running the DNN on every frame.
	if res.Speedup < 50 {
		t.Fatalf("speedup = %vx, want >= 50x", res.Speedup)
	}
}

func TestCascadeMaskHelpsOnCoral(t *testing.T) {
	v := data.Coral(data.CoralConfig{Frames: 12000, Seed: 13})
	masked, err := RunCascade(v, CascadeConfig{UseMask: true, UseRelativeBS: true, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	unmasked, err := RunCascade(v, CascadeConfig{UseMask: false, UseRelativeBS: true, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	// The irrelevant shimmering region defeats background subtraction when
	// unmasked, so the masked pipeline resolves more frames early.
	if masked.PreProcReduction <= unmasked.PreProcReduction {
		t.Fatalf("mask did not help: %v vs %v", masked.PreProcReduction, unmasked.PreProcReduction)
	}
}

func TestCascadeErrors(t *testing.T) {
	v := data.Coral(data.CoralConfig{Frames: 30, Seed: 15})
	if _, err := RunCascade(v, CascadeConfig{TrainFrames: 29}); err == nil {
		// 29 frames of training on a 30-frame stream likely has one class.
		t.Skip("degenerate stream happened to train")
	}
}

func TestCascadeSquareBusier(t *testing.T) {
	sq := data.Square(data.CoralConfig{Frames: 12000, Seed: 16})
	res, err := RunCascade(sq, CascadeConfig{UseMask: true, UseRelativeBS: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	coral := data.Coral(data.CoralConfig{Frames: 12000, Seed: 16})
	cres, err := RunCascade(coral, CascadeConfig{UseMask: true, UseRelativeBS: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// The busier square clip cannot be reduced as aggressively (Table 12:
	// square 0.967 vs coral 0.993+).
	if res.PreProcReduction >= cres.PreProcReduction {
		t.Fatalf("square (%v) should reduce less than coral (%v)",
			res.PreProcReduction, cres.PreProcReduction)
	}
}
