package data

import (
	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// VideoStream is a synthetic fixed-camera surveillance video (the NoScope
// "coral" / "square" clips of Appendix B): frames are flattened pixel grids;
// almost all frames are empty background; objects enter rarely and persist
// for several frames (frame redundancy), drifting as they go.
type VideoStream struct {
	// Name identifies the clip ("coral" or "square").
	Name string
	// Width and Height are the frame dimensions; blobs are row-major
	// flattened pixels of length Width*Height.
	Width, Height int
	// Frames holds the pixel blobs in temporal order.
	Frames []blob.Blob
	// HasObject marks frames containing a target object inside the
	// area of interest.
	HasObject []bool
	// MaskCols is the number of rightmost pixel columns that are outside
	// the area of interest (shimmering water in the coral clip); the
	// Appendix-B pipeline masks them out.
	MaskCols int
	// Background is an empty reference footage frame for absolute
	// background subtraction.
	Background mathx.Vec
}

// Set returns the stream as a labeled blob set for PP training.
func (v *VideoStream) Set() blob.Set {
	return blob.Set{Blobs: v.Frames, Labels: v.HasObject}
}

// InMask reports whether pixel column x lies outside the area of interest.
func (v *VideoStream) InMask(x int) bool { return x >= v.Width-v.MaskCols }

// CoralConfig shapes the surveillance stream generator.
type CoralConfig struct {
	// Frames is the stream length. Zero selects 20000.
	Frames int
	// Width and Height are the frame dimensions. Zero selects 16×16.
	Width, Height int
	// EnterProb is the per-frame probability that a new object enters when
	// none is present. Zero selects 0.0015 (the coral clip is >99% empty).
	EnterProb float64
	// StayProb is the per-frame probability that a present object stays.
	// Zero selects 0.88 (objects persist ~8 frames).
	StayProb float64
	// MaskCols is the number of irrelevant rightmost columns. Zero
	// selects a third of the width.
	MaskCols int
	// Seed drives generation.
	Seed uint64
}

func (c *CoralConfig) fill() {
	if c.Frames == 0 {
		c.Frames = 20000
	}
	if c.Width == 0 {
		c.Width = 16
	}
	if c.Height == 0 {
		c.Height = 16
	}
	if c.EnterProb == 0 {
		c.EnterProb = 0.0015
	}
	if c.StayProb == 0 {
		c.StayProb = 0.88
	}
	if c.MaskCols == 0 {
		c.MaskCols = c.Width / 3
	}
}

// Coral generates the coral-reef-camera-like stream.
func Coral(cfg CoralConfig) *VideoStream {
	cfg.fill()
	return videoStream("coral", cfg)
}

// Square generates the busier "square" clip: a public square with an order
// of magnitude more object activity (the paper reports ~96.7% empty frames
// versus coral's 99.8%).
func Square(cfg CoralConfig) *VideoStream {
	cfg.fill()
	cfg.EnterProb = 0.012
	cfg.StayProb = 0.75
	return videoStream("square", cfg)
}

func videoStream(name string, cfg CoralConfig) *VideoStream {
	rng := mathx.NewRNG(cfg.Seed ^ 0xc04a1)
	w, h := cfg.Width, cfg.Height
	npx := w * h
	base := make(mathx.Vec, npx)
	for i := range base {
		base[i] = 0.3 + 0.4*rng.Float64()
	}
	v := &VideoStream{Name: name, Width: w, Height: h, MaskCols: cfg.MaskCols,
		Background: mathx.CloneVec(base)}
	objectPresent := false
	objX, objY := 0, 0
	relevantW := w - cfg.MaskCols
	for f := 0; f < cfg.Frames; f++ {
		if objectPresent {
			if !rng.Bernoulli(cfg.StayProb) {
				objectPresent = false
			} else {
				// Drift by at most one pixel, staying in the relevant area.
				objX = clampInt(objX+rng.Intn(3)-1, 1, relevantW-2)
				objY = clampInt(objY+rng.Intn(3)-1, 1, h-2)
			}
		} else if rng.Bernoulli(cfg.EnterProb) {
			objectPresent = true
			objX = 1 + rng.Intn(relevantW-2)
			objY = 1 + rng.Intn(h-2)
		}
		frame := make(mathx.Vec, npx)
		drift := 0.02 * rng.NormFloat64() // global illumination drift
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				px := base[i] + drift + rng.NormFloat64()*0.02
				if x >= relevantW {
					// Irrelevant shimmering region: heavy noise.
					px += rng.NormFloat64() * 0.3
				}
				frame[i] = px
			}
		}
		if objectPresent {
			// A bright 3×3 object patch.
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					i := (objY+dy)*w + (objX + dx)
					frame[i] += 0.8
				}
			}
		}
		b := blob.FromDense(f, frame)
		b.Truth = map[string]float64{"object": boolTo01(objectPresent)}
		v.Frames = append(v.Frames, b)
		v.HasObject = append(v.HasObject, objectPresent)
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
