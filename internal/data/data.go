// Package data provides the synthetic dataset generators that substitute for
// the paper's real datasets (§7 case studies). Each generator reproduces the
// property of its real counterpart that determines PP behaviour:
//
//   - LSHTC-like: sparse bag-of-words, linearly separable categories
//     (FH+SVM wins, §8.1).
//   - COCO-like / ImageNet-like: dense high-dimensional blobs whose labels
//     are a non-linear (radial, in a latent space) function of the input
//     (DNN needed; ImageNet-like shares the generative process with a domain
//     shift to exercise cross-training, Table 4).
//   - SUNAttribute-like: dense, lower complexity (PCA+KDE suffices).
//   - UCF101-like: multi-modal clusters per activity (distinctive but not
//     linearly separable; PCA+KDE beats SVM by ~10%, Table 4).
//   - DETRAC-like traffic: vehicle rows with type/color/speed/route
//     attributes for the TRAF-20 benchmark (§8.2).
//   - Coral-like video: a mostly-empty surveillance frame stream for the
//     NoScope comparison (Appendix B).
//
// All generators are deterministic functions of a seed.
package data

import (
	"fmt"

	"probpred/internal/blob"
)

// Categorical is a dataset whose blobs carry zero or more category labels;
// queries retrieve blobs having a given category (§7 Cases 1-3).
type Categorical struct {
	// Name identifies the dataset ("lshtc", "coco", ...).
	Name string
	// Blobs holds every item.
	Blobs []blob.Blob
	// Members[k] lists, for category k, whether each blob belongs to it.
	Members [][]bool
}

// NumCategories returns the number of categories.
func (d *Categorical) NumCategories() int { return len(d.Members) }

// SetFor returns the labeled set for the single-clause query
// "has category cat".
func (d *Categorical) SetFor(cat int) blob.Set {
	if cat < 0 || cat >= len(d.Members) {
		panic(fmt.Sprintf("data: category %d out of range [0,%d)", cat, len(d.Members)))
	}
	return blob.Set{Blobs: d.Blobs, Labels: d.Members[cat]}
}

// Selectivity returns the fraction of blobs in category cat.
func (d *Categorical) Selectivity(cat int) float64 {
	n := 0
	for _, m := range d.Members[cat] {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(d.Blobs))
}
