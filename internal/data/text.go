package data

import (
	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// LSHTCConfig shapes the LSHTC-like sparse document generator.
type LSHTCConfig struct {
	// Docs is the number of documents. Zero selects 3000.
	Docs int
	// Vocab is the vocabulary size (dimensionality). Zero selects 2000
	// (scaled down from the real 244K while staying sparse).
	Vocab int
	// Categories is the number of categories. Zero selects 40.
	Categories int
	// IndicatorWords is the number of vocabulary words indicative of each
	// category. Zero selects 12.
	IndicatorWords int
	// DocWords is the mean number of word tokens per document. Zero
	// selects 60.
	DocWords int
	// Seed drives generation.
	Seed uint64
}

func (c *LSHTCConfig) fill() {
	if c.Docs == 0 {
		c.Docs = 3000
	}
	if c.Vocab == 0 {
		c.Vocab = 2000
	}
	if c.Categories == 0 {
		c.Categories = 40
	}
	if c.IndicatorWords == 0 {
		c.IndicatorWords = 24
	}
	if c.DocWords == 0 {
		c.DocWords = 60
	}
}

// LSHTC generates the sparse document-classification dataset. Category
// membership is many-to-many (a document can carry several categories, as in
// the real LSHTC); each category has a set of indicator words whose elevated
// frequency in member documents makes the classes linearly separable over
// the bag-of-words features — the property that makes FH+SVM the winning PP
// approach (§8.1 model-selection discussion).
func LSHTC(cfg LSHTCConfig) *Categorical {
	cfg.fill()
	rng := mathx.NewRNG(cfg.Seed ^ 0x15417c)
	// Indicator word sets per category, drawn from a shared topical pool:
	// like the real hierarchical LSHTC labels, categories share vocabulary,
	// so any single word only weakly indicates any one category while the
	// *combination* identifies it. Linear models over (hashed) word vectors
	// learn the combination; per-column statistics cannot (Table 6).
	poolSize := 20 * cfg.IndicatorWords
	if poolSize > cfg.Vocab/2 {
		poolSize = cfg.Vocab / 2
	}
	indicators := make([][]int, cfg.Categories)
	for k := range indicators {
		words := make([]int, cfg.IndicatorWords)
		for i := range words {
			words[i] = rng.Intn(poolSize)
		}
		indicators[k] = words
	}
	// Per-category base rates: selectivities spread from ~2% to ~20%, like
	// the 1-in-several to 1-in-thousands range in Table 1 (compressed so
	// validation splits still contain positives).
	rates := make([]float64, cfg.Categories)
	for k := range rates {
		rates[k] = 0.02 + 0.18*rng.Float64()
	}
	d := &Categorical{Name: "lshtc"}
	d.Members = make([][]bool, cfg.Categories)
	for k := range d.Members {
		d.Members[k] = make([]bool, cfg.Docs)
	}
	bgStart := poolSize // background words live outside the topical pool
	for i := 0; i < cfg.Docs; i++ {
		counts := map[int]float64{}
		// Background words, Zipf-ish by sampling squared-uniform indices.
		for w := 0; w < cfg.DocWords; w++ {
			u := rng.Float64()
			idx := bgStart + int(u*u*float64(cfg.Vocab-bgStart))
			if idx >= cfg.Vocab {
				idx = cfg.Vocab - 1
			}
			counts[idx]++
		}
		// Category memberships and their indicator words. Each member
		// document uses only about a third of the category's vocabulary,
		// each word once or twice: no single word identifies the category
		// (as in the real 244K-word corpus), so filters must aggregate
		// evidence across many columns — which is why per-column statistics
		// (Joglekar et al.) trail FH+SVM here (§8.1, Table 6).
		for k := 0; k < cfg.Categories; k++ {
			if !rng.Bernoulli(rates[k]) {
				continue
			}
			d.Members[k][i] = true
			for _, w := range indicators[k] {
				if rng.Bernoulli(0.5) {
					counts[w] += 1 + float64(rng.Intn(2))
				}
			}
		}
		idx := make([]int, 0, len(counts))
		val := make([]float64, 0, len(counts))
		for w, c := range counts {
			idx = append(idx, w)
			val = append(val, c)
		}
		d.Blobs = append(d.Blobs, blob.FromSparse(i, mathx.NewSparse(cfg.Vocab, idx, val)))
	}
	return d
}
