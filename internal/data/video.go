package data

import (
	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// UCFConfig shapes the UCF101-like video activity dataset.
type UCFConfig struct {
	// Clips is the number of video clips. Zero selects 2400.
	Clips int
	// Dim is the blob dimensionality (concatenated raw frame features,
	// §5.6). Zero selects 64.
	Dim int
	// Latent is the latent motion-space dimensionality. Zero selects 8.
	Latent int
	// Activities is the number of action categories (the real dataset has
	// 101; we scale to 20). Zero selects 20.
	Activities int
	// ModesPerActivity is how many distinct sub-styles each activity has;
	// multi-modality is what defeats linear one-vs-rest separation and
	// makes PCA+KDE the winning approach (Table 4). Zero selects 3.
	ModesPerActivity int
	// Seed drives generation.
	Seed uint64
}

func (c *UCFConfig) fill() {
	if c.Clips == 0 {
		c.Clips = 2400
	}
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.Latent == 0 {
		c.Latent = 8
	}
	if c.Activities == 0 {
		c.Activities = 20
	}
	if c.ModesPerActivity == 0 {
		c.ModesPerActivity = 3
	}
}

// UCF101 generates the video-activity-recognition dataset: each clip belongs
// to exactly one activity; an activity is a mixture of a few well-separated
// Gaussian modes in a latent space, linearly mixed into blob space with
// noise. The activities are "distinctive" (clusters are far apart) but not
// linearly separable one-vs-rest because of the multi-modal structure —
// matching the paper's observation that PCA+KDE suffices on UCF101 and
// outperforms SVM by ~10% reduction (§8.1, Table 4).
func UCF101(cfg UCFConfig) *Categorical {
	cfg.fill()
	shared := mathx.NewRNG(cfg.Seed ^ 0x0cf101)
	mix := randomMatrix(cfg.Dim, cfg.Latent, shared)
	modes := make([][]mathx.Vec, cfg.Activities)
	for k := range modes {
		modes[k] = make([]mathx.Vec, cfg.ModesPerActivity)
		for m := range modes[k] {
			c := make(mathx.Vec, cfg.Latent)
			if m%2 == 1 {
				// Antipodal sub-style: the same activity seen "mirrored"
				// (e.g. rowing left-to-right vs right-to-left). No
				// hyperplane scores both a mode and its mirror high, so
				// one-vs-rest linear separation fails while density-based
				// classification is unaffected — the UCF101 property behind
				// Table 4's PCA+KDE > SVM gap.
				copy(c, modes[k][m-1])
				mathx.Scale(-1, c)
			} else {
				for j := range c {
					c[j] = shared.NormFloat64() * 1.7
				}
			}
			modes[k][m] = c
		}
	}
	rng := mathx.NewRNG(cfg.Seed ^ 0xac7)
	d := &Categorical{Name: "ucf101"}
	d.Members = make([][]bool, cfg.Activities)
	for k := range d.Members {
		d.Members[k] = make([]bool, cfg.Clips)
	}
	for i := 0; i < cfg.Clips; i++ {
		k := rng.Intn(cfg.Activities)
		m := rng.Intn(cfg.ModesPerActivity)
		z := make(mathx.Vec, cfg.Latent)
		for j := range z {
			z[j] = modes[k][m][j] + rng.NormFloat64()*0.8
		}
		v := mix.MulVec(z)
		// Per-clip brightness/contrast variation: a random common-mode
		// offset confounds individual raw columns (weakening per-column
		// statistics like Joglekar's) while PCA isolates it into a single
		// component the KDE can ignore.
		offset := rng.NormFloat64() * 2.0
		for j := range v {
			v[j] += offset + rng.NormFloat64()*0.3
		}
		d.Members[k][i] = true
		d.Blobs = append(d.Blobs, blob.FromDense(i, v))
	}
	return d
}
