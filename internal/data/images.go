package data

import (
	"math"
	"sort"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// ImageConfig shapes the COCO-like / ImageNet-like dense image generators.
type ImageConfig struct {
	// Items is the number of images. Zero selects 3000.
	Items int
	// Dim is the blob dimensionality (the "raw pixels"). Zero selects 96.
	Dim int
	// Latent is the latent factor dimensionality. Zero selects 8.
	Latent int
	// Categories is the number of object classes. Zero selects 24 (the
	// paper uses the 80 COCO classes; we scale down).
	Categories int
	// Noise is the observation noise added to the mixed blob. Zero selects
	// 0.25 for COCO-like clutter; ImageNet uses a cleaner 0.08.
	Noise float64
	// Distractor adds a second random latent component to the blob,
	// emulating COCO's multi-object clutter. Zero disables.
	Distractor float64
	// Shift translates the latent distribution (the ImageNet domain shift
	// for cross-training experiments). Zero disables.
	Shift float64
	// Seed drives sampling of the latent points. The mixing matrix and
	// class centers come from SharedSeed so that COCO-like and
	// ImageNet-like datasets describe the *same* classes.
	Seed uint64
	// SharedSeed fixes the mixing matrix and class centers. Zero selects a
	// default shared across COCO/ImageNet.
	SharedSeed uint64
}

func (c *ImageConfig) fill() {
	if c.Items == 0 {
		c.Items = 3000
	}
	if c.Dim == 0 {
		c.Dim = 96
	}
	if c.Latent == 0 {
		c.Latent = 8
	}
	if c.Categories == 0 {
		c.Categories = 24
	}
	if c.SharedSeed == 0 {
		c.SharedSeed = 0xc0c0
	}
}

// COCO generates the COCO-like dataset: blobs are a fixed non-linear mixing
// (tanh of a random projection) of latent factors plus clutter, and class
// membership is radial in the latent space — non-linearly separable in blob
// space, which is why DNN PPs are needed (§8.1, Table 4).
func COCO(seed uint64) *Categorical {
	return imageDataset("coco", ImageConfig{Noise: 0.25, Distractor: 0.5, Seed: seed})
}

// ImageNet generates the ImageNet-like dataset: the same classes (same
// mixing matrix and class centers) sampled with a domain shift and less
// clutter. PPs trained on COCO-like data apply here with degraded but useful
// reduction (cross-training, Table 4).
func ImageNet(seed uint64) *Categorical {
	return imageDataset("imagenet", ImageConfig{Noise: 0.08, Shift: 0.3, Seed: seed ^ 0x1e7})
}

// SUNAttribute generates the SUNAttribute-like dataset: simpler scenes —
// linear mixing, lower dimensionality, attributes defined by intervals of
// single latent factors. PCA recovers the latent space and KDE separates the
// interval structure (§8.1: "for the relatively simple images in
// SUNAttribute, PCA + KDE leads to good PPs").
func SUNAttribute(seed uint64) *Categorical {
	cfg := ImageConfig{Items: 2500, Dim: 64, Latent: 4, Categories: 30,
		Noise: 0.1, Seed: seed, SharedSeed: 0x5c31e}
	cfg.fill()
	shared := mathx.NewRNG(cfg.SharedSeed)
	mix := randomMatrix(cfg.Dim, cfg.Latent, shared)
	// Attribute k is radial over a pair of latent dimensions: compact
	// non-linear structure that KDE separates well after PCA recovers the
	// latent space, while no single raw column carries it (each raw column
	// mixes all latents), keeping per-column statistics weak.
	type attr struct {
		d1, d2 int
		c1, c2 float64
	}
	attrs := make([]attr, cfg.Categories)
	for k := range attrs {
		d1 := k % cfg.Latent
		d2 := (k + 1 + k/cfg.Latent) % cfg.Latent
		if d2 == d1 {
			d2 = (d1 + 1) % cfg.Latent
		}
		attrs[k] = attr{d1: d1, d2: d2, c1: shared.NormFloat64() * 0.7, c2: shared.NormFloat64() * 0.7}
	}
	rng := mathx.NewRNG(cfg.Seed ^ 0x5a1)
	d := &Categorical{Name: "sun"}
	d.Members = make([][]bool, cfg.Categories)
	for k := range d.Members {
		d.Members[k] = make([]bool, cfg.Items)
	}
	zs := make([]mathx.Vec, cfg.Items)
	for i := range zs {
		z := make(mathx.Vec, cfg.Latent)
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		zs[i] = z
		v := mix.MulVec(z) // linear mixing: "simple" scenes
		// Scene-wide illumination offset: harmless to PCA+KDE (it lands in
		// one principal component) but it confounds raw per-column
		// statistics.
		offset := rng.NormFloat64() * 1.5
		for j := range v {
			v[j] += offset + rng.NormFloat64()*cfg.Noise
		}
		d.Blobs = append(d.Blobs, blob.FromDense(i, v))
	}
	// Radii tuned per attribute to hit selectivities 0.1-0.3.
	for k, a := range attrs {
		target := 0.1 + 0.2*mathx.NewRNG(cfg.SharedSeed^uint64(k)).Float64()
		dists := make([]float64, cfg.Items)
		for i, z := range zs {
			dx := z[a.d1] - a.c1
			dy := z[a.d2] - a.c2
			dists[i] = math.Sqrt(dx*dx + dy*dy)
		}
		radius := mathx.Quantile(dists, target)
		for i := range zs {
			d.Members[k][i] = dists[i] <= radius
		}
	}
	return d
}

// imageDataset builds COCO-like / ImageNet-like data with radial classes in
// a shared latent space.
func imageDataset(name string, cfg ImageConfig) *Categorical {
	cfg.fill()
	shared := mathx.NewRNG(cfg.SharedSeed)
	mix := randomMatrix(cfg.Dim, cfg.Latent, shared)
	centers := make([]mathx.Vec, cfg.Categories)
	targets := make([]float64, cfg.Categories)
	for k := range centers {
		c := make(mathx.Vec, cfg.Latent)
		for j := range c {
			c[j] = shared.NormFloat64() * 0.8
		}
		centers[k] = c
		targets[k] = 0.05 + 0.2*shared.Float64()
	}
	rng := mathx.NewRNG(cfg.Seed ^ 0x1ca9e)
	d := &Categorical{Name: name}
	d.Members = make([][]bool, cfg.Categories)
	for k := range d.Members {
		d.Members[k] = make([]bool, cfg.Items)
	}
	zs := make([]mathx.Vec, cfg.Items)
	for i := range zs {
		z := make(mathx.Vec, cfg.Latent)
		for j := range z {
			z[j] = rng.NormFloat64() + cfg.Shift
		}
		zs[i] = z
		v := mix.MulVec(z)
		for j := range v {
			v[j] = math.Tanh(v[j]) // non-linear "rendering"
		}
		if cfg.Distractor > 0 {
			// A second, unrelated latent object cluttering the scene.
			zd := make(mathx.Vec, cfg.Latent)
			for j := range zd {
				zd[j] = rng.NormFloat64()
			}
			vd := mix.MulVec(zd)
			for j := range v {
				v[j] += cfg.Distractor * math.Tanh(vd[j]) * rng.Float64()
			}
		}
		for j := range v {
			v[j] += rng.NormFloat64() * cfg.Noise
		}
		d.Blobs = append(d.Blobs, blob.FromDense(i, v))
	}
	// Radial membership with per-class radii set to hit the target
	// selectivity exactly on this sample.
	for k, c := range centers {
		dists := make([]float64, cfg.Items)
		for i, z := range zs {
			dists[i] = math.Sqrt(mathx.SqDist(z, c))
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		radius := mathx.QuantileSorted(sorted, targets[k])
		for i := range zs {
			d.Members[k][i] = dists[i] <= radius
		}
	}
	return d
}

// randomMatrix draws a rows×cols matrix with N(0, 1/cols) entries.
func randomMatrix(rows, cols int, rng *mathx.RNG) *mathx.Mat {
	m := mathx.NewMat(rows, cols)
	scale := 1 / math.Sqrt(float64(cols))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return m
}
