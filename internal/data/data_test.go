package data

import (
	"math"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/mathx"
	"probpred/internal/query"
)

func TestLSHTCShape(t *testing.T) {
	d := LSHTC(LSHTCConfig{Docs: 500, Seed: 1})
	if len(d.Blobs) != 500 || d.NumCategories() != 40 {
		t.Fatalf("docs=%d cats=%d", len(d.Blobs), d.NumCategories())
	}
	for _, b := range d.Blobs {
		if !b.IsSparse() {
			t.Fatal("LSHTC blobs must be sparse")
		}
		if b.Dim() != 2000 {
			t.Fatalf("dim = %d", b.Dim())
		}
		if b.Sparse.NNZ() > 200 {
			t.Fatalf("blob too dense: %d non-zeros", b.Sparse.NNZ())
		}
	}
}

func TestLSHTCDeterministic(t *testing.T) {
	a := LSHTC(LSHTCConfig{Docs: 100, Seed: 7})
	b := LSHTC(LSHTCConfig{Docs: 100, Seed: 7})
	for i := range a.Blobs {
		if a.Blobs[i].Sparse.NNZ() != b.Blobs[i].Sparse.NNZ() {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestLSHTCSelectivities(t *testing.T) {
	d := LSHTC(LSHTCConfig{Docs: 2000, Seed: 2})
	for k := 0; k < d.NumCategories(); k++ {
		s := d.Selectivity(k)
		if s < 0.005 || s > 0.35 {
			t.Errorf("category %d selectivity %v out of expected range", k, s)
		}
	}
}

func TestLSHTCLinearlySeparable(t *testing.T) {
	// The defining property: FH+SVM must achieve high accuracy and useful
	// reduction on a category query.
	d := LSHTC(LSHTCConfig{Docs: 2000, Seed: 3})
	set := d.SetFor(0)
	rng := mathx.NewRNG(4)
	train, val, test := set.Split(rng, 0.6, 0.2)
	pp, err := core.Train("cat=0", train, val, core.TrainConfig{Approach: "FH+SVM", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := core.Evaluate(pp, test, 0.95)
	if m.Accuracy < 0.85 || m.Reduction < 0.4 {
		t.Fatalf("FH+SVM on LSHTC: accuracy=%v reduction=%v", m.Accuracy, m.Reduction)
	}
}

func TestCOCOShape(t *testing.T) {
	d := COCO(1)
	if len(d.Blobs) != 3000 || d.NumCategories() != 24 {
		t.Fatalf("items=%d cats=%d", len(d.Blobs), d.NumCategories())
	}
	if d.Blobs[0].Dim() != 96 || d.Blobs[0].IsSparse() {
		t.Fatal("COCO blobs must be dense dim 96")
	}
}

func TestCOCOSelectivityTargets(t *testing.T) {
	d := COCO(2)
	for k := 0; k < d.NumCategories(); k++ {
		s := d.Selectivity(k)
		if s < 0.03 || s > 0.3 {
			t.Errorf("category %d selectivity %v out of range", k, s)
		}
	}
}

func TestImageNetSharesClassesWithCOCO(t *testing.T) {
	// Cross-training requirement: the two datasets must describe the same
	// classes, so a DNN trained on COCO-like class k should score
	// ImageNet-like class-k positives above negatives on average.
	coco := COCO(3)
	inet := ImageNet(3)
	if coco.NumCategories() != inet.NumCategories() {
		t.Fatal("category counts differ")
	}
	set := coco.SetFor(1)
	rng := mathx.NewRNG(6)
	train, val, _ := set.Split(rng, 0.6, 0.2)
	pp, err := core.Train("cat=1", train, val, core.TrainConfig{
		Approach: "DNN", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	target := inet.SetFor(1)
	var posMean, negMean float64
	var pos, neg int
	for i, b := range target.Blobs {
		s := pp.Score(b)
		if target.Labels[i] {
			posMean += s
			pos++
		} else {
			negMean += s
			neg++
		}
	}
	posMean /= float64(pos)
	negMean /= float64(neg)
	if posMean <= negMean {
		t.Fatalf("cross-domain scores do not separate: pos=%v neg=%v", posMean, negMean)
	}
}

func TestSUNAttributeShape(t *testing.T) {
	d := SUNAttribute(4)
	if len(d.Blobs) != 2500 || d.NumCategories() != 30 {
		t.Fatalf("items=%d cats=%d", len(d.Blobs), d.NumCategories())
	}
	if d.Blobs[0].Dim() != 64 {
		t.Fatalf("dim = %d", d.Blobs[0].Dim())
	}
}

func TestUCFShapeAndSingleLabel(t *testing.T) {
	d := UCF101(UCFConfig{Clips: 1000, Seed: 5})
	if d.NumCategories() != 20 {
		t.Fatalf("cats = %d", d.NumCategories())
	}
	// Every clip belongs to exactly one activity.
	for i := range d.Blobs {
		n := 0
		for k := 0; k < d.NumCategories(); k++ {
			if d.Members[k][i] {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("clip %d has %d activities", i, n)
		}
	}
}

func TestSetForPanicsOutOfRange(t *testing.T) {
	d := UCF101(UCFConfig{Clips: 50, Seed: 6})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.SetFor(99)
}

func TestTrafficAttributes(t *testing.T) {
	rows := Traffic(TrafficConfig{Rows: 2000, Seed: 7})
	if len(rows) != 2000 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, b := range rows[:50] {
		if b.Dim() != 32 {
			t.Fatalf("traffic dim = %d", b.Dim())
		}
		for _, col := range TrafficColumns {
			if _, ok := b.TruthVal(col); !ok {
				t.Fatalf("missing attribute %q", col)
			}
		}
		s, _ := b.TruthVal("s")
		if s < 0 || s > 80 {
			t.Fatalf("speed out of range: %v", s)
		}
	}
}

func TestTrafficSelectivities(t *testing.T) {
	rows := Traffic(TrafficConfig{Rows: 20000, Seed: 8})
	sel := func(pred string) float64 {
		set, err := TrafficSet(rows, query.MustParse(pred))
		if err != nil {
			t.Fatal(err)
		}
		return set.Selectivity()
	}
	// Calibration targets from Tables 9-10 (±0.07 tolerance).
	cases := []struct {
		pred string
		want float64
	}{
		{"t in {SUV, van}", 0.41},
		{"c!=white", 0.67},
		{"s>60 & s<65", 0.05},
	}
	for _, c := range cases {
		got := sel(c.pred)
		if math.Abs(got-c.want) > 0.07 {
			t.Errorf("selectivity(%q) = %v, want ~%v", c.pred, got, c.want)
		}
	}
	// The 4-clause Q20-style predicate must be rare.
	if got := sel("t=SUV & c=red & i=pt335 & o=pt211"); got > 0.02 {
		t.Errorf("Q20 selectivity = %v, want <= 0.02", got)
	}
}

func TestTrafficValueConversions(t *testing.T) {
	rows := Traffic(TrafficConfig{Rows: 10, Seed: 9})
	b := rows[0]
	v, err := TrafficValue(b, "t")
	if err != nil || v.IsNum {
		t.Fatalf("t value = %v err=%v", v, err)
	}
	v, err = TrafficValue(b, "s")
	if err != nil || !v.IsNum {
		t.Fatalf("s value = %v err=%v", v, err)
	}
	if _, err := TrafficValue(b, "nope"); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := TrafficValue(blob.Blob{}, "t"); err == nil {
		t.Fatal("blob without truth should error")
	}
}

func TestTrafficSetLabels(t *testing.T) {
	rows := Traffic(TrafficConfig{Rows: 1000, Seed: 10})
	set, err := TrafficSet(rows, query.MustParse("s>60"))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range set.Blobs {
		s, _ := b.TruthVal("s")
		if set.Labels[i] != (s > 60) {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestTrafficPPLearnable(t *testing.T) {
	// The defining property: an SVM PP for a type clause achieves useful
	// reduction with high accuracy (§8.2: 32 SVM PPs, reductions 11-60%).
	rows := Traffic(TrafficConfig{Rows: 4000, Seed: 11})
	set, err := TrafficSet(rows, query.MustParse("t=SUV"))
	if err != nil {
		t.Fatal(err)
	}
	train, val, test := set.Split(mathx.NewRNG(12), 0.6, 0.2)
	pp, err := core.Train("t=SUV", train, val, core.TrainConfig{Approach: "Raw+SVM", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	m := core.Evaluate(pp, test, 0.95)
	if m.Accuracy < 0.85 {
		t.Fatalf("traffic PP accuracy = %v", m.Accuracy)
	}
	if m.Reduction < 0.15 {
		t.Fatalf("traffic PP reduction = %v, want >= 0.15", m.Reduction)
	}
}

func TestTrafficDomains(t *testing.T) {
	d := TrafficDomains()
	if len(d["t"]) != 4 || len(d["c"]) != 5 || len(d["i"]) != 6 || len(d["o"]) != 6 {
		t.Fatalf("domains = %v", d)
	}
	if len(d["s"]) != 17 {
		t.Fatalf("speed domain = %d values", len(d["s"]))
	}
}

func TestCoralMostlyEmpty(t *testing.T) {
	v := Coral(CoralConfig{Frames: 5000, Seed: 14})
	if v.Name != "coral" || len(v.Frames) != 5000 {
		t.Fatalf("bad stream: %s %d", v.Name, len(v.Frames))
	}
	pos := 0
	for _, h := range v.HasObject {
		if h {
			pos++
		}
	}
	frac := float64(pos) / float64(len(v.HasObject))
	if frac > 0.05 || frac == 0 {
		t.Fatalf("coral object fraction = %v, want rare but non-zero", frac)
	}
}

func TestSquareBusierThanCoral(t *testing.T) {
	c := Coral(CoralConfig{Frames: 5000, Seed: 15})
	s := Square(CoralConfig{Frames: 5000, Seed: 15})
	count := func(v *VideoStream) int {
		n := 0
		for _, h := range v.HasObject {
			if h {
				n++
			}
		}
		return n
	}
	if count(s) <= count(c) {
		t.Fatalf("square (%d) should be busier than coral (%d)", count(s), count(c))
	}
}

func TestCoralObjectPersistence(t *testing.T) {
	v := Coral(CoralConfig{Frames: 20000, Seed: 16})
	// Count run lengths of object presence; mean should exceed 3 frames.
	var runs []int
	run := 0
	for _, h := range v.HasObject {
		if h {
			run++
		} else if run > 0 {
			runs = append(runs, run)
			run = 0
		}
	}
	if len(runs) == 0 {
		t.Skip("no objects in draw")
	}
	total := 0
	for _, r := range runs {
		total += r
	}
	if mean := float64(total) / float64(len(runs)); mean < 3 {
		t.Fatalf("mean object run length = %v, want >= 3 (frame redundancy)", mean)
	}
}

func TestCoralObjectBrightensPixels(t *testing.T) {
	v := Coral(CoralConfig{Frames: 20000, Seed: 17})
	// Mean relevant-area deviation from background must be larger on
	// object frames.
	dev := func(f blob.Blob) float64 {
		relevantW := v.Width - v.MaskCols
		sum := 0.0
		n := 0
		px := f.Dense
		for y := 0; y < v.Height; y++ {
			for x := 0; x < relevantW; x++ {
				i := y*v.Width + x
				sum += math.Abs(px[i] - v.Background[i])
				n++
			}
		}
		return sum / float64(n)
	}
	var objDev, emptyDev float64
	var objN, emptyN int
	for i, f := range v.Frames {
		if v.HasObject[i] {
			objDev += dev(f)
			objN++
		} else if emptyN < 500 {
			emptyDev += dev(f)
			emptyN++
		}
	}
	if objN == 0 {
		t.Skip("no objects in draw")
	}
	if objDev/float64(objN) <= emptyDev/float64(emptyN) {
		t.Fatal("object frames do not deviate more from background")
	}
}

func TestCoralMask(t *testing.T) {
	v := Coral(CoralConfig{Frames: 10, Seed: 18})
	if !v.InMask(v.Width - 1) {
		t.Fatal("rightmost column should be masked")
	}
	if v.InMask(0) {
		t.Fatal("leftmost column should not be masked")
	}
}
