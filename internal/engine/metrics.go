package engine

import (
	"probpred/internal/metrics"
)

// Numeric telemetry for the execution engine (Config.Metrics). Instruments
// are resolved once per operator per run — never inside row loops — so a live
// registry adds no per-row allocations to the batch hot path; a nil registry
// costs one pointer check per run (the same contract as the nil obs.Tracer).

// retryTally accumulates one operator execution's retry activity. It is
// plumbed through the per-row retry loop as plain ints (per-chunk on the
// parallel path, summed at the merge), so counting is free of atomics and
// allocations even under Workers > 1.
type retryTally struct {
	// retries is how many failed attempts were retried.
	retries int
	// timeouts is how many attempts were killed at the row-timeout deadline.
	timeouts int
}

func (t *retryTally) add(o retryTally) {
	t.retries += o.retries
	t.timeouts += o.timeouts
}

// emitRunMetrics records one completed (or failed) Run. traceID, when
// non-empty, becomes the exemplar on the run histograms' buckets so a tail
// bucket resolves back to its session.
func emitRunMetrics(reg *metrics.Registry, res *Result, wallNS int64, failed bool, traceID string) {
	if reg == nil {
		return
	}
	reg.Counter("engine_runs_total", "Engine plan executions started.").Inc()
	if failed {
		reg.Counter("engine_run_errors_total", "Engine plan executions that failed.").Inc()
		return
	}
	reg.Histogram("engine_run_cluster_vms", "Total cluster processing time per run, virtual ms.").ObserveExemplar(res.ClusterTime, traceID)
	reg.Histogram("engine_run_latency_vms", "Modeled end-to-end latency per run, virtual ms.").ObserveExemplar(res.Latency, traceID)
	reg.Histogram("engine_run_wall_ns", "Real wall-clock duration per run, nanoseconds.").ObserveExemplar(float64(wallNS), traceID)
}

// emitOpMetrics records one operator execution within a run.
func emitOpMetrics(reg *metrics.Registry, op Operator, rowsIn, rowsOut int, cost float64, wallNS int64, tally retryTally, ctally *cacheTally) {
	if reg == nil {
		return
	}
	name := op.Name()
	opLabel := metrics.L("op", name)
	reg.Counter("engine_op_rows_in_total", "Rows entering each operator.", opLabel).Add(float64(rowsIn))
	reg.Counter("engine_op_rows_out_total", "Rows leaving each operator.", opLabel).Add(float64(rowsOut))
	reg.Histogram("engine_op_cost_vms", "Virtual cost charged per operator execution, virtual ms.", opLabel).Observe(cost)
	reg.Histogram("engine_op_wall_ns", "Real wall-clock duration per operator execution, nanoseconds.", opLabel).Observe(float64(wallNS))
	if tally.retries > 0 {
		reg.Counter("engine_retries_total", "Transient row failures retried by the engine.", opLabel).Add(float64(tally.retries))
	}
	if tally.timeouts > 0 {
		reg.Counter("engine_row_timeouts_total", "Row attempts killed at the per-row virtual timeout.", opLabel).Add(float64(tally.timeouts))
	}
	if _, ok := op.(*PPFilter); ok {
		fLabel := metrics.L("filter", name)
		reg.Counter("engine_ppfilter_tested_total", "Blobs tested by injected PP filters.", fLabel).Add(float64(rowsIn))
		reg.Counter("engine_ppfilter_passed_total", "Blobs passing injected PP filters.", fLabel).Add(float64(rowsOut))
		if hits := ctally.hits.Load(); hits > 0 {
			reg.Counter("engine_ppfilter_cache_hits_total", "PP score lookups served from the score cache.", fLabel).Add(float64(hits))
		}
		if misses := ctally.misses.Load(); misses > 0 {
			reg.Counter("engine_ppfilter_cache_misses_total", "PP score lookups that missed the score cache.", fLabel).Add(float64(misses))
		}
	}
}
