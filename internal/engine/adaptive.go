package engine

import (
	"fmt"
	"strconv"
	"time"

	"probpred/internal/obs"
)

// Adaptive execution: RunAdaptive is Run with chunk-boundary plan-swap
// points. The row-local prefix of the plan (source, PP filters, processors,
// selects, projections — everything before the first stage boundary) is
// executed chunk by chunk, and after each chunk a SwapDecider may replace
// the plan's PP filter for the remaining chunks; the suffix (reducers,
// joins, top-k) then runs once over the concatenated rows.
//
// Exactness: every prefix operator is row-local with linear virtual cost, so
// running it per chunk and concatenating outputs in chunk order yields
// byte-identical rows and chunk-sum costs identical to the single-shot Run.
// Stage-boundary operators see every row at once, exactly as in Run. The
// swap itself is only outcome-safe if the replacement filter accepts exactly
// the blobs the old one accepts — the optimizer's Reoptimize guarantees that
// by reordering short-circuit evaluation without touching leaves or
// thresholds; RunAdaptive itself just performs whatever swap the decider
// asks for.

// ChunkStats describes one completed adaptive chunk to the swap decider.
type ChunkStats struct {
	// Chunk is the 0-based index of the chunk that just finished.
	Chunk int
	// TotalChunks is the run's chunk count.
	TotalChunks int
	// Rows is how many source rows the chunk contained.
	Rows int
	// Cost is the virtual cost the prefix charged so far, all chunks.
	Cost float64
}

// SwapDecider is consulted after each adaptive chunk except the last. A
// non-nil filter return hot-swaps the plan's PP filter for the remaining
// chunks; nil keeps the current plan. An error is absorbed gracefully: the
// run continues on the current plan and Result.SwapErrors counts the event
// (the caller's decider wrapper owns retries, budgets and breakers).
type SwapDecider func(cs ChunkStats) (BlobFilter, error)

// AdaptiveConfig configures RunAdaptive.
type AdaptiveConfig struct {
	// ChunkRows is the number of source rows per adaptive chunk. Zero (or a
	// nil Decide) degrades RunAdaptive to plain Run.
	ChunkRows int
	// Decide is the chunk-boundary swap hook.
	Decide SwapDecider
}

// PlanSwap records one mid-run hot-swap.
type PlanSwap struct {
	// Chunk is the first chunk executed under the new filter.
	Chunk int
	// OpIndex is the swapped operator's plan position.
	OpIndex int
	// Old and New are the operator names before and after the swap.
	Old, New string
}

// opAcc accumulates one plan position's accounting across chunks.
type opAcc struct {
	rowsIn, rowsOut int
	cost            float64
	wallNS          int64
	tally           retryTally
	ctally          cacheTally
}

// RunAdaptive executes the plan like Run, with chunk-boundary swap points in
// the row-local prefix. Results are identical to Run for any
// outcome-equivalent decider; cost accounting differs only by attribution of
// the swapped operator's chunks to its old vs new name.
func RunAdaptive(p Plan, cfg Config, acfg AdaptiveConfig) (*Result, error) {
	if acfg.ChunkRows <= 0 || acfg.Decide == nil {
		return Run(p, cfg)
	}
	cfg.fill()
	if len(p.Ops) == 0 {
		return nil, fmt.Errorf("engine: empty plan")
	}
	// The prefix is the source plus every following non-boundary operator;
	// a swappable PP filter must be inside it. Plans with nothing to adapt
	// run the plain path.
	split := 1
	for split < len(p.Ops) && !p.Ops[split].StageBoundary() {
		split++
	}
	swapIdx := -1
	for i := 1; i < split; i++ {
		if _, ok := p.Ops[i].(*PPFilter); ok {
			swapIdx = i
			break
		}
	}
	if p.Ops[0].StageBoundary() || swapIdx == -1 {
		return Run(p, cfg)
	}

	ops := append([]Operator(nil), p.Ops...) // swaps must not mutate the caller's plan
	runSpan := cfg.Obs.BeginCtx(cfg.Trace, obs.KindRun, "plan[adaptive]")
	runStart := time.Now()
	st := newStats()
	accs := make([]opAcc, len(ops))
	stageCosts := []float64{0}
	var swaps []PlanSwap
	swapErrors := 0

	fail := func(opIdx int, err error) (*Result, error) {
		// Mirror Run's charge-then-fail contract: everything executed so far
		// is charged, spans carry the error, metrics count the failed run.
		emitAccSpans(cfg, &runSpan, ops, accs, opIdx)
		runSpan.CostVMS = st.Cluster
		runSpan.SetAttr("error", err.Error())
		cfg.Obs.End(&runSpan)
		emitAccMetrics(cfg, ops, accs, opIdx)
		emitRunMetrics(cfg.Metrics, nil, time.Since(runStart).Nanoseconds(), true, cfg.Trace.TraceID)
		return nil, &OpError{Stage: len(stageCosts) - 1, Op: ops[opIdx].Name(), Err: err}
	}

	// runOne executes ops[i] over in, accumulating into accs[i].
	runOne := func(i int, in []Row) ([]Row, error) {
		op := ops[i]
		acc := &accs[i]
		st.RowsIn[op.Name()] += len(in)
		before := st.OpCost[op.Name()]
		opStart := time.Now()
		out, err := runOp(op, in, st, cfg, &runSpan, &acc.tally, &acc.ctally)
		acc.wallNS += time.Since(opStart).Nanoseconds()
		cost := st.OpCost[op.Name()] - before
		acc.cost += cost
		acc.rowsIn += len(in)
		stageCosts[len(stageCosts)-1] += cost
		if err != nil {
			return nil, err
		}
		acc.rowsOut += len(out)
		st.RowsOut[op.Name()] += len(out)
		return out, nil
	}

	// Source runs once (its cost does not depend on chunking); its output is
	// then processed chunk by chunk through the rest of the prefix.
	rows, err := runOne(0, nil)
	if err != nil {
		return fail(0, err)
	}
	bounds := fixedChunkBounds(len(rows), acfg.ChunkRows)
	var prefixOut []Row
	for ci, b := range bounds {
		chunk := rows[b[0]:b[1]]
		for i := 1; i < split; i++ {
			chunk, err = runOne(i, chunk)
			if err != nil {
				return fail(i, err)
			}
		}
		prefixOut = append(prefixOut, chunk...)
		if ci == len(bounds)-1 {
			break // no remaining chunks to adapt for
		}
		prefixCost := 0.0
		for i := 0; i < split; i++ {
			prefixCost += accs[i].cost
		}
		newF, derr := acfg.Decide(ChunkStats{
			Chunk: ci, TotalChunks: len(bounds), Rows: b[1] - b[0], Cost: prefixCost,
		})
		if derr != nil {
			// Graceful degradation: the current plan keeps running.
			swapErrors++
			continue
		}
		if newF == nil {
			continue
		}
		old := ops[swapIdx].Name()
		ops[swapIdx] = &PPFilter{F: newF}
		swaps = append(swaps, PlanSwap{
			Chunk: ci + 1, OpIndex: swapIdx, Old: old, New: ops[swapIdx].Name(),
		})
	}

	// Suffix: stage-boundary operators run once over the concatenated rows,
	// exactly as in Run.
	rows = prefixOut
	for i := split; i < len(ops); i++ {
		if ops[i].StageBoundary() {
			stageCosts = append(stageCosts, 0)
		}
		rows, err = runOne(i, rows)
		if err != nil {
			return fail(i, err)
		}
	}

	latency := 0.0
	for _, c := range stageCosts {
		latency += c/float64(cfg.Parallelism) + cfg.StageOverheadMS
	}
	emitAccSpans(cfg, &runSpan, ops, accs, len(ops))
	runSpan.CostVMS = st.Cluster
	runSpan.RowsOut = len(rows)
	runSpan.SetAttr("stages", strconv.Itoa(len(stageCosts)))
	runSpan.SetAttr("latency_vms", strconv.FormatFloat(latency, 'f', 1, 64))
	runSpan.SetAttr("chunks", strconv.Itoa(len(bounds)))
	runSpan.SetAttr("swaps", strconv.Itoa(len(swaps)))
	cfg.Obs.End(&runSpan)
	perOp := make([]OpStats, len(ops))
	for i, op := range ops {
		_, isPP := op.(*PPFilter)
		perOp[i] = OpStats{
			Name: op.Name(), RowsIn: accs[i].rowsIn, RowsOut: accs[i].rowsOut,
			Cost: accs[i].cost, WallNS: accs[i].wallNS,
			StageBoundary: op.StageBoundary(), PPFilter: isPP,
			Retries: accs[i].tally.retries, Timeouts: accs[i].tally.timeouts,
			CacheHits: accs[i].ctally.hits.Load(), CacheMisses: accs[i].ctally.misses.Load(),
		}
	}
	res := &Result{
		Rows:        rows,
		ClusterTime: st.Cluster,
		Latency:     latency,
		Stages:      len(stageCosts),
		Stats:       st,
		PerOp:       perOp,
		Swaps:       swaps,
		Chunks:      len(bounds),
		SwapErrors:  swapErrors,
	}
	emitAccMetrics(cfg, ops, accs, len(ops))
	emitRunMetrics(cfg.Metrics, res, time.Since(runStart).Nanoseconds(), false, cfg.Trace.TraceID)
	return res, nil
}

// fixedChunkBounds splits n rows into ceil(n/size) contiguous chunks of at
// most size rows (at least one chunk, possibly empty, so the prefix always
// executes).
func fixedChunkBounds(n, size int) [][2]int {
	var out [][2]int
	for start := 0; ; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
		if end >= n {
			return out
		}
	}
}

// emitAccSpans publishes the accumulated per-operator spans in plan order,
// up to and including position last (exclusive bound lim = last+1 callers
// pass lim directly). Chunked operators appear as one span whose cost and
// cardinalities sum their chunks.
func emitAccSpans(cfg Config, runSpan *obs.Span, ops []Operator, accs []opAcc, lim int) {
	if !cfg.Obs.Enabled() {
		return
	}
	if lim > len(ops) {
		lim = len(ops)
	} else if lim < len(ops) {
		lim++ // include the failing operator's partial accounting
	}
	for i := 0; i < lim; i++ {
		sp := cfg.Obs.BeginChild(runSpan, obs.KindOperator, ops[i].Name())
		sp.WallNS = accs[i].wallNS
		sp.CostVMS = accs[i].cost
		sp.RowsIn = accs[i].rowsIn
		sp.RowsOut = accs[i].rowsOut
		cfg.Obs.EmitSpan(sp)
	}
}

// emitAccMetrics publishes the accumulated per-operator metrics (same lim
// contract as emitAccSpans).
func emitAccMetrics(cfg Config, ops []Operator, accs []opAcc, lim int) {
	if cfg.Metrics == nil {
		return
	}
	if lim > len(ops) {
		lim = len(ops)
	} else if lim < len(ops) {
		lim++
	}
	for i := 0; i < lim; i++ {
		emitOpMetrics(cfg.Metrics, ops[i], accs[i].rowsIn, accs[i].rowsOut,
			accs[i].cost, accs[i].wallNS, accs[i].tally, &accs[i].ctally)
	}
}
