package engine

import (
	"errors"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/query"
)

// TestParallelExecutionMatchesSequential: same rows, same order, same
// virtual costs at any worker count.
func TestParallelExecutionMatchesSequential(t *testing.T) {
	blobs := makeBlobs(503) // odd size exercises ragged chunking
	mk := func(workers int) *Result {
		plan := Plan{Ops: []Operator{
			&Scan{Blobs: blobs},
			&PPFilter{F: thresholdFilter{col: "x", t: 99, cost: 1}},
			&Process{P: fakeUDF{name: "U", cost: 7, col: "x"}},
			&Select{Pred: query.MustParse("x>250")},
		}}
		res, err := Run(plan, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := mk(1)
	for _, workers := range []int{2, 4, 8} {
		par := mk(workers)
		if par.ClusterTime != seq.ClusterTime {
			t.Fatalf("workers=%d: cluster time %v vs %v", workers, par.ClusterTime, seq.ClusterTime)
		}
		if len(par.Rows) != len(seq.Rows) {
			t.Fatalf("workers=%d: rows %d vs %d", workers, len(par.Rows), len(seq.Rows))
		}
		for i := range par.Rows {
			if par.Rows[i].Blob.ID != seq.Rows[i].Blob.ID {
				t.Fatalf("workers=%d: row order diverged at %d", workers, i)
			}
		}
	}
}

func TestParallelProcessErrorPropagates(t *testing.T) {
	// A blob without truth makes the UDF fail inside a worker goroutine.
	blobs := makeBlobs(100)
	blobs[57] = blob.Blob{ID: 57} // no Truth map
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: blobs},
		&Process{P: fakeUDF{name: "U", cost: 1, col: "x"}},
	}}
	if _, err := Run(plan, Config{Workers: 4}); err == nil {
		t.Fatal("expected worker error to propagate")
	}
}

// TestParallelRetryMatchesSequential: transient faults plus retries must
// yield identical rows and virtual costs at any worker count (chunk-order
// cost summation keeps the accounting deterministic).
func TestParallelRetryMatchesSequential(t *testing.T) {
	const n = 403
	fails := map[int]int{}
	for id := 0; id < n; id += 11 {
		fails[id] = 1 + id%2 // every 11th blob fails once or twice
	}
	cfg := func(workers int) Config {
		return Config{Workers: workers,
			Retry: RetryPolicy{MaxAttempts: 4, BackoffBaseMS: 25, BackoffFactor: 2}}
	}
	mk := func(workers int) *Result {
		f := &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 9, col: "x"}, fails: copyFails(fails)}
		plan := Plan{Ops: []Operator{
			&Scan{Blobs: makeBlobs(n)},
			&Process{P: f},
			&Select{Pred: query.MustParse("x>=0")},
		}}
		res, err := Run(plan, cfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := mk(1)
	if len(seq.Rows) != n {
		t.Fatalf("sequential rows = %d, want %d", len(seq.Rows), n)
	}
	for _, workers := range []int{2, 4, 8} {
		par := mk(workers)
		if par.ClusterTime != seq.ClusterTime {
			t.Fatalf("workers=%d: cluster time %v vs %v", workers, par.ClusterTime, seq.ClusterTime)
		}
		if len(par.Rows) != len(seq.Rows) {
			t.Fatalf("workers=%d: rows %d vs %d", workers, len(par.Rows), len(seq.Rows))
		}
		for i := range par.Rows {
			if par.Rows[i].Blob.ID != seq.Rows[i].Blob.ID {
				t.Fatalf("workers=%d: row order diverged at %d", workers, i)
			}
		}
	}
}

func copyFails(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// TestParallelErrorMidBatch: a processor that exhausts its retry budget in
// the middle of one worker's chunk must fail the run with full attribution
// while other workers keep processing their chunks (exercised under -race
// in CI).
func TestParallelErrorMidBatch(t *testing.T) {
	const n = 240
	f := &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 3, col: "x"},
		fails: map[int]int{157: 99}} // always fails: exhausts any budget
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(n)},
		&Process{P: f},
	}}
	_, err := Run(plan, Config{Workers: 4,
		Retry: RetryPolicy{MaxAttempts: 3, BackoffBaseMS: 1}})
	if err == nil {
		t.Fatal("expected mid-batch failure to propagate")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not an OpError", err)
	}
	if oe.Op != "U" || oe.Stage != 0 {
		t.Fatalf("attribution = stage %d op %q", oe.Stage, oe.Op)
	}
}

// TestParallelPermanentErrorMidBatch: non-transient failures short-circuit
// without retries on the parallel path too.
func TestParallelPermanentErrorMidBatch(t *testing.T) {
	const n = 200
	f := &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 3, col: "x"},
		fails: map[int]int{31: 1}, permanent: true}
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(n)},
		&Process{P: f},
	}}
	_, err := Run(plan, Config{Workers: 8, Retry: RetryPolicy{MaxAttempts: 5}})
	if err == nil {
		t.Fatal("expected failure")
	}
	f.mu.Lock()
	attempts := f.attempts[31]
	f.mu.Unlock()
	if attempts != 1 {
		t.Fatalf("blob 31 attempts = %d: permanent errors must not be retried", attempts)
	}
}

func TestChunkBounds(t *testing.T) {
	cases := []struct {
		n, workers int
		wantChunks int
	}{
		{10, 2, 2}, {10, 3, 3}, {3, 8, 3}, {1, 4, 1}, {100, 7, 7},
	}
	for _, c := range cases {
		bounds := chunkBounds(c.n, c.workers)
		if len(bounds) != c.wantChunks {
			t.Errorf("chunkBounds(%d,%d) = %d chunks, want %d",
				c.n, c.workers, len(bounds), c.wantChunks)
		}
		covered := 0
		prevEnd := 0
		for _, b := range bounds {
			if b[0] != prevEnd {
				t.Errorf("chunkBounds(%d,%d): gap at %v", c.n, c.workers, b)
			}
			covered += b[1] - b[0]
			prevEnd = b[1]
		}
		if covered != c.n {
			t.Errorf("chunkBounds(%d,%d) covers %d", c.n, c.workers, covered)
		}
	}
}

func TestSmallInputStaysSequential(t *testing.T) {
	// Fewer than 2×workers rows: the sequential path runs (no goroutine
	// overhead for tiny batches). Behaviour must be identical either way.
	blobs := makeBlobs(5)
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: blobs},
		&Process{P: fakeUDF{name: "U", cost: 1, col: "x"}},
	}}
	res, err := Run(plan, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}
