package engine

import (
	"fmt"
	"sort"

	"probpred/internal/blob"
	"probpred/internal/query"
)

// Operator is one node of a linear physical plan. Execution is
// operator-at-a-time (each operator consumes its whole input batch), which
// keeps the virtual cost accounting exact and deterministic.
type Operator interface {
	// Name identifies the operator in plans and statistics.
	Name() string
	// StageBoundary reports whether the operator forces a shuffle/barrier
	// (reducers, combiners, explicit barriers). Stage boundaries serialize
	// the latency model.
	StageBoundary() bool
	// Exec consumes the input batch, charges virtual cost to st, and
	// produces the output batch.
	Exec(in []Row, st *Stats) ([]Row, error)
}

// scanCost is the virtual per-row ingestion cost of a scan.
const scanCost = 0.05

// Scan is the source operator: it turns raw blobs into rows.
type Scan struct{ Blobs []blob.Blob }

// Name implements Operator.
func (s *Scan) Name() string { return "Scan" }

// StageBoundary implements Operator.
func (s *Scan) StageBoundary() bool { return false }

// Exec implements Operator; it ignores its input.
func (s *Scan) Exec(_ []Row, st *Stats) ([]Row, error) {
	out := make([]Row, len(s.Blobs))
	for i, b := range s.Blobs {
		out[i] = NewRow(b)
	}
	st.charge(s.Name(), scanCost*float64(len(out)))
	return out, nil
}

// Process applies a Processor UDF to every row.
type Process struct{ P Processor }

// Name implements Operator.
func (p *Process) Name() string { return p.P.Name() }

// StageBoundary implements Operator.
func (p *Process) StageBoundary() bool { return false }

// Exec implements Operator.
func (p *Process) Exec(in []Row, st *Stats) ([]Row, error) {
	return p.exec(in, st, RetryPolicy{}, nil)
}

// exec is Exec under a retry policy: each row's attempts, backoffs and
// timeouts are charged to the operator's virtual cost. A failing row still
// charges the work performed before and during the failure (all attempts and
// backoffs) — a cluster bills for a task's work whether or not it succeeds.
// tally (optional) accumulates retry/timeout counts for the metrics layer.
func (p *Process) exec(in []Row, st *Stats, pol RetryPolicy, tally *retryTally) ([]Row, error) {
	var out []Row
	total := 0.0
	for _, r := range in {
		rows, cost, err := applyWithRetry(p.P, r, pol, tally)
		total += cost
		if err != nil {
			st.charge(p.Name(), total)
			return nil, fmt.Errorf("processor %s: %w", p.P.Name(), err)
		}
		out = append(out, rows...)
	}
	st.charge(p.Name(), total)
	return out, nil
}

// selectCost is the virtual per-row cost of evaluating a relational
// predicate over already-materialized columns (cheap compared to UDFs).
const selectCost = 0.01

// Select filters rows by a predicate over materialized columns (the σ
// operators of Figure 1).
type Select struct{ Pred query.Pred }

// Name implements Operator.
func (s *Select) Name() string { return "σ[" + s.Pred.String() + "]" }

// StageBoundary implements Operator.
func (s *Select) StageBoundary() bool { return false }

// Exec implements Operator.
func (s *Select) Exec(in []Row, st *Stats) ([]Row, error) {
	var out []Row
	for _, r := range in {
		ok, err := s.Pred.Eval(r.Lookup)
		if err != nil {
			return nil, fmt.Errorf("engine: select: %w", err)
		}
		if ok {
			out = append(out, r)
		}
	}
	st.charge(s.Name(), selectCost*float64(len(in)))
	return out, nil
}

// BlobFilter is the hook through which injected probabilistic predicates
// run inside a plan: it tests a raw blob and reports the virtual cost it
// incurred (which depends on short-circuit evaluation order inside a PP
// expression, §6.2).
type BlobFilter interface {
	Name() string
	// Test reports whether the blob passes and the virtual cost spent.
	Test(b blob.Blob) (bool, float64)
}

// PPFilter applies a PP expression directly on each row's raw blob, before
// any UDF (Figure 2).
type PPFilter struct{ F BlobFilter }

// Name implements Operator.
func (p *PPFilter) Name() string { return "PP[" + p.F.Name() + "]" }

// StageBoundary implements Operator.
func (p *PPFilter) StageBoundary() bool { return false }

// Exec implements Operator. The whole input is tested as one batch when the
// filter implements BatchBlobFilter (see run); results, row order and cost
// accounting are identical to the per-row path.
func (p *PPFilter) Exec(in []Row, st *Stats) ([]Row, error) {
	var ct cacheTally // standalone Exec has no run-level tally; counts are dropped
	out, total := p.run(in, &ct)
	st.charge(p.Name(), total)
	return out, nil
}

// ComputedCol defines a projection-created column (π_{f(D)=d} in A.4).
type ComputedCol struct {
	Name string
	Cost float64
	Fn   func(Row) (query.Value, error)
}

// Project renames and/or drops columns and computes new ones.
type Project struct {
	// Rename maps old column names to new ones (π_{Ca→Cb}).
	Rename map[string]string
	// Drop lists columns to remove.
	Drop []string
	// Compute lists new columns to create.
	Compute []ComputedCol
}

// Name implements Operator.
func (p *Project) Name() string { return "π" }

// StageBoundary implements Operator.
func (p *Project) StageBoundary() bool { return false }

// Exec implements Operator.
func (p *Project) Exec(in []Row, st *Stats) ([]Row, error) {
	drop := map[string]bool{}
	for _, d := range p.Drop {
		drop[d] = true
	}
	out := make([]Row, 0, len(in))
	cost := selectCost
	for _, c := range p.Compute {
		cost += c.Cost
	}
	for _, r := range in {
		cols := make(map[string]query.Value, len(r.Cols))
		for k, v := range r.Cols {
			if drop[k] {
				continue
			}
			if nk, ok := p.Rename[k]; ok {
				k = nk
			}
			cols[k] = v
		}
		nr := Row{Blob: r.Blob, Cols: cols}
		for _, c := range p.Compute {
			v, err := c.Fn(nr)
			if err != nil {
				return nil, fmt.Errorf("engine: project computing %q: %w", c.Name, err)
			}
			nr.Cols[c.Name] = v
		}
		out = append(out, nr)
	}
	st.charge(p.Name(), cost*float64(len(in)))
	return out, nil
}

// joinCost is the virtual per-probe cost of a hash join lookup.
const joinCost = 0.02

// FKJoin is a foreign-key equijoin: each input (fact) row matches at most
// one row of the dimension table, whose key column is unique (the R ⋈_D S
// of A.4's pushdown rule). Unmatched rows are dropped (inner join).
type FKJoin struct {
	// LeftKey is the fact-side key column.
	LeftKey string
	// RightKey is the dimension-side key column (a primary key).
	RightKey string
	// Table is the dimension rowset.
	Table []Row
}

// Name implements Operator.
func (j *FKJoin) Name() string { return "⋈[" + j.LeftKey + "=" + j.RightKey + "]" }

// StageBoundary implements Operator; a join requires a shuffle.
func (j *FKJoin) StageBoundary() bool { return true }

// Exec implements Operator.
func (j *FKJoin) Exec(in []Row, st *Stats) ([]Row, error) {
	build := make(map[string]Row, len(j.Table))
	for _, r := range j.Table {
		v, err := r.Get(j.RightKey)
		if err != nil {
			return nil, fmt.Errorf("engine: fk join build: %w", err)
		}
		key := v.String()
		if _, dup := build[key]; dup {
			return nil, fmt.Errorf("engine: fk join: duplicate primary key %q in dimension table", key)
		}
		build[key] = r
	}
	var out []Row
	for _, r := range in {
		v, err := r.Get(j.LeftKey)
		if err != nil {
			return nil, fmt.Errorf("engine: fk join probe: %w", err)
		}
		dim, ok := build[v.String()]
		if !ok {
			continue
		}
		nr := r
		for k, dv := range dim.Cols {
			if k == j.RightKey {
				continue
			}
			nr = nr.With(k, dv)
		}
		out = append(out, nr)
	}
	st.charge(j.Name(), joinCost*float64(len(in)))
	return out, nil
}

// GroupReduce applies a Reducer UDF per key group (a
// partition-shuffle-aggregate, §4).
type GroupReduce struct{ R Reducer }

// Name implements Operator.
func (g *GroupReduce) Name() string { return g.R.Name() }

// StageBoundary implements Operator.
func (g *GroupReduce) StageBoundary() bool { return true }

// Exec implements Operator.
func (g *GroupReduce) Exec(in []Row, st *Stats) ([]Row, error) {
	groups := map[string][]Row{}
	var keys []string
	for _, r := range in {
		k, err := g.R.Key(r)
		if err != nil {
			return nil, fmt.Errorf("engine: reducer %s key: %w", g.R.Name(), err)
		}
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Strings(keys) // deterministic output order
	var out []Row
	for _, k := range keys {
		rows, err := g.R.Reduce(k, groups[k])
		if err != nil {
			return nil, fmt.Errorf("engine: reducer %s: %w", g.R.Name(), err)
		}
		out = append(out, rows...)
	}
	st.charge(g.Name(), g.R.Cost()*float64(len(in)))
	return out, nil
}

// Combine applies a Combiner UDF across two keyed rowsets (a custom join,
// §4). The right side is provided as a static rowset.
type Combine struct {
	C        Combiner
	Right    []Row
	LeftKey  string
	RightKey string
}

// Name implements Operator.
func (c *Combine) Name() string { return c.C.Name() }

// StageBoundary implements Operator.
func (c *Combine) StageBoundary() bool { return true }

// Exec implements Operator.
func (c *Combine) Exec(in []Row, st *Stats) ([]Row, error) {
	rights := map[string][]Row{}
	for _, r := range c.Right {
		v, err := r.Get(c.RightKey)
		if err != nil {
			return nil, fmt.Errorf("engine: combine right: %w", err)
		}
		rights[v.String()] = append(rights[v.String()], r)
	}
	lefts := map[string][]Row{}
	var keys []string
	for _, r := range in {
		v, err := r.Get(c.LeftKey)
		if err != nil {
			return nil, fmt.Errorf("engine: combine left: %w", err)
		}
		k := v.String()
		if _, seen := lefts[k]; !seen {
			keys = append(keys, k)
		}
		lefts[k] = append(lefts[k], r)
	}
	sort.Strings(keys)
	var out []Row
	pairs := 0
	for _, k := range keys {
		r, ok := rights[k]
		if !ok {
			continue
		}
		rows, err := c.C.Combine(k, lefts[k], r)
		if err != nil {
			return nil, fmt.Errorf("engine: combiner %s: %w", c.C.Name(), err)
		}
		pairs += len(lefts[k]) + len(r)
		out = append(out, rows...)
	}
	st.charge(c.Name(), c.C.Cost()*float64(pairs))
	return out, nil
}

// Barrier is a no-op stage boundary; plan builders insert it to model
// materialization points (e.g. SortP's serialized conditional stages, §8.2).
type Barrier struct{ Label string }

// Name implements Operator.
func (b *Barrier) Name() string { return "Barrier[" + b.Label + "]" }

// StageBoundary implements Operator.
func (b *Barrier) StageBoundary() bool { return true }

// Exec implements Operator.
func (b *Barrier) Exec(in []Row, _ *Stats) ([]Row, error) { return in, nil }

// topkCost is the virtual per-row cost of heap maintenance in TopK.
const topkCost = 0.02

// TopK keeps the K rows with the largest (or smallest) value of a numeric
// column — the ORDER BY ... LIMIT tail of ranked-alert queries ("the ten
// fastest speeding vehicles"). Output is sorted best-first. It is a stage
// boundary: ranking requires seeing every row.
type TopK struct {
	// By is the numeric ranking column.
	By string
	// K is how many rows to keep.
	K int
	// Asc ranks ascending (smallest first) instead of descending.
	Asc bool
}

// Name implements Operator.
func (t *TopK) Name() string { return fmt.Sprintf("TopK[%s,%d]", t.By, t.K) }

// StageBoundary implements Operator.
func (t *TopK) StageBoundary() bool { return true }

// Exec implements Operator.
func (t *TopK) Exec(in []Row, st *Stats) ([]Row, error) {
	if t.K <= 0 {
		return nil, fmt.Errorf("engine: TopK requires K >= 1, got %d", t.K)
	}
	type keyed struct {
		key float64
		idx int // original position, for deterministic tie-breaks
		row Row
	}
	rows := make([]keyed, 0, len(in))
	for i, r := range in {
		v, err := r.Get(t.By)
		if err != nil {
			return nil, fmt.Errorf("engine: TopK: %w", err)
		}
		if !v.IsNum {
			return nil, fmt.Errorf("engine: TopK over non-numeric column %q", t.By)
		}
		rows = append(rows, keyed{key: v.Num, idx: i, row: r})
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].key != rows[b].key {
			if t.Asc {
				return rows[a].key < rows[b].key
			}
			return rows[a].key > rows[b].key
		}
		return rows[a].idx < rows[b].idx
	})
	if len(rows) > t.K {
		rows = rows[:t.K]
	}
	out := make([]Row, len(rows))
	for i, kr := range rows {
		out[i] = kr.row
	}
	st.charge(t.Name(), topkCost*float64(len(in)))
	return out, nil
}
