package engine

import (
	"fmt"
	"strings"
)

// Explain renders a plan as an indented operator listing with stage
// boundaries marked — the EXPLAIN of this mini-engine.
func Explain(p Plan) string {
	var b strings.Builder
	stage := 1
	fmt.Fprintf(&b, "stage %d:\n", stage)
	for _, op := range p.Ops {
		if op.StageBoundary() {
			stage++
			fmt.Fprintf(&b, "stage %d:\n", stage)
		}
		fmt.Fprintf(&b, "  %s\n", op.Name())
	}
	return strings.TrimRight(b.String(), "\n")
}

// Summary renders a result's per-operator cardinalities and virtual costs
// in plan order — what an operator-level profiler would show.
func (r *Result) Summary(p Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %10s %10s %14s\n", "operator", "rows in", "rows out", "cost (vms)")
	for _, op := range p.Ops {
		name := op.Name()
		fmt.Fprintf(&b, "%-40s %10d %10d %14.1f\n",
			truncate(name, 40), r.Stats.RowsIn[name], r.Stats.RowsOut[name], r.Stats.OpCost[name])
	}
	fmt.Fprintf(&b, "total: cluster %.0f vms, latency %.0f vms, %d stages",
		r.ClusterTime, r.Latency, r.Stages)
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
