package engine

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Explain renders a plan as an indented operator listing with stage
// boundaries marked — the EXPLAIN of this mini-engine.
func Explain(p Plan) string {
	var b strings.Builder
	stage := 1
	fmt.Fprintf(&b, "stage %d:\n", stage)
	for _, op := range p.Ops {
		if op.StageBoundary() {
			stage++
			fmt.Fprintf(&b, "stage %d:\n", stage)
		}
		fmt.Fprintf(&b, "  %s\n", op.Name())
	}
	return strings.TrimRight(b.String(), "\n")
}

// Summary renders a result's per-operator cardinalities and virtual costs
// in plan order — what an operator-level profiler would show. Accounting is
// keyed by plan position (Result.PerOp), so two operators sharing a Name()
// each show their own rows and cost rather than the combined totals; the
// name-keyed Stats maps are only consulted for hand-built Results that
// predate PerOp.
func (r *Result) Summary(p Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %10s %10s %14s\n", "operator", "rows in", "rows out", "cost (vms)")
	if len(r.PerOp) > 0 {
		for _, op := range r.PerOp {
			fmt.Fprintf(&b, "%-40s %10d %10d %14.1f\n",
				truncate(op.Name, 40), op.RowsIn, op.RowsOut, op.Cost)
		}
	} else {
		for _, op := range p.Ops {
			name := op.Name()
			fmt.Fprintf(&b, "%-40s %10d %10d %14.1f\n",
				truncate(name, 40), r.Stats.RowsIn[name], r.Stats.RowsOut[name], r.Stats.OpCost[name])
		}
	}
	fmt.Fprintf(&b, "total: cluster %.0f vms, latency %.0f vms, %d stages",
		r.ClusterTime, r.Latency, r.Stages)
	return b.String()
}

// truncate limits s to n runes, marking the cut with an ellipsis. Cutting by
// runes (not bytes) keeps multi-byte operator names — σ, π, ⋈ and quoted
// values in any script — valid UTF-8.
func truncate(s string, n int) string {
	if utf8.RuneCountInString(s) <= n {
		return s
	}
	runes := []rune(s)
	return string(runes[:n-1]) + "…"
}
