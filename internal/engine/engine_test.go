package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/mathx"
	"probpred/internal/query"
)

// fakeUDF emits a column derived from the blob's truth value.
type fakeUDF struct {
	name string
	cost float64
	col  string
}

func (f fakeUDF) Name() string  { return f.name }
func (f fakeUDF) Cost() float64 { return f.cost }
func (f fakeUDF) Apply(r Row) ([]Row, error) {
	v, ok := r.Blob.TruthVal(f.col)
	if !ok {
		return nil, fmt.Errorf("no truth %q", f.col)
	}
	return []Row{r.With(f.col, query.Number(v))}, nil
}

// thresholdFilter is a BlobFilter passing blobs whose truth value exceeds t.
type thresholdFilter struct {
	col  string
	t    float64
	cost float64
}

func (f thresholdFilter) Name() string { return "thresh" }
func (f thresholdFilter) Test(b blob.Blob) (bool, float64) {
	v, _ := b.TruthVal(f.col)
	return v > f.t, f.cost
}

func makeBlobs(n int) []blob.Blob {
	out := make([]blob.Blob, n)
	for i := range out {
		b := blob.FromDense(i, mathx.Vec{float64(i)})
		b.Truth = map[string]float64{"x": float64(i)}
		out[i] = b
	}
	return out
}

func TestScanProcessSelect(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(10)},
		&Process{P: fakeUDF{name: "XExtract", cost: 5, col: "x"}},
		&Select{Pred: query.MustParse("x>=7")},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (x in {7,8,9})", len(res.Rows))
	}
	// Cluster time: scan 10*0.05 + udf 10*5 + select 10*0.01.
	want := 10*scanCost + 10*5 + 10*selectCost
	if res.ClusterTime != want {
		t.Fatalf("cluster time = %v, want %v", res.ClusterTime, want)
	}
}

func TestPPFilterReducesUDFWork(t *testing.T) {
	mk := func(withPP bool) *Result {
		ops := []Operator{&Scan{Blobs: makeBlobs(100)}}
		if withPP {
			ops = append(ops, &PPFilter{F: thresholdFilter{col: "x", t: 49, cost: 1}})
		}
		ops = append(ops,
			&Process{P: fakeUDF{name: "Expensive", cost: 50, col: "x"}},
			&Select{Pred: query.MustParse("x>89")},
		)
		res, err := Run(Plan{Ops: ops}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noPP := mk(false)
	withPP := mk(true)
	if len(noPP.Rows) != len(withPP.Rows) {
		t.Fatalf("PP changed results: %d vs %d", len(noPP.Rows), len(withPP.Rows))
	}
	if withPP.ClusterTime >= noPP.ClusterTime {
		t.Fatalf("PP did not reduce cluster time: %v vs %v", withPP.ClusterTime, noPP.ClusterTime)
	}
	// UDF should have processed only the 50 passing rows.
	if got := withPP.Stats.RowsIn["Expensive"]; got != 50 {
		t.Fatalf("UDF rows in = %d, want 50", got)
	}
}

func TestSelectErrorPropagates(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(3)},
		&Select{Pred: query.MustParse("missing=1")},
	}}
	if _, err := Run(plan, Config{}); err == nil {
		t.Fatal("expected error for missing column")
	}
}

func TestProcessErrorPropagates(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: []blob.Blob{blob.FromDense(0, mathx.Vec{1})}}, // no truth
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
	}}
	if _, err := Run(plan, Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestEmptyPlan(t *testing.T) {
	if _, err := Run(Plan{}, Config{}); err == nil {
		t.Fatal("expected error for empty plan")
	}
}

func TestProjectRenameDropCompute(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(5)},
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
		&Project{
			Rename: map[string]string{"x": "speed"},
			Compute: []ComputedCol{{
				Name: "fast", Cost: 0.1,
				Fn: func(r Row) (query.Value, error) {
					v, err := r.Get("speed")
					if err != nil {
						return query.Value{}, err
					}
					if v.Num > 2 {
						return query.Str("yes"), nil
					}
					return query.Str("no"), nil
				},
			}},
		},
		&Select{Pred: query.MustParse("fast=yes")},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if _, ok := res.Rows[0].Lookup("x"); ok {
		t.Fatal("rename left old column behind")
	}
}

func TestFKJoin(t *testing.T) {
	dim := []Row{
		{Cols: map[string]query.Value{"cam": query.Str("c1"), "zone": query.Str("north")}},
		{Cols: map[string]query.Value{"cam": query.Str("c2"), "zone": query.Str("south")}},
	}
	blobs := makeBlobs(4)
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: blobs},
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
		&Project{Compute: []ComputedCol{{
			Name: "cam",
			Fn: func(r Row) (query.Value, error) {
				v, _ := r.Get("x")
				if int(v.Num)%2 == 0 {
					return query.Str("c1"), nil
				}
				return query.Str("c3"), nil // no match: dropped
			},
		}}},
		&FKJoin{LeftKey: "cam", RightKey: "cam", Table: dim},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (only c1 matches)", len(res.Rows))
	}
	z, err := res.Rows[0].Get("zone")
	if err != nil || z.Str != "north" {
		t.Fatalf("zone = %v err=%v", z, err)
	}
}

func TestFKJoinDuplicatePKFails(t *testing.T) {
	dim := []Row{
		{Cols: map[string]query.Value{"k": query.Str("a")}},
		{Cols: map[string]query.Value{"k": query.Str("a")}},
	}
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(1)},
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
		&Project{Compute: []ComputedCol{{Name: "k", Fn: func(Row) (query.Value, error) {
			return query.Str("a"), nil
		}}}},
		&FKJoin{LeftKey: "k", RightKey: "k", Table: dim},
	}}
	if _, err := Run(plan, Config{}); err == nil {
		t.Fatal("expected duplicate PK error")
	}
}

// countReducer counts rows per key into a "count" column.
type countReducer struct{ keyCol string }

func (c countReducer) Name() string  { return "Count" }
func (c countReducer) Cost() float64 { return 0.5 }
func (c countReducer) Key(r Row) (string, error) {
	v, err := r.Get(c.keyCol)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}
func (c countReducer) Reduce(key string, rows []Row) ([]Row, error) {
	return []Row{{Cols: map[string]query.Value{
		"key":   query.Str(key),
		"count": query.Number(float64(len(rows))),
	}}}, nil
}

func TestGroupReduce(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(10)},
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
		&Project{Compute: []ComputedCol{{Name: "parity", Fn: func(r Row) (query.Value, error) {
			v, _ := r.Get("x")
			return query.Str([]string{"even", "odd"}[int(v.Num)%2]), nil
		}}}},
		&GroupReduce{R: countReducer{keyCol: "parity"}},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Deterministic key order: "even" before "odd".
	k0, _ := res.Rows[0].Get("key")
	if k0.Str != "even" {
		t.Fatalf("first group = %q, want even", k0.Str)
	}
	c0, _ := res.Rows[0].Get("count")
	if c0.Num != 5 {
		t.Fatalf("even count = %v", c0.Num)
	}
	if res.Stages != 2 {
		t.Fatalf("stages = %d, want 2 (reduce is a barrier)", res.Stages)
	}
}

// pairCombiner emits one row per (left,right) pair sharing a key.
type pairCombiner struct{}

func (pairCombiner) Name() string  { return "Pair" }
func (pairCombiner) Cost() float64 { return 0.1 }
func (pairCombiner) Combine(key string, left, right []Row) ([]Row, error) {
	var out []Row
	for range left {
		for range right {
			out = append(out, Row{Cols: map[string]query.Value{"key": query.Str(key)}})
		}
	}
	return out, nil
}

func TestCombine(t *testing.T) {
	right := []Row{
		{Cols: map[string]query.Value{"k": query.Str("a")}},
		{Cols: map[string]query.Value{"k": query.Str("a")}},
	}
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(3)},
		&Project{Compute: []ComputedCol{{Name: "k", Fn: func(r Row) (query.Value, error) {
			return query.Str("a"), nil
		}}}},
		&Combine{C: pairCombiner{}, Right: right, LeftKey: "k", RightKey: "k"},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 3*2", len(res.Rows))
	}
}

func TestLatencyModelStagesSerialize(t *testing.T) {
	blobs := makeBlobs(1000)
	base := Plan{Ops: []Operator{
		&Scan{Blobs: blobs},
		&Process{P: fakeUDF{name: "A", cost: 10, col: "x"}},
		&Process{P: fakeUDF{name: "B", cost: 10, col: "x"}},
	}}
	split := Plan{Ops: []Operator{
		&Scan{Blobs: blobs},
		&Process{P: fakeUDF{name: "A", cost: 10, col: "x"}},
		&Barrier{Label: "mat"},
		&Process{P: fakeUDF{name: "B", cost: 10, col: "x"}},
	}}
	r1, err := Run(base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(split, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ClusterTime != r2.ClusterTime {
		t.Fatalf("barrier changed cluster time: %v vs %v", r1.ClusterTime, r2.ClusterTime)
	}
	if r2.Latency <= r1.Latency {
		t.Fatalf("extra stage should increase latency: %v vs %v", r2.Latency, r1.Latency)
	}
	if r2.Stages != r1.Stages+1 {
		t.Fatalf("stages = %d vs %d", r2.Stages, r1.Stages)
	}
}

func TestLatencyScalesWithParallelism(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(1000)},
		&Process{P: fakeUDF{name: "A", cost: 10, col: "x"}},
	}}
	slow, err := Run(plan, Config{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(plan, Config{Parallelism: 32})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Latency >= slow.Latency {
		t.Fatalf("parallelism did not reduce latency: %v vs %v", fast.Latency, slow.Latency)
	}
	if fast.ClusterTime != slow.ClusterTime {
		t.Fatal("parallelism should not change cluster time")
	}
}

func TestRowWithDoesNotMutate(t *testing.T) {
	r := NewRow(blob.Blob{ID: 1})
	r2 := r.With("a", query.Number(1))
	if _, ok := r.Lookup("a"); ok {
		t.Fatal("With mutated the original row")
	}
	if v, ok := r2.Lookup("a"); !ok || v.Num != 1 {
		t.Fatal("With did not set the column")
	}
}

func TestRowGetError(t *testing.T) {
	r := NewRow(blob.Blob{})
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("expected error")
	}
	var e error = errors.New("x")
	_ = e
}

func TestTopK(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(20)},
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
		&TopK{By: "x", K: 3},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, want := range []float64{19, 18, 17} {
		v, _ := res.Rows[i].Get("x")
		if v.Num != want {
			t.Fatalf("row %d = %v, want %v", i, v.Num, want)
		}
	}
	if res.Stages != 2 {
		t.Fatalf("TopK should be a stage boundary: stages = %d", res.Stages)
	}
}

func TestTopKAscendingAndSmallInput(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(2)},
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
		&TopK{By: "x", K: 5, Asc: true},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	v0, _ := res.Rows[0].Get("x")
	if v0.Num != 0 {
		t.Fatalf("ascending order wrong: %v", v0.Num)
	}
}

func TestTopKErrors(t *testing.T) {
	bad := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(3)},
		&TopK{By: "missing", K: 1},
	}}
	if _, err := Run(bad, Config{}); err == nil {
		t.Fatal("expected error for missing column")
	}
	zero := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(3)},
		&TopK{By: "x", K: 0},
	}}
	if _, err := Run(zero, Config{}); err == nil {
		t.Fatal("expected error for K=0")
	}
}

func TestExplainAndSummary(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(10)},
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
		&Barrier{Label: "mat"},
		&Select{Pred: query.MustParse("x>3")},
	}}
	explained := Explain(plan)
	if !strings.Contains(explained, "stage 1:") || !strings.Contains(explained, "stage 2:") {
		t.Fatalf("Explain missing stages:\n%s", explained)
	}
	if !strings.Contains(explained, "Scan") || !strings.Contains(explained, "σ[x>3]") {
		t.Fatalf("Explain missing operators:\n%s", explained)
	}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary(plan)
	if !strings.Contains(sum, "Scan") || !strings.Contains(sum, "total: cluster") {
		t.Fatalf("Summary malformed:\n%s", sum)
	}
	if !strings.Contains(sum, "10") {
		t.Fatalf("Summary missing cardinalities:\n%s", sum)
	}
}

// Plan-algebra invariants: inserting a Barrier anywhere never changes rows
// or cluster time; a pass-everything PPFilter is an identity on results.
func TestPlanAlgebraInvariants(t *testing.T) {
	blobs := makeBlobs(200)
	base := []Operator{
		&Scan{Blobs: blobs},
		&Process{P: fakeUDF{name: "A", cost: 3, col: "x"}},
		&Select{Pred: query.MustParse("x>50")},
		&Process{P: fakeUDF{name: "B", cost: 2, col: "x"}},
	}
	ref, err := Run(Plan{Ops: base}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Barrier insertion at every position after the scan.
	for pos := 1; pos <= len(base); pos++ {
		ops := make([]Operator, 0, len(base)+1)
		ops = append(ops, base[:pos]...)
		ops = append(ops, &Barrier{Label: "t"})
		ops = append(ops, base[pos:]...)
		res, err := Run(Plan{Ops: ops}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(ref.Rows) || res.ClusterTime != ref.ClusterTime {
			t.Fatalf("barrier at %d changed semantics: rows %d/%d cluster %v/%v",
				pos, len(res.Rows), len(ref.Rows), res.ClusterTime, ref.ClusterTime)
		}
	}
	// Pass-everything filter is a result identity (it only adds its cost).
	withFilter := []Operator{
		base[0],
		&PPFilter{F: thresholdFilter{col: "x", t: -1, cost: 0.5}},
	}
	withFilter = append(withFilter, base[1:]...)
	res, err := Run(Plan{Ops: withFilter}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ref.Rows) {
		t.Fatalf("identity filter changed rows: %d vs %d", len(res.Rows), len(ref.Rows))
	}
	if res.ClusterTime != ref.ClusterTime+0.5*float64(len(blobs)) {
		t.Fatalf("identity filter cost accounting wrong: %v vs %v",
			res.ClusterTime, ref.ClusterTime+0.5*float64(len(blobs)))
	}
}
