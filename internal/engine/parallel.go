package engine

import (
	"fmt"
	"sync"
	"time"

	"probpred/internal/obs"
)

// Parallel execution: the virtual cost model already charges work as if it
// ran on a cluster, but the simulator itself can also use real goroutines
// for the row-parallel operators (Process, PPFilter) so that large streams
// execute quickly on multi-core machines. Parallelism never changes
// results, costs or row order — inputs are chunked, chunks run
// concurrently, and outputs are concatenated in chunk order.
//
// Processors run under Workers > 1 must be safe for concurrent Apply calls
// (the built-in UDFs are; see udf package notes).

// runOp executes one operator, using the parallel path for row-parallel
// operators when cfg.Workers > 1 and threading the retry policy into
// processor execution. parent is the operator's span, under which the
// parallel path emits per-chunk child spans; tally accumulates the
// operator's retry/timeout counts and ctally the operator's score-cache
// hits/misses for the metrics layer. Both tallies belong to this single
// operator execution — PPFilter instances (and the compiled filters behind
// them) may be shared by concurrent Runs, so per-run accounting must never
// live on the operator itself.
func runOp(op Operator, in []Row, st *Stats, cfg Config, parent *obs.Span, tally *retryTally, ctally *cacheTally) ([]Row, error) {
	workers := cfg.Workers
	if workers > 1 && len(in) >= 2*workers {
		switch o := op.(type) {
		case *Process:
			return o.execParallel(in, st, workers, cfg.Retry, cfg.Obs, parent, tally)
		case *PPFilter:
			return o.execParallel(in, st, workers, cfg.Obs, parent, ctally)
		}
	}
	switch o := op.(type) {
	case *Process:
		return o.exec(in, st, cfg.Retry, tally)
	case *PPFilter:
		out, total := o.run(in, ctally)
		st.charge(o.Name(), total)
		return out, nil
	}
	return op.Exec(in, st)
}

// chunkBounds splits n items into at most workers contiguous chunks.
func chunkBounds(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	size := (n + workers - 1) / workers
	var out [][2]int
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// chunkTrace records one chunk's span timing from inside its goroutine;
// spans are emitted after the join, in chunk order, so sinks see a
// deterministic sequence. Slices are per-chunk indexed: no locking needed.
type chunkTrace struct {
	tr     *obs.Tracer
	parent *obs.Span
	starts []time.Time
	walls  []int64
}

func newChunkTrace(tr *obs.Tracer, parent *obs.Span, chunks int) *chunkTrace {
	if !tr.Enabled() {
		return nil
	}
	return &chunkTrace{tr: tr, parent: parent, starts: make([]time.Time, chunks), walls: make([]int64, chunks)}
}

func (ct *chunkTrace) begin(ci int) {
	if ct != nil {
		ct.starts[ci] = time.Now()
	}
}

func (ct *chunkTrace) end(ci int) {
	if ct != nil {
		ct.walls[ci] = time.Since(ct.starts[ci]).Nanoseconds()
	}
}

// emit sends the chunk spans in chunk order.
func (ct *chunkTrace) emit(opName string, bounds [][2]int, costs []float64, results [][]Row, errs []error) {
	if ct == nil {
		return
	}
	for ci, b := range bounds {
		sp := ct.tr.BeginChild(ct.parent, obs.KindChunk, fmt.Sprintf("%s[%d:%d]", opName, b[0], b[1]))
		sp.Start = ct.starts[ci]
		sp.WallNS = ct.walls[ci]
		sp.CostVMS = costs[ci]
		sp.RowsIn = b[1] - b[0]
		sp.RowsOut = len(results[ci])
		if errs != nil && errs[ci] != nil {
			sp.SetAttr("error", errs[ci].Error())
		}
		ct.tr.EmitSpan(sp)
	}
}

// execParallel applies the processor across chunks concurrently, retrying
// transient row failures under the policy. Per-chunk virtual costs are summed
// in chunk order so accounting stays deterministic for a given worker count.
// When a chunk fails, the work every chunk performed up to that point —
// completed chunks, the failing chunk's rows before the failure, and all
// retry attempts — is still charged, matching the sequential path's
// charge-then-fail accounting.
func (p *Process) execParallel(in []Row, st *Stats, workers int, pol RetryPolicy, tr *obs.Tracer, parent *obs.Span, tally *retryTally) ([]Row, error) {
	bounds := chunkBounds(len(in), workers)
	results := make([][]Row, len(bounds))
	costs := make([]float64, len(bounds))
	errs := make([]error, len(bounds))
	tallies := make([]retryTally, len(bounds))
	ct := newChunkTrace(tr, parent, len(bounds))
	var wg sync.WaitGroup
	for ci, b := range bounds {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			ct.begin(ci)
			defer ct.end(ci)
			// Preallocate at chunk size: processors usually emit one row per
			// input, so this avoids the append-growth reallocations that used
			// to dominate worker allocation churn.
			out := make([]Row, 0, hi-lo)
			total := 0.0
			for _, r := range in[lo:hi] {
				rows, cost, err := applyWithRetry(p.P, r, pol, &tallies[ci])
				total += cost
				if err != nil {
					errs[ci] = fmt.Errorf("processor %s: %w", p.P.Name(), err)
					costs[ci] = total
					return
				}
				out = append(out, rows...)
			}
			results[ci] = out
			costs[ci] = total
		}(ci, b[0], b[1])
	}
	wg.Wait()
	// Charge every chunk's accumulated work — including partial work in
	// chunks that failed — before deciding the outcome.
	total := 0.0
	for _, c := range costs {
		total += c
	}
	st.charge(p.Name(), total)
	if tally != nil {
		for _, t := range tallies {
			tally.add(t)
		}
	}
	ct.emit(p.Name(), bounds, costs, results, errs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Row
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// execParallel tests the blob filter across chunks concurrently. Each chunk
// runs through the same batch fast path as the sequential Exec (one TestBatch
// call per chunk over sync.Pool-recycled buffers, with a per-row fallback for
// plain BlobFilters), so per-row results and per-chunk cost sums are
// identical across worker counts.
func (p *PPFilter) execParallel(in []Row, st *Stats, workers int, tr *obs.Tracer, parent *obs.Span, ctally *cacheTally) ([]Row, error) {
	bounds := chunkBounds(len(in), workers)
	results := make([][]Row, len(bounds))
	costs := make([]float64, len(bounds))
	ct := newChunkTrace(tr, parent, len(bounds))
	var wg sync.WaitGroup
	for ci, b := range bounds {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			ct.begin(ci)
			defer ct.end(ci)
			// ctally's counters are atomic, so chunks share it directly.
			results[ci], costs[ci] = p.run(in[lo:hi], ctally)
		}(ci, b[0], b[1])
	}
	wg.Wait()
	total := 0.0
	n := 0
	for i, r := range results {
		n += len(r)
		total += costs[i]
	}
	out := make([]Row, 0, n)
	for _, r := range results {
		out = append(out, r...)
	}
	st.charge(p.Name(), total)
	ct.emit(p.Name(), bounds, costs, results, nil)
	return out, nil
}
