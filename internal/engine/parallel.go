package engine

import (
	"fmt"
	"sync"
)

// Parallel execution: the virtual cost model already charges work as if it
// ran on a cluster, but the simulator itself can also use real goroutines
// for the row-parallel operators (Process, PPFilter) so that large streams
// execute quickly on multi-core machines. Parallelism never changes
// results, costs or row order — inputs are chunked, chunks run
// concurrently, and outputs are concatenated in chunk order.
//
// Processors run under Workers > 1 must be safe for concurrent Apply calls
// (the built-in UDFs are; see udf package notes).

// runOp executes one operator, using the parallel path for row-parallel
// operators when cfg.Workers > 1 and threading the retry policy into
// processor execution.
func runOp(op Operator, in []Row, st *Stats, cfg Config) ([]Row, error) {
	workers := cfg.Workers
	if workers > 1 && len(in) >= 2*workers {
		switch o := op.(type) {
		case *Process:
			return o.execParallel(in, st, workers, cfg.Retry)
		case *PPFilter:
			return o.execParallel(in, st, workers)
		}
	}
	if p, ok := op.(*Process); ok {
		return p.exec(in, st, cfg.Retry)
	}
	return op.Exec(in, st)
}

// chunkBounds splits n items into at most workers contiguous chunks.
func chunkBounds(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	size := (n + workers - 1) / workers
	var out [][2]int
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// execParallel applies the processor across chunks concurrently, retrying
// transient row failures under the policy. Per-chunk virtual costs are summed
// in chunk order so accounting stays deterministic for a given worker count.
func (p *Process) execParallel(in []Row, st *Stats, workers int, pol RetryPolicy) ([]Row, error) {
	bounds := chunkBounds(len(in), workers)
	results := make([][]Row, len(bounds))
	costs := make([]float64, len(bounds))
	errs := make([]error, len(bounds))
	var wg sync.WaitGroup
	for ci, b := range bounds {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			var out []Row
			total := 0.0
			for _, r := range in[lo:hi] {
				rows, cost, err := applyWithRetry(p.P, r, pol)
				total += cost
				if err != nil {
					errs[ci] = fmt.Errorf("processor %s: %w", p.P.Name(), err)
					costs[ci] = total
					return
				}
				out = append(out, rows...)
			}
			results[ci] = out
			costs[ci] = total
		}(ci, b[0], b[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Row
	total := 0.0
	for i, r := range results {
		out = append(out, r...)
		total += costs[i]
	}
	st.charge(p.Name(), total)
	return out, nil
}

// execParallel tests the blob filter across chunks concurrently.
func (p *PPFilter) execParallel(in []Row, st *Stats, workers int) ([]Row, error) {
	bounds := chunkBounds(len(in), workers)
	results := make([][]Row, len(bounds))
	costs := make([]float64, len(bounds))
	var wg sync.WaitGroup
	for ci, b := range bounds {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			var out []Row
			total := 0.0
			for _, r := range in[lo:hi] {
				ok, cost := p.F.Test(r.Blob)
				total += cost
				if ok {
					out = append(out, r)
				}
			}
			results[ci] = out
			costs[ci] = total
		}(ci, b[0], b[1])
	}
	wg.Wait()
	var out []Row
	total := 0.0
	for i, r := range results {
		out = append(out, r...)
		total += costs[i]
	}
	st.charge(p.Name(), total)
	return out, nil
}
