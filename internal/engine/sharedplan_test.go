package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"probpred/internal/blob"
)

// Regression tests for per-run accounting on SHARED plans: serving mode
// executes one compiled Plan object from many sessions at once, and the
// engine's PerOp cache counters and wall times must describe each Run alone.
// The original design read cumulative counters off the shared filter and
// diffed them around the operator, which interleaves concurrent runs'
// lookups; these tests fail under that scheme (and under -race for any
// unsynchronized variant).

// sharedScores is a concurrency-safe score memo shared across runs, playing
// the role of the optimizer's ScoreCache.
type sharedScores struct {
	mu sync.RWMutex
	m  map[int]float64
}

func newSharedScores() *sharedScores { return &sharedScores{m: map[int]float64{}} }

func (s *sharedScores) get(id int) (float64, bool) {
	s.mu.RLock()
	v, ok := s.m[id]
	s.mu.RUnlock()
	return v, ok
}

func (s *sharedScores) put(id int, v float64) {
	s.mu.Lock()
	s.m[id] = v
	s.mu.Unlock()
}

// cachedThresh is a scalar CachedBlobFilter over the x>t predicate.
type cachedThresh struct {
	thresholdFilter
	c *sharedScores
}

func (f cachedThresh) score(b blob.Blob, hits, misses *atomic.Uint64) float64 {
	if v, ok := f.c.get(b.ID); ok {
		hits.Add(1)
		return v
	}
	v, _ := b.TruthVal(f.col)
	f.c.put(b.ID, v)
	misses.Add(1)
	return v
}

func (f cachedThresh) TestCached(b blob.Blob, hits, misses *atomic.Uint64) (bool, float64) {
	return f.score(b, hits, misses) > f.t, f.cost
}

// cachedBatchThresh adds the batch interfaces on top of cachedThresh so the
// batch fast path is exercised too.
type cachedBatchThresh struct{ cachedThresh }

func (f cachedBatchThresh) TestBatch(blobs []blob.Blob, pass []bool, cost []float64) {
	for i, b := range blobs {
		v, _ := b.TruthVal(f.col)
		pass[i] = v > f.t
		cost[i] = f.cost
	}
}

func (f cachedBatchThresh) TestBatchCached(blobs []blob.Blob, pass []bool, cost []float64, hits, misses *atomic.Uint64) {
	for i, b := range blobs {
		pass[i] = f.score(b, hits, misses) > f.t
		cost[i] = f.cost
	}
}

// runSharedPlanTest warms the cache with one run, then executes the same
// Plan object from many goroutines and checks each result's PP-filter
// OpStats in isolation: exactly rowsIn cache lookups, all hits after warmup,
// per-run cost and output rows identical to the warmup run.
func runSharedPlanTest(t *testing.T, filter BlobFilter, workers int) {
	t.Helper()
	const n = 200
	plan := Plan{Ops: []Operator{&Scan{Blobs: makeBlobs(n)}, &PPFilter{F: filter}}}
	cfg := Config{Workers: workers, NoStageOverhead: true}

	ppStats := func(r *Result) OpStats {
		t.Helper()
		for _, op := range r.PerOp {
			if op.PPFilter {
				return op
			}
		}
		t.Fatal("no PPFilter OpStats in result")
		return OpStats{}
	}

	warm, err := Run(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := ppStats(warm)
	if ws.CacheHits != 0 || ws.CacheMisses != n {
		t.Fatalf("warmup run: hits=%d misses=%d, want 0/%d", ws.CacheHits, ws.CacheMisses, n)
	}

	const runs = 8
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(plan, cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	for i, r := range results {
		s := ppStats(r)
		// Every lookup must hit the warmed cache and be counted exactly once
		// for THIS run; interleaved accounting would inflate some runs and
		// starve others.
		if s.CacheHits != n || s.CacheMisses != 0 {
			t.Errorf("run %d: hits=%d misses=%d, want %d/0", i, s.CacheHits, s.CacheMisses, n)
		}
		if s.WallNS < 0 {
			t.Errorf("run %d: negative WallNS %d", i, s.WallNS)
		}
		if s.Cost != ws.Cost {
			t.Errorf("run %d: PP cost %v, want %v", i, s.Cost, ws.Cost)
		}
		if r.ClusterTime != warm.ClusterTime {
			t.Errorf("run %d: cluster time %v, want %v", i, r.ClusterTime, warm.ClusterTime)
		}
		if len(r.Rows) != len(warm.Rows) {
			t.Fatalf("run %d: %d rows, want %d", i, len(r.Rows), len(warm.Rows))
		}
		for j := range r.Rows {
			if r.Rows[j].Blob.ID != warm.Rows[j].Blob.ID {
				t.Fatalf("run %d row %d: blob %d, want %d", i, j, r.Rows[j].Blob.ID, warm.Rows[j].Blob.ID)
			}
		}
	}
}

func TestSharedPlanCacheCountersScalar(t *testing.T) {
	base := cachedThresh{thresholdFilter: thresholdFilter{col: "x", t: 49, cost: 1}, c: newSharedScores()}
	runSharedPlanTest(t, base, 1)
}

func TestSharedPlanCacheCountersBatchParallel(t *testing.T) {
	base := cachedThresh{thresholdFilter: thresholdFilter{col: "x", t: 49, cost: 1}, c: newSharedScores()}
	runSharedPlanTest(t, cachedBatchThresh{base}, 4)
}

// TestUncachedFilterReportsZeroCounters pins the quiet-default contract:
// filters without cache awareness leave both counters at zero.
func TestUncachedFilterReportsZeroCounters(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(50)},
		&PPFilter{F: thresholdFilter{col: "x", t: 10, cost: 1}},
	}}
	res, err := Run(plan, Config{NoStageOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.PerOp {
		if op.CacheHits != 0 || op.CacheMisses != 0 {
			t.Fatalf("op %s: hits=%d misses=%d, want 0/0", op.Name, op.CacheHits, op.CacheMisses)
		}
	}
}
