package engine

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// EXPLAIN ANALYZE: the post-execution counterpart of Explain. Where Explain
// shows the plan the optimizer chose, Analyze shows how the execution matched
// the optimizer's expectations — per-operator estimated vs actual
// cardinalities, virtual cost, real wall time, PP pass rates, and a
// misestimation flag wherever the actuals fall outside tolerance. It renders
// from Result.PerOp alone (WallNS and friends are measured unconditionally),
// so no tracer or registry needs to be attached.

// AnalyzeOptions shapes EXPLAIN ANALYZE rendering.
type AnalyzeOptions struct {
	// EstimatedRows[i] is the planner's estimated output cardinality for
	// Result.PerOp[i]. Negative entries — and positions beyond the slice —
	// mean "no estimate": they render as "-" and are never flagged.
	EstimatedRows []float64
	// Tolerance is the relative cardinality error |actual−est|/max(est,1)
	// tolerated before an operator is flagged MISESTIMATE. Zero selects 0.25.
	Tolerance float64
}

// DefaultAnalyzeTolerance is the misestimation tolerance used when
// AnalyzeOptions.Tolerance is zero.
const DefaultAnalyzeTolerance = 0.25

// Analyze renders the EXPLAIN ANALYZE tree for an executed plan.
func (r *Result) Analyze(opts AnalyzeOptions) string {
	tol := opts.Tolerance
	if tol == 0 {
		tol = DefaultAnalyzeTolerance
	}
	est := func(i int) float64 {
		if i < len(opts.EstimatedRows) {
			return opts.EstimatedRows[i]
		}
		return -1
	}
	var b strings.Builder
	var opWall int64
	for _, op := range r.PerOp {
		opWall += op.WallNS
	}
	fmt.Fprintf(&b, "EXPLAIN ANALYZE  cluster=%.0f vms  latency=%.0f vms  stages=%d  wall=%s",
		r.ClusterTime, r.Latency, r.Stages, fmtWall(opWall))
	if r.Chunks > 0 {
		fmt.Fprintf(&b, "  chunks=%d  swaps=%d", r.Chunks, len(r.Swaps))
	}
	b.WriteString("\n")
	stage := 1
	fmt.Fprintf(&b, "stage %d:\n", stage)
	for i, op := range r.PerOp {
		if op.StageBoundary {
			stage++
			fmt.Fprintf(&b, "stage %d:\n", stage)
		}
		row := fmt.Sprintf("  -> %-36s est=%-8s act=%-8d cost=%-10.1f wall=%-9s",
			truncate(op.Name, 36), fmtEst(est(i)), op.RowsOut, op.Cost, fmtWall(op.WallNS))
		var notes []string
		if op.PPFilter && op.RowsIn > 0 {
			notes = append(notes, fmt.Sprintf("pass=%.1f%%", 100*float64(op.RowsOut)/float64(op.RowsIn)))
		}
		if op.Retries > 0 {
			notes = append(notes, fmt.Sprintf("retries=%d", op.Retries))
		}
		if op.Timeouts > 0 {
			notes = append(notes, fmt.Sprintf("timeouts=%d", op.Timeouts))
		}
		if e := est(i); e >= 0 {
			if relErr := math.Abs(float64(op.RowsOut)-e) / math.Max(e, 1); relErr > tol {
				notes = append(notes, fmt.Sprintf("MISESTIMATE ×%.2f", misestimateFactor(float64(op.RowsOut), e)))
			}
		}
		if len(notes) > 0 {
			row += " " + strings.Join(notes, " ")
		}
		b.WriteString(strings.TrimRight(row, " "))
		b.WriteString("\n")
		// Operators hot-swapped mid-run would otherwise attribute every row
		// to the final plan; show each rendition change and its boundary.
		for _, sw := range r.Swaps {
			if sw.OpIndex == i {
				fmt.Fprintf(&b, "       HOT-SWAP @chunk %d/%d: %s -> %s\n",
					sw.Chunk, r.Chunks, sw.Old, sw.New)
			}
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// Misestimated returns the PerOp indices flagged by Analyze under the same
// tolerance rules — the machine-readable face of the MISESTIMATE marker.
func (r *Result) Misestimated(opts AnalyzeOptions) []int {
	tol := opts.Tolerance
	if tol == 0 {
		tol = DefaultAnalyzeTolerance
	}
	var out []int
	for i := range r.PerOp {
		if i >= len(opts.EstimatedRows) {
			break
		}
		e := opts.EstimatedRows[i]
		if e < 0 {
			continue
		}
		if math.Abs(float64(r.PerOp[i].RowsOut)-e)/math.Max(e, 1) > tol {
			out = append(out, i)
		}
	}
	return out
}

// misestimateFactor reports how far off the estimate was, as a ≥1 ratio in
// whichever direction the error runs (×2.00 means "off by 2× either way").
func misestimateFactor(actual, est float64) float64 {
	lo, hi := math.Min(actual, est), math.Max(actual, est)
	if lo <= 0 {
		return hi + 1 // degenerate: one side is zero; report magnitude+1
	}
	return hi / lo
}

func fmtEst(e float64) string {
	if e < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", e)
}

// fmtWall renders nanoseconds compactly (µs under 1ms, ms under 1s).
func fmtWall(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}
