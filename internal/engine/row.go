// Package engine implements the relational data-parallel substrate the
// paper's system runs on (§4): rows that carry a raw blob plus
// UDF-materialized columns, Volcano-style operators (scan, processor UDF,
// select, project, foreign-key join, group/reduce, PP filter), and a
// deterministic virtual cost model.
//
// The paper evaluates on Microsoft's Cosmos cluster and reports two metrics
// (§8.2): cluster processing time (total resource usage) and query latency
// (end-to-end wall time). We reproduce both deterministically: every
// operator declares a per-row cost in virtual milliseconds; cluster time is
// the sum of per-row costs, and latency models a partitioned pipelined
// execution where stage barriers serialize (which is what makes SortP's
// latency worse than NoP's even as it saves resources, §8.2).
package engine

import (
	"fmt"

	"probpred/internal/blob"
	"probpred/internal/query"
)

// Row is one tuple: the originating raw blob plus the relational columns
// materialized so far.
type Row struct {
	Blob blob.Blob
	Cols map[string]query.Value
}

// NewRow wraps a blob with no materialized columns.
func NewRow(b blob.Blob) Row {
	return Row{Blob: b, Cols: map[string]query.Value{}}
}

// Lookup implements the predicate binding over the row's columns.
func (r Row) Lookup(col string) (query.Value, bool) {
	v, ok := r.Cols[col]
	return v, ok
}

// With returns a copy of the row with one additional column; the original is
// not modified (operators may hold references to earlier rows).
func (r Row) With(col string, v query.Value) Row {
	cols := make(map[string]query.Value, len(r.Cols)+1)
	for k, val := range r.Cols {
		cols[k] = val
	}
	cols[col] = v
	return Row{Blob: r.Blob, Cols: cols}
}

// Get returns a column value or an error naming the missing column.
func (r Row) Get(col string) (query.Value, error) {
	v, ok := r.Cols[col]
	if !ok {
		return query.Value{}, fmt.Errorf("engine: row has no column %q", col)
	}
	return v, nil
}

// Processor is the row-manipulator UDF template of §4: it produces zero or
// more output rows per input row. Data ingestion and per-blob ML operations
// (detectors, feature extractors, classifiers) are processors.
type Processor interface {
	// Name identifies the UDF in plans and stats.
	Name() string
	// Cost is the virtual per-input-row execution cost.
	Cost() float64
	// Apply transforms one input row.
	Apply(r Row) ([]Row, error)
}

// Reducer is the grouped-operation UDF template of §4 (e.g. object tracking
// over an ordered group of frames). On the plan it translates to a
// partition-shuffle-aggregate, which is a stage barrier.
type Reducer interface {
	Name() string
	// Cost is the virtual per-input-row cost.
	Cost() float64
	// Key extracts the grouping key.
	Key(r Row) (string, error)
	// Reduce transforms one group.
	Reduce(key string, rows []Row) ([]Row, error)
}

// Combiner is the custom-join UDF template of §4: an operation over two
// groups of related rows, like a join implementation.
type Combiner interface {
	Name() string
	// Cost is the virtual cost per pair of input rows considered.
	Cost() float64
	// Combine joins two co-keyed groups.
	Combine(key string, left, right []Row) ([]Row, error)
}
