package engine

import (
	"strings"
	"testing"

	"probpred/internal/metrics"
	"probpred/internal/query"
)

func TestRunEmitsMetrics(t *testing.T) {
	reg := metrics.New()
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(100)},
		&PPFilter{F: thresholdFilter{col: "x", t: 49, cost: 1}},
		&Process{P: fakeUDF{name: "XExtract", cost: 5, col: "x"}},
		&Select{Pred: query.MustParse("x>=60")},
	}}
	res, err := Run(plan, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("engine_runs_total", "").Value(); got != 1 {
		t.Fatalf("engine_runs_total = %v, want 1", got)
	}
	if got := reg.Counter("engine_run_errors_total", "").Value(); got != 0 {
		t.Fatalf("engine_run_errors_total = %v, want 0", got)
	}
	// The PP filter tested the whole scan output and passed x>49: 50 rows.
	f := metrics.L("filter", "PP[thresh]")
	if got := reg.Counter("engine_ppfilter_tested_total", "", f).Value(); got != 100 {
		t.Fatalf("tested = %v, want 100", got)
	}
	if got := reg.Counter("engine_ppfilter_passed_total", "", f).Value(); got != 50 {
		t.Fatalf("passed = %v, want 50", got)
	}
	op := metrics.L("op", "XExtract")
	if got := reg.Counter("engine_op_rows_in_total", "", op).Value(); got != 50 {
		t.Fatalf("udf rows in = %v, want 50", got)
	}
	if got := reg.Histogram("engine_op_cost_vms", "", op).Count(); got != 1 {
		t.Fatalf("udf cost observations = %v, want 1", got)
	}
	if got := reg.Histogram("engine_run_cluster_vms", "").Count(); got != 1 {
		t.Fatalf("run cluster observations = %v, want 1", got)
	}
	// PerOp must mirror what the metrics saw.
	if len(res.PerOp) != 4 {
		t.Fatalf("PerOp = %d entries", len(res.PerOp))
	}
	if !res.PerOp[1].PPFilter || res.PerOp[1].RowsOut != 50 {
		t.Fatalf("PerOp[1] = %+v", res.PerOp[1])
	}
	for i, op := range res.PerOp {
		if op.WallNS < 0 {
			t.Fatalf("PerOp[%d].WallNS negative", i)
		}
	}
}

func TestRunErrorEmitsErrorMetrics(t *testing.T) {
	reg := metrics.New()
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: failTailBlobs(10)},
		&Process{P: fakeUDF{name: "U", cost: 2, col: "x"}},
	}}
	if _, err := Run(plan, Config{Metrics: reg}); err == nil {
		t.Fatal("run should fail")
	}
	if got := reg.Counter("engine_runs_total", "").Value(); got != 1 {
		t.Fatalf("engine_runs_total = %v", got)
	}
	if got := reg.Counter("engine_run_errors_total", "").Value(); got != 1 {
		t.Fatalf("engine_run_errors_total = %v", got)
	}
	// Successful-run histograms must not record the failed run.
	if got := reg.Histogram("engine_run_cluster_vms", "").Count(); got != 0 {
		t.Fatalf("cluster histogram recorded a failed run: %d", got)
	}
}

func TestRetryMetricsCounted(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := metrics.New()
		blobs := makeBlobs(40)
		udf := &flakyUDF{fakeUDF: fakeUDF{name: "F", cost: 1, col: "x"}, fails: map[int]int{3: 1, 17: 1}}
		plan := Plan{Ops: []Operator{
			&Scan{Blobs: blobs},
			&Process{P: udf},
		}}
		res, err := Run(plan, Config{Metrics: reg, Workers: workers, Retry: RetryPolicy{MaxAttempts: 3}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		op := metrics.L("op", "F")
		if got := reg.Counter("engine_retries_total", "", op).Value(); got != 2 {
			t.Fatalf("workers=%d: retries = %v, want 2", workers, got)
		}
		if res.PerOp[1].Retries != 2 {
			t.Fatalf("workers=%d: PerOp retries = %d, want 2", workers, res.PerOp[1].Retries)
		}
	}
}

func TestAnalyzeFlagsMisestimates(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(100)},
		&PPFilter{F: thresholdFilter{col: "x", t: 49, cost: 1}},
		&Process{P: fakeUDF{name: "XExtract", cost: 5, col: "x"}},
		&Select{Pred: query.MustParse("x>=60")},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Actual filter output is 50; estimate 20 is off by 2.5x and must flag.
	// The σ actually emits 40; estimate 38 is within the default tolerance.
	out := res.Analyze(AnalyzeOptions{EstimatedRows: []float64{100, 20, 50, 38}})
	if !strings.Contains(out, "MISESTIMATE") {
		t.Fatalf("expected a MISESTIMATE flag:\n%s", out)
	}
	if !strings.Contains(out, "pass=50.0%") {
		t.Fatalf("expected the PP pass rate:\n%s", out)
	}
	if strings.Count(out, "MISESTIMATE") != 1 {
		t.Fatalf("exactly one flag expected:\n%s", out)
	}
	flagged := res.Misestimated(AnalyzeOptions{EstimatedRows: []float64{100, 20, 50, 38}})
	if len(flagged) != 1 || flagged[0] != 1 {
		t.Fatalf("Misestimated = %v, want [1]", flagged)
	}
	// No estimates at all: render with "-" and no flags.
	out = res.Analyze(AnalyzeOptions{})
	if strings.Contains(out, "MISESTIMATE") {
		t.Fatalf("flag without estimates:\n%s", out)
	}
	if !strings.Contains(out, "est=-") {
		t.Fatalf("missing '-' placeholder:\n%s", out)
	}
}

func TestMetricsDisabledIsNoop(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(10)},
		&Process{P: fakeUDF{name: "X", cost: 1, col: "x"}},
		&Select{Pred: query.MustParse("x>=5")},
	}}
	// A nil registry must not panic anywhere in the metrics path.
	if _, err := Run(plan, Config{}); err != nil {
		t.Fatal(err)
	}
}
