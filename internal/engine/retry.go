package engine

import (
	"errors"
	"fmt"
	"math"
)

// RetryPolicy controls how the engine handles transient row-level UDF
// failures (Config.Retry). A data-parallel cluster restarts failed tasks
// rather than failing the job; the policy models that in virtual time: every
// attempt's work and every backoff wait are charged to the operator's virtual
// cost, so retries show up in ClusterTime and Latency. The zero value retries
// nothing (one attempt, no timeout), preserving the historical behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per row, including the
	// first. Zero or one disables retries.
	MaxAttempts int
	// BackoffBaseMS is the virtual backoff charged before the first retry.
	// Zero selects 50 when retries are enabled.
	BackoffBaseMS float64
	// BackoffFactor multiplies the backoff per additional retry
	// (exponential). Zero selects 2.
	BackoffFactor float64
	// RowTimeoutMS is the per-attempt virtual timeout budget: an attempt
	// whose virtual duration exceeds it is killed at the deadline and
	// treated as a transient failure (stragglers become retries rather than
	// unbounded latency). Zero disables the timeout.
	RowTimeoutMS float64
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the virtual ms charged before retrying after the given
// 1-based failed attempt.
func (p RetryPolicy) backoff(attempt int) float64 {
	base := p.BackoffBaseMS
	if base == 0 {
		base = 50
	}
	factor := p.BackoffFactor
	if factor == 0 {
		factor = 2
	}
	return base * math.Pow(factor, float64(attempt-1))
}

// TimedProcessor is an optional Processor extension for processors whose
// per-call virtual duration varies from Cost() — e.g. fault-injected
// stragglers. ApplyTimed reports the call's virtual duration in ms; it is
// meaningful on failures too (a task can burn time and then die).
type TimedProcessor interface {
	Processor
	ApplyTimed(r Row) ([]Row, float64, error)
}

// IsTransient reports whether any error in err's chain declares itself
// retryable via a `Transient() bool` method (e.g. fault.TransientError or
// the engine's own row timeouts).
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// rowTimeoutError is the engine-raised failure for an attempt that exceeded
// the policy's per-row virtual budget. It is transient: the next attempt may
// not straggle.
type rowTimeoutError struct {
	op              string
	elapsed, budget float64
}

func (e *rowTimeoutError) Error() string {
	return fmt.Sprintf("engine: %s row ran %.0f virtual ms, exceeding the %.0f ms budget",
		e.op, e.elapsed, e.budget)
}

func (e *rowTimeoutError) Transient() bool { return true }

// OpError attributes a run failure to the operator and pipeline stage it
// occurred in.
type OpError struct {
	// Stage is the zero-based pipeline stage index.
	Stage int
	// Op is the failing operator's name.
	Op string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *OpError) Error() string {
	return fmt.Sprintf("engine: stage %d, operator %s: %v", e.Stage, e.Op, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *OpError) Unwrap() error { return e.Err }

// applyOnce runs a single attempt, reporting the attempt's virtual duration
// (Cost() for plain processors; the processor's own accounting for
// TimedProcessors).
func applyOnce(p Processor, r Row) ([]Row, float64, error) {
	if tp, ok := p.(TimedProcessor); ok {
		return tp.ApplyTimed(r)
	}
	rows, err := p.Apply(r)
	return rows, p.Cost(), err
}

// applyWithRetry applies a processor to one row under the retry policy. The
// returned cost is the total virtual ms consumed: every attempt (successful,
// failed, or killed at the timeout deadline) plus every backoff wait. tally,
// when non-nil, counts timeout kills and retried attempts (plain int
// increments: the caller owns one tally per goroutine).
func applyWithRetry(p Processor, r Row, pol RetryPolicy, tally *retryTally) ([]Row, float64, error) {
	total := 0.0
	for attempt := 1; ; attempt++ {
		rows, elapsed, err := applyOnce(p, r)
		if pol.RowTimeoutMS > 0 && elapsed > pol.RowTimeoutMS {
			// The runtime kills the attempt at the deadline: no result, and
			// only the budget's worth of time was spent.
			err = &rowTimeoutError{op: p.Name(), elapsed: elapsed, budget: pol.RowTimeoutMS}
			elapsed = pol.RowTimeoutMS
			rows = nil
			if tally != nil {
				tally.timeouts++
			}
		}
		total += elapsed
		if err == nil {
			return rows, total, nil
		}
		if !IsTransient(err) || attempt >= pol.attempts() {
			return nil, total, err
		}
		if tally != nil {
			tally.retries++
		}
		total += pol.backoff(attempt)
	}
}
