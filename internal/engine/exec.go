package engine

import (
	"fmt"
	"strconv"
	"time"

	"probpred/internal/metrics"
	"probpred/internal/obs"
)

// Stats accumulates virtual cost and cardinality accounting during a run.
type Stats struct {
	// Cluster is the total cluster processing time in virtual milliseconds
	// (the paper's "cluster processing time": overall resource usage).
	Cluster float64
	// OpCost maps operator name to its accumulated virtual cost.
	OpCost map[string]float64
	// RowsIn / RowsOut record per-operator cardinalities.
	RowsIn, RowsOut map[string]int
}

func newStats() *Stats {
	return &Stats{
		OpCost:  map[string]float64{},
		RowsIn:  map[string]int{},
		RowsOut: map[string]int{},
	}
}

func (s *Stats) charge(op string, cost float64) {
	s.Cluster += cost
	s.OpCost[op] += cost
}

// Plan is a linear chain of operators, source first.
type Plan struct{ Ops []Operator }

// Config controls the execution environment model.
type Config struct {
	// Parallelism is the number of cluster partitions. Zero selects 16.
	Parallelism int
	// Workers sets how many goroutines execute the row-parallel operators
	// (Process, PPFilter). It affects only wall-clock execution of the
	// simulator, never results or virtual costs. Processors must be safe
	// for concurrent Apply when Workers > 1. Zero or one is sequential.
	Workers int
	// StageOverheadMS is the fixed overhead charged to latency per stage:
	// job-wave scheduling, shuffle/materialization setup, and stragglers.
	// Data-parallel clusters pay this per serialized stage regardless of
	// stage size, which is why SortP's serialized predicate stages lose
	// latency even while saving resources (§8.2). Zero selects 15000
	// virtual ms (~15 s per stage, typical for a Cosmos-style batch stage);
	// set NoStageOverhead to model an overhead-free substrate.
	StageOverheadMS float64
	// NoStageOverhead disables the per-stage latency overhead entirely.
	// It exists because StageOverheadMS is defaulted on zero, which would
	// otherwise make "no stage overhead" inexpressible.
	NoStageOverhead bool
	// Retry governs transient row-level UDF failures: attempt budget,
	// exponential backoff charged in virtual ms, and the per-attempt
	// timeout that turns stragglers into retries. The zero value disables
	// retries and timeouts.
	Retry RetryPolicy
	// Obs receives execution spans: one root span per Run, one span per
	// operator (wall-clock, virtual cost, cardinalities), and per-chunk
	// child spans on the row-parallel path. Nil disables tracing at
	// near-zero overhead.
	Obs *obs.Tracer
	// Trace is the session trace context the run belongs to: the run span
	// carries its TraceID (inherited by operator and chunk spans) and is
	// parented under its SpanID. The zero value leaves spans untraced.
	Trace obs.TraceContext
	// Metrics receives numeric telemetry: per-operator cost/wall/cardinality
	// histograms and counters, run totals, PP filter pass counters, and
	// retry/timeout counters. Instruments are resolved per operator per run,
	// never per row, so the batch hot path stays allocation-free with a live
	// registry. Nil disables metrics at one pointer check per run.
	Metrics *metrics.Registry
}

func (c *Config) fill() {
	if c.Parallelism == 0 {
		c.Parallelism = 16
	}
	if c.NoStageOverhead {
		c.StageOverheadMS = 0
	} else if c.StageOverheadMS == 0 {
		c.StageOverheadMS = 15000
	}
}

// OpStats is one operator's accounting, keyed by plan position rather than
// name: two operators sharing a Name() (e.g. the same UDF applied twice)
// stay distinct here, where the name-keyed Stats maps merge them.
type OpStats struct {
	// Name is the operator's display name (not necessarily unique).
	Name string
	// RowsIn / RowsOut are this operator's own cardinalities.
	RowsIn, RowsOut int
	// Cost is the virtual cost this operator alone charged.
	Cost float64
	// WallNS is the operator's real wall-clock duration. Unlike spans it is
	// measured unconditionally (two clock reads per operator), so EXPLAIN
	// ANALYZE works without attaching a sink.
	WallNS int64
	// StageBoundary mirrors the operator's StageBoundary() at execution
	// time, letting renderers regroup PerOp rows into stages.
	StageBoundary bool
	// PPFilter marks injected probabilistic-predicate filters, whose
	// rows-out/rows-in ratio is the observed PP pass rate.
	PPFilter bool
	// Retries / Timeouts count this operator's retried transient failures
	// and row-timeout kills.
	Retries, Timeouts int
	// CacheHits / CacheMisses count this operator's PP score-cache lookups
	// during THIS run only. The counters are tallied per Run invocation, not
	// on the (possibly shared) filter object, so concurrent sessions
	// executing the same compiled plan each see exactly their own lookups.
	// Both stay zero for filters without an attached score cache.
	CacheHits, CacheMisses uint64
}

// Result is the outcome of running a plan.
type Result struct {
	// Rows is the query output.
	Rows []Row
	// ClusterTime is total resource usage in virtual milliseconds.
	ClusterTime float64
	// Latency is the modeled end-to-end time in virtual milliseconds:
	// per-stage work divides across partitions and pipelines within a
	// stage, while stage boundaries serialize and add scheduling overhead.
	Latency float64
	// Stages is the number of pipeline stages in the plan.
	Stages int
	// Stats carries per-operator detail keyed by operator name; operators
	// sharing a name are merged (see PerOp for exact accounting).
	Stats *Stats
	// PerOp carries per-operator detail in plan position order.
	PerOp []OpStats
	// Swaps lists the mid-run plan hot-swaps an adaptive run performed
	// (RunAdaptive; empty for plain runs).
	Swaps []PlanSwap
	// Chunks is how many adaptive chunks executed (zero for plain runs).
	Chunks int
	// SwapErrors counts swap-decider errors the run absorbed by continuing
	// on its current plan.
	SwapErrors int
}

// Run executes the plan and returns rows plus cost accounting. The first
// operator must be a source (it receives a nil input batch). When the run
// fails, work performed before the failure is still charged to the
// operator's stats and visible on the emitted spans (the trace is how a
// failed run's cost is inspected; the Result itself is nil).
func Run(p Plan, cfg Config) (*Result, error) {
	cfg.fill()
	if len(p.Ops) == 0 {
		return nil, fmt.Errorf("engine: empty plan")
	}
	runSpan := cfg.Obs.BeginCtx(cfg.Trace, obs.KindRun, "plan")
	runStart := time.Now()
	st := newStats()
	var rows []Row
	perOp := make([]OpStats, 0, len(p.Ops))
	// stageCosts[i] accumulates the virtual cost of stage i.
	stageCosts := []float64{0}
	for _, op := range p.Ops {
		if op.StageBoundary() {
			stageCosts = append(stageCosts, 0)
		}
		st.RowsIn[op.Name()] += len(rows)
		// The name-keyed delta is exact even for repeated names because
		// operators execute one at a time.
		before := st.OpCost[op.Name()]
		opSpan := cfg.Obs.BeginChild(&runSpan, obs.KindOperator, op.Name())
		var tally retryTally
		var ctally cacheTally
		opStart := time.Now()
		out, err := runOp(op, rows, st, cfg, &opSpan, &tally, &ctally)
		wallNS := time.Since(opStart).Nanoseconds()
		cost := st.OpCost[op.Name()] - before
		opSpan.CostVMS = cost
		opSpan.RowsIn = len(rows)
		opSpan.RowsOut = len(out)
		if err != nil {
			opSpan.SetAttr("error", err.Error())
			cfg.Obs.End(&opSpan)
			runSpan.CostVMS = st.Cluster
			runSpan.SetAttr("error", err.Error())
			cfg.Obs.End(&runSpan)
			emitOpMetrics(cfg.Metrics, op, len(rows), 0, cost, wallNS, tally, &ctally)
			emitRunMetrics(cfg.Metrics, nil, time.Since(runStart).Nanoseconds(), true, cfg.Trace.TraceID)
			return nil, &OpError{Stage: len(stageCosts) - 1, Op: op.Name(), Err: err}
		}
		cfg.Obs.End(&opSpan)
		emitOpMetrics(cfg.Metrics, op, len(rows), len(out), cost, wallNS, tally, &ctally)
		_, isPP := op.(*PPFilter)
		perOp = append(perOp, OpStats{
			Name: op.Name(), RowsIn: len(rows), RowsOut: len(out), Cost: cost,
			WallNS: wallNS, StageBoundary: op.StageBoundary(), PPFilter: isPP,
			Retries: tally.retries, Timeouts: tally.timeouts,
			CacheHits: ctally.hits.Load(), CacheMisses: ctally.misses.Load(),
		})
		stageCosts[len(stageCosts)-1] += cost
		st.RowsOut[op.Name()] += len(out)
		rows = out
	}
	latency := 0.0
	for _, c := range stageCosts {
		latency += c/float64(cfg.Parallelism) + cfg.StageOverheadMS
	}
	runSpan.CostVMS = st.Cluster
	runSpan.RowsOut = len(rows)
	runSpan.SetAttr("stages", strconv.Itoa(len(stageCosts)))
	runSpan.SetAttr("latency_vms", strconv.FormatFloat(latency, 'f', 1, 64))
	cfg.Obs.End(&runSpan)
	res := &Result{
		Rows:        rows,
		ClusterTime: st.Cluster,
		Latency:     latency,
		Stages:      len(stageCosts),
		Stats:       st,
		PerOp:       perOp,
	}
	emitRunMetrics(cfg.Metrics, res, time.Since(runStart).Nanoseconds(), false, cfg.Trace.TraceID)
	return res, nil
}
