package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"probpred/internal/query"
)

// adaptivePlan builds scan → PP → UDF → select → count-by-parity, the shape
// RunAdaptive chunks: three row-local prefix ops and a stage-boundary suffix.
func adaptivePlan(n int, filterCost float64) Plan {
	return Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(n)},
		&PPFilter{F: thresholdFilter{col: "x", t: 9, cost: filterCost}},
		&Process{P: fakeUDF{name: "Expensive", cost: 10, col: "x"}},
		&Select{Pred: query.MustParse("x>9")},
		&GroupReduce{R: countReducer{keyCol: "x"}},
	}}
}

func renderRows(rows []Row) string {
	s := ""
	for _, r := range rows {
		s += fmt.Sprintf("%d:%v;", r.Blob.ID, r.Cols)
	}
	return s
}

// A decider that never swaps makes RunAdaptive a pure re-chunking of Run:
// rows, cluster time, latency and stage count must all be identical, at any
// worker count.
func TestRunAdaptiveMatchesRunWithoutSwap(t *testing.T) {
	plan := adaptivePlan(100, 1)
	want, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := RunAdaptive(plan, Config{Workers: workers}, AdaptiveConfig{
			ChunkRows: 16,
			Decide:    func(ChunkStats) (BlobFilter, error) { return nil, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		if renderRows(got.Rows) != renderRows(want.Rows) {
			t.Fatalf("workers=%d: adaptive rows diverged", workers)
		}
		if got.ClusterTime != want.ClusterTime || got.Latency != want.Latency || got.Stages != want.Stages {
			t.Fatalf("workers=%d: accounting diverged: cluster %v/%v latency %v/%v stages %d/%d",
				workers, got.ClusterTime, want.ClusterTime, got.Latency, want.Latency, got.Stages, want.Stages)
		}
		if got.Chunks != 7 { // ceil(100/16)
			t.Fatalf("chunks = %d, want 7", got.Chunks)
		}
		if len(got.Swaps) != 0 || got.SwapErrors != 0 {
			t.Fatalf("unexpected swaps %v or errors %d", got.Swaps, got.SwapErrors)
		}
	}
}

// cheaperFilter passes exactly the same rows as thresholdFilter but charges
// less — an outcome-equivalent swap target, like a reordered PP expression.
type cheaperFilter struct{ thresholdFilter }

func (f cheaperFilter) Name() string { return "thresh'" }

// A swap after chunk 0 must keep rows byte-identical while lowering total
// virtual cost, and the swap must be recorded with its boundary.
func TestRunAdaptiveSwapMidRun(t *testing.T) {
	plan := adaptivePlan(100, 1)
	want, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		swapped := false
		got, err := RunAdaptive(plan, Config{Workers: workers}, AdaptiveConfig{
			ChunkRows: 20,
			Decide: func(cs ChunkStats) (BlobFilter, error) {
				if swapped {
					return nil, nil
				}
				swapped = true
				return cheaperFilter{thresholdFilter{col: "x", t: 9, cost: 0.25}}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if renderRows(got.Rows) != renderRows(want.Rows) {
			t.Fatalf("workers=%d: swap changed results", workers)
		}
		if len(got.Swaps) != 1 {
			t.Fatalf("swaps = %v, want one", got.Swaps)
		}
		sw := got.Swaps[0]
		if sw.Chunk != 1 || sw.OpIndex != 1 || sw.Old != "PP[thresh]" || sw.New != "PP[thresh']" {
			t.Fatalf("swap record wrong: %+v", sw)
		}
		// Chunk 0 (20 rows) at cost 1, chunks 1-4 (80 rows) at cost 0.25.
		wantPP := 20*1.0 + 80*0.25
		if got := got.Stats.OpCost["PP[thresh]"] + got.Stats.OpCost["PP[thresh']"]; got != wantPP {
			t.Fatalf("PP cost across swap = %v, want %v", got, wantPP)
		}
		if got.ClusterTime >= want.ClusterTime {
			t.Fatalf("swap to cheaper filter did not lower cost: %v vs %v", got.ClusterTime, want.ClusterTime)
		}
		// The swapped position's PerOp row carries the final name and the
		// full cardinality of both plans.
		if got.PerOp[1].Name != "PP[thresh']" || got.PerOp[1].RowsIn != 100 {
			t.Fatalf("swapped PerOp row wrong: %+v", got.PerOp[1])
		}
	}
}

// A failing decider degrades gracefully: the run completes on the current
// plan with identical results, and the failures are counted.
func TestRunAdaptiveDeciderErrorContinues(t *testing.T) {
	plan := adaptivePlan(60, 1)
	want, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAdaptive(plan, Config{}, AdaptiveConfig{
		ChunkRows: 20,
		Decide: func(ChunkStats) (BlobFilter, error) {
			return nil, errors.New("replan exploded")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(got.Rows) != renderRows(want.Rows) {
		t.Fatal("decider errors changed results")
	}
	if got.ClusterTime != want.ClusterTime {
		t.Fatalf("decider errors changed accounting: %v vs %v", got.ClusterTime, want.ClusterTime)
	}
	// Consulted after every chunk but the last: 3 chunks → 2 errors.
	if got.SwapErrors != 2 || len(got.Swaps) != 0 {
		t.Fatalf("swap errors = %d swaps = %v, want 2 and none", got.SwapErrors, got.Swaps)
	}
}

// Plans with no PP filter in the prefix have nothing to adapt and take the
// plain Run path.
func TestRunAdaptiveNoFilterFallsBack(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(40)},
		&Process{P: fakeUDF{name: "U", cost: 1, col: "x"}},
	}}
	res, err := RunAdaptive(plan, Config{}, AdaptiveConfig{
		ChunkRows: 10,
		Decide: func(ChunkStats) (BlobFilter, error) {
			t.Fatal("decider consulted with no swappable operator")
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 0 || len(res.Rows) != 40 {
		t.Fatalf("fallback run wrong: chunks=%d rows=%d", res.Chunks, len(res.Rows))
	}
}

// An operator failure inside a chunk surfaces like Run's: an OpError naming
// the operator, with the work so far charged.
func TestRunAdaptiveOpErrorPropagates(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(40)},
		&PPFilter{F: thresholdFilter{col: "x", t: -1, cost: 1}},
		&Process{P: fakeUDF{name: "U", cost: 1, col: "missing"}},
	}}
	_, err := RunAdaptive(plan, Config{}, AdaptiveConfig{
		ChunkRows: 10,
		Decide:    func(ChunkStats) (BlobFilter, error) { return nil, nil },
	})
	var oe *OpError
	if !errors.As(err, &oe) || oe.Op != "U" {
		t.Fatalf("err = %v, want OpError on U", err)
	}
}

// EXPLAIN ANALYZE must surface hot-swapped operators instead of silently
// attributing all rows to the final plan.
func TestAnalyzeAnnotatesHotSwap(t *testing.T) {
	plan := adaptivePlan(100, 1)
	swapped := false
	res, err := RunAdaptive(plan, Config{}, AdaptiveConfig{
		ChunkRows: 25,
		Decide: func(cs ChunkStats) (BlobFilter, error) {
			if swapped {
				return nil, nil
			}
			swapped = true
			return cheaperFilter{thresholdFilter{col: "x", t: 9, cost: 0.25}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Analyze(AnalyzeOptions{})
	for _, want := range []string{
		"chunks=4", "swaps=1",
		"HOT-SWAP @chunk 1/4: PP[thresh] -> PP[thresh']",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, out)
		}
	}
	// Plain runs stay unannotated.
	plain, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if o := plain.Analyze(AnalyzeOptions{}); strings.Contains(o, "chunks=") || strings.Contains(o, "HOT-SWAP") {
		t.Fatalf("plain run analyze carries adaptive annotations:\n%s", o)
	}
}
