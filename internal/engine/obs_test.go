package engine

import (
	"strings"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/obs"
	"probpred/internal/query"
)

// failTailBlobs returns n blobs whose LAST one has no truth map, making
// fakeUDF fail on it. Placing the failure last makes the sequential and
// parallel paths perform — and therefore charge — exactly the same work.
func failTailBlobs(n int) []blob.Blob {
	blobs := makeBlobs(n)
	blobs[n-1] = blob.Blob{ID: n - 1}
	return blobs
}

// TestParallelErrorChargesPartialWork: a chunk error must not discard the
// virtual cost the workers accumulated. Both paths attempt every row once
// (failure last), so the charged totals must match exactly.
func TestParallelErrorChargesPartialWork(t *testing.T) {
	const n, cost = 40, 7.0
	mkRows := func() []Row {
		rows := make([]Row, n)
		for i, b := range failTailBlobs(n) {
			rows[i] = NewRow(b)
		}
		return rows
	}
	p := &Process{P: fakeUDF{name: "U", cost: cost, col: "x"}}

	seqSt := newStats()
	if _, err := p.exec(mkRows(), seqSt, RetryPolicy{}, nil); err == nil {
		t.Fatal("sequential path should fail")
	}
	parSt := newStats()
	if _, err := p.execParallel(mkRows(), parSt, 4, RetryPolicy{}, nil, nil, nil); err == nil {
		t.Fatal("parallel path should fail")
	}

	want := float64(n) * cost // every row attempted once, failing one included
	if seqSt.OpCost["U"] != want {
		t.Fatalf("sequential charged %v, want %v", seqSt.OpCost["U"], want)
	}
	if parSt.OpCost["U"] != seqSt.OpCost["U"] {
		t.Fatalf("parallel charged %v, sequential %v — accounting diverged",
			parSt.OpCost["U"], seqSt.OpCost["U"])
	}
	if parSt.Cluster != seqSt.Cluster {
		t.Fatalf("cluster totals diverged: %v vs %v", parSt.Cluster, seqSt.Cluster)
	}
}

// TestPPFilterParallelChargesAllChunks: the filter's parallel path must
// charge the same total as its sequential Exec.
func TestPPFilterParallelChargesAllChunks(t *testing.T) {
	mkRows := func() []Row {
		rows := make([]Row, 100)
		for i, b := range makeBlobs(100) {
			rows[i] = NewRow(b)
		}
		return rows
	}
	f := &PPFilter{F: thresholdFilter{col: "x", t: 49, cost: 1}}
	seqSt := newStats()
	if _, err := f.Exec(mkRows(), seqSt); err != nil {
		t.Fatal(err)
	}
	parSt := newStats()
	if _, err := f.execParallel(mkRows(), parSt, 4, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if seqSt.Cluster != parSt.Cluster || seqSt.Cluster != 100 {
		t.Fatalf("filter costs diverged: seq=%v par=%v want 100", seqSt.Cluster, parSt.Cluster)
	}
}

// TestRunEmitsSpans: a traced run emits one root span, one span per
// operator parented under it, and per-chunk child spans on the parallel
// path — with virtual costs that reconcile exactly at every level.
func TestRunEmitsSpans(t *testing.T) {
	col := obs.NewCollector()
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(100)},
		&PPFilter{F: thresholdFilter{col: "x", t: 49, cost: 1}},
		&Process{P: fakeUDF{name: "U", cost: 7, col: "x"}},
		&Select{Pred: query.MustParse("x>60")},
	}}
	res, err := Run(plan, Config{Workers: 4, Obs: obs.New(col)})
	if err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	var run *obs.Span
	ops := map[int64]obs.Span{}
	var chunks []obs.Span
	for i := range spans {
		switch spans[i].Kind {
		case obs.KindRun:
			run = &spans[i]
		case obs.KindOperator:
			ops[spans[i].ID] = spans[i]
		case obs.KindChunk:
			chunks = append(chunks, spans[i])
		}
	}
	if run == nil {
		t.Fatal("no run span")
	}
	if run.CostVMS != res.ClusterTime {
		t.Fatalf("run span cost %v, ClusterTime %v", run.CostVMS, res.ClusterTime)
	}
	if len(ops) != len(plan.Ops) {
		t.Fatalf("operator spans = %d, want %d", len(ops), len(plan.Ops))
	}
	opTotal := 0.0
	for _, sp := range ops {
		if sp.Parent != run.ID {
			t.Fatalf("operator span %q parented under %d, want run %d", sp.Name, sp.Parent, run.ID)
		}
		opTotal += sp.CostVMS
	}
	if opTotal != res.ClusterTime {
		t.Fatalf("operator span costs sum to %v, ClusterTime %v", opTotal, res.ClusterTime)
	}
	// Both row-parallel operators (100 and 50 input rows, 4 workers) must
	// have emitted chunk spans whose costs reconcile with their operator.
	if len(chunks) == 0 {
		t.Fatal("no chunk spans from the parallel path")
	}
	chunkTotal := map[int64]float64{}
	for _, c := range chunks {
		parent, ok := ops[c.Parent]
		if !ok {
			t.Fatalf("chunk %q parented under unknown span %d", c.Name, c.Parent)
		}
		if !strings.HasPrefix(c.Name, parent.Name+"[") {
			t.Fatalf("chunk name %q does not extend operator %q", c.Name, parent.Name)
		}
		chunkTotal[c.Parent] += c.CostVMS
	}
	for id, total := range chunkTotal {
		if total != ops[id].CostVMS {
			t.Fatalf("chunks of %q sum to %v, operator charged %v", ops[id].Name, total, ops[id].CostVMS)
		}
	}
}

// TestFailedRunSpansCarryCost: when a run fails, the Result is nil — the
// emitted spans are how the charged cost is observed. Parallel and
// sequential failures must report identical virtual cost on the run span,
// and the failing chunk must be marked.
func TestFailedRunSpansCarryCost(t *testing.T) {
	const n = 40
	runCost := func(workers int) (float64, []obs.Span) {
		col := obs.NewCollector()
		plan := Plan{Ops: []Operator{
			&Scan{Blobs: failTailBlobs(n)},
			&Process{P: fakeUDF{name: "U", cost: 7, col: "x"}},
		}}
		if _, err := Run(plan, Config{Workers: workers, Obs: obs.New(col)}); err == nil {
			t.Fatal("expected run failure")
		}
		for _, sp := range col.Spans() {
			if sp.Kind == obs.KindRun {
				return sp.CostVMS, col.Spans()
			}
		}
		t.Fatal("no run span on the failed run")
		return 0, nil
	}
	seq, _ := runCost(1)
	par, spans := runCost(4)
	if seq != par {
		t.Fatalf("failed-run costs diverged: sequential %v, parallel %v", seq, par)
	}
	if want := n*scanCost + n*7; seq != want {
		t.Fatalf("failed run charged %v, want %v (scan + all attempts)", seq, want)
	}
	// The chunk that hit the error is annotated.
	marked := false
	for _, sp := range spans {
		if sp.Kind != obs.KindChunk {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "error" {
				marked = true
			}
		}
	}
	if !marked {
		t.Fatal("no chunk span carries the error attribute")
	}
}

// TestRunNilTracerUnchanged: tracing disabled (the default) must not change
// results or costs.
func TestRunNilTracerUnchanged(t *testing.T) {
	plan := func() Plan {
		return Plan{Ops: []Operator{
			&Scan{Blobs: makeBlobs(50)},
			&Process{P: fakeUDF{name: "U", cost: 3, col: "x"}},
			&Select{Pred: query.MustParse("x>10")},
		}}
	}
	plain, err := Run(plan(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(plan(), Config{Obs: obs.New(obs.NopSink{})})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ClusterTime != traced.ClusterTime || len(plain.Rows) != len(traced.Rows) {
		t.Fatalf("tracing changed execution: %v/%d vs %v/%d",
			plain.ClusterTime, len(plain.Rows), traced.ClusterTime, len(traced.Rows))
	}
}
