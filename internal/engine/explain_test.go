package engine

import (
	"strings"
	"testing"
	"unicode/utf8"

	"probpred/internal/query"
)

// TestSummaryDuplicateOperatorNames: two operators sharing a Name() (the
// same UDF applied twice) must each report their own rows and cost. The
// name-keyed Stats maps merge them; PerOp, keyed by plan position, must not.
func TestSummaryDuplicateOperatorNames(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(10)},
		&Process{P: fakeUDF{name: "U", cost: 5, col: "x"}},
		&Process{P: fakeUDF{name: "U", cost: 3, col: "x"}},
		&Select{Pred: query.MustParse("x>=0")},
	}}
	res, err := Run(plan, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerOp) != 4 {
		t.Fatalf("PerOp entries = %d, want 4", len(res.PerOp))
	}
	first, second := res.PerOp[1], res.PerOp[2]
	if first.Name != "U" || second.Name != "U" {
		t.Fatalf("PerOp names = %q, %q", first.Name, second.Name)
	}
	if first.Cost != 50 || second.Cost != 30 {
		t.Fatalf("per-position costs = %v, %v; want 50, 30", first.Cost, second.Cost)
	}
	if first.RowsIn != 10 || second.RowsIn != 10 {
		t.Fatalf("per-position rows in = %d, %d; want 10, 10", first.RowsIn, second.RowsIn)
	}
	// The name-keyed map merges both (the historical behaviour PerOp fixes).
	if res.Stats.OpCost["U"] != 80 {
		t.Fatalf("merged OpCost = %v, want 80", res.Stats.OpCost["U"])
	}
	// Position-keyed costs must account for the whole run exactly.
	sum := 0.0
	for _, op := range res.PerOp {
		sum += op.Cost
	}
	if sum != res.ClusterTime {
		t.Fatalf("sum(PerOp.Cost) = %v, ClusterTime = %v", sum, res.ClusterTime)
	}

	// The rendered summary must show the individual costs, not 80 twice.
	out := res.Summary(plan)
	if strings.Count(out, "80.0") != 0 {
		t.Fatalf("summary double-counts duplicate names:\n%s", out)
	}
	if !strings.Contains(out, "50.0") || !strings.Contains(out, "30.0") {
		t.Fatalf("summary missing per-position costs:\n%s", out)
	}
	if strings.Count(out, "U ") < 2 {
		t.Fatalf("summary should list the duplicate operator twice:\n%s", out)
	}
}

// TestSummaryFallsBackToStats: hand-built Results (no PerOp) still render
// from the name-keyed maps.
func TestSummaryFallsBackToStats(t *testing.T) {
	plan := Plan{Ops: []Operator{&Scan{Blobs: makeBlobs(4)}}}
	st := newStats()
	st.charge("Scan", 0.2)
	st.RowsOut["Scan"] = 4
	res := &Result{Stats: st, ClusterTime: 0.2}
	out := res.Summary(plan)
	if !strings.Contains(out, "Scan") || !strings.Contains(out, "0.2") {
		t.Fatalf("fallback summary wrong:\n%s", out)
	}
}

// TestTruncateRuneSafe: truncation must cut at rune boundaries; byte slicing
// would split multi-byte operator names (σ, π, ⋈, quoted values in any
// script) into invalid UTF-8.
func TestTruncateRuneSafe(t *testing.T) {
	long := "σ[" + strings.Repeat("火", 45) + "]"
	got := truncate(long, 40)
	if !utf8.ValidString(got) {
		t.Fatalf("truncate produced invalid UTF-8: %q", got)
	}
	if !strings.HasSuffix(got, "…") {
		t.Fatalf("no ellipsis: %q", got)
	}
	if n := utf8.RuneCountInString(got); n != 40 {
		t.Fatalf("rune count = %d, want 40", n)
	}
	// Short names — and names exactly at the limit — pass through untouched.
	exact := strings.Repeat("π", 40)
	if truncate(exact, 40) != exact {
		t.Fatal("name at the limit must not be truncated")
	}
	if truncate("Scan", 40) != "Scan" {
		t.Fatal("short name must not be truncated")
	}
}
