package engine

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"probpred/internal/query"
)

// flakyUDF fails each (blob, attempt) pair listed in fails with a transient
// error, and straggles (reports slow virtual durations) for blobs in slow.
// It mirrors what udf.FaultyProcessor does, without the udf dependency.
type flakyUDF struct {
	fakeUDF
	// fails[blobID] is how many leading attempts fail for that blob.
	fails map[int]int
	// slow[blobID] is the virtual duration reported for that blob's
	// successful attempts (0 means the nominal cost).
	slow map[int]float64
	// permanent makes failures non-transient.
	permanent bool

	mu       sync.Mutex
	attempts map[int]int
	calls    int
}

type flakyErr struct {
	transient bool
}

func (e *flakyErr) Error() string   { return "flaky failure" }
func (e *flakyErr) Transient() bool { return e.transient }

func (f *flakyUDF) ApplyTimed(r Row) ([]Row, float64, error) {
	f.mu.Lock()
	if f.attempts == nil {
		f.attempts = map[int]int{}
	}
	f.attempts[r.Blob.ID]++
	attempt := f.attempts[r.Blob.ID]
	f.calls++
	f.mu.Unlock()
	if attempt <= f.fails[r.Blob.ID] {
		return nil, f.cost, &flakyErr{transient: !f.permanent}
	}
	elapsed := f.cost
	if s := f.slow[r.Blob.ID]; s > 0 {
		elapsed = s
	}
	rows, err := f.fakeUDF.Apply(r)
	return rows, elapsed, err
}

func runFlaky(t *testing.T, f *flakyUDF, n int, cfg Config) (*Result, error) {
	t.Helper()
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(n)},
		&Process{P: f},
		&Select{Pred: query.MustParse("x>=0")},
	}}
	return Run(plan, cfg)
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	mkFlaky := func(fails map[int]int) *flakyUDF {
		return &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 10, col: "x"}, fails: fails}
	}
	ref, err := runFlaky(t, mkFlaky(nil), 50, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fails := map[int]int{3: 1, 17: 2, 42: 1}
	cfg := Config{Retry: RetryPolicy{MaxAttempts: 4, BackoffBaseMS: 100, BackoffFactor: 2}}
	res, err := runFlaky(t, mkFlaky(fails), 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ref.Rows) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(ref.Rows))
	}
	for i := range res.Rows {
		if res.Rows[i].Blob.ID != ref.Rows[i].Blob.ID {
			t.Fatalf("row %d diverged", i)
		}
	}
	// Retry cost must be visible: 4 failed attempts at cost 10 plus
	// backoffs 100+100+200+100 = 500, so 540 extra virtual ms.
	want := ref.ClusterTime + 4*10 + 100 + (100 + 200) + 100
	if res.ClusterTime != want {
		t.Fatalf("cluster time = %v, want %v", res.ClusterTime, want)
	}
	if res.Latency <= ref.Latency {
		t.Fatal("retry cost must surface in latency")
	}
}

func TestRetryExhaustionNamesOperatorAndStage(t *testing.T) {
	f := &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 10, col: "x"},
		fails: map[int]int{5: 10}} // more failures than the attempt budget
	_, err := runFlaky(t, f, 20, Config{Retry: RetryPolicy{MaxAttempts: 3}})
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not an OpError", err)
	}
	if oe.Op != "U" || oe.Stage != 0 {
		t.Fatalf("attribution = stage %d op %q, want stage 0 op U", oe.Stage, oe.Op)
	}
	if !strings.Contains(err.Error(), "stage 0") || !strings.Contains(err.Error(), "U") {
		t.Fatalf("message lacks attribution: %v", err)
	}
	if f.calls != 5+3 {
		// Blobs 0-4 succeed first try, blob 5 burns the 3-attempt budget.
		t.Fatalf("calls = %d, want 8", f.calls)
	}
}

func TestPermanentErrorsAreNotRetried(t *testing.T) {
	f := &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 10, col: "x"},
		fails: map[int]int{2: 1}, permanent: true}
	_, err := runFlaky(t, f, 10, Config{Retry: RetryPolicy{MaxAttempts: 5}})
	if err == nil {
		t.Fatal("expected failure")
	}
	if f.calls != 3 {
		t.Fatalf("calls = %d: a permanent error must not be retried", f.calls)
	}
}

func TestNoRetryByDefault(t *testing.T) {
	f := &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 10, col: "x"},
		fails: map[int]int{0: 1}}
	if _, err := runFlaky(t, f, 10, Config{}); err == nil {
		t.Fatal("zero-value policy must not retry")
	}
	if f.calls != 1 {
		t.Fatalf("calls = %d, want 1", f.calls)
	}
}

func TestRowTimeoutTurnsStragglerIntoRetry(t *testing.T) {
	// Blob 7 straggles at 50x cost on its first attempt only; the timeout
	// kills it at the budget and the retry succeeds at nominal speed.
	f := &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 10, col: "x"},
		slow: map[int]float64{7: 500}}
	// The straggler map keys on blob, not attempt, so clear it after the
	// first pass via a wrapper: simplest is to allow one slow attempt by
	// draining the map from the test's side once observed. Instead, run
	// with a budget above the straggle: no retry happens, full cost charged.
	res, err := runFlaky(t, f, 20, Config{Retry: RetryPolicy{MaxAttempts: 3, RowTimeoutMS: 600}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OpCost["U"] != 19*10+500 {
		t.Fatalf("straggle cost not charged: %v", res.Stats.OpCost["U"])
	}

	// Below-straggle budget: the attempt is killed at 200 virtual ms and
	// retried; the retry straggles again (slow keys on blob) and exhausts.
	f2 := &flakyUDF{fakeUDF: fakeUDF{name: "U", cost: 10, col: "x"},
		slow: map[int]float64{7: 500}}
	_, err = runFlaky(t, f2, 20, Config{Retry: RetryPolicy{MaxAttempts: 2, RowTimeoutMS: 200, BackoffBaseMS: 10}})
	if err == nil {
		t.Fatal("persistent straggler must exhaust the budget")
	}
	if !strings.Contains(err.Error(), "exceeding the 200 ms budget") {
		t.Fatalf("error should name the timeout: %v", err)
	}
	if !IsTransient(errors.Unwrap(err)) && !IsTransient(err) {
		t.Fatal("row timeout must be transient")
	}
}

func TestNoStageOverheadSentinel(t *testing.T) {
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(16)},
		&Process{P: fakeUDF{name: "U", cost: 16, col: "x"}},
	}}
	def, err := Run(plan, Config{Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	none, err := Run(plan, Config{Parallelism: 16, NoStageOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	// One stage: default latency = work/16 + 15000, sentinel drops the 15000.
	if def.Latency != none.Latency+15000 {
		t.Fatalf("latency default %v vs none %v, want 15000 apart", def.Latency, none.Latency)
	}
	if none.Latency != none.ClusterTime/16 {
		t.Fatalf("overhead-free latency = %v, want pure work %v", none.Latency, none.ClusterTime/16)
	}
}

func TestSelectErrorAttribution(t *testing.T) {
	// A select over a missing column fails in stage 0 with the σ name.
	plan := Plan{Ops: []Operator{
		&Scan{Blobs: makeBlobs(4)},
		&Select{Pred: query.MustParse("missing>1")},
	}}
	_, err := Run(plan, Config{})
	if err == nil {
		t.Fatal("expected error")
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not an OpError", err)
	}
	if oe.Stage != 0 || !strings.Contains(oe.Op, "σ") {
		t.Fatalf("attribution = stage %d op %q", oe.Stage, oe.Op)
	}
}
