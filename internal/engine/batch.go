package engine

import (
	"sync"

	"probpred/internal/blob"
)

// BatchBlobFilter is the optional batch fast path of BlobFilter: test many
// blobs in one call, filling per-blob pass verdicts and virtual costs. The
// contract mirrors the scalar one exactly — pass[i] and cost[i] must equal
// what Test(blobs[i]) would return, including the short-circuit-dependent
// cost — so the engine can swap it in without changing results or accounting.
// optimizer.Compiled implements it; third-party filters that only implement
// BlobFilter take the per-row loop.
type BatchBlobFilter interface {
	BlobFilter
	// TestBatch fills pass and cost for each blob. All three slices share
	// one length.
	TestBatch(blobs []blob.Blob, pass []bool, cost []float64)
}

// filterBatch is the recycled buffer set of one PPFilter batch: the gathered
// blobs plus the per-blob verdict and cost outputs.
type filterBatch struct {
	blobs []blob.Blob
	pass  []bool
	cost  []float64
}

var filterBatchPool sync.Pool

func getFilterBatch(n int) *filterBatch {
	fb, ok := filterBatchPool.Get().(*filterBatch)
	if !ok {
		fb = &filterBatch{}
	}
	if cap(fb.blobs) < n {
		fb.blobs = make([]blob.Blob, n)
		fb.pass = make([]bool, n)
		fb.cost = make([]float64, n)
	}
	fb.blobs, fb.pass, fb.cost = fb.blobs[:n], fb.pass[:n], fb.cost[:n]
	return fb
}

func putFilterBatch(fb *filterBatch) {
	clear(fb.blobs[:cap(fb.blobs)]) // drop blob references so pooled buffers don't pin data
	filterBatchPool.Put(fb)
}

// run filters one batch of rows, returning the surviving rows and the total
// virtual cost in row order. When the filter supports batching, the whole
// input is tested as one batch through pool-recycled buffers; costs are then
// summed per row in input order, so Stats accounting is bit-identical to the
// scalar loop (which also adds one per-row cost at a time). The output slice
// is preallocated at input capacity — filters only drop rows.
func (p *PPFilter) run(in []Row) ([]Row, float64) {
	out := make([]Row, 0, len(in))
	total := 0.0
	if bf, ok := p.F.(BatchBlobFilter); ok {
		fb := getFilterBatch(len(in))
		for i, r := range in {
			fb.blobs[i] = r.Blob
		}
		bf.TestBatch(fb.blobs, fb.pass, fb.cost)
		for i, r := range in {
			total += fb.cost[i]
			if fb.pass[i] {
				out = append(out, r)
			}
		}
		putFilterBatch(fb)
		return out, total
	}
	for _, r := range in {
		ok, cost := p.F.Test(r.Blob)
		total += cost
		if ok {
			out = append(out, r)
		}
	}
	return out, total
}
