package engine

import (
	"sync"
	"sync/atomic"

	"probpred/internal/blob"
)

// BatchBlobFilter is the optional batch fast path of BlobFilter: test many
// blobs in one call, filling per-blob pass verdicts and virtual costs. The
// contract mirrors the scalar one exactly — pass[i] and cost[i] must equal
// what Test(blobs[i]) would return, including the short-circuit-dependent
// cost — so the engine can swap it in without changing results or accounting.
// optimizer.Compiled implements it; third-party filters that only implement
// BlobFilter take the per-row loop.
type BatchBlobFilter interface {
	BlobFilter
	// TestBatch fills pass and cost for each blob. All three slices share
	// one length.
	TestBatch(blobs []blob.Blob, pass []bool, cost []float64)
}

// CachedBlobFilter is the optional cache-aware extension of BlobFilter for
// filters backed by a cross-query score cache (serving mode): Test with
// per-run cache accounting. hits/misses must be incremented atomically, once
// per score lookup served from / missing the cache. The counters belong to
// ONE Run invocation, never to the filter itself: the same filter object is
// shared by concurrent sessions, and accumulating counts on the shared
// object (or diffing shared totals around an operator) would interleave
// other runs' lookups into this run's Result. A filter with no cache
// attached must leave both counters untouched.
type CachedBlobFilter interface {
	BlobFilter
	TestCached(b blob.Blob, hits, misses *atomic.Uint64) (bool, float64)
}

// CachedBatchBlobFilter is the batch form of CachedBlobFilter, with the same
// per-run counter contract. Pass/cost semantics match TestBatch exactly.
type CachedBatchBlobFilter interface {
	BatchBlobFilter
	TestBatchCached(blobs []blob.Blob, pass []bool, cost []float64, hits, misses *atomic.Uint64)
}

// cacheTally is one PPFilter execution's score-cache activity. It is created
// per operator execution inside Run and shared by that execution's parallel
// chunks, hence atomics — the filter increments the counters from whichever
// worker goroutine is scoring.
type cacheTally struct{ hits, misses atomic.Uint64 }

// filterBatch is the recycled buffer set of one PPFilter batch: the gathered
// blobs plus the per-blob verdict and cost outputs.
type filterBatch struct {
	blobs []blob.Blob
	pass  []bool
	cost  []float64
}

var filterBatchPool sync.Pool

func getFilterBatch(n int) *filterBatch {
	fb, ok := filterBatchPool.Get().(*filterBatch)
	if !ok {
		fb = &filterBatch{}
	}
	if cap(fb.blobs) < n {
		fb.blobs = make([]blob.Blob, n)
		fb.pass = make([]bool, n)
		fb.cost = make([]float64, n)
	}
	fb.blobs, fb.pass, fb.cost = fb.blobs[:n], fb.pass[:n], fb.cost[:n]
	return fb
}

func putFilterBatch(fb *filterBatch) {
	clear(fb.blobs[:cap(fb.blobs)]) // drop blob references so pooled buffers don't pin data
	filterBatchPool.Put(fb)
}

// run filters one batch of rows, returning the surviving rows and the total
// virtual cost in row order. When the filter supports batching, the whole
// input is tested as one batch through pool-recycled buffers; costs are then
// summed per row in input order, so Stats accounting is bit-identical to the
// scalar loop (which also adds one per-row cost at a time). The output slice
// is preallocated at input capacity — filters only drop rows.
//
// ct receives the filter's score-cache hit/miss counts when both the caller
// supplies a tally and the filter implements the cache-aware interfaces;
// results and costs are identical either way.
func (p *PPFilter) run(in []Row, ct *cacheTally) ([]Row, float64) {
	if cbf, ok := p.F.(CachedBatchBlobFilter); ok && ct != nil {
		fb := getFilterBatch(len(in))
		for i, r := range in {
			fb.blobs[i] = r.Blob
		}
		cbf.TestBatchCached(fb.blobs, fb.pass, fb.cost, &ct.hits, &ct.misses)
		return collectBatch(in, fb)
	}
	if bf, ok := p.F.(BatchBlobFilter); ok {
		fb := getFilterBatch(len(in))
		for i, r := range in {
			fb.blobs[i] = r.Blob
		}
		bf.TestBatch(fb.blobs, fb.pass, fb.cost)
		return collectBatch(in, fb)
	}
	out := make([]Row, 0, len(in))
	total := 0.0
	if cf, ok := p.F.(CachedBlobFilter); ok && ct != nil {
		for _, r := range in {
			pass, cost := cf.TestCached(r.Blob, &ct.hits, &ct.misses)
			total += cost
			if pass {
				out = append(out, r)
			}
		}
		return out, total
	}
	for _, r := range in {
		ok, cost := p.F.Test(r.Blob)
		total += cost
		if ok {
			out = append(out, r)
		}
	}
	return out, total
}

// collectBatch sums costs and gathers passing rows in input order, then
// recycles the batch buffers.
func collectBatch(in []Row, fb *filterBatch) ([]Row, float64) {
	out := make([]Row, 0, len(in))
	total := 0.0
	for i, r := range in {
		total += fb.cost[i]
		if fb.pass[i] {
			out = append(out, r)
		}
	}
	putFilterBatch(fb)
	return out, total
}
