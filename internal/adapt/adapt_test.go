package adapt

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/dimred"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/online"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// Mini traffic harness (the optimizer/serve test scheme): dense features
// encode ground-truth attributes, so PP outcomes and drift are fully
// controlled.

const (
	fType  = 0
	fColor = 1
	fSpeed = 2
	fNoise = 3
)

var (
	miniTypes  = []string{"sedan", "SUV", "truck", "van"}
	miniColors = []string{"white", "black", "silver", "red", "other"}
)

func miniBlobs(n int, seed uint64) []blob.Blob {
	rng := mathx.NewRNG(seed)
	out := make([]blob.Blob, n)
	for i := range out {
		t := rng.Choice([]float64{0.45, 0.25, 0.14, 0.16})
		c := rng.Choice([]float64{0.33, 0.25, 0.20, 0.12, 0.10})
		s := mathx.Clamp(40+rng.NormFloat64()*15, 0, 80)
		out[i] = blob.FromDense(i, mathx.Vec{float64(t), float64(c), s, rng.NormFloat64()})
	}
	return out
}

// driftBlobs inverts the validation statistics: nearly everything is red
// (the rare color) and only every tenth blob is an SUV, so the planned
// "red first" short-circuit order becomes the expensive one.
func driftBlobs(n int) []blob.Blob {
	out := make([]blob.Blob, n)
	for i := range out {
		typ := 0.0 // sedan
		if i%10 == 0 {
			typ = 1 // SUV
		}
		out[i] = blob.FromDense(i, mathx.Vec{typ, 3 /* red */, 40, 0})
	}
	return out
}

func miniLookup(b blob.Blob) query.Lookup {
	return func(col string) (query.Value, bool) {
		switch col {
		case "t":
			return query.Str(miniTypes[int(b.Dense[fType])]), true
		case "c":
			return query.Str(miniColors[int(b.Dense[fColor])]), true
		case "s":
			return query.Number(b.Dense[fSpeed]), true
		}
		return query.Value{}, false
	}
}

type exactScorer struct {
	dim  int
	want float64
}

func (s exactScorer) Score(x mathx.Vec) float64 {
	if x[s.dim] == s.want {
		return 1
	}
	return -1
}
func (s exactScorer) Name() string  { return "exact" }
func (s exactScorer) Cost() float64 { return 1.0 }

func miniCorpus(t *testing.T, val []blob.Blob) *optimizer.Corpus {
	t.Helper()
	c := optimizer.NewCorpus()
	id := dimred.Identity{Dim: 4}
	add := func(clause string, dim int, want float64) {
		p := query.MustParse(clause)
		var set blob.Set
		for _, b := range val {
			ok, err := p.Eval(miniLookup(b))
			if err != nil {
				t.Fatalf("labeling %q: %v", clause, err)
			}
			set.Append(b, ok)
		}
		pp, err := core.NewPP(clause, "test", id, exactScorer{dim: dim, want: want}, set)
		if err != nil {
			t.Fatalf("building %q: %v", clause, err)
		}
		c.Add(pp)
	}
	for i, typ := range miniTypes {
		add("t="+typ, fType, float64(i))
	}
	for i, col := range miniColors {
		add("c="+col, fColor, float64(i))
	}
	return c
}

// miniUDF materializes t/c columns from the encoded features.
type miniUDF struct{}

func (miniUDF) Name() string  { return "miniUDF" }
func (miniUDF) Cost() float64 { return 50 }
func (miniUDF) Apply(r engine.Row) ([]engine.Row, error) {
	lk := miniLookup(r.Blob)
	out := r
	for _, col := range []string{"t", "c"} {
		v, _ := lk(col)
		out = out.With(col, v)
	}
	return []engine.Row{out}, nil
}

// fixture is one drifted query: an optimized two-PP conjunction whose
// planned short-circuit order is wrong for the stream the plan scans.
type fixture struct {
	opt  *optimizer.Optimizer
	dec  *optimizer.Decision
	plan engine.Plan
}

func newFixture(t *testing.T, streamRows int) *fixture {
	t.Helper()
	o := optimizer.New(miniCorpus(t, miniBlobs(600, 11)))
	dec, err := o.Optimize(query.MustParse("t=SUV & c=red"), optimizer.Options{Accuracy: 1, UDFCost: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.NumPPs != 2 {
		t.Fatalf("want a two-PP injection, got inject=%v pps=%d", dec.Inject, dec.NumPPs)
	}
	return &fixture{
		opt: o,
		dec: dec,
		plan: engine.Plan{Ops: []engine.Operator{
			&engine.Scan{Blobs: driftBlobs(streamRows)},
			&engine.PPFilter{F: dec.Filter},
			&engine.Process{P: miniUDF{}},
			&engine.Select{Pred: query.MustParse("t=SUV & c=red")},
		}},
	}
}

func (f *fixture) reopt() ReoptFunc {
	return func(c *optimizer.Compiled, minRows uint64) (*optimizer.Reoptimized, error) {
		return f.opt.Reoptimize(c, minRows, nil)
	}
}

func renderRows(rows []engine.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%d:%v;", r.Blob.ID, r.Cols)
	}
	return sb.String()
}

// recCache records demote/promote calls; a stand-in for the serve plan cache.
type recCache struct {
	mu       sync.Mutex
	demoted  []string
	promoted []string
	lastRe   *optimizer.Reoptimized
}

func (c *recCache) DemotePlan(key string) {
	c.mu.Lock()
	c.demoted = append(c.demoted, key)
	c.mu.Unlock()
}
func (c *recCache) PromotePlan(key string, re *optimizer.Reoptimized) {
	c.mu.Lock()
	c.promoted = append(c.promoted, key)
	c.lastRe = re
	c.mu.Unlock()
}

// The determinism golden: under drift the controller swaps mid-run, yet the
// output rows stay byte-identical to the non-adaptive run — at one worker
// and four — and the adaptive virtual cost (replan charge included) is
// strictly lower. Adaptive runs at different worker counts also agree with
// each other exactly, swaps and accounting included, because probe counts at
// chunk boundaries are order-independent sums.
func TestAdaptiveDeterminismGoldenUnderDrift(t *testing.T) {
	fx := newFixture(t, 2000)
	plain, err := engine.Run(fx.plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := renderRows(plain.Rows)

	var golden *engine.Result
	for _, workers := range []int{1, 4} {
		col := obs.NewCollector()
		reg := metrics.New()
		ctl := New(Config{ChunkRows: 256, Metrics: reg, Obs: obs.New(col)})
		cache := &recCache{}
		res, rep, err := ctl.Run(fx.plan, engine.Config{Workers: workers}, RunSpec{
			Key:   "q1",
			Reopt: fx.reopt(),
			Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Adapted || rep.Pinned {
			t.Fatalf("workers=%d: run not adaptive: %+v", workers, rep)
		}
		if got := renderRows(res.Rows); got != want {
			t.Fatalf("workers=%d: adaptive rows diverged from non-adaptive run", workers)
		}
		if len(rep.Swaps) == 0 {
			t.Fatalf("workers=%d: drift produced no swap (max divergence %v)", workers, rep.MaxDivergence)
		}
		if res.ClusterTime >= plain.ClusterTime {
			t.Fatalf("workers=%d: adaptive cost %v not below non-adaptive %v", workers, res.ClusterTime, plain.ClusterTime)
		}
		if rep.ReplanVMS == 0 || res.Stats.OpCost["AdaptReplan"] != rep.ReplanVMS {
			t.Fatalf("workers=%d: replan cost not charged: rep=%v op=%v", workers, rep.ReplanVMS, res.Stats.OpCost["AdaptReplan"])
		}
		if rep.FinalExpr == fx.dec.Filter.Name() {
			t.Fatalf("workers=%d: final expr %q did not change", workers, rep.FinalExpr)
		}
		// The serve cache saw the stale entry demoted and the corrected plan
		// promoted.
		if len(cache.demoted) == 0 || len(cache.promoted) == 0 || cache.lastRe == nil || !cache.lastRe.Changed {
			t.Fatalf("workers=%d: cache not maintained: demoted=%v promoted=%v", workers, cache.demoted, cache.promoted)
		}
		// Telemetry: the swap event (the flight-recorder trigger) and counters.
		var swapEvents int
		for _, ev := range col.Events() {
			if ev.Name == "adapt.swap" {
				swapEvents++
			}
		}
		if swapEvents != len(rep.Swaps) {
			t.Fatalf("workers=%d: swap events %d != swaps %d", workers, swapEvents, len(rep.Swaps))
		}
		if v := reg.Counter("adapt_swaps_total", "").Value(); v != float64(len(rep.Swaps)) {
			t.Fatalf("workers=%d: adapt_swaps_total = %v, want %d", workers, v, len(rep.Swaps))
		}
		// Worker counts must agree with each other exactly.
		if golden == nil {
			golden = res
		} else if renderRows(golden.Rows) != renderRows(res.Rows) ||
			golden.ClusterTime != res.ClusterTime || len(golden.Swaps) != len(res.Swaps) {
			t.Fatalf("adaptive runs diverged across worker counts: cluster %v/%v swaps %d/%d",
				golden.ClusterTime, res.ClusterTime, len(golden.Swaps), len(res.Swaps))
		}
	}
}

// A stream matching the plan's statistics never arms a re-plan: accounting is
// identical to the plain run, to the last virtual millisecond.
func TestAdaptiveStableWithoutDrift(t *testing.T) {
	fx := newFixture(t, 0)
	fx.plan.Ops[0] = &engine.Scan{Blobs: miniBlobs(1500, 11)}
	plain, err := engine.Run(fx.plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctl := New(Config{ChunkRows: 256})
	res, rep, err := ctl.Run(fx.plan, engine.Config{}, RunSpec{Key: "q1", Reopt: fx.reopt()})
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(res.Rows) != renderRows(plain.Rows) {
		t.Fatal("stable stream: rows diverged")
	}
	if math.Abs(res.ClusterTime-plain.ClusterTime) > 1e-6 {
		t.Fatalf("stable stream: cost diverged %v vs %v", res.ClusterTime, plain.ClusterTime)
	}
	if len(rep.Swaps) != 0 || rep.Replans != 0 {
		t.Fatalf("stable stream adapted: %+v", rep)
	}
}

// Graceful degradation: a re-optimizer that always fails leaves the run on
// its original plan with identical results; after K failures the breaker
// trips, pinning subsequent runs, and probation after the jittered backoff
// risks exactly one more re-plan.
func TestReplanFailureDegradesAndTripsBreaker(t *testing.T) {
	fx := newFixture(t, 2000)
	plain, err := engine.Run(fx.plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	ctl := New(Config{
		ChunkRows: 256,
		Breaker:   online.BreakerConfig{K: 2, Backoff: 2},
		Obs:       obs.New(col),
	})
	boom := func(*optimizer.Compiled, uint64) (*optimizer.Reoptimized, error) {
		return nil, errors.New("reopt exploded")
	}
	spec := RunSpec{Key: "q1", Reopt: boom}

	res, rep, err := ctl.Run(fx.plan, engine.Config{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(res.Rows) != renderRows(plain.Rows) {
		t.Fatal("failed re-plans changed results")
	}
	if rep.ReplanFailures < 2 || len(rep.Swaps) != 0 {
		t.Fatalf("want >=2 absorbed failures and no swaps, got %+v", rep)
	}
	if rep.Breaker != online.BreakerOpen || ctl.Trips() != 1 {
		t.Fatalf("breaker after K failures: state=%v trips=%d", rep.Breaker, ctl.Trips())
	}
	// Failed re-plans are not modeled work that ran: nothing extra charged
	// beyond the attempts' budget, and the run itself completed.
	if res.Stats.OpCost["AdaptReplan"] != rep.ReplanVMS {
		t.Fatalf("replan charge mismatch: %v vs %v", res.Stats.OpCost["AdaptReplan"], rep.ReplanVMS)
	}

	// The next run is pinned: the open breaker's backoff has not elapsed.
	_, rep2, err := ctl.Run(fx.plan, engine.Config{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Pinned || rep2.Replans != 0 {
		t.Fatalf("run after trip not pinned: %+v", rep2)
	}

	// Backoff (2 ticks + jitter <=1) elapses within a few runs; the probation
	// run risks re-planning again, fails, and re-trips with doubled backoff.
	probed := false
	for i := 0; i < 6 && !probed; i++ {
		_, repN, err := ctl.Run(fx.plan, engine.Config{}, spec)
		if err != nil {
			t.Fatal(err)
		}
		if repN.Pinned {
			continue
		}
		probed = true
		if repN.ReplanFailures == 0 || repN.Breaker != online.BreakerOpen {
			t.Fatalf("probation run did not re-trip: %+v", repN)
		}
	}
	if !probed {
		t.Fatal("breaker never granted probation within the backoff window")
	}
	if ctl.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", ctl.Trips())
	}
	var trips, probations int
	for _, ev := range col.Events() {
		switch ev.Name {
		case "adapt.breaker_trip":
			trips++
		case "adapt.breaker_probation":
			probations++
		}
	}
	if trips != 2 || probations != 1 {
		t.Fatalf("breaker events: trips=%d probations=%d, want 2 and 1", trips, probations)
	}
}

// The virtual-time budget bounds re-planning: once exhausted, further armed
// attempts are skipped (and counted) while the query runs on.
func TestReplanBudgetBoundsAttempts(t *testing.T) {
	fx := newFixture(t, 2000)
	plain, err := engine.Run(fx.plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A re-optimizer that inspects but never changes the order: divergence
	// stays high, so the controller keeps re-arming until the budget stops it.
	keep := func(c *optimizer.Compiled, _ uint64) (*optimizer.Reoptimized, error) {
		return &optimizer.Reoptimized{Filter: c, Expr: c.Name()}, nil
	}
	ctl := New(Config{ChunkRows: 256, ReplanCostVMS: 5, MaxReplanVMS: 5})
	res, rep, err := ctl.Run(fx.plan, engine.Config{}, RunSpec{Key: "q1", Reopt: keep})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replans != 1 || rep.BudgetSkips == 0 {
		t.Fatalf("budget did not bound attempts: %+v", rep)
	}
	if rep.Breaker != online.BreakerClosed {
		t.Fatalf("successful no-op re-plans tripped the breaker: %v", rep.Breaker)
	}
	// Chunked summation may associate differently than the single-shot run;
	// only the budgeted charge separates the totals.
	if want := plain.ClusterTime + 5; math.Abs(res.ClusterTime-want) > 1e-6 {
		t.Fatalf("cluster time %v, want plain+budgeted charge %v", res.ClusterTime, want)
	}
}

// plainFilter is a BlobFilter the controller cannot re-order.
type plainFilter struct{}

func (plainFilter) Name() string                   { return "plain" }
func (plainFilter) Test(blob.Blob) (bool, float64) { return true, 0.5 }

// Plans without a compiled PP expression (or without a re-optimizer) run
// unadapted, untouched.
func TestRunFallsBackWithoutCompiledFilter(t *testing.T) {
	fx := newFixture(t, 200)
	opaque := fx.plan
	opaque.Ops = append([]engine.Operator(nil), fx.plan.Ops...)
	opaque.Ops[1] = &engine.PPFilter{F: plainFilter{}}
	ctl := New(Config{ChunkRows: 64})

	res, rep, err := ctl.Run(opaque, engine.Config{}, RunSpec{Key: "q1", Reopt: fx.reopt()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adapted || res.Chunks != 0 {
		t.Fatalf("opaque filter adapted: %+v chunks=%d", rep, res.Chunks)
	}

	res, rep, err = ctl.Run(fx.plan, engine.Config{}, RunSpec{Key: "q1"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adapted || res.Chunks != 0 {
		t.Fatalf("nil Reopt adapted: %+v chunks=%d", rep, res.Chunks)
	}
}

// MaxSwaps caps hot-swaps per run even under sustained divergence.
func TestMaxSwapsBoundsSwapsPerRun(t *testing.T) {
	fx := newFixture(t, 2000)
	// A flip-flopping re-optimizer: every call claims a change back and forth,
	// which unbounded would thrash the plan every HysteresisChunks chunks.
	flip := func(c *optimizer.Compiled, minRows uint64) (*optimizer.Reoptimized, error) {
		return &optimizer.Reoptimized{Filter: c, Changed: true, Expr: c.Name()}, nil
	}
	ctl := New(Config{ChunkRows: 128, MaxSwaps: 1, MaxReplanVMS: 1000})
	_, rep, err := ctl.Run(fx.plan, engine.Config{}, RunSpec{Key: "q1", Reopt: flip})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Swaps) != 1 {
		t.Fatalf("swaps = %d, want capped at 1", len(rep.Swaps))
	}
}
