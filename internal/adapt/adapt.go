// Package adapt is the mid-query re-optimization controller (ROADMAP item
// 3; Hydro-style adaptive query processing over the paper's PP plans). It
// wraps engine.RunAdaptive around a served plan: per chunk it compares each
// PP leaf's observed selectivity against the plan's estimate, and when the
// divergence exceeds a configured bound for enough consecutive chunks it
// re-enters the optimizer with the observed statistics, hot-swaps the
// remaining chunks onto the re-ordered (outcome-identical) filter, and
// demotes/promotes the serve layer's plan-cache entry so later sessions
// start on the corrected order.
//
// Degradation is graceful at every stage: a failed, erroring or
// over-budget re-plan leaves the current plan running and records the
// event; repeated re-plan failures trip a per-predicate circuit breaker
// (the shared internal/online breaker) that pins the plan entirely and
// retries with jittered backoff measured in adaptive runs.
package adapt

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"probpred/internal/engine"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/online"
	"probpred/internal/optimizer"
)

// Config shapes a Controller.
type Config struct {
	// ChunkRows is the adaptive chunk size in source rows. Zero selects 256.
	ChunkRows int
	// Divergence is the |observed − planned| per-leaf reduction bound that
	// arms a re-plan. Zero selects 0.15.
	Divergence float64
	// HysteresisChunks is how many consecutive diverging chunks must be seen
	// before re-planning — noisy single chunks must not thrash the plan.
	// Zero selects 2.
	HysteresisChunks int
	// MinRows is the per-leaf evidence floor: a leaf's observed selectivity
	// counts only after this many rows reached it. Zero selects 64.
	MinRows uint64
	// MaxSwaps bounds plan swaps per run. Zero selects 2.
	MaxSwaps int
	// ReplanCostVMS is the virtual cost charged per re-plan attempt (the
	// re-optimizer's own work is modeled, like every other cost in the
	// simulator). Zero selects 5.
	ReplanCostVMS float64
	// MaxReplanVMS is the cumulative virtual-time budget for re-planning in
	// one run; attempts beyond it are skipped (the run continues on its
	// current plan) and recorded. Zero selects 25.
	MaxReplanVMS float64
	// Breaker shapes the per-predicate re-plan circuit breaker. Backoff is
	// measured in adaptive runs of that predicate.
	Breaker online.BreakerConfig
	// Metrics (optional) receives adapt_* counters and gauges.
	Metrics *metrics.Registry
	// Obs (optional) receives adapt.* events and per-replan spans.
	Obs *obs.Tracer
}

func (c *Config) fill() {
	if c.ChunkRows == 0 {
		c.ChunkRows = 256
	}
	if c.Divergence == 0 {
		c.Divergence = 0.15
	}
	if c.HysteresisChunks == 0 {
		c.HysteresisChunks = 2
	}
	if c.MinRows == 0 {
		c.MinRows = 64
	}
	if c.MaxSwaps == 0 {
		c.MaxSwaps = 2
	}
	if c.ReplanCostVMS == 0 {
		c.ReplanCostVMS = 5
	}
	if c.MaxReplanVMS == 0 {
		c.MaxReplanVMS = 25
	}
}

// ReoptFunc is the optimizer re-entry: re-order the running filter by its
// observed statistics. Production code passes a closure over
// optimizer.Optimizer.Reoptimize; tests inject failures here.
type ReoptFunc func(f *optimizer.Compiled, minRows uint64) (*optimizer.Reoptimized, error)

// PlanCache is the serve-layer plan cache as the controller sees it:
// demotion drops a stale entry, promotion installs the re-ordered filter so
// later sessions start on the corrected order. Implementations must be safe
// for concurrent use. Both calls are optional no-ops for standalone runs.
type PlanCache interface {
	DemotePlan(key string)
	PromotePlan(key string, re *optimizer.Reoptimized)
}

// RunSpec describes one adaptive run to the controller.
type RunSpec struct {
	// Key identifies the predicate/plan: the breaker and cache entry it
	// guards. Empty disables the breaker and cache plumbing.
	Key string
	// Reopt is the optimizer re-entry. Required for adaptation; nil degrades
	// the run to plain execution.
	Reopt ReoptFunc
	// Cache (optional) is demoted/promoted on swap.
	Cache PlanCache
}

// Report describes what adaptation did during one run.
type Report struct {
	// Adapted is whether the run executed on the adaptive path at all.
	Adapted bool
	// Pinned is whether an open breaker pinned the plan for this run.
	Pinned bool
	// Replans, ReplanFailures and BudgetSkips count optimizer re-entries,
	// failed re-entries, and re-entries skipped for budget exhaustion.
	Replans, ReplanFailures, BudgetSkips int
	// ReplanVMS is the virtual cost charged for re-planning (also added to
	// the Result's cluster time under the "AdaptReplan" operator).
	ReplanVMS float64
	// Swaps lists the hot-swaps performed (mirrors Result.Swaps).
	Swaps []engine.PlanSwap
	// MaxDivergence is the largest per-leaf divergence observed at any
	// chunk boundary.
	MaxDivergence float64
	// Breaker is the predicate's breaker state after the run.
	Breaker online.BreakerState
	// FinalExpr is the filter's evaluation order at end of run.
	FinalExpr string
}

// Controller owns the per-predicate breakers and run clock shared by every
// adaptive run of a server. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	breakers map[string]*online.Breaker
	runs     int // monotonic adaptive-run clock, the breakers' tick
	trips    int
}

// New builds a controller.
func New(cfg Config) *Controller {
	cfg.fill()
	return &Controller{cfg: cfg, breakers: map[string]*online.Breaker{}}
}

// Config returns the controller's filled configuration.
func (c *Controller) Config() Config { return c.cfg }

// Trips returns the lifetime count of re-plan breaker trips.
func (c *Controller) Trips() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trips
}

// BreakerState returns the current breaker state for a key (closed for
// unknown keys).
func (c *Controller) BreakerState(key string) online.BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.breakers[key]; ok {
		return b.State()
	}
	return online.BreakerClosed
}

// breakerFor resolves the key's breaker, creating it closed.
func (c *Controller) breakerFor(key string) *online.Breaker {
	b, ok := c.breakers[key]
	if !ok {
		bcfg := c.cfg.Breaker
		bcfg.JitterSeed ^= hashKey(key)
		b = online.NewBreaker(bcfg)
		c.breakers[key] = b
	}
	return b
}

// hashKey is FNV-1a, de-synchronizing per-key backoff jitter.
func hashKey(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Run executes the plan adaptively. The plan's PP filter (a
// *optimizer.Compiled behind engine.PPFilter) is cloned with runtime probes;
// at each chunk boundary the controller checks divergence with hysteresis,
// re-enters the optimizer within the virtual budget, swaps the remaining
// chunks onto the re-ordered filter and demotes/promotes the plan cache.
// Plans with no compiled PP filter, a nil Reopt, or an open breaker run
// unadapted. The returned Result is never nil when err is nil.
func (c *Controller) Run(p engine.Plan, ecfg engine.Config, spec RunSpec) (*engine.Result, *Report, error) {
	rep := &Report{}
	// The engine config's trace context is the session identity: every
	// adapt span and event of this run carries its TraceID.
	ctx := ecfg.Trace
	comp, opIdx := compiledFilter(p)
	if comp == nil || spec.Reopt == nil {
		res, err := engine.Run(p, ecfg)
		return res, rep, err
	}

	// One breaker tick per adaptive run of this key: open breakers pin the
	// plan, and once the jittered backoff has elapsed the next run is the
	// probation attempt.
	var br *online.Breaker
	tick := 0
	if spec.Key != "" {
		c.mu.Lock()
		c.runs++
		tick = c.runs
		br = c.breakerFor(spec.Key)
		if br.State() == online.BreakerOpen && br.Ready(tick) {
			br.Probation()
			c.event(ctx, "adapt.breaker_probation", obs.Attr{Key: "key", Value: spec.Key})
		}
		pinned := br.State() == online.BreakerOpen
		c.mu.Unlock()
		if pinned {
			rep.Pinned = true
			rep.Breaker = online.BreakerOpen
			c.counter("adapt_pinned_runs_total", "Adaptive runs executed on a pinned plan (open re-plan breaker).").Inc()
			res, err := engine.Run(p, ecfg)
			return res, rep, err
		}
	}

	obsF, ro := comp.WithRuntimeObserver()
	ops := append([]engine.Operator(nil), p.Ops...)
	ops[opIdx] = &engine.PPFilter{F: obsF}
	rep.Adapted = true
	current := obsF
	streak := 0
	swaps := 0
	budgetEventSent := false

	decide := func(cs engine.ChunkStats) (engine.BlobFilter, error) {
		if swaps >= c.cfg.MaxSwaps {
			return nil, nil
		}
		d := ro.MaxDivergence(c.cfg.MinRows)
		if d > rep.MaxDivergence {
			rep.MaxDivergence = d
		}
		c.gauge("adapt_divergence", "Largest observed-vs-planned per-leaf reduction divergence at the last chunk boundary.").Set(d)
		if d < c.cfg.Divergence {
			streak = 0
			return nil, nil
		}
		// Hysteresis: one noisy chunk must not thrash the plan.
		if streak++; streak < c.cfg.HysteresisChunks {
			return nil, nil
		}
		if rep.ReplanVMS+c.cfg.ReplanCostVMS > c.cfg.MaxReplanVMS {
			rep.BudgetSkips++
			c.counter("adapt_replan_budget_skips_total", "Re-plan attempts skipped because the virtual-time budget was exhausted.").Inc()
			if !budgetEventSent {
				budgetEventSent = true
				c.event(ctx, "adapt.replan_budget_exhausted",
					obs.Attr{Key: "key", Value: spec.Key},
					obs.Attr{Key: "budget_vms", Value: strconv.FormatFloat(c.cfg.MaxReplanVMS, 'f', 1, 64)})
			}
			return nil, nil
		}
		rep.Replans++
		rep.ReplanVMS += c.cfg.ReplanCostVMS
		c.counter("adapt_replans_total", "Mid-query optimizer re-entries attempted.").Inc()
		var sp obs.Span
		if c.cfg.Obs.Enabled() {
			sp = c.cfg.Obs.BeginCtx(ctx, obs.KindAdapt, fmt.Sprintf("replan[%s]", spec.Key))
			sp.SetAttr("chunk", strconv.Itoa(cs.Chunk))
			sp.SetAttr("divergence", strconv.FormatFloat(d, 'f', 3, 64))
			sp.CostVMS = c.cfg.ReplanCostVMS
		}
		start := time.Now()
		re, err := spec.Reopt(current, c.cfg.MinRows)
		if c.cfg.Obs.Enabled() {
			sp.WallNS = time.Since(start).Nanoseconds()
		}
		if err != nil {
			rep.ReplanFailures++
			c.counter("adapt_replan_failures_total", "Mid-query re-entries that failed; the run continued on its current plan.").Inc()
			c.event(ctx, "adapt.replan_failed",
				obs.Attr{Key: "key", Value: spec.Key},
				obs.Attr{Key: "chunk", Value: strconv.Itoa(cs.Chunk)},
				obs.Attr{Key: "error", Value: err.Error()})
			if c.cfg.Obs.Enabled() {
				sp.SetAttr("error", err.Error())
				c.cfg.Obs.EmitSpan(sp)
			}
			c.reportBreaker(ctx, br, spec.Key, false, tick)
			streak = 0 // re-arm hysteresis before the next attempt
			return nil, err
		}
		c.reportBreaker(ctx, br, spec.Key, true, tick)
		streak = 0
		if !re.Changed {
			// The optimizer looked and kept the order: the divergence is real
			// but the current plan is already rank-optimal for it.
			if c.cfg.Obs.Enabled() {
				sp.SetAttr("changed", "false")
				c.cfg.Obs.EmitSpan(sp)
			}
			return nil, nil
		}
		if c.cfg.Obs.Enabled() {
			sp.SetAttr("changed", "true")
			sp.SetAttr("new_expr", re.Expr)
			c.cfg.Obs.EmitSpan(sp)
		}
		c.counter("adapt_swaps_total", "Mid-query plan hot-swaps performed.").Inc()
		c.event(ctx, "adapt.swap",
			obs.Attr{Key: "key", Value: spec.Key},
			obs.Attr{Key: "chunk", Value: strconv.Itoa(cs.Chunk + 1)},
			obs.Attr{Key: "old_expr", Value: current.EvalExpr()},
			obs.Attr{Key: "new_expr", Value: re.Expr},
			obs.Attr{Key: "divergence", Value: strconv.FormatFloat(d, 'f', 3, 64)})
		if spec.Cache != nil && spec.Key != "" {
			spec.Cache.DemotePlan(spec.Key)
			spec.Cache.PromotePlan(spec.Key, re)
		}
		swaps++
		current = re.Filter
		return re.Filter, nil
	}

	res, err := engine.RunAdaptive(engine.Plan{Ops: ops}, ecfg, engine.AdaptiveConfig{
		ChunkRows: c.cfg.ChunkRows,
		Decide:    decide,
	})
	if err != nil {
		return nil, rep, err
	}
	rep.Swaps = res.Swaps
	rep.FinalExpr = current.EvalExpr()
	if br != nil {
		rep.Breaker = br.State()
	}
	// Re-planning is modeled work: charge it to the run like any operator.
	if rep.ReplanVMS > 0 {
		res.ClusterTime += rep.ReplanVMS
		res.Stats.Cluster += rep.ReplanVMS
		res.Stats.OpCost["AdaptReplan"] += rep.ReplanVMS
	}
	return res, rep, nil
}

// reportBreaker feeds one re-plan outcome to the key's breaker under the
// controller lock, emitting trip/close telemetry tagged with the session.
func (c *Controller) reportBreaker(ctx obs.TraceContext, br *online.Breaker, key string, ok bool, tick int) {
	if br == nil {
		return
	}
	c.mu.Lock()
	tr := br.Report(ok, tick)
	if tr == online.TransitionTrip {
		c.trips++
	}
	trips := c.trips
	c.mu.Unlock()
	switch tr {
	case online.TransitionTrip:
		c.counter("adapt_breaker_trips_total", "Re-plan circuit-breaker trips; the plan is pinned with jittered backoff.").Inc()
		c.event(ctx, "adapt.breaker_trip",
			obs.Attr{Key: "key", Value: key},
			obs.Attr{Key: "trips_total", Value: strconv.Itoa(trips)})
	case online.TransitionClose:
		c.counter("adapt_breaker_closes_total", "Re-plan breakers closed after a successful probation re-plan.").Inc()
		c.event(ctx, "adapt.breaker_close", obs.Attr{Key: "key", Value: key})
	}
}

// compiledFilter finds the plan's first PP filter backed by a compiled
// optimizer expression, returning it and its plan position (-1 when absent).
func compiledFilter(p engine.Plan) (*optimizer.Compiled, int) {
	for i, op := range p.Ops {
		if pf, ok := op.(*engine.PPFilter); ok {
			if comp, ok := pf.F.(*optimizer.Compiled); ok {
				return comp, i
			}
			return nil, -1 // a PP filter we cannot re-order
		}
	}
	return nil, -1
}

func (c *Controller) counter(name, help string) *metrics.Counter {
	if c.cfg.Metrics == nil {
		return nil
	}
	return c.cfg.Metrics.Counter(name, help)
}

func (c *Controller) gauge(name, help string) *metrics.Gauge {
	if c.cfg.Metrics == nil {
		return nil
	}
	return c.cfg.Metrics.Gauge(name, help)
}

func (c *Controller) event(ctx obs.TraceContext, name string, attrs ...obs.Attr) {
	c.cfg.Obs.EventCtx(ctx, name, attrs...)
}
