package fault

import "testing"

func TestDecideDeterministic(t *testing.T) {
	mk := func() *Injector {
		i := NewInjector(42)
		i.SetDefault(Spec{TransientRate: 0.2, StragglerRate: 0.1})
		return i
	}
	a, b := mk(), mk()
	for blob := 0; blob < 2000; blob++ {
		for attempt := 1; attempt <= 4; attempt++ {
			oa := a.Decide("UDF", blob, attempt)
			ob := b.Decide("UDF", blob, attempt)
			if oa != ob {
				t.Fatalf("blob %d attempt %d: %+v vs %+v", blob, attempt, oa, ob)
			}
		}
	}
}

func TestDecideIndependentOfCallOrder(t *testing.T) {
	i := NewInjector(7)
	i.SetDefault(Spec{TransientRate: 0.3})
	first := i.Decide("X", 123, 1)
	// Interleave unrelated decisions; the keyed decision must not move.
	for blob := 0; blob < 500; blob++ {
		i.Decide("Y", blob, 1)
	}
	if got := i.Decide("X", 123, 1); got != first {
		t.Fatalf("decision drifted with call order: %+v vs %+v", got, first)
	}
}

func TestRatesApproximatelyHonored(t *testing.T) {
	i := NewInjector(99)
	i.SetDefault(Spec{TransientRate: 0.1, StragglerRate: 0.05, StragglerFactor: 8})
	const n = 20000
	fails, slows := 0, 0
	for blob := 0; blob < n; blob++ {
		o := i.Decide("UDF", blob, 1)
		if o.Fail {
			fails++
		}
		if o.SlowFactor > 1 {
			if o.SlowFactor != 8 {
				t.Fatalf("slow factor %v, want 8", o.SlowFactor)
			}
			slows++
		}
	}
	if f := float64(fails) / n; f < 0.08 || f > 0.12 {
		t.Fatalf("transient rate %v, want ~0.1", f)
	}
	if s := float64(slows) / n; s < 0.035 || s > 0.065 {
		t.Fatalf("straggler rate %v, want ~0.05", s)
	}
}

func TestMaxConsecutiveCapsFailures(t *testing.T) {
	i := NewInjector(5)
	i.SetDefault(Spec{TransientRate: 1, MaxConsecutive: 3})
	for blob := 0; blob < 100; blob++ {
		for attempt := 1; attempt <= 3; attempt++ {
			if !i.Decide("UDF", blob, attempt).Fail {
				t.Fatalf("rate 1 must fail within the burst (blob %d attempt %d)", blob, attempt)
			}
		}
		if i.Decide("UDF", blob, 4).Fail {
			t.Fatalf("blob %d still failing beyond MaxConsecutive", blob)
		}
	}
}

func TestPerOpSpecOverridesDefault(t *testing.T) {
	i := NewInjector(11)
	i.SetDefault(Spec{TransientRate: 1})
	i.Set("Healthy", Spec{})
	for blob := 0; blob < 50; blob++ {
		if i.Decide("Healthy", blob, 1).Fail {
			t.Fatal("per-op override ignored")
		}
		if !i.Decide("Other", blob, 1).Fail {
			t.Fatal("default spec ignored")
		}
	}
}

func TestNoFaultsByDefault(t *testing.T) {
	i := NewInjector(1)
	for blob := 0; blob < 100; blob++ {
		o := i.Decide("UDF", blob, 1)
		if o.Fail || o.SlowFactor != 1 {
			t.Fatalf("unconfigured injector produced %+v", o)
		}
	}
}

func TestExpectedSurvival(t *testing.T) {
	s := Spec{TransientRate: 0.1, MaxConsecutive: 3}
	if got := ExpectedSurvival(s, 4); got != 1 {
		t.Fatalf("survival with budget past the burst cap = %v, want 1", got)
	}
	if got := ExpectedSurvival(s, 1); got < 0.89 || got > 0.91 {
		t.Fatalf("single-attempt survival = %v, want 0.9", got)
	}
	if got := ExpectedSurvival(Spec{}, 1); got != 1 {
		t.Fatalf("fault-free survival = %v, want 1", got)
	}
}

func TestTransientErrorMessage(t *testing.T) {
	e := &TransientError{Op: "TypeClassifier", BlobID: 7, Attempt: 2}
	if !e.Transient() {
		t.Fatal("TransientError must report transient")
	}
	want := "fault: transient failure in TypeClassifier on blob 7 (attempt 2)"
	if e.Error() != want {
		t.Fatalf("message %q", e.Error())
	}
}
