// Package fault provides a seeded, deterministic fault injector for the
// simulated execution substrate. A production Cosmos/SCOPE-style cluster
// cannot assume UDFs never fail: tasks hit transient errors (lost containers,
// throttled dependencies) and stragglers (slow nodes, cold caches). The
// injector models both in virtual time so that fault-tolerance experiments
// stay reproducible bit-for-bit from a seed.
//
// Decisions are a pure hash of (seed, operator, blob id, attempt), not a
// stream of an advancing RNG. That property is what makes injected faults
// independent of execution order: the same blob sees the same fate whether
// the engine runs sequentially or chunked across workers, and a retried
// attempt draws a fresh, reproducible outcome.
package fault

import (
	"fmt"
	"math"

	"probpred/internal/metrics"
)

// Spec configures the fault behaviour of one operator (or the default for
// all operators without their own spec).
type Spec struct {
	// TransientRate is the probability that one attempt fails with a
	// transient error (retryable; the fault clears on its own).
	TransientRate float64
	// StragglerRate is the probability that one attempt straggles: it
	// succeeds but takes StragglerFactor times its nominal virtual duration.
	StragglerRate float64
	// StragglerFactor multiplies the nominal virtual duration of a
	// straggling attempt. Zero selects 10.
	StragglerFactor float64
	// MaxConsecutive bounds how many times in a row the injector fails the
	// same (operator, blob) pair — transient faults clear eventually. Zero
	// selects 3. With engine retries configured for more attempts than
	// MaxConsecutive, injected transient faults can never surface to the
	// query, which is what keeps outputs byte-identical to a fault-free run.
	MaxConsecutive int
}

func (s Spec) fill() Spec {
	if s.StragglerFactor == 0 {
		s.StragglerFactor = 10
	}
	if s.MaxConsecutive == 0 {
		s.MaxConsecutive = 3
	}
	return s
}

// Outcome is the injector's decision for one attempt.
type Outcome struct {
	// Fail reports a transient failure; the attempt produces no result.
	Fail bool
	// SlowFactor multiplies the attempt's nominal virtual duration. It is
	// 1 for healthy attempts and Spec.StragglerFactor for stragglers
	// (including failing ones: a task can burn time and then die).
	SlowFactor float64
}

// Injector decides per-attempt fault outcomes deterministically.
type Injector struct {
	seed  uint64
	def   Spec
	specs map[string]Spec
	// transientCtr / stragglerCtr count injected faults when a registry is
	// attached via SetMetrics; both are resolved once there, so Decide pays a
	// single nil check when metrics are off. Counting never perturbs the
	// decisions themselves — those stay a pure hash of (seed, op, blob,
	// attempt).
	transientCtr *metrics.Counter
	stragglerCtr *metrics.Counter
}

// NewInjector returns an injector with no faults configured: until SetDefault
// or Set is called every outcome is healthy.
func NewInjector(seed uint64) *Injector {
	return &Injector{seed: seed, specs: map[string]Spec{}}
}

// SetDefault configures the spec used by operators without their own.
func (i *Injector) SetDefault(s Spec) { i.def = s }

// SetMetrics attaches a metrics registry counting injected transient failures
// and stragglers. Nil detaches.
func (i *Injector) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		i.transientCtr, i.stragglerCtr = nil, nil
		return
	}
	i.transientCtr = reg.Counter("fault_injected_transient_total", "Transient failures injected into UDF attempts.")
	i.stragglerCtr = reg.Counter("fault_injected_straggler_total", "Straggling attempts injected into UDF execution.")
}

// Set configures one operator's spec, overriding the default.
func (i *Injector) Set(op string, s Spec) { i.specs[op] = s }

// spec resolves the effective spec for an operator.
func (i *Injector) spec(op string) Spec {
	if s, ok := i.specs[op]; ok {
		return s.fill()
	}
	return i.def.fill()
}

// Decide returns the outcome for one attempt (1-based) of applying operator
// op to the blob with the given id. The decision is a pure function of the
// injector's seed and the three arguments.
func (i *Injector) Decide(op string, blobID, attempt int) Outcome {
	s := i.spec(op)
	out := Outcome{SlowFactor: 1}
	if s.TransientRate <= 0 && s.StragglerRate <= 0 {
		return out
	}
	if s.TransientRate > 0 && attempt <= s.MaxConsecutive &&
		hashFloat(i.seed, op, blobID, attempt, 0x7a11) < s.TransientRate {
		out.Fail = true
		if i.transientCtr != nil {
			i.transientCtr.Inc()
		}
	}
	if s.StragglerRate > 0 &&
		hashFloat(i.seed, op, blobID, attempt, 0x51c0) < s.StragglerRate {
		out.SlowFactor = s.StragglerFactor
		if i.stragglerCtr != nil {
			i.stragglerCtr.Inc()
		}
	}
	return out
}

// hashFloat maps (seed, op, blobID, attempt, salt) to a uniform [0,1).
func hashFloat(seed uint64, op string, blobID, attempt int, salt uint64) float64 {
	h := seed ^ salt
	for _, c := range []byte(op) {
		h = (h ^ uint64(c)) * 0x100000001b3 // FNV-1a style fold
	}
	h ^= uint64(blobID)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	// splitmix64 finalizer for avalanche.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// TransientError is the injected retryable failure. The engine's retry
// machinery recognizes it through the Transient method.
type TransientError struct {
	// Op is the operator whose attempt failed.
	Op string
	// BlobID identifies the input row.
	BlobID int
	// Attempt is the 1-based attempt number that failed.
	Attempt int
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: transient failure in %s on blob %d (attempt %d)",
		e.Op, e.BlobID, e.Attempt)
}

// Transient marks the error retryable.
func (e *TransientError) Transient() bool { return true }

// ExpectedSurvival returns the probability that one blob survives all its
// attempts without surfacing a fault, given an attempt budget — a helper for
// experiments sizing retry policies against injection rates.
func ExpectedSurvival(s Spec, attempts int) float64 {
	s = s.fill()
	if s.TransientRate <= 0 {
		return 1
	}
	// The injector never fails more than MaxConsecutive times in a row, so
	// any budget beyond that guarantees survival.
	if attempts > s.MaxConsecutive {
		return 1
	}
	return 1 - math.Pow(s.TransientRate, float64(attempts))
}
