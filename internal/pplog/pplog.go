// Package pplog is the structured query log: one JSONL record per served
// session, written off the serve path by a bounded non-blocking writer and
// joined offline with span dumps (flight recorder or JSON sink) by the
// analyzer. Where internal/obs answers "what happened inside this session"
// and internal/metrics answers "how is the fleet doing in aggregate", pplog
// is the per-query middle layer: enough structure to find the slow, the
// misestimated and the skewed sessions, keyed by the same TraceID the spans
// and histogram exemplars carry.
package pplog

// Leg is one shard leg's contribution to a scatter-gather session, recorded
// on the coordinator's session record.
type Leg struct {
	// Shard is the shard index; Replica the replica chosen by the router.
	Shard   int `json:"shard"`
	Replica int `json:"replica"`
	// QueueWaitNS / ServiceNS split the leg's latency at its replica's
	// admission point.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	ServiceNS   int64 `json:"service_ns"`
	// Rows is the leg's result cardinality before the merge.
	Rows int `json:"rows"`
	// Error is the leg's failure, if any.
	Error string `json:"error,omitempty"`
}

// LegInfo identifies which shard leg a per-replica record describes (nil on
// coordinator and unsharded session records).
type LegInfo struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Policy  string `json:"policy,omitempty"`
}

// SegInfo identifies the stream segment a standing-query session covered
// (nil on non-streaming records).
type SegInfo struct {
	// Index is the segment's 0-based arrival order; Version the segmented
	// corpus version after it landed.
	Index   int    `json:"index"`
	Version uint64 `json:"version"`
}

// Record is one query-log entry. Coordinator sessions and unsharded sessions
// write one record each (Leg nil); every shard leg additionally writes its
// own record with Leg set — all sharing the session's TraceID.
type Record struct {
	// TimeUnixNS is when the session completed.
	TimeUnixNS int64 `json:"time_unix_ns"`
	// TraceID is the session trace ID shared by every span, event and
	// histogram exemplar of this session.
	TraceID string `json:"trace_id"`
	// Session is the request ID (serve.Request.ID).
	Session string `json:"session,omitempty"`
	// PlanKey is the canonical predicate key (plan-cache key: canonical
	// predicate + accuracy + corpus version).
	PlanKey string `json:"plan_key,omitempty"`
	// Accuracy is the requested per-query accuracy target.
	Accuracy float64 `json:"accuracy,omitempty"`
	// PlanCached reports whether the plan came from the plan cache.
	PlanCached bool `json:"plan_cached"`
	// QueueWaitNS (enqueue→admit) and ServiceNS (admit→done) split the
	// session's latency at the admission semaphore.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	ServiceNS   int64 `json:"service_ns"`
	// Rows is the result cardinality; ClusterVMS the virtual cluster cost.
	Rows       int     `json:"rows,omitempty"`
	ClusterVMS float64 `json:"cluster_vms,omitempty"`
	// PPTested / PPPassed count rows through the session's PP filters.
	PPTested int `json:"pp_tested,omitempty"`
	PPPassed int `json:"pp_passed,omitempty"`
	// EstReduction is the optimizer's predicted input reduction from the
	// injected PPs; ObsReduction what the run actually measured. Their gap
	// is the misestimate the analyzer reports.
	EstReduction float64 `json:"est_reduction,omitempty"`
	ObsReduction float64 `json:"obs_reduction,omitempty"`
	// AdaptSwaps counts mid-query plan swaps taken by the adapt controller.
	AdaptSwaps int `json:"adapt_swaps,omitempty"`
	// Seg tags standing-query records with the stream segment they covered.
	Seg *SegInfo `json:"seg,omitempty"`
	// Leg is set on per-shard leg records; Legs on coordinator records.
	Leg  *LegInfo `json:"leg,omitempty"`
	Legs []Leg    `json:"legs,omitempty"`
	// Policy is the routing policy that placed the legs (coordinator records).
	Policy string `json:"policy,omitempty"`
	// Error is the session failure, if any.
	Error string `json:"error,omitempty"`
}

// TotalNS is the session's end-to-end latency (queue wait plus service).
func (r *Record) TotalNS() int64 { return r.QueueWaitNS + r.ServiceNS }

// IsSession reports whether the record describes a whole session (as opposed
// to one shard leg of one).
func (r *Record) IsSession() bool { return r.Leg == nil }
