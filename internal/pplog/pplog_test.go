package pplog

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"probpred/internal/metrics"
	"probpred/internal/obs"
)

func TestWriterRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	reg := metrics.New()
	w := NewWriter(&buf, 8, reg)
	recs := []Record{
		{TraceID: "t1", Session: "q1", PlanKey: "k1", PlanCached: true, ServiceNS: 100, QueueWaitNS: 5},
		{TraceID: "t2", Session: "q2", Error: "boom"},
		{TraceID: "t3", Session: "q3", Leg: &LegInfo{Shard: 1, Replica: 0, Policy: "round-robin"}},
	}
	for _, r := range recs {
		if !w.Log(r) {
			t.Fatalf("Log(%+v) dropped", r)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != 3 || w.Drops() != 0 {
		t.Fatalf("written=%d drops=%d, want 3/0", w.Written(), w.Drops())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d records, want 3", len(got))
	}
	if got[0].TraceID != "t1" || !got[0].PlanCached || got[0].TotalNS() != 105 {
		t.Fatalf("record 0 mismatch: %+v", got[0])
	}
	if got[2].IsSession() || got[2].Leg.Shard != 1 {
		t.Fatalf("record 2 leg mismatch: %+v", got[2])
	}
	if got[1].IsSession() != true || got[1].Error != "boom" {
		t.Fatalf("record 1 mismatch: %+v", got[1])
	}
	if v := reg.Counter("querylog_records_total", "").Value(); v != 3 {
		t.Fatalf("querylog_records_total = %v, want 3", v)
	}

	// Log after Close: counted as a drop, never a panic.
	if w.Log(Record{TraceID: "late"}) {
		t.Fatal("Log after Close succeeded")
	}
	if w.Drops() != 1 {
		t.Fatalf("drops after post-close Log = %d, want 1", w.Drops())
	}
	// Close is idempotent.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// blockingWriter blocks every Write until released — the stalled-sink stand-in
// for the saturation test.
type blockingWriter struct {
	release chan struct{}
	writes  int
}

func (b *blockingWriter) Write(p []byte) (int, error) {
	<-b.release
	b.writes++
	return len(p), nil
}

// TestWriterNonBlockingUnderSaturation proves Log never stalls the caller:
// with the sink wedged and the buffer full, a burst of Logs must return
// promptly, counting drops instead of blocking.
func TestWriterNonBlockingUnderSaturation(t *testing.T) {
	bw := &blockingWriter{release: make(chan struct{})}
	const buffer = 4
	w := NewWriter(bw, buffer, nil)

	const total = 500
	start := time.Now()
	accepted := 0
	for i := 0; i < total; i++ {
		if w.Log(Record{TraceID: "t", Session: "s"}) {
			accepted++
		}
	}
	elapsed := time.Since(start)
	// A wedged sink means at most buffer+1 records can be in flight
	// (channel capacity plus the one the goroutine holds in Write).
	if accepted > buffer+1 {
		t.Fatalf("accepted %d with a wedged sink, want <= %d", accepted, buffer+1)
	}
	if drops := w.Drops(); drops != uint64(total-accepted) {
		t.Fatalf("drops = %d, want %d (every unaccepted Log counted)", drops, total-accepted)
	}
	// 500 non-blocking sends are microseconds; a second means Log blocked.
	if elapsed > time.Second {
		t.Fatalf("burst of %d Logs took %v — Log blocked on the stalled sink", total, elapsed)
	}

	close(bw.release)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Written() != uint64(accepted) {
		t.Fatalf("written = %d, want %d after release", w.Written(), accepted)
	}
}

func TestWriterConcurrentLogAndClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Log(Record{TraceID: "t"})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Close()
	}()
	wg.Wait()
	if w.Written()+w.Drops() == 0 {
		t.Fatal("no records accounted for")
	}
}

func TestReadRejectsMalformedLine(t *testing.T) {
	in := "{\"trace_id\":\"t1\"}\n\nnot json\n"
	_, err := Read(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line-3 parse error", err)
	}
}

func TestAnalyze(t *testing.T) {
	mkSession := func(trace string, serviceMS int64, cached bool, est, obsRed float64, legs []Leg) Record {
		return Record{
			TraceID: trace, Session: "s-" + trace, PlanKey: "k",
			PlanCached: cached, ServiceNS: serviceMS * 1e6,
			EstReduction: est, ObsReduction: obsRed, Legs: legs,
		}
	}
	records := []Record{
		mkSession("t1", 10, true, 0.9, 0.88, nil),
		mkSession("t2", 10, true, 0.9, 0.30, nil), // misestimated (gap 0.6)
		mkSession("t3", 10, false, 0, 0, []Leg{{Shard: 0, ServiceNS: 9e6}, {Shard: 1, ServiceNS: 1e6}}), // skewed 9x
		mkSession("t4", 500, true, 0, 0, []Leg{{Shard: 0, ServiceNS: 5e6}, {Shard: 1, ServiceNS: 4e6}}), // slow, not skewed
		{TraceID: "t3", Session: "s-t3", Leg: &LegInfo{Shard: 0}},
		{TraceID: "", Session: "untraced"},
	}
	spans := []obs.Span{
		{ID: 1, Trace: "t4", Kind: obs.KindSession, Name: "s-t4", WallNS: 5e8},
		{ID: 2, Parent: 1, Trace: "t4", Kind: obs.KindRun, Name: "plan", WallNS: 4e8},
		{ID: 3, Parent: 2, Trace: "t4", Kind: obs.KindOperator, Name: "Scan", WallNS: 1e8},
		{ID: 9, Trace: "other", Kind: obs.KindRun, Name: "unrelated"},
	}
	a := Analyze(records, spans, Options{SLOMS: 100, TopK: 2, Drops: 7})
	if a.Sessions != 5 || a.LegRecords != 1 {
		t.Fatalf("sessions=%d legs=%d, want 5/1", a.Sessions, a.LegRecords)
	}
	if a.AllHaveTrace {
		t.Fatal("AllHaveTrace true despite untraced record")
	}
	if a.Drops != 7 {
		t.Fatalf("drops = %d, want 7", a.Drops)
	}
	// 4 of 5 sessions meet the 100ms SLO (t4 is 500ms).
	if a.SLOAttainment != 0.8 {
		t.Fatalf("SLO attainment = %v, want 0.8", a.SLOAttainment)
	}
	// 1 of 2 sessions with estimates misestimated.
	if a.MisestimateRate != 0.5 {
		t.Fatalf("misestimate rate = %v, want 0.5", a.MisestimateRate)
	}
	// 1 of 2 scattered sessions skewed.
	if a.ShardSkewRate != 0.5 {
		t.Fatalf("shard skew rate = %v, want 0.5", a.ShardSkewRate)
	}
	if len(a.TopSlowest) != 2 || a.TopSlowest[0].TraceID != "t4" {
		t.Fatalf("top slowest = %+v, want t4 first", a.TopSlowest)
	}
	top := a.TopSlowest[0]
	if top.SpanCount != 3 || len(top.Spans) != 3 {
		t.Fatalf("t4 span tree: count=%d lines=%d, want 3/3", top.SpanCount, len(top.Spans))
	}
	// Tree shape: run indented under session, operator under run.
	if !strings.HasPrefix(top.Spans[0], "[session]") ||
		!strings.HasPrefix(top.Spans[1], "  [run]") ||
		!strings.HasPrefix(top.Spans[2], "    [operator]") {
		t.Fatalf("span tree lines:\n%s", strings.Join(top.Spans, "\n"))
	}
}

func TestAnalyzeDerivesSLO(t *testing.T) {
	var records []Record
	for i := 0; i < 10; i++ {
		records = append(records, Record{TraceID: fmt.Sprintf("t%d", i), ServiceNS: 10e6})
	}
	a := Analyze(records, nil, Options{})
	if a.SLOMS != 200 { // 20x the 10ms median
		t.Fatalf("derived SLO = %v ms, want 200", a.SLOMS)
	}
	if a.SLOAttainment != 1 {
		t.Fatalf("attainment = %v, want 1", a.SLOAttainment)
	}
}

func TestReadSpansSkipsNonSpanLines(t *testing.T) {
	in := `--- text framing ---
{"type":"span","id":1,"trace":"t1","kind":"run","name":"plan"}
{"type":"event","name":"watchdog.trip"}
{"type":"span","id":2,"trace":"t1","kind":"operator","name":"Scan"}
garbage
`
	spans, err := ReadSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].ID != 1 || spans[1].Kind != obs.KindOperator {
		t.Fatalf("spans = %+v", spans)
	}
}
