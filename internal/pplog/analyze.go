package pplog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"probpred/internal/obs"
)

// ReadSpans parses a span dump in the obs JSON-lines format (JSONSink output
// or FlightRecorder.DumpJSON): one {"type": "span"|"event"|"metric"} object
// per line. Non-JSON lines (e.g. text-dump framing) and non-span records are
// skipped, so a mixed stderr capture still yields its spans.
func ReadSpans(r io.Reader) ([]obs.Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []obs.Span
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(text, "{") {
			continue
		}
		var rec struct {
			Type string `json:"type"`
			obs.Span
		}
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			continue
		}
		if rec.Type == "span" {
			out = append(out, rec.Span)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("span dump: %w", err)
	}
	return out, nil
}

// ReadSpansFile reads a span dump from path.
func ReadSpansFile(path string) ([]obs.Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpans(f)
}

// Options tunes Analyze. The zero value picks the documented defaults.
type Options struct {
	// SLOMS is the latency objective in wall milliseconds. Zero derives it
	// as 20x the median session service time (the auto-tune harness's SLO).
	SLOMS float64
	// TopK bounds the slowest-trace drilldown (default 5).
	TopK int
	// MisestimateTol is the |est - observed| reduction gap that counts a
	// session as misestimated (default 0.25, matching EXPLAIN ANALYZE's
	// MISESTIMATE flag threshold order).
	MisestimateTol float64
	// SkewRatio is the max/min leg service ratio that counts a
	// scatter-gather session as shard-skewed (default 2.0).
	SkewRatio float64
	// Drops is the writer's drop count at the end of the run, carried into
	// the analysis verbatim.
	Drops uint64
}

// TraceDetail is one slow session with its span tree, joined by TraceID.
type TraceDetail struct {
	TraceID string  `json:"trace_id"`
	Session string  `json:"session,omitempty"`
	PlanKey string  `json:"plan_key,omitempty"`
	TotalMS float64 `json:"total_ms"`
	// QueueMS / ServiceMS split TotalMS at the admission point.
	QueueMS   float64 `json:"queue_ms"`
	ServiceMS float64 `json:"service_ms"`
	// Spans is the session's span tree, one indented line per span
	// (children under parents, siblings in start order).
	Spans []string `json:"spans,omitempty"`
	// SpanCount is the number of spans sharing the trace.
	SpanCount int `json:"span_count"`
}

// Analysis is the analyzer's report — the body of BENCH_obs.json.
type Analysis struct {
	Sessions int `json:"sessions"`
	LegRecords int `json:"leg_records"`
	Errors   int `json:"errors"`
	// Drops echoes the query-log writer's drop counter.
	Drops uint64 `json:"querylog_drops"`
	// AllHaveTrace reports whether every record carried a TraceID.
	AllHaveTrace bool `json:"all_have_trace"`
	// PlanCacheHitRate is the fraction of sessions served from the plan cache.
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	// SLOMS is the objective used; SLOAttainment the fraction of sessions
	// whose total latency met it.
	SLOMS         float64 `json:"slo_ms"`
	SLOAttainment float64 `json:"slo_attainment"`
	// MisestimateRate is the fraction of sessions whose estimated vs
	// observed PP reduction diverged by more than the tolerance.
	MisestimateRate float64 `json:"misestimate_rate"`
	// ShardSkewRate is the fraction of scatter-gather sessions whose
	// slowest leg took more than SkewRatio times the fastest.
	ShardSkewRate float64 `json:"shard_skew_rate"`
	// TopSlowest drills into the slowest sessions with their span trees.
	TopSlowest []TraceDetail `json:"top_slowest,omitempty"`
}

// Analyze joins query-log records with a span dump and reports SLO
// attainment, the slowest traces (with span trees), misestimate and
// shard-skew rates.
func Analyze(records []Record, spans []obs.Span, opts Options) Analysis {
	if opts.TopK <= 0 {
		opts.TopK = 5
	}
	if opts.MisestimateTol <= 0 {
		opts.MisestimateTol = 0.25
	}
	if opts.SkewRatio <= 0 {
		opts.SkewRatio = 2.0
	}

	a := Analysis{Drops: opts.Drops, AllHaveTrace: true}
	var sessions []*Record
	for i := range records {
		rec := &records[i]
		if rec.TraceID == "" {
			a.AllHaveTrace = false
		}
		if !rec.IsSession() {
			a.LegRecords++
			continue
		}
		sessions = append(sessions, rec)
		if rec.Error != "" {
			a.Errors++
		}
	}
	a.Sessions = len(sessions)
	if len(sessions) == 0 {
		return a
	}

	// SLO: given, or 20x the median service time.
	a.SLOMS = opts.SLOMS
	if a.SLOMS <= 0 {
		svc := make([]float64, len(sessions))
		for i, rec := range sessions {
			svc[i] = float64(rec.ServiceNS) / 1e6
		}
		sort.Float64s(svc)
		a.SLOMS = 20 * svc[len(svc)/2]
	}

	var met, cached, misest, estN, skewed, scattered int
	for _, rec := range sessions {
		if float64(rec.TotalNS())/1e6 <= a.SLOMS {
			met++
		}
		if rec.PlanCached {
			cached++
		}
		if rec.EstReduction > 0 {
			estN++
			gap := rec.EstReduction - rec.ObsReduction
			if gap < 0 {
				gap = -gap
			}
			if gap > opts.MisestimateTol {
				misest++
			}
		}
		if len(rec.Legs) >= 2 {
			scattered++
			minSvc, maxSvc := rec.Legs[0].ServiceNS, rec.Legs[0].ServiceNS
			for _, leg := range rec.Legs[1:] {
				if leg.ServiceNS < minSvc {
					minSvc = leg.ServiceNS
				}
				if leg.ServiceNS > maxSvc {
					maxSvc = leg.ServiceNS
				}
			}
			if minSvc > 0 && float64(maxSvc)/float64(minSvc) > opts.SkewRatio {
				skewed++
			}
		}
	}
	a.SLOAttainment = float64(met) / float64(len(sessions))
	a.PlanCacheHitRate = float64(cached) / float64(len(sessions))
	if estN > 0 {
		a.MisestimateRate = float64(misest) / float64(estN)
	}
	if scattered > 0 {
		a.ShardSkewRate = float64(skewed) / float64(scattered)
	}

	// Top-k slowest sessions, joined with their span trees.
	byTrace := spansByTrace(spans)
	order := append([]*Record(nil), sessions...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].TotalNS() > order[j].TotalNS() })
	if len(order) > opts.TopK {
		order = order[:opts.TopK]
	}
	for _, rec := range order {
		tree := renderSpanTree(byTrace[rec.TraceID])
		a.TopSlowest = append(a.TopSlowest, TraceDetail{
			TraceID:   rec.TraceID,
			Session:   rec.Session,
			PlanKey:   rec.PlanKey,
			TotalMS:   float64(rec.TotalNS()) / 1e6,
			QueueMS:   float64(rec.QueueWaitNS) / 1e6,
			ServiceMS: float64(rec.ServiceNS) / 1e6,
			Spans:     tree,
			SpanCount: len(byTrace[rec.TraceID]),
		})
	}
	return a
}

// spansByTrace groups spans by TraceID, dropping untraced spans.
func spansByTrace(spans []obs.Span) map[string][]obs.Span {
	out := map[string][]obs.Span{}
	for _, sp := range spans {
		if sp.Trace != "" {
			out[sp.Trace] = append(out[sp.Trace], sp)
		}
	}
	return out
}

// renderSpanTree renders one trace's spans as indented lines, children under
// parents. Spans whose parent is outside the trace (or 0) are roots.
func renderSpanTree(spans []obs.Span) []string {
	if len(spans) == 0 {
		return nil
	}
	present := make(map[int64]bool, len(spans))
	for _, sp := range spans {
		present[sp.ID] = true
	}
	children := map[int64][]obs.Span{}
	var roots []obs.Span
	for _, sp := range spans {
		if sp.Parent != 0 && present[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []obs.Span) {
		sort.SliceStable(s, func(i, j int) bool {
			if !s[i].Start.Equal(s[j].Start) {
				return s[i].Start.Before(s[j].Start)
			}
			return s[i].ID < s[j].ID
		})
	}
	byStart(roots)
	var out []string
	var walk func(sp obs.Span, depth int)
	walk = func(sp obs.Span, depth int) {
		line := fmt.Sprintf("%s[%s] %s wall=%.3fms", strings.Repeat("  ", depth), sp.Kind, sp.Name, float64(sp.WallNS)/1e6)
		if sp.CostVMS > 0 {
			line += fmt.Sprintf(" cost=%.1fvms", sp.CostVMS)
		}
		if sp.RowsIn > 0 || sp.RowsOut > 0 {
			line += fmt.Sprintf(" rows=%d→%d", sp.RowsIn, sp.RowsOut)
		}
		for _, at := range sp.Attrs {
			line += fmt.Sprintf(" %s=%s", at.Key, at.Value)
		}
		out = append(out, line)
		kids := children[sp.ID]
		byStart(kids)
		for _, kid := range kids {
			walk(kid, depth+1)
		}
	}
	for _, root := range roots {
		walk(root, 0)
	}
	return out
}
