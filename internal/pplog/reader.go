package pplog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Read parses a JSONL query log. Blank lines are skipped; a malformed line
// fails with its line number so truncated logs are diagnosable.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("query log line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("query log: %w", err)
	}
	return out, nil
}

// ReadFile reads a JSONL query log from path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
