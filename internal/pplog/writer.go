package pplog

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"probpred/internal/metrics"
)

// DefaultBuffer is the writer's channel capacity when none is given: deep
// enough to ride out scrape-sized stalls of the underlying writer at serving
// throughput, small enough to bound memory when it is gone for good.
const DefaultBuffer = 1024

// Writer appends Records as JSON Lines from a single background goroutine.
// Log never blocks: when the bounded channel is full (the sink is slower
// than the serve path) the record is dropped and counted instead — the
// serving hot path must never stall on its own telemetry.
type Writer struct {
	mu     sync.RWMutex
	closed bool
	ch     chan Record
	done   chan struct{}

	written atomic.Uint64
	drops   atomic.Uint64
	err     error // write/encode error, surfaced by Close; set before done closes

	recordsCtr *metrics.Counter
	dropsCtr   *metrics.Counter
}

// NewWriter starts a query-log writer over out. buffer <= 0 selects
// DefaultBuffer. reg, when non-nil, receives querylog_records_total and
// querylog_dropped_total counters.
func NewWriter(out io.Writer, buffer int, reg *metrics.Registry) *Writer {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	w := &Writer{
		ch:         make(chan Record, buffer),
		done:       make(chan struct{}),
		recordsCtr: reg.Counter("querylog_records_total", "Query-log records written."),
		dropsCtr:   reg.Counter("querylog_dropped_total", "Query-log records dropped because the writer's buffer was full."),
	}
	go w.run(out)
	return w
}

func (w *Writer) run(out io.Writer) {
	defer close(w.done)
	enc := json.NewEncoder(out)
	for rec := range w.ch {
		if w.err != nil {
			continue // drain; the sink already failed
		}
		if err := enc.Encode(rec); err != nil {
			w.err = err
			continue
		}
		w.written.Add(1)
		w.recordsCtr.Inc()
	}
}

// Log enqueues a record without blocking. It reports false — and counts a
// drop — when the buffer is full or the writer is closed.
func (w *Writer) Log(rec Record) bool {
	if w == nil {
		return false
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		w.drops.Add(1)
		w.dropsCtr.Inc()
		return false
	}
	select {
	case w.ch <- rec:
		return true
	default:
		w.drops.Add(1)
		w.dropsCtr.Inc()
		return false
	}
}

// Written returns how many records reached the underlying writer.
func (w *Writer) Written() uint64 {
	if w == nil {
		return 0
	}
	return w.written.Load()
}

// Drops returns how many records were dropped (full buffer or closed writer).
func (w *Writer) Drops() uint64 {
	if w == nil {
		return 0
	}
	return w.drops.Load()
}

// Close flushes buffered records and stops the writer, returning the first
// write error, if any. Close is idempotent; Log after Close counts drops.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
	w.mu.Unlock()
	<-w.done
	return w.err
}
