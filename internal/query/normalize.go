package query

// NNF rewrites p into negation normal form: negations are pushed down to
// clauses via De Morgan's laws and then absorbed into the clause operator
// (¬(t=SUV) becomes t!=SUV). The optimizer's rewrite rules (§6.1) operate
// on NNF predicates.
func NNF(p Pred) Pred { return nnf(p, false) }

func nnf(p Pred, negated bool) Pred {
	switch n := p.(type) {
	case *Clause:
		if negated {
			return n.Negate()
		}
		return n
	case True:
		if negated {
			return False{}
		}
		return n
	case False:
		if negated {
			return True{}
		}
		return n
	case *Not:
		return nnf(n.Kid, !negated)
	case *And:
		kids := make([]Pred, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = nnf(k, negated)
		}
		if negated {
			return &Or{Kids: kids}
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Pred, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = nnf(k, negated)
		}
		if negated {
			return &And{Kids: kids}
		}
		return &Or{Kids: kids}
	}
	return p
}

// CNF converts p (any form) into conjunctive normal form: a conjunction of
// disjunctions of simple clauses. The result is returned as a slice of OR
// groups; a group with one clause is a bare conjunct. The conversion first
// normalizes to NNF, then distributes. Exponential in the worst case, which
// is acceptable for the ≤4-clause predicates of the paper's workloads
// (Table 7); callers cap predicate size upstream.
func CNF(p Pred) [][]*Clause {
	return cnf(NNF(p))
}

func cnf(p Pred) [][]*Clause {
	switch n := p.(type) {
	case *Clause:
		return [][]*Clause{{n}}
	case True:
		return nil // empty conjunction = true
	case False:
		return [][]*Clause{{}} // an empty disjunction is unsatisfiable
	case *And:
		var out [][]*Clause
		for _, k := range n.Kids {
			out = append(out, cnf(k)...)
		}
		return out
	case *Or:
		// CNF(A ∨ B) = cross-product union of CNF(A) and CNF(B) groups.
		out := [][]*Clause{{}}
		for _, k := range n.Kids {
			sub := cnf(k)
			if sub == nil { // k is trivially true, so the whole Or is true
				return nil
			}
			var next [][]*Clause
			for _, group := range out {
				for _, sg := range sub {
					merged := make([]*Clause, 0, len(group)+len(sg))
					merged = append(merged, group...)
					merged = append(merged, sg...)
					next = append(next, merged)
				}
			}
			out = next
		}
		return out
	case *Not:
		// NNF eliminates every negation; nothing should reach here.
		return [][]*Clause{{}}
	}
	return nil
}

// Implies reports whether truth of p guarantees truth of q for every row,
// checked by exhaustive evaluation over the provided domains (one candidate
// value set per column). It is used by tests to verify that rewritten PP
// expressions really are necessary conditions (𝒫 ⇒ ℰ).
func Implies(p, q Pred, domains map[string][]Value) bool {
	cols := Columns(&And{Kids: []Pred{p, q}})
	assignment := map[string]Value{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(cols) {
			l := func(c string) (Value, bool) { v, ok := assignment[c]; return v, ok }
			pv, err := p.Eval(l)
			if err != nil {
				return true // undefined rows don't witness non-implication
			}
			if !pv {
				return true
			}
			qv, err := q.Eval(l)
			if err != nil {
				return false
			}
			return qv
		}
		col := cols[i]
		vals := domains[col]
		if len(vals) == 0 {
			return false // cannot check an unknown domain
		}
		for _, v := range vals {
			assignment[col] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}
