package query

import (
	"strings"
	"testing"
)

func row(pairs map[string]Value) Lookup {
	return func(c string) (Value, bool) { v, ok := pairs[c]; return v, ok }
}

func mustEval(t *testing.T, p Pred, l Lookup) bool {
	t.Helper()
	ok, err := p.Eval(l)
	if err != nil {
		t.Fatalf("Eval(%s): %v", p, err)
	}
	return ok
}

func TestParseSimpleClause(t *testing.T) {
	p, err := Parse("t=SUV")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := p.(*Clause)
	if !ok || c.Col != "t" || c.Op != OpEq || c.Val.Str != "SUV" {
		t.Fatalf("parsed %#v", p)
	}
	if c.String() != "t=SUV" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestParseNumericOps(t *testing.T) {
	for _, in := range []string{"s>60", "s>=60", "s<65", "s<=65", "s!=70", "s=80"} {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if p.String() != in {
			t.Fatalf("round trip %q -> %q", in, p.String())
		}
	}
}

func TestParseConjunctionDisjunction(t *testing.T) {
	p := MustParse("t=SUV & c=red & i=pt335 & o=pt211")
	and, ok := p.(*And)
	if !ok || len(and.Kids) != 4 {
		t.Fatalf("parsed %#v", p)
	}
	p = MustParse("i=pt303 & (o=pt335 | o=pt306)")
	r := row(map[string]Value{"i": Str("pt303"), "o": Str("pt306")})
	if !mustEval(t, p, r) {
		t.Fatal("Q14-style predicate should hold")
	}
}

func TestParseInSet(t *testing.T) {
	p := MustParse("t in {sedan, truck}")
	or, ok := p.(*Or)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("in-set did not desugar: %#v", p)
	}
	if !mustEval(t, p, row(map[string]Value{"t": Str("truck")})) {
		t.Fatal("t=truck should match")
	}
	if mustEval(t, p, row(map[string]Value{"t": Str("SUV")})) {
		t.Fatal("t=SUV should not match")
	}
	// Single element set collapses to a clause.
	if _, ok := MustParse("t in {van}").(*Clause); !ok {
		t.Fatal("singleton set should be a clause")
	}
}

func TestParseNegation(t *testing.T) {
	p := MustParse("!(t=SUV)")
	if mustEval(t, p, row(map[string]Value{"t": Str("SUV")})) {
		t.Fatal("negation failed")
	}
	if !mustEval(t, p, row(map[string]Value{"t": Str("van")})) {
		t.Fatal("negation failed")
	}
}

func TestParsePrecedence(t *testing.T) {
	// & binds tighter than |.
	p := MustParse("a=1 | b=1 & c=1")
	or, ok := p.(*Or)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("precedence wrong: %s", p)
	}
	if _, ok := or.Kids[1].(*And); !ok {
		t.Fatalf("precedence wrong: %s", p)
	}
}

func TestParseTrue(t *testing.T) {
	p := MustParse("true")
	if !mustEval(t, p, row(nil)) {
		t.Fatal("true should evaluate true")
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "t=", "=SUV", "t @@ 5", "(a=1", "t in {", "t in {a,", "a=1 b=2", "t ! 5"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	p := MustParse("t=SUV")
	if _, err := p.Eval(row(nil)); err == nil {
		t.Fatal("missing column should error")
	}
	// Type mismatch: numeric column vs string clause.
	if _, err := p.Eval(row(map[string]Value{"t": Number(3)})); err == nil {
		t.Fatal("type mismatch should error")
	}
	// Relational operator on strings.
	p2 := &Clause{Col: "t", Op: OpLt, Val: Str("x")}
	if _, err := p2.Eval(row(map[string]Value{"t": Str("a")})); err == nil {
		t.Fatal("string relational should error")
	}
}

func TestNumericEval(t *testing.T) {
	p := MustParse("s>60 & s<65")
	if !mustEval(t, p, row(map[string]Value{"s": Number(62)})) {
		t.Fatal("62 should pass")
	}
	if mustEval(t, p, row(map[string]Value{"s": Number(70)})) {
		t.Fatal("70 should fail")
	}
}

func TestOpNegate(t *testing.T) {
	pairs := map[Op]Op{OpEq: OpNe, OpNe: OpEq, OpLt: OpGe, OpLe: OpGt, OpGt: OpLe, OpGe: OpLt}
	for op, want := range pairs {
		if op.Negate() != want {
			t.Errorf("%s.Negate() = %s, want %s", op, op.Negate(), want)
		}
	}
}

func TestNNFPushesNegation(t *testing.T) {
	p := MustParse("!(t=SUV & s>60)")
	n := NNF(p)
	// Should become t!=SUV | s<=60.
	if n.String() != "t!=SUV | s<=60" {
		t.Fatalf("NNF = %q", n.String())
	}
	// Semantics preserved over sample rows.
	rows := []Lookup{
		row(map[string]Value{"t": Str("SUV"), "s": Number(70)}),
		row(map[string]Value{"t": Str("SUV"), "s": Number(50)}),
		row(map[string]Value{"t": Str("van"), "s": Number(70)}),
	}
	for i, r := range rows {
		if mustEval(t, p, r) != mustEval(t, n, r) {
			t.Fatalf("NNF changed semantics on row %d", i)
		}
	}
}

func TestNNFDoubleNegation(t *testing.T) {
	p := MustParse("!(!(t=SUV))")
	if NNF(p).String() != "t=SUV" {
		t.Fatalf("NNF = %q", NNF(p).String())
	}
}

func TestCNFOfPaperExample(t *testing.T) {
	// (p ∨ q) ∧ ¬r from Table 3, with p=a=1, q=b=1, r=c=1.
	p := MustParse("(a=1 | b=1) & !(c=1)")
	groups := CNF(p)
	if len(groups) != 2 {
		t.Fatalf("CNF groups = %d, want 2", len(groups))
	}
	var hasPair, hasNegR bool
	for _, g := range groups {
		if len(g) == 2 {
			hasPair = true
		}
		if len(g) == 1 && g[0].String() == "c!=1" {
			hasNegR = true
		}
	}
	if !hasPair || !hasNegR {
		t.Fatalf("CNF = %v", groups)
	}
}

func TestCNFDistributesOrOverAnd(t *testing.T) {
	// a=1 | (b=1 & c=1) => (a=1|b=1) & (a=1|c=1).
	p := MustParse("a=1 | (b=1 & c=1)")
	groups := CNF(p)
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Fatalf("CNF = %v", groups)
	}
}

func TestCNFTrue(t *testing.T) {
	if CNF(True{}) != nil {
		t.Fatal("CNF(true) should be empty")
	}
}

func TestColumnsAndClauses(t *testing.T) {
	p := MustParse("t=SUV & (s>60 | c=red) & !(t=van)")
	cols := Columns(p)
	if strings.Join(cols, ",") != "c,s,t" {
		t.Fatalf("Columns = %v", cols)
	}
	if n := len(Clauses(p)); n != 4 {
		t.Fatalf("Clauses = %d, want 4", n)
	}
}

func TestImplies(t *testing.T) {
	domains := map[string][]Value{
		"t": {Str("SUV"), Str("van"), Str("sedan")},
		"s": {Number(50), Number(62), Number(70)},
	}
	p := MustParse("t=SUV & s>60")
	if !Implies(p, MustParse("t=SUV"), domains) {
		t.Fatal("conjunct should imply its clause")
	}
	if !Implies(p, MustParse("s>55"), domains) {
		t.Fatal("s>60 should imply s>55")
	}
	if Implies(MustParse("t=SUV"), p, domains) {
		t.Fatal("clause should not imply the conjunction")
	}
	if !Implies(MustParse("t=van"), MustParse("t!=SUV"), domains) {
		t.Fatal("t=van should imply t!=SUV")
	}
}

func TestValueHelpers(t *testing.T) {
	if Number(60).String() != "60" {
		t.Fatalf("Number.String = %q", Number(60).String())
	}
	if Str("red").String() != "red" {
		t.Fatalf("Str.String = %q", Str("red").String())
	}
	if !Number(1).Equal(Number(1)) || Number(1).Equal(Str("1")) || !Str("a").Equal(Str("a")) {
		t.Fatal("Equal wrong")
	}
}
