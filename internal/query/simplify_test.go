package query

import (
	"testing"
	"testing/quick"

	// mathx provides the deterministic generator for the equivalence fuzz.
	"probpred/internal/mathx"
)

func simp(t *testing.T, in string) string {
	t.Helper()
	return Simplify(MustParse(in)).String()
}

func TestSimplifyDropsTrueConjuncts(t *testing.T) {
	if got := simp(t, "t=SUV & true"); got != "t=SUV" {
		t.Fatalf("got %q", got)
	}
	if got := simp(t, "true & true"); got != "true" {
		t.Fatalf("got %q", got)
	}
}

func TestSimplifyCollapsesDuplicates(t *testing.T) {
	if got := simp(t, "t=SUV & t=SUV & c=red"); got != "t=SUV & c=red" {
		t.Fatalf("got %q", got)
	}
	if got := simp(t, "t=SUV | t=SUV"); got != "t=SUV" {
		t.Fatalf("got %q", got)
	}
}

func TestSimplifyFlattensNesting(t *testing.T) {
	if got := simp(t, "(t=SUV & c=red) & s>60"); got != "t=SUV & c=red & s>60" {
		t.Fatalf("got %q", got)
	}
	if got := simp(t, "(t=SUV | t=van) | c=red"); got != "t=SUV | t=van | c=red" {
		t.Fatalf("got %q", got)
	}
}

func TestSimplifyContradictions(t *testing.T) {
	for _, in := range []string{
		"s>60 & s<50",
		"s>60 & s<60",
		"s>=61 & s<=60",
		"s=70 & s<65",
		"s=40 & s>45",
		"t=SUV & t=van",
		"s=10 & s=20",
	} {
		if got := simp(t, in); got != "false" {
			t.Errorf("Simplify(%q) = %q, want false", in, got)
		}
	}
	// Satisfiable boundaries must survive.
	for _, in := range []string{"s>=60 & s<=60", "s>60 & s<65", "s=60 & s>=60"} {
		if got := simp(t, in); got == "false" {
			t.Errorf("Simplify(%q) = false, but it is satisfiable", in)
		}
	}
}

func TestSimplifyNegations(t *testing.T) {
	if got := simp(t, "!(true)"); got != "false" {
		t.Fatalf("got %q", got)
	}
	if got := simp(t, "!(t=SUV)"); got != "t!=SUV" {
		t.Fatalf("got %q", got)
	}
	if got := simp(t, "!(!(t=SUV))"); got != "t=SUV" {
		t.Fatalf("got %q", got)
	}
}

func TestSimplifyOrWithFalseBranch(t *testing.T) {
	if got := simp(t, "(s>60 & s<50) | c=red"); got != "c=red" {
		t.Fatalf("got %q", got)
	}
	if got := simp(t, "(s>60 & s<50) | (s>10 & s<5)"); got != "false" {
		t.Fatalf("got %q", got)
	}
}

func TestFalseSemantics(t *testing.T) {
	ok, err := (False{}).Eval(func(string) (Value, bool) { return Value{}, false })
	if err != nil || ok {
		t.Fatal("False must evaluate to false with no error")
	}
}

// Property: simplification preserves semantics over random assignments.
func TestSimplifyEquivalenceQuick(t *testing.T) {
	domains := map[string][]Value{
		"a": {Number(1), Number(2), Number(3)},
		"b": {Str("x"), Str("y")},
	}
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		p := randomPred(rng, 3)
		s := Simplify(p)
		// Exhaustively compare over the domain cross product.
		for _, av := range domains["a"] {
			for _, bv := range domains["b"] {
				l := func(col string) (Value, bool) {
					switch col {
					case "a":
						return av, true
					case "b":
						return bv, true
					}
					return Value{}, false
				}
				want, err1 := p.Eval(l)
				got, err2 := s.Eval(l)
				if (err1 == nil) != (err2 == nil) {
					return false
				}
				if err1 == nil && want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomPred builds a random predicate over columns a (numeric) and b
// (categorical) with bounded depth.
func randomPred(rng *mathx.RNG, depth int) Pred {
	if depth == 0 || rng.Bernoulli(0.4) {
		if rng.Bernoulli(0.5) {
			ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
			return &Clause{Col: "a", Op: ops[rng.Intn(len(ops))],
				Val: Number(float64(1 + rng.Intn(3)))}
		}
		ops := []Op{OpEq, OpNe}
		vals := []string{"x", "y"}
		return &Clause{Col: "b", Op: ops[rng.Intn(2)], Val: Str(vals[rng.Intn(2)])}
	}
	switch rng.Intn(4) {
	case 0:
		return &And{Kids: []Pred{randomPred(rng, depth-1), randomPred(rng, depth-1)}}
	case 1:
		return &Or{Kids: []Pred{randomPred(rng, depth-1), randomPred(rng, depth-1)}}
	case 2:
		return &Not{Kid: randomPred(rng, depth-1)}
	default:
		return True{}
	}
}

func TestNNFAndCNFHandleFalse(t *testing.T) {
	if NNF(False{}).String() != "false" {
		t.Fatal("NNF(false)")
	}
	if NNF(&Not{Kid: False{}}).String() != "true" {
		t.Fatal("NNF(!false)")
	}
	if NNF(&Not{Kid: True{}}).String() != "false" {
		t.Fatal("NNF(!true)")
	}
	groups := CNF(False{})
	if len(groups) != 1 || len(groups[0]) != 0 {
		t.Fatalf("CNF(false) = %v, want one empty group", groups)
	}
}
