package query

// False is the unsatisfiable predicate. The parser never produces it; it
// arises from simplification (e.g. the contradiction s>60 ∧ s<50).
type False struct{}

// Eval implements Pred.
func (False) Eval(Lookup) (bool, error) { return false, nil }

// String implements Pred.
func (False) String() string { return "false" }

// Simplify normalizes a predicate: drops true conjuncts and false
// disjuncts, collapses single-child nodes and constant children, flattens
// nested conjunctions/disjunctions, removes duplicate clauses, and detects
// same-column numeric contradictions (s>60 ∧ s<50 ⇒ false) and tautologies.
// The result is semantically equivalent to the input.
func Simplify(p Pred) Pred {
	switch n := p.(type) {
	case *Clause, True, False:
		return p
	case *Not:
		kid := Simplify(n.Kid)
		switch k := kid.(type) {
		case True:
			return False{}
		case False:
			return True{}
		case *Clause:
			return k.Negate()
		case *Not:
			return k.Kid
		}
		return &Not{Kid: kid}
	case *And:
		return simplifyAnd(n)
	case *Or:
		return simplifyOr(n)
	}
	return p
}

func simplifyAnd(n *And) Pred {
	var kids []Pred
	seen := map[string]bool{}
	for _, k := range n.Kids {
		s := Simplify(k)
		switch sk := s.(type) {
		case True:
			continue // neutral element
		case False:
			return False{}
		case *And:
			for _, g := range sk.Kids {
				if key := g.String(); !seen[key] {
					seen[key] = true
					kids = append(kids, g)
				}
			}
			continue
		}
		if key := s.String(); seen[key] {
			continue
		} else {
			seen[key] = true
		}
		kids = append(kids, s)
	}
	if contradictsNumerically(kids) {
		return False{}
	}
	switch len(kids) {
	case 0:
		return True{}
	case 1:
		return kids[0]
	}
	return &And{Kids: kids}
}

func simplifyOr(n *Or) Pred {
	var kids []Pred
	seen := map[string]bool{}
	for _, k := range n.Kids {
		s := Simplify(k)
		switch sk := s.(type) {
		case False:
			continue // neutral element
		case True:
			return True{}
		case *Or:
			for _, g := range sk.Kids {
				if key := g.String(); !seen[key] {
					seen[key] = true
					kids = append(kids, g)
				}
			}
			continue
		}
		if key := s.String(); seen[key] {
			continue
		} else {
			seen[key] = true
		}
		kids = append(kids, s)
	}
	switch len(kids) {
	case 0:
		return False{}
	case 1:
		return kids[0]
	}
	return &Or{Kids: kids}
}

// contradictsNumerically reports whether the conjunction of top-level
// clauses is unsatisfiable over some numeric column: an empty interval
// (lower bound ≥ upper bound), an equality outside the bounds, or two
// different equalities on the same column (numeric or categorical).
func contradictsNumerically(kids []Pred) bool {
	type bounds struct {
		lo, hi           float64
		loStrict, hiOpen bool
		hasLo, hasHi     bool
		eq               *Value
	}
	byCol := map[string]*bounds{}
	for _, k := range kids {
		cl, ok := k.(*Clause)
		if !ok {
			continue
		}
		b := byCol[cl.Col]
		if b == nil {
			b = &bounds{}
			byCol[cl.Col] = b
		}
		if cl.Op == OpEq {
			if b.eq != nil && !b.eq.Equal(cl.Val) {
				return true // x=a ∧ x=b with a≠b
			}
			v := cl.Val
			b.eq = &v
			continue
		}
		if !cl.Val.IsNum {
			continue
		}
		switch cl.Op {
		case OpGt:
			if !b.hasLo || cl.Val.Num >= b.lo {
				b.lo, b.loStrict, b.hasLo = cl.Val.Num, true, true
			}
		case OpGe:
			if !b.hasLo || cl.Val.Num > b.lo {
				b.lo, b.loStrict, b.hasLo = cl.Val.Num, false, true
			}
		case OpLt:
			if !b.hasHi || cl.Val.Num <= b.hi {
				b.hi, b.hiOpen, b.hasHi = cl.Val.Num, true, true
			}
		case OpLe:
			if !b.hasHi || cl.Val.Num < b.hi {
				b.hi, b.hiOpen, b.hasHi = cl.Val.Num, false, true
			}
		}
	}
	for _, b := range byCol {
		if b.hasLo && b.hasHi {
			if b.lo > b.hi {
				return true
			}
			if b.lo == b.hi && (b.loStrict || b.hiOpen) {
				return true
			}
		}
		if b.eq != nil && b.eq.IsNum {
			v := b.eq.Num
			if b.hasLo && (v < b.lo || (v == b.lo && b.loStrict)) {
				return true
			}
			if b.hasHi && (v > b.hi || (v == b.hi && b.hiOpen)) {
				return true
			}
		}
	}
	return false
}
