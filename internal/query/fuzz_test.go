package query

import "testing"

// FuzzParse checks the parser never panics and that successfully parsed
// predicates round-trip through their String form with identical structure.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"t=SUV",
		"s>60 & s<65",
		"t in {sedan, truck}",
		"i=pt303 & (o=pt335 | o=pt306)",
		"!(c=red) | true",
		"a>=1.5 & b<=2 & c!=x",
		"(((a=1)))",
		"t in {a}",
		"&&&", "!!!", "a=", "in in in", "{,}", "a in {",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Round trip: the rendered predicate must parse to the same render.
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered predicate %q does not re-parse: %v", rendered, err)
		}
		if p2.String() != rendered {
			t.Fatalf("round trip unstable: %q -> %q", rendered, p2.String())
		}
		// NNF and CNF must not panic and must preserve renderability.
		_ = NNF(p).String()
		_ = CNF(p)
	})
}
