package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a predicate expression. The grammar, mirroring the TRAF-20
// predicate shapes of Table 7:
//
//	expr   := term ('|' term)*
//	term   := factor ('&' factor)*
//	factor := '!' factor | '(' expr ')' | clause | 'true'
//	clause := ident op value | ident 'in' '{' value (',' value)* '}'
//	op     := = | != | < | <= | > | >=
//	value  := number | ident
//
// 'col in {a,b}' desugars to (col=a | col=b), the paper's ER predicates.
func Parse(input string) (Pred, error) {
	p := &parser{toks: lex(input)}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("query: parsing %q: %w", input, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("query: parsing %q: unexpected trailing token %q", input, p.peek())
	}
	return expr, nil
}

// MustParse is Parse that panics on error; intended for tests and constant
// benchmark workloads.
func MustParse(input string) Pred {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) eof() bool    { return p.pos >= len(p.toks) }
func (p *parser) peek() string { return p.toks[p.pos] }
func (p *parser) next() string { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(t string) bool {
	if !p.eof() && p.peek() == t {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseExpr() (Pred, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	kids := []Pred{left}
	for p.accept("|") {
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &Or{Kids: kids}, nil
}

func (p *parser) parseTerm() (Pred, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	kids := []Pred{left}
	for p.accept("&") {
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &And{Kids: kids}, nil
}

func (p *parser) parseFactor() (Pred, error) {
	if p.eof() {
		return nil, fmt.Errorf("unexpected end of input")
	}
	if p.accept("!") {
		kid, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Not{Kid: kid}, nil
	}
	if p.accept("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, fmt.Errorf("missing closing parenthesis")
		}
		return e, nil
	}
	ident := p.next()
	if ident == "true" {
		return True{}, nil
	}
	if !isIdent(ident) {
		return nil, fmt.Errorf("expected identifier, got %q", ident)
	}
	if p.eof() {
		return nil, fmt.Errorf("expected operator after %q", ident)
	}
	op := p.next()
	if op == "in" {
		return p.parseInSet(ident)
	}
	switch Op(op) {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
	default:
		return nil, fmt.Errorf("unknown operator %q", op)
	}
	if p.eof() {
		return nil, fmt.Errorf("expected value after %q %s", ident, op)
	}
	val, err := parseValue(p.next())
	if err != nil {
		return nil, err
	}
	return &Clause{Col: ident, Op: Op(op), Val: val}, nil
}

// parseInSet handles "col in {a, b, c}".
func (p *parser) parseInSet(col string) (Pred, error) {
	if !p.accept("{") {
		return nil, fmt.Errorf("expected '{' after 'in'")
	}
	var kids []Pred
	for {
		if p.eof() {
			return nil, fmt.Errorf("unterminated set for column %q", col)
		}
		val, err := parseValue(p.next())
		if err != nil {
			return nil, err
		}
		kids = append(kids, &Clause{Col: col, Op: OpEq, Val: val})
		if p.accept("}") {
			break
		}
		if !p.accept(",") {
			return nil, fmt.Errorf("expected ',' or '}' in set for column %q", col)
		}
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &Or{Kids: kids}, nil
}

func parseValue(tok string) (Value, error) {
	if tok == "" {
		return Value{}, fmt.Errorf("empty value")
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return Number(f), nil
	}
	if !isIdent(tok) {
		return Value{}, fmt.Errorf("invalid value token %q", tok)
	}
	return Str(tok), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && (unicode.IsDigit(r) || r == '.')) {
			continue
		}
		return false
	}
	return true
}

// lex splits the input into tokens: identifiers/numbers, operators, and the
// punctuation & | ! ( ) { } ,.
func lex(input string) []string {
	var toks []string
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '&' || c == '|' || c == '(' || c == ')' || c == '{' || c == '}' || c == ',':
			toks = append(toks, string(c))
			i++
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, "!=")
				i += 2
			} else {
				toks = append(toks, "!")
				i++
			}
		case c == '<' || c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, string(c)+"=")
				i += 2
			} else {
				toks = append(toks, string(c))
				i++
			}
		case c == '=':
			toks = append(toks, "=")
			i++
		default:
			j := i
			for j < len(input) && !strings.ContainsRune(" \t\n&|(){},!<>=", rune(input[j])) {
				j++
			}
			toks = append(toks, input[i:j])
			i = j
		}
	}
	return toks
}
