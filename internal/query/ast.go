// Package query defines the predicate language of the paper's queries:
// simple clauses of the form column ϕ value with ϕ ∈ {=, ≠, <, ≤, >, ≥}
// (§3 "Scope"), combined by arbitrary conjunctions, disjunctions and
// negations. It provides parsing, evaluation, normalization (NNF/CNF) and
// the canonical clause keys the optimizer matches against the PP corpus.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op is a comparison operator.
type Op string

// The six comparison operators the paper supports for clauses.
const (
	OpEq Op = "="
	OpNe Op = "!="
	OpLt Op = "<"
	OpLe Op = "<="
	OpGt Op = ">"
	OpGe Op = ">="
)

// Negate returns the complementary operator (used by NNF conversion and by
// the negation rewrite rule R4).
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	panic(fmt.Sprintf("query: unknown operator %q", o))
}

// Value is a column value: either a number or a string.
type Value struct {
	Num   float64
	Str   string
	IsNum bool
}

// Number wraps a numeric value.
func Number(f float64) Value { return Value{Num: f, IsNum: true} }

// String wraps a string value.
func Str(s string) Value { return Value{Str: s} }

// String renders the value as it appears in predicates.
func (v Value) String() string {
	if v.IsNum {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return v.Str
}

// Equal reports deep value equality.
func (v Value) Equal(o Value) bool {
	if v.IsNum != o.IsNum {
		return false
	}
	if v.IsNum {
		return v.Num == o.Num
	}
	return v.Str == o.Str
}

// Lookup resolves a column name to a value; it is how predicates read rows
// without importing the engine's row type.
type Lookup func(col string) (Value, bool)

// Pred is a predicate tree node.
type Pred interface {
	// Eval evaluates the predicate against a row.
	Eval(l Lookup) (bool, error)
	// String renders a canonical textual form.
	String() string
}

// Clause is a simple clause: Col Op Val.
type Clause struct {
	Col string
	Op  Op
	Val Value
}

// Eval implements Pred.
func (c *Clause) Eval(l Lookup) (bool, error) {
	v, ok := l(c.Col)
	if !ok {
		return false, fmt.Errorf("query: column %q not found", c.Col)
	}
	if v.IsNum != c.Val.IsNum {
		return false, fmt.Errorf("query: type mismatch comparing column %q (numeric=%v) with %v",
			c.Col, v.IsNum, c.Val)
	}
	if v.IsNum {
		return compareNum(v.Num, c.Op, c.Val.Num), nil
	}
	switch c.Op {
	case OpEq:
		return v.Str == c.Val.Str, nil
	case OpNe:
		return v.Str != c.Val.Str, nil
	default:
		return false, fmt.Errorf("query: operator %q not supported for string column %q", c.Op, c.Col)
	}
}

func compareNum(a float64, op Op, b float64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	}
	return false
}

// String implements Pred; the output doubles as the canonical clause key
// that PP corpora are indexed by.
func (c *Clause) String() string {
	return c.Col + string(c.Op) + c.Val.String()
}

// Negate returns the clause with the complementary operator.
func (c *Clause) Negate() *Clause {
	return &Clause{Col: c.Col, Op: c.Op.Negate(), Val: c.Val}
}

// And is a conjunction of sub-predicates.
type And struct{ Kids []Pred }

// Eval implements Pred.
func (a *And) Eval(l Lookup) (bool, error) {
	for _, k := range a.Kids {
		ok, err := k.Eval(l)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// String implements Pred.
func (a *And) String() string { return joinKids(a.Kids, " & ") }

// Or is a disjunction of sub-predicates.
type Or struct{ Kids []Pred }

// Eval implements Pred.
func (o *Or) Eval(l Lookup) (bool, error) {
	for _, k := range o.Kids {
		ok, err := k.Eval(l)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// String implements Pred.
func (o *Or) String() string { return joinKids(o.Kids, " | ") }

// Not is a negation.
type Not struct{ Kid Pred }

// Eval implements Pred.
func (n *Not) Eval(l Lookup) (bool, error) {
	ok, err := n.Kid.Eval(l)
	return !ok, err
}

// String implements Pred.
func (n *Not) String() string { return "!(" + n.Kid.String() + ")" }

// True is the trivial predicate (used for predicate-free queries; A.2's
// no-predicate wrangling can still inject PPs for them).
type True struct{}

// Eval implements Pred.
func (True) Eval(Lookup) (bool, error) { return true, nil }

// String implements Pred.
func (True) String() string { return "true" }

func joinKids(kids []Pred, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		s := k.String()
		switch k.(type) {
		case *And, *Or:
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

// Columns returns the sorted set of column names referenced by p.
func Columns(p Pred) []string {
	set := map[string]bool{}
	var walk func(Pred)
	walk = func(q Pred) {
		switch n := q.(type) {
		case *Clause:
			set[n.Col] = true
		case *And:
			for _, k := range n.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range n.Kids {
				walk(k)
			}
		case *Not:
			walk(n.Kid)
		}
	}
	walk(p)
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Clauses returns every simple clause appearing in p, in traversal order.
func Clauses(p Pred) []*Clause {
	var out []*Clause
	var walk func(Pred)
	walk = func(q Pred) {
		switch n := q.(type) {
		case *Clause:
			out = append(out, n)
		case *And:
			for _, k := range n.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range n.Kids {
				walk(k)
			}
		case *Not:
			walk(n.Kid)
		}
	}
	walk(p)
	return out
}
