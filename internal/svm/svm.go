// Package svm implements the linear support vector machine PP classifier of
// §5.1: f(ψ(x)) = w·ψ(x) + b, trained with the Pegasos stochastic
// sub-gradient method on the hinge loss. Linear SVMs train in (near) linear
// time (Table 2) and score in O(d) per blob.
package svm

import (
	"fmt"

	"probpred/internal/mathx"
)

// Config controls training.
type Config struct {
	// Lambda is the L2 regularization strength. Zero selects a default.
	Lambda float64
	// Epochs is the number of passes over the training data. Zero selects a
	// default.
	Epochs int
	// ClassWeightPos up-weights positive examples; useful for the low
	// selectivities typical of inference predicates. Zero selects 1.
	ClassWeightPos float64
	// Seed seeds the example-sampling stream.
	Seed uint64
	// Warm, when non-nil and dimensioned like the training data, initializes
	// the Pegasos iterate from a previously trained model instead of zero —
	// incremental training over a stream fine-tunes the prior segment's
	// model rather than relearning from scratch. A dimension mismatch falls
	// back to a cold start.
	Warm *Model
}

func (c *Config) fill() {
	if c.Lambda == 0 {
		c.Lambda = 1e-4
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.ClassWeightPos == 0 {
		c.ClassWeightPos = 1
	}
}

// Model is a trained linear SVM.
type Model struct {
	W mathx.Vec
	B float64
}

// Train fits a linear SVM to feature vectors xs with binary labels ys using
// Pegasos (Shalev-Shwartz et al.), the standard linear-time linear-SVM
// trainer cited by the paper [25]. It returns an error for empty or
// mismatched input or single-class labels.
func Train(xs []mathx.Vec, ys []bool, cfg Config) (*Model, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("svm: %d examples but %d labels", len(xs), len(ys))
	}
	pos := 0
	for _, y := range ys {
		if y {
			pos++
		}
	}
	if pos == 0 || pos == len(ys) {
		return nil, fmt.Errorf("svm: training set has a single class (%d/%d positive)", pos, len(ys))
	}
	cfg.fill()
	d := len(xs[0])
	// Augment every example with a constant 1 so the bias is learned and
	// regularized together with the weights; an unregularized bias receives
	// an enormous kick on the first Pegasos step (eta = 1/lambda) and never
	// recovers.
	aug := make([]mathx.Vec, len(xs))
	for i, x := range xs {
		a := make(mathx.Vec, d+1)
		copy(a, x)
		a[d] = 1
		aug[i] = a
	}
	w := make(mathx.Vec, d+1)
	rng := mathx.NewRNG(cfg.Seed)
	n := len(xs)
	totalSteps := cfg.Epochs * n
	t := 1
	if cfg.Warm != nil && len(cfg.Warm.W) == d {
		copy(w, cfg.Warm.W)
		w[d] = cfg.Warm.B
		// A warm start must also warm the step-size schedule: at t=1 the
		// shrink factor 1−eta·lambda is exactly zero and would erase the
		// carried-over weights, and any t below 1/lambda takes steps far
		// larger than the model being carried. Starting the clock at 1/lambda
		// caps eta at 1 from the first step, so training fine-tunes the prior
		// model on the fresh window instead of discarding it.
		t = int(1/cfg.Lambda) + 2
	}
	// Averaged Pegasos: the returned model is the average of the iterates
	// over the second half of training, which slashes the variance of the
	// plain SGD solution — important for the small training windows an
	// online system starts from (§4's cold start).
	avg := make(mathx.Vec, d+1)
	avgFrom := totalSteps / 2
	avgCount := 0
	steps := 1
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for step := 0; step < n; step++ {
			i := rng.Intn(n)
			x := aug[i]
			y := -1.0
			weight := 1.0
			if ys[i] {
				y = 1.0
				weight = cfg.ClassWeightPos
			}
			eta := 1 / (cfg.Lambda * float64(t))
			margin := y * mathx.Dot(w, x)
			// Regularization shrink.
			mathx.Scale(1-eta*cfg.Lambda, w)
			if margin < 1 {
				mathx.Axpy(eta*y*weight, x, w)
			}
			if steps > avgFrom {
				mathx.Axpy(1, w, avg)
				avgCount++
			}
			t++
			steps++
		}
	}
	if avgCount > 0 {
		mathx.Scale(1/float64(avgCount), avg)
		w = avg
	}
	return &Model{W: w[:d], B: w[d]}, nil
}

// Score returns the signed margin w·x + b; larger means more likely +1.
func (m *Model) Score(x mathx.Vec) float64 {
	return mathx.Dot(m.W, x) + m.B
}

// ScoreBatch scores the len(out) vectors stored row-major in xs (row i is
// xs[i*d:(i+1)*d]) into out: one flat sweep over the buffer that reuses W
// from cache line to cache line instead of re-dispatching through the Scorer
// interface per row. Each row's dot product accumulates in the same index
// order as Score, so batch and scalar results are bit-identical (the
// invariant core.PP's batch fast path relies on). It implements
// core.BatchScorer.
func (m *Model) ScoreBatch(xs []float64, d int, out []float64) {
	w := m.W
	for i := range out {
		out[i] = mathx.Dot(w, xs[i*d:(i+1)*d]) + m.B
	}
}

// Name identifies the classifier family.
func (m *Model) Name() string { return "SVM" }

// Cost returns the virtual per-blob scoring cost in virtual milliseconds:
// a fixed dispatch overhead plus O(d) work (Table 2). The constants put an
// FH+SVM PP near the ~1 ms/row the paper measures (Table 5).
func (m *Model) Cost() float64 { return 0.5 + 1e-3*float64(len(m.W)) }
