package svm

import (
	"testing"

	"probpred/internal/mathx"
)

// linearly separable 2-D data: positives have x0+x1 > 1.
func separableData(n int, seed uint64) ([]mathx.Vec, []bool) {
	rng := mathx.NewRNG(seed)
	xs := make([]mathx.Vec, n)
	ys := make([]bool, n)
	for i := range xs {
		x := mathx.Vec{rng.Float64() * 2, rng.Float64() * 2}
		xs[i] = x
		ys[i] = x[0]+x[1] > 1
	}
	return xs, ys
}

func accuracy(m *Model, xs []mathx.Vec, ys []bool) float64 {
	correct := 0
	for i, x := range xs {
		if (m.Score(x) > 0) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

func TestTrainSeparable(t *testing.T) {
	xs, ys := separableData(500, 1)
	m, err := Train(xs, ys, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, xs, ys); acc < 0.95 {
		t.Fatalf("training accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	xs, ys := separableData(500, 3)
	m, err := Train(xs, ys, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	txs, tys := separableData(500, 5)
	if acc := accuracy(m, txs, tys); acc < 0.93 {
		t.Fatalf("test accuracy = %v, want >= 0.93", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	xs, ys := separableData(100, 6)
	m1, err := Train(xs, ys, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(xs, ys, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("training not deterministic")
		}
	}
	if m1.B != m2.B {
		t.Fatal("bias not deterministic")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Fatal("expected error for empty set")
	}
	if _, err := Train([]mathx.Vec{{1}}, []bool{true, false}, Config{}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Train([]mathx.Vec{{1}, {2}}, []bool{true, true}, Config{}); err == nil {
		t.Fatal("expected error for single class")
	}
}

func TestScoreOrdersByMargin(t *testing.T) {
	xs, ys := separableData(500, 8)
	m, err := Train(xs, ys, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// A deep positive should outscore a deep negative.
	deepPos := m.Score(mathx.Vec{2, 2})
	deepNeg := m.Score(mathx.Vec{0, 0})
	if deepPos <= deepNeg {
		t.Fatalf("Score(2,2)=%v <= Score(0,0)=%v", deepPos, deepNeg)
	}
}

func TestClassWeightShiftsBoundary(t *testing.T) {
	// Rare-positive data: weighting positives should increase recall.
	rng := mathx.NewRNG(10)
	var xs []mathx.Vec
	var ys []bool
	for i := 0; i < 1000; i++ {
		x := mathx.Vec{rng.NormFloat64(), rng.NormFloat64()}
		label := x[0] > 1.3 // ~10% positive
		xs = append(xs, x)
		ys = append(ys, label)
	}
	recall := func(m *Model) float64 {
		tp, p := 0, 0
		for i, x := range xs {
			if ys[i] {
				p++
				if m.Score(x) > 0 {
					tp++
				}
			}
		}
		return float64(tp) / float64(p)
	}
	plain, err := Train(xs, ys, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Train(xs, ys, Config{Seed: 11, ClassWeightPos: 5})
	if err != nil {
		t.Fatal(err)
	}
	if recall(weighted) < recall(plain) {
		t.Fatalf("weighted recall %v < plain recall %v", recall(weighted), recall(plain))
	}
}

func TestCostScalesWithDim(t *testing.T) {
	small := &Model{W: make(mathx.Vec, 10)}
	big := &Model{W: make(mathx.Vec, 1000)}
	if big.Cost() <= small.Cost() {
		t.Fatal("cost should grow with dimension")
	}
	if small.Name() != "SVM" {
		t.Fatal("bad name")
	}
}
