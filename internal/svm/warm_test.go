package svm

import (
	"math"
	"testing"

	"probpred/internal/mathx"
)

// linSep generates a linearly separable 2-D set labeled by x0 > 0.5.
func linSep(n int, seed uint64) ([]mathx.Vec, []bool) {
	rng := mathx.NewRNG(seed)
	xs := make([]mathx.Vec, n)
	ys := make([]bool, n)
	for i := range xs {
		x := mathx.Vec{rng.Float64(), rng.Float64()}
		xs[i] = x
		ys[i] = x[0] > 0.5
	}
	return xs, ys
}

func accuracyOf(m *Model, xs []mathx.Vec, ys []bool) float64 {
	ok := 0
	for i, x := range xs {
		if (m.Score(x) > 0) == ys[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(xs))
}

func TestWarmStartFineTunes(t *testing.T) {
	xs, ys := linSep(300, 1)
	prior, err := Train(xs, ys, Config{Epochs: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(prior, xs, ys); acc < 0.9 {
		t.Fatalf("prior model accuracy %v, want >= 0.9", acc)
	}
	// One epoch on a tiny fresh window: a cold start has barely begun to
	// learn, the warm start fine-tunes an already-good separator.
	fresh, fys := linSep(40, 3)
	cold, err := Train(fresh, fys, Config{Epochs: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Train(fresh, fys, Config{Epochs: 1, Seed: 4, Warm: prior})
	if err != nil {
		t.Fatal(err)
	}
	holdout, hys := linSep(500, 5)
	ca, wa := accuracyOf(cold, holdout, hys), accuracyOf(warm, holdout, hys)
	if wa < ca {
		t.Errorf("warm accuracy %v < cold accuracy %v on one epoch of 40 labels", wa, ca)
	}
	if wa < 0.9 {
		t.Errorf("warm accuracy %v, want >= 0.9 (prior carried over)", wa)
	}
}

func TestWarmStartDimensionMismatchFallsBackCold(t *testing.T) {
	xs, ys := linSep(100, 6)
	cold, err := Train(xs, ys, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Train(xs, ys, Config{Seed: 7, Warm: &Model{W: mathx.Vec{1, 2, 3, 4}, B: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.W {
		if cold.W[i] != warm.W[i] {
			t.Fatalf("mismatched warm model changed training (w[%d] %v != %v)", i, warm.W[i], cold.W[i])
		}
	}
	if cold.B != warm.B {
		t.Fatalf("mismatched warm model changed bias (%v != %v)", warm.B, cold.B)
	}
}

func TestWarmStartColdPathUnchanged(t *testing.T) {
	// Warm: nil must be bit-identical to the pre-warm-start trainer.
	xs, ys := linSep(200, 8)
	a, err := Train(xs, ys, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(xs, ys, Config{Seed: 9, Warm: nil})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("w[%d] differs", i)
		}
	}
	if a.B != b.B || math.IsNaN(a.B) {
		t.Fatal("bias differs or is NaN")
	}
}
