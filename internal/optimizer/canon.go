package optimizer

import (
	"sort"
	"strconv"

	"probpred/internal/query"
)

// Expression canonicalization for cross-query plan reuse (§2, §6): ad-hoc
// queries state semantically identical predicates in many textual forms
// ("c=red & t=SUV", "t=SUV & c=red", "!(t!=SUV) & c=red"). A plan cache
// keyed on the raw text would miss all of them; keyed on the canonical form
// it hits. Canonicalize applies only semantics-preserving rewrites, so two
// predicates with equal canonical keys are guaranteed equivalent — a cached
// plan is always sound for the query that hits it.
//
// The canonical form is computed by: simplifying (constant folding and
// numeric contradiction detection, which are themselves equivalence
// rewrites), pushing negations into clause operators (NNF), flattening
// nested conjunctions into their parent conjunction (and dually for
// disjunctions), absorbing True/False units, deduplicating identical
// branches, and sorting branches by their rendered form. The result is a
// unique representative of the predicate's equivalence class under
// commutativity, associativity, idempotence, double negation and unit laws.

// Canonicalize returns the canonical form of p. The result is a fresh tree;
// p is not modified.
func Canonicalize(p query.Pred) query.Pred {
	return canonPred(query.NNF(query.Simplify(p)))
}

// CanonicalKey renders the canonical form of p — the plan-cache key.
// Semantically equal predicates (up to the rewrites above) share a key, and
// equal keys imply equal semantics.
func CanonicalKey(p query.Pred) string {
	return Canonicalize(p).String()
}

// PlanKey builds the full plan-cache key for a predicate optimized at a
// given accuracy target: canonical expression plus the target (plans at
// different targets allocate different thresholds and may choose different
// expressions, §6.2).
func PlanKey(p query.Pred, accuracy float64) string {
	return CanonicalKey(p) + "@" + strconv.FormatFloat(accuracy, 'g', -1, 64)
}

func canonPred(p query.Pred) query.Pred {
	switch n := p.(type) {
	case *query.Clause:
		return &query.Clause{Col: n.Col, Op: n.Op, Val: n.Val}
	case query.True:
		return n
	case query.False:
		return n
	case *query.Not:
		// NNF leaves no negations above clauses, but canonPred is defensive
		// about hand-built trees: renormalize the sub-tree.
		return canonPred(query.NNF(n))
	case *query.And:
		kids := canonKids(n.Kids, true)
		if kids == nil {
			return query.False{}
		}
		switch len(kids) {
		case 0:
			return query.True{}
		case 1:
			return kids[0]
		}
		return &query.And{Kids: kids}
	case *query.Or:
		kids := canonKids(n.Kids, false)
		if kids == nil {
			return query.True{}
		}
		switch len(kids) {
		case 0:
			return query.False{}
		case 1:
			return kids[0]
		}
		return &query.Or{Kids: kids}
	}
	return p
}

// canonKids canonicalizes, flattens, absorbs, dedupes and sorts the children
// of a conjunction (conj=true) or disjunction. A nil return means the node
// collapsed to its absorbing element (False for And, True for Or); an empty
// slice means it collapsed to its unit.
func canonKids(kids []query.Pred, conj bool) []query.Pred {
	flat := make([]query.Pred, 0, len(kids))
	for _, k := range kids {
		ck := canonPred(k)
		switch v := ck.(type) {
		case query.True:
			if conj {
				continue // unit of And
			}
			return nil // absorbs Or
		case query.False:
			if conj {
				return nil // absorbs And
			}
			continue // unit of Or
		case *query.And:
			if conj {
				flat = append(flat, v.Kids...)
				continue
			}
		case *query.Or:
			if !conj {
				flat = append(flat, v.Kids...)
				continue
			}
		}
		flat = append(flat, ck)
	}
	sort.SliceStable(flat, func(i, j int) bool { return flat[i].String() < flat[j].String() })
	out := flat[:0]
	prev := ""
	for i, k := range flat {
		s := k.String()
		if i > 0 && s == prev {
			continue // idempotence: A & A = A, A | A = A
		}
		out = append(out, k)
		prev = s
	}
	return out
}
