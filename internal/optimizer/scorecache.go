package optimizer

import (
	"sync/atomic"

	"probpred/internal/blob"
	"probpred/internal/core"
)

// Cross-query PP-score caching (§6 / §2's reuse economy): PPs are trained
// once per simple clause and shared by every query whose predicate implies
// that clause, so concurrent queries over the same corpus repeatedly score
// the same (PP, blob) pairs. A ScoreCache memoizes those scores. Because a
// PP's score for a blob is a pure function of the two, a cached score is
// bit-identical to a fresh one: caching changes neither results nor virtual
// cost accounting, only the real CPU spent.

// ScoreCache memoizes per-(PP, blob) classifier scores. Implementations must
// be safe for concurrent use — one cache is shared by every session of a
// serving process. Keys are PP identity (pointer) plus blob ID, so a
// negation-derived PP caches independently of its base (their scores differ
// in sign), and blob IDs must be unique within the corpus a cache serves.
type ScoreCache interface {
	// Get returns the cached score of pp on the blob with the given ID.
	Get(pp *core.PP, blobID int) (float64, bool)
	// Put stores pp's score for the blob. Implementations may drop entries
	// (bounded caches): Put is a hint, not a guarantee.
	Put(pp *core.PP, blobID int, score float64)
}

// cacheTally carries a caller's per-run hit/miss counters through one filter
// evaluation. The pointers are shared with the engine's per-operator
// accounting (atomic: parallel chunks of one run tally concurrently). A nil
// tally — or a tally with nil counters — disables counting but not caching.
type cacheTally struct{ hits, misses *atomic.Uint64 }

func (t *cacheTally) hit(n uint64) {
	if t != nil && t.hits != nil {
		t.hits.Add(n)
	}
}

func (t *cacheTally) miss(n uint64) {
	if t != nil && t.misses != nil {
		t.misses.Add(n)
	}
}

// WithScoreCache returns a copy of the compiled filter whose leaves consult
// cache before scoring. The receiver is not modified — compiled filters are
// shared across concurrent sessions, so cache attachment must not mutate a
// filter another session is executing. Pass/fail results, row order and
// virtual costs are identical to the uncached filter. A nil cache returns
// the receiver unchanged.
func (c *Compiled) WithScoreCache(cache ScoreCache) *Compiled {
	return c.WithScoreCacheMin(cache, 0)
}

// WithScoreCacheMin is WithScoreCache with a cost-aware bypass: only leaves
// whose estimated per-blob score cost (reducer + scorer virtual ms) is at
// least minCost get the cache attached; cheaper leaves keep a nil cache and
// recompute every score. For cheap scorers (an SVM dot product) the cache's
// lock and map traffic costs more real CPU than scoring, while expensive
// KDE/DNN PPs still win by caching — minCost is the cutover. Bypassed
// leaves touch neither hit nor miss counters. minCost <= 0 caches every
// leaf; results are identical either way (the cache is transparent).
func (c *Compiled) WithScoreCacheMin(cache ScoreCache, minCost float64) *Compiled {
	if c == nil || cache == nil {
		return c
	}
	return &Compiled{name: c.name, node: cloneWithCache(c.node, cache, minCost)}
}

func cloneWithCache(n compiledNode, cache ScoreCache, minCost float64) compiledNode {
	switch v := n.(type) {
	case *compiledLeaf:
		if v.pp.Cost() < minCost {
			return v // bypass: recomputing is cheaper than cache traffic
		}
		cp := *v
		cp.cache = cache
		return &cp
	case *compiledConj:
		kids := make([]compiledNode, len(v.kids))
		for i, k := range v.kids {
			kids[i] = cloneWithCache(k, cache, minCost)
		}
		return &compiledConj{kids: kids}
	case *compiledDisj:
		kids := make([]compiledNode, len(v.kids))
		for i, k := range v.kids {
			kids[i] = cloneWithCache(k, cache, minCost)
		}
		return &compiledDisj{kids: kids}
	}
	return n // dropAllNode and friends carry no PPs
}

// TestCached implements engine.CachedBlobFilter: Test with per-run score-
// cache accounting. hits/misses are incremented once per PP-leaf score
// lookup; on a filter with no attached cache neither counter moves.
func (c *Compiled) TestCached(b blob.Blob, hits, misses *atomic.Uint64) (bool, float64) {
	return c.node.test(b, &cacheTally{hits: hits, misses: misses})
}

// TestBatchCached implements engine.CachedBatchBlobFilter: TestBatch with
// per-run score-cache accounting.
func (c *Compiled) TestBatchCached(blobs []blob.Blob, pass []bool, cost []float64, hits, misses *atomic.Uint64) {
	c.testBatchTally(blobs, pass, cost, &cacheTally{hits: hits, misses: misses})
}
