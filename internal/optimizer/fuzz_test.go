package optimizer

// FuzzCanonicalExpr drives arbitrary predicate strings through the
// canonicalizer, checking the three properties the serving plan cache
// depends on: canonicalization is idempotent, it preserves semantics under
// evaluation, and semantically equal spellings (kid permutations, double
// negation, duplicated kids) collide on the same cache key. A seed corpus
// lives in testdata/fuzz/FuzzCanonicalExpr; CI runs a short -fuzz smoke on
// top of the deterministic seeds.

import (
	"testing"

	"probpred/internal/query"
)

// fuzzLookup binds columns to deterministic values derived from variant:
// numeric on even variants, drawn from a small string pool otherwise, so
// equality and comparison clauses both get satisfiable and unsatisfiable
// bindings across variants.
func fuzzLookup(variant int) query.Lookup {
	strPool := []string{"SUV", "red", "pt303", "x"}
	return func(col string) (query.Value, bool) {
		h := 0
		for _, r := range col {
			h = h*31 + int(r)
		}
		switch variant % 4 {
		case 0:
			return query.Number(float64((h + variant) % 7)), true
		case 1:
			return query.Number(float64(((h * 3) + variant) % 100)), true
		case 2:
			return query.Str(strPool[(h+variant)%len(strPool)]), true
		default:
			if h%2 == 0 {
				return query.Value{}, false // unbound column
			}
			return query.Str(strPool[h%len(strPool)]), true
		}
	}
}

// reverseKids recursively reverses And/Or kid order: a pure respelling.
func reverseKids(p query.Pred) query.Pred {
	switch n := p.(type) {
	case *query.And:
		kids := make([]query.Pred, len(n.Kids))
		for i, k := range n.Kids {
			kids[len(kids)-1-i] = reverseKids(k)
		}
		return &query.And{Kids: kids}
	case *query.Or:
		kids := make([]query.Pred, len(n.Kids))
		for i, k := range n.Kids {
			kids[len(kids)-1-i] = reverseKids(k)
		}
		return &query.Or{Kids: kids}
	case *query.Not:
		return &query.Not{Kid: reverseKids(n.Kid)}
	}
	return p
}

func FuzzCanonicalExpr(f *testing.F) {
	for _, seed := range []string{
		"t=SUV",
		"t=SUV & c=red",
		"c=red & t=SUV",
		"!(!(t=SUV))",
		"(a=1 | b=2) & (b=2 | a=1)",
		"t in {sedan, truck}",
		"s>60 & s<65",
		"s>60 & s<50",
		"!(t=SUV | c=red)",
		"(a=1 & (b=2 & c=3)) | false",
		"true & (x>1 | true)",
		"a=1 & a=1 & a=1",
		"i=pt303 & (o=pt335 | o=pt306)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := query.Parse(input)
		if err != nil {
			return // unparseable input is the parser fuzzer's concern
		}
		canon := Canonicalize(p)
		key := CanonicalKey(p)

		// Idempotence: canonicalizing a canonical form is a fixed point.
		if k := CanonicalKey(canon); k != key {
			t.Fatalf("not idempotent: %q -> %q -> %q", input, key, k)
		}
		// The key is the canonical form's rendering, and it must re-parse —
		// except the True/False units, whose renderings are not standalone
		// predicates in this grammar.
		switch canon.(type) {
		case query.True, query.False:
		default:
			if _, err := query.Parse(key); err != nil {
				t.Fatalf("canonical key %q does not re-parse: %v", key, err)
			}
		}

		// Semantics preserved: where both forms evaluate cleanly they agree.
		// (Error behavior may legitimately differ: simplification can remove
		// an erroring branch, and kid reordering changes which error
		// short-circuits first.)
		for variant := 0; variant < 6; variant++ {
			lk := fuzzLookup(variant)
			want, err1 := p.Eval(lk)
			got, err2 := canon.Eval(lk)
			if err1 == nil && err2 == nil && want != got {
				t.Fatalf("semantics changed for %q (variant %d): %v vs canonical %v (%q)",
					input, variant, want, got, canon.String())
			}
		}

		// Equal-semantics spellings collide on the same key.
		if k := CanonicalKey(reverseKids(p)); k != key {
			t.Fatalf("kid reversal changed key: %q vs %q", k, key)
		}
		if k := CanonicalKey(&query.Not{Kid: &query.Not{Kid: p}}); k != key {
			t.Fatalf("double negation changed key: %q vs %q", k, key)
		}
		if k := CanonicalKey(&query.And{Kids: []query.Pred{p, p}}); k != key {
			t.Fatalf("self-conjunction changed key: %q vs %q", k, key)
		}
		if k := CanonicalKey(&query.Or{Kids: []query.Pred{p, p}}); k != key {
			t.Fatalf("self-disjunction changed key: %q vs %q", k, key)
		}

		// Accuracy must not leak between distinct targets in PlanKey.
		if PlanKey(p, 0.9) == PlanKey(p, 0.95) {
			t.Fatalf("plan keys for distinct accuracies collide for %q", input)
		}
	})
}
