package optimizer

import (
	"reflect"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/engine"
	"probpred/internal/query"
)

// compileMini optimizes a compound predicate over the mini corpus and returns
// the injected Compiled filter — conj/disj structure with short-circuit
// evaluation, the hardest case for batch/scalar cost equivalence.
func compileMini(t *testing.T, pred string, blobs []blob.Blob) *Compiled {
	t.Helper()
	c := miniCorpus(t, blobs)
	dec, err := New(c).Optimize(query.MustParse(pred), Options{
		Accuracy: 0.95, UDFCost: 100, Domains: miniDomains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.Filter == nil {
		t.Fatalf("expected injection for %q: %+v", pred, dec)
	}
	return dec.Filter
}

// TestCompiledTestBatchMatchesTest checks the BatchBlobFilter contract on
// real optimizer output: per-row pass verdicts and short-circuit-dependent
// costs must equal the scalar walk exactly.
func TestCompiledTestBatchMatchesTest(t *testing.T) {
	blobs := miniBlobs(1500, 21)
	for _, pred := range []string{
		"t=SUV & c=red",
		"t=SUV | t=van",
		"(t=SUV | t=van) & s>50",
		"t=SUV & (c=red | c=white) & s<70",
	} {
		t.Run(pred, func(t *testing.T) {
			f := compileMini(t, pred, blobs)
			pass := make([]bool, len(blobs))
			cost := make([]float64, len(blobs))
			// Two passes so the second runs over recycled pool scratch.
			for i := 0; i < 2; i++ {
				f.TestBatch(blobs, pass, cost)
			}
			for i, b := range blobs {
				wantPass, wantCost := f.Test(b)
				if pass[i] != wantPass || cost[i] != wantCost {
					t.Fatalf("row %d: batch (%v, %v) scalar (%v, %v)",
						i, pass[i], cost[i], wantPass, wantCost)
				}
			}
		})
	}
}

// scalarOnly hides Compiled's TestBatch so the engine takes the per-row path.
type scalarOnly struct{ f engine.BlobFilter }

func (s scalarOnly) Name() string                     { return s.f.Name() }
func (s scalarOnly) Test(b blob.Blob) (bool, float64) { return s.f.Test(b) }

// TestPPFilterBatchEquivalence runs the same plan with the batch path on and
// off, sequentially and with Workers=4 (under -race this also proves the
// pooled buffers are race-free): output rows, row order and the full Stats
// accounting must be identical.
func TestPPFilterBatchEquivalence(t *testing.T) {
	blobs := miniBlobs(2000, 33)
	f := compileMini(t, "(t=SUV | t=van) & s>50", blobs)
	run := func(filter engine.BlobFilter, workers int) *engine.Result {
		res, err := engine.Run(engine.Plan{Ops: []engine.Operator{
			&engine.Scan{Blobs: blobs},
			&engine.PPFilter{F: filter},
		}}, engine.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Compare batch against scalar at the same worker count: chunked cost
	// summation already reorders float additions across worker counts, so
	// cross-count totals may differ in the last ulp — the batch path's
	// contract is per-row and per-chunk identity.
	for _, workers := range []int{1, 4} {
		want := run(scalarOnly{f}, workers)
		got := run(f, workers)
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("workers=%d: %d rows, scalar %d", workers, len(got.Rows), len(want.Rows))
		}
		for i := range got.Rows {
			if got.Rows[i].Blob.ID != want.Rows[i].Blob.ID {
				t.Fatalf("workers=%d row %d: blob %d, scalar %d",
					workers, i, got.Rows[i].Blob.ID, want.Rows[i].Blob.ID)
			}
		}
		if got.ClusterTime != want.ClusterTime {
			t.Fatalf("workers=%d: cluster time %v, scalar %v",
				workers, got.ClusterTime, want.ClusterTime)
		}
		if !reflect.DeepEqual(got.Stats.OpCost, want.Stats.OpCost) {
			t.Fatalf("workers=%d: op costs %v, scalar %v",
				workers, got.Stats.OpCost, want.Stats.OpCost)
		}
	}
}

// TestPPFilterBatchEquivalenceTrainedPPs repeats the engine equivalence with
// PPs whose reducer and scorer actually implement the batch interfaces
// (miniCorpus scorers do not), so the flat-buffer fast path itself is what
// runs inside TestBatch.
func TestPPFilterBatchEquivalenceTrainedPPs(t *testing.T) {
	set := miniSet(t, miniBlobs(1200, 77), "s>50")
	train, val, rest := set.Split(mathxNewRNG(5), 0.4, 0.3)
	pp, err := core.Train("s>50", train, val, core.TrainConfig{Approach: "Raw+SVM", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCorpus()
	c.Add(pp)
	dec, err := New(c).Optimize(query.MustParse("s>50"), Options{Accuracy: 0.95, UDFCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatalf("expected injection: %+v", dec)
	}
	blobs := rest.Blobs
	pass := make([]bool, len(blobs))
	cost := make([]float64, len(blobs))
	dec.Filter.TestBatch(blobs, pass, cost)
	for i, b := range blobs {
		wantPass, wantCost := dec.Filter.Test(b)
		if pass[i] != wantPass || cost[i] != wantCost {
			t.Fatalf("row %d: batch (%v, %v) scalar (%v, %v)",
				i, pass[i], cost[i], wantPass, wantCost)
		}
	}
}
