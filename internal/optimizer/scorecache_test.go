package optimizer

import (
	"sync/atomic"
	"testing"

	"probpred/internal/query"
)

// countingTally evaluates a filter over blobs and returns the score-cache
// lookup counters (hits+misses) plus a pass/cost transcript.
func cacheLookups(t *testing.T, f *Compiled, n int) (lookups uint64, transcript []bool) {
	t.Helper()
	var hits, misses atomic.Uint64
	for _, b := range miniBlobs(n, 19) {
		pass, _ := f.TestCached(b, &hits, &misses)
		transcript = append(transcript, pass)
	}
	return hits.Load() + misses.Load(), transcript
}

// TestWithScoreCacheMinBypass: leaves cheaper than minCost bypass the cache —
// no counter traffic, identical results — while expensive leaves keep it.
// The mini corpus prices exact PPs at 1.0 vms and speed PPs at 1.2 vms, so a
// 1.1 threshold splits a (t=SUV & s>60) filter down the middle.
func TestWithScoreCacheMinBypass(t *testing.T) {
	val := miniBlobs(600, 11)
	o := New(miniCorpus(t, val))
	dec, err := o.Optimize(query.MustParse("t=SUV & s>60"), Options{Accuracy: 1, UDFCost: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.NumPPs != 2 {
		t.Fatalf("want a two-PP injection, got inject=%v pps=%d", dec.Inject, dec.NumPPs)
	}
	const n = 200

	baseLookups, baseTranscript := cacheLookups(t, dec.Filter.WithScoreCache(mapScoreCache{}), n)
	if baseLookups == 0 {
		t.Fatal("fully cached filter drove no lookups; test is vacuous")
	}

	// Threshold above both leaves: the clone caches nothing and counts
	// nothing.
	allBypass, transcript := cacheLookups(t, dec.Filter.WithScoreCacheMin(mapScoreCache{}, 10), n)
	if allBypass != 0 {
		t.Errorf("minCost=10 still drove %d cache lookups", allBypass)
	}
	for i, pass := range transcript {
		if pass != baseTranscript[i] {
			t.Fatalf("blob %d: full-bypass result %v diverged from cached %v", i, pass, baseTranscript[i])
		}
	}

	// Threshold between the leaf costs: only the 1.2-vms speed leaf counts.
	mixed, transcript := cacheLookups(t, dec.Filter.WithScoreCacheMin(mapScoreCache{}, 1.1), n)
	if mixed == 0 || mixed >= baseLookups {
		t.Errorf("minCost=1.1 lookups = %d, want in (0, %d)", mixed, baseLookups)
	}
	for i, pass := range transcript {
		if pass != baseTranscript[i] {
			t.Fatalf("blob %d: mixed-gate result %v diverged from cached %v", i, pass, baseTranscript[i])
		}
	}

	// minCost <= 0 is exactly WithScoreCache.
	zero, _ := cacheLookups(t, dec.Filter.WithScoreCacheMin(mapScoreCache{}, 0), n)
	if zero != baseLookups {
		t.Errorf("minCost=0 lookups = %d, want %d (cache everything)", zero, baseLookups)
	}

	// The receiver is never mutated: the original decision filter still has
	// no cache attached.
	bare, _ := cacheLookups(t, dec.Filter, n)
	if bare != 0 {
		t.Errorf("original filter gained cache counters: %d lookups", bare)
	}
}
