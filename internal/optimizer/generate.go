package optimizer

import (
	"sort"

	"probpred/internal/core"
	"probpred/internal/query"
)

// generate implements §6.1: produce candidate logical expressions ℰ over the
// corpus PPs such that 𝒫 ⇒ ℰ, applying the rewrite rules
//
//	R1: p ∧ (𝒫/p) ⇒ PP_p            (any conjunct's PP is necessary)
//	R2: PP_{p∧q} ⇒ PP_p ∧ PP_q       (decompose conjunctions)
//	R3: PP_{p∨q} ⇒ PP_p ∨ PP_q       (decompose disjunctions)
//	R4: p ∧ (𝒫/p) ⇒ ¬PP_{¬p}        (via §5.6 negation reuse in Lookup)
//
// together with the wrangler rewrites of A.2, greedily bounded: at most
// maxPPs leaves per expression (the paper's constant k), and R2/R3 are
// applied only when the composite clause has no PP of its own or a simpler
// clause performs better (smaller c/r(1]).
type generator struct {
	corpus  *Corpus
	domains map[string][]query.Value
	maxPPs  int
	// skip flags clause-pair keys known to be dependent (A.5); expressions
	// containing a flagged pair are suppressed.
	skip map[string]bool
	// generated / deduped profile the run for SearchStats: raw expressions
	// produced by the rewrite rules, and how many of them were exact
	// duplicates of an earlier candidate.
	generated, deduped int
}

// gen returns the candidate expressions implied by p, deduplicated.
func (g *generator) gen(p query.Pred) []Expr {
	cands := g.genRaw(query.NNF(p))
	g.generated = len(cands)
	seen := map[string]bool{}
	var out []Expr
	for _, e := range cands {
		if NumLeaves(e) > g.maxPPs {
			continue
		}
		if g.hasDependentPair(e) {
			continue
		}
		key := e.String()
		if seen[key] {
			g.deduped++
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	// Deterministic order, best intrinsic cost/reduction ratio first.
	sort.SliceStable(out, func(a, b int) bool {
		ra, rb := intrinsicRatio(out[a]), intrinsicRatio(out[b])
		if ra != rb {
			return ra < rb
		}
		return out[a].String() < out[b].String()
	})
	return out
}

func (g *generator) genRaw(p query.Pred) []Expr {
	switch n := p.(type) {
	case *query.Clause:
		return g.genClause(n)
	case *query.And:
		return g.genAnd(n)
	case *query.Or:
		return g.genOr(n)
	case query.True:
		return g.genTrue()
	case *query.Not:
		// NNF leaves ¬ only around True; nothing to inject.
		return nil
	}
	return nil
}

// genClause finds PPs implied by one simple clause: a direct or
// negation-derived PP, relaxed-comparison PPs (A.2), and the ≠→∨= rewrite.
func (g *generator) genClause(cl *query.Clause) []Expr {
	var out []Expr
	if pp, ok := g.corpus.Lookup(cl); ok {
		out = append(out, &Leaf{PP: pp})
	}
	// Relaxed comparisons against the trained corpus.
	relaxed := relaxComparison(cl, g.corpus.Clauses(), parseClauseKey)
	for _, rc := range relaxed {
		if rc.String() == cl.String() {
			continue // already covered by direct lookup
		}
		if pp, ok := g.corpus.Lookup(rc); ok {
			out = append(out, &Leaf{PP: pp})
		}
	}
	// ≠ over a finite domain becomes a disjunction of = clauses.
	if rewritten, ok := wrangleNotEqual(cl, g.domains); ok {
		out = append(out, g.genRaw(rewritten)...)
	}
	return out
}

// genAnd applies R1 (each conjunct alone) and R2 (conjunctions over subsets
// of conjuncts), plus a composite-clause PP if one was trained.
func (g *generator) genAnd(n *query.And) []Expr {
	var out []Expr
	composite, hasComposite := g.compositePP(n)
	if hasComposite {
		out = append(out, &Leaf{PP: composite})
	}
	kidCands := make([][]Expr, len(n.Kids))
	for i, k := range n.Kids {
		kidCands[i] = g.genRaw(k)
	}
	// R1: any single conjunct's candidates are valid for the whole And.
	for _, cands := range kidCands {
		out = append(out, cands...)
	}
	// The paper's greedy check: decompose past a composite PP only when a
	// simpler clause performs better.
	if hasComposite && !g.someKidBeats(kidCands, composite) {
		return out
	}
	// R2: conjunctions over every subset (≥2) of conjuncts that have
	// candidates, using each kid's best candidate; the full set also gets a
	// few cross-combinations.
	var covered []int
	for i, c := range kidCands {
		if len(c) > 0 {
			covered = append(covered, i)
		}
	}
	if len(covered) >= 2 {
		for _, subset := range subsets(covered) {
			if len(subset) < 2 {
				continue
			}
			kids := make([]Expr, len(subset))
			for j, i := range subset {
				kids[j] = bestCandidate(kidCands[i])
			}
			out = append(out, &Conj{Kids: kids})
		}
		// Cross-combinations on the full covered set: swap in each kid's
		// second-best candidate one at a time.
		for _, i := range covered {
			if len(kidCands[i]) < 2 {
				continue
			}
			kids := make([]Expr, 0, len(covered))
			for _, j := range covered {
				if j == i {
					kids = append(kids, kidCands[j][1])
				} else {
					kids = append(kids, bestCandidate(kidCands[j]))
				}
			}
			out = append(out, &Conj{Kids: kids})
		}
	}
	return out
}

// genOr applies R3: a disjunction is covered only if every disjunct is
// (blobs matching any uncovered disjunct would otherwise be dropped).
func (g *generator) genOr(n *query.Or) []Expr {
	var out []Expr
	composite, hasComposite := g.compositePP(n)
	if hasComposite {
		out = append(out, &Leaf{PP: composite})
	}
	kidCands := make([][]Expr, len(n.Kids))
	for i, k := range n.Kids {
		kidCands[i] = g.genRaw(k)
		if len(kidCands[i]) == 0 {
			return out // one uncovered disjunct sinks the decomposition
		}
	}
	if hasComposite && !g.someKidBeats(kidCands, composite) {
		return out
	}
	kids := make([]Expr, len(kidCands))
	for i, cands := range kidCands {
		kids[i] = bestCandidate(cands)
	}
	out = append(out, &Disj{Kids: kids})
	// Variants with each kid's second-best candidate.
	for i, cands := range kidCands {
		if len(cands) < 2 {
			continue
		}
		variant := make([]Expr, len(kids))
		copy(variant, kids)
		variant[i] = cands[1]
		out = append(out, &Disj{Kids: variant})
	}
	out = append(out, g.genComplementConj(n)...)
	return out
}

// genComplementConj rewrites a same-column disjunction of equality clauses
// over a finite domain into the equivalent conjunction of ≠ checks on the
// complement values: t=SUV ∨ t=van ⇔ t≠sedan ∧ t≠truck. The ≠ PPs resolve
// through negation reuse (§5.6), yielding the PP_{¬sedan} ∧ PP_{¬truck}
// style alternates of Table 10.
func (g *generator) genComplementConj(n *query.Or) []Expr {
	col := ""
	present := map[string]bool{}
	for _, k := range n.Kids {
		cl, ok := k.(*query.Clause)
		if !ok || cl.Op != query.OpEq {
			return nil
		}
		if col == "" {
			col = cl.Col
		} else if cl.Col != col {
			return nil
		}
		present[cl.Val.String()] = true
	}
	dom := g.domains[col]
	if len(dom) <= len(present) {
		return nil
	}
	var conj []Expr
	var partial []Expr // best-ratio single ≠ leaves, for prefixes
	for _, v := range dom {
		if present[v.String()] {
			continue
		}
		cl := &query.Clause{Col: col, Op: query.OpNe, Val: v}
		pp, ok := g.corpus.Lookup(cl)
		if !ok {
			return nil // every complement value must be covered
		}
		leaf := &Leaf{PP: pp}
		conj = append(conj, leaf)
		partial = append(partial, leaf)
	}
	if len(conj) == 0 {
		return nil
	}
	out := []Expr{}
	if len(conj) == 1 {
		return []Expr{conj[0]}
	}
	out = append(out, &Conj{Kids: conj})
	// Prefix conjunctions are still implied (dropping a conjunct keeps the
	// necessary-condition property); offer the single best ≠ leaf too.
	sort.SliceStable(partial, func(a, b int) bool {
		return intrinsicRatio(partial[a]) < intrinsicRatio(partial[b])
	})
	out = append(out, partial[0])
	return out
}

// genTrue applies the no-predicate wrangling: even a query without a
// predicate can inject a complete-domain disjunction (A.2).
func (g *generator) genTrue() []Expr {
	var out []Expr
	for _, p := range noPredicateExpansion(g.domains) {
		out = append(out, g.genRaw(p)...)
	}
	return out
}

// compositePP looks up a PP trained directly for a composite predicate
// (e.g. PP_{p∧¬r} in Table 3), keyed by the canonical clause string.
func (g *generator) compositePP(p query.Pred) (*core.PP, bool) {
	return g.corpus.Get(CanonicalKey(p))
}

// someKidBeats reports whether any kid candidate has a better intrinsic
// c/r(1] ratio than the composite PP (the paper's greedy R2/R3 gate).
func (g *generator) someKidBeats(kidCands [][]Expr, composite *core.PP) bool {
	compositeRatio := ppRatio(composite)
	for _, cands := range kidCands {
		for _, c := range cands {
			if intrinsicRatio(c) < compositeRatio {
				return true
			}
		}
	}
	return false
}

func (g *generator) hasDependentPair(e Expr) bool {
	if len(g.skip) == 0 {
		return false
	}
	leaves := e.Leaves(nil)
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			if g.skip[pairKey(leaves[i].Clause, leaves[j].Clause)] {
				return true
			}
		}
	}
	return false
}

// pairKey canonically orders two clause keys.
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "||" + b
}

// ppRatio is the intrinsic cost-to-reduction ratio c/r(1] used by the
// greedy pruning (§6.1); PPs with no reduction at a=1 rank last.
func ppRatio(pp *core.PP) float64 {
	r := pp.Reduction(1)
	if r <= 0 {
		return 1e18
	}
	return pp.Cost() / r
}

// intrinsicRatio extends ppRatio to expressions by combining leaves with
// the a=1 composition formulas (Eq. 9/10 at full accuracy).
func intrinsicRatio(e Expr) float64 {
	c, r := intrinsicCR(e)
	if r <= 0 {
		return 1e18
	}
	return c / r
}

func intrinsicCR(e Expr) (cost, reduction float64) {
	switch n := e.(type) {
	case *Leaf:
		return n.PP.Cost(), n.PP.Reduction(1)
	case *Conj:
		cost, reduction = intrinsicCR(n.Kids[0])
		for _, k := range n.Kids[1:] {
			c2, r2 := intrinsicCR(k)
			cost = cost + (1-reduction)*c2
			reduction = reduction + r2 - reduction*r2
		}
		return cost, reduction
	case *Disj:
		cost, reduction = intrinsicCR(n.Kids[0])
		for _, k := range n.Kids[1:] {
			c2, r2 := intrinsicCR(k)
			cost = cost + reduction*c2
			reduction = reduction * r2
		}
		return cost, reduction
	}
	return 0, 0
}

// bestCandidate returns the candidate with the smallest intrinsic ratio.
func bestCandidate(cands []Expr) Expr {
	best := cands[0]
	bestR := intrinsicRatio(best)
	for _, c := range cands[1:] {
		if r := intrinsicRatio(c); r < bestR {
			best, bestR = c, r
		}
	}
	return best
}

// subsets enumerates all non-empty subsets of items (items is small: the
// paper's predicates have ≤ 4 clauses).
func subsets(items []int) [][]int {
	var out [][]int
	n := len(items)
	for mask := 1; mask < 1<<n; mask++ {
		var s []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, items[i])
			}
		}
		out = append(out, s)
	}
	return out
}

// parseClauseKey parses a canonical simple-clause key back into a clause;
// it returns false for composite keys.
func parseClauseKey(key string) (*query.Clause, bool) {
	p, err := query.Parse(key)
	if err != nil {
		return nil, false
	}
	cl, ok := p.(*query.Clause)
	return cl, ok
}
