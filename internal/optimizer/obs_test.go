package optimizer

import (
	"testing"

	"probpred/internal/obs"
	"probpred/internal/query"
)

// TestOptimizeSearchStats: every Optimize call must profile its own plan
// search — candidates generated/costed, memo behaviour, wall time.
func TestOptimizeSearchStats(t *testing.T) {
	val := miniBlobs(2000, 61)
	c := miniCorpus(t, val)
	opt := New(c)
	dec, err := opt.Optimize(query.MustParse("t=SUV & c=red"), Options{
		Accuracy: 0.95, UDFCost: 100, Domains: miniDomains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := dec.Search
	if s.Costed != dec.NumCandidates {
		t.Fatalf("Costed = %d, NumCandidates = %d", s.Costed, dec.NumCandidates)
	}
	if s.Generated < s.Costed {
		t.Fatalf("Generated %d < Costed %d", s.Generated, s.Costed)
	}
	if s.MemoEntries == 0 {
		t.Fatal("DP search stored no memo entries")
	}
	if s.WallNS <= 0 {
		t.Fatalf("WallNS = %d", s.WallNS)
	}
	// The uncovered-predicate path must fill stats too (zero candidates).
	dec2, err := opt.Optimize(query.MustParse("z=1"), Options{Accuracy: 0.9, UDFCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Inject || dec2.Search.Costed != 0 || dec2.Search.WallNS <= 0 {
		t.Fatalf("uncovered-predicate stats wrong: %+v", dec2.Search)
	}
}

// TestOptimizeEmitsSpanAndMetrics: with a tracer attached, one optimize span
// and the search counters reach the sink.
func TestOptimizeEmitsSpanAndMetrics(t *testing.T) {
	val := miniBlobs(2000, 62)
	c := miniCorpus(t, val)
	opt := New(c)
	col := obs.NewCollector()
	pred := query.MustParse("t=SUV & c=red")
	dec, err := opt.Optimize(pred, Options{
		Accuracy: 0.95, UDFCost: 100, Domains: miniDomains(), Obs: obs.New(col),
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1 optimize span", len(spans))
	}
	sp := spans[0]
	if sp.Kind != obs.KindOptimize || sp.Name != pred.String() {
		t.Fatalf("span = %s/%q", sp.Kind, sp.Name)
	}
	if sp.CostVMS != dec.PlanCost {
		t.Fatalf("span cost %v, plan cost %v", sp.CostVMS, dec.PlanCost)
	}
	if sp.WallNS != dec.Search.WallNS {
		t.Fatalf("span wall %d, search wall %d", sp.WallNS, dec.Search.WallNS)
	}
	sum := col.Summary()
	if sum.Metrics["optimizer.searches"] != 1 {
		t.Fatalf("searches metric = %v", sum.Metrics["optimizer.searches"])
	}
	if got := sum.Metrics["optimizer.candidates_costed"]; got != float64(dec.Search.Costed) {
		t.Fatalf("candidates_costed = %v, want %d", got, dec.Search.Costed)
	}
	if dec.Inject && sum.Metrics["optimizer.injected"] != 1 {
		t.Fatalf("injected metric = %v for an injecting decision", sum.Metrics["optimizer.injected"])
	}
}
