package optimizer

import (
	"math"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/mathx"
	"probpred/internal/query"
)

// reoptDecision optimizes t=SUV & c=red over the mini corpus — a
// two-leaf conjunction whose short-circuit order the re-optimizer can flip.
func reoptDecision(t *testing.T) (*Optimizer, *Decision) {
	t.Helper()
	val := miniBlobs(600, 11)
	o := New(miniCorpus(t, val))
	dec, err := o.Optimize(query.MustParse("t=SUV & c=red"), Options{Accuracy: 1, UDFCost: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.NumPPs != 2 {
		t.Fatalf("want a two-PP injection, got inject=%v pps=%d", dec.Inject, dec.NumPPs)
	}
	return o, dec
}

// driftBlobs is a stream whose statistics invert the validation set's:
// nearly every blob is red (the rare color) and almost none is an SUV.
func driftBlobs(n int) []blob.Blob {
	out := make([]blob.Blob, n)
	for i := range out {
		typ, col := 0.0, 3.0 // sedan, red
		if i%10 == 0 {
			typ = 1 // the occasional SUV
		}
		out[i] = blob.FromDense(i, mathx.Vec{typ, col, 40, 0})
	}
	return out
}

// The observed filter counts per-leaf rows without changing outcomes, and
// short-circuiting shows in the counts: the second leaf only sees rows the
// first kept.
func TestRuntimeObserverCountsShortCircuit(t *testing.T) {
	_, dec := reoptDecision(t)
	obsF, ro := dec.Filter.WithRuntimeObserver()
	blobs := miniBlobs(500, 12)
	for _, b := range blobs {
		wantPass, wantCost := dec.Filter.Test(b)
		gotPass, gotCost := obsF.Test(b)
		if wantPass != gotPass || wantCost != gotCost {
			t.Fatalf("blob %d: observed filter diverged (%v %v vs %v %v)",
				b.ID, gotPass, gotCost, wantPass, wantCost)
		}
	}
	stats := ro.Stats()
	if len(stats) != 2 {
		t.Fatalf("leaf stats = %d, want 2", len(stats))
	}
	first, second := stats[0], stats[1]
	if first.Tested != uint64(len(blobs)) {
		t.Fatalf("first leaf tested %d, want %d", first.Tested, len(blobs))
	}
	if second.Tested != first.Passed {
		t.Fatalf("second leaf tested %d, want first leaf's passed %d", second.Tested, first.Passed)
	}
	if first.PlannedReduction <= 0 || first.PlannedReduction >= 1 {
		t.Fatalf("planned reduction not populated: %v", first.PlannedReduction)
	}
}

// The batch path feeds the same probes as the scalar path.
func TestRuntimeObserverBatchMatchesScalar(t *testing.T) {
	_, dec := reoptDecision(t)
	blobs := miniBlobs(300, 13)

	scalarF, scalarRO := dec.Filter.WithRuntimeObserver()
	for _, b := range blobs {
		scalarF.Test(b)
	}
	batchF, batchRO := dec.Filter.WithRuntimeObserver()
	pass := make([]bool, len(blobs))
	cost := make([]float64, len(blobs))
	batchF.TestBatch(blobs, pass, cost)

	ss, bs := scalarRO.Stats(), batchRO.Stats()
	for i := range ss {
		if ss[i] != bs[i] {
			t.Fatalf("leaf %d: scalar stats %+v != batch stats %+v", i, ss[i], bs[i])
		}
	}
}

// Under inverted stream statistics, Reoptimize flips the conjunction's
// short-circuit order, lowers the modeled cost, and keeps outcomes
// byte-identical on every blob.
func TestReoptimizeFlipsOrderUnderDrift(t *testing.T) {
	o, dec := reoptDecision(t)
	obsF, ro := dec.Filter.WithRuntimeObserver()
	stream := driftBlobs(400)
	for _, b := range stream {
		obsF.Test(b)
	}
	if d := ro.MaxDivergence(50); d < 0.3 {
		t.Fatalf("drift stream divergence = %v, want substantial", d)
	}
	re, err := o.Reoptimize(obsF, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Changed {
		t.Fatalf("re-optimization did not reorder; expr %q, cost %v -> %v", re.Expr, re.OldCost, re.NewCost)
	}
	if re.NewCost >= re.OldCost {
		t.Fatalf("reorder did not lower modeled cost: %v -> %v", re.OldCost, re.NewCost)
	}
	if re.Expr == obsF.Name() || re.Filter.Name() != re.Expr {
		t.Fatalf("new expr rendering wrong: %q (old %q)", re.Expr, obsF.Name())
	}
	// Outcome equivalence on both the drifted stream and the original
	// distribution — only the per-blob cost attribution may differ.
	check := append(miniBlobs(300, 14), stream...)
	for _, b := range check {
		oldPass, _ := obsF.Test(b)
		newPass, _ := re.Filter.Test(b)
		if oldPass != newPass {
			t.Fatalf("blob %d: outcome changed across reorder", b.ID)
		}
	}
	// The reordered filter shares probes: further observation accumulates.
	before := ro.Stats()[0].Tested
	re.Filter.Test(check[0])
	var after uint64
	for _, st := range ro.Stats() {
		after += st.Tested
	}
	if after <= before {
		t.Fatal("reordered filter does not feed the original probes")
	}
}

// A stream matching the plan's statistics changes nothing: same filter
// pointer back, Changed=false.
func TestReoptimizeStableWithoutDrift(t *testing.T) {
	o, dec := reoptDecision(t)
	obsF, _ := dec.Filter.WithRuntimeObserver()
	for _, b := range miniBlobs(600, 11) {
		obsF.Test(b)
	}
	re, err := o.Reoptimize(obsF, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Changed || re.Filter != obsF {
		t.Fatalf("stable stats reordered the plan: changed=%v", re.Changed)
	}
}

// MaxDivergence ignores leaves with fewer than minRows observations.
func TestMaxDivergenceMinRows(t *testing.T) {
	_, dec := reoptDecision(t)
	obsF, ro := dec.Filter.WithRuntimeObserver()
	for _, b := range driftBlobs(10) {
		obsF.Test(b)
	}
	if d := ro.MaxDivergence(1000); d != 0 {
		t.Fatalf("divergence with unmet minRows = %v, want 0", d)
	}
	if d := ro.MaxDivergence(5); d == 0 {
		t.Fatal("divergence with met minRows should be nonzero under drift")
	}
}

// mapScoreCache is the simplest possible ScoreCache for composition tests.
type mapScoreCache map[scoreKey]float64

type scoreKey struct {
	pp *core.PP
	id int
}

func (m mapScoreCache) Get(pp *core.PP, blobID int) (float64, bool) {
	v, ok := m[scoreKey{pp, blobID}]
	return v, ok
}
func (m mapScoreCache) Put(pp *core.PP, blobID int, score float64) {
	m[scoreKey{pp, blobID}] = score
}

// WithScoreCache composed after WithRuntimeObserver keeps the probes wired.
func TestObserverComposesWithScoreCache(t *testing.T) {
	_, dec := reoptDecision(t)
	obsF, ro := dec.Filter.WithRuntimeObserver()
	cached := obsF.WithScoreCache(mapScoreCache{})
	for _, b := range miniBlobs(100, 15) {
		cached.Test(b)
	}
	if ro.Stats()[0].Tested != 100 {
		t.Fatalf("probe lost through WithScoreCache: tested = %d", ro.Stats()[0].Tested)
	}
}

// A leaf nobody reached reports its planned reduction (zero divergence), not
// NaN.
func TestObservedReductionNoRows(t *testing.T) {
	st := LeafStat{PlannedReduction: 0.4}
	if r := st.ObservedReduction(); r != 0.4 || math.IsNaN(r) {
		t.Fatalf("unobserved leaf reduction = %v, want planned 0.4", r)
	}
}
