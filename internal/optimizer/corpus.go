// Package optimizer implements the paper's query-optimizer extension (§6 +
// Appendix A): given a complex or previously-unseen query predicate, a corpus
// of PPs trained for simple clauses, and a query-wide accuracy target, it
// generates implied PP expressions (rewrite rules R1-R4 and the wrangler of
// A.2), allocates the accuracy budget across PPs, costs conjunctions and
// disjunctions with the formulas of Eq. 9/10, and emits the cheapest plan.
package optimizer

import (
	"sort"
	"sync"
	"sync/atomic"

	"probpred/internal/core"
	"probpred/internal/query"
)

// Corpus is the set of trained PPs available to the optimizer, indexed by
// the canonical string of the simple clause each PP mimics.
type Corpus struct {
	pps map[string]*core.PP
	// negCache caches PPs derived by negation reuse (§5.6) so repeated
	// optimizations share them.
	negCache map[string]*core.PP
	// version counts mutations (Add/Remove). Plan caches record the version
	// a plan was searched under and treat entries from older versions as
	// stale: a watchdog trip (Remove) or an online retraining (Add) must not
	// keep serving plans compiled against the previous corpus. Atomic so
	// concurrent sessions can check staleness without taking the optimizer's
	// serialization lock.
	version atomic.Uint64

	// verMu guards clauseVer against concurrent readers: plan caches call
	// UnchangedSince from sessions that do not hold the optimizer's
	// serialization lock, while Add/Remove (which do hold it) write.
	verMu sync.RWMutex
	// clauseVer maps each dependency key ever mutated — a clause key, plus
	// the "col:<column>" wildcard covering every clause on that column — to
	// the corpus version of its latest mutation. It is what makes plan-cache
	// invalidation partial: a plan records the keys its search consulted, and
	// a later corpus mutation only strands plans whose keys actually moved.
	clauseVer map[string]uint64

	// recording, when non-nil, collects every dependency key consulted by
	// Lookup/Get — hits and misses alike, since a miss that later becomes a
	// hit changes the search outcome too. Only toggled and read under the
	// optimizer's serialization lock (searches are not concurrent).
	recording map[string]struct{}
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{pps: map[string]*core.PP{}, negCache: map[string]*core.PP{}, clauseVer: map[string]uint64{}}
}

// Version returns the corpus mutation counter. It increases on every Add and
// successful Remove; equal versions guarantee an unchanged PP set.
func (c *Corpus) Version() uint64 { return c.version.Load() }

// ColumnDep returns the dependency key covering every clause on a column.
// Searches consult it implicitly whenever they touch a clause on the column
// (relaxed comparisons and domain rewrites generate same-column candidates
// from the corpus's key set, not from individual lookups).
func ColumnDep(col string) string { return "col:" + col }

// bump records one mutation of a clause key: it stamps the key — and its
// column wildcard, when the key parses as a simple clause — with the
// post-mutation version, then advances the version counter. The stamp lands
// strictly before the new version becomes visible, so a plan cache that
// observes the bumped version is guaranteed to also observe the stamp when
// it revalidates (the reverse order would let a dependent plan slip through
// revalidation in the window between bump and stamp). Mutations are
// serialized by the optimizer lock, so Load()+1 is the post-mutation value.
func (c *Corpus) bump(clause string) {
	v := c.version.Load() + 1
	c.verMu.Lock()
	c.clauseVer[clause] = v
	if p, err := query.Parse(clause); err == nil {
		if cl, ok := p.(*query.Clause); ok {
			c.clauseVer[ColumnDep(cl.Col)] = v
		}
	}
	c.verMu.Unlock()
	c.version.Add(1)
}

// UnchangedSince reports whether none of the dependency keys has been
// mutated after corpus version since. Plan caches use it to revalidate
// entries from older corpus versions: a mutation that left every key a plan
// consulted untouched cannot have changed the search outcome, so the plan is
// still exactly what a fresh search would produce. Safe for concurrent use.
func (c *Corpus) UnchangedSince(deps []string, since uint64) bool {
	c.verMu.RLock()
	defer c.verMu.RUnlock()
	for _, d := range deps {
		if c.clauseVer[d] > since {
			return false
		}
	}
	return true
}

// beginRecord starts collecting the dependency keys a plan search consults.
// Caller must hold the optimizer's serialization lock.
func (c *Corpus) beginRecord() {
	c.recording = map[string]struct{}{}
}

// endRecord stops collecting and returns the consulted keys, sorted.
func (c *Corpus) endRecord() []string {
	deps := make([]string, 0, len(c.recording))
	for k := range c.recording {
		deps = append(deps, k)
	}
	c.recording = nil
	sort.Strings(deps)
	return deps
}

// record notes one consulted dependency key.
func (c *Corpus) record(key string) {
	if c.recording != nil {
		c.recording[key] = struct{}{}
	}
}

// Add registers a trained PP under its clause key, replacing any previous
// PP for the same clause. A replacement also invalidates the negation-
// derivation cache: derived PPs wrap the classifier they were derived from,
// which has just changed.
func (c *Corpus) Add(pp *core.PP) {
	if _, replacing := c.pps[pp.Clause]; replacing {
		c.negCache = map[string]*core.PP{}
	}
	c.pps[pp.Clause] = pp
	c.bump(pp.Clause)
}

// Remove deletes the PP trained for the clause key, reporting whether one
// was present. Negation-derived PPs share the removed classifier, so the
// derivation cache is dropped wholesale (it repopulates lazily from the
// remaining PPs). Used by the online watchdog to stop injecting a PP whose
// observed accuracy has degraded.
func (c *Corpus) Remove(clause string) bool {
	if _, ok := c.pps[clause]; !ok {
		return false
	}
	delete(c.pps, clause)
	c.negCache = map[string]*core.PP{}
	c.bump(clause)
	return true
}

// Size returns the number of directly-trained PPs.
func (c *Corpus) Size() int { return len(c.pps) }

// Clauses returns the sorted clause keys of the directly-trained PPs.
func (c *Corpus) Clauses() []string {
	out := make([]string, 0, len(c.pps))
	for k := range c.pps {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Get returns the PP trained directly for the clause key, if any.
func (c *Corpus) Get(clause string) (*core.PP, bool) {
	c.record(clause)
	pp, ok := c.pps[clause]
	return pp, ok
}

// Lookup resolves a clause to a PP: first by direct match, then by negation
// reuse — a PP trained for p yields the PP for ¬p by flipping the classifier
// sign (§5.6). Derived PPs are cached.
func (c *Corpus) Lookup(cl *query.Clause) (*core.PP, bool) {
	key := cl.String()
	c.record(key)
	c.record(ColumnDep(cl.Col))
	if pp, ok := c.pps[key]; ok {
		return pp, true
	}
	if pp, ok := c.negCache[key]; ok {
		return pp, true
	}
	negKey := cl.Negate().String()
	c.record(negKey)
	base, ok := c.pps[negKey]
	if !ok {
		return nil, false
	}
	derived, err := base.Negate(key)
	if err != nil {
		return nil, false
	}
	c.negCache[key] = derived
	return derived, true
}
