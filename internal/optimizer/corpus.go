// Package optimizer implements the paper's query-optimizer extension (§6 +
// Appendix A): given a complex or previously-unseen query predicate, a corpus
// of PPs trained for simple clauses, and a query-wide accuracy target, it
// generates implied PP expressions (rewrite rules R1-R4 and the wrangler of
// A.2), allocates the accuracy budget across PPs, costs conjunctions and
// disjunctions with the formulas of Eq. 9/10, and emits the cheapest plan.
package optimizer

import (
	"sort"
	"sync/atomic"

	"probpred/internal/core"
	"probpred/internal/query"
)

// Corpus is the set of trained PPs available to the optimizer, indexed by
// the canonical string of the simple clause each PP mimics.
type Corpus struct {
	pps map[string]*core.PP
	// negCache caches PPs derived by negation reuse (§5.6) so repeated
	// optimizations share them.
	negCache map[string]*core.PP
	// version counts mutations (Add/Remove). Plan caches record the version
	// a plan was searched under and treat entries from older versions as
	// stale: a watchdog trip (Remove) or an online retraining (Add) must not
	// keep serving plans compiled against the previous corpus. Atomic so
	// concurrent sessions can check staleness without taking the optimizer's
	// serialization lock.
	version atomic.Uint64
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{pps: map[string]*core.PP{}, negCache: map[string]*core.PP{}}
}

// Version returns the corpus mutation counter. It increases on every Add and
// successful Remove; equal versions guarantee an unchanged PP set.
func (c *Corpus) Version() uint64 { return c.version.Load() }

// Add registers a trained PP under its clause key, replacing any previous
// PP for the same clause. A replacement also invalidates the negation-
// derivation cache: derived PPs wrap the classifier they were derived from,
// which has just changed.
func (c *Corpus) Add(pp *core.PP) {
	if _, replacing := c.pps[pp.Clause]; replacing {
		c.negCache = map[string]*core.PP{}
	}
	c.pps[pp.Clause] = pp
	c.version.Add(1)
}

// Remove deletes the PP trained for the clause key, reporting whether one
// was present. Negation-derived PPs share the removed classifier, so the
// derivation cache is dropped wholesale (it repopulates lazily from the
// remaining PPs). Used by the online watchdog to stop injecting a PP whose
// observed accuracy has degraded.
func (c *Corpus) Remove(clause string) bool {
	if _, ok := c.pps[clause]; !ok {
		return false
	}
	delete(c.pps, clause)
	c.negCache = map[string]*core.PP{}
	c.version.Add(1)
	return true
}

// Size returns the number of directly-trained PPs.
func (c *Corpus) Size() int { return len(c.pps) }

// Clauses returns the sorted clause keys of the directly-trained PPs.
func (c *Corpus) Clauses() []string {
	out := make([]string, 0, len(c.pps))
	for k := range c.pps {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Get returns the PP trained directly for the clause key, if any.
func (c *Corpus) Get(clause string) (*core.PP, bool) {
	pp, ok := c.pps[clause]
	return pp, ok
}

// Lookup resolves a clause to a PP: first by direct match, then by negation
// reuse — a PP trained for p yields the PP for ¬p by flipping the classifier
// sign (§5.6). Derived PPs are cached.
func (c *Corpus) Lookup(cl *query.Clause) (*core.PP, bool) {
	key := cl.String()
	if pp, ok := c.pps[key]; ok {
		return pp, true
	}
	if pp, ok := c.negCache[key]; ok {
		return pp, true
	}
	negKey := cl.Negate().String()
	base, ok := c.pps[negKey]
	if !ok {
		return nil, false
	}
	derived, err := base.Negate(key)
	if err != nil {
		return nil, false
	}
	c.negCache[key] = derived
	return derived, true
}
