package optimizer

import (
	"testing"

	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/query"
)

// optimizeWithMetrics runs one standard mini search with a registry attached.
func optimizeWithMetrics(t *testing.T, reg *metrics.Registry, tr *obs.Tracer) (*Optimizer, *Decision) {
	t.Helper()
	val := miniBlobs(2000, 63)
	opt := New(miniCorpus(t, val))
	opt.SetMetrics(reg)
	opt.SetObs(tr)
	dec, err := opt.Optimize(query.MustParse("t=SUV & c=red"), Options{
		Accuracy: 0.95, UDFCost: 100, Domains: miniDomains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("mini scenario should inject a PP filter")
	}
	return opt, dec
}

func TestSearchMetricsFamilies(t *testing.T) {
	reg := metrics.New()
	_, dec := optimizeWithMetrics(t, reg, nil)
	if got := reg.Counter("optimizer_searches_total", "").Value(); got != 1 {
		t.Fatalf("searches = %v, want 1", got)
	}
	if got := reg.Counter("optimizer_injections_total", "").Value(); got != 1 {
		t.Fatalf("injections = %v, want 1", got)
	}
	h := reg.Histogram("optimizer_candidates_costed", "")
	if h.Count() != 1 {
		t.Fatalf("costed observations = %d, want 1", h.Count())
	}
	if h.Sum() != float64(dec.Search.Costed) {
		t.Fatalf("costed sum = %v, want %d", h.Sum(), dec.Search.Costed)
	}
	if reg.Histogram("optimizer_search_wall_ns", "").Count() != 1 {
		t.Fatal("search wall histogram did not record")
	}
}

func TestObserveRuntimeRecordsDrift(t *testing.T) {
	reg := metrics.New()
	col := obs.NewCollector()
	opt, dec := optimizeWithMetrics(t, reg, obs.New(col))

	// In-tolerance observation: gauges update, no misestimation.
	opt.ObserveRuntime(dec, dec.Reduction)
	if got := reg.Counter("optimizer_observations_total", "").Value(); got != 1 {
		t.Fatalf("observations = %v, want 1", got)
	}
	if got := reg.Gauge("optimizer_estimated_reduction", "").Value(); got != dec.Reduction {
		t.Fatalf("estimated gauge = %v, want %v", got, dec.Reduction)
	}
	if got := reg.Counter("optimizer_misestimations_total", "").Value(); got != 0 {
		t.Fatalf("in-tolerance observation misflagged: %v", got)
	}

	// Way-off observation: misestimation counter and obs event fire.
	opt.ObserveRuntime(dec, 0)
	if got := reg.Counter("optimizer_misestimations_total", "").Value(); got != 1 {
		t.Fatalf("misestimations = %v, want 1", got)
	}
	if got := reg.Gauge("optimizer_observed_reduction", "").Value(); got != 0 {
		t.Fatalf("observed gauge = %v, want 0", got)
	}
	if reg.Histogram("optimizer_reduction_error", "").Count() != 2 {
		t.Fatal("reduction error histogram should record every observation")
	}
	var sawEvent bool
	for _, ev := range col.Events() {
		if ev.Name == "optimizer.misestimation" {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatal("no optimizer.misestimation event reached the sink")
	}

	// Non-injecting and nil decisions must be ignored entirely.
	opt.ObserveRuntime(&Decision{}, 0.5)
	opt.ObserveRuntime(nil, 0.5)
	if got := reg.Counter("optimizer_observations_total", "").Value(); got != 2 {
		t.Fatalf("observations = %v, want 2", got)
	}
}

func TestCompiledInstrumentScalarAndBatch(t *testing.T) {
	reg := metrics.New()
	_, dec := optimizeWithMetrics(t, reg, nil)
	dec.Filter.Instrument(reg)

	blobs := miniBlobs(500, 64)
	// Scalar path.
	for _, b := range blobs[:100] {
		dec.Filter.Test(b)
	}
	// Batch path.
	pass := make([]bool, 400)
	cost := make([]float64, 400)
	dec.Filter.TestBatch(blobs[100:], pass, cost)

	var tested, passed float64
	for _, clause := range dec.LeafClauses() {
		lbl := metrics.L("clause", clause)
		tested += reg.Counter("pp_clause_tested_total", "", lbl).Value()
		passed += reg.Counter("pp_clause_passed_total", "", lbl).Value()
		if reg.Histogram("pp_clause_score", "", lbl).Count() == 0 {
			t.Fatalf("clause %q recorded no scores", clause)
		}
	}
	// Conjunctions short-circuit, so later leaves only score survivors:
	// at least one leaf saw all 500 blobs, and no leaf saw more.
	if tested < 500 || tested > float64(500*dec.NumPPs) {
		t.Fatalf("tested = %v, want within [500, %d]", tested, 500*dec.NumPPs)
	}
	if passed <= 0 || passed >= tested {
		t.Fatalf("passed = %v outside (0, %v)", passed, tested)
	}

	// An uninstrumented filter must keep working and record nothing new.
	before := tested
	var nilFilter *Compiled
	nilFilter.Instrument(reg) // nil receiver is a no-op
	dec.Filter.Instrument(nil)
	dec.Filter.Test(blobs[0])
	var after float64
	for _, clause := range dec.LeafClauses() {
		after += reg.Counter("pp_clause_tested_total", "", metrics.L("clause", clause)).Value()
	}
	if after != before {
		t.Fatalf("detached filter still recorded: %v -> %v", before, after)
	}
}
