package optimizer

import (
	"probpred/internal/metrics"
	"probpred/internal/obs"
)

// Numeric telemetry for the optimizer. The registry lives on the Optimizer
// (SetMetrics) rather than on Options because the runtime feedback path —
// ObserveRuntime — takes no options: drift between estimated and observed
// reduction must be reportable from the same place dependence flagging
// happens. A nil registry disables everything at one pointer check.

// SetMetrics attaches a metrics registry to the optimizer. Optimize records
// search counters and ObserveRuntime records estimated-vs-observed reduction
// gauges plus misestimation counts. Nil detaches.
func (o *Optimizer) SetMetrics(reg *metrics.Registry) { o.metrics = reg }

// SetObs attaches a tracer used by the runtime feedback path (ObserveRuntime
// misestimation events). Optimize keeps taking its tracer via Options.Obs.
func (o *Optimizer) SetObs(tr *obs.Tracer) { o.tr = tr }

// emitSearchMetrics records one Optimize call's outcome.
func (o *Optimizer) emitSearchMetrics(dec *Decision) {
	reg := o.metrics
	if reg == nil {
		return
	}
	reg.Counter("optimizer_searches_total", "Plan searches performed.").Inc()
	if dec.Inject {
		reg.Counter("optimizer_injections_total", "Plan searches that chose to inject a PP filter.").Inc()
	}
	reg.Histogram("optimizer_candidates_costed", "Candidate expressions costed per search.").Observe(float64(dec.Search.Costed))
	reg.Histogram("optimizer_search_wall_ns", "Real wall-clock duration per plan search, nanoseconds.").Observe(float64(dec.Search.WallNS))
}

// Instrument resolves per-clause score instrumentation for a compiled filter:
// each PP leaf gets a score-distribution histogram and tested/passed counters
// labeled by clause. Instrumentation is opt-in per filter — an uninstrumented
// Compiled pays nothing on the batch hot path beyond one nil check per leaf
// batch — and instruments are resolved here, once, never during scoring.
// A nil registry detaches: the nil-registry lookups yield nil handles.
func (c *Compiled) Instrument(reg *metrics.Registry) {
	if c == nil {
		return
	}
	instrumentNode(c.node, reg)
}

func instrumentNode(n compiledNode, reg *metrics.Registry) {
	switch v := n.(type) {
	case *compiledLeaf:
		lbl := metrics.L("clause", v.pp.Clause)
		v.scoreHist = reg.Histogram("pp_clause_score", "PP score distribution per clause.", lbl)
		v.tested = reg.Counter("pp_clause_tested_total", "Blobs scored per PP clause.", lbl)
		v.passed = reg.Counter("pp_clause_passed_total", "Blobs whose score cleared the clause threshold.", lbl)
	case *compiledConj:
		for _, k := range v.kids {
			instrumentNode(k, reg)
		}
	case *compiledDisj:
		for _, k := range v.kids {
			instrumentNode(k, reg)
		}
	}
}
