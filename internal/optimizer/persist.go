package optimizer

import (
	"encoding/gob"
	"fmt"
	"io"

	"probpred/internal/core"
)

// Save writes the corpus's directly-trained PPs to w (negation-derived PPs
// are re-derived on demand after a reload and are not persisted).
func (c *Corpus) Save(w io.Writer) error {
	pps := make([]*core.PP, 0, len(c.pps))
	for _, clause := range c.Clauses() {
		pps = append(pps, c.pps[clause])
	}
	if err := gob.NewEncoder(w).Encode(pps); err != nil {
		return fmt.Errorf("optimizer: saving corpus: %w", err)
	}
	return nil
}

// LoadCorpus reads a corpus previously written with Save.
func LoadCorpus(r io.Reader) (*Corpus, error) {
	var pps []*core.PP
	if err := gob.NewDecoder(r).Decode(&pps); err != nil {
		return nil, fmt.Errorf("optimizer: loading corpus: %w", err)
	}
	c := NewCorpus()
	for _, pp := range pps {
		c.Add(pp)
	}
	return c, nil
}
