package optimizer

import (
	"testing"

	"probpred/internal/query"
)

func TestInferClauses(t *testing.T) {
	preds := []query.Pred{
		query.MustParse("t=SUV & c=red"),
		query.MustParse("t=SUV | t=van"),
		query.MustParse("!(t=SUV)"),
	}
	freq := InferClauses(preds, miniDomains())
	if freq["t=SUV"] != 3 { // appears in all three (the ¬ becomes t!=SUV whose twin is t=SUV)
		t.Fatalf("freq[t=SUV] = %d, want 3 (%v)", freq["t=SUV"], freq)
	}
	if freq["c=red"] != 1 || freq["t=van"] < 1 {
		t.Fatalf("freq = %v", freq)
	}
	// The ≠ form itself is counted once.
	if freq["t!=SUV"] != 1 {
		t.Fatalf("freq[t!=SUV] = %d", freq["t!=SUV"])
	}
	// The ≠ wrangle adds equality clauses for the complement values.
	if freq["t=truck"] < 1 || freq["t=sedan"] < 1 {
		t.Fatalf("wrangled complements missing: %v", freq)
	}
}

func TestInferClausesDedupsWithinQuery(t *testing.T) {
	preds := []query.Pred{query.MustParse("t=SUV & (t=SUV | c=red)")}
	freq := InferClauses(preds, nil)
	if freq["t=SUV"] != 1 {
		t.Fatalf("clause double-counted within one query: %v", freq)
	}
}

func TestSelectTrainingSetBudget(t *testing.T) {
	candidates := []TrainingCandidate{
		{Clause: "a", TrainCost: 10, Queries: map[int]float64{0: 0.5, 1: 0.5}},
		{Clause: "b", TrainCost: 10, Queries: map[int]float64{2: 0.5}},
		{Clause: "c", TrainCost: 10, Queries: map[int]float64{3: 0.5}},
	}
	plan, err := SelectTrainingSet(candidates, 20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCost > 20 {
		t.Fatalf("budget exceeded: %v", plan.TotalCost)
	}
	// "a" benefits two queries for the same cost: it must be picked first.
	if plan.Clauses[0] != "a" && plan.Clauses[1] != "a" {
		t.Fatalf("high-benefit candidate not chosen: %v", plan.Clauses)
	}
	if len(plan.Clauses) != 2 {
		t.Fatalf("chose %d candidates within budget 20", len(plan.Clauses))
	}
	if plan.Covered != 3 {
		t.Fatalf("covered = %d, want 3 (a covers 2, plus one of b/c)", plan.Covered)
	}
}

func TestSelectTrainingSetMarginalBenefit(t *testing.T) {
	// "redundant" helps the same query as "first" but less; after "first"
	// is chosen its marginal gain is zero, so "other" wins the second slot.
	candidates := []TrainingCandidate{
		{Clause: "first", TrainCost: 1, Queries: map[int]float64{0: 0.9}},
		{Clause: "redundant", TrainCost: 1, Queries: map[int]float64{0: 0.5}},
		{Clause: "other", TrainCost: 1, Queries: map[int]float64{1: 0.2}},
	}
	plan, err := SelectTrainingSet(candidates, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"first": true, "other": true}
	for _, c := range plan.Clauses {
		if !want[c] {
			t.Fatalf("chose %v; redundant candidate should be skipped", plan.Clauses)
		}
	}
	if plan.Benefit != 0.9+0.2 {
		t.Fatalf("benefit = %v", plan.Benefit)
	}
}

func TestSelectTrainingSetCheapCoverageBeatsExpensive(t *testing.T) {
	// The set-cover structure from A.1's reduction: many cheap PPs that
	// each cover one query versus one expensive PP covering them all but
	// blowing the budget.
	candidates := []TrainingCandidate{
		{Clause: "expensive", TrainCost: 100, Queries: map[int]float64{0: 0.9, 1: 0.9, 2: 0.9}},
		{Clause: "c0", TrainCost: 5, Queries: map[int]float64{0: 0.8}},
		{Clause: "c1", TrainCost: 5, Queries: map[int]float64{1: 0.8}},
		{Clause: "c2", TrainCost: 5, Queries: map[int]float64{2: 0.8}},
	}
	plan, err := SelectTrainingSet(candidates, 20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Covered != 3 || plan.TotalCost != 15 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestSelectTrainingSetErrors(t *testing.T) {
	if _, err := SelectTrainingSet(nil, 0); err == nil {
		t.Fatal("expected error for zero budget")
	}
	bad := []TrainingCandidate{{Clause: "x", TrainCost: 0}}
	if _, err := SelectTrainingSet(bad, 10); err == nil {
		t.Fatal("expected error for zero training cost")
	}
}

func TestSelectTrainingSetEmptyCandidates(t *testing.T) {
	plan, err := SelectTrainingSet(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Clauses) != 0 || plan.Benefit != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}
