package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/query"
)

// Options configures one optimization call.
type Options struct {
	// Accuracy is the query-wide accuracy target a ∈ (0, 1]. Zero selects 1
	// (no false negatives).
	Accuracy float64
	// UDFCost is u, the per-blob virtual cost of the original query plan
	// downstream of the PP (everything the PP can short-circuit, §3).
	UDFCost float64
	// MaxPPs is the paper's constant k bounding PPs per expression. Zero
	// selects 4.
	MaxPPs int
	// Domains maps columns to their finite value domains, enabling the
	// wrangler rewrites of A.2. Optional.
	Domains map[string][]query.Value
	// DisableBudgetSearch pins conjunctions to an even accuracy split
	// instead of searching allocations — an ablation knob quantifying the
	// value of §6.2's dynamic program.
	DisableBudgetSearch bool
	// DisableOrderSearch executes sub-expressions in written order instead
	// of cheapest-effective-first — an ablation knob for §6.2's ordering.
	DisableOrderSearch bool
	// Obs receives one KindOptimize span per Optimize call plus
	// plan-search counters (expressions costed, memo hits, chosen plan
	// cost/reduction). Nil disables tracing.
	Obs *obs.Tracer
	// Trace is the session trace context the search belongs to: the
	// KindOptimize span carries its TraceID and parents under its SpanID,
	// tying plan searches to the served session that triggered them.
	Trace obs.TraceContext
}

func (o *Options) fill() {
	if o.Accuracy == 0 {
		o.Accuracy = 1
	}
	if o.MaxPPs == 0 {
		o.MaxPPs = 4
	}
}

// Alternative describes one costed candidate expression (Table 10's
// alternate-plan rows).
type Alternative struct {
	// Expr renders the expression.
	Expr string
	// Cost is the expected per-blob PP execution cost c(a].
	Cost float64
	// Reduction is the estimated data reduction r(a].
	Reduction float64
	// PlanCost is c + (1−r)·u.
	PlanCost float64
	// LeafAccuracies lists the per-PP accuracy allocations.
	LeafAccuracies string
}

// Decision is the optimizer's output for one query.
type Decision struct {
	// Inject reports whether using PPs beats running the query as-is. When
	// false, Filter is nil and the plan should run unmodified (r ≤ c/u
	// makes early filtering a loss, §3).
	Inject bool
	// Filter is the executable PP filter (an engine.BlobFilter).
	Filter *Compiled
	// Expr is the chosen expression's rendering.
	Expr string
	// LeafAccuracies lists the chosen per-PP accuracy allocations.
	LeafAccuracies string
	// Cost, Reduction and PlanCost describe the chosen plan.
	Cost, Reduction, PlanCost float64
	// BaselineCost is the per-blob cost without PPs (= u).
	BaselineCost float64
	// NumCandidates is the number of feasible expressions explored.
	NumCandidates int
	// Alternatives lists every candidate, best first.
	Alternatives []Alternative
	// NumPPs is the number of PP leaves in the chosen expression.
	NumPPs int
	// Search profiles the plan search that produced this decision.
	Search SearchStats
	// leaves caches the chosen expression's clause keys for the A.5
	// dependence feedback loop.
	leaves []string
	// consulted caches the dependency keys the plan search asked the corpus
	// about (clause keys, negation bases and column wildcards — hits and
	// misses alike). Plan caches use it for partial invalidation.
	consulted []string
}

// SearchStats counts the work one Optimize call performed — the optimizer's
// own profile, emitted to Options.Obs and embedded in the Decision.
type SearchStats struct {
	// Generated is how many candidate expressions the rewrite rules
	// produced before deduplication and the k-leaf bound.
	Generated int
	// Deduped is how many generated candidates were suppressed as exact
	// duplicates of an earlier expression.
	Deduped int
	// Costed is how many surviving candidates went through the §6.2
	// costing dynamic program (= Decision.NumCandidates).
	Costed int
	// MemoHits / MemoEntries profile the costing DP's memo table: entries
	// are distinct (sub-expression, accuracy) plans computed, hits are
	// lookups served without recomputation.
	MemoHits, MemoEntries int
	// WallNS is the real time the search took.
	WallNS int64
}

// LeafClauses returns the clause keys of the PPs in the chosen expression
// (empty when nothing was injected). Negation-derived PPs report the negated
// clause key; callers attributing training cost should also consult the
// base clause (§5.6: the classifier is shared).
func (d *Decision) LeafClauses() []string {
	return append([]string(nil), d.leaves...)
}

// Consulted returns the dependency keys the plan search asked the corpus
// about — every clause key it looked up (found or not, plus negation bases)
// and a "col:<column>" wildcard per touched column, sorted. A later corpus
// mutation that leaves all of them untouched cannot have changed this
// decision, which is what lets plan caches revalidate instead of evicting
// (Corpus.UnchangedSince).
func (d *Decision) Consulted() []string {
	return append([]string(nil), d.consulted...)
}

// Optimizer holds the corpus and the runtime-dependence state shared across
// queries (A.5).
type Optimizer struct {
	corpus *Corpus
	// dependent flags clause pairs whose PPs proved dependent at runtime.
	dependent map[string]bool
	// metrics (optional, SetMetrics) records search and drift telemetry.
	metrics *metrics.Registry
	// tr (optional, SetObs) receives ObserveRuntime misestimation events.
	tr *obs.Tracer
}

// New returns an optimizer over the given corpus.
func New(c *Corpus) *Optimizer {
	return &Optimizer{corpus: c, dependent: map[string]bool{}}
}

// Corpus exposes the optimizer's PP corpus.
func (o *Optimizer) Corpus() *Corpus { return o.corpus }

// Optimize chooses the best PP expression for the predicate, or decides not
// to inject any (§6.2). It returns an error only for invalid options;
// "no useful PP" is a normal Inject=false decision.
func (o *Optimizer) Optimize(pred query.Pred, opts Options) (*Decision, error) {
	opts.fill()
	if opts.Accuracy <= 0 || opts.Accuracy > 1 {
		return nil, fmt.Errorf("optimizer: accuracy target %v outside (0,1]", opts.Accuracy)
	}
	if opts.UDFCost < 0 {
		return nil, fmt.Errorf("optimizer: negative UDF cost %v", opts.UDFCost)
	}
	// Canonicalize before searching: the search must be a function of the
	// predicate's MEANING, not its spelling, so that (a) equal queries get
	// equal plans however they are written, and (b) a plan cache keyed on
	// CanonicalKey can serve any spelling with a plan searched for another.
	// Canonicalization also strips double negation and nested duplicates the
	// rewrite rules would otherwise see as distinct structures. Spans keep
	// the caller's spelling (orig) so traces match what the user asked.
	orig := pred
	pred = Canonicalize(pred)
	if _, unsat := pred.(query.False); unsat {
		// The predicate is unsatisfiable (e.g. s>60 ∧ s<50): no blob can
		// contribute to the answer, so every blob is dropped for free with
		// zero accuracy loss.
		return &Decision{
			Inject:       true,
			Filter:       dropAllFilter(),
			Expr:         "false (unsatisfiable predicate)",
			Reduction:    1,
			BaselineCost: opts.UDFCost,
		}, nil
	}
	start := time.Now()
	g := &generator{
		corpus:  o.corpus,
		domains: opts.Domains,
		maxPPs:  opts.MaxPPs,
		skip:    o.dependent,
	}
	// The generator's corpus consultations (and their misses) are the exact
	// dependency set of the decision; callers are already serialized, so the
	// recording needs no lock.
	o.corpus.beginRecord()
	candidates := g.gen(pred)
	consulted := o.corpus.endRecord()
	dec := &Decision{
		BaselineCost:  opts.UDFCost,
		NumCandidates: len(candidates),
		PlanCost:      opts.UDFCost,
		consulted:     consulted,
	}
	memoCount := &memoCounters{}
	copts := costOpts{
		uniformBudget: opts.DisableBudgetSearch,
		fixedOrder:    opts.DisableOrderSearch,
		counters:      memoCount,
	}
	var bestPlan *plan
	var bestExpr Expr
	for _, e := range candidates {
		p := costExpr(e, opts.Accuracy, opts.UDFCost, copts)
		dec.Alternatives = append(dec.Alternatives, Alternative{
			Expr:           e.String(),
			Cost:           p.cost,
			Reduction:      p.reduction,
			PlanCost:       planCost(p, opts.UDFCost),
			LeafAccuracies: describeLeafAccuracies(p),
		})
		if bestPlan == nil || planCost(p, opts.UDFCost) < planCost(bestPlan, opts.UDFCost) {
			bestPlan, bestExpr = p, e
		}
	}
	sortAlternatives(dec.Alternatives)
	if bestPlan != nil && planCost(bestPlan, opts.UDFCost) < opts.UDFCost {
		dec.Inject = true
		dec.Expr = bestExpr.String()
		dec.LeafAccuracies = describeLeafAccuracies(bestPlan)
		dec.Cost = bestPlan.cost
		dec.Reduction = bestPlan.reduction
		dec.PlanCost = planCost(bestPlan, opts.UDFCost)
		dec.Filter = compilePlan(bestPlan, bestExpr.String())
		for _, pp := range bestExpr.Leaves(nil) {
			dec.leaves = append(dec.leaves, pp.Clause)
		}
		dec.NumPPs = len(dec.leaves)
	}
	dec.Search = SearchStats{
		Generated:   g.generated,
		Deduped:     g.deduped,
		Costed:      len(candidates),
		MemoHits:    memoCount.hits,
		MemoEntries: memoCount.entries,
		WallNS:      time.Since(start).Nanoseconds(),
	}
	o.emitSearch(opts.Obs, opts.Trace, orig, dec)
	o.emitSearchMetrics(dec)
	return dec, nil
}

// emitSearch publishes one optimization's span and counters.
func (o *Optimizer) emitSearch(tr *obs.Tracer, ctx obs.TraceContext, pred query.Pred, dec *Decision) {
	if !tr.Enabled() {
		return
	}
	sp := tr.BeginCtx(ctx, obs.KindOptimize, pred.String())
	sp.Start = sp.Start.Add(-time.Duration(dec.Search.WallNS))
	sp.SetAttr("injected", strconv.FormatBool(dec.Inject))
	sp.SetAttr("candidates", strconv.Itoa(dec.Search.Costed))
	sp.SetAttr("memo_hits", strconv.Itoa(dec.Search.MemoHits))
	if dec.Inject {
		sp.SetAttr("expr", dec.Expr)
		sp.SetAttr("reduction", strconv.FormatFloat(dec.Reduction, 'f', 3, 64))
	}
	sp.CostVMS = dec.PlanCost
	sp.WallNS = dec.Search.WallNS
	tr.EmitSpan(sp)
	tr.Metric("optimizer.searches", 1)
	tr.Metric("optimizer.candidates_generated", float64(dec.Search.Generated))
	tr.Metric("optimizer.candidates_costed", float64(dec.Search.Costed))
	tr.Metric("optimizer.memo_hits", float64(dec.Search.MemoHits))
	tr.Metric("optimizer.memo_entries", float64(dec.Search.MemoEntries))
	if dec.Inject {
		tr.Metric("optimizer.injected", 1)
	}
}

// sortAlternatives orders candidates by ascending plan cost, then
// expression text for determinism.
func sortAlternatives(alts []Alternative) {
	sort.SliceStable(alts, func(i, j int) bool {
		if alts[i].PlanCost != alts[j].PlanCost {
			return alts[i].PlanCost < alts[j].PlanCost
		}
		return alts[i].Expr < alts[j].Expr
	})
}

// Dependence detection (A.5): the observed reduction may deviate from the
// estimate by an absolute floor plus a relative share of the estimate
// before the plan's PPs are flagged as dependent.
const (
	dependenceAbsTolerance = 0.1
	dependenceRelTolerance = 0.4
)

// ObserveRuntime feeds back the empirically observed reduction of an
// executed decision. Every injected observation updates the
// estimated-vs-observed reduction gauges; an observation outside the
// dependence tolerance additionally counts as a misestimation (counter plus
// obs event), and — when the decision had at least two PP leaves — flags
// every clause pair as dependent so future optimizations avoid combining
// them (A.5's runtime fix). Single-leaf misestimations cannot be blamed on
// dependence, but they are exactly the drift the telemetry must surface.
func (o *Optimizer) ObserveRuntime(dec *Decision, observedReduction float64) {
	o.ObserveRuntimeCtx(dec, observedReduction, obs.TraceContext{})
}

// ObserveRuntimeCtx is ObserveRuntime with the observing session's trace
// context: the misestimation event carries the session's TraceID, so a
// drifted query is attributable from the event stream alone.
func (o *Optimizer) ObserveRuntimeCtx(dec *Decision, observedReduction float64, ctx obs.TraceContext) {
	if dec == nil || !dec.Inject {
		return
	}
	if reg := o.metrics; reg != nil {
		reg.Counter("optimizer_observations_total", "Runtime reduction observations fed back to the optimizer.").Inc()
		reg.Gauge("optimizer_estimated_reduction", "Estimated data reduction of the most recently observed decision.").Set(dec.Reduction)
		reg.Gauge("optimizer_observed_reduction", "Observed data reduction of the most recently observed decision.").Set(observedReduction)
		reg.Histogram("optimizer_reduction_error", "Absolute estimated-minus-observed reduction error per observation.").Observe(math.Abs(observedReduction - dec.Reduction))
	}
	tolerance := math.Max(dependenceAbsTolerance, dependenceRelTolerance*dec.Reduction)
	if math.Abs(observedReduction-dec.Reduction) <= tolerance {
		return
	}
	if reg := o.metrics; reg != nil {
		reg.Counter("optimizer_misestimations_total", "Observations whose reduction fell outside the dependence tolerance.").Inc()
	}
	if o.tr.Enabled() {
		o.tr.EventCtx(ctx, "optimizer.misestimation",
			obs.Attr{Key: "expr", Value: dec.Expr},
			obs.Attr{Key: "estimated", Value: strconv.FormatFloat(dec.Reduction, 'f', 3, 64)},
			obs.Attr{Key: "observed", Value: strconv.FormatFloat(observedReduction, 'f', 3, 64)})
	}
	if len(dec.leaves) < 2 {
		return
	}
	for i := 0; i < len(dec.leaves); i++ {
		for j := i + 1; j < len(dec.leaves); j++ {
			o.dependent[pairKey(dec.leaves[i], dec.leaves[j])] = true
		}
	}
	if reg := o.metrics; reg != nil {
		reg.Gauge("optimizer_dependent_pairs", "Clause pairs currently flagged as dependent.").Set(float64(len(o.dependent)))
	}
}

// DependentPairs returns how many clause pairs are currently flagged.
func (o *Optimizer) DependentPairs() int { return len(o.dependent) }

// RewriteForRenames rewrites a predicate stated over post-projection column
// names back into pre-projection names (the X_{p,Ca→Cb} pushdown of A.4's
// column-renaming rule), so the PP can be matched and seeded below the
// projection. Columns not in the rename map pass through unchanged.
func RewriteForRenames(p query.Pred, oldToNew map[string]string) query.Pred {
	newToOld := make(map[string]string, len(oldToNew))
	for oldName, newName := range oldToNew {
		newToOld[newName] = oldName
	}
	var rewrite func(query.Pred) query.Pred
	rewrite = func(q query.Pred) query.Pred {
		switch n := q.(type) {
		case *query.Clause:
			col := n.Col
			if oldName, ok := newToOld[col]; ok {
				col = oldName
			}
			return &query.Clause{Col: col, Op: n.Op, Val: n.Val}
		case *query.And:
			kids := make([]query.Pred, len(n.Kids))
			for i, k := range n.Kids {
				kids[i] = rewrite(k)
			}
			return &query.And{Kids: kids}
		case *query.Or:
			kids := make([]query.Pred, len(n.Kids))
			for i, k := range n.Kids {
				kids[i] = rewrite(k)
			}
			return &query.Or{Kids: kids}
		case *query.Not:
			return &query.Not{Kid: rewrite(n.Kid)}
		}
		return q
	}
	return rewrite(p)
}
