package optimizer

// Test harness: builds small, fully-controlled PPs over "mini traffic" blobs
// whose dense features directly encode the ground-truth attributes, so that
// every PP's reduction curve is known and the optimizer's logic can be
// checked precisely.

import (
	"testing"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/dimred"
	"probpred/internal/mathx"
	"probpred/internal/query"
)

// Feature layout of a mini traffic blob.
const (
	fType  = 0 // vehicle type index 0..3
	fColor = 1 // color index 0..4
	fSpeed = 2 // speed 0..80
	fNoise = 3 // per-blob noise used to make speed PPs imperfect
)

var (
	miniTypes  = []string{"sedan", "SUV", "truck", "van"}
	miniColors = []string{"white", "black", "silver", "red", "other"}
)

// miniBlobs generates n labeled-attribute blobs.
func miniBlobs(n int, seed uint64) []blob.Blob {
	rng := mathx.NewRNG(seed)
	out := make([]blob.Blob, n)
	for i := range out {
		t := rng.Choice([]float64{0.45, 0.25, 0.14, 0.16})
		c := rng.Choice([]float64{0.33, 0.25, 0.20, 0.12, 0.10})
		s := mathx.Clamp(40+rng.NormFloat64()*15, 0, 80)
		out[i] = blob.FromDense(i, mathx.Vec{float64(t), float64(c), s, rng.NormFloat64()})
	}
	return out
}

// miniLookup evaluates predicates against a mini blob's encoded attributes.
func miniLookup(b blob.Blob) query.Lookup {
	return func(col string) (query.Value, bool) {
		switch col {
		case "t":
			return query.Str(miniTypes[int(b.Dense[fType])]), true
		case "c":
			return query.Str(miniColors[int(b.Dense[fColor])]), true
		case "s":
			return query.Number(b.Dense[fSpeed]), true
		}
		return query.Value{}, false
	}
}

// miniSet labels blobs against a predicate.
func miniSet(t *testing.T, blobs []blob.Blob, pred string) blob.Set {
	t.Helper()
	p := query.MustParse(pred)
	var s blob.Set
	for _, b := range blobs {
		ok, err := p.Eval(miniLookup(b))
		if err != nil {
			t.Fatalf("labeling %q: %v", pred, err)
		}
		s.Append(b, ok)
	}
	return s
}

// exactScorer scores +1/−1 on exact categorical match: a "perfect" PP.
type exactScorer struct {
	dim  int
	want float64
	cost float64
}

func (s exactScorer) Score(x mathx.Vec) float64 {
	if x[s.dim] == s.want {
		return 1
	}
	return -1
}
func (s exactScorer) Name() string  { return "exact" }
func (s exactScorer) Cost() float64 { return s.cost }

// speedScorer ranks blobs by (noisy) speed: an imperfect monotone PP whose
// accuracy-reduction trade-off is non-trivial.
type speedScorer struct {
	sign  float64 // +1 for lower bounds (s>v), −1 for upper bounds (s<v)
	noise float64
	cost  float64
}

func (s speedScorer) Score(x mathx.Vec) float64 {
	return s.sign * (x[fSpeed] + x[fNoise]*s.noise)
}
func (s speedScorer) Name() string  { return "speed" }
func (s speedScorer) Cost() float64 { return s.cost }

// miniCorpus builds the standard test corpus over validation blobs:
// equality PPs for every type and color value, and comparison PPs for speed
// boundaries (the §8.2 corpus in miniature).
func miniCorpus(t *testing.T, val []blob.Blob) *Corpus {
	t.Helper()
	c := NewCorpus()
	id := dimred.Identity{Dim: 4}
	addExact := func(clause string, dim int, want float64, cost float64) {
		set := miniSet(t, val, clause)
		pp, err := core.NewPP(clause, "test", id, exactScorer{dim: dim, want: want, cost: cost}, set)
		if err != nil {
			t.Fatalf("building %q: %v", clause, err)
		}
		c.Add(pp)
	}
	for i, typ := range miniTypes {
		addExact("t="+typ, fType, float64(i), 1.0)
	}
	for i, col := range miniColors {
		addExact("c="+col, fColor, float64(i), 1.0)
	}
	addSpeed := func(clause string, sign float64) {
		set := miniSet(t, val, clause)
		pp, err := core.NewPP(clause, "test", id, speedScorer{sign: sign, noise: 4, cost: 1.2}, set)
		if err != nil {
			t.Fatalf("building %q: %v", clause, err)
		}
		c.Add(pp)
	}
	for _, v := range []string{"40", "50", "60"} {
		addSpeed("s>"+v, 1)
	}
	for _, v := range []string{"65", "70"} {
		addSpeed("s<"+v, -1)
	}
	return c
}

// miniDomains matches data.TrafficDomains in miniature.
func miniDomains() map[string][]query.Value {
	d := map[string][]query.Value{}
	for _, t := range miniTypes {
		d["t"] = append(d["t"], query.Str(t))
	}
	for _, c := range miniColors {
		d["c"] = append(d["c"], query.Str(c))
	}
	for s := 0.0; s <= 80; s += 10 {
		d["s"] = append(d["s"], query.Number(s))
	}
	return d
}

// identityReducer returns the 4-dim identity reducer used by test PPs.
func identityReducer() dimred.Identity { return dimred.Identity{Dim: 4} }
