package optimizer

import (
	"fmt"
	"strings"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/metrics"
)

// Expr is a logical expression over PPs: a leaf, a conjunction or a
// disjunction (§6.1, Table 3). An Expr is implied by the query predicate it
// was generated for (𝒫 ⇒ ℰ), so dropping blobs it rejects never adds false
// positives.
type Expr interface {
	// Leaves appends the expression's PPs to dst and returns it.
	Leaves(dst []*core.PP) []*core.PP
	// String renders the expression (e.g. "PP[t=SUV] | PP[t=van]").
	String() string
}

// Leaf wraps a single PP.
type Leaf struct{ PP *core.PP }

// Leaves implements Expr.
func (l *Leaf) Leaves(dst []*core.PP) []*core.PP { return append(dst, l.PP) }

// String implements Expr.
func (l *Leaf) String() string { return "PP[" + l.PP.Clause + "]" }

// Conj is a conjunction of sub-expressions (Figure 8: a blob must pass every
// branch; branches short-circuit on the first failure).
type Conj struct{ Kids []Expr }

// Leaves implements Expr.
func (c *Conj) Leaves(dst []*core.PP) []*core.PP {
	for _, k := range c.Kids {
		dst = k.Leaves(dst)
	}
	return dst
}

// String implements Expr.
func (c *Conj) String() string { return joinExpr(c.Kids, " & ") }

// Disj is a disjunction of sub-expressions (Figure 7: a blob is discarded
// only if it fails every branch; branches short-circuit on the first pass).
type Disj struct{ Kids []Expr }

// Leaves implements Expr.
func (d *Disj) Leaves(dst []*core.PP) []*core.PP {
	for _, k := range d.Kids {
		dst = k.Leaves(dst)
	}
	return dst
}

// String implements Expr.
func (d *Disj) String() string { return joinExpr(d.Kids, " | ") }

func joinExpr(kids []Expr, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		s := k.String()
		if _, isLeaf := k.(*Leaf); !isLeaf {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

// NumLeaves counts the PPs in an expression.
func NumLeaves(e Expr) int { return len(e.Leaves(nil)) }

// Compiled is an executable PP expression: every leaf has a concrete
// threshold (from its accuracy-budget share) and kids are ordered for
// short-circuit evaluation (cheapest effective first, §6.2). It implements
// engine.BlobFilter.
type Compiled struct {
	name string
	node compiledNode
}

type compiledNode interface {
	// test returns pass/fail and the virtual cost actually incurred, which
	// depends on short-circuiting. ct (optional) tallies score-cache hits
	// and misses for the caller's per-run accounting.
	test(b blob.Blob, ct *cacheTally) (bool, float64)
	// testBatch evaluates the node over the rows listed in active (indices
	// into blobs), setting pass[i] for every active i and accumulating into
	// cost[i] exactly the virtual cost test(blobs[i]) would have charged.
	// It may read but must not mutate active. See batch.go.
	testBatch(blobs []blob.Blob, active []int, pass []bool, cost []float64, s *batchScratch, ct *cacheTally)
}

type compiledLeaf struct {
	pp        *core.PP
	threshold float64
	cost      float64
	// planned is the reduction the plan estimated for this leaf at its
	// allocated accuracy — the baseline runtime observations diverge from.
	planned float64
	// probe (optional, WithRuntimeObserver) accumulates observed row counts
	// for mid-query re-optimization. Nil on unobserved filters.
	probe *leafProbe
	// cache (optional, WithScoreCache) memoizes this PP's per-blob scores
	// across queries. Nil on standalone filters: both scoring paths guard on
	// cache alone, so the uncached hot path pays one nil check per leaf.
	cache ScoreCache
	// Opt-in per-clause instrumentation, resolved once by Compiled.Instrument
	// (see metrics.go). Nil on uninstrumented filters: both scoring paths
	// guard on scoreHist alone, so the hot path pays one nil check per leaf.
	scoreHist      *metrics.Histogram
	tested, passed *metrics.Counter
}

// score resolves the PP's score for one blob, through the score cache when
// one is attached. Cached and fresh scores are bit-identical (the cache only
// ever stores values this same PP produced), so caching never changes
// pass/fail outcomes. Virtual cost is charged by the caller regardless of
// cache hits: the cache saves real CPU, not modeled cluster work, keeping
// cost accounting identical with and without caching.
func (l *compiledLeaf) score(b blob.Blob, ct *cacheTally) float64 {
	if l.cache == nil {
		return l.pp.Score(b)
	}
	if s, ok := l.cache.Get(l.pp, b.ID); ok {
		ct.hit(1)
		return s
	}
	s := l.pp.Score(b)
	l.cache.Put(l.pp, b.ID, s)
	ct.miss(1)
	return s
}

func (l *compiledLeaf) test(b blob.Blob, ct *cacheTally) (bool, float64) {
	score := l.score(b, ct)
	ok := score >= l.threshold
	if l.probe != nil {
		l.probe.tested.Add(1)
		if ok {
			l.probe.passed.Add(1)
		}
	}
	if l.scoreHist != nil {
		l.scoreHist.Observe(score)
		l.tested.Inc()
		if ok {
			l.passed.Inc()
		}
	}
	return ok, l.cost
}

type compiledConj struct{ kids []compiledNode }

func (c *compiledConj) test(b blob.Blob, ct *cacheTally) (bool, float64) {
	total := 0.0
	for _, k := range c.kids {
		ok, cost := k.test(b, ct)
		total += cost
		if !ok {
			return false, total
		}
	}
	return true, total
}

type compiledDisj struct{ kids []compiledNode }

func (d *compiledDisj) test(b blob.Blob, ct *cacheTally) (bool, float64) {
	total := 0.0
	for _, k := range d.kids {
		ok, cost := k.test(b, ct)
		total += cost
		if ok {
			return true, total
		}
	}
	return false, total
}

// Name implements engine.BlobFilter.
func (c *Compiled) Name() string { return c.name }

// Test implements engine.BlobFilter.
func (c *Compiled) Test(b blob.Blob) (bool, float64) { return c.node.test(b, nil) }

// dropAllFilter rejects every blob at zero cost — the compiled form of an
// unsatisfiable predicate.
func dropAllFilter() *Compiled {
	return &Compiled{name: "false", node: dropAllNode{}}
}

type dropAllNode struct{}

func (dropAllNode) test(blob.Blob, *cacheTally) (bool, float64) { return false, 0 }

// describePlan renders a compiled plan with per-leaf accuracies for reports
// (Table 10's "picked plan" column).
func describeLeafAccuracies(p *plan) string {
	var parts []string
	var walk func(n *plan)
	walk = func(n *plan) {
		if n.leaf != nil {
			parts = append(parts, fmt.Sprintf("PP[%s]@%.3f", n.leaf.Clause, n.accuracy))
			return
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(p)
	return strings.Join(parts, ", ")
}
