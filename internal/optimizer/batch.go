package optimizer

import (
	"sync"

	"probpred/internal/blob"
)

// Batch evaluation of compiled PP expressions (engine.BatchBlobFilter).
//
// The scalar Test walks the expression tree once per blob, short-circuiting
// conjunctions on the first failing kid and disjunctions on the first passing
// kid; the virtual cost charged to a blob therefore depends on which leaves
// actually ran. TestBatch preserves that exactly while still scoring each
// leaf over many rows at once: every node receives the list of row indices
// still "active" at that point of the walk, a leaf gathers just those rows
// and scores them through core.PP.ScoreBatch (the allocation-free batch
// kernel), and conjunction/disjunction nodes compact the active list between
// kids instead of branching per row. Because a leaf adds its constant cost to
// cost[i] in the same kid order the scalar walk would have, and ScoreBatch is
// bit-identical to per-row Score, pass/cost come out identical to the scalar
// path for every row.

// batchScratch holds the recycled buffers of one TestBatch call: a free-list
// of index slices for the per-node active lists plus the gather buffers the
// leaves score through. missScores is the cached path's scatter buffer for
// freshly scored cache misses. One scratch is used by one goroutine at a time.
type batchScratch struct {
	idxFree    [][]int
	blobs      []blob.Blob
	scores     []float64
	missScores []float64
}

var batchScratchPool sync.Pool

func getBatchScratch() *batchScratch {
	if s, ok := batchScratchPool.Get().(*batchScratch); ok {
		return s
	}
	return &batchScratch{}
}

func putBatchScratch(s *batchScratch) {
	clear(s.blobs[:cap(s.blobs)]) // drop blob references so the pool doesn't pin data
	batchScratchPool.Put(s)
}

// getIdx returns an empty index slice with capacity ≥ n, reusing a previously
// released one when available.
func (s *batchScratch) getIdx(n int) []int {
	if last := len(s.idxFree) - 1; last >= 0 {
		sl := s.idxFree[last]
		s.idxFree = s.idxFree[:last]
		if cap(sl) >= n {
			return sl[:0]
		}
	}
	return make([]int, 0, n)
}

func (s *batchScratch) putIdx(sl []int) { s.idxFree = append(s.idxFree, sl) }

// TestBatch implements engine.BatchBlobFilter: pass[i] and cost[i] are
// exactly what Test(blobs[i]) would return, including short-circuit cost.
func (c *Compiled) TestBatch(blobs []blob.Blob, pass []bool, cost []float64) {
	c.testBatchTally(blobs, pass, cost, nil)
}

// testBatchTally is TestBatch with optional per-run cache accounting.
func (c *Compiled) testBatchTally(blobs []blob.Blob, pass []bool, cost []float64, ct *cacheTally) {
	n := len(blobs)
	clear(cost[:n])
	s := getBatchScratch()
	act := s.getIdx(n)
	for i := 0; i < n; i++ {
		act = append(act, i)
	}
	c.node.testBatch(blobs, act, pass, cost, s, ct)
	s.putIdx(act)
	putBatchScratch(s)
}

func (l *compiledLeaf) testBatch(blobs []blob.Blob, active []int, pass []bool, cost []float64, s *batchScratch, ct *cacheTally) {
	n := len(active)
	if cap(s.blobs) < n {
		s.blobs = make([]blob.Blob, n)
		s.scores = make([]float64, n)
		s.missScores = make([]float64, n)
	}
	bs, sc := s.blobs[:n], s.scores[:n]
	if l.cache != nil {
		// Resolve what the cache already knows, then batch-score only the
		// misses through the same ScoreBatch kernel the uncached path uses
		// (bit-identical to per-row Score), and scatter them back so sc[j]
		// ends up identical to the uncached fill for every active row.
		missIdx := s.getIdx(n)
		for j, i := range active {
			if v, ok := l.cache.Get(l.pp, blobs[i].ID); ok {
				sc[j] = v
			} else {
				missIdx = append(missIdx, j)
			}
		}
		if nm := len(missIdx); nm > 0 {
			mb, ms := bs[:nm], s.missScores[:nm]
			for k, j := range missIdx {
				mb[k] = blobs[active[j]]
			}
			l.pp.ScoreBatch(mb, ms)
			for k, j := range missIdx {
				sc[j] = ms[k]
				l.cache.Put(l.pp, blobs[active[j]].ID, ms[k])
			}
		}
		ct.hit(uint64(n - len(missIdx)))
		ct.miss(uint64(len(missIdx)))
		s.putIdx(missIdx)
	} else {
		for j, i := range active {
			bs[j] = blobs[i]
		}
		l.pp.ScoreBatch(bs, sc)
	}
	passedN := 0
	for j, i := range active {
		ok := sc[j] >= l.threshold
		pass[i] = ok
		cost[i] += l.cost
		if ok {
			passedN++
		}
	}
	if l.probe != nil {
		l.probe.tested.Add(uint64(n))
		l.probe.passed.Add(uint64(passedN))
	}
	if l.scoreHist != nil {
		passed := 0
		for _, v := range sc {
			l.scoreHist.Observe(v)
			if v >= l.threshold {
				passed++
			}
		}
		l.tested.Add(float64(n))
		l.passed.Add(float64(passed))
	}
}

func (c *compiledConj) testBatch(blobs []blob.Blob, active []int, pass []bool, cost []float64, s *batchScratch, ct *cacheTally) {
	if len(c.kids) == 0 {
		for _, i := range active {
			pass[i] = true
		}
		return
	}
	act := append(s.getIdx(len(active)), active...)
	for _, k := range c.kids {
		k.testBatch(blobs, act, pass, cost, s, ct)
		// Rows the kid failed are decided (pass[i] = false stays); the rest
		// continue to the next kid, mirroring the scalar short-circuit.
		keep := act[:0]
		for _, i := range act {
			if pass[i] {
				keep = append(keep, i)
			}
		}
		act = keep
		if len(act) == 0 {
			break
		}
	}
	s.putIdx(act)
}

func (d *compiledDisj) testBatch(blobs []blob.Blob, active []int, pass []bool, cost []float64, s *batchScratch, ct *cacheTally) {
	if len(d.kids) == 0 {
		for _, i := range active {
			pass[i] = false
		}
		return
	}
	act := append(s.getIdx(len(active)), active...)
	for _, k := range d.kids {
		k.testBatch(blobs, act, pass, cost, s, ct)
		// Rows the kid passed are decided (pass[i] = true stays); only the
		// still-failing rows try the next branch.
		keep := act[:0]
		for _, i := range act {
			if !pass[i] {
				keep = append(keep, i)
			}
		}
		act = keep
		if len(act) == 0 {
			break
		}
	}
	s.putIdx(act)
}

func (dropAllNode) testBatch(_ []blob.Blob, active []int, pass []bool, _ []float64, _ *batchScratch, _ *cacheTally) {
	for _, i := range active {
		pass[i] = false
	}
}
