package optimizer

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"probpred/internal/obs"
)

// Mid-query re-optimization (ROADMAP item 3; Hydro's adaptive re-entry,
// PAPERS.md): a running filter carries per-leaf runtime probes, and when the
// observed selectivities diverge from the plan's estimates the optimizer
// re-enters with the observed statistics and re-orders the short-circuit
// evaluation.
//
// The re-entry is deliberately restricted to REORDERING siblings of the
// already-compiled expression: leaves, thresholds and tree structure are
// shared untouched, so the new filter accepts exactly the blobs the old one
// accepts (conjunction and disjunction are commutative in outcome; only the
// short-circuit cost depends on kid order). That is what lets the adapt
// controller hot-swap mid-query while keeping outputs byte-identical —
// re-running the full plan search could pick different leaves or thresholds
// and silently change the answer halfway through a scan.

// leafProbe accumulates one running leaf's observed row counts. Attached via
// WithRuntimeObserver (a clone, like WithScoreCache — compiled filters are
// shared across sessions and must not be mutated). Atomics: parallel workers
// of one run tally concurrently.
type leafProbe struct {
	clause  string
	cost    float64
	planned float64 // estimated reduction at the leaf's allocated accuracy
	tested  atomic.Uint64
	passed  atomic.Uint64
}

// RuntimeObserver reads the probes of one observed filter, in leaf walk
// order. Safe for concurrent use with the filter's execution.
type RuntimeObserver struct {
	probes []*leafProbe
}

// LeafStat is one leaf's planned-vs-observed snapshot.
type LeafStat struct {
	// Clause is the leaf PP's clause key.
	Clause string
	// Cost is the leaf's per-blob virtual cost.
	Cost float64
	// PlannedReduction is the reduction the plan estimated for this leaf at
	// its allocated accuracy.
	PlannedReduction float64
	// Tested and Passed count the rows that reached the leaf and the rows it
	// kept. Short-circuiting means downstream leaves see fewer rows.
	Tested, Passed uint64
}

// ObservedReduction is the fraction of tested rows the leaf dropped
// (NaN-free: a leaf no row reached reports its planned reduction, carrying
// zero divergence signal).
func (s LeafStat) ObservedReduction() float64 {
	if s.Tested == 0 {
		return s.PlannedReduction
	}
	return 1 - float64(s.Passed)/float64(s.Tested)
}

// Stats snapshots every leaf's counters.
func (ro *RuntimeObserver) Stats() []LeafStat {
	out := make([]LeafStat, len(ro.probes))
	for i, p := range ro.probes {
		out[i] = LeafStat{
			Clause:           p.clause,
			Cost:             p.cost,
			PlannedReduction: p.planned,
			Tested:           p.tested.Load(),
			Passed:           p.passed.Load(),
		}
	}
	return out
}

// MaxDivergence returns the largest |observed − planned| reduction across
// leaves that have seen at least minRows rows — the adapt controller's
// trigger signal. Leaves with thinner evidence contribute nothing: a leaf
// short-circuited away carries no drift information.
func (ro *RuntimeObserver) MaxDivergence(minRows uint64) float64 {
	if minRows == 0 {
		minRows = 1
	}
	worst := 0.0
	for _, st := range ro.Stats() {
		if st.Tested < minRows {
			continue
		}
		if d := math.Abs(st.ObservedReduction() - st.PlannedReduction); d > worst {
			worst = d
		}
	}
	return worst
}

// WithRuntimeObserver returns a copy of the filter whose leaves feed fresh
// runtime probes, plus the observer reading them. The receiver is not
// modified (the WithScoreCache contract); pass/fail results and virtual
// costs are identical to the unobserved filter. Composes with WithScoreCache
// in either order.
func (c *Compiled) WithRuntimeObserver() (*Compiled, *RuntimeObserver) {
	ro := &RuntimeObserver{}
	if c == nil {
		return c, ro
	}
	return &Compiled{name: c.name, node: cloneWithProbes(c.node, ro)}, ro
}

func cloneWithProbes(n compiledNode, ro *RuntimeObserver) compiledNode {
	switch v := n.(type) {
	case *compiledLeaf:
		cp := *v
		cp.probe = &leafProbe{clause: v.pp.Clause, cost: v.cost, planned: v.planned}
		ro.probes = append(ro.probes, cp.probe)
		return &cp
	case *compiledConj:
		kids := make([]compiledNode, len(v.kids))
		for i, k := range v.kids {
			kids[i] = cloneWithProbes(k, ro)
		}
		return &compiledConj{kids: kids}
	case *compiledDisj:
		kids := make([]compiledNode, len(v.kids))
		for i, k := range v.kids {
			kids[i] = cloneWithProbes(k, ro)
		}
		return &compiledDisj{kids: kids}
	}
	return n // dropAllNode carries no PPs
}

// Reoptimized is the result of one mid-query re-entry.
type Reoptimized struct {
	// Filter is the re-ordered filter. It shares leaf nodes (and their score
	// caches and probes) with the input, so observation continues seamlessly
	// across a swap. Equal to the input filter when Changed is false.
	Filter *Compiled
	// Changed reports whether any sibling order changed.
	Changed bool
	// OldCost and NewCost are the expected per-blob PP execution costs of the
	// input and output orders under the observed statistics.
	OldCost, NewCost float64
	// Reduction is the whole filter's reduction recombined from observed
	// leaf statistics (order-independent).
	Reduction float64
	// Expr renders the new evaluation order.
	Expr string
}

// Reoptimize re-enters the optimizer with a running filter's observed
// statistics: each leaf's reduction estimate is replaced by its observed
// drop rate (when at least minRows rows reached it; thinner leaves keep the
// planned estimate), and every conjunction/disjunction re-orders its kids by
// the rank rule — ascending cost/reduction for conjunctions, ascending
// cost/(1−reduction) for disjunctions — which the adjacent-exchange argument
// makes optimal for short-circuit cost under the independence assumption the
// cost model already carries (§6.2). Thresholds and leaves are untouched, so
// the returned filter is outcome-equivalent to the input on every blob.
func (o *Optimizer) Reoptimize(c *Compiled, minRows uint64, tr *obs.Tracer) (*Reoptimized, error) {
	return o.ReoptimizeCtx(c, minRows, tr, obs.TraceContext{})
}

// ReoptimizeCtx is Reoptimize with the triggering session's trace context:
// the optimizer.reoptimize event carries the session's TraceID, linking
// mid-query replans to the session they rescued.
func (o *Optimizer) ReoptimizeCtx(c *Compiled, minRows uint64, tr *obs.Tracer, ctx obs.TraceContext) (*Reoptimized, error) {
	if c == nil {
		return nil, fmt.Errorf("optimizer: reoptimize of nil filter")
	}
	if minRows == 0 {
		minRows = 1
	}
	oldNode, oldStats := c.node, nodeStats(c.node, minRows, false)
	newNode, newStats := reorderNode(c.node, minRows)
	out := &Reoptimized{
		Filter:    c,
		OldCost:   oldStats.cost,
		NewCost:   newStats.cost,
		Reduction: newStats.reduction,
		Expr:      renderNode(newNode),
	}
	if !sameOrder(oldNode, newNode) {
		out.Changed = true
		out.Filter = &Compiled{name: out.Expr, node: newNode}
	}
	if reg := o.metrics; reg != nil {
		reg.Counter("optimizer_reoptimizations_total", "Mid-query re-entries with observed statistics.").Inc()
		if out.Changed {
			reg.Counter("optimizer_reorders_total", "Re-entries that changed the short-circuit evaluation order.").Inc()
		}
	}
	if tr == nil {
		tr = o.tr
	}
	if tr.Enabled() {
		tr.EventCtx(ctx, "optimizer.reoptimize",
			obs.Attr{Key: "old_expr", Value: c.name},
			obs.Attr{Key: "new_expr", Value: out.Expr},
			obs.Attr{Key: "changed", Value: strconv.FormatBool(out.Changed)},
			obs.Attr{Key: "old_cost", Value: strconv.FormatFloat(out.OldCost, 'f', 4, 64)},
			obs.Attr{Key: "new_cost", Value: strconv.FormatFloat(out.NewCost, 'f', 4, 64)})
	}
	return out, nil
}

// runtimeStats is a node's (cost, reduction) under observed statistics.
type runtimeStats struct{ cost, reduction float64 }

// leafRuntime resolves one leaf's statistics, preferring observation.
func leafRuntime(l *compiledLeaf, minRows uint64) runtimeStats {
	r := l.planned
	if p := l.probe; p != nil {
		if tested := p.tested.Load(); tested >= minRows {
			// Pass rates observed under short-circuiting are conditional on
			// the rows that reached the leaf; independence (already assumed
			// by Eq. 9/10's composition) reads them as marginals.
			r = 1 - float64(p.passed.Load())/float64(tested)
		}
	}
	return runtimeStats{cost: l.cost, reduction: r}
}

// nodeStats recombines a node's cost/reduction bottom-up in its CURRENT kid
// order (Eq. 9/10). reorder selects whether kids are rank-sorted first.
func nodeStats(n compiledNode, minRows uint64, _ bool) runtimeStats {
	switch v := n.(type) {
	case *compiledLeaf:
		return leafRuntime(v, minRows)
	case *compiledConj:
		return combineRuntime(kidStats(v.kids, minRows), true)
	case *compiledDisj:
		return combineRuntime(kidStats(v.kids, minRows), false)
	}
	return runtimeStats{cost: 0, reduction: 1} // dropAllNode: free, drops all
}

func kidStats(kids []compiledNode, minRows uint64) []runtimeStats {
	out := make([]runtimeStats, len(kids))
	for i, k := range kids {
		out[i] = nodeStats(k, minRows, false)
	}
	return out
}

// combineRuntime folds already-ordered kid statistics left to right.
// Conjunction: r = r1 + r2 − r1·r2, c = c1 + (1−r1)·c2 (Eq. 9).
// Disjunction: r = r1·r2, c = c1 + r1·c2 (Eq. 10).
func combineRuntime(kids []runtimeStats, conj bool) runtimeStats {
	if len(kids) == 0 {
		return runtimeStats{}
	}
	acc := kids[0]
	for _, k := range kids[1:] {
		if conj {
			acc = runtimeStats{
				cost:      acc.cost + (1-acc.reduction)*k.cost,
				reduction: acc.reduction + k.reduction - acc.reduction*k.reduction,
			}
		} else {
			acc = runtimeStats{
				cost:      acc.cost + acc.reduction*k.cost,
				reduction: acc.reduction * k.reduction,
			}
		}
	}
	return acc
}

// reorderNode rebuilds a node with rank-ordered kids (recursively) and
// returns it with its recombined statistics. Leaves are returned as-is —
// sharing, not copying, so caches and probes survive the swap.
func reorderNode(n compiledNode, minRows uint64) (compiledNode, runtimeStats) {
	switch v := n.(type) {
	case *compiledLeaf:
		return v, leafRuntime(v, minRows)
	case *compiledConj:
		kids, stats := reorderKids(v.kids, minRows, true)
		return &compiledConj{kids: kids}, combineRuntime(stats, true)
	case *compiledDisj:
		kids, stats := reorderKids(v.kids, minRows, false)
		return &compiledDisj{kids: kids}, combineRuntime(stats, false)
	}
	return n, runtimeStats{cost: 0, reduction: 1}
}

// reorderKids rank-sorts sibling sub-plans: a conjunction runs kids in
// ascending cost/reduction (cheap, highly-dropping filters first), a
// disjunction in ascending cost/(1−reduction) (cheap, highly-passing
// branches first). Both follow from the adjacent-exchange inequality on
// Eq. 9/10's fold. The sort is stable with a deterministic epsilon so noise
// below 1e-12 never reorders — swap decisions must be reproducible.
func reorderKids(kids []compiledNode, minRows uint64, conj bool) ([]compiledNode, []runtimeStats) {
	type ranked struct {
		node  compiledNode
		stats runtimeStats
		rank  float64
	}
	rs := make([]ranked, len(kids))
	for i, k := range kids {
		node, stats := reorderNode(k, minRows)
		denom := stats.reduction
		if !conj {
			denom = 1 - stats.reduction
		}
		rank := math.Inf(1) // a filter that never short-circuits goes last
		if denom > 0 {
			rank = stats.cost / denom
		}
		rs[i] = ranked{node: node, stats: stats, rank: rank}
	}
	// Insertion sort, stable: equal-rank kids keep their current order.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].rank < rs[j-1].rank-1e-12; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	outKids := make([]compiledNode, len(rs))
	outStats := make([]runtimeStats, len(rs))
	for i, r := range rs {
		outKids[i], outStats[i] = r.node, r.stats
	}
	return outKids, outStats
}

// sameOrder reports whether two compiled trees evaluate in the same order.
// Leaves are compared by identity — reorderNode shares them.
func sameOrder(a, b compiledNode) bool {
	switch va := a.(type) {
	case *compiledLeaf:
		vb, ok := b.(*compiledLeaf)
		return ok && va == vb
	case *compiledConj:
		vb, ok := b.(*compiledConj)
		return ok && sameKids(va.kids, vb.kids)
	case *compiledDisj:
		vb, ok := b.(*compiledDisj)
		return ok && sameKids(va.kids, vb.kids)
	}
	return a == b
}

func sameKids(a, b []compiledNode) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !sameOrder(a[i], b[i]) {
			return false
		}
	}
	return true
}

// EvalExpr renders the filter in short-circuit evaluation order. This can
// differ from Name() — the plan search reverses sibling order when the
// reversed fold is cheaper, while Name() keeps the source expression's
// notation — and it is the order runtime observation and re-optimization
// reason about.
func (c *Compiled) EvalExpr() string { return renderNode(c.node) }

// ExecutionOrder returns the leaf clause keys in evaluation order (the order
// WithRuntimeObserver probes report in).
func (c *Compiled) ExecutionOrder() []string {
	var out []string
	var walk func(n compiledNode)
	walk = func(n compiledNode) {
		switch v := n.(type) {
		case *compiledLeaf:
			out = append(out, v.pp.Clause)
		case *compiledConj:
			for _, k := range v.kids {
				walk(k)
			}
		case *compiledDisj:
			for _, k := range v.kids {
				walk(k)
			}
		}
	}
	walk(c.node)
	return out
}

// renderNode renders a compiled tree in evaluation order (the Expr/joinExpr
// notation, so swapped plans read like planned ones in EXPLAIN output).
func renderNode(n compiledNode) string {
	switch v := n.(type) {
	case *compiledLeaf:
		return "PP[" + v.pp.Clause + "]"
	case *compiledConj:
		return joinCompiled(v.kids, " & ")
	case *compiledDisj:
		return joinCompiled(v.kids, " | ")
	}
	return "false (unsatisfiable predicate)"
}

func joinCompiled(kids []compiledNode, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		s := renderNode(k)
		if _, isLeaf := k.(*compiledLeaf); !isLeaf {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}
