package optimizer

import (
	"math"

	"probpred/internal/core"
)

// plan is a costed, accuracy-assigned instantiation of an Expr node (§6.2):
// every leaf carries the share of the query's accuracy budget allocated to
// it, internal nodes carry the combined cost c(a] and reduction r(a] from
// Eq. 9 (conjunction) / Eq. 10 (disjunction), and kid order encodes the
// chosen short-circuit evaluation order.
type plan struct {
	leaf      *core.PP
	conj      bool
	kids      []*plan
	accuracy  float64
	cost      float64
	reduction float64
}

// budgetGrid is the discretization of the accuracy-budget split explored at
// each conjunction/disjunction (the paper's dynamic program; the grid keeps
// it polynomial).
var budgetGrid = []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}

// costOpts carries the ablation switches of §6.2's two search dimensions.
type costOpts struct {
	// uniformBudget disables the accuracy-allocation search: conjunctions
	// split the budget evenly (a_i = a^(1/2) at each fold).
	uniformBudget bool
	// fixedOrder disables the execution-order search: sub-expressions run
	// in written order instead of cheapest-effective-first.
	fixedOrder bool
	// counters, when set, profiles the DP's memo table across costExpr
	// calls for SearchStats.
	counters *memoCounters
}

// memoCounters profiles the costing DP's memo table.
type memoCounters struct{ hits, entries int }

// costExpr computes the minimum-plan-cost instantiation of e at query
// accuracy target a, for a query whose remaining per-blob UDF cost is u.
// Plan cost per blob is c + (1−r)·u (§3, §6.2).
func costExpr(e Expr, a, u float64, opts costOpts) *plan {
	memo := map[memoKey]*plan{}
	return evalExpr(e, a, u, opts, memo)
}

type memoKey struct {
	node Expr
	acc  int64 // accuracy rounded to 1e-6
}

func evalExpr(e Expr, a, u float64, opts costOpts, memo map[memoKey]*plan) *plan {
	key := memoKey{node: e, acc: int64(math.Round(a * 1e6))}
	if p, ok := memo[key]; ok {
		if opts.counters != nil {
			opts.counters.hits++
		}
		return p
	}
	if opts.counters != nil {
		opts.counters.entries++
	}
	var out *plan
	switch n := e.(type) {
	case *Leaf:
		out = &plan{
			leaf:      n.PP,
			accuracy:  a,
			cost:      n.PP.Cost(),
			reduction: n.PP.Reduction(a),
		}
	case *Conj:
		out = evalNary(n.Kids, a, u, true, opts, memo)
	case *Disj:
		out = evalNary(n.Kids, a, u, false, opts, memo)
	}
	memo[key] = out
	return out
}

// evalNary folds an n-ary conjunction or disjunction pairwise, exploring
// which kid joins the fold first (an ordering search: with the cost min()
// of Eq. 9/10 also considering both operand orders at each fold, this
// covers the orderings the paper's c/r-sorted + edit-distance heuristic
// explores) and how the accuracy budget splits at each fold.
func evalNary(kids []Expr, a, u float64, conj bool, opts costOpts, memo map[memoKey]*plan) *plan {
	if len(kids) == 1 {
		return evalExpr(kids[0], a, u, opts, memo)
	}
	var best *plan
	firsts := len(kids)
	if opts.fixedOrder {
		firsts = 1 // written order only
	}
	for first := 0; first < firsts; first++ {
		rest := make([]Expr, 0, len(kids)-1)
		rest = append(rest, kids[:first]...)
		rest = append(rest, kids[first+1:]...)
		for _, t := range splitGrid(conj, opts) {
			a1, a2 := splitBudget(a, t, conj)
			p1 := evalExpr(kids[first], a1, u, opts, memo)
			p2 := evalNary(rest, a2, u, conj, opts, memo)
			combined := combine(p1, p2, conj, opts)
			if best == nil || planCost(combined, u) < planCost(best, u) {
				best = combined
			}
		}
	}
	return best
}

// splitGrid returns the budget-split points to explore. Disjunctions have a
// single sound allocation (see splitBudget), so only one point; the
// uniform-budget ablation pins conjunctions to an even split. The uniform
// point is 1/2 of the log-budget: a1 = a2 = a^(1/2) at every fold.
func splitGrid(conj bool, opts costOpts) []float64 {
	if !conj {
		return budgetGrid[:1]
	}
	if opts.uniformBudget {
		return []float64{0.5}
	}
	return budgetGrid
}

// splitBudget divides the accuracy target between two branches.
//
// Conjunction (Eq. 9): a = a1·a2, so a1 = a^t, a2 = a^(1−t) — a positive
// must pass both branches, and the budget trades off between them.
//
// Disjunction: every branch receives the full target a. This is the sound
// allocation: a blob satisfying the disjunction is only guaranteed to be
// caught by the branch whose clause it satisfies (Figure 7), so that branch
// alone must retain an a-fraction of its positives. (Eq. 10's
// a = a1+a2−a1·a2 models branches as independent chances; taking a1=a2=a
// satisfies it with margin while preserving the zero-false-negative
// guarantee at a=1.)
func splitBudget(a, t float64, conj bool) (a1, a2 float64) {
	if conj {
		return math.Pow(a, t), math.Pow(a, 1-t)
	}
	return a, a
}

// combine merges two costed sub-plans with the composition formulas,
// ordering the kids so the cheaper-effective branch executes first (the min
// of the two cost orders in Eq. 9/10) unless the fixed-order ablation is on.
func combine(p1, p2 *plan, conj bool, opts costOpts) *plan {
	var r, cForward, cReverse float64
	if conj {
		r = p1.reduction + p2.reduction - p1.reduction*p2.reduction
		cForward = p1.cost + (1-p1.reduction)*p2.cost
		cReverse = p2.cost + (1-p2.reduction)*p1.cost
	} else {
		r = p1.reduction * p2.reduction
		cForward = p1.cost + p1.reduction*p2.cost
		cReverse = p2.cost + p2.reduction*p1.cost
	}
	kids := []*plan{p1, p2}
	cost := cForward
	if cReverse < cForward && !opts.fixedOrder {
		kids = []*plan{p2, p1}
		cost = cReverse
	}
	var a float64
	if conj {
		a = p1.accuracy * p2.accuracy
	} else {
		a = p1.accuracy + p2.accuracy - p1.accuracy*p2.accuracy
	}
	return &plan{conj: conj, kids: kids, accuracy: a, cost: cost, reduction: r}
}

// planCost is the per-blob plan cost c + (1−r)·u (§3).
func planCost(p *plan, u float64) float64 {
	return p.cost + (1-p.reduction)*u
}

// compile lowers a costed plan into an executable short-circuit filter; leaf
// thresholds come from each leaf's allocated accuracy.
func compilePlan(p *plan, name string) *Compiled {
	return &Compiled{name: name, node: compileNode(p)}
}

func compileNode(p *plan) compiledNode {
	if p.leaf != nil {
		return &compiledLeaf{
			pp:        p.leaf,
			threshold: p.leaf.Threshold(p.accuracy),
			cost:      p.leaf.Cost(),
			planned:   p.reduction,
		}
	}
	kids := make([]compiledNode, len(p.kids))
	for i, k := range p.kids {
		kids[i] = compileNode(k)
	}
	if p.conj {
		return &compiledConj{kids: kids}
	}
	return &compiledDisj{kids: kids}
}
