package optimizer

import (
	"fmt"

	"probpred/internal/engine"
	"probpred/internal/query"
)

// This file implements the PP seeding and pushdown rules of Appendix A.4 as
// a plan-level transformation: a PP placeholder X_p is seeded at the plan's
// selection and pushed down, operator by operator, until it would execute
// directly on the raw input (right after the scan). Only then can trained
// PPs replace it. If the placeholder gets stuck — the predicate references a
// column fabricated by an opaque projection, or a column supplied by a
// join's dimension table — it is simply omitted and the plan runs as-is.
//
// Rules (Table 11):
//
//	seed:        σ_p(R)            ⇝ σ_p(X_p(R))
//	select:      X_p(σ_q(R))       ⇝ σ_q(X_p(R))      [q independent of p]
//	fk-join:     X_p(R ⋈_D S)      ⇝ X_p(R) ⋈_D S     [p's columns ⊆ R]
//	rename π:    X_p(π_{Ca→Cb}(R)) ⇝ π(X_{p,Ca→Cb}(R))
//	compute π:   X_p(π_{f(D)=d}(R))⇝ π(X_{p,d→f(D)}(R))
//
// The compute rule needs the clause rewritten onto the projection's input
// expression; since computed columns are opaque Go functions here, pushdown
// succeeds only when the predicate does not reference them (their PPs would
// have been trained under the output name anyway if the pipeline is stable —
// that case is handled upstream by training PPs for the output clause).

// PushdownResult reports what the pushdown pass did.
type PushdownResult struct {
	// Plan is the transformed plan (the input plan when Injected is false).
	Plan engine.Plan
	// Decision is the optimizer decision for the pushed-down predicate
	// (nil when no selection was found).
	Decision *Decision
	// Injected reports whether a PP filter was inserted.
	Injected bool
	// Reason explains why nothing was injected.
	Reason string
	// RewrittenPred is the predicate after unwinding renames, i.e. the form
	// matched against the PP corpus.
	RewrittenPred query.Pred
}

// InjectIntoPlan seeds a PP for the plan's selection predicate and pushes it
// to the scan. opts.UDFCost, when zero, is computed from the per-row costs
// of the operators the PP would shortcut (everything between the scan and
// the selection).
func (o *Optimizer) InjectIntoPlan(plan engine.Plan, opts Options) (*PushdownResult, error) {
	res := &PushdownResult{Plan: plan}
	selIdx := -1
	var pred query.Pred
	for i, op := range plan.Ops {
		if s, ok := op.(*engine.Select); ok {
			selIdx = i
			pred = s.Pred
			break // seed at the first (outermost-from-input) selection
		}
	}
	if selIdx == -1 {
		res.Reason = "plan has no selection to seed a PP from"
		return res, nil
	}
	if len(plan.Ops) == 0 {
		return nil, fmt.Errorf("optimizer: empty plan")
	}
	if _, ok := plan.Ops[0].(*engine.Scan); !ok {
		res.Reason = "plan does not start with a scan"
		return res, nil
	}

	// Push the placeholder from just below the selection toward the scan.
	shortcutCost := 0.0
	current := pred
	for i := selIdx - 1; i >= 1; i-- {
		next, cost, reason := pushBelow(plan.Ops[i], current)
		if reason != "" {
			res.Reason = fmt.Sprintf("pushdown stuck at %s: %s", plan.Ops[i].Name(), reason)
			return res, nil
		}
		current = next
		shortcutCost += cost
	}
	res.RewrittenPred = current

	if opts.UDFCost == 0 {
		opts.UDFCost = shortcutCost
	}
	dec, err := o.Optimize(current, opts)
	if err != nil {
		return nil, err
	}
	res.Decision = dec
	if !dec.Inject {
		res.Reason = "optimizer found no beneficial PP combination"
		return res, nil
	}
	ops := make([]engine.Operator, 0, len(plan.Ops)+1)
	ops = append(ops, plan.Ops[0], &engine.PPFilter{F: dec.Filter})
	ops = append(ops, plan.Ops[1:]...)
	res.Plan = engine.Plan{Ops: ops}
	res.Injected = true
	return res, nil
}

// pushBelow applies one pushdown rule: it returns the predicate as seen
// below op, the per-row cost the PP shortcut saves by sitting below op, and
// a non-empty reason when the placeholder cannot pass.
func pushBelow(op engine.Operator, pred query.Pred) (query.Pred, float64, string) {
	switch n := op.(type) {
	case *engine.Process:
		// UDFs materialize columns from the blob; the PP reads the raw blob
		// itself, so it always passes below, saving the UDF's work.
		return pred, n.P.Cost(), ""
	case *engine.Select:
		// X_p(σ_q(R)) ⇝ σ_q(X_p(R)): sound regardless of independence —
		// blobs dropped by X_p fail p no matter what q does; independence
		// only affects the reduction estimate (handled at runtime by the
		// A.5 feedback loop).
		return pred, 0, ""
	case *engine.Project:
		return pushBelowProject(n, pred)
	case *engine.FKJoin:
		// X_p(R ⋈_D S) ⇝ X_p(R) ⋈_D S requires p's columns to come from
		// the fact side R: columns supplied by the dimension table do not
		// exist below the join.
		dimCols := map[string]bool{}
		for _, r := range n.Table {
			for col := range r.Cols {
				if col != n.RightKey {
					dimCols[col] = true
				}
			}
		}
		for _, col := range query.Columns(pred) {
			if dimCols[col] {
				return nil, 0, fmt.Sprintf("predicate references dimension column %q", col)
			}
		}
		return pred, 0, ""
	case *engine.PPFilter:
		// An already-injected filter; pass below.
		return pred, 0, ""
	case *engine.Barrier:
		return pred, 0, ""
	case *engine.GroupReduce, *engine.Combine:
		return nil, 0, "cannot push below a grouping operator"
	}
	return nil, 0, fmt.Sprintf("unknown operator %T", op)
}

// pushBelowProject applies the two projection rules: renamed columns are
// rewritten back to their input names; predicates over computed columns
// cannot pass (the computation is an opaque function).
func pushBelowProject(p *engine.Project, pred query.Pred) (query.Pred, float64, string) {
	computed := map[string]bool{}
	for _, c := range p.Compute {
		computed[c.Name] = true
	}
	for _, col := range query.Columns(pred) {
		if computed[col] {
			return nil, 0, fmt.Sprintf("predicate references computed column %q", col)
		}
	}
	dropped := map[string]bool{}
	for _, d := range p.Drop {
		dropped[d] = true
	}
	rewritten := RewriteForRenames(pred, p.Rename)
	// A dropped column cannot appear above the projection at all, but a
	// rename that shadows a dropped name could confuse matters; verify the
	// rewritten predicate does not reference dropped columns.
	for _, col := range query.Columns(rewritten) {
		if dropped[col] {
			return nil, 0, fmt.Sprintf("predicate references dropped column %q", col)
		}
	}
	return rewritten, 0, ""
}
