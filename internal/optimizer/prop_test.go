package optimizer

// Property-based tests over random DNF/CNF predicates (fixed seeds, fully
// deterministic): every plan the costing DP emits must respect the
// query-wide accuracy bound, canonicalization must preserve semantics, and
// plan search must be deterministic under respelling — the invariant the
// serving plan cache relies on (equal canonical keys ⇒ interchangeable
// plans).

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"probpred/internal/query"
)

// propClauses is the pool random predicates draw from: corpus-covered
// clauses, negation-reuse clauses, and clauses with no trained PP (partial
// coverage is the common production case).
var propClauses = []string{
	"t=SUV", "t=sedan", "t=truck", "t=van",
	"c=red", "c=white", "c=black", "c=silver",
	"s>40", "s>50", "s>60", "s<65", "s<70",
	"t!=SUV", "c!=white", // negation reuse (§5.6)
	"s>45", "i=pt303", // no trained PP
}

// randPredStr builds a random CNF or DNF predicate string: 1-3 groups of
// 1-3 clauses each.
func randPredStr(rng *rand.Rand) string {
	groups := 1 + rng.Intn(3)
	var parts []string
	cnf := rng.Intn(2) == 0
	inner, outer := " | ", " & "
	if !cnf {
		inner, outer = " & ", " | "
	}
	for g := 0; g < groups; g++ {
		k := 1 + rng.Intn(3)
		var cls []string
		for i := 0; i < k; i++ {
			cls = append(cls, propClauses[rng.Intn(len(propClauses))])
		}
		parts = append(parts, "("+strings.Join(cls, inner)+")")
	}
	return strings.Join(parts, outer)
}

// respell returns a semantically identical, syntactically different form:
// kid order reversed at every level and leaves double-negated at random.
func respell(p query.Pred, rng *rand.Rand) query.Pred {
	switch n := p.(type) {
	case *query.And:
		kids := make([]query.Pred, len(n.Kids))
		for i, k := range n.Kids {
			kids[len(kids)-1-i] = respell(k, rng)
		}
		return &query.And{Kids: kids}
	case *query.Or:
		kids := make([]query.Pred, len(n.Kids))
		for i, k := range n.Kids {
			kids[len(kids)-1-i] = respell(k, rng)
		}
		return &query.Or{Kids: kids}
	case *query.Not:
		return &query.Not{Kid: respell(n.Kid, rng)}
	case *query.Clause:
		if rng.Intn(2) == 0 {
			return &query.Not{Kid: &query.Not{Kid: n}}
		}
		return n
	}
	return p
}

// planAccuracy recursively validates a costed plan's internal consistency
// and returns the node's accuracy: conjunction accuracy is the product of
// its kids', disjunction accuracy follows Eq. 10's composition.
func planAccuracy(t *testing.T, p *plan, expr string) float64 {
	t.Helper()
	if p.leaf != nil {
		if p.accuracy < -1e-12 || p.accuracy > 1+1e-12 {
			t.Fatalf("%s: leaf accuracy %v outside [0,1]", expr, p.accuracy)
		}
		return p.accuracy
	}
	if len(p.kids) != 2 {
		t.Fatalf("%s: internal plan node has %d kids, want 2", expr, len(p.kids))
	}
	a1 := planAccuracy(t, p.kids[0], expr)
	a2 := planAccuracy(t, p.kids[1], expr)
	want := a1 * a2
	if !p.conj {
		want = a1 + a2 - a1*a2
	}
	if math.Abs(p.accuracy-want) > 1e-9 {
		t.Fatalf("%s: node accuracy %v inconsistent with kids (%v, %v) -> want %v",
			expr, p.accuracy, a1, a2, want)
	}
	return p.accuracy
}

// TestPropEveryPlanRespectsAccuracyBound: for random predicates and
// accuracy targets, EVERY candidate expression the generator emits — not
// just the chosen one — costs out to a plan whose composed accuracy meets
// the query-wide target.
func TestPropEveryPlanRespectsAccuracyBound(t *testing.T) {
	corpus := miniCorpus(t, miniBlobs(400, 11))
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pred := query.MustParse(randPredStr(rng))
		for _, target := range []float64{1, 0.95, 0.9, 0.8} {
			g := &generator{corpus: corpus, domains: miniDomains(), maxPPs: 4, skip: map[string]bool{}}
			for _, e := range g.gen(pred) {
				p := costExpr(e, target, 100, costOpts{})
				if got := planAccuracy(t, p, e.String()); got < target-1e-9 {
					t.Errorf("seed %d pred %q target %v: candidate %q allocates accuracy %v",
						seed, pred.String(), target, e.String(), got)
				}
			}
		}
	}
}

// TestPropCanonicalizePreservesSemantics: Canonicalize(p) evaluates
// identically to p on every mini blob (when both evaluate cleanly), and
// respellings share the canonical key — the soundness requirement for
// keying a plan cache on CanonicalKey.
func TestPropCanonicalizePreservesSemantics(t *testing.T) {
	blobs := miniBlobs(150, 13)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		pred := query.MustParse(randPredStr(rng))
		canon := Canonicalize(pred)
		for _, b := range blobs {
			lk := miniLookup(b)
			want, err1 := pred.Eval(lk)
			got, err2 := canon.Eval(lk)
			if err1 != nil || err2 != nil {
				continue
			}
			if want != got {
				t.Fatalf("seed %d: %q and canonical %q disagree on blob %d: %v vs %v",
					seed, pred.String(), canon.String(), b.ID, want, got)
			}
		}
		key := CanonicalKey(pred)
		if k := CanonicalKey(canon); k != key {
			t.Fatalf("seed %d: canonicalization not idempotent: %q vs %q", seed, key, k)
		}
		if k := CanonicalKey(respell(pred, rng)); k != key {
			t.Fatalf("seed %d: respelling of %q changed key: %q vs %q", seed, pred.String(), k, key)
		}
	}
}

// TestPropSearchDeterministicUnderRespelling: plan search over a respelled
// predicate lands on the same plan key, the same injection decision, and
// the same plan cost — so a plan cached under the canonical key is a valid
// answer for every spelling that maps to it.
func TestPropSearchDeterministicUnderRespelling(t *testing.T) {
	corpus := miniCorpus(t, miniBlobs(400, 17))
	opt := New(corpus)
	const target, u = 0.9, 100.0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		pred := query.MustParse(randPredStr(rng))
		alt := respell(pred, rng)
		opts := Options{Accuracy: target, UDFCost: u, Domains: miniDomains()}
		d1, err := opt.Optimize(pred, opts)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := opt.Optimize(alt, opts)
		if err != nil {
			t.Fatal(err)
		}
		if PlanKey(pred, target) != PlanKey(alt, target) {
			t.Fatalf("seed %d: respelling changed plan key for %q", seed, pred.String())
		}
		if d1.Inject != d2.Inject {
			t.Errorf("seed %d: inject decision diverged for %q: %v vs %v",
				seed, pred.String(), d1.Inject, d2.Inject)
		}
		if math.Abs(d1.PlanCost-d2.PlanCost) > 1e-6 {
			t.Errorf("seed %d: plan cost diverged for %q: %v vs %v",
				seed, pred.String(), d1.PlanCost, d2.PlanCost)
		}
		// Re-optimizing the identical predicate must reproduce the decision
		// exactly (fresh search == what a cache would have returned).
		d3, err := opt.Optimize(pred, opts)
		if err != nil {
			t.Fatal(err)
		}
		if d3.Expr != d1.Expr || d3.PlanCost != d1.PlanCost || d3.Inject != d1.Inject {
			t.Errorf("seed %d: repeated search diverged for %q: %q/%v vs %q/%v",
				seed, pred.String(), d1.Expr, d1.PlanCost, d3.Expr, d3.PlanCost)
		}
	}
}
