package optimizer

import (
	"strings"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/engine"
	"probpred/internal/query"
)

// costProc materializes one attribute column from the mini-blob encoding.
type costProc struct {
	col  string
	cost float64
}

func (p costProc) Name() string  { return "UDF_" + p.col }
func (p costProc) Cost() float64 { return p.cost }
func (p costProc) Apply(r engine.Row) ([]engine.Row, error) {
	v, ok := miniLookup(r.Blob)(p.col)
	if !ok {
		return nil, nil
	}
	return []engine.Row{r.With(p.col, v)}, nil
}

func basePlan(blobs []blob.Blob, pred query.Pred, extra ...engine.Operator) engine.Plan {
	ops := []engine.Operator{
		&engine.Scan{Blobs: blobs},
		&engine.Process{P: costProc{col: "t", cost: 30}},
		&engine.Process{P: costProc{col: "c", cost: 25}},
	}
	ops = append(ops, extra...)
	ops = append(ops, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}
}

func TestInjectIntoPlanBasic(t *testing.T) {
	val := miniBlobs(1500, 41)
	opt := New(miniCorpus(t, val))
	pred := query.MustParse("t=SUV & c=red")
	plan := basePlan(val, pred)
	res, err := opt.InjectIntoPlan(plan, Options{Accuracy: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected {
		t.Fatalf("not injected: %s", res.Reason)
	}
	// UDFCost must have been summed from the shortcut operators (30+25).
	if res.Decision.BaselineCost != 55 {
		t.Fatalf("baseline cost = %v, want 55", res.Decision.BaselineCost)
	}
	// The filter sits right after the scan.
	if _, ok := res.Plan.Ops[1].(*engine.PPFilter); !ok {
		t.Fatalf("op[1] = %T, want PPFilter", res.Plan.Ops[1])
	}
	// The transformed plan produces a subset of the original's rows and
	// costs less.
	orig, err := engine.Run(plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	injected, err := engine.Run(res.Plan, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if injected.ClusterTime >= orig.ClusterTime {
		t.Fatalf("no cluster-time saving: %v vs %v", injected.ClusterTime, orig.ClusterTime)
	}
	if len(injected.Rows) > len(orig.Rows) {
		t.Fatal("PP added rows")
	}
}

func TestInjectIntoPlanRenameRule(t *testing.T) {
	// The query predicate uses the post-projection name vehType; the
	// pushdown must unwind the rename so PP[t=SUV] matches.
	val := miniBlobs(1500, 42)
	opt := New(miniCorpus(t, val))
	pred := query.MustParse("vehType=SUV")
	plan := basePlan(val, pred, &engine.Project{Rename: map[string]string{"t": "vehType"}})
	res, err := opt.InjectIntoPlan(plan, Options{Accuracy: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected {
		t.Fatalf("not injected: %s", res.Reason)
	}
	if res.RewrittenPred.String() != "t=SUV" {
		t.Fatalf("rewritten pred = %q", res.RewrittenPred)
	}
	if !strings.Contains(res.Decision.Expr, "PP[t=SUV]") {
		t.Fatalf("decision = %s", res.Decision.Expr)
	}
}

func TestInjectIntoPlanComputedColumnBlocks(t *testing.T) {
	val := miniBlobs(500, 43)
	opt := New(miniCorpus(t, val))
	pred := query.MustParse("fast=yes")
	plan := basePlan(val, pred, &engine.Project{Compute: []engine.ComputedCol{{
		Name: "fast",
		Fn: func(r engine.Row) (query.Value, error) {
			return query.Str("yes"), nil
		},
	}}})
	res, err := opt.InjectIntoPlan(plan, Options{Accuracy: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected {
		t.Fatal("must not push below an opaque computed column")
	}
	if !strings.Contains(res.Reason, "computed column") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestInjectIntoPlanFKJoinRule(t *testing.T) {
	val := miniBlobs(1500, 44)
	opt := New(miniCorpus(t, val))
	dim := []engine.Row{
		{Cols: map[string]query.Value{"t": query.Str("SUV"), "class": query.Str("large")}},
		{Cols: map[string]query.Value{"t": query.Str("sedan"), "class": query.Str("small")}},
		{Cols: map[string]query.Value{"t": query.Str("truck"), "class": query.Str("large")}},
		{Cols: map[string]query.Value{"t": query.Str("van"), "class": query.Str("large")}},
	}
	join := &engine.FKJoin{LeftKey: "t", RightKey: "t", Table: dim}

	// Fact-side predicate: pushes below the join.
	res, err := opt.InjectIntoPlan(basePlan(val, query.MustParse("t=SUV"), join), Options{Accuracy: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected {
		t.Fatalf("fact-side predicate should push below FK join: %s", res.Reason)
	}

	// Dimension-side predicate: blocked.
	res, err = opt.InjectIntoPlan(basePlan(val, query.MustParse("class=large"), join), Options{Accuracy: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected {
		t.Fatal("dimension-side predicate must not push below the join")
	}
	if !strings.Contains(res.Reason, "dimension column") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestInjectIntoPlanGroupingBlocks(t *testing.T) {
	val := miniBlobs(500, 45)
	opt := New(miniCorpus(t, val))
	plan := engine.Plan{Ops: []engine.Operator{
		&engine.Scan{Blobs: val},
		&engine.Process{P: costProc{col: "t", cost: 30}},
		&engine.GroupReduce{R: keyCount{}},
		&engine.Select{Pred: query.MustParse("t=SUV")},
	}}
	res, err := opt.InjectIntoPlan(plan, Options{Accuracy: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected {
		t.Fatal("must not push below a grouping operator")
	}
}

type keyCount struct{}

func (keyCount) Name() string  { return "KeyCount" }
func (keyCount) Cost() float64 { return 1 }
func (keyCount) Key(r engine.Row) (string, error) {
	v, err := r.Get("t")
	if err != nil {
		return "", err
	}
	return v.String(), nil
}
func (keyCount) Reduce(key string, rows []engine.Row) ([]engine.Row, error) {
	out := rows[0]
	out = out.With("count", query.Number(float64(len(rows))))
	return []engine.Row{out}, nil
}

func TestInjectIntoPlanNoSelect(t *testing.T) {
	val := miniBlobs(100, 46)
	opt := New(miniCorpus(t, val))
	plan := engine.Plan{Ops: []engine.Operator{&engine.Scan{Blobs: val}}}
	res, err := opt.InjectIntoPlan(plan, Options{Accuracy: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected || !strings.Contains(res.Reason, "no selection") {
		t.Fatalf("res = %+v", res)
	}
}

func TestInjectIntoPlanSelectBelowSelect(t *testing.T) {
	// A second σ between the seed point and the scan: the placeholder
	// passes below it (independence affects estimates, not soundness).
	val := miniBlobs(1500, 47)
	opt := New(miniCorpus(t, val))
	plan := engine.Plan{Ops: []engine.Operator{
		&engine.Scan{Blobs: val},
		&engine.Process{P: costProc{col: "s", cost: 20}},
		&engine.Select{Pred: query.MustParse("s>30")},
		&engine.Process{P: costProc{col: "t", cost: 30}},
		&engine.Select{Pred: query.MustParse("t=SUV")},
	}}
	// Seeding happens at the FIRST select; its predicate (s>30) is pushed
	// below only the s-UDF.
	res, err := opt.InjectIntoPlan(plan, Options{Accuracy: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected {
		if _, ok := res.Plan.Ops[1].(*engine.PPFilter); !ok {
			t.Fatalf("filter not after scan: %T", res.Plan.Ops[1])
		}
	}
	// Whether or not injection pays off, pushdown itself must not error and
	// the rewritten predicate must be the seeded one.
	if res.RewrittenPred == nil || res.RewrittenPred.String() != "s>30" {
		t.Fatalf("rewritten = %v", res.RewrittenPred)
	}
}
