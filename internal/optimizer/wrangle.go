package optimizer

import (
	"sort"

	"probpred/internal/query"
)

// The wrangler (A.2) greedily rewrites predicate clauses to improve
// matchability with the available PPs. Every rewrite yields a predicate that
// is implied by the original clause, so injected PPs remain necessary
// conditions.

// wrangleNotEqual rewrites a ≠ check over a finite discrete domain into the
// equivalent disjunction of = checks:
// t≠SUV ⇒ t=truck ∨ t=car ∨ ... (A.2 "Not-equals check").
func wrangleNotEqual(cl *query.Clause, domains map[string][]query.Value) (query.Pred, bool) {
	if cl.Op != query.OpNe {
		return nil, false
	}
	dom := domains[cl.Col]
	if len(dom) == 0 {
		return nil, false
	}
	var kids []query.Pred
	for _, v := range dom {
		if v.Equal(cl.Val) {
			continue
		}
		kids = append(kids, &query.Clause{Col: cl.Col, Op: query.OpEq, Val: v})
	}
	switch len(kids) {
	case 0:
		return nil, false
	case 1:
		return kids[0], true
	}
	return &query.Or{Kids: kids}, true
}

// relaxComparison returns the clause keys of available PPs that are implied
// by a numeric comparison clause by relaxing its bound (A.2 "Comparison"):
// s>60 ⇒ s>t for every t ≤ 60, so any available PP[s>t], t ≤ 60 applies.
// Results are ordered from tightest (most reductive) to loosest.
func relaxComparison(cl *query.Clause, available []string, parse func(string) (*query.Clause, bool)) []*query.Clause {
	if !cl.Val.IsNum {
		return nil
	}
	var lower bool // clause bounds from below (s > v / s >= v)
	switch cl.Op {
	case query.OpGt, query.OpGe:
		lower = true
	case query.OpLt, query.OpLe:
		lower = false
	default:
		return nil
	}
	var out []*query.Clause
	for _, key := range available {
		cand, ok := parse(key)
		if !ok || cand.Col != cl.Col || !cand.Val.IsNum {
			continue
		}
		if lower {
			// cl: s > v (or >=). Implied: s > t with t <= v, or s >= t with
			// t <= v.
			switch cand.Op {
			case query.OpGt:
				if cand.Val.Num <= cl.Val.Num {
					out = append(out, cand)
				}
			case query.OpGe:
				if cand.Val.Num <= cl.Val.Num {
					out = append(out, cand)
				}
			}
		} else {
			// cl: s < v (or <=). Implied: s < t with t >= v (strictness:
			// s<v ⇒ s<t for t>=v; s<=v ⇒ s<t for t>v and s<=t for t>=v; we
			// accept t >= v for both, a safe superset check below).
			switch cand.Op {
			case query.OpLt:
				if cand.Val.Num >= cl.Val.Num && impliesComparison(cl, cand) {
					out = append(out, cand)
				}
			case query.OpLe:
				if cand.Val.Num >= cl.Val.Num {
					out = append(out, cand)
				}
			}
		}
	}
	// Tightest first: for lower bounds larger t is tighter; for upper
	// bounds smaller t is tighter.
	sort.Slice(out, func(a, b int) bool {
		if lower {
			return out[a].Val.Num > out[b].Val.Num
		}
		return out[a].Val.Num < out[b].Val.Num
	})
	return out
}

// impliesComparison reports whether numeric clause a implies numeric clause
// b for same-column comparisons (exact edge-case handling for strictness).
func impliesComparison(a, b *query.Clause) bool {
	av, bv := a.Val.Num, b.Val.Num
	switch a.Op {
	case query.OpGt:
		return (b.Op == query.OpGt && bv <= av) || (b.Op == query.OpGe && bv <= av)
	case query.OpGe:
		return (b.Op == query.OpGt && bv < av) || (b.Op == query.OpGe && bv <= av)
	case query.OpLt:
		return (b.Op == query.OpLt && bv >= av) || (b.Op == query.OpLe && bv >= av)
	case query.OpLe:
		return (b.Op == query.OpLe && bv >= av) || (b.Op == query.OpLt && bv > av)
	case query.OpEq:
		switch b.Op {
		case query.OpEq:
			return bv == av
		case query.OpGe:
			return av >= bv
		case query.OpGt:
			return av > bv
		case query.OpLe:
			return av <= bv
		case query.OpLt:
			return av < bv
		}
	}
	return false
}

// noPredicateExpansion rewrites the trivial predicate over a finite-domain
// column into the equivalent complete disjunction (A.2 "No-predicate"):
// 1 ⇔ t=car ∨ t=truck ∨ t=SUV. Even predicate-free queries can then be
// seeded with PPs. It returns one expansion per column.
func noPredicateExpansion(domains map[string][]query.Value) []query.Pred {
	cols := make([]string, 0, len(domains))
	for c := range domains {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	var out []query.Pred
	for _, col := range cols {
		dom := domains[col]
		if len(dom) < 2 {
			continue
		}
		var kids []query.Pred
		allStrings := true
		for _, v := range dom {
			if v.IsNum {
				allStrings = false
				break
			}
			kids = append(kids, &query.Clause{Col: col, Op: query.OpEq, Val: v})
		}
		// Only categorical columns enumerate cleanly; numeric domains are
		// discretizations, not exhaustive value lists.
		if !allStrings {
			continue
		}
		out = append(out, &query.Or{Kids: kids})
	}
	return out
}
