package optimizer

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"probpred/internal/core"
	"probpred/internal/mathx"
	"probpred/internal/query"
)

// mathxNewRNG keeps the persistence test call sites short.
func mathxNewRNG(seed uint64) *mathx.RNG { return mathx.NewRNG(seed) }

func TestCorpusLookupDirect(t *testing.T) {
	val := miniBlobs(400, 1)
	c := miniCorpus(t, val)
	if c.Size() != 14 {
		t.Fatalf("corpus size = %d, want 14 (4 types + 5 colors + 5 speeds)", c.Size())
	}
	cl := query.MustParse("t=SUV").(*query.Clause)
	pp, ok := c.Lookup(cl)
	if !ok || pp.Clause != "t=SUV" {
		t.Fatal("direct lookup failed")
	}
}

func TestCorpusLookupNegationReuse(t *testing.T) {
	val := miniBlobs(400, 2)
	c := miniCorpus(t, val)
	cl := query.MustParse("c!=white").(*query.Clause)
	pp, ok := c.Lookup(cl)
	if !ok {
		t.Fatal("negation-reuse lookup failed")
	}
	if !pp.Negated() || pp.Clause != "c!=white" {
		t.Fatalf("negated PP wrong: %+v", pp)
	}
	// The derived PP must be cached (same pointer on second lookup).
	pp2, _ := c.Lookup(cl)
	if pp != pp2 {
		t.Fatal("negation cache miss")
	}
	// And it must actually filter: white blobs score lower.
	set := miniSet(t, val, "c!=white")
	if r := pp.Reduction(1); r < 0.2 {
		t.Fatalf("negated PP reduction = %v, selectivity = %v", r, set.Selectivity())
	}
}

func TestGenerateSingleClause(t *testing.T) {
	c := miniCorpus(t, miniBlobs(400, 3))
	g := &generator{corpus: c, domains: miniDomains(), maxPPs: 4}
	cands := g.gen(query.MustParse("t=SUV"))
	if len(cands) == 0 {
		t.Fatal("no candidates for a directly-covered clause")
	}
	if cands[0].String() != "PP[t=SUV]" {
		t.Fatalf("best candidate = %s", cands[0])
	}
}

func TestGenerateRelaxedComparison(t *testing.T) {
	// s>55 has no direct PP; the wrangler must relax to s>50 and s>40,
	// preferring the tighter bound.
	c := miniCorpus(t, miniBlobs(400, 4))
	g := &generator{corpus: c, domains: miniDomains(), maxPPs: 4}
	cands := g.gen(query.MustParse("s>55"))
	if len(cands) == 0 {
		t.Fatal("no relaxed candidates")
	}
	found := map[string]bool{}
	for _, e := range cands {
		found[e.String()] = true
	}
	if !found["PP[s>50]"] || !found["PP[s>40]"] {
		t.Fatalf("relaxations missing: %v", found)
	}
	if found["PP[s>60]"] {
		t.Fatal("s>60 is NOT implied by s>55 and must not appear")
	}
}

func TestGenerateNotEqualWrangling(t *testing.T) {
	c := miniCorpus(t, miniBlobs(400, 5))
	g := &generator{corpus: c, domains: miniDomains(), maxPPs: 5}
	cands := g.gen(query.MustParse("t!=sedan"))
	// Both the negation-reuse leaf and the ∨-of-equals rewrite should show.
	var hasLeaf, hasDisj bool
	for _, e := range cands {
		if e.String() == "PP[t!=sedan]" {
			hasLeaf = true
		}
		if strings.Contains(e.String(), "PP[t=SUV] | PP[t=truck] | PP[t=van]") {
			hasDisj = true
		}
	}
	if !hasLeaf || !hasDisj {
		for _, e := range cands {
			t.Logf("candidate: %s", e)
		}
		t.Fatalf("hasLeaf=%v hasDisj=%v", hasLeaf, hasDisj)
	}
}

func TestGenerateConjunction(t *testing.T) {
	c := miniCorpus(t, miniBlobs(400, 6))
	g := &generator{corpus: c, domains: miniDomains(), maxPPs: 4}
	cands := g.gen(query.MustParse("t=SUV & c=red"))
	found := map[string]bool{}
	for _, e := range cands {
		found[e.String()] = true
	}
	for _, want := range []string{"PP[t=SUV]", "PP[c=red]", "PP[t=SUV] & PP[c=red]"} {
		if !found[want] {
			t.Fatalf("missing candidate %q in %v", want, found)
		}
	}
}

func TestGenerateDisjunctionNeedsFullCoverage(t *testing.T) {
	c := miniCorpus(t, miniBlobs(400, 7))
	g := &generator{corpus: c, domains: miniDomains(), maxPPs: 4}
	// "x=1" has no PP and no domain; the disjunction cannot be covered.
	cands := g.gen(query.MustParse("t=SUV | x=1"))
	if len(cands) != 0 {
		t.Fatalf("uncoverable disjunction produced candidates: %v", cands)
	}
	// But a fully covered one can.
	cands = g.gen(query.MustParse("t=SUV | t=van"))
	found := false
	for _, e := range cands {
		if e.String() == "PP[t=SUV] | PP[t=van]" {
			found = true
		}
	}
	if !found {
		t.Fatal("covered disjunction missing")
	}
}

func TestGenerateRespectsMaxPPs(t *testing.T) {
	c := miniCorpus(t, miniBlobs(400, 8))
	g := &generator{corpus: c, domains: miniDomains(), maxPPs: 2}
	cands := g.gen(query.MustParse("t=SUV & c=red & s>60 & s<65"))
	for _, e := range cands {
		if n := NumLeaves(e); n > 2 {
			t.Fatalf("candidate %s has %d leaves, max 2", e, n)
		}
	}
}

// TestGenerateAllImplied verifies the core soundness property 𝒫 ⇒ ℰ for the
// Table 3 style predicate, by exhaustive evaluation over the domains. We map
// each PP leaf back to its clause and check implication of the clause
// expression.
func TestGenerateAllImplied(t *testing.T) {
	c := miniCorpus(t, miniBlobs(400, 9))
	domains := miniDomains()
	g := &generator{corpus: c, domains: domains, maxPPs: 4}
	preds := []string{
		"(t=SUV | t=van) & c!=white & s>60",
		"t=SUV & c=red",
		"t!=sedan",
		"s>55 & s<68",
		"t in {sedan, truck}",
	}
	for _, ps := range preds {
		p := query.MustParse(ps)
		for _, e := range g.gen(p) {
			impliedPred, err := exprToPred(e)
			if err != nil {
				t.Fatalf("%s: %v", e, err)
			}
			if !query.Implies(p, impliedPred, domains) {
				t.Errorf("candidate %s is NOT implied by %s", e, ps)
			}
		}
	}
}

// exprToPred maps an Expr back to the clause-level predicate it tests.
func exprToPred(e Expr) (query.Pred, error) {
	switch n := e.(type) {
	case *Leaf:
		return query.Parse(n.PP.Clause)
	case *Conj:
		kids := make([]query.Pred, len(n.Kids))
		for i, k := range n.Kids {
			p, err := exprToPred(k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		return &query.And{Kids: kids}, nil
	case *Disj:
		kids := make([]query.Pred, len(n.Kids))
		for i, k := range n.Kids {
			p, err := exprToPred(k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		return &query.Or{Kids: kids}, nil
	}
	return nil, nil
}

func TestCostConjunctionFormula(t *testing.T) {
	val := miniBlobs(1000, 10)
	c := miniCorpus(t, val)
	ppT, _ := c.Get("t=SUV")
	ppC, _ := c.Get("c=red")
	e := &Conj{Kids: []Expr{&Leaf{PP: ppT}, &Leaf{PP: ppC}}}
	p := costExpr(e, 1, 100, costOpts{})
	r1, r2 := ppT.Reduction(1), ppC.Reduction(1)
	wantR := r1 + r2 - r1*r2
	if math.Abs(p.reduction-wantR) > 1e-9 {
		t.Fatalf("conj reduction = %v, want %v (Eq. 9)", p.reduction, wantR)
	}
	c1, c2 := ppT.Cost(), ppC.Cost()
	wantC := math.Min(c1+(1-r1)*c2, c2+(1-r2)*c1)
	if math.Abs(p.cost-wantC) > 1e-9 {
		t.Fatalf("conj cost = %v, want %v (Eq. 9)", p.cost, wantC)
	}
}

func TestCostDisjunctionFormula(t *testing.T) {
	val := miniBlobs(1000, 11)
	c := miniCorpus(t, val)
	ppA, _ := c.Get("t=SUV")
	ppB, _ := c.Get("t=van")
	e := &Disj{Kids: []Expr{&Leaf{PP: ppA}, &Leaf{PP: ppB}}}
	p := costExpr(e, 1, 100, costOpts{})
	r1, r2 := ppA.Reduction(1), ppB.Reduction(1)
	if math.Abs(p.reduction-r1*r2) > 1e-9 {
		t.Fatalf("disj reduction = %v, want %v (Eq. 10)", p.reduction, r1*r2)
	}
	c1, c2 := ppA.Cost(), ppB.Cost()
	wantC := math.Min(c1+r1*c2, c2+r2*c1)
	if math.Abs(p.cost-wantC) > 1e-9 {
		t.Fatalf("disj cost = %v, want %v (Eq. 10)", p.cost, wantC)
	}
}

func TestRelaxedAccuracyImprovesReduction(t *testing.T) {
	val := miniBlobs(2000, 12)
	c := miniCorpus(t, val)
	pp, _ := c.Get("s>60")
	e := &Leaf{PP: pp}
	strict := costExpr(e, 1, 100, costOpts{})
	relaxed := costExpr(e, 0.9, 100, costOpts{})
	if relaxed.reduction <= strict.reduction {
		t.Fatalf("relaxing accuracy did not improve reduction: %v vs %v",
			relaxed.reduction, strict.reduction)
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	val := miniBlobs(2000, 13)
	c := miniCorpus(t, val)
	opt := New(c)
	dec, err := opt.Optimize(query.MustParse("t=SUV & c=red"), Options{
		Accuracy: 0.95, UDFCost: 100, Domains: miniDomains(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("expected injection for selective predicate with expensive UDF")
	}
	if dec.PlanCost >= dec.BaselineCost {
		t.Fatalf("plan cost %v not below baseline %v", dec.PlanCost, dec.BaselineCost)
	}
	if dec.NumCandidates < 3 {
		t.Fatalf("candidates = %d, want several", dec.NumCandidates)
	}
	// The conjunction of both PPs should win for such a selective predicate.
	if dec.Expr != "PP[t=SUV] & PP[c=red]" {
		t.Logf("chosen: %s (alternatives below)", dec.Expr)
		for _, a := range dec.Alternatives {
			t.Logf("  %s r=%.3f c=%.2f plan=%.2f", a.Expr, a.Reduction, a.Cost, a.PlanCost)
		}
	}
	if dec.Filter == nil || dec.NumPPs == 0 {
		t.Fatal("no compiled filter")
	}
}

func TestOptimizeFilterSoundness(t *testing.T) {
	// At a=1, no blob satisfying the predicate may be dropped on the
	// validation distribution.
	val := miniBlobs(2000, 14)
	c := miniCorpus(t, val)
	opt := New(c)
	pred := query.MustParse("(t=SUV | t=van) & c!=white")
	dec, err := opt.Optimize(pred, Options{Accuracy: 1, UDFCost: 100, Domains: miniDomains()})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Skip("no injection at a=1 for this corpus")
	}
	set := miniSet(t, val, "(t=SUV | t=van) & c!=white")
	for i, b := range set.Blobs {
		if !set.Labels[i] {
			continue
		}
		if pass, _ := dec.Filter.Test(b); !pass {
			t.Fatalf("filter dropped a positive blob %d at a=1", i)
		}
	}
}

func TestOptimizeNoInjectionWhenUDFCheap(t *testing.T) {
	val := miniBlobs(1000, 15)
	c := miniCorpus(t, val)
	opt := New(c)
	dec, err := opt.Optimize(query.MustParse("t=SUV"), Options{
		Accuracy: 0.95, UDFCost: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Inject {
		t.Fatalf("injected despite r <= c/u: plan=%v baseline=%v", dec.PlanCost, dec.BaselineCost)
	}
	if dec.Filter != nil {
		t.Fatal("filter should be nil when not injecting")
	}
}

func TestOptimizeUncoveredPredicate(t *testing.T) {
	opt := New(NewCorpus())
	dec, err := opt.Optimize(query.MustParse("z=1"), Options{Accuracy: 0.9, UDFCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Inject || dec.NumCandidates != 0 {
		t.Fatalf("empty corpus should not inject: %+v", dec)
	}
}

func TestOptimizeOptionValidation(t *testing.T) {
	opt := New(NewCorpus())
	if _, err := opt.Optimize(query.True{}, Options{Accuracy: 1.5}); err == nil {
		t.Fatal("expected error for accuracy > 1")
	}
	if _, err := opt.Optimize(query.True{}, Options{Accuracy: 0.9, UDFCost: -1}); err == nil {
		t.Fatal("expected error for negative UDF cost")
	}
}

func TestOptimizeNoPredicateQueryDependenceLoop(t *testing.T) {
	// A.2's no-predicate wrangling expands true into the complete-domain
	// disjunction of type PPs. Under Eq. 10's independence assumption the
	// optimizer estimates a sizable reduction — but the type PPs are
	// mutually exclusive, the textbook dependent case of A.5: at runtime
	// every blob passes its own type's PP and the observed reduction is ~0.
	// The feedback loop must flag the pairs and stop combining them.
	val := miniBlobs(1000, 16)
	c := miniCorpus(t, val)
	opt := New(c)
	dec, err := opt.Optimize(query.True{}, Options{
		Accuracy: 0.95, UDFCost: 100, Domains: miniDomains(), MaxPPs: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumCandidates == 0 {
		t.Fatal("no-predicate wrangling produced no candidates")
	}
	if !dec.Inject {
		t.Skip("optimizer declined; dependence loop untestable here")
	}
	// Iterate the observe/re-optimize loop: each round executes the chosen
	// plan, observes the (near-zero) real reduction, and flags the plan's
	// pairs. Within a few rounds no dependent combination remains.
	for round := 0; round < 5 && dec.Inject && dec.NumPPs > 1; round++ {
		dropped := 0
		for _, b := range val {
			if pass, _ := dec.Filter.Test(b); !pass {
				dropped++
			}
		}
		observed := float64(dropped) / float64(len(val))
		if observed > 0.05 {
			t.Fatalf("complete-domain disjunction dropped %v of blobs", observed)
		}
		opt.ObserveRuntime(dec, observed)
		if opt.DependentPairs() == 0 {
			t.Fatal("dependence not flagged for mutually exclusive PPs")
		}
		dec, err = opt.Optimize(query.True{}, Options{
			Accuracy: 0.95, UDFCost: 100, Domains: miniDomains(), MaxPPs: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if dec.Inject && dec.NumPPs > 1 {
		t.Fatalf("flagged pairs still combined after feedback rounds: %s", dec.Expr)
	}
}

func TestObserveRuntimeFlagsDependence(t *testing.T) {
	val := miniBlobs(2000, 17)
	c := miniCorpus(t, val)
	opt := New(c)
	pred := query.MustParse("t=SUV & c=red")
	dec, err := opt.Optimize(pred, Options{Accuracy: 0.95, UDFCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.NumPPs < 2 {
		t.Skip("need a multi-PP plan for this test")
	}
	// Report an observation wildly off the estimate.
	opt.ObserveRuntime(dec, dec.Reduction-0.5)
	if opt.DependentPairs() == 0 {
		t.Fatal("dependence not flagged")
	}
	// Re-optimizing must avoid combining the flagged pair.
	dec2, err := opt.Optimize(pred, Options{Accuracy: 0.95, UDFCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Inject && dec2.NumPPs > 1 {
		t.Fatalf("flagged pair still combined: %s", dec2.Expr)
	}
	// A close observation must not flag.
	opt2 := New(miniCorpus(t, val))
	dec3, _ := opt2.Optimize(pred, Options{Accuracy: 0.95, UDFCost: 100})
	opt2.ObserveRuntime(dec3, dec3.Reduction+0.05)
	if opt2.DependentPairs() != 0 {
		t.Fatal("spurious dependence flag")
	}
}

func TestRewriteForRenames(t *testing.T) {
	p := query.MustParse("vehType=SUV & speed>60")
	rewritten := RewriteForRenames(p, map[string]string{"t": "vehType", "s": "speed"})
	if rewritten.String() != "t=SUV & s>60" {
		t.Fatalf("rewritten = %q", rewritten.String())
	}
	// Not/Or structure preserved.
	p2 := query.MustParse("!(vehType=SUV | speed>60)")
	r2 := RewriteForRenames(p2, map[string]string{"t": "vehType"})
	if !strings.Contains(r2.String(), "t=SUV") || !strings.Contains(r2.String(), "speed>60") {
		t.Fatalf("r2 = %q", r2.String())
	}
}

func TestCanonicalKey(t *testing.T) {
	a := CanonicalKey(query.MustParse("c=red & t=SUV"))
	b := CanonicalKey(query.MustParse("t=SUV & c=red"))
	if a != b {
		t.Fatalf("canonical keys differ: %q vs %q", a, b)
	}
	if a != "c=red & t=SUV" {
		t.Fatalf("canonical key = %q", a)
	}
}

func TestCompositePPPreferred(t *testing.T) {
	// Train a composite PP for the conjunction with a much better cost than
	// any decomposition; the generator should include it and the optimizer
	// should pick it.
	val := miniBlobs(2000, 18)
	c := miniCorpus(t, val)
	set := miniSet(t, val, "t=SUV & c=red")
	// Perfect composite scorer: exact on both attributes.
	composite, err := core.NewPP("c=red & t=SUV", "test",
		identityReducer(), conjScorer{}, set)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(composite)
	opt := New(c)
	dec, err := opt.Optimize(query.MustParse("t=SUV & c=red"), Options{
		Accuracy: 0.95, UDFCost: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject {
		t.Fatal("expected injection")
	}
	found := false
	for _, a := range dec.Alternatives {
		if a.Expr == "PP[c=red & t=SUV]" {
			found = true
		}
	}
	if !found {
		t.Fatal("composite PP not among candidates")
	}
}

type conjScorer struct{}

func (conjScorer) Score(x []float64) float64 {
	if x[fType] == 1 && x[fColor] == 3 { // SUV && red
		return 1
	}
	return -1
}
func (conjScorer) Name() string  { return "conj" }
func (conjScorer) Cost() float64 { return 0.8 }

func TestGenerateComplementConjunction(t *testing.T) {
	// Table 10's alternates: t=SUV ∨ t=van also rewrites to the complement
	// conjunction PP[t!=sedan] & PP[t!=truck] (via negation reuse) and to
	// the single best ≠ leaf.
	c := miniCorpus(t, miniBlobs(600, 50))
	g := &generator{corpus: c, domains: miniDomains(), maxPPs: 4}
	cands := g.gen(query.MustParse("t=SUV | t=van"))
	found := map[string]bool{}
	for _, e := range cands {
		found[e.String()] = true
	}
	if !found["PP[t=SUV] | PP[t=van]"] {
		t.Fatalf("missing disjunction plan: %v", found)
	}
	if !found["PP[t!=sedan] & PP[t!=truck]"] {
		t.Fatalf("missing complement conjunction: %v", found)
	}
	single := found["PP[t!=sedan]"] || found["PP[t!=truck]"]
	if !single {
		t.Fatalf("missing single-≠ alternate: %v", found)
	}
	// Soundness of the new candidates.
	domains := miniDomains()
	p := query.MustParse("t=SUV | t=van")
	for _, e := range cands {
		ip, err := exprToPred(e)
		if err != nil {
			t.Fatal(err)
		}
		if !query.Implies(p, ip, domains) {
			t.Errorf("candidate %s not implied", e)
		}
	}
}

func TestGenerateComplementNeedsFullDomainCoverage(t *testing.T) {
	// With a domain value whose = PP is missing (so ≠ cannot be derived),
	// the complement rewrite must not appear.
	val := miniBlobs(600, 51)
	c := NewCorpus()
	// Only two type PPs: SUV and van — sedan/truck PPs absent.
	id := identityReducer()
	for _, typ := range []string{"SUV", "van"} {
		idx := 0.0
		for i, name := range miniTypes {
			if name == typ {
				idx = float64(i)
			}
		}
		set := miniSet(t, val, "t="+typ)
		pp, err := core.NewPP("t="+typ, "test", id, exactScorer{dim: fType, want: idx, cost: 1}, set)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(pp)
	}
	g := &generator{corpus: c, domains: miniDomains(), maxPPs: 4}
	for _, e := range g.gen(query.MustParse("t=SUV | t=van")) {
		if strings.Contains(e.String(), "!=") {
			t.Fatalf("complement plan %s should need all ≠ PPs", e)
		}
	}
}

func TestCorpusSaveLoad(t *testing.T) {
	val := miniBlobs(600, 52)
	// Build a corpus with real trainable PPs (test scorers are not
	// gob-registered; use SVMs over the mini blobs).
	c := NewCorpus()
	for i, clause := range []string{"t=SUV", "t=van", "c=red"} {
		set := miniSet(t, val, clause)
		train, v, _ := set.Split(mathxNewRNG(uint64(i)+400), 0.7, 0.3)
		pp, err := core.Train(clause, train, v, core.TrainConfig{Approach: "Raw+SVM", Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		c.Add(pp)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != c.Size() {
		t.Fatalf("size mismatch: %d vs %d", loaded.Size(), c.Size())
	}
	// The reloaded corpus must optimize identically.
	pred := query.MustParse("(t=SUV | t=van) & c=red")
	d1, err := New(c).Optimize(pred, Options{Accuracy: 0.95, UDFCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(loaded).Optimize(pred, Options{Accuracy: 0.95, UDFCost: 100})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Expr != d2.Expr || d1.Reduction != d2.Reduction {
		t.Fatalf("decisions differ after reload: %q/%v vs %q/%v",
			d1.Expr, d1.Reduction, d2.Expr, d2.Reduction)
	}
	// Negation reuse still works on the reloaded corpus.
	if _, ok := loaded.Lookup(query.MustParse("t!=SUV").(*query.Clause)); !ok {
		t.Fatal("negation reuse broken after reload")
	}
}

func TestLoadCorpusGarbage(t *testing.T) {
	if _, err := LoadCorpus(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestOptimizeUnsatisfiablePredicate(t *testing.T) {
	opt := New(NewCorpus()) // even an empty corpus suffices
	dec, err := opt.Optimize(query.MustParse("s>60 & s<50"), Options{
		Accuracy: 1, UDFCost: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.Reduction != 1 {
		t.Fatalf("unsatisfiable predicate not short-circuited: %+v", dec)
	}
	if pass, cost := dec.Filter.Test(miniBlobs(1, 1)[0]); pass || cost != 0 {
		t.Fatalf("drop-all filter wrong: pass=%v cost=%v", pass, cost)
	}
}

func TestOptimizeSimplifiesBeforeMatching(t *testing.T) {
	// A duplicated clause and a true conjunct must not confuse matching.
	val := miniBlobs(500, 55)
	opt := New(miniCorpus(t, val))
	dec, err := opt.Optimize(query.MustParse("t=SUV & t=SUV & true"), Options{
		Accuracy: 0.95, UDFCost: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Inject || dec.Expr != "PP[t=SUV]" {
		t.Fatalf("decision = %+v", dec)
	}
}

// TestOptimizeSoundnessQuick fuzzes random predicates against the mini
// corpus and verifies, for every injected decision:
//  1. soundness — the expression is implied by the predicate;
//  2. the compiled filter's per-blob cost never exceeds the sum of its
//     leaves' costs;
//  3. at a=1, no blob satisfying the predicate on the *corpus validation
//     distribution* is dropped.
func TestOptimizeSoundnessQuick(t *testing.T) {
	val := miniBlobs(1500, 60)
	opt := New(miniCorpus(t, val))
	domains := miniDomains()
	rng := mathx.NewRNG(61)
	for trial := 0; trial < 60; trial++ {
		pred := randomMiniPredicate(rng)
		dec, err := opt.Optimize(pred, Options{Accuracy: 1, UDFCost: 100, Domains: domains})
		if err != nil {
			t.Fatalf("%s: %v", pred, err)
		}
		if !dec.Inject {
			continue
		}
		// 1. Soundness of the chosen expression.
		exprPred, err := query.Parse(strings.NewReplacer("PP[", "(", "]", ")").Replace(dec.Expr))
		if err != nil {
			t.Fatalf("cannot parse decision expr %q: %v", dec.Expr, err)
		}
		if !query.Implies(pred, exprPred, domains) {
			t.Fatalf("decision %q not implied by %s", dec.Expr, pred)
		}
		// 2. Cost bound and 3. zero false negatives at a=1.
		leafCostSum := 0.0
		for range dec.LeafClauses() {
			leafCostSum += 1.3 // max leaf cost in the mini corpus (speed PPs)
		}
		for i, b := range val {
			ok, evalErr := pred.Eval(miniLookup(b))
			if evalErr != nil {
				continue
			}
			pass, cost := dec.Filter.Test(b)
			if cost > leafCostSum+1e-9 {
				t.Fatalf("%s: filter cost %v exceeds leaf sum %v", pred, cost, leafCostSum)
			}
			if ok && !pass {
				t.Fatalf("%s: dropped satisfying blob %d at a=1 (expr %s)", pred, i, dec.Expr)
			}
		}
	}
}

// randomMiniPredicate draws a random 1-3 clause conjunction over the mini
// traffic columns, mixing =, ≠, in-sets and speed comparisons.
func randomMiniPredicate(rng *mathx.RNG) query.Pred {
	var kids []query.Pred
	cols := rng.Perm(3)
	n := 1 + rng.Intn(3)
	for _, c := range cols[:n] {
		switch c {
		case 0: // type
			v := miniTypes[rng.Intn(len(miniTypes))]
			if rng.Bernoulli(0.3) {
				kids = append(kids, &query.Clause{Col: "t", Op: query.OpNe, Val: query.Str(v)})
			} else if rng.Bernoulli(0.3) {
				w := miniTypes[rng.Intn(len(miniTypes))]
				kids = append(kids, &query.Or{Kids: []query.Pred{
					&query.Clause{Col: "t", Op: query.OpEq, Val: query.Str(v)},
					&query.Clause{Col: "t", Op: query.OpEq, Val: query.Str(w)},
				}})
			} else {
				kids = append(kids, &query.Clause{Col: "t", Op: query.OpEq, Val: query.Str(v)})
			}
		case 1: // color
			v := miniColors[rng.Intn(len(miniColors))]
			op := query.OpEq
			if rng.Bernoulli(0.4) {
				op = query.OpNe
			}
			kids = append(kids, &query.Clause{Col: "c", Op: op, Val: query.Str(v)})
		default: // speed
			bound := float64(40 + 5*rng.Intn(7))
			op := query.OpGt
			if rng.Bernoulli(0.5) {
				op = query.OpLt
			}
			kids = append(kids, &query.Clause{Col: "s", Op: op, Val: query.Number(bound)})
		}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return &query.And{Kids: kids}
}
