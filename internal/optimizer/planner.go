package optimizer

import (
	"fmt"
	"sort"

	"probpred/internal/query"
)

// Training-set planning (Figure 3b's batch "outer loop" + Appendix A.1):
// a batch system looks at historical queries, infers the simple clauses
// that appear frequently, and decides which PPs to train under a training
// budget. A.1 shows the exact problem is NP-hard (set cover reduces to
// it), so SelectTrainingSet uses the standard greedy marginal
// benefit-per-cost approximation.

// InferClauses extracts the simple clauses of a historical workload with
// their frequencies: every clause of every predicate, in canonical form,
// plus the equality forms a ≠ clause wrangles into when domains are known
// (so the corpus covers them; A.2).
func InferClauses(preds []query.Pred, domains map[string][]query.Value) map[string]int {
	freq := map[string]int{}
	for _, p := range preds {
		seen := map[string]bool{}
		for _, cl := range query.Clauses(query.NNF(p)) {
			add := func(c *query.Clause) {
				key := c.String()
				if !seen[key] {
					seen[key] = true
					freq[key]++
				}
			}
			add(cl)
			if cl.Op == query.OpNe {
				// The ≠ clause is served by negation reuse of its = twin;
				// count the twin, which is what actually gets trained.
				add(cl.Negate())
			}
			if rewritten, ok := wrangleNotEqual(cl, domains); ok {
				for _, sub := range query.Clauses(rewritten) {
					add(sub)
				}
			}
		}
	}
	return freq
}

// TrainingCandidate is one PP the planner may decide to train.
type TrainingCandidate struct {
	// Clause is the canonical simple clause.
	Clause string
	// TrainCost is the cost of training this PP, in any consistent unit.
	TrainCost float64
	// Queries lists the indices of workload queries this PP would benefit,
	// with the per-query reduction estimate achieved when it is available.
	Queries map[int]float64
}

// TrainingPlan is the planner's output.
type TrainingPlan struct {
	// Clauses lists the chosen PPs in selection order.
	Clauses []string
	// TotalCost is the summed training cost.
	TotalCost float64
	// Benefit is Σ over queries of the best reduction available from the
	// chosen set (the objective of Eq. 11).
	Benefit float64
	// Covered is how many workload queries have at least one useful PP.
	Covered int
}

// SelectTrainingSet approximates Eq. 11: choose a subset of candidates
// whose training cost fits the budget, maximizing the summed per-query
// benefit, where each query's benefit is the best reduction among its
// chosen PPs. Greedy by marginal benefit per unit cost — the classic
// (1−1/e) approximation for this coverage-type objective.
func SelectTrainingSet(candidates []TrainingCandidate, budget float64) (*TrainingPlan, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("optimizer: training budget must be positive, got %v", budget)
	}
	for _, c := range candidates {
		if c.TrainCost <= 0 {
			return nil, fmt.Errorf("optimizer: candidate %q has non-positive training cost", c.Clause)
		}
	}
	// bestByQuery[q] is the best reduction currently available to query q.
	bestByQuery := map[int]float64{}
	chosen := map[int]bool{}
	plan := &TrainingPlan{}
	for {
		bestIdx := -1
		bestRatio := 0.0
		bestGain := 0.0
		for i, c := range candidates {
			if chosen[i] || plan.TotalCost+c.TrainCost > budget {
				continue
			}
			gain := 0.0
			for q, r := range c.Queries {
				if r > bestByQuery[q] {
					gain += r - bestByQuery[q]
				}
			}
			if gain <= 0 {
				continue
			}
			ratio := gain / c.TrainCost
			if ratio > bestRatio {
				bestRatio, bestIdx, bestGain = ratio, i, gain
			}
		}
		if bestIdx == -1 {
			break
		}
		c := candidates[bestIdx]
		chosen[bestIdx] = true
		plan.Clauses = append(plan.Clauses, c.Clause)
		plan.TotalCost += c.TrainCost
		plan.Benefit += bestGain
		for q, r := range c.Queries {
			if r > bestByQuery[q] {
				bestByQuery[q] = r
			}
		}
	}
	for _, r := range bestByQuery {
		if r > 0 {
			plan.Covered++
		}
	}
	sort.Strings(plan.Clauses)
	return plan, nil
}
