package metrics

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "help")
	g := r.Gauge("g", "help")
	h := r.Histogram("h", "help")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All methods must be safe on nil receivers.
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	g.Set(4)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram state")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "Requests.", L("op", "scan"))
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // counters must never go down; negative adds are dropped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("requests_total", "Requests.", L("op", "scan")); again != c {
		t.Fatal("same name+labels must resolve to the same counter")
	}
	if other := r.Counter("requests_total", "Requests.", L("op", "filter")); other == c {
		t.Fatal("different labels must resolve to a different series")
	}

	g := r.Gauge("temp", "Temperature.")
	g.Set(40)
	g.Add(-15)
	if got := g.Value(); got != 25 {
		t.Fatalf("gauge = %v, want 25", got)
	}
}

func TestKindMismatchReturnsNil(t *testing.T) {
	r := New()
	if r.Counter("m", "h") == nil {
		t.Fatal("first registration failed")
	}
	if r.Gauge("m", "h") != nil {
		t.Fatal("re-registering a counter as a gauge must yield nil")
	}
	if r.Histogram("m", "h") != nil {
		t.Fatal("re-registering a counter as a histogram must yield nil")
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	r := New()
	a := r.Counter("x", "h", L("a", "1"), L("b", "2"))
	b := r.Counter("x", "h", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order must not create distinct series")
	}
}

// TestHistogramQuantileErrorBound verifies the log-bucketing contract: with
// bucketsPerOctave buckets per power of two, Quantile returns the rank
// bucket's upper bound, so it can overestimate the true quantile by at most a
// factor of 2^(1/bucketsPerOctave) and never underestimate it.
func TestHistogramQuantileErrorBound(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "h")
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Span many octaves: 10^-3 .. 10^6.
		v := math.Pow(10, rng.Float64()*9-3)
		vals = append(vals, v)
		h.Observe(v)
	}
	factor := math.Pow(2, 1.0/float64(bucketsPerOctave))
	sorted := append([]float64(nil), vals...)
	sortFloats(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := sorted[int(q*float64(len(sorted)-1))]
		got := h.Quantile(q)
		if got < truth/factor || got > truth*factor*1.001 {
			t.Fatalf("q%.2f = %v, true %v: outside ±%.3fx bound", q, got, truth, factor)
		}
	}
	if c := h.Count(); c != 20000 {
		t.Fatalf("count = %d", c)
	}
	wantSum := 0.0
	for _, v := range vals {
		wantSum += v
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	r := New()
	h := r.Histogram("edge", "h")
	h.Observe(0)           // underflow bucket
	h.Observe(-5)          // underflow bucket
	h.Observe(math.NaN())  // underflow bucket (not representable)
	h.Observe(1e300)       // overflow bucket
	h.Observe(math.Inf(1)) // overflow bucket
	h.Observe(1)           // normal
	if c := h.Count(); c != 6 {
		t.Fatalf("count = %d, want 6", c)
	}
	// Quantile must stay finite and monotone even with under/overflow mass.
	if q := h.Quantile(0.01); math.IsNaN(q) {
		t.Fatal("low quantile NaN")
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) && q < 1e300 {
		t.Fatalf("high quantile %v should land in overflow", q)
	}
}

// TestConcurrentAccess exercises the registry under -race: concurrent
// registration of the same and different series plus concurrent increments
// and observations.
func TestConcurrentAccess(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total", "h", L("w", "shared")).Inc()
				r.Counter("ops_total", "h", L("w", strconv.Itoa(w))).Add(2)
				r.Gauge("depth", "h").Set(float64(i))
				r.Histogram("lat", "h", L("w", "shared")).Observe(float64(i%100) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total", "h", L("w", "shared")).Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %v, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter("ops_total", "h", L("w", strconv.Itoa(w))).Value(); got != 2*perWorker {
			t.Fatalf("worker %d counter = %v, want %d", w, got, 2*perWorker)
		}
	}
	h := r.Histogram("lat", "h", L("w", "shared"))
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// promLine matches a Prometheus 0.0.4 sample line: name{labels} value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

// TestPromExposition golden-checks that WriteProm emits parseable Prometheus
// text: every line is a comment or a sample, HELP/TYPE precede their family,
// histogram buckets are cumulative with a +Inf bucket equal to _count.
func TestPromExposition(t *testing.T) {
	r := New()
	r.Counter("runs_total", "Total runs.").Add(3)
	r.Counter("rows_total", "Rows with \"quotes\" and \\slashes\\.", L("op", "σ[a=\"x\"\nb]")).Add(7)
	r.Gauge("reduction", "Estimated reduction.").Set(0.85)
	h := r.Histogram("cost_vms", "Cost.", L("op", "scan"))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	typed := map[string]string{}
	helped := map[string]bool{}
	samples := map[string][]float64{}
	var lastMeta string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helped[parts[2]] = true
			lastMeta = parts[2]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			lastMeta = parts[2]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != lastMeta {
			t.Fatalf("sample %q not under its family's HELP/TYPE block (last meta %q)", name, lastMeta)
		}
		v, err := strconv.ParseFloat(strings.Replace(m[3], "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[name] = append(samples[name], v)
		if m[2] != "" {
			inner := strings.Trim(m[2], "{}")
			for _, pair := range splitLabelPairs(inner) {
				if !regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`).MatchString(pair) {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, fam := range []string{"runs_total", "rows_total", "reduction", "cost_vms"} {
		if !helped[fam] {
			t.Fatalf("family %s missing HELP", fam)
		}
		if typed[fam] == "" {
			t.Fatalf("family %s missing TYPE", fam)
		}
	}
	if typed["runs_total"] != "counter" || typed["reduction"] != "gauge" || typed["cost_vms"] != "histogram" {
		t.Fatalf("wrong types: %v", typed)
	}

	// Histogram structure: cumulative non-decreasing buckets, +Inf == count.
	buckets := samples["cost_vms_bucket"]
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", buckets)
		}
	}
	count := samples["cost_vms_count"]
	if len(count) != 1 || count[0] != 100 {
		t.Fatalf("cost_vms_count = %v, want [100]", count)
	}
	if last := buckets[len(buckets)-1]; last != 100 {
		t.Fatalf("+Inf bucket = %v, want 100", last)
	}
	sum := samples["cost_vms_sum"]
	if len(sum) != 1 || sum[0] != 5050 {
		t.Fatalf("cost_vms_sum = %v, want [5050]", sum)
	}
}

// splitLabelPairs splits k1="v1",k2="v2" respecting escaped quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestSnapshotAndJSON(t *testing.T) {
	r := New()
	r.Counter("c_total", "h").Add(2)
	h := r.Histogram("lat", "h")
	for i := 0; i < 1000; i++ {
		h.Observe(10)
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot families = %d, want 2", len(snap))
	}
	byName := map[string]SnapshotFamily{}
	for _, f := range snap {
		byName[f.Name] = f
	}
	c := byName["c_total"]
	if len(c.Series) != 1 || c.Series[0].Value == nil || *c.Series[0].Value != 2 {
		t.Fatalf("counter snapshot wrong: %+v", c)
	}
	l := byName["lat"]
	if len(l.Series) != 1 || l.Series[0].Count != 1000 {
		t.Fatalf("histogram snapshot wrong: %+v", l)
	}
	if p50 := l.Series[0].P50; p50 < 10 || p50 > 10*math.Pow(2, 0.25) {
		t.Fatalf("p50 = %v outside [10, 10*2^0.25]", p50)
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"c_total"`) {
		t.Fatal("JSON snapshot missing counter family")
	}
}

func TestSanitizeNameInExposition(t *testing.T) {
	r := New()
	r.Counter("weird-name.with spaces", "h").Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`).MatchString(name) {
			t.Fatalf("unsanitized metric name %q", name)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("lat", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) + 0.5)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := New()
	c := r.Counter("ops", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func ExampleRegistry() {
	r := New()
	r.Counter("runs_total", "Total runs.").Inc()
	var sb strings.Builder
	_ = r.WriteProm(&sb)
	fmt.Print(sb.String())
	// Output:
	// # HELP runs_total Total runs.
	// # TYPE runs_total counter
	// runs_total 1
}
