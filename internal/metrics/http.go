package metrics

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text format. A nil registry
// serves an empty (but valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteProm(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
}

// NewMux builds the shared diagnostics mux every binary serves from one
// -metrics address: Prometheus exposition at /metrics, the same snapshot as
// JSON at /metrics.json, a liveness probe at /healthz, and the
// net/http/pprof handlers under /debug/pprof/ (the same profiles ppbench
// -pprof historically served, now alongside the metrics).
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the diagnostics server on addr in a new goroutine and returns
// immediately; serve errors (port in use, …) are reported through onErr when
// non-nil. It is the one-liner behind every binary's -metrics flag.
func Serve(addr string, r *Registry, onErr func(error)) {
	srv := &http.Server{Addr: addr, Handler: NewMux(r)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && onErr != nil {
			onErr(err)
		}
	}()
}
