package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4): HELP/TYPE comments per
// family, one sample line per series, histograms as cumulative le-buckets
// plus _sum and _count. Only non-empty buckets are emitted — with 300+
// log-scale buckets per histogram, empty runs would dominate the payload.

// WriteProm writes the registry in Prometheus text format. A nil registry
// writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	var err error
	lastFamily := ""
	r.visit(func(f *family, labels []Label, s *series) {
		if err != nil {
			return
		}
		name := sanitizeName(f.name)
		if f.name != lastFamily {
			lastFamily = f.name
			if f.help != "" {
				_, err = fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.help))
				if err != nil {
					return
				}
			}
			if _, err = fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
				return
			}
		}
		switch f.kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(labels), formatValue(s.ctr.Value()))
		case KindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(labels), formatValue(s.gauge.Value()))
		case KindHistogram:
			err = writePromHistogram(w, name, labels, s.hist)
		}
	})
	return err
}

// writePromHistogram emits one histogram series: cumulative buckets (ending
// with le="+Inf"), then _sum and _count. Buckets holding an exemplar get the
// OpenMetrics exemplar suffix (`# {trace_id="..."} value`) so a scrape can
// jump from a tail bucket straight to the trace that landed there.
func writePromHistogram(w io.Writer, name string, labels []Label, h *Histogram) error {
	rows := h.snapshotBuckets()
	var cum uint64
	for _, row := range rows {
		cum = row.cumCount
		le := append(append([]Label(nil), labels...), Label{Key: "le", Value: formatValue(row.upper)})
		suffix := ""
		if row.ex != nil {
			suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabelValue(row.ex.TraceID), formatValue(row.ex.Value))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, renderLabels(le), row.cumCount, suffix); err != nil {
			return err
		}
	}
	// The +Inf bucket is mandatory and must equal _count, even when the
	// overflow bucket itself was empty.
	if len(rows) == 0 || rows[len(rows)-1].upper != bucketUpper(overIdx) {
		le := append(append([]Label(nil), labels...), Label{Key: "le", Value: "+Inf"})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels), formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), h.Count())
	return err
}

// renderLabels formats a label set as {k="v",...}, empty string for none.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote and newline per the text
// format. Operator names carry σ, π, ⋈ and quoted values — UTF-8 itself is
// legal in label values.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// SnapshotExemplar is one bucket exemplar in a JSON snapshot. LE is the
// bucket's inclusive upper bound rendered like the Prometheus le label
// ("+Inf" for the overflow bucket — JSON has no infinity literal).
type SnapshotExemplar struct {
	LE      string  `json:"le"`
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// SnapshotSeries is one series in a JSON snapshot.
type SnapshotSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter sum or gauge value (absent for histograms).
	Value *float64 `json:"value,omitempty"`
	// Count/Sum/Mean and the quantiles describe a histogram.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	// P99TraceID resolves the p99 bucket to a session trace (QuantileExemplar).
	P99TraceID string `json:"p99_trace_id,omitempty"`
	// Exemplars lists every bucket's retained (value, trace) pair.
	Exemplars []SnapshotExemplar `json:"exemplars,omitempty"`
}

// SnapshotFamily is one metric family in a JSON snapshot.
type SnapshotFamily struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SnapshotSeries `json:"series"`
}

// Snapshot captures every family and series with histogram quantiles
// extracted — the one-shot JSON dump behind ppquery -metrics-dump. A nil
// registry snapshots to nil.
func (r *Registry) Snapshot() []SnapshotFamily {
	if r == nil {
		return nil
	}
	var out []SnapshotFamily
	idx := map[string]int{}
	r.visit(func(f *family, labels []Label, s *series) {
		i, ok := idx[f.name]
		if !ok {
			i = len(out)
			idx[f.name] = i
			out = append(out, SnapshotFamily{Name: f.name, Help: f.help, Type: f.kind.String()})
		}
		ss := SnapshotSeries{}
		if len(labels) > 0 {
			ss.Labels = make(map[string]string, len(labels))
			for _, l := range labels {
				ss.Labels[l.Key] = l.Value
			}
		}
		switch f.kind {
		case KindCounter:
			v := s.ctr.Value()
			ss.Value = &v
		case KindGauge:
			v := s.gauge.Value()
			ss.Value = &v
		case KindHistogram:
			ss.Count = s.hist.Count()
			ss.Sum = s.hist.Sum()
			ss.Mean = s.hist.Mean()
			ss.P50 = s.hist.Quantile(0.50)
			ss.P90 = s.hist.Quantile(0.90)
			ss.P99 = s.hist.Quantile(0.99)
			if e := s.hist.QuantileExemplar(0.99); e != nil {
				ss.P99TraceID = e.TraceID
			}
			for _, row := range s.hist.snapshotBuckets() {
				if row.ex == nil {
					continue
				}
				ss.Exemplars = append(ss.Exemplars, SnapshotExemplar{
					LE: formatValue(row.upper), Value: row.ex.Value, TraceID: row.ex.TraceID,
				})
			}
		}
		out[i].Series = append(out[i].Series, ss)
	})
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := r.Snapshot()
	if snap == nil {
		snap = []SnapshotFamily{}
	}
	return enc.Encode(snap)
}
