// Package metrics is the numeric half of the observability layer: a
// concurrency-safe registry of labeled counters, gauges and streaming
// log-bucketed histograms, cheap enough to live inside the batch scoring hot
// path. Where internal/obs records *what happened* (spans, events), this
// package records *how much and how fast*, continuously, as aggregates a
// monitoring system can scrape.
//
// The design mirrors obs's nil-tracer contract: a nil *Registry is valid, and
// every instrument obtained from it is a nil no-op handle, so instrumented
// code pays exactly one pointer check when metrics are disabled. Instruments
// are resolved by (name, labels) once — outside row loops — and then updated
// with lock-free atomics, so a live registry adds no per-row allocations.
//
// Exposition has three forms: Prometheus text format (WriteProm, served at
// /metrics), a one-shot JSON snapshot with extracted histogram quantiles
// (Snapshot/WriteJSON), and direct Quantile/Value reads for in-process
// consumers such as ppquery's EXPLAIN ANALYZE.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key/value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the instrument families.
type Kind int

const (
	// KindCounter is a monotonically increasing sum.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a streaming log-bucketed distribution.
	KindHistogram
)

// String renders the kind as the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family groups every series sharing one metric name.
type family struct {
	name string
	help string
	kind Kind

	mu     sync.RWMutex
	series map[string]*series
	order  []string // insertion order of series keys, for stable exposition
}

// series is one (name, labels) instrument instance.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry holds the process's metric families. The zero value is not usable;
// call New. A nil *Registry is the disabled default: every method returns a
// nil instrument handle whose updates are no-ops.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family resolves (or creates) the family for name. The kind of the first
// registration wins; later mismatched registrations return nil (a no-op
// handle) rather than corrupting exposition — instrument kinds are a
// programming contract, not runtime input.
func (r *Registry) family(name, help string, kind Kind) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
			r.families[name] = f
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		return nil
	}
	return f
}

// seriesFor resolves (or creates) the series for the label set.
func (f *family) seriesFor(labels []Label) *series {
	key := labelKey(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labels: sortedLabels(labels)}
	switch f.kind {
	case KindCounter:
		s.ctr = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram()
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter returns the counter for (name, labels), creating the family and
// series on first use. On a nil registry it returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, KindCounter)
	if f == nil {
		return nil
	}
	return f.seriesFor(labels).ctr
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, KindGauge)
	if f == nil {
		return nil
	}
	return f.seriesFor(labels).gauge
}

// Histogram returns the histogram for (name, labels).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, help, KindHistogram)
	if f == nil {
		return nil
	}
	return f.seriesFor(labels).hist
}

// labelKey serializes a label set into a map key. Labels are sorted so the
// same set in any order resolves to the same series.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter is a monotonically increasing float64. A nil *Counter is a no-op.
type Counter struct{ bits atomic.Uint64 }

// Add adds v (which must be >= 0; negative deltas are dropped to keep the
// counter monotone).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum (0 on a nil handle).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64. A nil *Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil || v == 0 {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucketing: log-scaled buckets covering [2^minExp, 2^maxExp) with
// bucketsPerOctave buckets per power of two, giving a worst-case relative
// quantile error of 2^(1/bucketsPerOctave)-1 ≈ 19%. The range spans
// sub-nanosecond virtual costs up to ~10^15 (wall nanoseconds of very long
// runs). Values at or below zero land in the underflow bucket (scores from
// margin classifiers can be negative; they still count toward count/sum).
const (
	bucketsPerOctave = 4
	minExp           = -30 // 2^-30 ≈ 1e-9
	maxExp           = 50  // 2^50  ≈ 1e15
	numBuckets       = (maxExp - minExp) * bucketsPerOctave
	// underIdx / overIdx are the open-ended end buckets.
	underIdx = 0
	overIdx  = numBuckets + 1
)

// Exemplar ties a concrete observation to the session trace that produced
// it, so a histogram bucket (e.g. the p99 of serve_service_ns) can be
// resolved back to one query-log record and span tree.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// Histogram is a streaming log-bucketed distribution with lock-free Observe.
// A nil *Histogram is a no-op. Each bucket additionally retains the most
// recent traced observation as its exemplar (ObserveExemplar).
type Histogram struct {
	counts  [numBuckets + 2]atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64
	// ex[i] is the most recent (value, trace) pair observed into bucket i;
	// nil until a traced observation lands there. Stored as immutable
	// pointers so scrapes read a consistent pair without locking.
	ex [numBuckets + 2]atomic.Pointer[Exemplar]
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return underIdx
	}
	idx := int(math.Floor(math.Log2(v)*bucketsPerOctave)) - minExp*bucketsPerOctave + 1
	if idx < underIdx+1 {
		return underIdx
	}
	if idx > numBuckets {
		return overIdx
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of bucket i (the Prometheus
// "le" value). The underflow bucket's bound is 2^minExp; the overflow
// bucket's is +Inf.
func bucketUpper(i int) float64 {
	if i <= underIdx {
		return math.Exp2(minExp)
	}
	if i >= overIdx {
		return math.Inf(1)
	}
	return math.Exp2(float64(minExp*bucketsPerOctave+i) / bucketsPerOctave)
}

// Observe records one value. It performs no allocation: one Log2, two atomic
// adds and one CAS loop for the sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveExemplar records one value like Observe and, when traceID is
// non-empty, retains (v, traceID) as the bucket's exemplar. The exemplar
// store is one atomic pointer swap, so the hot path stays allocation-bounded
// to the single Exemplar value.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	if traceID != "" {
		h.ex[bucketIndex(v)].Store(&Exemplar{Value: v, TraceID: traceID})
	}
	h.Observe(v)
}

// QuantileExemplar returns the exemplar attached to the bucket holding the
// q-quantile, falling back to the nearest populated lower (then higher)
// bucket — the p99 bucket may have been filled only by untraced
// observations. Returns nil when no exemplar exists or on a nil handle.
func (h *Histogram) QuantileExemplar(q float64) *Exemplar {
	if h == nil {
		return nil
	}
	total := h.total.Load()
	if total == 0 {
		return nil
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	target := overIdx
	var cum uint64
	for i := underIdx; i <= overIdx; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			target = i
			break
		}
	}
	for i := target; i >= underIdx; i-- {
		if e := h.ex[i].Load(); e != nil {
			return e
		}
	}
	for i := target + 1; i <= overIdx; i++ {
		if e := h.ex[i].Load(); e != nil {
			return e
		}
	}
	return nil
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) from the
// bucket counts: the upper bound of the bucket containing the target rank.
// The estimate is within one bucket width of the true value — a relative
// error of at most 2^(1/4)-1 ≈ 19% for values inside the bucketed range.
// Returns 0 when nothing was observed or on a nil handle.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := underIdx; i <= overIdx; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(overIdx)
}

// Mean returns the arithmetic mean of observed values (exact: sum/count).
func (h *Histogram) Mean() float64 {
	if h == nil || h.total.Load() == 0 {
		return 0
	}
	return h.Sum() / float64(h.Count())
}

// bucketRow is one non-empty bucket of a snapshot: its inclusive upper
// bound, the cumulative count of observations at or below it, and the
// bucket's exemplar (nil when no traced observation landed there).
type bucketRow struct {
	upper    float64
	cumCount uint64
	ex       *Exemplar
}

// snapshotBuckets returns the non-empty buckets with cumulative counts, for
// Prometheus exposition. The returned counts are a consistent-enough view for
// monitoring (individual bucket loads are atomic; the set is not).
func (h *Histogram) snapshotBuckets() []bucketRow {
	var out []bucketRow
	var cum uint64
	for i := underIdx; i <= overIdx; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, bucketRow{upper: bucketUpper(i), cumCount: cum, ex: h.ex[i].Load()})
	}
	return out
}

// visit walks every family and series in registration order under read locks,
// for exposition and snapshots.
func (r *Registry) visit(fn func(f *family, labels []Label, s *series)) {
	if r == nil {
		return
	}
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		srs := make([]*series, len(keys))
		for i, k := range keys {
			srs[i] = f.series[k]
		}
		f.mu.RUnlock()
		for _, s := range srs {
			fn(f, s.labels, s)
		}
	}
}

// sanitizeName maps a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. The repo's own names are chosen valid already;
// this guards facade users registering arbitrary names.
func sanitizeName(name string) string {
	var b strings.Builder
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
