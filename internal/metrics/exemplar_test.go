package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestObserveExemplarAndQuantileExemplar(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ns", "")
	for i := 1; i <= 100; i++ {
		h.ObserveExemplar(float64(i)*1000, fmt.Sprintf("trace%03d", i))
	}
	ex := h.QuantileExemplar(0.99)
	if ex == nil {
		t.Fatal("no p99 exemplar")
	}
	// The p99 of 1k..100k is ~99k; the exemplar comes from the p99 bucket
	// (or the nearest non-empty neighbour), so it must be one of the top
	// observations, carrying the trace that produced it.
	if ex.Value < 90_000 {
		t.Fatalf("p99 exemplar value %v, want one of the top observations", ex.Value)
	}
	want := fmt.Sprintf("trace%03d", int(ex.Value/1000))
	if ex.TraceID != want {
		t.Fatalf("p99 exemplar trace %q, want %q (value %v)", ex.TraceID, want, ex.Value)
	}

	// An empty trace must not displace a stored exemplar.
	h2 := r.Histogram("lat2_ns", "")
	h2.ObserveExemplar(5000, "keepme")
	h2.ObserveExemplar(5000, "")
	if ex := h2.QuantileExemplar(0.5); ex == nil || ex.TraceID != "keepme" {
		t.Fatalf("exemplar after empty-trace observe: %+v, want keepme", ex)
	}

	// Nil handles and empty histograms are no-ops.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "t")
	if nilH.QuantileExemplar(0.5) != nil {
		t.Fatal("nil histogram returned an exemplar")
	}
	if r.Histogram("empty_ns", "").QuantileExemplar(0.5) != nil {
		t.Fatal("empty histogram returned an exemplar")
	}
}

func TestPromExemplarSuffix(t *testing.T) {
	r := New()
	h := r.Histogram("svc_ns", "Service time.")
	h.ObserveExemplar(123, `tr"1`)
	h.Observe(125) // same bucket region, no trace: exemplar must survive

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="tr\"1"} 123`) {
		t.Fatalf("exposition missing OpenMetrics exemplar suffix (escaped):\n%s", out)
	}
	// Exactly one bucket carries the exemplar.
	if n := strings.Count(out, "# {trace_id="); n != 1 {
		t.Fatalf("%d exemplar suffixes, want 1:\n%s", n, out)
	}
	// _sum/_count lines must not grow suffixes.
	for _, line := range strings.Split(out, "\n") {
		if (strings.HasPrefix(line, "svc_ns_sum") || strings.HasPrefix(line, "svc_ns_count")) &&
			strings.Contains(line, "#") {
			t.Fatalf("suffix on non-bucket line: %q", line)
		}
	}
}

// TestPromEscapingGolden locks the 0.0.4 text-format escaping byte-for-byte:
// backslash, double quote and newline in label values, backslash and newline
// in HELP.
func TestPromEscapingGolden(t *testing.T) {
	r := New()
	r.Counter("esc_total", "Help with \\ backslash\nand newline",
		L("op", "a\\b\"c\nd"), L("plain", "σ[x=1]")).Add(3)
	r.Gauge("esc_gauge", "", L("q", `say "hi"`)).Set(2.5)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# HELP esc_total Help with \\\\ backslash\\nand newline\n" +
		"# TYPE esc_total counter\n" +
		"esc_total{op=\"a\\\\b\\\"c\\nd\",plain=\"σ[x=1]\"} 3\n" +
		"# TYPE esc_gauge gauge\n" +
		"esc_gauge{q=\"say \\\"hi\\\"\"} 2.5\n"
	if got != want {
		t.Fatalf("escaping golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotCarriesExemplars(t *testing.T) {
	r := New()
	h := r.Histogram("snap_ns", "")
	h.ObserveExemplar(1000, "tlow")
	h.ObserveExemplar(900_000, "thigh")

	var fam *SnapshotFamily
	for i, f := range r.Snapshot() {
		if f.Name == "snap_ns" {
			fam = &r.Snapshot()[i]
		}
	}
	if fam == nil || len(fam.Series) != 1 {
		t.Fatal("snap_ns family missing")
	}
	s := fam.Series[0]
	if s.P99TraceID != "thigh" {
		t.Fatalf("p99_trace_id = %q, want thigh", s.P99TraceID)
	}
	if len(s.Exemplars) != 2 {
		t.Fatalf("%d exemplars in snapshot, want 2: %+v", len(s.Exemplars), s.Exemplars)
	}
	seen := map[string]bool{}
	for _, e := range s.Exemplars {
		seen[e.TraceID] = true
		if e.LE == "" {
			t.Fatalf("exemplar without le bound: %+v", e)
		}
	}
	if !seen["tlow"] || !seen["thigh"] {
		t.Fatalf("snapshot exemplars %v, want tlow and thigh", seen)
	}
}

// TestConcurrentScrapesDuringExemplarWrites drives histogram + exemplar
// writes from several goroutines while other goroutines scrape Prometheus
// text and JSON snapshots — the data-race proof for the /metrics endpoint
// (run under -race in CI).
func TestConcurrentScrapesDuringExemplarWrites(t *testing.T) {
	r := New()
	const writers, scrapes = 4, 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				r.Histogram("scrape_ns", "h", L("w", fmt.Sprintf("%d", w))).
					ObserveExemplar(float64(i%1000+1), fmt.Sprintf("t%d-%d", w, i))
				r.Counter("scrape_total", "c").Inc()
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scrapes; i++ {
				var sb strings.Builder
				if err := r.WriteProm(&sb); err != nil {
					t.Errorf("WriteProm: %v", err)
					return
				}
				if err := r.WriteJSON(&sb); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < scrapes; i++ {
			r.Snapshot()
			for _, f := range r.Snapshot() {
				for _, s := range f.Series {
					_ = s.P99TraceID
				}
			}
		}
	}()
	<-done
	close(stop)
	wg.Wait()
}
