package core

import (
	"math"
	"strings"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// linearSet: dense 2-D blobs, positives where x0+x1 > 1.2 (selectivity ~0.3).
func linearSet(n int, seed uint64) blob.Set {
	rng := mathx.NewRNG(seed)
	var s blob.Set
	for i := 0; i < n; i++ {
		x := mathx.Vec{rng.Float64(), rng.Float64()}
		s.Append(blob.FromDense(i, x), x[0]+x[1] > 1.2)
	}
	return s
}

// ringSet: dense 2-D blobs, positives on a ring (non-linearly separable).
func ringSet(n int, seed uint64) blob.Set {
	rng := mathx.NewRNG(seed)
	var s blob.Set
	for i := 0; i < n; i++ {
		var x mathx.Vec
		var label bool
		if i%3 == 0 {
			theta := rng.Float64() * 2 * math.Pi
			r := 3 + rng.NormFloat64()*0.2
			x = mathx.Vec{r * math.Cos(theta), r * math.Sin(theta)}
			label = true
		} else {
			x = mathx.Vec{rng.NormFloat64(), rng.NormFloat64()}
			label = false
		}
		s.Append(blob.FromDense(i, x), label)
	}
	return s
}

// sparseSet: sparse high-dim blobs; positives contain "indicator" words
// 0..9 with high weight — linearly separable in hashed space.
func sparseSet(n, dim int, seed uint64) blob.Set {
	rng := mathx.NewRNG(seed)
	var s blob.Set
	for i := 0; i < n; i++ {
		label := rng.Bernoulli(0.25)
		var idx []int
		var val []float64
		for k := 0; k < 20; k++ {
			idx = append(idx, 10+rng.Intn(dim-10))
			val = append(val, 1+rng.Float64())
		}
		if label {
			for w := 0; w < 5; w++ {
				idx = append(idx, rng.Intn(10))
				val = append(val, 3+rng.Float64())
			}
		}
		s.Append(blob.FromSparse(i, mathx.NewSparse(dim, idx, val)), label)
	}
	return s
}

func TestTrainLinearSVMPP(t *testing.T) {
	train := linearSet(600, 1)
	val := linearSet(300, 2)
	pp, err := Train("sum>1.2", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Approach != "Raw+SVM" || pp.Clause != "sum>1.2" {
		t.Fatalf("metadata wrong: %+v", pp)
	}
	test := linearSet(400, 4)
	m := Evaluate(pp, test, 0.95)
	if m.Accuracy < 0.9 {
		t.Fatalf("accuracy = %v, want >= 0.9", m.Accuracy)
	}
	if m.Reduction < 0.3 {
		t.Fatalf("reduction = %v, want >= 0.3 on separable data", m.Reduction)
	}
}

func TestTrainKDEOnRing(t *testing.T) {
	train := ringSet(600, 5)
	val := ringSet(300, 6)
	pp, err := Train("onring", train, val, TrainConfig{Approach: "Raw+KDE", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	test := ringSet(300, 8)
	m := Evaluate(pp, test, 0.95)
	if m.Accuracy < 0.85 || m.Reduction < 0.4 {
		t.Fatalf("KDE ring: accuracy=%v reduction=%v", m.Accuracy, m.Reduction)
	}
}

func TestSVMFailsOnRingKDEWins(t *testing.T) {
	// The paper's core model-selection motivation: linear SVM cannot filter
	// non-linearly separable data; KDE can (§5.1/§5.2 usage notes).
	train := ringSet(600, 9)
	val := ringSet(300, 10)
	svmPP, err := Train("onring", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	kdePP, err := Train("onring", train, val, TrainConfig{Approach: "Raw+KDE", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if kdePP.Reduction(0.95) <= svmPP.Reduction(0.95) {
		t.Fatalf("KDE r=%v should beat SVM r=%v on ring data",
			kdePP.Reduction(0.95), svmPP.Reduction(0.95))
	}
}

func TestTrainSparseFHSVM(t *testing.T) {
	train := sparseSet(800, 2000, 12)
	val := sparseSet(400, 2000, 13)
	pp, err := Train("cat=5", train, val, TrainConfig{Approach: "FH+SVM", Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	test := sparseSet(400, 2000, 15)
	m := Evaluate(pp, test, 0.95)
	if m.Accuracy < 0.9 || m.Reduction < 0.4 {
		t.Fatalf("FH+SVM sparse: accuracy=%v reduction=%v", m.Accuracy, m.Reduction)
	}
}

func TestCandidateApproachesApplicability(t *testing.T) {
	sparse := sparseSet(50, 500, 16)
	cands := CandidateApproaches(sparse, TrainConfig{})
	for _, c := range cands {
		if !strings.HasPrefix(c, "FH") {
			t.Fatalf("sparse candidates must use FH, got %v", cands)
		}
	}
	dense := linearSet(50, 17)
	cands = CandidateApproaches(dense, TrainConfig{AllowDNN: true})
	joined := strings.Join(cands, ",")
	for _, want := range []string{"PCA+KDE", "PCA+SVM", "Raw+SVM", "Raw+KDE", "DNN"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("dense low-dim candidates missing %s: %v", want, cands)
		}
	}
	// High-dim dense: no Raw entries.
	var highDim blob.Set
	rng := mathx.NewRNG(18)
	for i := 0; i < 20; i++ {
		v := make(mathx.Vec, 500)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		highDim.Append(blob.FromDense(i, v), i%2 == 0)
	}
	for _, c := range CandidateApproaches(highDim, TrainConfig{}) {
		if strings.HasPrefix(c, "Raw") {
			t.Fatalf("high-dim dense candidates must not include Raw: %v", c)
		}
	}
}

func TestSelectApproachPicksNonlinearForRing(t *testing.T) {
	train := ringSet(600, 19)
	val := ringSet(300, 20)
	got, err := SelectApproach(train, val, TrainConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "KDE") {
		t.Fatalf("model selection picked %q for ring data, want a KDE approach", got)
	}
}

func TestTrainAutoSelection(t *testing.T) {
	train := sparseSet(400, 1000, 22)
	val := sparseSet(200, 1000, 23)
	pp, err := Train("cat=1", train, val, TrainConfig{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pp.Approach, "FH") {
		t.Fatalf("auto-selected %q for sparse data", pp.Approach)
	}
}

func TestNegatePP(t *testing.T) {
	train := linearSet(600, 25)
	val := linearSet(300, 26)
	pp, err := Train("sum>1.2", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := pp.Negate("sum<=1.2")
	if err != nil {
		t.Fatal(err)
	}
	if !neg.Negated() || neg.Clause != "sum<=1.2" {
		t.Fatalf("negation metadata wrong: %+v", neg)
	}
	// The negated PP must be accurate for the complement class.
	test := linearSet(400, 28)
	inverted := blob.Set{Blobs: test.Blobs, Labels: make([]bool, test.Len())}
	for i, l := range test.Labels {
		inverted.Labels[i] = !l
	}
	m := Evaluate(neg, inverted, 0.95)
	if m.Accuracy < 0.9 {
		t.Fatalf("negated accuracy = %v", m.Accuracy)
	}
	// Scores flip sign exactly.
	b := test.Blobs[0]
	if neg.Score(b) != -pp.Score(b) {
		t.Fatal("negated score is not -score")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train("p", blob.Set{}, blob.Set{}, TrainConfig{}); err == nil {
		t.Fatal("expected error for empty sets")
	}
	train := linearSet(50, 29)
	val := linearSet(50, 30)
	if _, err := Train("p", train, val, TrainConfig{Approach: "Bogus+SVM"}); err == nil {
		t.Fatal("expected error for unknown reducer")
	}
	if _, err := Train("p", train, val, TrainConfig{Approach: "Raw+Bogus"}); err == nil {
		t.Fatal("expected error for unknown classifier")
	}
}

func TestPPCostPositive(t *testing.T) {
	train := linearSet(200, 31)
	val := linearSet(100, 32)
	pp, err := Train("p", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Cost() <= 0 {
		t.Fatalf("Cost = %v", pp.Cost())
	}
	if pp.TrainN != 200 {
		t.Fatalf("TrainN = %d", pp.TrainN)
	}
	if s := pp.String(); !strings.Contains(s, "Raw+SVM") {
		t.Fatalf("String = %q", s)
	}
}

func TestEvaluateNoFalseNegativeGuaranteeAtA1OnValidation(t *testing.T) {
	// At a=1, every positive *validation* blob passes by construction.
	train := linearSet(400, 34)
	val := linearSet(200, 35)
	pp, err := Train("p", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(pp, val, 1.0)
	if m.Accuracy != 1.0 {
		t.Fatalf("validation accuracy at a=1 is %v, want exactly 1", m.Accuracy)
	}
}

func TestEvaluateRelativeReduction(t *testing.T) {
	train := linearSet(400, 37)
	val := linearSet(200, 38)
	pp, err := Train("p", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	test := linearSet(300, 40)
	m := Evaluate(pp, test, 0.95)
	want := m.Reduction / (1 - m.Selectivity)
	if math.Abs(m.RelativeReduction-want) > 1e-12 {
		t.Fatalf("RelativeReduction = %v, want %v", m.RelativeReduction, want)
	}
	if m.N != 300 {
		t.Fatalf("N = %d", m.N)
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	train := linearSet(100, 41)
	val := linearSet(100, 42)
	pp, err := Train("p", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(pp, blob.Set{}, 0.95)
	if m.N != 0 || m.Reduction != 0 {
		t.Fatalf("empty evaluate = %+v", m)
	}
}

func TestSplitApproach(t *testing.T) {
	r, c := splitApproach("PCA+KDE")
	if r != "PCA" || c != "KDE" {
		t.Fatalf("splitApproach = %q %q", r, c)
	}
	r, c = splitApproach("DNN")
	if r != "Raw" || c != "DNN" {
		t.Fatalf("splitApproach(DNN) = %q %q", r, c)
	}
}

func TestRecalibrateRestoresAccuracyUnderDrift(t *testing.T) {
	// Train on one regime, then shift the score distribution (a constant
	// feature offset). The stale thresholds under-deliver; recalibrating on
	// a fresh labeled sample restores the accuracy guarantee without
	// retraining.
	train := linearSet(600, 90)
	val := linearSet(300, 91)
	pp, err := Train("sum>1.2", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	drift := func(seed uint64) blob.Set {
		base := linearSet(400, seed)
		var out blob.Set
		for _, b := range base.Blobs {
			v := mathx.CloneVec(b.Dense)
			v[0] -= 0.35 // sensor drift shifts the first feature
			// Labels still follow the *original* semantics on the shifted
			// reading: the predicate column the UDF would output.
			out.Append(blob.FromDense(b.ID, v), v[0]+v[1] > 1.2)
		}
		return out
	}
	drifted := drift(93)
	before := Evaluate(pp, drifted, 0.95)
	if err := pp.Recalibrate(drift(94)); err != nil {
		t.Fatal(err)
	}
	after := Evaluate(pp, drifted, 0.95)
	if after.Accuracy < before.Accuracy && after.Accuracy < 0.9 {
		t.Fatalf("recalibration did not help: before %v after %v", before.Accuracy, after.Accuracy)
	}
	if after.Accuracy < 0.88 {
		t.Fatalf("accuracy after recalibration = %v", after.Accuracy)
	}
}

func TestRecalibrateErrors(t *testing.T) {
	train := linearSet(200, 95)
	val := linearSet(100, 96)
	pp, err := Train("p", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	if err := pp.Recalibrate(blob.Set{}); err == nil {
		t.Fatal("expected error for empty set")
	}
	var negOnly blob.Set
	for i := 0; i < 10; i++ {
		negOnly.Append(blob.FromDense(i, mathx.Vec{0, 0}), false)
	}
	if err := pp.Recalibrate(negOnly); err == nil {
		t.Fatal("expected error for single-class set")
	}
}
