// Package core implements the paper's primary contribution: probabilistic
// predicates (PPs). A PP for a predicate clause p is the triple
// ⟨training set 𝒟, approach m, reduction curve r(a]⟩ (§5): a binary
// classifier over raw input blobs, parametrized by a target accuracy a, that
// discards blobs which will not satisfy p before any expensive UDF runs.
//
// The package provides construction of individual PPs with each classifier
// family the paper uses (linear SVM §5.1, KDE §5.2, DNN §5.3), dimension
// reduction (§5.4), model selection (§5.5), negation reuse and
// train/validation separation (§5.6).
package core

import (
	"fmt"
	"strings"
	"time"

	"probpred/internal/blob"
	"probpred/internal/dimred"
	"probpred/internal/dnn"
	"probpred/internal/kde"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
	"probpred/internal/svm"
)

// Scorer is the classifier half of a PP approach: a real-valued function
// whose larger outputs mean "more likely to satisfy the predicate". The
// three families of §5 (svm.Model, kde.Model, dnn.Model) implement it.
type Scorer interface {
	Score(x mathx.Vec) float64
	Name() string
	// Cost is the virtual per-blob scoring cost in virtual milliseconds.
	Cost() float64
}

// TrainConfig controls PP construction.
type TrainConfig struct {
	// Approach forces a specific ψ+f combination such as "FH+SVM",
	// "PCA+KDE", "Raw+SVM" or "DNN". Empty selects automatically (§5.5).
	Approach string
	// PCADims is the PCA output dimensionality. Zero selects 8.
	PCADims int
	// FHDims is the feature-hashing output dimensionality. Zero selects 256.
	FHDims int
	// PCASample caps the number of blobs used to fit the PCA basis (§5.4:
	// the basis is computed over a small sampled subset). Zero selects 500.
	PCASample int
	// SVM, KDE and DNN pass through classifier-specific settings.
	SVM svm.Config
	KDE kde.Config
	DNN dnn.Config
	// AllowDNN lets model selection consider the DNN approach, which has a
	// much larger training cost (§5.3 usage notes).
	AllowDNN bool
	// SelectionSample is the number of blobs sampled for model selection.
	// Zero selects 400.
	SelectionSample int
	// SelectionAccuracy is the accuracy at which candidate approaches are
	// compared (Eq. 8). Zero selects the paper's 0.95.
	SelectionAccuracy float64
	// Seed drives all randomized steps.
	Seed uint64
	// Warm, when non-nil, warm-starts training from a previously trained PP:
	// the prior PP's reducer is reused (freezing the feature space so learned
	// weights stay meaningful) and, for SVM classifiers, the prior weights
	// seed the optimization. Incremental per-segment training over a stream
	// uses it so each retraining fine-tunes the previous segment's model on
	// fresh labels instead of relearning from scratch. The warm PP's approach
	// wins model selection when Approach is empty; a negation-derived or
	// approach-mismatched warm PP is ignored (cold start).
	Warm *PP
	// Metrics (optional) records per-approach training counts and wall-clock
	// histograms. Nil disables.
	Metrics *metrics.Registry
}

func (c *TrainConfig) fill() {
	if c.PCADims == 0 {
		c.PCADims = 8
	}
	if c.FHDims == 0 {
		c.FHDims = 256
	}
	if c.PCASample == 0 {
		c.PCASample = 500
	}
	if c.SelectionSample == 0 {
		c.SelectionSample = 400
	}
	if c.SelectionAccuracy == 0 {
		c.SelectionAccuracy = 0.95
	}
}

// PP is a trained probabilistic predicate.
type PP struct {
	// Clause is the canonical simple clause the PP mimics, e.g. "t=SUV".
	Clause string
	// Approach names the ψ+f combination, e.g. "PCA+KDE".
	Approach string

	reducer dimred.Reducer
	scorer  Scorer
	curve   *Curve
	negated bool

	// TrainN is the number of training blobs used.
	TrainN int
	// TrainDuration is the wall-clock training time (reported in Table 5 /
	// Table 9 analogs; it does not participate in virtual-cost planning).
	TrainDuration time.Duration
}

// Score returns the PP's classifier output for a blob.
func (p *PP) Score(b blob.Blob) float64 {
	s := p.scorer.Score(p.reducer.Reduce(b))
	if p.negated {
		return -s
	}
	return s
}

// Threshold returns th(a] from the validation curve.
func (p *PP) Threshold(a float64) float64 { return p.curve.Threshold(a) }

// Pass reports whether the blob passes the PP at target accuracy a
// (Eq. 2: f(ψ(x)) ≥ th(a]).
func (p *PP) Pass(b blob.Blob, a float64) bool {
	return p.Score(b) >= p.curve.Threshold(a)
}

// Reduction returns the expected data reduction rate r(a] estimated on the
// validation set.
func (p *PP) Reduction(a float64) float64 { return p.curve.Reduction(a) }

// Cost returns the virtual per-blob cost of applying the PP (reducer plus
// classifier), in virtual milliseconds.
func (p *PP) Cost() float64 { return p.reducer.Cost() + p.scorer.Cost() }

// Curve exposes the validation curve (read-only use).
func (p *PP) Curve() *Curve { return p.curve }

// Negated reports whether this PP was derived by negation.
func (p *PP) Negated() bool { return p.negated }

// Negate returns the PP for the negated clause, reusing the trained
// classifier with its sign flipped (§5.6). The caller provides the clause
// name for the negation (e.g. "t!=SUV" from "t=SUV").
func (p *PP) Negate(clause string) (*PP, error) {
	curve, err := p.curve.Negate()
	if err != nil {
		return nil, fmt.Errorf("core: negating PP %q: %w", p.Clause, err)
	}
	return &PP{
		Clause:        clause,
		Approach:      p.Approach,
		reducer:       p.reducer,
		scorer:        p.scorer,
		curve:         curve,
		negated:       !p.negated,
		TrainN:        p.TrainN,
		TrainDuration: p.TrainDuration,
	}, nil
}

// String renders a compact description for logs and reports.
func (p *PP) String() string {
	return fmt.Sprintf("PP[%s %s cost=%.2f r(1]=%.2f r(0.95]=%.2f]",
		p.Clause, p.Approach, p.Cost(), p.Reduction(1), p.Reduction(0.95))
}

// NewPP assembles a probabilistic predicate from an already-trained reducer
// and scorer, building its reduction curve from the labeled validation set.
// It is the extension point for classifier families beyond the built-in
// three — §5.3 notes the PP design incorporates any classifier that can be
// cast as a real-valued function with a threshold.
func NewPP(clause, approach string, reducer dimred.Reducer, scorer Scorer, val blob.Set) (*PP, error) {
	if val.Len() == 0 {
		return nil, fmt.Errorf("core: NewPP %q: empty validation set", clause)
	}
	scores := scoreAll(reducer, scorer, val.Blobs)
	curve, err := NewCurve(scores, val.Labels)
	if err != nil {
		return nil, fmt.Errorf("core: NewPP %q: %w", clause, err)
	}
	return &PP{
		Clause:   clause,
		Approach: approach,
		reducer:  reducer,
		scorer:   scorer,
		curve:    curve,
	}, nil
}

// Train constructs a PP for the given clause from a labeled training set and
// a disjoint labeled validation set (§5.6 separates the two to avoid
// overfitting the reduction curve).
func Train(clause string, train, val blob.Set, cfg TrainConfig) (*PP, error) {
	cfg.fill()
	if train.Len() == 0 || val.Len() == 0 {
		return nil, fmt.Errorf("core: training PP %q: empty train (%d) or validation (%d) set",
			clause, train.Len(), val.Len())
	}
	approach := cfg.Approach
	if approach == "" {
		if cfg.Warm != nil && !cfg.Warm.negated {
			// A warm start pins the approach: switching families would throw
			// away the carried-over model anyway, and skipping selection is
			// most of the point of incremental retraining.
			approach = cfg.Warm.Approach
		} else {
			var err error
			approach, err = SelectApproach(train, val, cfg)
			if err != nil {
				return nil, fmt.Errorf("core: selecting approach for %q: %w", clause, err)
			}
		}
	}
	start := time.Now()
	reducer, scorer, err := trainApproach(approach, train, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: training PP %q with %s: %w", clause, approach, err)
	}
	elapsed := time.Since(start)
	if reg := cfg.Metrics; reg != nil {
		lbl := metrics.L("approach", approach)
		reg.Counter("pp_trainings_total", "PPs trained per approach.", lbl).Inc()
		reg.Histogram("pp_train_wall_ns", "Real wall-clock training duration per approach, nanoseconds.", lbl).Observe(float64(elapsed.Nanoseconds()))
	}
	scores := scoreAll(reducer, scorer, val.Blobs)
	curve, err := NewCurve(scores, val.Labels)
	if err != nil {
		return nil, fmt.Errorf("core: building curve for %q: %w", clause, err)
	}
	return &PP{
		Clause:        clause,
		Approach:      approach,
		reducer:       reducer,
		scorer:        scorer,
		curve:         curve,
		TrainN:        train.Len(),
		TrainDuration: elapsed,
	}, nil
}

// trainApproach builds the reducer and classifier for one named approach.
// A compatible cfg.Warm (same approach, not negation-derived) contributes
// its reducer — freezing the feature space across retrainings — and, for
// SVM, its weights as the optimization's starting point.
func trainApproach(approach string, train blob.Set, cfg TrainConfig) (dimred.Reducer, Scorer, error) {
	redName, clsName := splitApproach(approach)
	warm := cfg.Warm
	if warm != nil && (warm.negated || warm.Approach != approach) {
		warm = nil
	}
	var reducer dimred.Reducer
	var err error
	if warm != nil {
		reducer = warm.reducer
	} else {
		reducer, err = buildReducer(redName, train, cfg)
		if err != nil {
			return nil, nil, err
		}
	}
	xs := make([]mathx.Vec, train.Len())
	for i, b := range train.Blobs {
		xs[i] = reducer.Reduce(b)
	}
	var scorer Scorer
	switch clsName {
	case "SVM":
		c := cfg.SVM
		c.Seed ^= cfg.Seed
		if warm != nil {
			if m, ok := warm.scorer.(*svm.Model); ok {
				c.Warm = m
			}
		}
		m, err := svm.Train(xs, train.Labels, c)
		if err != nil {
			return nil, nil, err
		}
		scorer = m
	case "KDE":
		c := cfg.KDE
		c.Seed ^= cfg.Seed
		m, err := kde.Train(xs, train.Labels, c)
		if err != nil {
			return nil, nil, err
		}
		scorer = m
	case "DNN":
		c := cfg.DNN
		c.Seed ^= cfg.Seed
		m, err := dnn.Train(xs, train.Labels, c)
		if err != nil {
			return nil, nil, err
		}
		scorer = m
	default:
		return nil, nil, fmt.Errorf("unknown classifier %q in approach %q", clsName, approach)
	}
	return reducer, scorer, nil
}

// splitApproach parses "ψ+f" names; a bare "DNN" means "Raw+DNN".
func splitApproach(approach string) (reducer, classifier string) {
	parts := strings.SplitN(approach, "+", 2)
	if len(parts) == 1 {
		return "Raw", strings.TrimSpace(parts[0])
	}
	return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
}

// buildReducer constructs ψ for the named technique.
func buildReducer(name string, train blob.Set, cfg TrainConfig) (dimred.Reducer, error) {
	switch name {
	case "Raw", "":
		return dimred.Identity{Dim: train.Dim()}, nil
	case "PCA":
		sample := train.Sample(mathx.NewRNG(cfg.Seed^0x9ca), cfg.PCASample)
		return dimred.FitPCA(sample.Blobs, cfg.PCADims, mathx.NewRNG(cfg.Seed^0x9cb))
	case "FH":
		return dimred.NewFeatureHash(cfg.FHDims, cfg.Seed^0xf4), nil
	default:
		return nil, fmt.Errorf("unknown reducer %q", name)
	}
}

// Recalibrate rebuilds the PP's accuracy-versus-reduction curve from a
// fresh labeled validation set without retraining the classifier. Threshold
// choice is cheap relative to training (§5.1: "a PP parametrized for
// different accuracy thresholds can be built without retraining"), so an
// online system can re-anchor its thresholds when the input distribution
// drifts and only fall back to full retraining when recalibration is not
// enough.
func (p *PP) Recalibrate(val blob.Set) error {
	if val.Len() == 0 {
		return fmt.Errorf("core: recalibrating %q: empty validation set", p.Clause)
	}
	scores := make([]float64, val.Len())
	p.ScoreBatch(val.Blobs, scores)
	curve, err := NewCurve(scores, val.Labels)
	if err != nil {
		return fmt.Errorf("core: recalibrating %q: %w", p.Clause, err)
	}
	p.curve = curve
	return nil
}
