package core

import (
	"fmt"
	"testing"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// denseBatchSet generates n dense gaussian blobs labeled by a random
// hyperplane, giving every classifier family structure to learn.
func denseBatchSet(n, dim int, seed uint64) blob.Set {
	rng := mathx.NewRNG(seed)
	w := make(mathx.Vec, dim)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	var set blob.Set
	for i := 0; i < n; i++ {
		v := make(mathx.Vec, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		set.Append(blob.FromDense(i, v), mathx.Dot(w, v) >= 0)
	}
	return set
}

// sparseBatchSet generates sparse blobs (bag-of-words-like) labeled by the
// presence of a marker token, exercising the sparse branches of the batch
// reducers.
func sparseBatchSet(n, dim int, seed uint64) blob.Set {
	rng := mathx.NewRNG(seed)
	var set blob.Set
	for i := 0; i < n; i++ {
		var idx []int
		var val []float64
		for k := 0; k < 20; k++ {
			idx = append(idx, rng.Intn(dim))
			val = append(val, 1+rng.Float64())
		}
		label := rng.Bernoulli(0.4)
		if label {
			idx = append(idx, 7)
			val = append(val, 3.0)
		}
		set.Append(blob.FromSparse(i, mathx.NewSparse(dim, idx, val)), label)
	}
	return set
}

// trainBatchPP trains one PP per approach over the right blob kind.
func trainBatchPP(t *testing.T, approach string, seed uint64) (*PP, []blob.Blob) {
	t.Helper()
	var set blob.Set
	if approach == "FH+SVM" {
		set = sparseBatchSet(700, 400, seed)
	} else {
		set = denseBatchSet(700, 24, seed)
	}
	rng := mathx.NewRNG(seed ^ 0x11)
	train, val, test := set.Split(rng, 0.5, 0.25)
	cfg := TrainConfig{Approach: approach, Seed: seed}
	if approach == "DNN" {
		cfg.DNN.Epochs = 5
	}
	pp, err := Train("batch."+approach, train, val, cfg)
	if err != nil {
		t.Fatalf("training %s: %v", approach, err)
	}
	return pp, test.Blobs
}

// TestScoreBatchMatchesScalar is the bit-identicality contract: for every
// built-in approach, ScoreBatch/PassBatch must equal per-row Score/Pass
// exactly (==, not within epsilon), on the plain and the negated PP.
func TestScoreBatchMatchesScalar(t *testing.T) {
	for _, approach := range []string{"FH+SVM", "PCA+KDE", "Raw+SVM", "DNN"} {
		t.Run(approach, func(t *testing.T) {
			pp, blobs := trainBatchPP(t, approach, 42)
			neg, err := pp.Negate("!" + pp.Clause)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []*PP{pp, neg} {
				got := make([]float64, len(blobs))
				p.ScoreBatch(blobs, got)
				pass := make([]bool, len(blobs))
				p.PassBatch(blobs, 0.95, pass)
				for i, b := range blobs {
					want := p.Score(b)
					if got[i] != want {
						t.Fatalf("%s negated=%v row %d: ScoreBatch=%v Score=%v",
							approach, p.Negated(), i, got[i], want)
					}
					if wantPass := p.Pass(b, 0.95); pass[i] != wantPass {
						t.Fatalf("%s negated=%v row %d: PassBatch=%v Pass=%v",
							approach, p.Negated(), i, pass[i], wantPass)
					}
				}
			}
		})
	}
}

// plainScorer implements Scorer but not BatchScorer, forcing the per-row
// fallback inside ScoreBatch.
type plainScorer struct{}

func (plainScorer) Score(x mathx.Vec) float64 { return x[0] - x[1] }
func (plainScorer) Name() string              { return "plain" }
func (plainScorer) Cost() float64             { return 1 }

// plainReducer implements dimred.Reducer but not dimred.BatchReducer.
type plainReducer struct{ dim int }

func (r plainReducer) Reduce(b blob.Blob) mathx.Vec { return b.DenseVec() }
func (r plainReducer) OutDim() int                  { return r.dim }
func (r plainReducer) Name() string                 { return "plainred" }
func (r plainReducer) Cost() float64                { return 0.1 }

// TestScoreBatchFallback checks that third-party reducers/scorers without the
// batch interfaces still score correctly through the per-row fallback.
func TestScoreBatchFallback(t *testing.T) {
	set := denseBatchSet(300, 8, 7)
	pp, err := NewPP("fallback", "test", plainReducer{dim: 8}, plainScorer{}, set)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(set.Blobs))
	pp.ScoreBatch(set.Blobs, got)
	for i, b := range set.Blobs {
		if want := pp.Score(b); got[i] != want {
			t.Fatalf("row %d: ScoreBatch=%v Score=%v", i, got[i], want)
		}
	}
}

// TestEvaluateUsesBatchPath pins Evaluate to the same numbers a scalar
// reimplementation produces.
func TestEvaluateUsesBatchPath(t *testing.T) {
	pp, blobs := trainBatchPP(t, "Raw+SVM", 9)
	labels := make([]bool, len(blobs))
	for i, b := range blobs {
		labels[i] = pp.Score(b) > 0 // synthetic relabeling; only consistency matters
	}
	test := blob.Set{Blobs: blobs, Labels: labels}
	m := Evaluate(pp, test, 0.95)
	th := pp.Threshold(0.95)
	pass := 0
	for _, b := range blobs {
		if pp.Score(b) >= th {
			pass++
		}
	}
	if want := 1 - float64(pass)/float64(len(blobs)); m.Reduction != want {
		t.Fatalf("Evaluate reduction %v, scalar recomputation %v", m.Reduction, want)
	}
}

func BenchmarkScoreBatchRawSVM(b *testing.B) {
	set := denseBatchSet(2048, 64, 3)
	rng := mathx.NewRNG(5)
	train, val, _ := set.Split(rng, 0.6, 0.2)
	pp, err := Train("bench", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(set.Blobs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pp.ScoreBatch(set.Blobs, out)
	}
	_ = fmt.Sprint(out[0])
}
