package core

import "probpred/internal/blob"

// Metrics summarizes a PP's behaviour on a labeled test set at one target
// accuracy, using the vocabulary of §8.1.
type Metrics struct {
	// TargetAccuracy is the a the PP was parametrized with.
	TargetAccuracy float64
	// Accuracy is the empirical fraction of positive blobs that pass (the
	// fraction of the original query's output that is retained).
	Accuracy float64
	// Reduction is the empirical fraction of all blobs discarded, r_p(a].
	Reduction float64
	// Selectivity is the fraction of test blobs whose label is positive.
	Selectivity float64
	// RelativeReduction is Reduction/(1−Selectivity): the achieved fraction
	// of the maximum possible reduction (the paper's optimality measure,
	// Table 5).
	RelativeReduction float64
	// FalsePositivePass is the fraction of negative blobs that pass; the
	// downstream query still filters them, so it costs time but not
	// correctness.
	FalsePositivePass float64
	// N is the test-set size.
	N int
}

// Evaluate measures a PP on a labeled test set at target accuracy a. Scoring
// goes through the batch fast path, which is bit-identical to a scalar Score
// loop.
func Evaluate(p *PP, test blob.Set, a float64) Metrics {
	th := p.Threshold(a)
	scores := getFlat(test.Len())
	p.ScoreBatch(test.Blobs, scores)
	var pass, posPass, pos, negPass int
	for i := range test.Blobs {
		passed := scores[i] >= th
		if passed {
			pass++
		}
		if test.Labels[i] {
			pos++
			if passed {
				posPass++
			}
		} else if passed {
			negPass++
		}
	}
	putFlat(scores)
	m := Metrics{TargetAccuracy: a, N: test.Len()}
	if test.Len() == 0 {
		return m
	}
	m.Selectivity = float64(pos) / float64(test.Len())
	m.Reduction = 1 - float64(pass)/float64(test.Len())
	if pos > 0 {
		m.Accuracy = float64(posPass) / float64(pos)
	} else {
		m.Accuracy = 1
	}
	if neg := test.Len() - pos; neg > 0 {
		m.FalsePositivePass = float64(negPass) / float64(neg)
	}
	if m.Selectivity < 1 {
		m.RelativeReduction = m.Reduction / (1 - m.Selectivity)
	}
	return m
}
