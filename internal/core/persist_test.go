package core

import (
	"bytes"
	"testing"

	"probpred/internal/dnn"
)

// roundTrip saves and reloads a PP, failing the test on error.
func roundTrip(t *testing.T, pp *PP) *PP {
	t.Helper()
	var buf bytes.Buffer
	if err := pp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// assertSameBehaviour checks scores, thresholds and metadata match.
func assertSameBehaviour(t *testing.T, orig, loaded *PP, probes interface{ Len() int }) {
	t.Helper()
	if loaded.Clause != orig.Clause || loaded.Approach != orig.Approach {
		t.Fatalf("metadata mismatch: %q/%q vs %q/%q",
			loaded.Clause, loaded.Approach, orig.Clause, orig.Approach)
	}
	if loaded.TrainN != orig.TrainN {
		t.Fatalf("TrainN mismatch: %d vs %d", loaded.TrainN, orig.TrainN)
	}
	for _, a := range []float64{1.0, 0.99, 0.95, 0.9} {
		if loaded.Threshold(a) != orig.Threshold(a) {
			t.Fatalf("threshold mismatch at a=%v", a)
		}
		if loaded.Reduction(a) != orig.Reduction(a) {
			t.Fatalf("reduction mismatch at a=%v", a)
		}
	}
}

func TestPersistSVMPP(t *testing.T) {
	train := linearSet(400, 60)
	val := linearSet(200, 61)
	pp, err := Train("sum>1.2", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, pp)
	assertSameBehaviour(t, pp, loaded, val)
	for _, b := range val.Blobs[:50] {
		if loaded.Score(b) != pp.Score(b) {
			t.Fatal("score mismatch after reload")
		}
	}
}

func TestPersistKDEPP(t *testing.T) {
	train := ringSet(400, 63)
	val := ringSet(200, 64)
	pp, err := Train("onring", train, val, TrainConfig{Approach: "Raw+KDE", Seed: 65})
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, pp)
	assertSameBehaviour(t, pp, loaded, val)
	for _, b := range val.Blobs[:50] {
		if loaded.Score(b) != pp.Score(b) {
			t.Fatal("KDE score mismatch after reload")
		}
	}
}

func TestPersistDNNPP(t *testing.T) {
	train := ringSet(400, 66)
	val := ringSet(200, 67)
	pp, err := Train("onring", train, val, TrainConfig{Approach: "DNN", Seed: 68,
		DNN: dnnQuickConfig()})
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, pp)
	assertSameBehaviour(t, pp, loaded, val)
	for _, b := range val.Blobs[:50] {
		if loaded.Score(b) != pp.Score(b) {
			t.Fatal("DNN score mismatch after reload")
		}
	}
}

func TestPersistPCAReducedPP(t *testing.T) {
	train := ringSet(500, 69)
	val := ringSet(300, 70)
	pp, err := Train("onring", train, val, TrainConfig{Approach: "PCA+KDE", Seed: 71, PCADims: 2})
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, pp)
	for _, b := range val.Blobs[:50] {
		if loaded.Score(b) != pp.Score(b) {
			t.Fatal("PCA+KDE score mismatch after reload")
		}
	}
}

func TestPersistFHPP(t *testing.T) {
	train := sparseSet(500, 1000, 72)
	val := sparseSet(300, 1000, 73)
	pp, err := Train("cat=1", train, val, TrainConfig{Approach: "FH+SVM", Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, pp)
	for _, b := range val.Blobs[:50] {
		if loaded.Score(b) != pp.Score(b) {
			t.Fatal("FH+SVM score mismatch after reload")
		}
	}
}

func TestPersistNegatedPPRederives(t *testing.T) {
	// A negated PP round-trips with its negation flag; its thresholds must
	// stay the negated curve's.
	train := linearSet(400, 75)
	val := linearSet(200, 76)
	base, err := Train("sum>1.2", train, val, TrainConfig{Approach: "Raw+SVM", Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := base.Negate("sum<=1.2")
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, neg)
	if !loaded.Negated() {
		t.Fatal("negation flag lost")
	}
	if loaded.Threshold(0.95) != neg.Threshold(0.95) {
		t.Fatal("negated threshold mismatch")
	}
	if loaded.Score(val.Blobs[0]) != neg.Score(val.Blobs[0]) {
		t.Fatal("negated score mismatch")
	}
}

func TestLoadPPGarbage(t *testing.T) {
	if _, err := LoadPP(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

// dnnQuickConfig keeps DNN training short in persistence tests.
func dnnQuickConfig() dnn.Config {
	return dnn.Config{Epochs: 5}
}
