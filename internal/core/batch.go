// Batch scoring fast path. The paper's premise is that PPs are cheap enough
// to run on every input blob (§5, Table 5); this file keeps the simulator
// itself cheap by scoring whole batches through flat, recycled buffers
// instead of allocating a reduced vector per blob and dispatching through
// two interfaces per row.
//
// The fast path engages only when both halves of the PP opt in: the reducer
// implements dimred.BatchReducer and the scorer implements BatchScorer. Both
// interfaces carry a bit-identicality contract — per-row accumulation order
// must match the scalar path exactly — so ScoreBatch is a drop-in replacement
// for a Score loop everywhere, including threshold comparisons and the
// engine's virtual-cost accounting. Third-party reducers or scorers that
// implement neither interface simply take the per-row fallback loop.
package core

import (
	"sync"

	"probpred/internal/blob"
	"probpred/internal/dimred"
)

// BatchScorer is the optional batch fast path of Scorer: score many reduced
// vectors held row-major in one flat buffer. The built-in families implement
// it (svm: one flat dot-product sweep; dnn: blocked forward pass; kde:
// batched KNN over reusable scratch). Results must be bit-identical to
// calling Score on each row — implementations that cannot guarantee that
// must not implement the interface.
type BatchScorer interface {
	Scorer
	// ScoreBatch scores the len(out) vectors stored row-major in xs (row i
	// is xs[i*d:(i+1)*d]) into out.
	ScoreBatch(xs []float64, d int, out []float64)
}

// scoreTile bounds how many rows ScoreBatch reduces before scoring them.
// Tiling keeps the flat reduction buffer cache-resident: the scorer sweeps
// rows the reducer just wrote instead of re-streaming a batch-sized buffer
// from memory. Per-row results are independent of the tile boundary, so the
// bit-identicality contract is unaffected.
const scoreTile = 256

// flatPool recycles the row-major reduction buffers ScoreBatch fills.
var flatPool sync.Pool

func getFlat(n int) []float64 {
	if p, ok := flatPool.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putFlat(buf []float64) { flatPool.Put(&buf) }

// ScoreBatch scores every blob into dst (len(dst) must equal len(blobs)),
// bit-identical to calling Score per blob. When both the reducer and the
// scorer support batching, all reductions are written into one recycled
// row-major buffer and scored in a single sweep; otherwise each blob takes
// the scalar path.
func (p *PP) ScoreBatch(blobs []blob.Blob, dst []float64) {
	br, rok := p.reducer.(dimred.BatchReducer)
	bs, sok := p.scorer.(BatchScorer)
	if !rok || !sok {
		for i, b := range blobs {
			dst[i] = p.Score(b)
		}
		return
	}
	d := p.reducer.OutDim()
	flat := getFlat(min(len(blobs), scoreTile) * d)
	for lo := 0; lo < len(blobs); lo += scoreTile {
		hi := min(lo+scoreTile, len(blobs))
		br.ReduceBatch(blobs[lo:hi], flat[:(hi-lo)*d])
		bs.ScoreBatch(flat[:(hi-lo)*d], d, dst[lo:hi])
	}
	putFlat(flat)
	if p.negated {
		for i := range dst[:len(blobs)] {
			dst[i] = -dst[i]
		}
	}
}

// PassBatch evaluates Pass for every blob at target accuracy a into dst
// (len(dst) must equal len(blobs)), through the batch scoring path.
func (p *PP) PassBatch(blobs []blob.Blob, a float64, dst []bool) {
	th := p.curve.Threshold(a)
	scores := getFlat(len(blobs))
	p.ScoreBatch(blobs, scores)
	for i, s := range scores {
		dst[i] = s >= th
	}
	putFlat(scores)
}

// scoreAll scores a raw reducer+scorer pair over blobs into a fresh slice,
// batching when both halves support it — the shared kernel behind curve
// construction, model selection and recalibration.
func scoreAll(reducer dimred.Reducer, scorer Scorer, blobs []blob.Blob) []float64 {
	scores := make([]float64, len(blobs))
	br, rok := reducer.(dimred.BatchReducer)
	bs, sok := scorer.(BatchScorer)
	if !rok || !sok {
		for i, b := range blobs {
			scores[i] = scorer.Score(reducer.Reduce(b))
		}
		return scores
	}
	d := reducer.OutDim()
	flat := getFlat(min(len(blobs), scoreTile) * d)
	for lo := 0; lo < len(blobs); lo += scoreTile {
		hi := min(lo+scoreTile, len(blobs))
		br.ReduceBatch(blobs[lo:hi], flat[:(hi-lo)*d])
		bs.ScoreBatch(flat[:(hi-lo)*d], d, scores[lo:hi])
	}
	putFlat(flat)
	return scores
}
