package core

import (
	"fmt"
	"math"
	"sort"
)

// Curve is the accuracy-versus-data-reduction profile of a PP, computed on a
// held-out validation set (§5.6: the classifiers are trained on 𝒟_train but
// r(a] is calculated on 𝒟_val).
//
// The decision rule is PP(x) = +1 iff f(ψ(x)) ≥ th(a] (Eq. 2) where th(a] is
// the largest threshold that still lets an a-fraction of the +1-labeled
// validation blobs pass (Eq. 3, Figure 5). The reduction rate r(a] is the
// fraction of all validation blobs that fall below the threshold (Eq. 4).
type Curve struct {
	scores []float64 // raw validation scores, parallel to labels
	labels []bool
	pos    []float64 // sorted ascending scores of +1 blobs
	all    []float64 // sorted ascending scores of all blobs
}

// NewCurve builds a curve from validation scores and ground-truth labels.
// It returns an error on empty or mismatched input or when the validation
// set has no positive blobs (the threshold would be undefined).
func NewCurve(scores []float64, labels []bool) (*Curve, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("core: empty validation set for curve")
	}
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("core: %d scores but %d labels", len(scores), len(labels))
	}
	c := &Curve{
		scores: append([]float64(nil), scores...),
		labels: append([]bool(nil), labels...),
	}
	for i, s := range scores {
		if math.IsNaN(s) {
			return nil, fmt.Errorf("core: NaN validation score at index %d", i)
		}
		c.all = append(c.all, s)
		if labels[i] {
			c.pos = append(c.pos, s)
		}
	}
	if len(c.pos) == 0 {
		return nil, fmt.Errorf("core: validation set has no positive blobs")
	}
	sort.Float64s(c.pos)
	sort.Float64s(c.all)
	return c, nil
}

// Threshold returns th(a] for target accuracy a ∈ (0, 1]: the largest score
// threshold under which at least ⌈a·n₊⌉ positives still pass (score ≥ th).
func (c *Curve) Threshold(a float64) float64 {
	nPos := len(c.pos)
	k := int(math.Ceil(a * float64(nPos)))
	if k <= 0 {
		return math.Inf(1) // a ≤ 0 would let everything be dropped
	}
	if k > nPos {
		k = nPos
	}
	// The k highest positive scores must pass, so th is the k-th highest.
	return c.pos[nPos-k]
}

// Reduction returns r(a]: the fraction of validation blobs with score
// strictly below th(a], i.e. the blobs the PP discards (Eq. 4).
func (c *Curve) Reduction(a float64) float64 {
	return c.ReductionAtThreshold(c.Threshold(a))
}

// ReductionAtThreshold returns the fraction of validation blobs whose score
// is strictly below th.
func (c *Curve) ReductionAtThreshold(th float64) float64 {
	idx := sort.SearchFloat64s(c.all, th) // first index with score >= th
	return float64(idx) / float64(len(c.all))
}

// AccuracyAtThreshold returns the fraction of positive validation blobs with
// score ≥ th (the empirical accuracy the threshold achieves).
func (c *Curve) AccuracyAtThreshold(th float64) float64 {
	idx := sort.SearchFloat64s(c.pos, th)
	return float64(len(c.pos)-idx) / float64(len(c.pos))
}

// Negate returns the curve of the PP for the negated predicate, reusing the
// same validation scores with signs flipped and labels inverted (§5.6:
// multiplying the classifier by −1 yields the classifier for ¬p).
func (c *Curve) Negate() (*Curve, error) {
	scores := make([]float64, len(c.scores))
	labels := make([]bool, len(c.labels))
	for i := range c.scores {
		scores[i] = -c.scores[i]
		labels[i] = !c.labels[i]
	}
	return NewCurve(scores, labels)
}

// ValidationN returns the number of validation blobs behind the curve.
func (c *Curve) ValidationN() int { return len(c.all) }

// ValidationSelectivity returns the fraction of positive validation blobs.
func (c *Curve) ValidationSelectivity() float64 {
	return float64(len(c.pos)) / float64(len(c.all))
}
