package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"probpred/internal/dimred"
	"probpred/internal/dnn"
	"probpred/internal/kde"
	"probpred/internal/svm"
)

// PP persistence: trained probabilistic predicates are the reusable asset of
// the whole design (§6: "our QO can support predicates ... at lower training
// and runtime costs" because PPs trained once serve many queries), so they
// can be saved and reloaded with encoding/gob. The built-in reducer and
// classifier families are registered here; callers who plug custom Scorer or
// Reducer implementations must gob.Register them before saving/loading.

func init() {
	gob.Register(&svm.Model{})
	gob.Register(&kde.Model{})
	gob.Register(&dnn.Model{})
	gob.Register(dimred.Identity{})
	gob.Register(&dimred.PCA{})
	gob.Register(dimred.FeatureHash{})
}

// ppGob is the serialized form of a PP. The curve's raw validation scores
// and labels are persisted so that negation reuse and threshold queries keep
// working after a reload.
type ppGob struct {
	Clause, Approach string
	Reducer          dimred.Reducer
	Scorer           Scorer
	Scores           []float64
	Labels           []bool
	Negated          bool
	TrainN           int
	TrainDuration    time.Duration
}

// GobEncode implements gob.GobEncoder.
func (p *PP) GobEncode() ([]byte, error) {
	g := ppGob{
		Clause: p.Clause, Approach: p.Approach,
		Reducer: p.reducer, Scorer: p.scorer,
		Scores: p.curve.scores, Labels: p.curve.labels,
		Negated: p.negated, TrainN: p.TrainN, TrainDuration: p.TrainDuration,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return nil, fmt.Errorf("core: encoding PP %q: %w", p.Clause, err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (p *PP) GobDecode(data []byte) error {
	var g ppGob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return fmt.Errorf("core: decoding PP: %w", err)
	}
	curve, err := NewCurve(g.Scores, g.Labels)
	if err != nil {
		return fmt.Errorf("core: decoding PP %q: %w", g.Clause, err)
	}
	p.Clause = g.Clause
	p.Approach = g.Approach
	p.reducer = g.Reducer
	p.scorer = g.Scorer
	p.curve = curve
	p.negated = g.Negated
	p.TrainN = g.TrainN
	p.TrainDuration = g.TrainDuration
	return nil
}

// Save writes the PP to w.
func (p *PP) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("core: saving PP %q: %w", p.Clause, err)
	}
	return nil
}

// LoadPP reads a PP previously written with Save.
func LoadPP(r io.Reader) (*PP, error) {
	var p PP
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: loading PP: %w", err)
	}
	return &p, nil
}
