package core

import (
	"math"
	"testing"
	"testing/quick"

	"probpred/internal/mathx"
)

// simpleCurve: positives score high, negatives low, with overlap.
func simpleCurve(t *testing.T) *Curve {
	t.Helper()
	scores := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	labels := []bool{false, false, false, false, true, false, true, true, true, true}
	c, err := NewCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCurveThresholdFullAccuracy(t *testing.T) {
	c := simpleCurve(t)
	// At a=1 every positive must pass: th = min positive score = 0.5.
	if th := c.Threshold(1); th != 0.5 {
		t.Fatalf("Threshold(1) = %v, want 0.5", th)
	}
	// r(1] = fraction of scores < 0.5 = 4/10.
	if r := c.Reduction(1); r != 0.4 {
		t.Fatalf("Reduction(1) = %v, want 0.4", r)
	}
}

func TestCurveRelaxedAccuracy(t *testing.T) {
	c := simpleCurve(t)
	// 5 positives; a=0.8 needs ceil(0.8*5)=4 to pass: th = 4th-highest
	// positive = 0.7.
	if th := c.Threshold(0.8); th != 0.7 {
		t.Fatalf("Threshold(0.8) = %v, want 0.7", th)
	}
	// Scores < 0.7: six of ten.
	if r := c.Reduction(0.8); r != 0.6 {
		t.Fatalf("Reduction(0.8) = %v, want 0.6", r)
	}
}

func TestCurveMonotonicity(t *testing.T) {
	c := simpleCurve(t)
	prevR := math.Inf(1)
	for _, a := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
		r := c.Reduction(a)
		if r > prevR {
			t.Fatalf("reduction increased as accuracy tightened: r(%v)=%v > %v", a, r, prevR)
		}
		prevR = r
	}
}

func TestCurveAccuracyAtThreshold(t *testing.T) {
	c := simpleCurve(t)
	th := c.Threshold(0.8)
	if got := c.AccuracyAtThreshold(th); got < 0.8 {
		t.Fatalf("achieved accuracy %v < target 0.8", got)
	}
}

func TestCurveErrors(t *testing.T) {
	if _, err := NewCurve(nil, nil); err == nil {
		t.Fatal("expected error for empty curve")
	}
	if _, err := NewCurve([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("expected error for mismatch")
	}
	if _, err := NewCurve([]float64{1, 2}, []bool{false, false}); err == nil {
		t.Fatal("expected error for no positives")
	}
	if _, err := NewCurve([]float64{math.NaN()}, []bool{true}); err == nil {
		t.Fatal("expected error for NaN score")
	}
}

func TestCurveNegate(t *testing.T) {
	c := simpleCurve(t)
	n, err := c.Negate()
	if err != nil {
		t.Fatal(err)
	}
	// The negated curve has the 5 former negatives as positives, with
	// negated scores; at a=1 all must pass: th = -0.6 (the lowest negated
	// negative score... i.e. -(highest original negative) = -0.6).
	if th := n.Threshold(1); th != -0.6 {
		t.Fatalf("negated Threshold(1) = %v, want -0.6", th)
	}
	if n.ValidationSelectivity() != 0.5 {
		t.Fatalf("negated selectivity = %v", n.ValidationSelectivity())
	}
}

func TestCurveDoubleNegateRoundTrips(t *testing.T) {
	c := simpleCurve(t)
	n, err := c.Negate()
	if err != nil {
		t.Fatal(err)
	}
	nn, err := n.Negate()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []float64{0.7, 0.9, 1.0} {
		if nn.Threshold(a) != c.Threshold(a) {
			t.Fatalf("double negation changed threshold at a=%v", a)
		}
		if nn.Reduction(a) != c.Reduction(a) {
			t.Fatalf("double negation changed reduction at a=%v", a)
		}
	}
}

func TestCurveValidationAccessors(t *testing.T) {
	c := simpleCurve(t)
	if c.ValidationN() != 10 {
		t.Fatalf("ValidationN = %d", c.ValidationN())
	}
	if c.ValidationSelectivity() != 0.5 {
		t.Fatalf("ValidationSelectivity = %v", c.ValidationSelectivity())
	}
}

// Property: for random curves, the empirical accuracy at th(a] is always at
// least a, and reduction is in [0,1].
func TestCurveThresholdGuaranteeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 2 + rng.Intn(200)
		scores := make([]float64, n)
		labels := make([]bool, n)
		hasPos := false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Bernoulli(0.3)
			hasPos = hasPos || labels[i]
		}
		if !hasPos {
			labels[0] = true
		}
		c, err := NewCurve(scores, labels)
		if err != nil {
			return false
		}
		for _, a := range []float64{0.5, 0.8, 0.9, 0.99, 1.0} {
			th := c.Threshold(a)
			if c.AccuracyAtThreshold(th) < a {
				return false
			}
			r := c.Reduction(a)
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
