package core

import (
	"fmt"

	"probpred/internal/blob"
	"probpred/internal/mathx"
)

// CandidateApproaches lists the ψ+f combinations applicable to a training
// set, pruned by the applicability constraints of Table 2: feature hashing
// is reserved for sparse inputs (collisions hurt dense features, §5.4); raw
// (unreduced) classifiers are limited to modest dimensionality; the DNN is
// offered only when cfg.AllowDNN acknowledges its training cost (§5.3).
func CandidateApproaches(train blob.Set, cfg TrainConfig) []string {
	cfg.fill()
	var out []string
	if train.AnySparse() {
		out = append(out, "FH+SVM", "FH+KDE")
		if cfg.AllowDNN {
			out = append(out, "FH+DNN")
		}
		return out
	}
	dim := train.Dim()
	out = append(out, "PCA+KDE", "PCA+SVM")
	if dim <= 64 {
		out = append(out, "Raw+SVM")
	}
	if dim <= 16 {
		out = append(out, "Raw+KDE")
	}
	if cfg.AllowDNN {
		out = append(out, "DNN")
	}
	return out
}

// SelectApproach implements the model selection of §5.5 (Eq. 8): each
// candidate approach is trained on a small sample of the training data and
// the approach with the highest reduction rate at the selection accuracy
// (default 0.95) on a validation sample wins. Candidates that fail to train
// are skipped; if all fail, the last error is returned.
func SelectApproach(train, val blob.Set, cfg TrainConfig) (string, error) {
	cfg.fill()
	candidates := CandidateApproaches(train, cfg)
	rng := mathx.NewRNG(cfg.Seed ^ 0x5e1ec7)
	trainSample := train.Sample(rng, cfg.SelectionSample)
	valSample := val.Sample(rng, cfg.SelectionSample)
	best := ""
	bestR := -1.0
	var lastErr error
	for _, approach := range candidates {
		r, err := evalApproach(approach, trainSample, valSample, cfg)
		if err != nil {
			lastErr = err
			continue
		}
		if r > bestR {
			bestR, best = r, approach
		}
	}
	if best == "" {
		return "", fmt.Errorf("no candidate approach trained successfully: %w", lastErr)
	}
	return best, nil
}

// evalApproach trains one candidate on the sample and returns its reduction
// at the selection accuracy.
func evalApproach(approach string, trainSample, valSample blob.Set, cfg TrainConfig) (float64, error) {
	reducer, scorer, err := trainApproach(approach, trainSample, cfg)
	if err != nil {
		return 0, err
	}
	scores := scoreAll(reducer, scorer, valSample.Blobs)
	curve, err := NewCurve(scores, valSample.Labels)
	if err != nil {
		return 0, err
	}
	return curve.Reduction(cfg.SelectionAccuracy), nil
}
