package bench

import (
	"fmt"

	"probpred/internal/data"
	"probpred/internal/mathx"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// Coverage quantifies §8.2's closing claim: the space of possible traffic
// predicates is ~100⁴, yet a corpus of 32 per-clause PPs covers it —
// "a complex predicate will receive data reduction as long as some
// combination of PPs in the corpus is a necessary condition". We draw
// random ad-hoc predicates (1-4 clauses over the five columns, mixing =,
// ≠, ranges and in-sets, none trained directly) and measure, for the full
// corpus and progressively halved ones, how many predicates get at least
// one feasible plan and what reduction the chosen plan estimates.
func Coverage(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "coverage",
		Title: "Random ad-hoc predicates vs corpus size: feasibility and estimated reduction (a=0.95)"}
	nPreds := cfg.scale(200, 60)
	rng := mathx.NewRNG(cfg.Seed ^ 0xc0de)
	preds := make([]query.Pred, nPreds)
	for i := range preds {
		preds[i] = randomTrafficPredicate(rng)
	}

	corpora := []struct {
		name string
		keep int // keep every keep-th clause
	}{
		{"full (32 PPs)", 1},
		{"half (16 PPs)", 2},
		{"quarter (8 PPs)", 4},
	}
	tb := &table{header: []string{"corpus", "covered", "est r (median)", "est r (mean)", "#plans (median)"}}
	for _, c := range corpora {
		corpus := optimizer.NewCorpus()
		for i, clause := range corpusClauses() {
			if i%c.keep != 0 {
				continue
			}
			if pp, ok := h.Opt.Corpus().Get(clause); ok {
				corpus.Add(pp)
			}
		}
		opt := optimizer.New(corpus)
		covered := 0
		var reductions []float64
		var plans []float64
		for _, p := range preds {
			dec, err := opt.Optimize(p, optimizer.Options{
				Accuracy: 0.95, UDFCost: 100, Domains: data.TrafficDomains(),
			})
			if err != nil {
				return nil, err
			}
			plans = append(plans, float64(dec.NumCandidates))
			if dec.Inject {
				covered++
				reductions = append(reductions, dec.Reduction)
			}
		}
		tb.add(c.name,
			fmt.Sprintf("%d/%d", covered, nPreds),
			f3(mathx.Quantile(reductions, 0.5)),
			f3(mathx.Mean(reductions)),
			fmt.Sprintf("%.0f", mathx.Quantile(plans, 0.5)))
	}
	rep.Lines = tb.render()
	rep.addf("predicate space: %d random ad-hoc predicates, none trained directly", nPreds)
	return rep, nil
}

// randomTrafficPredicate draws a 1-4 clause conjunction over distinct
// columns, each clause one of the shapes of Table 7 (equality, inequality,
// in-set, comparison, range).
func randomTrafficPredicate(rng *mathx.RNG) query.Pred {
	cols := []string{"t", "c", "s", "i", "o"}
	order := rng.Perm(len(cols))
	nClauses := 1 + rng.Intn(4)
	var kids []query.Pred
	for _, ci := range order[:nClauses] {
		kids = append(kids, randomClause(rng, cols[ci]))
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return &query.And{Kids: kids}
}

func randomClause(rng *mathx.RNG, col string) query.Pred {
	switch col {
	case "s":
		// Comparison or range on 5 mph boundaries (the discretized space).
		lo := float64(5 * (2 + rng.Intn(12))) // 10..65
		switch rng.Intn(3) {
		case 0:
			return &query.Clause{Col: "s", Op: query.OpGt, Val: query.Number(lo)}
		case 1:
			return &query.Clause{Col: "s", Op: query.OpLt, Val: query.Number(lo + 10)}
		default:
			return &query.And{Kids: []query.Pred{
				&query.Clause{Col: "s", Op: query.OpGt, Val: query.Number(lo)},
				&query.Clause{Col: "s", Op: query.OpLt, Val: query.Number(lo + 5 + float64(5*rng.Intn(3)))},
			}}
		}
	default:
		dom := domainValues(col)
		switch rng.Intn(3) {
		case 0: // equality
			return &query.Clause{Col: col, Op: query.OpEq, Val: query.Str(dom[rng.Intn(len(dom))])}
		case 1: // inequality
			return &query.Clause{Col: col, Op: query.OpNe, Val: query.Str(dom[rng.Intn(len(dom))])}
		default: // in-set of two distinct values
			i := rng.Intn(len(dom))
			j := (i + 1 + rng.Intn(len(dom)-1)) % len(dom)
			return &query.Or{Kids: []query.Pred{
				&query.Clause{Col: col, Op: query.OpEq, Val: query.Str(dom[i])},
				&query.Clause{Col: col, Op: query.OpEq, Val: query.Str(dom[j])},
			}}
		}
	}
}

func domainValues(col string) []string {
	switch col {
	case "t":
		return data.VehicleTypes
	case "c":
		return data.VehicleColors
	default:
		return data.Intersections
	}
}
