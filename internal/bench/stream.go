package bench

// Stream is the streaming-ingestion drift scenario (DESIGN.md "Streaming
// ingestion", ROADMAP item 4): a segment-versioned corpus whose label
// distribution inverts mid-stream, served by standing queries whose PP is
// trained incrementally — warm-started — segment by segment. The experiment
// shows the full watchdog arc (trip on drift → NoP fallback → retrain on
// fresh labels → probation → close) with the per-segment cluster cost ratio
// against the NoP plan recovering below 0.8 once the retrained PP is live,
// plus a frozen-corpus check that per-segment deltas concatenate
// byte-identically to the one-shot batch query. CI gates on backfill
// equivalence, the trip happening, the breaker closing again, post-recovery
// accuracy >= target and post-recovery cost ratio <= 0.8.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/online"
	"probpred/internal/optimizer"
	"probpred/internal/query"
	"probpred/internal/serve"
	"probpred/internal/stream"
)

// A stream blob carries two features: x0 ∈ [0,1) and a regime bit. Ground
// truth is s = 80·x0 in regime 0 and s = 80·(1−x0) in regime 1, so a PP
// trained before the inversion is exactly anti-correlated with truth after
// it — the worst-case drift the watchdog exists for.
func segStreamBlobs(n int, seed uint64, startID int, inverted bool) []blob.Blob {
	rng := mathx.NewRNG(seed)
	out := make([]blob.Blob, n)
	reg := 0.0
	if inverted {
		reg = 1
	}
	for i := range out {
		out[i] = blob.FromDense(startID+i, mathx.Vec{rng.Float64(), reg})
	}
	return out
}

func segStreamLookup(b blob.Blob) query.Lookup {
	return func(col string) (query.Value, bool) {
		if col != "s" {
			return query.Value{}, false
		}
		x := b.Dense[0]
		if b.Dense[1] != 0 {
			x = 1 - x
		}
		return query.Number(80 * x), true
	}
}

// segStreamUDF materializes the s column — the expensive stage the PP
// short-circuits.
type segStreamUDF struct{ cost float64 }

func (u segStreamUDF) Name() string  { return "speedUDF" }
func (u segStreamUDF) Cost() float64 { return u.cost }
func (u segStreamUDF) Apply(r engine.Row) ([]engine.Row, error) {
	v, _ := segStreamLookup(r.Blob)("s")
	return []engine.Row{r.With("s", v)}, nil
}

// segStreamBuilder implements serve.CorpusBuilder over any blob slice:
// scan → [PP filter] → UDF → σ.
type segStreamBuilder struct{ udf engine.Processor }

func (b *segStreamBuilder) UDFCost(query.Pred) (float64, error) { return b.udf.Cost(), nil }

func (b *segStreamBuilder) BuildOver(blobs []blob.Blob, pred query.Pred, filter engine.BlobFilter) (engine.Plan, error) {
	ops := []engine.Operator{&engine.Scan{Blobs: blobs}}
	if filter != nil {
		ops = append(ops, &engine.PPFilter{F: filter})
	}
	ops = append(ops, &engine.Process{P: b.udf}, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}, nil
}

// StreamSegment is one ingested segment's outcome.
type StreamSegment struct {
	Index   int    `json:"index"`
	Version uint64 `json:"version"`
	// Regime is 0 before the label inversion, 1 after.
	Regime int `json:"regime"`
	Blobs  int `json:"blobs"`
	Rows   int `json:"rows"`
	// Injected reports whether the standing query ran with a PP filter.
	Injected bool `json:"injected"`
	// Accuracy is the audited realized accuracy (retained/expected); -1 when
	// the segment carried no accuracy evidence.
	Accuracy float64 `json:"accuracy"`
	// ClusterVMS / NoPClusterVMS are the segment's virtual cluster costs
	// with the standing query's plan and with the PP-less baseline plan.
	ClusterVMS    float64 `json:"cluster_vms"`
	NoPClusterVMS float64 `json:"nop_cluster_vms"`
	// CostRatio is ClusterVMS / NoPClusterVMS.
	CostRatio float64 `json:"cost_ratio"`
	// Breaker is the watchdog circuit state after the segment landed.
	Breaker string `json:"breaker"`
	// Trainings / Trips are cumulative counts after the segment.
	Trainings int `json:"trainings"`
	Trips     int `json:"trips"`
}

// StreamDoc is the machine-readable report written to BENCH_stream.json.
type StreamDoc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`

	Clause   string  `json:"clause"`
	Accuracy float64 `json:"accuracy"`
	// Margin is the watchdog's accuracy slack: a segment is healthy when
	// observed >= Accuracy - Margin, which is also the CI recovery gate.
	Margin   float64 `json:"margin"`
	SegSize  int     `json:"seg_size"`
	Segments int     `json:"segments"`
	// DriftAt is the segment index at which the label distribution inverts.
	DriftAt int `json:"drift_at"`

	Timeline []StreamSegment `json:"timeline"`

	Trainings int `json:"trainings"`
	Trips     int `json:"trips"`
	// WatchdogTripped: the inversion tripped the clause's breaker.
	WatchdogTripped bool `json:"watchdog_tripped"`
	// WatchdogRecovered: a post-trip retraining ran and the breaker closed
	// again by the end of the stream.
	WatchdogRecovered bool `json:"watchdog_recovered"`
	// PreDriftCostRatio / RecoveredCostRatio are mean per-segment cost
	// ratios over the healthy pre-drift window and the final window after
	// recovery. CI requires RecoveredCostRatio <= 0.8.
	PreDriftCostRatio  float64 `json:"pre_drift_cost_ratio"`
	RecoveredCostRatio float64 `json:"recovered_cost_ratio"`
	// RecoveredAccuracy is the mean audited accuracy over the post-recovery
	// window. CI requires >= Accuracy.
	RecoveredAccuracy float64 `json:"recovered_accuracy"`

	// BackfillSegments / BackfillEqual report the frozen-corpus equivalence
	// pass: per-segment deltas concatenated across BackfillSegments segments
	// versus the one-shot batch query, byte-compared. CI requires true.
	BackfillSegments int  `json:"backfill_segments"`
	BackfillEqual    bool `json:"backfill_equal"`
}

// Write serders the document as indented JSON.
func (d *StreamDoc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// renderStreamRows flattens result rows to the byte-comparison primitive.
func renderStreamRows(resp *serve.Response) string {
	var sb strings.Builder
	for _, r := range resp.Result.Rows {
		fmt.Fprintf(&sb, "%d:%v;", r.Blob.ID, r.Cols)
	}
	return sb.String()
}

// RunStreamBench runs the drift scenario and the frozen-corpus backfill
// equivalence pass, returning the JSON document plus a rendered report.
func RunStreamBench(cfg Config) (*StreamDoc, *Report, error) {
	const (
		clause   = "s>40"
		accuracy = 0.9
		udfCost  = 40.0
		workers  = 4
	)
	segSize := cfg.scale(400, 150)
	nSegs := cfg.scale(30, 20)
	// The inversion lands one segment after a scheduled retraining (the
	// cadence is every 4 segments, with the cold start at segment 0), so
	// the stale model serves K=3 breaching segments before the next
	// scheduled retraining could silently absorb the drift — the watchdog,
	// not the schedule, must catch it.
	driftAt := (nSegs/2/4)*4 + 1

	sys, err := online.New(online.Config{
		Clauses:   []string{clause},
		MinLabels: segSize,
		// Scheduled (warm) retrainings run every 4 segments: incremental
		// enough to track slow drift, slow enough that the mid-run label
		// inversion accumulates K consecutive breaches and demonstrably
		// trips the watchdog instead of being silently absorbed by the next
		// scheduled retraining.
		RetrainEvery: 4 * segSize,
		BufferCap:    segSize + segSize/2,
		Train:        core.TrainConfig{Approach: "Raw+SVM", Seed: cfg.Seed + 1},
		WarmStart:    true,
		Seed:         cfg.Seed + 2,
		Watchdog:     online.WatchdogConfig{K: 3, Margin: 0.08, FreshLabels: segSize + segSize/2},
		Metrics:      cfg.Metrics,
		Obs:          cfg.Obs,
	})
	if err != nil {
		return nil, nil, err
	}
	builder := &segStreamBuilder{udf: segStreamUDF{cost: udfCost}}
	exec := engine.Config{NoStageOverhead: true, Workers: workers, Obs: cfg.Obs, Metrics: cfg.Metrics}
	srv, err := serve.New(serve.Config{
		Optimizer: optimizer.New(sys.Corpus()),
		Corpus:    builder,
		Accuracy:  accuracy,
		Exec:      exec,
		Metrics:   cfg.Metrics,
		Obs:       cfg.Obs,
	})
	if err != nil {
		return nil, nil, err
	}
	ing, err := stream.New(stream.Config{
		Server:  srv,
		Corpus:  stream.NewSegmentedCorpus(),
		Online:  sys,
		Lookup:  segStreamLookup,
		Seed:    cfg.Seed + 3,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, nil, err
	}
	pred := query.MustParse(clause)
	if err := ing.Register(stream.Query{ID: "SQ", Pred: clause, Accuracy: accuracy}); err != nil {
		return nil, nil, err
	}

	doc := &StreamDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
		Clause:      clause,
		Accuracy:    accuracy,
		Margin:      0.08,
		SegSize:     segSize,
		Segments:    nSegs,
		DriftAt:     driftAt,
	}

	for i := 0; i < nSegs; i++ {
		inverted := i >= driftAt
		blobs := segStreamBlobs(segSize, cfg.Seed+100+uint64(i), i*segSize, inverted)
		deltas, err := ing.Ingest(blobs)
		if err != nil {
			return nil, nil, err
		}
		d := deltas[0]

		// NoP baseline: the same segment through the unmodified plan.
		nopPlan, err := builder.BuildOver(blobs, pred, nil)
		if err != nil {
			return nil, nil, err
		}
		nop, err := engine.Run(nopPlan, exec)
		if err != nil {
			return nil, nil, err
		}

		seg := StreamSegment{
			Index:         d.Segment.Index,
			Version:       d.Segment.Version,
			Blobs:         d.Segment.Len(),
			Rows:          len(d.Resp.Result.Rows),
			Injected:      d.Resp.Decision.Inject,
			Accuracy:      -1,
			ClusterVMS:    d.Resp.Result.ClusterTime,
			NoPClusterVMS: nop.ClusterTime,
			Breaker:       sys.Breaker(clause).String(),
			Trainings:     sys.Trainings,
			Trips:         sys.Trips,
		}
		if inverted {
			seg.Regime = 1
		}
		if d.Audited {
			seg.Accuracy = d.Observed
		}
		if nop.ClusterTime > 0 {
			seg.CostRatio = d.Resp.Result.ClusterTime / nop.ClusterTime
		}
		doc.Timeline = append(doc.Timeline, seg)
	}

	doc.Trainings = sys.Trainings
	doc.Trips = sys.Trips
	doc.WatchdogTripped = sys.Trips > 0

	// Windows: pre-drift segments served under an injected PP; the recovered
	// window is everything after the last breaker transition back to closed
	// following the trip.
	var pre []StreamSegment
	for _, s := range doc.Timeline[:driftAt] {
		if s.Injected {
			pre = append(pre, s)
		}
	}
	recoveredFrom := -1
	for i := driftAt; i < len(doc.Timeline); i++ {
		s := doc.Timeline[i]
		if s.Trips > 0 && s.Breaker == "closed" && s.Trainings > doc.Timeline[driftAt-1].Trainings {
			recoveredFrom = i
			break
		}
	}
	doc.WatchdogRecovered = recoveredFrom >= 0 && doc.Timeline[len(doc.Timeline)-1].Breaker == "closed"
	mean := func(segs []StreamSegment, f func(StreamSegment) float64) float64 {
		if len(segs) == 0 {
			return 0
		}
		var t float64
		for _, s := range segs {
			t += f(s)
		}
		return t / float64(len(segs))
	}
	doc.PreDriftCostRatio = mean(pre, func(s StreamSegment) float64 { return s.CostRatio })
	if recoveredFrom >= 0 {
		rec := doc.Timeline[recoveredFrom:]
		doc.RecoveredCostRatio = mean(rec, func(s StreamSegment) float64 { return s.CostRatio })
		var audited []StreamSegment
		for _, s := range rec {
			if s.Accuracy >= 0 {
				audited = append(audited, s)
			}
		}
		doc.RecoveredAccuracy = mean(audited, func(s StreamSegment) float64 { return s.Accuracy })
	}

	// Frozen-corpus backfill equivalence: a fresh server over the trained
	// corpus (no online loop, so PP state is frozen), fed segment-by-segment
	// and compared byte-for-byte against the one-shot batch query.
	doc.BackfillSegments = 4
	eq, err := streamBackfillEqual(sys.Corpus(), builder, exec, accuracy, clause, cfg, doc.BackfillSegments)
	if err != nil {
		return nil, nil, err
	}
	doc.BackfillEqual = eq

	rep := &Report{ID: "stream", Title: fmt.Sprintf(
		"Streaming ingestion under drift: %s over %d segments x %d blobs (inversion at segment %d)",
		clause, nSegs, segSize, driftAt)}
	tb := &table{header: []string{"seg", "regime", "rows", "acc", "cost ratio", "breaker", "trainings", "trips"}}
	for _, s := range doc.Timeline {
		acc := "-"
		if s.Accuracy >= 0 {
			acc = fmt.Sprintf("%.3f", s.Accuracy)
		}
		tb.add(fmt.Sprintf("%d", s.Index), fmt.Sprintf("%d", s.Regime), fmt.Sprintf("%d", s.Rows),
			acc, fmt.Sprintf("%.3f", s.CostRatio), s.Breaker,
			fmt.Sprintf("%d", s.Trainings), fmt.Sprintf("%d", s.Trips))
	}
	rep.Lines = tb.render()
	rep.Lines = append(rep.Lines, "",
		fmt.Sprintf("trip -> retrain -> recovery: tripped=%v recovered=%v trainings=%d",
			doc.WatchdogTripped, doc.WatchdogRecovered, doc.Trainings),
		fmt.Sprintf("cost ratio vs NoP: pre-drift %.3f, post-recovery %.3f   post-recovery accuracy %.3f (target %.2f)",
			doc.PreDriftCostRatio, doc.RecoveredCostRatio, doc.RecoveredAccuracy, doc.Accuracy),
		fmt.Sprintf("backfill == live over %d frozen segments: %v", doc.BackfillSegments, doc.BackfillEqual))
	rep.metric("watchdog_tripped", b2f(doc.WatchdogTripped))
	rep.metric("watchdog_recovered", b2f(doc.WatchdogRecovered))
	rep.metric("pre_drift_cost_ratio", doc.PreDriftCostRatio)
	rep.metric("recovered_cost_ratio", doc.RecoveredCostRatio)
	rep.metric("recovered_accuracy", doc.RecoveredAccuracy)
	rep.metric("backfill_equal", b2f(doc.BackfillEqual))
	rep.metric("trainings", float64(doc.Trainings))
	return doc, rep, nil
}

// streamBackfillEqual ingests mixed-regime segments through a frozen stack
// and byte-compares concatenated deltas against the batch query.
func streamBackfillEqual(corpus *optimizer.Corpus, builder serve.CorpusBuilder, exec engine.Config,
	accuracy float64, clause string, cfg Config, nSegs int) (bool, error) {
	srv, err := serve.New(serve.Config{
		Optimizer: optimizer.New(corpus),
		Corpus:    builder,
		Accuracy:  accuracy,
		Exec:      exec,
	})
	if err != nil {
		return false, err
	}
	ing, err := stream.New(stream.Config{Server: srv, Corpus: stream.NewSegmentedCorpus()})
	if err != nil {
		return false, err
	}
	if err := ing.Register(stream.Query{ID: "BF", Pred: clause, Accuracy: accuracy}); err != nil {
		return false, err
	}
	var live strings.Builder
	segSize := cfg.scale(300, 100)
	for i := 0; i < nSegs; i++ {
		blobs := segStreamBlobs(segSize, cfg.Seed+900+uint64(i), i*segSize, i%2 == 1)
		deltas, err := ing.Ingest(blobs)
		if err != nil {
			return false, err
		}
		live.WriteString(renderStreamRows(deltas[0].Resp))
	}
	batch, err := ing.BatchQuery("BF")
	if err != nil {
		return false, err
	}
	return live.String() == renderStreamRows(batch), nil
}

// Stream is the registry wrapper: it runs the drift scenario and returns
// just the report (cmd/ppbench -stream also writes the JSON document).
func Stream(cfg Config) (*Report, error) {
	_, rep, err := RunStreamBench(cfg)
	return rep, err
}
