package bench

import (
	"fmt"
	"time"

	"probpred/internal/baseline"
	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/optimizer"
	"probpred/internal/query"
	"probpred/internal/udf"
)

// TRAF20 is the benchmark of §8.2: twenty inference queries over traffic
// surveillance video, mixing equality (E), inequality (I), numeric (N),
// range (R), conjunction (C) and disjunction (D) shapes as in Table 7, with
// one to four clauses per predicate.
var TRAF20 = []struct {
	ID   string
	Pred string
}{
	{"Q1", "t=SUV"},
	{"Q2", "s>60"},
	{"Q3", "c=red"},
	{"Q4", "c!=white"},
	{"Q5", "i=pt303"},
	{"Q6", "s<40"},
	{"Q7", "s>60 & s<65"},
	{"Q8", "t in {sedan, truck}"},
	{"Q9", "c in {red, silver}"},
	{"Q10", "t=van & c=black"},
	{"Q11", "s>50 & t=truck"},
	{"Q12", "o=pt211 & c!=white"},
	{"Q13", "t!=sedan & s>55"},
	{"Q14", "i=pt303 & (o=pt335 | o=pt306)"},
	{"Q15", "t=SUV & s>60 & s<70"},
	{"Q16", "c=white & i=pt401 & s<45"},
	{"Q17", "(t=truck | t=van) & s>55"},
	{"Q18", "t=SUV & c=red & s>60"},
	{"Q19", "c=silver & i=pt306 & o=pt501 & s>40"},
	{"Q20", "t=SUV & c=red & i=pt335 & o=pt211"},
}

// corpusClauses lists the 32 simple clauses the §8.2 corpus trains PPs for:
// every value of the four categorical columns plus speed boundaries — the
// complete coverage discussed with Table 10.
func corpusClauses() []string {
	var out []string
	for _, t := range data.VehicleTypes {
		out = append(out, "t="+t)
	}
	for _, c := range data.VehicleColors {
		out = append(out, "c="+c)
	}
	for _, i := range data.Intersections {
		out = append(out, "i="+i)
		out = append(out, "o="+i)
	}
	for _, v := range []string{"40", "45", "50", "55", "60", "65"} {
		out = append(out, "s>"+v)
	}
	for _, v := range []string{"40", "45", "50", "65", "70"} {
		out = append(out, "s<"+v)
	}
	return out
}

// TrafficHarness holds a generated stream, a trained corpus and the plan
// builders shared by the §8.2 experiments.
type TrafficHarness struct {
	// TrainBlobs is the "first 1 GB" prefix used for PP training (80/20
	// train/validation) and selectivity estimation.
	TrainBlobs []blob.Blob
	// TestBlobs is the stream the benchmark queries run over.
	TestBlobs []blob.Blob
	// Opt is the optimizer over the trained corpus.
	Opt *optimizer.Optimizer
	// CorpusTrainTime is the total wall-clock time to build the corpus.
	CorpusTrainTime time.Duration
	// PPTrainTime maps clause to its individual training time.
	PPTrainTime map[string]time.Duration
	// Obs receives the optimizer's plan-search spans and counters for
	// queries planned through this harness (set from Config.Obs).
	Obs *obs.Tracer
	// Metrics receives per-approach training counters for PPs trained
	// through this harness (set from Config.Metrics).
	Metrics *metrics.Registry

	seed uint64
}

// NewTrafficHarness generates the stream and trains the 32-PP corpus (all
// SVMs, as in §8.2).
func NewTrafficHarness(cfg Config) (*TrafficHarness, error) {
	trainRows := cfg.scale(3000, 1500)
	testRows := cfg.scale(20000, 4000)
	all := data.Traffic(data.TrafficConfig{Rows: trainRows + testRows, Seed: cfg.Seed})
	h := &TrafficHarness{
		TrainBlobs:  all[:trainRows],
		TestBlobs:   all[trainRows:],
		PPTrainTime: map[string]time.Duration{},
		Obs:         cfg.Obs,
		Metrics:     cfg.Metrics,
		seed:        cfg.Seed,
	}
	corpus := optimizer.NewCorpus()
	start := time.Now()
	for i, clause := range corpusClauses() {
		pp, err := h.TrainPP(clause, uint64(i))
		if err != nil {
			return nil, err
		}
		h.PPTrainTime[clause] = pp.TrainDuration
		corpus.Add(pp)
	}
	h.CorpusTrainTime = time.Since(start)
	h.Opt = optimizer.New(corpus)
	return h, nil
}

// NewTrafficHarnessWithCorpus builds the harness around an existing corpus
// (e.g. one reloaded from disk), generating the same stream but skipping
// training.
func NewTrafficHarnessWithCorpus(cfg Config, corpus *optimizer.Corpus) (*TrafficHarness, error) {
	trainRows := cfg.scale(3000, 1500)
	testRows := cfg.scale(20000, 4000)
	all := data.Traffic(data.TrafficConfig{Rows: trainRows + testRows, Seed: cfg.Seed})
	return &TrafficHarness{
		TrainBlobs:  all[:trainRows],
		TestBlobs:   all[trainRows:],
		Opt:         optimizer.New(corpus),
		PPTrainTime: map[string]time.Duration{},
		Obs:         cfg.Obs,
		Metrics:     cfg.Metrics,
		seed:        cfg.Seed,
	}, nil
}

// TrainPP trains one SVM PP for a simple clause on the training prefix.
func (h *TrafficHarness) TrainPP(clause string, salt uint64) (*core.PP, error) {
	pred, err := query.Parse(clause)
	if err != nil {
		return nil, fmt.Errorf("bench: corpus clause %q: %w", clause, err)
	}
	set, err := data.TrafficSet(h.TrainBlobs, pred)
	if err != nil {
		return nil, err
	}
	train, val, _ := set.Split(newRNG(h.seed^salt), 0.8, 0.2)
	return core.Train(clause, train, val, core.TrainConfig{
		Approach: "Raw+SVM", Seed: h.seed + salt,
		SVM:     svmConfigForTraffic(),
		Metrics: h.Metrics,
	})
}

// Selectivity measures a predicate's pass rate on the training prefix (what
// a real system would estimate from history).
func (h *TrafficHarness) Selectivity(pred query.Pred) (float64, error) {
	set, err := data.TrafficSet(h.TrainBlobs, pred)
	if err != nil {
		return 0, err
	}
	return set.Selectivity(), nil
}

// NoPPlan builds the unmodified plan (the Optasia-like NoP baseline): scan,
// detector, every UDF the predicate needs, then the σ.
func (h *TrafficHarness) NoPPlan(pred query.Pred) (engine.Plan, float64, error) {
	procs, err := udf.TrafficPipeline(pred, 0, h.seed)
	if err != nil {
		return engine.Plan{}, 0, err
	}
	ops := []engine.Operator{&engine.Scan{Blobs: h.TestBlobs}}
	for _, p := range procs {
		ops = append(ops, &engine.Process{P: p})
	}
	ops = append(ops, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}, udf.PipelineCost(procs), nil
}

// PPPlan builds the PP-injected plan at the given accuracy target, returning
// the plan, the optimizer decision, and the per-blob UDF cost u.
func (h *TrafficHarness) PPPlan(pred query.Pred, accuracy float64) (engine.Plan, *optimizer.Decision, error) {
	procs, err := udf.TrafficPipeline(pred, 0, h.seed)
	if err != nil {
		return engine.Plan{}, nil, err
	}
	u := udf.PipelineCost(procs)
	dec, err := h.Opt.Optimize(pred, optimizer.Options{
		Accuracy: accuracy,
		UDFCost:  u,
		Domains:  data.TrafficDomains(),
		Obs:      h.Obs,
	})
	if err != nil {
		return engine.Plan{}, nil, err
	}
	ops := []engine.Operator{&engine.Scan{Blobs: h.TestBlobs}}
	if dec.Inject {
		ops = append(ops, &engine.PPFilter{F: dec.Filter})
	}
	for _, p := range procs {
		ops = append(ops, &engine.Process{P: p})
	}
	ops = append(ops, &engine.Select{Pred: pred})
	return engine.Plan{Ops: ops}, dec, nil
}

// SortPPlan builds the Deshpande et al. [17] baseline: predicate clauses
// (top-level conjuncts) ordered by cost/(1−selectivity), each as its own
// serialized stage.
func (h *TrafficHarness) SortPPlan(pred query.Pred) (engine.Plan, error) {
	conjuncts := topLevelConjuncts(pred)
	var clauses []baseline.SortPClause
	for _, c := range conjuncts {
		sel, err := h.Selectivity(c)
		if err != nil {
			return engine.Plan{}, err
		}
		// Each clause lists every UDF its columns require; baseline.Plan
		// deduplicates UDFs already materialized by earlier stages.
		var udfs []engine.Processor
		for _, col := range query.Columns(c) {
			p, err := udf.TrafficUDFFor(col, 0, h.seed)
			if err != nil {
				return engine.Plan{}, err
			}
			udfs = append(udfs, p)
		}
		clauses = append(clauses, baseline.SortPClause{Pred: c, UDFs: udfs, PassRate: sel})
	}
	return baseline.Plan(h.TestBlobs, []engine.Processor{udf.VehDetector{}}, clauses), nil
}

// topLevelConjuncts splits a predicate into its top-level AND factors.
func topLevelConjuncts(pred query.Pred) []query.Pred {
	if and, ok := pred.(*query.And); ok {
		return and.Kids
	}
	return []query.Pred{pred}
}
