package bench

import (
	"fmt"
	"time"

	"probpred/internal/baseline"
	"probpred/internal/core"
	"probpred/internal/data"
	"probpred/internal/dimred"
	"probpred/internal/mathx"
)

// Fig9 regenerates Figure 9: whisker statistics of the data reduction rate
// r(a] across single-clause queries on each dataset, with the dataset's
// winning PP technique.
func Fig9(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig9", Title: "Data reduction rates across datasets (whisker stats, a=1.0)"}
	nCats := cfg.scale(12, 5)
	tb := &table{header: []string{"dataset", "approach", "a", "min", "p25", "p50", "p75", "max", "mean", "queries"}}
	for _, spec := range specs(cfg) {
		d := spec.make(cfg)
		cats := pickCategories(d, nCats, 40)
		for _, a := range []float64{1.0, 0.99, 0.95} {
			var reductions []float64
			for _, k := range cats {
				pp, test, err := trainCategoryPP(d, k, spec.approach, cfg.Seed)
				if err != nil {
					return nil, err
				}
				m := core.Evaluate(pp, test, a)
				reductions = append(reductions, m.Reduction)
			}
			s := mathx.Summarize(reductions)
			tb.add(spec.name, spec.approach, f2(a), f3(s.Min), f3(s.P25), f3(s.P50),
				f3(s.P75), f3(s.Max), f3(s.Mean), fmt.Sprintf("%d", s.N))
		}
	}
	rep.Lines = tb.render()
	return rep, nil
}

// Table4 regenerates Table 4: average data reduction by approach and
// accuracy target, including the COCO→ImageNet cross-training row.
func Table4(cfg Config) (*Report, error) {
	rep := &Report{ID: "table4", Title: "Data reduction by PP approach: r(1], r(0.99], r(0.9]"}
	nCats := cfg.scale(8, 4)
	accuracies := []float64{1.0, 0.99, 0.9}
	tb := &table{header: []string{"dataset", "approach", "r(1]", "r(0.99]", "r(0.9]"}}

	ucf := data.UCF101(data.UCFConfig{Clips: 2400, Seed: cfg.Seed}) // KDE needs density; keep full scale
	for _, approach := range []string{"PCA+KDE", "PCA+SVM", "Raw+SVM"} {
		avg, err := avgReduction(ucf, nCats, approach, cfg.Seed, accuracies)
		if err != nil {
			return nil, err
		}
		tb.add("ucf101", approach, f3(avg[0]), f3(avg[1]), f3(avg[2]))
	}
	coco := data.COCO(cfg.Seed)
	for _, approach := range []string{"DNN", "PCA+SVM"} {
		avg, err := avgReduction(coco, nCats, approach, cfg.Seed, accuracies)
		if err != nil {
			return nil, err
		}
		tb.add("coco", approach, f3(avg[0]), f3(avg[1]), f3(avg[2]))
	}
	inet := data.ImageNet(cfg.Seed)
	for _, approach := range []string{"DNN", "PCA+SVM"} {
		avg, err := avgReduction(inet, nCats, approach, cfg.Seed, accuracies)
		if err != nil {
			return nil, err
		}
		tb.add("imagenet", approach, f3(avg[0]), f3(avg[1]), f3(avg[2]))
	}
	// Cross-training: DNN PPs trained on COCO-like data, applied to the
	// ImageNet-like test distribution with their COCO-calibrated thresholds.
	cats := pickCategories(coco, nCats, 40)
	cross := make([]float64, len(accuracies))
	for _, k := range cats {
		pp, _, err := trainCategoryPP(coco, k, "DNN", cfg.Seed)
		if err != nil {
			return nil, err
		}
		target := inet.SetFor(k)
		for i, a := range accuracies {
			cross[i] += core.Evaluate(pp, target, a).Reduction
		}
	}
	for i := range cross {
		cross[i] /= float64(len(cats))
	}
	tb.add("imagenet", "DNN trained on coco", f3(cross[0]), f3(cross[1]), f3(cross[2]))
	rep.Lines = tb.render()
	return rep, nil
}

func avgReduction(d *data.Categorical, nCats int, approach string, seed uint64, accuracies []float64) ([]float64, error) {
	cats := pickCategories(d, nCats, 40)
	if len(cats) == 0 {
		return nil, fmt.Errorf("bench: no usable categories in %s", d.Name)
	}
	out := make([]float64, len(accuracies))
	for _, k := range cats {
		pp, test, err := trainCategoryPP(d, k, approach, seed)
		if err != nil {
			return nil, err
		}
		for i, a := range accuracies {
			out[i] += core.Evaluate(pp, test, a).Reduction
		}
	}
	for i := range out {
		out[i] /= float64(len(cats))
	}
	return out, nil
}

// Table5 regenerates Table 5: wall-clock train/test latency per PP type and
// the optimality gap (relative reduction) at a=1 and a=0.9.
func Table5(cfg Config) (*Report, error) {
	rep := &Report{ID: "table5", Title: "PP train cost (per 1K rows), test cost (per row), optimality r/(1-s)"}
	nCats := cfg.scale(6, 3)
	tb := &table{header: []string{"dataset", "approach", "train/1K", "test/row", "opt(a=1)", "opt(a=0.9)"}}
	rows := []struct {
		spec     datasetSpec
		approach string
	}{
		{specs(cfg)[2], "PCA+KDE"}, // ucf101
		{specs(cfg)[0], "FH+SVM"},  // lshtc
		{specs(cfg)[3], "DNN"},     // coco
	}
	for _, row := range rows {
		d := row.spec.make(cfg)
		cats := pickCategories(d, nCats, 40)
		var trainPerK, testPerRow time.Duration
		var opt1, opt09 float64
		for _, k := range cats {
			pp, test, err := trainCategoryPP(d, k, row.approach, cfg.Seed)
			if err != nil {
				return nil, err
			}
			trainPerK += time.Duration(float64(pp.TrainDuration) * 1000 / float64(pp.TrainN))
			start := time.Now()
			for _, b := range test.Blobs {
				pp.Score(b)
			}
			testPerRow += time.Duration(float64(time.Since(start)) / float64(test.Len()))
			m1 := core.Evaluate(pp, test, 1)
			m09 := core.Evaluate(pp, test, 0.9)
			opt1 += m1.RelativeReduction
			opt09 += m09.RelativeReduction
		}
		n := float64(len(cats))
		tb.add(d.Name, row.approach,
			(time.Duration(float64(trainPerK) / n)).Round(time.Millisecond).String(),
			(time.Duration(float64(testPerRow) / n)).Round(time.Microsecond).String(),
			f3(opt1/n), f3(opt09/n))
	}
	rep.Lines = tb.render()
	return rep, nil
}

// Table6 regenerates Table 6: PPs versus the Joglekar et al. [27] baseline
// (raw and PCA-fed) at accuracy targets 0.99 and 0.90.
func Table6(cfg Config) (*Report, error) {
	rep := &Report{ID: "table6", Title: "Reduction rates: PP vs Joglekar et al. [27] (raw and PCA-fed)"}
	nQueries := cfg.scale(10, 4)
	dsets := []datasetSpec{specs(cfg)[0], specs(cfg)[1], specs(cfg)[2]} // lshtc, sun, ucf101
	for _, a := range []float64{0.99, 0.90} {
		tb := &table{header: []string{fmt.Sprintf("a=%.2f", a), "lshtc", "sun", "ucf101"}}
		ppRow := []string{"PP"}
		pcaJogRow := []string{"PCA+Joglekar"}
		jogRow := []string{"Joglekar"}
		speedPCARow := []string{"speed-up vs PCA+Jog"}
		speedRow := []string{"speed-up vs Jog"}
		for _, spec := range dsets {
			d := spec.make(cfg)
			cats := pickCategories(d, nQueries, 40)
			var ppR, pcaJogR, jogR float64
			for _, k := range cats {
				set := d.SetFor(k)
				rng := mathx.NewRNG(cfg.Seed ^ uint64(k)*0x77)
				train, val, test := set.Split(rng, 0.6, 0.2)
				clause := fmt.Sprintf("%s.cat=%d", d.Name, k)

				pp, err := core.Train(clause, train, val, core.TrainConfig{
					Approach: spec.approach, Seed: cfg.Seed + uint64(k)})
				if err != nil {
					return nil, err
				}
				ppR += core.Evaluate(pp, test, a).Reduction

				// The baseline combines a handful of correlated columns (its
				// per-distinct-value state grows exponentially in the columns
				// it conditions on, §3), which lets it filter some of the
				// sparse text inputs but little of the dense blobs (§8.1).
				jog, err := baseline.JoglekarFilter(clause, dimred.Identity{Dim: set.Dim()},
					train, val, baseline.CorrelationConfig{TopColumns: 4})
				if err != nil {
					return nil, err
				}
				jogR += core.Evaluate(jog, test, a).Reduction

				pca, err := dimred.FitPCA(train.Sample(rng, 400).Blobs, 8, mathx.NewRNG(cfg.Seed^0x9))
				if err != nil {
					return nil, err
				}
				pcaJog, err := baseline.JoglekarFilter(clause, pca, train, val,
					baseline.CorrelationConfig{TopColumns: 4})
				if err != nil {
					return nil, err
				}
				pcaJogR += core.Evaluate(pcaJog, test, a).Reduction
			}
			n := float64(len(cats))
			ppR, pcaJogR, jogR = ppR/n, pcaJogR/n, jogR/n
			ppRow = append(ppRow, f3(ppR))
			pcaJogRow = append(pcaJogRow, f3(pcaJogR))
			jogRow = append(jogRow, f3(jogR))
			speedPCARow = append(speedPCARow, f2((1-pcaJogR)/(1-ppR))+"x")
			speedRow = append(speedRow, f2((1-jogR)/(1-ppR))+"x")
		}
		tb.add(ppRow...)
		tb.add(pcaJogRow...)
		tb.add(speedPCARow...)
		tb.add(jogRow...)
		tb.add(speedRow...)
		rep.Lines = append(rep.Lines, tb.render()...)
		rep.Lines = append(rep.Lines, "")
	}
	return rep, nil
}

// Table13 regenerates Table 13 (Appendix B): reduction / achieved accuracy /
// training time per 1K rows as the training-set fraction grows.
func Table13(cfg Config) (*Report, error) {
	rep := &Report{ID: "table13", Title: "Reduction/accuracy/train-time vs training-set size (a target 0.99)"}
	tb := &table{header: []string{"dataset", "approach", "ts=30%", "ts=40%", "ts=50%"}}
	rows := []struct {
		spec     datasetSpec
		approach string
	}{
		{specs(cfg)[1], "PCA+KDE"}, // sun
		{specs(cfg)[2], "PCA+KDE"}, // ucf101
		{specs(cfg)[2], "Raw+SVM"}, // ucf101
		{specs(cfg)[0], "FH+SVM"},  // lshtc
		{specs(cfg)[3], "DNN"},     // coco
	}
	nCats := cfg.scale(5, 3)
	for _, row := range rows {
		d := row.spec.make(cfg)
		cats := pickCategories(d, nCats, 60)
		cells := []string{d.Name, row.approach}
		for _, ts := range []float64{0.3, 0.4, 0.5} {
			var r, acc float64
			var perK time.Duration
			for _, k := range cats {
				set := d.SetFor(k)
				rng := mathx.NewRNG(cfg.Seed ^ uint64(k)*0x7a ^ uint64(ts*100))
				train, val, test := set.Split(rng, ts, 0.2)
				pp, err := core.Train(fmt.Sprintf("cat=%d", k), train, val, core.TrainConfig{
					Approach: row.approach, Seed: cfg.Seed + uint64(k)})
				if err != nil {
					return nil, err
				}
				m := core.Evaluate(pp, test, 0.99)
				r += m.Reduction
				acc += m.Accuracy
				perK += time.Duration(float64(pp.TrainDuration) * 1000 / float64(pp.TrainN))
			}
			n := float64(len(cats))
			cells = append(cells, fmt.Sprintf("%s/%s/%s", f2(r/n), f2(acc/n),
				time.Duration(float64(perK)/n).Round(time.Millisecond)))
		}
		tb.add(cells...)
	}
	rep.Lines = tb.render()
	return rep, nil
}

// Fig15 regenerates the Figure 15/16 demonstration: per-blob confidences of
// four PPs on sample blobs, trained on COCO-like data and applied both
// in-domain and cross-domain (ImageNet-like).
func Fig15(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig15", Title: "PP confidences f(x) for 4 PPs on 12 sample blobs (in-domain and cross-domain)"}
	coco := data.COCO(cfg.Seed)
	inet := data.ImageNet(cfg.Seed)
	catNames := []string{"person", "bicycle", "car", "dog"}
	cats := pickCategories(coco, 4, 40)
	if len(cats) < 4 {
		return nil, fmt.Errorf("bench: not enough categories")
	}
	var pps []*core.PP
	for i, k := range cats {
		pp, _, err := trainCategoryPP(coco, k, "DNN", cfg.Seed)
		if err != nil {
			return nil, err
		}
		pp.Clause = "has " + catNames[i]
		pps = append(pps, pp)
	}
	for _, domain := range []struct {
		name string
		d    *data.Categorical
	}{{"coco (in-domain)", coco}, {"imagenet (cross-domain)", inet}} {
		tb := &table{header: append([]string{"blob"}, catNames...)}
		tb.header = append(tb.header, "truth")
		for _, idx := range curatedSamples(domain.d, cats) {
			b := domain.d.Blobs[idx]
			cells := []string{fmt.Sprintf("#%d", idx)}
			for _, pp := range pps {
				cells = append(cells, f2(mathx.Sigmoid(pp.Score(b))))
			}
			truth := ""
			for j, k := range cats {
				if domain.d.Members[k][idx] {
					truth += catNames[j] + " "
				}
			}
			if truth == "" {
				truth = "-"
			}
			tb.add(append(cells, truth)...)
		}
		rep.Lines = append(rep.Lines, domain.name+":")
		rep.Lines = append(rep.Lines, tb.render()...)
		rep.Lines = append(rep.Lines, "")
	}
	return rep, nil
}

// curatedSamples picks two members of each category plus four non-members,
// like the paper's hand-picked demonstration images.
func curatedSamples(d *data.Categorical, cats []int) []int {
	var out []int
	used := map[int]bool{}
	for _, k := range cats {
		picked := 0
		for i := range d.Blobs {
			if picked == 2 {
				break
			}
			if d.Members[k][i] && !used[i] {
				out = append(out, i)
				used[i] = true
				picked++
			}
		}
	}
	negatives := 0
	for i := range d.Blobs {
		if negatives == 4 {
			break
		}
		member := false
		for _, k := range cats {
			member = member || d.Members[k][i]
		}
		if !member && !used[i] {
			out = append(out, i)
			used[i] = true
			negatives++
		}
	}
	return out
}
