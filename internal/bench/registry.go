package bench

import "fmt"

// Runner regenerates one paper table or figure.
type Runner func(Config) (*Report, error)

// Experiments maps experiment ids to runners.
var Experiments = map[string]Runner{
	"table2":          Table2,
	"table7":          Table7,
	"fig9":            Fig9,
	"table4":          Table4,
	"table5":          Table5,
	"table6":          Table6,
	"fig10":           Fig10,
	"table8":          Table8,
	"table9":          Table9,
	"table10":         Table10,
	"table12":         Table12,
	"table13":         Table13,
	"fig15":           Fig15,
	"coverage":        Coverage,
	"drift":           Drift,
	"ablation-budget": AblationBudget,
	"ablation-order":  AblationOrdering,
	"ablation-k":      AblationK,
	"ablation-model":  AblationModelSelection,
	"faults":          Faults,
	"hotpath":         Hotpath,
	"serve":           Serve,
	"adapt":           Adaptive,
	"latency":         Latency,
	"shard":           Shard,
	"obs":             Obs,
	"stream":          Stream,
}

// Order lists experiment ids in the paper's order.
var Order = []string{
	"table2", "fig9", "table4", "table5", "table6",
	"table7",
	"fig10", "table8", "table9", "table10",
	"table12", "table13", "fig15", "coverage", "drift",
	"ablation-budget", "ablation-order", "ablation-k", "ablation-model",
	"faults", "hotpath", "serve", "adapt", "latency", "shard", "obs",
	"stream",
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Report, error) {
	r, ok := Experiments[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, Order)
	}
	return r(cfg)
}
