package bench

import "testing"

// TestStreamBenchQuick runs the drift scenario at quick scale and asserts
// the gated claims end-to-end: the inversion trips the watchdog, the breaker
// recovers through retraining and probation, post-recovery accuracy is
// healthy by the watchdog's own criterion, the recovered PP restores the
// cost win, and frozen-corpus backfill equals live ingestion byte-for-byte.
func TestStreamBenchQuick(t *testing.T) {
	doc, rep, err := RunStreamBench(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "stream" || len(rep.Lines) == 0 {
		t.Fatalf("malformed report: %+v", rep)
	}
	if !doc.WatchdogTripped {
		t.Error("label inversion did not trip the watchdog")
	}
	if !doc.WatchdogRecovered {
		t.Error("watchdog did not recover (retrain + probation close)")
	}
	if doc.RecoveredAccuracy < doc.Accuracy-doc.Margin {
		t.Errorf("post-recovery accuracy %.3f below healthy threshold %.3f",
			doc.RecoveredAccuracy, doc.Accuracy-doc.Margin)
	}
	if doc.RecoveredCostRatio <= 0 || doc.RecoveredCostRatio > 0.8 {
		t.Errorf("post-recovery cost ratio %.3f, want (0, 0.8]", doc.RecoveredCostRatio)
	}
	if doc.PreDriftCostRatio <= 0 || doc.PreDriftCostRatio > 0.8 {
		t.Errorf("pre-drift cost ratio %.3f, want (0, 0.8]", doc.PreDriftCostRatio)
	}
	if !doc.BackfillEqual {
		t.Error("frozen-corpus backfill != live deltas")
	}
	if len(doc.Timeline) != doc.Segments {
		t.Fatalf("timeline has %d segments, want %d", len(doc.Timeline), doc.Segments)
	}
	// A segment is served under the breaker state left by the previous
	// segment's train phase: after an "open" segment the next one must run
	// without injection (the NoP fallback).
	sawOpen := false
	for i, s := range doc.Timeline {
		if s.Breaker != "open" {
			continue
		}
		sawOpen = true
		if i+1 < len(doc.Timeline) && doc.Timeline[i+1].Trainings == s.Trainings && doc.Timeline[i+1].Injected {
			t.Errorf("segment %d served with an injected PP right after the breaker opened", i+1)
		}
	}
	if !sawOpen {
		t.Error("timeline never shows the breaker open")
	}
	// Warm-started incremental retraining: more trainings than the single
	// cold start plus the post-trip retrain.
	if doc.Trainings < 4 {
		t.Errorf("Trainings = %d, want scheduled incremental retrainings", doc.Trainings)
	}
}
