package bench

import (
	"fmt"
	"time"

	"probpred/internal/blob"
	"probpred/internal/dimred"
	"probpred/internal/dnn"
	"probpred/internal/kde"
	"probpred/internal/mathx"
	"probpred/internal/query"
	"probpred/internal/svm"
)

// Table2 backs the paper's analytical complexity table with measurements:
// for each approach it times training and testing at size n and 2n (and
// dimension d and 2d) and reports the observed scaling ratios. A ratio near
// 2 indicates linear scaling in that variable, near 1 indicates
// insensitivity, near 4 quadratic.
func Table2(cfg Config) (*Report, error) {
	rep := &Report{ID: "table2", Title: "Empirical scaling of PP approaches (ratios when n or d doubles)"}
	n := cfg.scale(2000, 800)
	d := cfg.scale(64, 32)
	tb := &table{header: []string{"approach", "train ×n", "train ×d", "test ×n", "test ×d"}}

	type timings struct{ train, test time.Duration }
	measure := func(n, d int, approach string) (timings, error) {
		xs, ys := gaussianLabeled(n, d, cfg.Seed)
		var tr timings
		start := time.Now()
		var score func(mathx.Vec) float64
		switch approach {
		case "SVM":
			m, err := svm.Train(xs, ys, svm.Config{Seed: 1})
			if err != nil {
				return tr, err
			}
			score = m.Score
		case "KDE":
			m, err := kde.Train(xs, ys, kde.Config{Seed: 1})
			if err != nil {
				return tr, err
			}
			score = m.Score
		case "DNN":
			m, err := dnn.Train(xs, ys, dnn.Config{Epochs: 5, Seed: 1})
			if err != nil {
				return tr, err
			}
			score = m.Score
		case "PCA+SVM":
			blobs := make([]blob.Blob, len(xs))
			for i, x := range xs {
				blobs[i] = blob.FromDense(i, x)
			}
			pca, err := dimred.FitPCA(blobs[:min(400, len(blobs))], 8, mathx.NewRNG(1))
			if err != nil {
				return tr, err
			}
			red := make([]mathx.Vec, len(xs))
			for i, b := range blobs {
				red[i] = pca.Reduce(b)
			}
			m, err := svm.Train(red, ys, svm.Config{Seed: 1})
			if err != nil {
				return tr, err
			}
			score = func(x mathx.Vec) float64 {
				return m.Score(pca.Reduce(blob.FromDense(0, x)))
			}
		default:
			return tr, fmt.Errorf("bench: unknown approach %q", approach)
		}
		tr.train = time.Since(start)
		start = time.Now()
		for i := 0; i < 2000; i++ {
			score(xs[i%len(xs)])
		}
		tr.test = time.Since(start)
		return tr, nil
	}

	ratio := func(a, b time.Duration) string {
		if a == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(b)/float64(a))
	}
	for _, approach := range []string{"SVM", "KDE", "DNN", "PCA+SVM"} {
		base, err := measure(n, d, approach)
		if err != nil {
			return nil, err
		}
		bigN, err := measure(2*n, d, approach)
		if err != nil {
			return nil, err
		}
		bigD, err := measure(n, 2*d, approach)
		if err != nil {
			return nil, err
		}
		tb.add(approach,
			ratio(base.train, bigN.train), ratio(base.train, bigD.train),
			ratio(base.test, bigN.test), ratio(base.test, bigD.test))
	}
	rep.Lines = tb.render()
	rep.addf("expectations from Table 2: SVM train ~linear in n and d, test independent of n;")
	rep.addf("KDE test grows with n (neighbourhood retrieval); DNN dominated by parameter count (×d).")
	return rep, nil
}

// gaussianLabeled draws n d-dim points with a linear ground-truth label.
func gaussianLabeled(n, d int, seed uint64) ([]mathx.Vec, []bool) {
	rng := mathx.NewRNG(seed ^ 0x7ab1e2)
	xs := make([]mathx.Vec, n)
	ys := make([]bool, n)
	for i := range xs {
		v := make(mathx.Vec, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		xs[i] = v
		ys[i] = v[0]+v[1] > 0.5
	}
	return xs, ys
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Table7 regenerates the Table 7 workload characterization: every TRAF-20
// query with its predicate shape tags and measured selectivity — the
// benchmark's ground truth rather than an experiment.
func Table7(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table7", Title: "TRAF-20 predicates: shape and measured selectivity"}
	tb := &table{header: []string{"query", "#clauses", "shape", "selectivity", "predicate"}}
	for _, q := range TRAF20 {
		pred := query.MustParse(q.Pred)
		sel, err := h.Selectivity(pred)
		if err != nil {
			return nil, err
		}
		tb.add(q.ID, fmt.Sprintf("%d", len(query.Clauses(pred))), shapeTags(pred),
			f3(sel), q.Pred)
	}
	rep.Lines = tb.render()
	return rep, nil
}

// shapeTags renders the Table 7 shape code: E equality, I inequality,
// N numeric comparison, R range, C conjunction, D disjunction.
func shapeTags(p query.Pred) string {
	tags := map[byte]bool{}
	byCol := map[string][]*query.Clause{}
	for _, cl := range query.Clauses(p) {
		byCol[cl.Col] = append(byCol[cl.Col], cl)
		switch cl.Op {
		case query.OpEq:
			if cl.Val.IsNum {
				tags['N'] = true
			} else {
				tags['E'] = true
			}
		case query.OpNe:
			tags['I'] = true
		default:
			tags['N'] = true
		}
	}
	for _, cls := range byCol {
		lower, upper := false, false
		for _, cl := range cls {
			switch cl.Op {
			case query.OpGt, query.OpGe:
				lower = true
			case query.OpLt, query.OpLe:
				upper = true
			}
		}
		if lower && upper {
			tags['R'] = true
		}
	}
	var walk func(query.Pred)
	walk = func(q query.Pred) {
		switch n := q.(type) {
		case *query.And:
			tags['C'] = true
			for _, k := range n.Kids {
				walk(k)
			}
		case *query.Or:
			tags['D'] = true
			for _, k := range n.Kids {
				walk(k)
			}
		case *query.Not:
			walk(n.Kid)
		}
	}
	walk(p)
	out := ""
	for _, c := range []byte{'E', 'I', 'N', 'R', 'C', 'D'} {
		if tags[c] {
			out += string(c)
		}
	}
	if out == "" {
		out = "-"
	}
	return out
}
