package bench

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"probpred/internal/mathx"
	"probpred/internal/query"
	"probpred/internal/serve"
)

// TestLatencyScheduleDeterministic: the arrival schedule and query mix are a
// pure function of the spec and seed. Wall-clock latencies vary run to run;
// the offered load must not.
func TestLatencyScheduleDeterministic(t *testing.T) {
	const warm, timed, mix = 24, 40, 20
	mk := func(seed uint64, poisson bool) []arrival {
		return latencySchedule(warm, timed, 100, poisson, mix, mathx.NewRNG(seed))
	}
	for _, poisson := range []bool{false, true} {
		a, b := mk(7, poisson), mk(7, poisson)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("poisson=%v: same seed produced different schedules", poisson)
		}
		if len(a) != warm+timed {
			t.Fatalf("schedule has %d arrivals, want %d", len(a), warm+timed)
		}
		for i, ar := range a {
			if i > 0 && ar.At <= a[i-1].At {
				t.Fatalf("poisson=%v: arrival %d offset %v not after %v", poisson, i, ar.At, a[i-1].At)
			}
			if ar.Query < 0 || ar.Query >= mix {
				t.Fatalf("arrival %d query index %d outside mix of %d", i, ar.Query, mix)
			}
			// The warm prefix covers the mix round-robin so every distinct
			// query is planned before measurement starts.
			if i < warm && ar.Query != i%mix {
				t.Fatalf("poisson=%v: warm arrival %d queries %d, want round-robin %d", poisson, i, ar.Query, i%mix)
			}
		}
	}
	// Different seeds move Poisson arrival times and the timed query mix.
	if reflect.DeepEqual(mk(7, true), mk(8, true)) {
		t.Error("different seeds produced identical Poisson schedules")
	}
	// Fixed-rate arrival times are seed-independent (only the mix is drawn).
	f1, f2 := mk(7, false), mk(8, false)
	for i := range f1 {
		if f1[i].At != f2[i].At {
			t.Fatalf("fixed-rate arrival %d moved with the seed: %v vs %v", i, f1[i].At, f2[i].At)
		}
	}
}

// stubDoer is a latencyServer whose sessions park until released, for
// proving the generator never waits on completions.
type stubDoer struct {
	mu          sync.Mutex
	inflight    int
	maxInflight int
	release     chan struct{}
}

func (s *stubDoer) Do(req serve.Request) (*serve.Response, error) {
	s.mu.Lock()
	s.inflight++
	if s.inflight > s.maxInflight {
		s.maxInflight = s.inflight
	}
	s.mu.Unlock()
	<-s.release
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
	return &serve.Response{ID: req.ID}, nil
}

func (s *stubDoer) Stats() serve.Stats { return serve.Stats{} }

// TestLatencyOpenLoopArrivals: every scheduled arrival is dispatched while
// zero queries have completed — the arrival schedule is independent of
// completion times, which is the open-loop property (a closed loop would
// stall after the first in-flight query).
func TestLatencyOpenLoopArrivals(t *testing.T) {
	stub := &stubDoer{release: make(chan struct{})}
	queries := []latencyQuery{{ID: "Q", Pred: query.MustParse("t=SUV")}}
	const n = 6
	sched := latencySchedule(0, n, 500, false, 1, mathx.NewRNG(1)) // 2ms apart
	done := make(chan struct{})
	var outs []pointOutcome
	go func() {
		outs, _ = runLatencyPoint(stub, queries, sched, 0)
		close(done)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stub.mu.Lock()
		m := stub.maxInflight
		stub.mu.Unlock()
		if m == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("generator throttled arrivals on completions: %d of %d in flight", m, n)
		}
		time.Sleep(time.Millisecond)
	}
	close(stub.release)
	<-done
	if len(outs) != n {
		t.Fatalf("got %d timed outcomes, want %d", len(outs), n)
	}
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("outcome %d: %v", i, o.err)
		}
	}
}

// TestLatencySummarize: the point summarizer turns outcomes into sane
// rates and histogram quantiles, counts errors, and carries server stats.
func TestLatencySummarize(t *testing.T) {
	base := time.Unix(1000, 0)
	const gap = 10 * time.Millisecond
	const svc = 5 * time.Millisecond
	var outs []pointOutcome
	for i := 0; i < 10; i++ {
		d := base.Add(time.Duration(i) * gap)
		outs = append(outs, pointOutcome{
			resp:       &serve.Response{QueueWait: 0, Service: svc},
			dispatched: d,
			done:       d.Add(svc),
		})
	}
	outs = append(outs, pointOutcome{err: errStub})
	var p LatencyPoint
	summarizePoint(&p, outs, 2*time.Millisecond, serve.Stats{PlanHits: 3, ScoreMisses: 9})
	if p.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", p.Errors)
	}
	// 10 completions over 9 gaps + one service tail = 95ms ≈ 105 qps.
	if p.AchievedQPS < 90 || p.AchievedQPS > 120 {
		t.Errorf("AchievedQPS = %v, want ~105", p.AchievedQPS)
	}
	// Log-bucketed quantile of a constant 5ms population: within one bucket
	// (≤19% relative error) above the true value.
	if p.Service.P50MS < 4 || p.Service.P50MS > 6.2 {
		t.Errorf("Service.P50MS = %v, want ≈5 (one bucket of slack)", p.Service.P50MS)
	}
	if p.QueueWait.P50MS > 0.001 {
		t.Errorf("QueueWait.P50MS = %v, want ≈0", p.QueueWait.P50MS)
	}
	if p.Total.MaxMS < 4.9 || p.Total.MaxMS > 5.1 {
		t.Errorf("Total.MaxMS = %v, want exactly 5", p.Total.MaxMS)
	}
	if p.DispatchLagMaxMS != 2 {
		t.Errorf("DispatchLagMaxMS = %v, want 2", p.DispatchLagMaxMS)
	}
	if p.PlanHits != 3 || p.ScoreEvals != 9 {
		t.Errorf("stats not carried: hits=%d evals=%d", p.PlanHits, p.ScoreEvals)
	}
}

var errStub = errStubT{}

type errStubT struct{}

func (errStubT) Error() string { return "stub failure" }

// TestAutoTuneMaxConcurrent: the tuner considers only the lowest swept
// utilization (the provisioning point), recommends the smallest admission
// width meeting the p99 SLO, and falls back to the best-p99 width when
// nothing meets it.
func TestAutoTuneMaxConcurrent(t *testing.T) {
	pt := func(util float64, conc int, p99 float64) LatencyPoint {
		return LatencyPoint{Utilization: util, MaxConcurrent: conc,
			Total: LatencyQuantiles{P99MS: p99}}
	}

	// conc=2 misses the SLO at low util, conc=4 and 8 meet it: pick 4, the
	// smallest that meets. Overload points (util 1.2) must be ignored even
	// though their p99s are terrible.
	at := autoTuneMaxConcurrent([]LatencyPoint{
		pt(0.3, 8, 10), pt(0.3, 2, 80), pt(0.3, 4, 12),
		pt(1.2, 2, 900), pt(1.2, 8, 700),
	}, 50)
	if !at.Met || at.RecommendedMaxConcurrent != 4 {
		t.Errorf("recommended %d (met=%v), want 4 (met)", at.RecommendedMaxConcurrent, at.Met)
	}
	if at.Utilization != 0.3 {
		t.Errorf("provisioning utilization = %v, want 0.3", at.Utilization)
	}
	if len(at.Candidates) != 3 {
		t.Fatalf("%d candidates, want 3 (low-util points only)", len(at.Candidates))
	}
	for i := 1; i < len(at.Candidates); i++ {
		if at.Candidates[i].MaxConcurrent < at.Candidates[i-1].MaxConcurrent {
			t.Fatal("candidates not sorted by MaxConcurrent")
		}
	}

	// Nothing meets a 5ms SLO: fall back to the lowest-p99 width, Met=false.
	at = autoTuneMaxConcurrent([]LatencyPoint{
		pt(0.3, 2, 80), pt(0.3, 8, 10),
	}, 5)
	if at.Met || at.RecommendedMaxConcurrent != 8 {
		t.Errorf("fallback recommended %d (met=%v), want 8 (not met)", at.RecommendedMaxConcurrent, at.Met)
	}
}
