package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestRunTracedAndWrite: the machine-readable report path end to end — one
// traced experiment, document assembly, and the validated write.
func TestRunTracedAndWrite(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	rep, exp, err := RunTraced("fig10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != rep.ID || exp.ID != "fig10" {
		t.Fatalf("experiment id = %q/%q", exp.ID, rep.ID)
	}
	if len(exp.Lines) == 0 || len(exp.Metrics) == 0 {
		t.Fatalf("experiment missing lines (%d) or metrics (%d)", len(exp.Lines), len(exp.Metrics))
	}
	if exp.Metrics["avg_speedup_pp95"] <= 1 {
		t.Fatalf("avg_speedup_pp95 = %v, want > 1", exp.Metrics["avg_speedup_pp95"])
	}
	if exp.Trace == nil || exp.Trace.Spans == 0 {
		t.Fatal("traced run collected no spans")
	}
	foundRun := false
	for _, op := range exp.Trace.Ops {
		if op.Kind == "run" {
			foundRun = true
			if op.CostVMS <= 0 {
				t.Fatalf("run spans carry no virtual cost: %+v", op)
			}
		}
	}
	if !foundRun {
		t.Fatal("trace summary has no engine run spans")
	}

	doc := NewJSONDocument(7, true)
	doc.Experiments = append(doc.Experiments, exp)
	var buf bytes.Buffer
	if err := doc.Write(&buf, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("written document is not valid JSON")
	}
	var back JSONDocument
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != JSONSchema || back.Seed != 7 || !back.Quick {
		t.Fatalf("document header wrong: %+v", back)
	}
	if back.WallMS != 1500 {
		t.Fatalf("wall_ms = %v, want 1500", back.WallMS)
	}
	if back.Runtime.GoVersion == "" || back.Runtime.NumCPU < 1 {
		t.Fatalf("runtime snapshot missing: %+v", back.Runtime)
	}
	if len(back.Experiments) != 1 || back.Experiments[0].Metrics["avg_speedup_pp95"] != exp.Metrics["avg_speedup_pp95"] {
		t.Fatal("experiment did not round-trip")
	}
}

// TestRunTracedUnknownExperiment propagates registry errors.
func TestRunTracedUnknownExperiment(t *testing.T) {
	if _, _, err := RunTraced("nope", Config{Quick: true}); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}
