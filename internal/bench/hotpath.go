package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"probpred/internal/blob"
	"probpred/internal/core"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
)

// Hotpath measures the PP scoring hot path: wall-clock ns/row, rows/sec and
// allocations/row of the scalar Score loop versus the batch ScoreBatch path,
// per approach, on dense synthetic blobs. It is not a paper experiment — it
// tracks the simulator's own throughput (DESIGN.md "Scoring hot path") and
// backs BENCH_hotpath.json, which CI archives so batch-path regressions show
// up as a diff.

// HotpathPath is one measured scoring path (scalar or batch).
type HotpathPath struct {
	NSPerRow     float64 `json:"ns_per_row"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	AllocsPerRow float64 `json:"allocs_per_row"`
}

// HotpathResult compares the two paths for one PP approach.
type HotpathResult struct {
	Approach string      `json:"approach"`
	Rows     int         `json:"rows"`
	Dim      int         `json:"dim"`
	Scalar   HotpathPath `json:"scalar"`
	Batch    HotpathPath `json:"batch"`
	// Speedup is scalar ns/row over batch ns/row (>1 means batch is faster).
	Speedup float64 `json:"speedup"`
	// AllocRatio is batch allocs/row over scalar allocs/row (<1 means the
	// batch path allocates less). Zero when the scalar path itself does not
	// allocate.
	AllocRatio float64 `json:"alloc_ratio"`
}

// HotpathDoc is the machine-readable report written to BENCH_hotpath.json.
type HotpathDoc struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	NumCPU      int             `json:"num_cpu"`
	Seed        uint64          `json:"seed"`
	Quick       bool            `json:"quick"`
	Results     []HotpathResult `json:"results"`
}

// Write serders the document as indented JSON.
func (d *HotpathDoc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// hotpathSet generates n dense gaussian blobs of dimension dim, labeled by a
// random hyperplane (selectivity ≈ 0.5) so every classifier family has
// structure to learn.
func hotpathSet(n, dim int, seed uint64) blob.Set {
	rng := mathx.NewRNG(seed)
	w := make(mathx.Vec, dim)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	var set blob.Set
	for i := 0; i < n; i++ {
		v := make(mathx.Vec, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		set.Append(blob.FromDense(i, v), mathx.Dot(w, v) >= 0)
	}
	return set
}

// hotpathSpec is one approach × dataset combination the hot path is measured
// on. FH+SVM runs at the LSHTC-like vocabulary dimensionality (data.LSHTCConfig
// defaults to 2000) — the high-dimensional regime feature hashing exists for,
// and where the batch path's per-batch hash table pays off most; the heavier
// families use smaller inputs so the measurement stays fast.
type hotpathSpec struct {
	approach string
	dim      int
}

func hotpathSpecs() []hotpathSpec {
	return []hotpathSpec{
		{"FH+SVM", 2000},
		{"PCA+KDE", 64},
		{"DNN", 64},
	}
}

// measureScoring times fn (which scores all rows once per call) until minDur
// has elapsed, returning per-row wall time, throughput and heap allocations.
// Mallocs is monotonic, so GC during the loop does not distort the count.
func measureScoring(rows int, minDur time.Duration, fn func()) HotpathPath {
	fn() // warm up pools and lazily-built tables outside the measurement
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	total := 0
	var elapsed time.Duration
	for {
		fn()
		total += rows
		if elapsed = time.Since(start); elapsed >= minDur {
			break
		}
	}
	runtime.ReadMemStats(&after)
	ns := float64(elapsed.Nanoseconds())
	return HotpathPath{
		NSPerRow:     ns / float64(total),
		RowsPerSec:   float64(total) / elapsed.Seconds(),
		AllocsPerRow: float64(after.Mallocs-before.Mallocs) / float64(total),
	}
}

// scalarScorePath hides the batch interfaces so the scalar loop is measured
// even though every built-in approach implements them.
func scalarScorePath(pp *core.PP, blobs []blob.Blob, out []float64) func() {
	return func() {
		for i, b := range blobs {
			out[i] = pp.Score(b)
		}
	}
}

// RunHotpath trains one PP per approach and measures both scoring paths,
// returning the JSON document and a rendered report.
func RunHotpath(cfg Config) (*HotpathDoc, *Report, error) {
	rep := &Report{ID: "hotpath", Title: "Scoring hot path: scalar vs batch (ns/row, rows/sec, allocs/row)"}
	doc := &HotpathDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
	}
	trainN := cfg.scale(1200, 600)
	scoreN := cfg.scale(8192, 2048)
	minDur := time.Duration(cfg.scale(300, 25)) * time.Millisecond
	tb := &table{header: []string{"approach", "dim", "path", "ns/row", "rows/sec", "allocs/row", "speedup", "allocs ratio"}}
	for _, spec := range hotpathSpecs() {
		pp, blobs, err := hotpathPP(spec, trainN, scoreN, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		out := make([]float64, len(blobs))
		scalar := measureScoring(len(blobs), minDur, scalarScorePath(pp, blobs, out))
		batch := measureScoring(len(blobs), minDur, func() { pp.ScoreBatch(blobs, out) })
		res := HotpathResult{
			Approach: spec.approach, Rows: len(blobs), Dim: spec.dim,
			Scalar: scalar, Batch: batch,
			Speedup: scalar.NSPerRow / batch.NSPerRow,
		}
		if scalar.AllocsPerRow > 0 {
			res.AllocRatio = batch.AllocsPerRow / scalar.AllocsPerRow
		}
		doc.Results = append(doc.Results, res)
		tb.add(spec.approach, fmt.Sprintf("%d", spec.dim), "scalar",
			f1(scalar.NSPerRow), fk(scalar.RowsPerSec), f2(scalar.AllocsPerRow), "", "")
		tb.add(spec.approach, fmt.Sprintf("%d", spec.dim), "batch",
			f1(batch.NSPerRow), fk(batch.RowsPerSec), f2(batch.AllocsPerRow),
			f2(res.Speedup)+"x", f3(res.AllocRatio))
		rep.metric(spec.approach+".speedup", res.Speedup)
		rep.metric(spec.approach+".batch_rows_per_sec", batch.RowsPerSec)
		rep.metric(spec.approach+".alloc_ratio", res.AllocRatio)
	}
	// Engine-level rows: the full PPFilter operator (gather + TestBatch +
	// compaction + cost accounting) under parallel execution, then the same
	// batch path with a live metrics registry to expose instrumentation cost.
	filterRes, err := hotpathFilterResults(cfg, scoreN, minDur)
	if err != nil {
		return nil, nil, err
	}
	for _, res := range filterRes {
		doc.Results = append(doc.Results, res)
		tb.add(res.Approach, fmt.Sprintf("%d", res.Dim), "scalar",
			f1(res.Scalar.NSPerRow), fk(res.Scalar.RowsPerSec), f2(res.Scalar.AllocsPerRow), "", "")
		tb.add(res.Approach, fmt.Sprintf("%d", res.Dim), "batch",
			f1(res.Batch.NSPerRow), fk(res.Batch.RowsPerSec), f2(res.Batch.AllocsPerRow),
			f2(res.Speedup)+"x", f3(res.AllocRatio))
	}
	rep.metric("filter.speedup", filterRes[0].Speedup)
	// >1 means the registry made the batch path faster (noise); ~1 is the goal.
	rep.metric("filter.metrics_overhead", 1/filterRes[1].Speedup)
	rep.Lines = tb.render()
	return doc, rep, nil
}

// Hotpath is the registry wrapper: it runs the measurement and returns just
// the report (cmd/ppbench -hotpath also writes the JSON document).
func Hotpath(cfg Config) (*Report, error) {
	_, rep, err := RunHotpath(cfg)
	return rep, err
}

// hotpathPP trains one PP for a spec and generates the larger scoring set
// from the same distribution.
func hotpathPP(spec hotpathSpec, trainN, scoreN int, seed uint64) (*core.PP, []blob.Blob, error) {
	set := hotpathSet(trainN, spec.dim, seed^uint64(spec.dim)*0x51)
	rng := mathx.NewRNG(seed ^ 0x407)
	train, val, _ := set.Split(rng, 0.7, 0.3)
	cfg := core.TrainConfig{Approach: spec.approach, Seed: seed}
	if spec.approach == "DNN" {
		cfg.DNN.Epochs = 10 // scoring speed, not quality, is under test
	}
	pp, err := core.Train("hotpath."+spec.approach, train, val, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: hotpath training %s: %w", spec.approach, err)
	}
	score := hotpathSet(scoreN, spec.dim, seed^0xbeef)
	return pp, score.Blobs, nil
}

// scalarOnlyFilter wraps a BlobFilter, hiding any TestBatch method so the
// engine takes the per-row path — the baseline the batch operator is
// measured against.
type scalarOnlyFilter struct{ f engine.BlobFilter }

func (s scalarOnlyFilter) Name() string                     { return s.f.Name() }
func (s scalarOnlyFilter) Test(b blob.Blob) (bool, float64) { return s.f.Test(b) }

// hotpathFilter adapts a PP at a fixed accuracy to engine.BlobFilter and
// BatchBlobFilter, like optimizer.Compiled's single-leaf case.
type hotpathFilter struct {
	pp   *core.PP
	th   float64
	cost float64
}

func (f *hotpathFilter) Name() string { return f.pp.Clause }

func (f *hotpathFilter) Test(b blob.Blob) (bool, float64) {
	return f.pp.Score(b) >= f.th, f.cost
}

func (f *hotpathFilter) TestBatch(blobs []blob.Blob, pass []bool, cost []float64) {
	scores := make([]float64, len(blobs))
	f.pp.ScoreBatch(blobs, scores)
	for i, s := range scores {
		pass[i] = s >= f.th
		cost[i] = f.cost
	}
}

// hotpathFilterResults measures the PPFilter operator end to end (Scan +
// PPFilter under engine.Run, Workers=4). The first result compares batch
// chunks against the per-row fallback; the second re-runs the batch path
// under a live metrics registry, with the registryless batch numbers in the
// Scalar column, so the per-row cost of instrumentation is a visible delta.
func hotpathFilterResults(cfg Config, scoreN int, minDur time.Duration) ([]HotpathResult, error) {
	spec := hotpathSpecs()[0] // FH+SVM
	pp, blobs, err := hotpathPP(spec, cfg.scale(1200, 600), scoreN, cfg.Seed)
	if err != nil {
		return nil, err
	}
	filter := &hotpathFilter{pp: pp, th: pp.Threshold(0.95), cost: pp.Cost()}
	run := func(f engine.BlobFilter, ecfg engine.Config) func() {
		plan := engine.Plan{Ops: []engine.Operator{
			&engine.Scan{Blobs: blobs},
			&engine.PPFilter{F: f},
		}}
		return func() {
			if _, err := engine.Run(plan, ecfg); err != nil {
				panic(err) // plan has no failing operators
			}
		}
	}
	base := engine.Config{Workers: 4}
	scalar := measureScoring(len(blobs), minDur, run(scalarOnlyFilter{filter}, base))
	batch := measureScoring(len(blobs), minDur, run(filter, base))
	res := HotpathResult{
		Approach: "PPFilter(FH+SVM,workers=4)", Rows: len(blobs), Dim: spec.dim,
		Scalar: scalar, Batch: batch,
		Speedup: scalar.NSPerRow / batch.NSPerRow,
	}
	if scalar.AllocsPerRow > 0 {
		res.AllocRatio = batch.AllocsPerRow / scalar.AllocsPerRow
	}
	withReg := measureScoring(len(blobs), minDur,
		run(filter, engine.Config{Workers: 4, Metrics: metrics.New()}))
	mres := HotpathResult{
		Approach: "PPFilter(FH+SVM,workers=4,metrics)", Rows: len(blobs), Dim: spec.dim,
		Scalar: batch, Batch: withReg,
		Speedup: batch.NSPerRow / withReg.NSPerRow,
	}
	if batch.AllocsPerRow > 0 {
		mres.AllocRatio = withReg.AllocsPerRow / batch.AllocsPerRow
	}
	return []HotpathResult{res, mres}, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// fk renders a throughput in thousands of rows per second.
func fk(v float64) string { return fmt.Sprintf("%.0fk", v/1000) }
