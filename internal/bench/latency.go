package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/metrics"
	"probpred/internal/query"
	"probpred/internal/serve"
)

// This file is the wall-clock SLO harness (ROADMAP item 2): an open-loop
// load generator driving serve.Server.Do with a mixed TRAF20 workload. Every
// other benchmark in this package measures virtual cost; this one measures
// what a serving system is ultimately judged on — tail latency under load.
//
// Open-loop means arrivals follow a precomputed schedule (fixed-rate or
// Poisson inter-arrivals from a seeded RNG) and are dispatched on that
// schedule no matter how slow completions are. A closed-loop driver (N
// clients in think-time loops) would throttle its own offered load exactly
// when the server slows down, hiding the queueing behavior we are here to
// measure (coordinated omission). Late completions therefore pile up behind
// the admission semaphore, and the enqueue→admit (queue wait) vs admit→done
// (service) split — recorded by serve into the serve_admission_wait_ns /
// serve_service_ns histograms and returned per query on serve.Response —
// shows where the time went.

// arrival is one scheduled dispatch of the open-loop generator.
type arrival struct {
	// At is the offset from the run start at which the query is dispatched.
	At time.Duration
	// Query indexes the workload mix.
	Query int
}

// latencySchedule precomputes warm+timed arrivals at offered rate qps. The
// first warm arrivals cover the mix round-robin (so every distinct query is
// planned before measurement starts); the timed remainder draws the mix from
// the RNG. With poisson, inter-arrival gaps are exponential (a memoryless
// Poisson process); otherwise they are the constant 1/qps. The schedule is a
// pure function of its arguments — same seed, same schedule — and is fixed
// before the first dispatch, which is what makes the generator open-loop:
// nothing about execution can feed back into arrival times.
func latencySchedule(warm, timed int, qps float64, poisson bool, mix int, rng *mathx.RNG) []arrival {
	out := make([]arrival, warm+timed)
	var at float64 // seconds
	for i := range out {
		gap := 1 / qps
		if poisson {
			gap = -math.Log(1-rng.Float64()) / qps
		}
		at += gap
		q := i % mix
		if i >= warm {
			q = rng.Intn(mix)
		}
		out[i] = arrival{At: time.Duration(at * float64(time.Second)), Query: q}
	}
	return out
}

// latencyServer is the slice of serve.Server the generator needs; the
// open-loop tests drive it with a stub whose completions block.
type latencyServer interface {
	Do(serve.Request) (*serve.Response, error)
	Stats() serve.Stats
}

// latencyQuery is one entry of the workload mix.
type latencyQuery struct {
	ID   string
	Pred query.Pred
}

// LatencyQuantiles summarizes one duration population in milliseconds.
// Quantiles come from a log-bucketed metrics.Histogram (≤19% relative
// error); mean and max are exact.
type LatencyQuantiles struct {
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// latencyDist feeds one duration population into a log-bucketed histogram
// while tracking the exact max.
type latencyDist struct {
	hist *metrics.Histogram
	max  time.Duration
}

func (d *latencyDist) observe(v time.Duration) {
	d.hist.Observe(float64(v))
	if v > d.max {
		d.max = v
	}
}

func (d *latencyDist) quantiles() LatencyQuantiles {
	const ms = float64(time.Millisecond)
	return LatencyQuantiles{
		P50MS:  d.hist.Quantile(0.50) / ms,
		P95MS:  d.hist.Quantile(0.95) / ms,
		P99MS:  d.hist.Quantile(0.99) / ms,
		MeanMS: d.hist.Mean() / ms,
		MaxMS:  float64(d.max) / ms,
	}
}

// LatencyPoint is one sweep point's offered load and measured outcome.
type LatencyPoint struct {
	// Mode identifies the serving variant: "pp" (PP injection + score
	// cache), "pp-nocache" (PP injection, score cache disabled), "nop" (no
	// PP injection: the full UDF pipeline runs on every blob).
	Mode string `json:"mode"`
	// Arrivals is the inter-arrival law: "poisson" or "fixed".
	Arrivals string `json:"arrivals"`
	// OfferedQPS is the schedule's arrival rate; Utilization is offered
	// load over the point's nominal capacity, min(MaxConcurrent,
	// GOMAXPROCS)/base-service.
	OfferedQPS    float64 `json:"offered_qps"`
	Utilization   float64 `json:"utilization"`
	MaxConcurrent int     `json:"max_concurrent"`
	// Warmup / Timed are the phase sizes; only timed queries are measured.
	Warmup int `json:"warmup"`
	Timed  int `json:"timed"`

	// AchievedQPS is timed completions over the timed span (first timed
	// dispatch to last timed completion). Under overload it falls below
	// OfferedQPS — the open loop keeps offering anyway.
	AchievedQPS float64 `json:"achieved_qps"`
	// Errors counts failed timed sessions (0 on a healthy run).
	Errors int `json:"errors"`
	// DispatchLagMaxMS is the worst lateness of an actual dispatch behind
	// its scheduled arrival — generator health, not server latency.
	DispatchLagMaxMS float64 `json:"dispatch_lag_max_ms"`

	// QueueWait is enqueue→admit (admission-semaphore wait), Service is
	// admit→done, Total is dispatch→done as the client saw it.
	QueueWait LatencyQuantiles `json:"queue_wait"`
	Service   LatencyQuantiles `json:"service"`
	Total     LatencyQuantiles `json:"total"`
	// WorstTotalTraceID is the trace ID of the point's worst total-latency
	// sample — the exemplar to pull from a span dump or query log when a
	// point's tail needs explaining.
	WorstTotalTraceID string `json:"worst_total_trace_id,omitempty"`

	// Cache and adaptation counters at the end of the point (the point's
	// server starts cold, so these are per-point totals incl. warmup).
	PlanHits       uint64 `json:"plan_hits"`
	PlanMisses     uint64 `json:"plan_misses"`
	ScoreHits      uint64 `json:"score_hits"`
	ScoreEvals     uint64 `json:"score_evals"`
	PlanDemotions  uint64 `json:"plan_demotions"`
	PlanPromotions uint64 `json:"plan_promotions"`
}

// LatencyDoc is the machine-readable report written to BENCH_latency.json.
type LatencyDoc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`
	// Queries is the distinct query count of the mix (TRAF20).
	Queries int `json:"queries"`
	// BaseServiceMS is the calibrated single-session mean service time of
	// the "pp" variant — the unit offered rates are scaled by.
	BaseServiceMS float64 `json:"base_service_ms"`

	// Points is the rate × MaxConcurrent sweep of the "pp" variant.
	Points []LatencyPoint `json:"points"`
	// Variants compares pp / pp-nocache / nop at one reference point.
	Variants []LatencyPoint `json:"variants"`

	// NoPOverPPTotalP50 is the end-to-end latency gap PP injection buys:
	// the no-PP variant's total p50 over the PP variant's, same offered
	// load. CacheOffOverOnServiceP50 is the same ratio for disabling the
	// score cache, and CostGateOverOnServiceP50 for the cost-gated cache
	// (cheap PPs recompute, expensive PPs stay cached).
	NoPOverPPTotalP50        float64 `json:"nop_over_pp_total_p50"`
	CacheOffOverOnServiceP50 float64 `json:"cacheoff_over_on_service_p50"`
	CostGateOverOnServiceP50 float64 `json:"costgate_over_on_service_p50"`

	// AutoTune is the MaxConcurrent recommendation derived from the sweep.
	AutoTune AutoTune `json:"auto_tune"`

	// Low-rate sanity, the CI gate's inputs: among the lowest-utilization
	// sweep points, the one delivering the highest achieved/offered ratio
	// (i.e. with adequate admission width for the rate). An uncontended
	// open-loop run must achieve ≈ its offered rate with ≈ zero queue wait.
	LowPointAchievedOverOffered float64 `json:"low_point_achieved_over_offered"`
	LowPointQueueP50MS          float64 `json:"low_point_queue_p50_ms"`
	LowPointServiceP50MS        float64 `json:"low_point_service_p50_ms"`
}

// Write serializes the document as indented JSON.
func (d *LatencyDoc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// pointOutcome is one arrival's completion record.
type pointOutcome struct {
	resp        *serve.Response
	err         error
	dispatched  time.Time
	done        time.Time
	dispatchLag time.Duration
}

// runLatencyPoint dispatches the schedule against the server, open-loop: the
// dispatcher sleeps to each arrival's offset and fires the query in its own
// goroutine, so a slow (or wedged) completion never delays the next arrival.
// The first warm arrivals are dispatched but not measured.
func runLatencyPoint(srv latencyServer, queries []latencyQuery, sched []arrival, warm int) (timedOutcomes []pointOutcome, lagMax time.Duration) {
	start := time.Now()
	outs := make([]pointOutcome, len(sched))
	var wg sync.WaitGroup
	for i, a := range sched {
		if d := time.Until(start.Add(a.At)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, a arrival) {
			defer wg.Done()
			o := &outs[i]
			o.dispatched = time.Now()
			o.dispatchLag = o.dispatched.Sub(start.Add(a.At))
			q := queries[a.Query]
			o.resp, o.err = srv.Do(serve.Request{ID: fmt.Sprintf("%s.a%d", q.ID, i), Pred: q.Pred})
			o.done = time.Now()
		}(i, a)
	}
	wg.Wait()
	for _, o := range outs {
		if o.dispatchLag > lagMax {
			lagMax = o.dispatchLag
		}
	}
	return outs[warm:], lagMax
}

// summarizePoint folds timed outcomes into the point's histograms and rates.
func summarizePoint(p *LatencyPoint, outs []pointOutcome, lagMax time.Duration, st serve.Stats) {
	agg := metrics.New()
	queue := &latencyDist{hist: agg.Histogram("latency_queue_wait_ns", "")}
	service := &latencyDist{hist: agg.Histogram("latency_service_ns", "")}
	total := &latencyDist{hist: agg.Histogram("latency_total_ns", "")}
	var first, last time.Time
	done := 0
	var worstTotal time.Duration
	for _, o := range outs {
		if o.err != nil {
			p.Errors++
			continue
		}
		if first.IsZero() || o.dispatched.Before(first) {
			first = o.dispatched
		}
		if o.done.After(last) {
			last = o.done
		}
		done++
		queue.observe(o.resp.QueueWait)
		service.observe(o.resp.Service)
		t := o.done.Sub(o.dispatched)
		total.observe(t)
		if t >= worstTotal {
			worstTotal = t
			p.WorstTotalTraceID = o.resp.TraceID
		}
	}
	if span := last.Sub(first); span > 0 && done > 0 {
		p.AchievedQPS = float64(done) / span.Seconds()
	}
	p.DispatchLagMaxMS = float64(lagMax) / float64(time.Millisecond)
	p.QueueWait = queue.quantiles()
	p.Service = service.quantiles()
	p.Total = total.quantiles()
	p.PlanHits, p.PlanMisses = st.PlanHits, st.PlanMisses
	p.ScoreHits, p.ScoreEvals = st.ScoreHits, st.ScoreMisses
	p.PlanDemotions, p.PlanPromotions = st.PlanDemotions, st.PlanPromotions
}

// AutoTuneCandidate is one admission width considered by the auto-tuner.
type AutoTuneCandidate struct {
	MaxConcurrent int     `json:"max_concurrent"`
	Utilization   float64 `json:"utilization"`
	TotalP99MS    float64 `json:"total_p99_ms"`
	Met           bool    `json:"met"`
}

// AutoTune is the provisioning recommendation: the smallest MaxConcurrent
// whose sweep point met the p99 SLO at the provisioning (lowest) utilization.
type AutoTune struct {
	// SLOP99MS is the target: latencySLOFactor × calibrated base service.
	SLOP99MS float64 `json:"slo_p99_ms"`
	// Utilization is the provisioning utilization the candidates come from.
	Utilization float64 `json:"utilization"`
	// RecommendedMaxConcurrent is the smallest admission width meeting the
	// SLO; if none did (Met=false), the width with the lowest p99.
	RecommendedMaxConcurrent int  `json:"recommended_max_concurrent"`
	Met                      bool `json:"met"`

	Candidates []AutoTuneCandidate `json:"candidates"`
}

// latencySLOFactor scales the calibrated base service time into the p99 SLO
// target the auto-tuner provisions for. Generous on purpose: at low
// utilization an adequately-wide admission gate keeps p99 near base service,
// while an over-narrow gate queues arrival bursts into multiples of it.
const latencySLOFactor = 20

// autoTuneMaxConcurrent picks the smallest MaxConcurrent meeting the p99 SLO
// among the sweep points at the lowest swept utilization — the provisioning
// question ("how narrow can admission be and still meet the SLO at planned
// load?") asked of data the sweep already paid for. Wider admission costs
// memory and risks cache-thrash; narrower queues bursts; smallest-that-meets
// is the standard resolution.
func autoTuneMaxConcurrent(points []LatencyPoint, sloMS float64) AutoTune {
	at := AutoTune{SLOP99MS: sloMS, Utilization: math.Inf(1)}
	for _, p := range points {
		at.Utilization = math.Min(at.Utilization, p.Utilization)
	}
	for _, p := range points {
		if p.Utilization != at.Utilization {
			continue
		}
		at.Candidates = append(at.Candidates, AutoTuneCandidate{
			MaxConcurrent: p.MaxConcurrent,
			Utilization:   p.Utilization,
			TotalP99MS:    p.Total.P99MS,
			Met:           p.Total.P99MS <= sloMS,
		})
	}
	sort.Slice(at.Candidates, func(i, j int) bool {
		return at.Candidates[i].MaxConcurrent < at.Candidates[j].MaxConcurrent
	})
	best := -1
	for i, c := range at.Candidates {
		if c.Met {
			at.RecommendedMaxConcurrent = c.MaxConcurrent
			at.Met = true
			return at
		}
		if best < 0 || c.TotalP99MS < at.Candidates[best].TotalP99MS {
			best = i
		}
	}
	if best >= 0 {
		at.RecommendedMaxConcurrent = at.Candidates[best].MaxConcurrent
	}
	return at
}

// costGateThreshold is the ScoreCacheMinCost of the "pp-costgate" variant:
// above an SVM-backed PP (~0.5 vms) so cheap scores recompute instead of
// paying cache lock+map traffic, below KDE (≥1 vms) and DNN (≥2 vms) PPs,
// which keep the cache.
const costGateThreshold = 1.0

// noPPBuilder drops the injected filter, so the plan always runs the full
// UDF pipeline — the NoP baseline behind the same serving path.
type noPPBuilder struct{ inner serve.QueryBuilder }

func (b noPPBuilder) UDFCost(pred query.Pred) (float64, error) { return b.inner.UDFCost(pred) }
func (b noPPBuilder) Build(pred query.Pred, _ engine.BlobFilter) (engine.Plan, error) {
	return b.inner.Build(pred, nil)
}

// maxLatencyQPS caps offered rates: past this the scheduler fights sleep
// granularity instead of measuring the server.
const maxLatencyQPS = 5000

// RunLatency calibrates base service time, sweeps arrival rate ×
// MaxConcurrent for the PP-injected server, compares serving variants at a
// reference point, and returns the JSON document plus a rendered report.
func RunLatency(cfg Config) (*LatencyDoc, *Report, error) {
	const accuracy = 0.95
	warm := cfg.scale(60, 24)
	timed := cfg.scale(200, 80)

	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, nil, err
	}
	queries := make([]latencyQuery, len(TRAF20))
	for i, q := range TRAF20 {
		pred, err := query.Parse(q.Pred)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: latency workload %s (%q): %w", q.ID, q.Pred, err)
		}
		queries[i] = latencyQuery{ID: q.ID, Pred: pred}
	}

	newServer := func(conc int, disableCache, noPP bool, minScoreCost float64) (*serve.Server, error) {
		var b serve.QueryBuilder = trafficBuilder{h}
		if noPP {
			b = noPPBuilder{b}
		}
		return serve.New(serve.Config{
			Optimizer:         h.Opt,
			Builder:           b,
			Accuracy:          accuracy,
			Domains:           data.TrafficDomains(),
			MaxConcurrent:     conc,
			Exec:              engine.Config{Workers: 1},
			DisableScoreCache: disableCache,
			ScoreCacheMinCost: minScoreCost,
			Metrics:           cfg.Metrics,
			Obs:               cfg.Obs,
		})
	}

	// Calibration: mean warm single-session service time of the PP variant,
	// measured sequentially so no queueing pollutes it. Offered rates are
	// expressed as utilization × conc / baseService, which keeps the sweep
	// meaningful across machines of different speeds.
	cal, err := newServer(1, false, false, 0)
	if err != nil {
		return nil, nil, err
	}
	var calSum time.Duration
	for pass := 0; pass < 2; pass++ { // pass 0 warms plan+score caches
		calSum = 0
		for _, q := range queries {
			resp, err := cal.Do(serve.Request{ID: q.ID, Pred: q.Pred})
			if err != nil {
				return nil, nil, fmt.Errorf("bench: latency calibration %s: %w", q.ID, err)
			}
			calSum += resp.Service
		}
	}
	baseService := calSum / time.Duration(len(queries))
	if baseService <= 0 {
		baseService = time.Microsecond
	}

	// Nominal capacity is min(conc, GOMAXPROCS)/baseService: admission slots
	// beyond the machine's parallelism add queueing, not throughput.
	rateFor := func(util float64, conc int) float64 {
		par := conc
		if mp := runtime.GOMAXPROCS(0); par > mp {
			par = mp
		}
		qps := util * float64(par) / baseService.Seconds()
		return math.Min(qps, maxLatencyQPS)
	}

	runPoint := func(mode string, util float64, conc int, poisson, disableCache, noPP bool, minScoreCost float64, seedSalt uint64) (LatencyPoint, error) {
		srv, err := newServer(conc, disableCache, noPP, minScoreCost)
		if err != nil {
			return LatencyPoint{}, err
		}
		qps := rateFor(util, conc)
		arrivals := "fixed"
		if poisson {
			arrivals = "poisson"
		}
		p := LatencyPoint{
			Mode: mode, Arrivals: arrivals,
			OfferedQPS: qps, Utilization: util, MaxConcurrent: conc,
			Warmup: warm, Timed: timed,
		}
		sched := latencySchedule(warm, timed, qps, poisson, len(queries), mathx.NewRNG(cfg.Seed^(uint64(conc)<<8)^seedSalt))
		outs, lagMax := runLatencyPoint(srv, queries, sched, warm)
		summarizePoint(&p, outs, lagMax, srv.Stats())
		if p.Errors > 0 {
			return p, fmt.Errorf("bench: latency point %s u=%.2f c=%d: %d sessions failed", mode, util, conc, p.Errors)
		}
		return p, nil
	}

	doc := &LatencyDoc{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		Queries:       len(queries),
		BaseServiceMS: float64(baseService) / float64(time.Millisecond),
	}

	// Sweep: low vs overload utilization × narrow vs wide admission, all on
	// the production configuration (PP + score cache), Poisson arrivals.
	for _, util := range []float64{0.3, 1.2} {
		for _, conc := range []int{2, 8} {
			p, err := runPoint("pp", util, conc, true, false, false, 0, 0x11)
			if err != nil {
				return nil, nil, err
			}
			doc.Points = append(doc.Points, p)
		}
	}

	// Variants: same offered load (rates calibrated against the PP server's
	// service time), fixed-rate arrivals so the three runs see identical
	// schedules up to the query mix RNG.
	const varUtil, varConc = 0.5, 4
	ppVar, err := runPoint("pp", varUtil, varConc, false, false, false, 0, 0x22)
	if err != nil {
		return nil, nil, err
	}
	nocache, err := runPoint("pp-nocache", varUtil, varConc, false, true, false, 0, 0x22)
	if err != nil {
		return nil, nil, err
	}
	costgate, err := runPoint("pp-costgate", varUtil, varConc, false, false, false, costGateThreshold, 0x22)
	if err != nil {
		return nil, nil, err
	}
	nop, err := runPoint("nop", varUtil, varConc, false, false, true, 0, 0x22)
	if err != nil {
		return nil, nil, err
	}
	doc.Variants = []LatencyPoint{ppVar, nocache, costgate, nop}
	if ppVar.Total.P50MS > 0 {
		doc.NoPOverPPTotalP50 = nop.Total.P50MS / ppVar.Total.P50MS
	}
	if ppVar.Service.P50MS > 0 {
		doc.CacheOffOverOnServiceP50 = nocache.Service.P50MS / ppVar.Service.P50MS
		doc.CostGateOverOnServiceP50 = costgate.Service.P50MS / ppVar.Service.P50MS
	}
	doc.AutoTune = autoTuneMaxConcurrent(doc.Points, latencySLOFactor*doc.BaseServiceMS)

	minUtil := math.Inf(1)
	for _, p := range doc.Points {
		minUtil = math.Min(minUtil, p.Utilization)
	}
	for _, p := range doc.Points {
		if p.Utilization != minUtil || p.OfferedQPS == 0 {
			continue
		}
		if r := p.AchievedQPS / p.OfferedQPS; r > doc.LowPointAchievedOverOffered {
			doc.LowPointAchievedOverOffered = r
			doc.LowPointQueueP50MS = p.QueueWait.P50MS
			doc.LowPointServiceP50MS = p.Service.P50MS
		}
	}

	rep := &Report{ID: "latency", Title: fmt.Sprintf(
		"Open-loop wall-clock latency: %d timed arrivals/point over %d queries, base service %.2f ms",
		timed, len(queries), doc.BaseServiceMS)}
	tb := &table{header: []string{"mode", "arrivals", "util", "conc", "offered qps", "achieved", "queue p50/p99 ms", "service p50/p99 ms", "total p99 ms"}}
	addRow := func(p LatencyPoint) {
		tb.add(p.Mode, p.Arrivals, f2(p.Utilization), fmt.Sprintf("%d", p.MaxConcurrent),
			f1(p.OfferedQPS), f1(p.AchievedQPS),
			fmt.Sprintf("%.2f/%.2f", p.QueueWait.P50MS, p.QueueWait.P99MS),
			fmt.Sprintf("%.2f/%.2f", p.Service.P50MS, p.Service.P99MS),
			fmt.Sprintf("%.2f", p.Total.P99MS))
	}
	for _, p := range doc.Points {
		addRow(p)
	}
	for _, p := range doc.Variants {
		addRow(p)
	}
	rep.Lines = tb.render()
	rep.Lines = append(rep.Lines, "",
		fmt.Sprintf("latency gap at u=%.1f c=%d: NoP/PP total p50 = %.2fx, cache-off/on service p50 = %.2fx, cost-gate/on service p50 = %.2fx",
			varUtil, varConc, doc.NoPOverPPTotalP50, doc.CacheOffOverOnServiceP50, doc.CostGateOverOnServiceP50),
		fmt.Sprintf("auto-tune: MaxConcurrent=%d for p99 SLO %.2f ms at u=%.2f (met: %v)",
			doc.AutoTune.RecommendedMaxConcurrent, doc.AutoTune.SLOP99MS, doc.AutoTune.Utilization, doc.AutoTune.Met))
	rep.metric("base_service_ms", doc.BaseServiceMS)
	rep.metric("auto_tune_max_concurrent", float64(doc.AutoTune.RecommendedMaxConcurrent))
	rep.metric("nop_over_pp_total_p50", doc.NoPOverPPTotalP50)
	rep.metric("cacheoff_over_on_service_p50", doc.CacheOffOverOnServiceP50)
	rep.metric("low_point_achieved_over_offered", doc.LowPointAchievedOverOffered)
	rep.metric("low_point_queue_p50_ms", doc.LowPointQueueP50MS)
	return doc, rep, nil
}

// Latency is the registry wrapper: it runs the sweep and returns just the
// report (cmd/ppbench -latency also writes the JSON document).
func Latency(cfg Config) (*Report, error) {
	_, rep, err := RunLatency(cfg)
	return rep, err
}
