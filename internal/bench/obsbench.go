package bench

// Obs replays the TRAF20 workload through a sharded coordinator with the
// whole observability stack on — per-session tracing to a JSON span dump,
// histogram exemplars, structured query log — and then runs the pplog
// analyzer over the log joined with the span dump. It is the end-to-end
// proof that tail-latency forensics work: a serve_service_ns p99 exemplar's
// TraceID must resolve to a logged session and a span tree. BENCH_obs.json
// is what CI archives and gates on (all_have_trace, querylog_drops == 0,
// p99_exemplar_resolves).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/metrics"
	"probpred/internal/obs"
	"probpred/internal/pplog"
	"probpred/internal/serve"
)

// ObsDoc is the machine-readable report written to BENCH_obs.json.
type ObsDoc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`

	Queries     int `json:"queries"`
	Rounds      int `json:"rounds"`
	Concurrency int `json:"concurrency"`
	Shards      int `json:"shards"`
	Replicas    int `json:"replicas"`

	// Records / Spans are the raw sizes of the two inputs the analyzer joins.
	Records int `json:"records"`
	Spans   int `json:"spans"`

	// P99ExemplarTrace is the serve_service_ns p99 bucket exemplar's TraceID;
	// P99ExemplarResolves whether it maps to a logged session record (the
	// "histogram tail → query log → span tree" join CI gates on).
	P99ExemplarTrace    string `json:"p99_exemplar_trace"`
	P99ExemplarResolves bool   `json:"p99_exemplar_resolves"`
	// P99ExemplarSpans is the number of spans sharing that TraceID (> 0 means
	// the span tree side of the join resolved too).
	P99ExemplarSpans int `json:"p99_exemplar_spans"`

	Analysis pplog.Analysis `json:"analysis"`
}

// Write serializes the document as indented JSON.
func (d *ObsDoc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// RunObs runs the observability replay and analyzer, returning the JSON
// document plus a rendered report. When queryLogPath is non-empty the raw
// JSONL query log is also written there (the -querylog flag).
func RunObs(cfg Config, queryLogPath string) (*ObsDoc, *Report, error) {
	const (
		accuracy    = 0.95
		concurrency = 4
		workers     = 2
		shards      = 2
		replicas    = 2
	)
	rounds := cfg.scale(3, 2)
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, nil, err
	}
	workload := serveWorkload(rounds)

	// Private registry and sinks: the analyzer joins exactly this run's
	// exemplars, records and spans, unpolluted by other experiments.
	reg := metrics.New()
	var spanBuf bytes.Buffer
	tracer := obs.New(obs.NewJSONSink(&spanBuf))
	var logBuf bytes.Buffer
	qlog := pplog.NewWriter(&logBuf, 0, reg)

	coord, err := serve.NewSharded(serve.ShardedConfig{
		Base: serve.Config{
			Optimizer:     h.Opt,
			Accuracy:      accuracy,
			Domains:       data.TrafficDomains(),
			MaxConcurrent: concurrency,
			Exec:          engine.Config{Workers: workers},
			Metrics:       reg,
			Obs:           tracer,
			QueryLog:      qlog,
		},
		Shards:   shards,
		Replicas: replicas,
		Corpus:   h.TestBlobs,
		Builder:  trafficBuilder{h},
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := coord.Replay(workload, concurrency); err != nil {
		return nil, nil, fmt.Errorf("bench: obs replay: %w", err)
	}
	drops := qlog.Drops()
	if err := qlog.Close(); err != nil {
		return nil, nil, fmt.Errorf("bench: obs query log: %w", err)
	}

	if queryLogPath != "" {
		if err := os.WriteFile(queryLogPath, logBuf.Bytes(), 0o644); err != nil {
			return nil, nil, err
		}
	}

	records, err := pplog.Read(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		return nil, nil, fmt.Errorf("bench: obs query log parse: %w", err)
	}
	spans, err := pplog.ReadSpans(bytes.NewReader(spanBuf.Bytes()))
	if err != nil {
		return nil, nil, fmt.Errorf("bench: obs span dump parse: %w", err)
	}
	analysis := pplog.Analyze(records, spans, pplog.Options{Drops: drops})

	doc := &ObsDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
		Queries:     len(TRAF20),
		Rounds:      rounds,
		Concurrency: concurrency,
		Shards:      shards,
		Replicas:    replicas,
		Records:     len(records),
		Spans:       len(spans),
		Analysis:    analysis,
	}

	// The join CI gates on: p99 service-time exemplar → query-log record →
	// span tree, all on one TraceID. The exemplar lives on the replica
	// servers' serve_service_ns histogram (legs carry the coordinator's
	// session TraceID, so it resolves to a coordinator session record).
	if ex := reg.Histogram("serve_service_ns", "").QuantileExemplar(0.99); ex != nil {
		doc.P99ExemplarTrace = ex.TraceID
		for i := range records {
			if records[i].TraceID == ex.TraceID {
				doc.P99ExemplarResolves = true
				break
			}
		}
		for _, sp := range spans {
			if sp.Trace == ex.TraceID {
				doc.P99ExemplarSpans++
			}
		}
	}

	rep := &Report{ID: "obs", Title: fmt.Sprintf(
		"Session tracing & query log: %d sessions over %d shards x %d replicas, full observability on",
		len(workload), shards, replicas)}
	rep.addf("sessions: %d (+%d leg records)   errors: %d   querylog drops: %d   all have trace: %v",
		analysis.Sessions, analysis.LegRecords, analysis.Errors, analysis.Drops, analysis.AllHaveTrace)
	rep.addf("slo: %.2fms   attainment: %.3f   plan-cache hit rate: %.3f", analysis.SLOMS, analysis.SLOAttainment, analysis.PlanCacheHitRate)
	rep.addf("misestimate rate: %.3f   shard-skew rate: %.3f", analysis.MisestimateRate, analysis.ShardSkewRate)
	rep.addf("p99 exemplar trace: %s   resolves: %v   spans: %d", doc.P99ExemplarTrace, doc.P99ExemplarResolves, doc.P99ExemplarSpans)
	for _, td := range analysis.TopSlowest {
		rep.addf("slow trace %s (%s): total %.2fms = queue %.2fms + service %.2fms, %d spans",
			td.TraceID, td.Session, td.TotalMS, td.QueueMS, td.ServiceMS, td.SpanCount)
	}
	rep.metric("sessions", float64(analysis.Sessions))
	rep.metric("all_have_trace", b2f(analysis.AllHaveTrace))
	rep.metric("querylog_drops", float64(analysis.Drops))
	rep.metric("slo_attainment", analysis.SLOAttainment)
	rep.metric("p99_exemplar_resolves", b2f(doc.P99ExemplarResolves))
	return doc, rep, nil
}

// Obs is the registry wrapper: it runs the observability replay and returns
// just the report (cmd/ppbench -obs also writes the JSON document).
func Obs(cfg Config) (*Report, error) {
	_, rep, err := RunObs(cfg, "")
	return rep, err
}
