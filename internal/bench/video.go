package bench

import (
	"strconv"

	"probpred/internal/baseline"
	"probpred/internal/data"
)

// Table12 regenerates Table 12 (Appendix B): the PP-style video pipeline
// (mask + two-stage background subtraction + two-threshold SVM) against a
// NoScope-like configuration (no mask, single-stage subtraction, shallow-DNN
// priced filter) on the coral and square streams.
func Table12(cfg Config) (*Report, error) {
	rep := &Report{ID: "table12", Title: "Video object detection cascades (coral/square streams)"}
	frames := cfg.scale(40000, 12000)
	coral := data.Coral(data.CoralConfig{Frames: frames, Seed: cfg.Seed})
	square := data.Square(data.CoralConfig{Frames: frames, Seed: cfg.Seed})

	runs := []struct {
		system string
		stream *data.VideoStream
		cfg    baseline.CascadeConfig
	}{
		{"NoScope-like", coral, baseline.CascadeConfig{
			UseMask: false, UseRelativeBS: true, FilterCost: 10, RawFeatures: true,
			AcceptQuantile: 0.01, RejectQuantile: 0.01, Seed: cfg.Seed,
		}},
		{"PP (strict)", coral, baseline.CascadeConfig{
			UseMask: true, UseRelativeBS: true, FilterCost: 1,
			AcceptQuantile: 0.002, RejectQuantile: 0.002, Seed: cfg.Seed,
		}},
		{"PP (relaxed)", coral, baseline.CascadeConfig{
			UseMask: true, UseRelativeBS: true, FilterCost: 1,
			AcceptQuantile: 0.02, RejectQuantile: 0.02, Seed: cfg.Seed,
		}},
		{"PP (strict)", square, baseline.CascadeConfig{
			UseMask: true, UseRelativeBS: true, FilterCost: 1,
			AcceptQuantile: 0.002, RejectQuantile: 0.002, Seed: cfg.Seed,
		}},
	}
	tb := &table{header: []string{"system", "video", "pre-proc red.", "early drop",
		"DNN frames", "speed-up", "accuracy", "recall"}}
	for _, r := range runs {
		res, err := baseline.RunCascade(r.stream, r.cfg)
		if err != nil {
			return nil, err
		}
		tb.add(r.system, r.stream.Name, f3(res.PreProcReduction), f3(res.EarlyDrop),
			strconv.Itoa(res.DNNFrames), f2(res.Speedup)+"x", f3(res.Accuracy), f3(res.Recall))
	}
	rep.Lines = tb.render()
	return rep, nil
}
