package bench

import (
	"fmt"
	"sort"
	"time"

	"probpred/internal/data"
	"probpred/internal/engine"
	"probpred/internal/mathx"
	"probpred/internal/optimizer"
	"probpred/internal/query"
)

// Fig10 regenerates Figure 10: per-query speed-up in cluster processing
// time relative to NoP, for PP at a=0.95/0.98/1.0 and SortP, queries ranked
// by PP(0.95) speed-up. It also verifies accuracy: the fraction of NoP
// output rows each PP run retains.
func Fig10(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	return fig10With(h, cfg.Exec())
}

func fig10With(h *TrafficHarness, exec engine.Config) (*Report, error) {
	rep := &Report{ID: "fig10", Title: "TRAF-20 speed-up in cluster processing time vs NoP (ranked by PP a=0.95)"}
	type row struct {
		id                        string
		pp95, pp98, pp100, sortp  float64
		acc95, acc98, acc100, sel float64
	}
	var rows []row
	accuracies := []float64{0.95, 0.98, 1.0}
	for _, q := range TRAF20 {
		pred := query.MustParse(q.Pred)
		nopPlan, _, err := h.NoPPlan(pred)
		if err != nil {
			return nil, err
		}
		nop, err := engine.Run(nopPlan, exec)
		if err != nil {
			return nil, err
		}
		r := row{id: q.ID, sel: float64(len(nop.Rows)) / float64(len(h.TestBlobs))}

		var speeds [3]float64
		var accs [3]float64
		for i, a := range accuracies {
			plan, _, err := h.PPPlan(pred, a)
			if err != nil {
				return nil, err
			}
			res, err := engine.Run(plan, exec)
			if err != nil {
				return nil, err
			}
			speeds[i] = nop.ClusterTime / res.ClusterTime
			accs[i] = retained(nop, res)
		}
		r.pp95, r.pp98, r.pp100 = speeds[0], speeds[1], speeds[2]
		r.acc95, r.acc98, r.acc100 = accs[0], accs[1], accs[2]

		sp, err := h.SortPPlan(pred)
		if err != nil {
			return nil, err
		}
		spRes, err := engine.Run(sp, exec)
		if err != nil {
			return nil, err
		}
		if len(spRes.Rows) != len(nop.Rows) {
			return nil, fmt.Errorf("bench: SortP changed %s output: %d vs %d",
				q.ID, len(spRes.Rows), len(nop.Rows))
		}
		r.sortp = nop.ClusterTime / spRes.ClusterTime
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].pp95 < rows[b].pp95 })
	tb := &table{header: []string{"query", "sel", "PP a=0.95", "PP a=0.98", "PP a=1.0", "SortP",
		"acc@0.95", "acc@0.98", "acc@1.0"}}
	var sum95, sum100, sumSortP float64
	for _, r := range rows {
		tb.add(r.id, f3(r.sel), f2(r.pp95)+"x", f2(r.pp98)+"x", f2(r.pp100)+"x", f2(r.sortp)+"x",
			f3(r.acc95), f3(r.acc98), f3(r.acc100))
		sum95 += r.pp95
		sum100 += r.pp100
		sumSortP += r.sortp
	}
	rep.Lines = tb.render()
	for _, r := range rows {
		rep.metric(r.id+".speedup_pp95", r.pp95)
		rep.metric(r.id+".speedup_pp100", r.pp100)
		rep.metric(r.id+".speedup_sortp", r.sortp)
		rep.metric(r.id+".accuracy_pp95", r.acc95)
		rep.metric(r.id+".selectivity", r.sel)
	}
	n := float64(len(rows))
	rep.metric("avg_speedup_pp95", sum95/n)
	rep.metric("avg_speedup_pp100", sum100/n)
	rep.metric("avg_speedup_sortp", sumSortP/n)
	rep.addf("average speed-up: PP(0.95)=%.2fx  PP(1.0)=%.2fx  SortP=%.2fx", sum95/n, sum100/n, sumSortP/n)
	return rep, nil
}

// retained measures what fraction of the reference run's output rows the
// candidate run kept (the empirical query-level accuracy; PPs add no false
// positives because the original predicate still runs).
func retained(ref, cand *engine.Result) float64 {
	if len(ref.Rows) == 0 {
		return 1
	}
	kept := map[int]bool{}
	for _, r := range cand.Rows {
		kept[r.Blob.ID] = true
	}
	n := 0
	for _, r := range ref.Rows {
		if kept[r.Blob.ID] {
			n++
		}
	}
	return float64(n) / float64(len(ref.Rows))
}

// Table8 regenerates Table 8: normalized average query latency (including
// PP training and inference overhead) at one third, two thirds and the full
// input size, for NoP and PP(a=0.95).
func Table8(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table8", Title: "Normalized average query latency vs input size (PP includes training+inference overhead)"}
	fractions := []float64{1.0 / 3, 2.0 / 3, 1.0}
	names := []string{"33%", "67%", "100%"}
	nopLat := make([]float64, len(fractions))
	ppLat := make([]float64, len(fractions))
	full := h.TestBlobs
	// Training overhead amortized per query: the corpus serves all twenty
	// queries, expressed in virtual time via the per-row training charge.
	trainOverhead := trainOverheadVMS(len(h.TrainBlobs)) / float64(len(TRAF20))
	for fi, frac := range fractions {
		h.TestBlobs = full[:int(frac*float64(len(full)))]
		for _, q := range TRAF20 {
			pred := query.MustParse(q.Pred)
			nopPlan, _, err := h.NoPPlan(pred)
			if err != nil {
				return nil, err
			}
			nop, err := engine.Run(nopPlan, cfg.Exec())
			if err != nil {
				return nil, err
			}
			nopLat[fi] += nop.Latency
			plan, _, err := h.PPPlan(pred, 0.95)
			if err != nil {
				return nil, err
			}
			pp, err := engine.Run(plan, cfg.Exec())
			if err != nil {
				return nil, err
			}
			ppLat[fi] += pp.Latency + trainOverhead
		}
	}
	h.TestBlobs = full
	norm := nopLat[len(nopLat)-1]
	tb := &table{header: append([]string{"system"}, names...)}
	nopRow := []string{"NoP"}
	ppRow := []string{"PP (a=0.95)"}
	for i := range fractions {
		nopRow = append(nopRow, f2(nopLat[i]/norm))
		ppRow = append(ppRow, f2(ppLat[i]/norm))
		rep.metric("latency_norm_nop_"+names[i], nopLat[i]/norm)
		rep.metric("latency_norm_pp95_"+names[i], ppLat[i]/norm)
	}
	tb.add(nopRow...)
	tb.add(ppRow...)
	rep.Lines = tb.render()
	return rep, nil
}

// trainOverheadVMS converts corpus training work to virtual milliseconds:
// SVM training is a few passes over the rows (~0.2 vms per row per PP over
// 32 PPs, matching the "minutes" scale of Table 9).
func trainOverheadVMS(trainRows int) float64 {
	return float64(trainRows) * 0.2 * 32
}

// Table9 regenerates Table 9: per-query PP construction time, number of
// PPs chosen, PP inference cost per row, subsequent UDF cost per row,
// selectivity and cluster-time reduction at a=0.95.
func Table9(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table9", Title: "PP training/inference overhead per query (a=0.95)"}
	tb := &table{header: []string{"query", "PP cons.", "#PPs", "PP inf/row", "Sub.UDF/row",
		"selectivity", "reduction"}}
	focus := map[string]bool{"Q4": true, "Q8": true, "Q20": true}
	var avgCons time.Duration
	var avgPPs, avgInf, avgUDF, avgSel, avgRed float64
	for _, q := range TRAF20 {
		pred := query.MustParse(q.Pred)
		nopPlan, u, err := h.NoPPlan(pred)
		if err != nil {
			return nil, err
		}
		nop, err := engine.Run(nopPlan, cfg.Exec())
		if err != nil {
			return nil, err
		}
		plan, dec, err := h.PPPlan(pred, 0.95)
		if err != nil {
			return nil, err
		}
		res, err := engine.Run(plan, cfg.Exec())
		if err != nil {
			return nil, err
		}
		// Construction time: sum of the chosen PPs' individual train times.
		// Negation-derived PPs (e.g. PP[c!=white]) reuse the classifier of
		// their base clause (§5.6), so the base clause's training time is
		// attributed.
		var cons time.Duration
		nPPs := 0
		if dec.Inject {
			nPPs = dec.NumPPs
			for _, clause := range dec.LeafClauses() {
				if d, ok := h.PPTrainTime[clause]; ok {
					cons += d
					continue
				}
				if base, ok := negatedClauseKey(clause); ok {
					cons += h.PPTrainTime[base]
				}
			}
		}
		sel := float64(len(nop.Rows)) / float64(len(h.TestBlobs))
		red := (nop.ClusterTime - res.ClusterTime) / nop.ClusterTime
		if focus[q.ID] {
			tb.add(q.ID, cons.Round(time.Millisecond).String(), fmt.Sprintf("%d", nPPs),
				f2(dec.Cost)+"ms", f2(u)+"ms", f3(sel), fmt.Sprintf("%.0f%%", red*100))
		}
		avgCons += cons
		avgPPs += float64(nPPs)
		avgInf += dec.Cost
		avgUDF += u
		avgSel += sel
		avgRed += red
	}
	n := float64(len(TRAF20))
	tb.add("Avg.", (time.Duration(float64(avgCons) / n)).Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f", avgPPs/n), f2(avgInf/n)+"ms", f2(avgUDF/n)+"ms",
		f3(avgSel/n), fmt.Sprintf("%.0f%%", avgRed/n*100))
	rep.Lines = tb.render()
	rep.metric("avg_num_pps", avgPPs/n)
	rep.metric("avg_pp_cost_per_row", avgInf/n)
	rep.metric("avg_udf_cost_per_row", avgUDF/n)
	rep.metric("avg_selectivity", avgSel/n)
	rep.metric("avg_cluster_reduction", avgRed/n)
	return rep, nil
}

// negatedClauseKey returns the base clause key of a negation-derived PP
// clause ("c!=white" → "c=white"), and whether the key parses as a simple
// clause at all.
func negatedClauseKey(clause string) (string, bool) {
	p, err := query.Parse(clause)
	if err != nil {
		return "", false
	}
	cl, ok := p.(*query.Clause)
	if !ok {
		return "", false
	}
	return cl.Negate().String(), true
}

// Table10 regenerates Table 10: the optimizer in action — number of
// feasible PP expressions, the range of estimated reductions, the picked
// plan and alternates, for the full 32-PP corpus and for a half corpus.
func Table10(cfg Config) (*Report, error) {
	h, err := NewTrafficHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "table10", Title: "QO plan exploration: full corpus vs half corpus (a=0.95)"}
	preds := []struct {
		label string
		pred  string
	}{
		{"t in {SUV,van}", "t in {SUV, van}"},
		{"s>60 & s<65", "s>60 & s<65"},
		{"4-clause conj", "s>60 & s<65 & c=white & t in {SUV, van}"},
	}
	run := func(opt *optimizer.Optimizer, corpusName string) error {
		rep.addf("-- corpus: %s --", corpusName)
		for _, p := range preds {
			pred := query.MustParse(p.pred)
			sel, err := h.Selectivity(pred)
			if err != nil {
				return err
			}
			dec, err := opt.Optimize(pred, optimizer.Options{
				Accuracy: 0.95, UDFCost: 100, Domains: data.TrafficDomains(),
			})
			if err != nil {
				return err
			}
			lo, hi := reductionRange(dec)
			rep.addf("%-16s sel=%.2f  #plans=%d  est r=%.2f-%.2f", p.label, sel,
				dec.NumCandidates, lo, hi)
			if dec.Inject {
				rep.addf("  picked: %s (est r=%.2f)", dec.Expr, dec.Reduction)
				for i, alt := range dec.Alternatives {
					if i == 0 || i > 2 {
						continue // 0 is the picked plan; show two alternates
					}
					rep.addf("  alt:    %s (est r=%.2f)", alt.Expr, alt.Reduction)
				}
			} else {
				rep.addf("  picked: none (run as-is)")
			}
		}
		return nil
	}
	if err := run(h.Opt, "full (32 PPs)"); err != nil {
		return nil, err
	}
	// Half corpus: drop every other PP per column group, deterministically.
	halfCorpus := optimizer.NewCorpus()
	for i, clause := range corpusClauses() {
		if i%2 == 1 {
			continue
		}
		if pp, ok := h.Opt.Corpus().Get(clause); ok {
			halfCorpus.Add(pp)
		}
	}
	if err := run(optimizer.New(halfCorpus), fmt.Sprintf("half (%d PPs)", halfCorpus.Size())); err != nil {
		return nil, err
	}
	return rep, nil
}

// reductionRange returns the min and max estimated reduction across a
// decision's candidate expressions.
func reductionRange(dec *optimizer.Decision) (lo, hi float64) {
	if len(dec.Alternatives) == 0 {
		return 0, 0
	}
	lo, hi = 1, 0
	for _, a := range dec.Alternatives {
		lo = mathx.Clamp(minF(lo, a.Reduction), 0, 1)
		hi = mathx.Clamp(maxF(hi, a.Reduction), 0, 1)
	}
	return lo, hi
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
